// payload_audit — the §10 payload-mode extension as a tool: audit a
// site's pages with full payload access and report what header-only
// analysis would have missed.
//
// Usage: ./payload_audit [pages]
#include <cstdio>
#include <cstdlib>

#include "core/classifier.h"
#include "sim/emitter.h"
#include "sim/listgen.h"
#include "util/format.h"

using namespace adscope;

int main(int argc, char** argv) {
  const std::uint64_t pages =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 800;

  const auto ecosystem = sim::Ecosystem::generate(42);
  const auto lists = sim::generate_lists(ecosystem);
  const auto engine = sim::make_engine(
      lists, sim::ListSelection{.easylist = true,
                                .derivative = true,
                                .easyprivacy = true,
                                .acceptable_ads = true});

  // Crawl with payload capture enabled (a proxy/in-browser deployment,
  // not the ISP monitor).
  sim::PageModelOptions model_options;
  model_options.generate_payloads = true;
  sim::PageModel model(ecosystem, model_options);
  sim::TrafficEmitter emitter(ecosystem);
  sim::NoBlocker no_blocker;

  trace::MemoryTrace memory;
  memory.on_meta(trace::TraceMeta{});
  util::Rng rng(42);
  std::uint64_t embedded_truth = 0;
  std::uint64_t t_ms = 0;
  for (std::uint64_t p = 0; p < pages; ++p) {
    const auto site = ecosystem.popularity().sample(rng);
    const auto page = model.build(site, rng);
    embedded_truth += static_cast<std::uint64_t>(page.hidden_text_ads);
    const auto emitted = apply_blocking(page, no_blocker);
    emitter.emit_page(page, emitted, t_ms, ecosystem.client_ip(0),
                      "Mozilla/5.0 (audit)", memory, rng);
    t_ms += 9'000;
  }
  std::printf("captured %zu transactions over %llu page loads "
              "(payloads attached to documents)\n",
              memory.http().size(),
              static_cast<unsigned long long>(pages));

  auto audit = [&](bool use_payloads) {
    core::ClassifierOptions options;
    options.use_payloads = use_payloads;
    analyzer::HttpExtractor extractor;
    core::TraceClassifier classifier(engine, options);
    std::uint64_t ads = 0;
    classifier.set_callback([&](const core::ClassifiedObject& object) {
      ads += object.verdict.is_ad();
    });
    extractor.set_object_callback(
        [&](const analyzer::WebObject& object) { classifier.process(object); });
    for (const auto& txn : memory.http()) extractor.on_http(txn);
    classifier.flush();
    struct Result {
      std::uint64_t ads;
      std::uint64_t hidden;
      std::uint64_t hints;
    };
    return Result{ads, classifier.hidden_text_ads(),
                  classifier.payload_type_hints_used()};
  };

  const auto header_only = audit(false);
  const auto payload = audit(true);

  std::printf("\n%-34s %12s %12s\n", "", "header-only", "payload mode");
  std::printf("%-34s %12llu %12llu\n", "ad requests classified",
              static_cast<unsigned long long>(header_only.ads),
              static_cast<unsigned long long>(payload.ads));
  std::printf("%-34s %12llu %12llu\n", "hidden text ads detected",
              static_cast<unsigned long long>(header_only.hidden),
              static_cast<unsigned long long>(payload.hidden));
  std::printf("%-34s %12llu %12llu\n", "element types from structure",
              static_cast<unsigned long long>(header_only.hints),
              static_cast<unsigned long long>(payload.hints));
  std::printf("\nground truth: %llu text ads embedded in HTML. Header-only "
              "analysis cannot see them\n(they cause no request — the "
              "paper's §2 element-hiding limitation); payload mode\n"
              "recovers them via the element-hiding rules.\n",
              static_cast<unsigned long long>(embedded_truth));
  return 0;
}
