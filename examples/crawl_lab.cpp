// crawl_lab — the §4 active-measurement workflow as a tool: compare how
// browser configurations change a site's network footprint.
//
// Usage: ./crawl_lab [top_n]
// Crawls the synthetic top-N under Vanilla / AdBP / Ghostery profiles
// and prints a per-profile diff, like the paper's instrumented-browser
// study.
#include <cstdio>
#include <cstdlib>

#include "core/study.h"
#include "sim/crawl_sim.h"
#include "util/format.h"

using namespace adscope;

int main(int argc, char** argv) {
  const std::size_t top_n =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 200;

  const auto ecosystem = sim::Ecosystem::generate(42);
  const auto lists = sim::generate_lists(ecosystem);
  const auto engine = sim::make_engine(
      lists, sim::ListSelection{.easylist = true,
                                .derivative = true,
                                .easyprivacy = true,
                                .acceptable_ads = true});
  sim::CrawlSimulator crawler(ecosystem, lists, /*seed=*/42);

  std::printf("crawling top-%zu sites under 7 profiles...\n\n", top_n);
  std::printf("%-12s %9s %9s %9s %9s %10s\n", "profile", "HTTP", "HTTPS",
              "EL hits", "EP hits", "bytes");

  for (const auto mode :
       {sim::BrowserMode::kVanilla, sim::BrowserMode::kAbpAds,
        sim::BrowserMode::kAbpPrivacy, sim::BrowserMode::kAbpParanoia,
        sim::BrowserMode::kGhosteryAds, sim::BrowserMode::kGhosteryPrivacy,
        sim::BrowserMode::kGhosteryParanoia}) {
    const auto crawl = crawler.crawl(mode, top_n);
    core::TraceStudy study(engine, ecosystem.abp_registry());
    crawl.trace.replay(study);
    study.finish();
    std::printf("%-12s %9llu %9llu %9llu %9llu %10s\n",
                std::string(to_string(mode)).c_str(),
                static_cast<unsigned long long>(crawl.http_requests),
                static_cast<unsigned long long>(crawl.https_requests),
                static_cast<unsigned long long>(
                    study.traffic().easylist_requests()),
                static_cast<unsigned long long>(
                    study.traffic().easyprivacy_requests()),
                util::human_bytes(
                    static_cast<double>(study.traffic().bytes()))
                    .c_str());
  }
  std::printf("\nInterpretation: each blocker removes the requests its "
              "lists cover; residual\nhits under a blocker are "
              "false positives of the passive methodology (see §4.2).\n");
  return 0;
}
