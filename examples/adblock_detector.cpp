// adblock_detector — the paper's §6 use case as a tool: infer which end
// users behind a residential vantage point run an ad-blocker, from
// header traces alone.
//
// Synthesizes an RBN trace with known ground truth, runs the two-
// indicator inference, prints per-class summaries and a confusion matrix
// against the simulator's ground truth.
//
// Usage: ./adblock_detector [--threads N]  — N>1 shards the analysis by
// client IP (core::ParallelTraceStudy); the inference is identical.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <unordered_map>

#include "core/parallel_study.h"
#include "core/study.h"
#include "sim/ecosystem.h"
#include "sim/listgen.h"
#include "sim/rbn_sim.h"
#include "util/format.h"
#include "util/hash.h"

using namespace adscope;

int main(int argc, char** argv) {
  std::size_t threads = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--threads" && i + 1 < argc) {
      threads = std::strtoull(argv[++i], nullptr, 10);
    }
  }

  const auto ecosystem = sim::Ecosystem::generate(42);
  const auto lists = sim::generate_lists(ecosystem);
  const auto engine = sim::make_engine(
      lists, sim::ListSelection{.easylist = true,
                                .derivative = true,
                                .easyprivacy = true,
                                .acceptable_ads = true});

  std::printf("simulating a residential network (this takes a few "
              "seconds)...\n");
  core::StudyOptions options;
  options.inference.min_requests = 500;
  sim::RbnSimulator simulator(ecosystem, lists, /*seed=*/42);
  sim::RbnStats truth;
  core::InferenceResult inference;  // holds pointers into the live study
  std::unique_ptr<core::TraceStudy> serial;
  std::unique_ptr<core::ParallelTraceStudy> parallel;
  if (threads > 1) {
    core::ParallelStudyOptions parallel_options;
    parallel_options.study = options;
    parallel_options.threads = threads;
    parallel = std::make_unique<core::ParallelTraceStudy>(
        engine, ecosystem.abp_registry(), parallel_options);
    truth = simulator.simulate(sim::rbn2_options(250), *parallel);
    parallel->finish();
    inference = parallel->inference();
    std::printf("(analyzed on %zu shard threads)\n", parallel->shard_count());
  } else {
    serial = std::make_unique<core::TraceStudy>(engine,
                                                ecosystem.abp_registry(),
                                                options);
    truth = simulator.simulate(sim::rbn2_options(250), *serial);
    serial->finish();
    inference = serial->inference();
  }
  std::printf("\nactive browsers (>%llu requests): %zu\n",
              static_cast<unsigned long long>(options.inference.min_requests),
              inference.active_browsers.size());
  for (std::size_t c = 0; c < 4; ++c) {
    const auto& row = inference.classes[c];
    std::printf("  class %c: %4llu instances, %6llu ad requests\n",
                core::to_char(static_cast<core::IndicatorClass>(c)),
                static_cast<unsigned long long>(row.instances),
                static_cast<unsigned long long>(row.ad_requests));
  }

  // Confusion matrix: inference (type C = "likely Adblock Plus") vs the
  // simulator's ground truth.
  std::unordered_map<std::uint64_t, bool> truly_abp;
  for (const auto& browser : truth.truth) {
    truly_abp[util::hash_combine(util::fnv1a_u64(browser.ip),
                                 util::fnv1a(browser.user_agent))] =
        browser.blocker == sim::BlockerKind::kAdblockPlus;
  }
  std::uint64_t tp = 0;
  std::uint64_t fp = 0;
  std::uint64_t fn = 0;
  std::uint64_t tn = 0;
  for (const auto& browser : inference.active_browsers) {
    const auto key =
        util::hash_combine(util::fnv1a_u64(browser.stats->ip),
                           util::fnv1a(browser.stats->user_agent));
    const auto it = truly_abp.find(key);
    if (it == truly_abp.end()) continue;
    const bool predicted = browser.cls == core::IndicatorClass::kC;
    if (predicted && it->second) ++tp;
    if (predicted && !it->second) ++fp;
    if (!predicted && it->second) ++fn;
    if (!predicted && !it->second) ++tn;
  }
  std::printf("\nconfusion vs ground truth (positive = Adblock Plus "
              "user):\n");
  std::printf("  true positives  %llu   false positives %llu\n",
              static_cast<unsigned long long>(tp),
              static_cast<unsigned long long>(fp));
  std::printf("  false negatives %llu   true negatives  %llu\n",
              static_cast<unsigned long long>(fn),
              static_cast<unsigned long long>(tn));
  const double precision =
      tp + fp == 0 ? 0 : static_cast<double>(tp) / static_cast<double>(tp + fp);
  const double recall =
      tp + fn == 0 ? 0 : static_cast<double>(tp) / static_cast<double>(tp + fn);
  std::printf("  precision %s, recall %s\n", util::percent(precision).c_str(),
              util::percent(recall).c_str());
  std::printf("\n(The paper has no ground truth — this is what the "
              "simulator substitution buys.)\n");
  return 0;
}
