// classify_trace — the ISP-operator scenario: study ad traffic in a
// captured header trace (the paper's §7 analysis as a CLI tool).
//
// Usage: ./classify_trace [trace.adst] [--threads N]
// Without a trace argument, a small demo trace is synthesized first so
// the example runs out of the box. --threads N shards the analysis by
// client IP across N workers (core::ParallelTraceStudy); the printed
// numbers are identical either way.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "core/parallel_study.h"
#include "core/study.h"
#include "sim/crawl_sim.h"
#include "sim/ecosystem.h"
#include "sim/listgen.h"
#include "sim/rbn_sim.h"
#include "trace/reader.h"
#include "trace/writer.h"
#include "util/format.h"

using namespace adscope;

int main(int argc, char** argv) {
  std::string path;
  std::size_t threads = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threads") {
      if (i + 1 >= argc) {
        std::fprintf(stderr,
                     "usage: classify_trace [trace.adst] [--threads N]\n");
        return 2;
      }
      threads = std::strtoull(argv[++i], nullptr, 10);
    } else {
      path = arg;
    }
  }

  // World setup: ecosystem (for list generation + AS mapping) and the
  // analysis engine with all four lists, as in the paper.
  const auto ecosystem = sim::Ecosystem::generate(42);
  const auto lists = sim::generate_lists(ecosystem);
  const auto engine = sim::make_engine(
      lists, sim::ListSelection{.easylist = true,
                                .derivative = true,
                                .easyprivacy = true,
                                .acceptable_ads = true});

  if (path.empty()) {
    path = "/tmp/adscope_demo_trace.adst";
    std::printf("no trace given; synthesizing a demo RBN trace at %s ...\n",
                path.c_str());
    trace::FileTraceWriter writer(path);
    sim::RbnSimulator simulator(ecosystem, lists, /*seed=*/42);
    auto options = sim::rbn2_options(/*households=*/60);
    options.duration_s = 6 * 3600;
    simulator.simulate(options, writer);
  }

  trace::FileTraceReader reader(path);
  std::unique_ptr<core::TraceStudy> serial;
  std::unique_ptr<core::ParallelTraceStudy> parallel;
  std::uint64_t records = 0;
  core::StudyView view;
  if (threads > 1) {
    core::ParallelStudyOptions options;
    options.threads = threads;
    parallel = std::make_unique<core::ParallelTraceStudy>(
        engine, ecosystem.abp_registry(), options);
    records = reader.replay(*parallel);
    parallel->finish();
    view = parallel->view();
    std::printf("(analyzed on %zu shard threads)\n", parallel->shard_count());
  } else {
    serial = std::make_unique<core::TraceStudy>(engine,
                                                ecosystem.abp_registry());
    records = reader.replay(*serial);
    serial->finish();
    view = serial->view();
  }

  const auto& traffic = *view.traffic;
  std::printf("\n=== trace '%s': %llu records ===\n", view.meta->name.c_str(),
              static_cast<unsigned long long>(records));
  std::printf("HTTP transactions: %llu (%s)\n",
              static_cast<unsigned long long>(traffic.requests()),
              util::human_bytes(static_cast<double>(traffic.bytes())).c_str());
  const double ads = static_cast<double>(traffic.ad_requests());
  std::printf("ad requests:       %llu (%s of requests, %s of bytes)\n",
              static_cast<unsigned long long>(traffic.ad_requests()),
              util::percent(ads / static_cast<double>(traffic.requests()))
                  .c_str(),
              util::percent(static_cast<double>(traffic.ad_bytes()) /
                            static_cast<double>(traffic.bytes()))
                  .c_str());
  std::printf("  EasyList:        %s\n",
              util::percent(static_cast<double>(traffic.easylist_requests()) /
                            ads)
                  .c_str());
  std::printf("  EasyPrivacy:     %s\n",
              util::percent(static_cast<double>(traffic.easyprivacy_requests()) /
                            ads)
                  .c_str());
  std::printf("  non-intrusive:   %s\n",
              util::percent(static_cast<double>(traffic.whitelisted_requests()) /
                            ads)
                  .c_str());

  std::printf("\ntop ad-serving ASes:\n");
  for (const auto& row : view.infra->as_ranking(ecosystem.asn_db(), 5)) {
    std::printf("  %-12s %8llu ad objects (%s of its traffic)\n",
                row.name.c_str(),
                static_cast<unsigned long long>(row.ad_requests),
                util::percent(static_cast<double>(row.ad_requests) /
                              static_cast<double>(row.total_requests))
                    .c_str());
  }

  std::printf("\nRTB signal: %s of ad requests show >=90 ms hand-shake "
              "inflation (vs %s of the rest)\n",
              util::percent(view.rtb->ad_share_in_rtb_regime()).c_str(),
              util::percent(view.rtb->non_ad_share_in_rtb_regime()).c_str());
  return 0;
}
