// Quickstart — the adscope public API in one page.
//
// 1. Parse AdBlock-Plus filter lists into a FilterEngine.
// 2. Classify URLs the way the paper's pipeline does (is it an ad?
//    which list? whitelisted?).
//
// Run: ./quickstart
#include <cstdio>

#include "adblock/engine.h"

using namespace adscope;

int main() {
  // Filter lists are plain ABP list text — load your own from disk, or
  // write rules inline like this.
  const char* easylist_text = R"(
[Adblock Plus 2.0]
! Title: demo EasyList
! Expires: 4 days
/banners/*
&ad_unit=
||ads.tracker-network.com^$third-party
@@||ads.tracker-network.com/quality$script
)";
  const char* acceptable_ads_text = R"(
! Title: demo non-intrusive ads
@@||ads.tracker-network.com/aa/*
)";

  adblock::FilterEngine engine;
  engine.add_list(adblock::FilterList::parse(
      easylist_text, adblock::ListKind::kEasyList, "easylist"));
  engine.add_list(adblock::FilterList::parse(
      acceptable_ads_text, adblock::ListKind::kAcceptableAds,
      "exceptionrules"));
  std::printf("engine loaded: %zu lists, %zu URL filters\n\n",
              engine.list_count(), engine.active_filter_count());

  struct Example {
    const char* url;
    const char* page;
    http::RequestType type;
  };
  const Example examples[] = {
      {"http://news.example/articles/story.html", "",
       http::RequestType::kDocument},
      {"http://cdn.example/banners/top.gif", "http://news.example/",
       http::RequestType::kImage},
      {"http://ads.tracker-network.com/b.js?x=1&ad_unit=7",
       "http://news.example/", http::RequestType::kScript},
      {"http://ads.tracker-network.com/aa/banner.gif",
       "http://news.example/", http::RequestType::kImage},
      {"http://ads.tracker-network.com/quality.js",
       "http://news.example/", http::RequestType::kScript},
      {"http://news.example/assets/logo.png", "http://news.example/",
       http::RequestType::kImage},
  };

  for (const auto& example : examples) {
    const auto request =
        adblock::make_request(example.url, example.page, example.type);
    const auto verdict = engine.classify(request);
    std::printf("%-55s -> %-11s", example.url,
                std::string(to_string(verdict.decision)).c_str());
    if (verdict.filter != nullptr) {
      std::printf("  via %s [%s]", verdict.filter->text().c_str(),
                  std::string(to_string(verdict.list_kind)).c_str());
    }
    if (verdict.whitelist_saved_it()) {
      std::printf("  (would be blocked by %s)",
                  verdict.blocked_by->text().c_str());
    }
    std::printf("%s\n", verdict.is_ad() ? "  [AD]" : "");
  }
  return 0;
}
