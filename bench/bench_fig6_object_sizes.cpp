// Figure 6 — PDF of object sizes by MIME class, ads vs non-ads (RBN-1).
//
// Paper: ad objects have characteristic sizes — the image density spikes
// at 43 bytes (tracking pixels), ad videos are large (>1MB, unchunked
// 15-45s spots) while non-ad videos are *smaller* (streaming chunks);
// non-ad text skews small (auto-completion endpoints).
#include <cstdio>

#include "experiment_common.h"
#include "stats/render.h"
#include "util/format.h"

namespace {

using namespace adscope;

void print_density(const char* label, const stats::LogHistogram& hist) {
  if (hist.total() == 0) {
    std::printf("  %-10s (no samples)\n", label);
    return;
  }
  const auto density = hist.density();
  double max_density = 0;
  for (const auto d : density) max_density = std::max(max_density, d);
  std::printf("  %-10s |%s| mode ~%s, n=%.0f\n", label,
              stats::sparkline(density, max_density).c_str(),
              util::human_bytes(hist.bin_center(hist.mode_bin())).c_str(),
              hist.total());
}

}  // namespace

int main() {
  bench::preamble("Figure 6 — object-size densities by MIME class (RBN-1)",
                  "ad images spike at 43B; ad videos larger than non-ad "
                  "chunks; non-ad text smaller");

  const auto world = bench::make_world();
  core::TraceStudy study(world.engine, world.ecosystem.abp_registry());
  bench::run_rbn_study(world, bench::scaled_rbn1(), study);
  const auto& traffic = study.traffic();

  const http::ContentClass classes[] = {
      http::ContentClass::kImage, http::ContentClass::kText,
      http::ContentClass::kVideo, http::ContentClass::kApplication};

  if (auto csv = bench::maybe_csv(
          "fig6_object_sizes",
          {"class", "kind", "size_bin_center", "density"})) {
    for (const auto cls :
         {http::ContentClass::kImage, http::ContentClass::kText,
          http::ContentClass::kVideo, http::ContentClass::kApplication}) {
      const struct {
        const char* kind;
        const stats::LogHistogram* hist;
      } kinds[] = {{"ad", &traffic.ad_sizes(cls)},
                   {"non-ad", &traffic.non_ad_sizes(cls)}};
      for (const auto& [kind, hist] : kinds) {
        const auto density = hist->density();
        for (std::size_t bin = 0; bin < density.size(); ++bin) {
          csv->add_row({std::string(http::to_string(cls)), kind,
                        util::fixed(hist->bin_center(bin), 1),
                        util::fixed(density[bin], 6)});
        }
      }
    }
  }
  std::printf("x-axis: object size, log scale 1B .. 100MB\n");
  std::printf("\n(a) Ad objects\n");
  for (const auto cls : classes) {
    print_density(std::string(http::to_string(cls)).c_str(),
                  traffic.ad_sizes(cls));
  }
  std::printf("\n(b) Non-ad objects\n");
  for (const auto cls : classes) {
    print_density(std::string(http::to_string(cls)).c_str(),
                  traffic.non_ad_sizes(cls));
  }

  std::printf("\nchecks:\n");
  std::printf("  ad Image mode:      %8s (paper: 43B beacons)\n",
              util::human_bytes(traffic.ad_sizes(http::ContentClass::kImage)
                                    .bin_center(traffic
                                                    .ad_sizes(
                                                        http::ContentClass::kImage)
                                                    .mode_bin()))
                  .c_str());
  std::printf("  ad Video mode:      %8s (paper: > 1MB)\n",
              util::human_bytes(traffic.ad_sizes(http::ContentClass::kVideo)
                                    .bin_center(traffic
                                                    .ad_sizes(
                                                        http::ContentClass::kVideo)
                                                    .mode_bin()))
                  .c_str());
  std::printf("  non-ad Video mode:  %8s (paper: smaller chunks)\n",
              util::human_bytes(
                  traffic.non_ad_sizes(http::ContentClass::kVideo)
                      .bin_center(traffic.non_ad_sizes(http::ContentClass::kVideo)
                                      .mode_bin()))
                  .c_str());
  return 0;
}
