// Micro-benchmarks: sharded parallel analysis (core::ParallelTraceStudy)
// vs the serial TraceStudy on the same RBN-2-style sample trace.
//
// BM_ParallelStudy/N reports end-to-end wall time at N worker threads
// (compare against BM_SerialStudy for the speedup curve; on an M-core
// machine the 4-thread run should be >= 2x the serial throughput).
// BM_ShardMerge isolates the cost of combining finished shard
// aggregates — the serial tail every parallel run pays once.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "core/parallel_study.h"
#include "experiment_common.h"
#include "util/hash.h"
#include "util/thread_pool.h"

namespace {

using namespace adscope;

const bench::World& world() {
  static const bench::World instance = bench::make_world();
  return instance;
}

// The RBN-2-style sample trace shared by every benchmark below,
// pre-materialized so trace generation is outside the timed region.
const trace::MemoryTrace& sample_trace() {
  static const trace::MemoryTrace trace = [] {
    trace::MemoryTrace memory;
    sim::RbnSimulator simulator(world().ecosystem, world().lists,
                                world().seed);
    auto options = sim::rbn2_options(40);
    options.duration_s = 4 * 3600;
    simulator.simulate(options, memory);
    return memory;
  }();
  return trace;
}

void BM_SerialStudy(benchmark::State& state) {
  const auto& trace = sample_trace();
  for (auto _ : state) {
    core::TraceStudy study(world().engine, world().ecosystem.abp_registry());
    trace.replay(study);
    study.finish();
    benchmark::DoNotOptimize(study.traffic().ad_requests());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(trace.http().size()));
}
BENCHMARK(BM_SerialStudy)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_ParallelStudy(benchmark::State& state) {
  const auto& trace = sample_trace();
  const auto threads = static_cast<std::size_t>(state.range(0));
  // The pool is reused across iterations — thread start-up is a one-time
  // cost, exactly as in a long-running deployment.
  util::ThreadPool pool(threads);
  for (auto _ : state) {
    core::ParallelStudyOptions options;
    options.threads = threads;
    core::ParallelTraceStudy study(world().engine,
                                   world().ecosystem.abp_registry(), options,
                                   &pool);
    trace.replay(study);
    study.finish();
    benchmark::DoNotOptimize(study.traffic().ad_requests());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(trace.http().size()));
}
BENCHMARK(BM_ParallelStudy)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_ShardMerge(benchmark::State& state) {
  // Pre-run N finished shard studies (outside the timed region); measure
  // only the aggregate combination.
  const auto shards = static_cast<std::size_t>(state.range(0));
  std::vector<std::unique_ptr<core::TraceStudy>> studies;
  for (std::size_t i = 0; i < shards; ++i) {
    studies.push_back(std::make_unique<core::TraceStudy>(
        world().engine, world().ecosystem.abp_registry()));
    studies.back()->on_meta(sample_trace().meta());
  }
  for (const auto& txn : sample_trace().http()) {
    studies[util::fnv1a_u64(txn.client_ip) % shards]->on_http(txn);
  }
  for (const auto& flow : sample_trace().tls()) {
    studies[util::fnv1a_u64(flow.client_ip) % shards]->on_tls(flow);
  }
  for (auto& study : studies) study->finish();

  const auto duration = sample_trace().meta().duration_s;
  for (auto _ : state) {
    core::UserIndex users;
    core::TrafficStats traffic(duration);
    core::WhitelistAnalysis whitelist;
    core::InfraAnalysis infra;
    core::RtbAnalysis rtb;
    core::PageViewStats page_views;
    core::ClassifierCounters counters;
    for (const auto& study : studies) {
      users.merge(study->users());
      traffic.merge(study->traffic());
      whitelist.merge(study->whitelist());
      infra.merge(study->infra());
      rtb.merge(study->rtb());
      page_views.merge(study->page_views());
      counters.merge(study->classifier().counters());
    }
    benchmark::DoNotOptimize(users.total_requests());
    benchmark::DoNotOptimize(traffic.ad_requests());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(shards));
}
BENCHMARK(BM_ShardMerge)->Arg(2)->Arg(4)->Arg(8);

}  // namespace

BENCHMARK_MAIN();
