// Micro-benchmark: live ingest path — wire decode, socket ingest
// throughput at 1/2/4 analysis shards, and snapshot-merge latency.
//
// Unlike the google-benchmark micros this is a harness binary (the
// subjects are whole threads + sockets, not a tight loop): it prints a
// table and records machine-readable numbers through JsonMetrics
// (`ADSCOPE_JSON_DIR=... -> BENCH_live_ingest.json`).
//
//   ADSCOPE_HOUSEHOLDS  trace scale     (default 150 subscribers)
//   ADSCOPE_HOURS       trace duration  (default 2)
//   ADSCOPE_SNAPSHOTS   merge-latency repetitions (default 20)
#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>

#include "experiment_common.h"
#include "live/live_study.h"
#include "live/replay.h"
#include "live/stream_server.h"
#include "trace/stream.h"
#include "trace/writer.h"
#include "util/socket.h"

namespace {

using namespace adscope;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// TraceSink that discards everything — isolates pure decode cost.
struct NullSink final : trace::TraceSink {
  void on_meta(const trace::TraceMeta&) override {}
  void on_http(const trace::HttpTransaction&) override {}
  void on_tls(const trace::TlsFlow&) override {}
};

}  // namespace

int main() {
  bench::preamble(
      "micro: live ingest (wire decode, socket ingest, snapshot merge)",
      "n/a — operational throughput of the adscoped daemon path");

  const auto world = bench::make_world();
  const auto households = static_cast<std::uint32_t>(
      bench::env_u64("ADSCOPE_HOUSEHOLDS", 600) / 4);
  const auto hours = bench::env_u64("ADSCOPE_HOURS", 2);

  trace::MemoryTrace memory;
  {
    sim::RbnSimulator simulator(world.ecosystem, world.lists, world.seed);
    auto options = sim::rbn2_options(households);
    options.duration_s = hours * 3600;
    simulator.simulate(options, memory);
    live::sort_by_time(memory);
  }
  const std::uint64_t records = memory.http().size() + memory.tls().size();

  std::string wire;
  {
    std::ostringstream encoded;
    trace::TraceEncoder encoder(encoded);
    live::replay_time_ordered(memory, encoder);
    encoder.finish();
    wire = encoded.str();
  }
  std::printf("trace: %llu records, %.1f MB on the wire (%u households, "
              "%llu h)\n\n",
              static_cast<unsigned long long>(records),
              static_cast<double>(wire.size()) / 1e6, households,
              static_cast<unsigned long long>(hours));

  bench::JsonMetrics metrics("live_ingest");
  metrics.record("records", static_cast<double>(records));
  metrics.record("wire_bytes", static_cast<double>(wire.size()));

  // -- pure decode (no sockets, no analysis) ---------------------------
  {
    NullSink null;
    trace::StreamDecoder decoder(null);
    const auto start = Clock::now();
    decoder.feed(wire);
    const auto elapsed = seconds_since(start);
    const auto rate = static_cast<double>(records) / elapsed;
    std::printf("%-28s %10.0f records/s\n", "decode only:", rate);
    metrics.record("decode_records_per_s", rate);
  }

  // -- socket ingest at 1/2/4 shards -----------------------------------
  for (const std::size_t threads : {1u, 2u, 4u}) {
    live::LiveStudyOptions options;
    options.study.inference.min_requests = 1000;
    options.threads = threads;
    options.bucket_seconds = 300;
    live::LiveStudy study(world.engine, world.ecosystem.abp_registry(),
                          options);
    live::TraceStreamServer server(study, util::ListenSocket::tcp(0));
    server.start();

    const auto start = Clock::now();
    {
      auto fd = util::connect_tcp("127.0.0.1", server.port());
      util::send_all(fd.get(), wire);
    }
    while (server.streams_completed() == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    const auto elapsed = seconds_since(start);
    server.stop();

    const auto rate = static_cast<double>(study.records_ingested()) / elapsed;
    std::printf("ingest @%zu shard(s):          %10.0f records/s\n", threads,
                rate);
    metrics.record("ingest_records_per_s_t" + std::to_string(threads), rate);

    if (threads == 4) {
      // -- snapshot-merge latency over the populated study -------------
      const auto repetitions = bench::env_u64("ADSCOPE_SNAPSHOTS", 20);
      const auto merge_start = Clock::now();
      std::uint64_t merged = 0;
      for (std::uint64_t i = 0; i < repetitions; ++i) {
        merged += study.snapshot().buckets_merged();
      }
      const auto merge_s = seconds_since(merge_start) /
                           static_cast<double>(repetitions);
      std::printf("%-28s %10.2f ms (%llu buckets)\n",
                  "snapshot merge:", merge_s * 1e3,
                  static_cast<unsigned long long>(merged / repetitions));
      metrics.record("snapshot_merge_ms", merge_s * 1e3);
      metrics.record("snapshot_buckets",
                     static_cast<double>(merged / repetitions));
    }
    study.close();
  }
  return 0;
}
