// Figure 2 — ratio of ad requests per browser configuration, resampled
// over 1, 5 and 10 random page loads (1K iterations each).
//
// Paper: with a single page load the Vanilla and blocker distributions
// overlap; at 5-10 page loads they separate cleanly, motivating the 5%
// threshold for active users. (Boxes: Vanilla median ~8-15%, blockers
// pinned near 0%.)
#include <cstdio>
#include <vector>

#include "core/classifier.h"
#include "experiment_common.h"
#include "stats/render.h"
#include "stats/summary.h"
#include "util/format.h"

namespace {

using namespace adscope;

struct VisitScore {
  std::uint64_t requests = 0;
  std::uint64_t el_ads = 0;  // EasyList-classified (the §6.2 indicator)
};

// Classify each crawl visit independently (one browser restart per site,
// like the Selenium harness) and score EasyList hits.
std::vector<VisitScore> score_visits(const bench::World& world,
                                     const sim::CrawlResult& crawl) {
  std::vector<VisitScore> scores;
  scores.reserve(crawl.visits.size());
  const auto el_list = world.engine.find_list(adblock::ListKind::kEasyList);
  for (const auto& visit : crawl.visits) {
    VisitScore score;
    analyzer::HttpExtractor extractor;
    core::TraceClassifier classifier(world.engine);
    classifier.set_callback([&](const core::ClassifiedObject& object) {
      ++score.requests;
      if (object.verdict.decision == adblock::Decision::kBlocked &&
          object.verdict.list == el_list) {
        ++score.el_ads;
      }
    });
    extractor.set_object_callback(
        [&](const analyzer::WebObject& object) { classifier.process(object); });
    for (std::size_t i = 0; i < visit.txn_count; ++i) {
      extractor.on_http(crawl.trace.http()[visit.first_txn + i]);
    }
    classifier.flush();
    scores.push_back(score);
  }
  return scores;
}

}  // namespace

int main() {
  bench::preamble("Figure 2 — ad-request ratio vs number of page loads",
                  "1 page load: distributions overlap; 5-10 loads: "
                  "Vanilla separates from AdBP-Pa / Ghostery-Pa");

  const auto world = bench::make_world();
  const auto top_n =
      static_cast<std::size_t>(bench::env_u64("ADSCOPE_CRAWL_TOP", 1000));
  sim::CrawlSimulator crawler(world.ecosystem, world.lists, world.seed);

  const sim::BrowserMode modes[] = {sim::BrowserMode::kVanilla,
                                    sim::BrowserMode::kAbpParanoia,
                                    sim::BrowserMode::kGhosteryParanoia};
  const std::size_t k_loads[] = {1, 5, 10};
  constexpr std::size_t kIterations = 1000;

  util::Rng rng(world.seed ^ 0xF16002ULL);
  for (const auto loads : k_loads) {
    std::printf("\n--- %zu page load%s, %zu iterations ---\n", loads,
                loads == 1 ? "" : "s", kIterations);
    stats::TextTable table(
        {"Mode", "q1", "median", "q3", "whiskers", "boxplot [0..30%]"});
    for (const auto mode : modes) {
      const auto crawl = crawler.crawl(mode, top_n);
      const auto scores = score_visits(world, crawl);
      std::vector<double> ratios;
      ratios.reserve(kIterations);
      for (std::size_t iter = 0; iter < kIterations; ++iter) {
        std::uint64_t requests = 0;
        std::uint64_t ads = 0;
        for (std::size_t l = 0; l < loads; ++l) {
          const auto& visit = scores[rng.below(scores.size())];
          requests += visit.requests;
          ads += visit.el_ads;
        }
        ratios.push_back(requests == 0
                             ? 0.0
                             : 100.0 * static_cast<double>(ads) /
                                   static_cast<double>(requests));
      }
      const auto box = stats::box_stats(ratios);
      table.add_row({std::string(sim::to_string(mode)),
                     util::fixed(box.q1, 2), util::fixed(box.median, 2),
                     util::fixed(box.q3, 2),
                     util::fixed(box.whisker_low, 2) + ".." +
                         util::fixed(box.whisker_high, 2),
                     stats::boxplot_line(box, 0.0, 30.0, 40)});
    }
    std::fputs(table.to_string().c_str(), stdout);
  }
  std::printf("\nExpected: the Vanilla box sits near 8-15%% while blocker "
              "boxes pin to ~0%%,\nwith the separation sharpening as page "
              "loads increase (basis for the 5%% cut).\n");
  return 0;
}
