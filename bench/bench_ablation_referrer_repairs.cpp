// Ablation — how much does each §3.1 repair contribute to classification
// accuracy? (DESIGN.md §4.2)
//
// The simulator provides ground truth per request (ad / acceptable-ad /
// tracker vs content), so we can score the passive classifier as a
// detector: precision and recall of "is an ad request", with the three
// methodology components toggled:
//   * Location patching (redirect chains lose their Referer),
//   * embedded-URL extraction,
//   * filter-aware query normalization.
#include <cstdio>
#include <unordered_map>

#include "core/classifier.h"
#include "experiment_common.h"
#include "stats/render.h"
#include "util/format.h"

namespace {

using namespace adscope;

struct Score {
  std::uint64_t true_positive = 0;
  std::uint64_t false_positive = 0;
  std::uint64_t false_negative = 0;
  std::uint64_t true_negative = 0;

  double precision() const {
    const auto denom = true_positive + false_positive;
    return denom == 0 ? 0.0
                      : static_cast<double>(true_positive) /
                            static_cast<double>(denom);
  }
  double recall() const {
    const auto denom = true_positive + false_negative;
    return denom == 0 ? 0.0
                      : static_cast<double>(true_positive) /
                            static_cast<double>(denom);
  }
};

}  // namespace

int main() {
  bench::preamble("Ablation — referrer-map repairs vs classifier accuracy",
                  "each §3.1 repair (Location patching, embedded URLs, "
                  "query normalization) buys accuracy");

  const auto world = bench::make_world();
  sim::PageModel model(world.ecosystem);
  sim::TrafficEmitter emitter(world.ecosystem);
  sim::NoBlocker no_blocker;

  // Generate pages, remember ground truth per URL occurrence, emit trace.
  trace::MemoryTrace memory;
  trace::TraceMeta meta;
  meta.name = "ablation";
  memory.on_meta(meta);
  std::unordered_map<std::string, bool> truth;  // url spec -> is ad
  util::Rng rng(world.seed ^ 0xAB1A7EULL);
  const auto pages = bench::env_u64("ADSCOPE_ABLATION_PAGES", 2500);
  const std::string ua = "Mozilla/5.0 (ablation)";
  std::uint64_t t_ms = 0;
  for (std::uint64_t p = 0; p < pages; ++p) {
    const auto site = world.ecosystem.popularity().sample(rng);
    const auto page = model.build(site, rng);
    const auto emitted = apply_blocking(page, no_blocker);
    for (const auto& request : page.requests) {
      if (request.https) continue;
      truth[request.url] = request.intent != sim::Intent::kContent;
    }
    emitter.emit_page(page, emitted, t_ms, world.ecosystem.client_ip(0), ua,
                      memory, rng);
    t_ms += 8'000;
  }

  struct Variant {
    const char* name;
    core::ClassifierOptions options;
  };
  std::vector<Variant> variants;
  {
    core::ClassifierOptions all;
    variants.push_back({"all repairs (paper)", all});
    core::ClassifierOptions no_redirect = all;
    no_redirect.redirect_patching = false;
    variants.push_back({"- Location patching", no_redirect});
    core::ClassifierOptions no_embedded = all;
    no_embedded.embedded_urls = false;
    variants.push_back({"- embedded URLs", no_embedded});
    core::ClassifierOptions no_norm = all;
    no_norm.query_normalization = false;
    variants.push_back({"- query normalization", no_norm});
    core::ClassifierOptions naive = all;
    naive.naive_query_normalization = true;
    variants.push_back({"naive normalization", naive});
    core::ClassifierOptions none;
    none.redirect_patching = false;
    none.embedded_urls = false;
    none.query_normalization = false;
    variants.push_back({"no repairs", none});
  }

  stats::TextTable table({"Variant", "precision", "recall", "FP", "FN"});
  for (const auto& variant : variants) {
    Score score;
    analyzer::HttpExtractor extractor;
    core::TraceClassifier classifier(world.engine, variant.options);
    classifier.set_callback([&](const core::ClassifiedObject& object) {
      const auto it = truth.find(object.object.url.spec());
      if (it == truth.end()) return;
      const bool is_ad = object.verdict.is_ad();
      if (it->second) {
        is_ad ? ++score.true_positive : ++score.false_negative;
      } else {
        is_ad ? ++score.false_positive : ++score.true_negative;
      }
    });
    extractor.set_object_callback(
        [&](const analyzer::WebObject& object) { classifier.process(object); });
    for (const auto& txn : memory.http()) extractor.on_http(txn);
    classifier.flush();
    table.add_row({variant.name, util::percent(score.precision(), 2),
                   util::percent(score.recall(), 2),
                   std::to_string(score.false_positive),
                   std::to_string(score.false_negative)});
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::printf("\nExpected: 'all repairs' dominates; dropping Location "
              "patching costs recall on\nredirected creatives; dropping "
              "normalization costs precision on URLs that embed\nother "
              "URLs in query strings.\n");
  return 0;
}
