// Figure 7 / §8.2 — real-time bidding in the wild: density of
// (HTTP hand-shake − TCP hand-shake) per request type (RBN-2).
//
// Paper: both densities peak at ~1 ms (noise / cache hits); a second
// mode near 10 ms (dynamic back-ends); ads show a pronounced third mode
// near 120 ms — the ad-exchange auction budget (~100 ms). FQDNs in the
// >=90 ms regime belong to ad-tech: DoubleClick 14.5%, then Mopub /
// Rubicon / Pubmatic / Criteo at ~5% each.
#include <cstdio>

#include "experiment_common.h"
#include "stats/render.h"
#include "util/format.h"

namespace {

using namespace adscope;

void print_density(const char* label, const stats::LogHistogram& hist) {
  const auto density = hist.density();
  double max_density = 0;
  for (const auto d : density) max_density = std::max(max_density, d);
  std::printf("  %-12s |%s|\n", label,
              stats::sparkline(density, max_density).c_str());
}

}  // namespace

int main() {
  bench::preamble("Figure 7 — HTTP minus TCP hand-shake latencies (RBN-2)",
                  "ads show modes at 1/10/120 ms; the 120 ms mode is the "
                  "RTB auction");

  const auto world = bench::make_world();
  core::TraceStudy study(world.engine, world.ecosystem.abp_registry());
  bench::run_rbn_study(world, bench::scaled_rbn2(), study);
  const auto& rtb = study.rtb();

  if (auto csv = bench::maybe_csv("fig7_rtb_density",
                                  {"delta_ms_bin_center", "ad_density",
                                   "non_ad_density"})) {
    const auto ad_density = rtb.ad_delta_ms().density();
    const auto rest_density = rtb.non_ad_delta_ms().density();
    for (std::size_t bin = 0; bin < ad_density.size(); ++bin) {
      csv->add_row({util::fixed(rtb.ad_delta_ms().bin_center(bin), 4),
                    util::fixed(ad_density[bin], 6),
                    util::fixed(rest_density[bin], 6)});
    }
  }
  std::printf("x-axis: delta, log scale 0.01 ms .. ~3000 ms\n\n");
  print_density("Ad-requests", rtb.ad_delta_ms());
  print_density("Rest", rtb.non_ad_delta_ms());

  const auto& ads = rtb.ad_delta_ms();
  std::printf("\nad-delta mode: %.1f ms; shares in RTB regime (>=90 ms): "
              "ads %s vs rest %s\n",
              ads.bin_center(ads.mode_bin()),
              util::percent(rtb.ad_share_in_rtb_regime()).c_str(),
              util::percent(rtb.non_ad_share_in_rtb_regime()).c_str());

  std::printf("\ntop registrable domains in the RTB regime (paper: "
              "DoubleClick 14.5%%, Mopub/Rubicon/Pubmatic/Criteo ~5%%):\n");
  stats::TextTable table({"domain", "requests", "share of RTB regime"});
  for (const auto& host : rtb.rtb_hosts(10)) {
    table.add_row({host.domain, std::to_string(host.requests),
                   util::percent(host.share)});
  }
  std::fputs(table.to_string().c_str(), stdout);
  return 0;
}
