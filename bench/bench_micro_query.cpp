// Micro-benchmark: snapshot-store query engine — cold render vs the
// epoch-keyed response cache, materialized rollups vs on-demand merges,
// and tree-merge cost as the queried window widens.
//
// Like bench_micro_live_ingest this is a harness binary (the subjects
// are whole serving pipelines, not tight loops): it prints a table and
// records machine-readable numbers through JsonMetrics
// (`ADSCOPE_JSON_DIR=... -> BENCH_query.json`). The headline number is
// cached_speedup_total: the acceptance bar is a >=5x cached render.
//
//   ADSCOPE_HOUSEHOLDS  trace scale       (default 150 subscribers)
//   ADSCOPE_HOURS       trace duration    (default 2)
//   ADSCOPE_REPS        timing repetitions (default 50)
#include <chrono>
#include <cstdio>
#include <string>

#include "experiment_common.h"
#include "live/live_study.h"
#include "live/replay.h"
#include "store/store_service.h"

namespace {

using namespace adscope;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Mean milliseconds per call of `fn` over `reps` repetitions.
template <typename Fn>
double mean_ms(std::uint64_t reps, Fn&& fn) {
  const auto start = Clock::now();
  for (std::uint64_t i = 0; i < reps; ++i) fn();
  return seconds_since(start) * 1e3 / static_cast<double>(reps);
}

}  // namespace

int main() {
  bench::preamble(
      "micro: snapshot-store queries (cache, rollups, merge spans)",
      "n/a — operational latency of the /query serving path");

  const auto world = bench::make_world();
  const auto households = static_cast<std::uint32_t>(
      bench::env_u64("ADSCOPE_HOUSEHOLDS", 600) / 4);
  const auto hours = bench::env_u64("ADSCOPE_HOURS", 2);
  const auto reps = bench::env_u64("ADSCOPE_REPS", 50);

  trace::MemoryTrace memory;
  {
    sim::RbnSimulator simulator(world.ecosystem, world.lists, world.seed);
    auto options = sim::rbn2_options(households);
    options.duration_s = hours * 3600;
    simulator.simulate(options, memory);
    live::sort_by_time(memory);
  }
  const std::uint64_t records = memory.http().size() + memory.tls().size();

  // Two identically-fed stores: `cold` renders every query from the
  // tree (cache disabled), `cached` serves repeats from the LRU. The
  // study seals each bucket into both trees through on_seal.
  core::StudyOptions study_options;
  study_options.inference.min_requests = 1000;

  store::StoreServiceOptions store_options;
  store_options.tree.study = study_options;
  store_options.tree.bucket_seconds = 300;
  store_options.cache.capacity_bytes = 0;
  store::StoreService cold(store_options, &world.ecosystem.asn_db());
  store_options.cache.capacity_bytes = 8u << 20;
  store::StoreService cached(store_options, &world.ecosystem.asn_db());

  live::LiveStudyOptions live_options;
  live_options.study = study_options;
  live_options.threads = 2;
  live_options.bucket_seconds = 300;
  live_options.window_buckets = UINT64_MAX;
  live_options.on_seal = [&](std::uint64_t bucket_id, std::size_t shard,
                             const core::TraceStudy& sealed) {
    cold.tree().ingest(bucket_id, shard, sealed);
    cached.tree().ingest(bucket_id, shard, sealed);
  };
  live::LiveStudy study(world.engine, world.ecosystem.abp_registry(),
                        live_options);
  live::replay_time_ordered(memory, study);
  study.seal_all();
  study.flush();
  const auto live_stats = [&study] {
    return store::LiveStats{study.watermark_ms(), study.records_ingested(),
                            study.total_drops(), study.current_bucket()};
  };
  cold.set_live_stats(live_stats);
  cached.set_live_stats(live_stats);

  std::printf("trace: %llu records, %zu store leaves in %zu bucket(s)\n\n",
              static_cast<unsigned long long>(records),
              cold.tree().leaf_count(), cold.tree().bucket_count());

  bench::JsonMetrics metrics("query");
  metrics.record("records", static_cast<double>(records));
  metrics.record("store_leaves", static_cast<double>(cold.tree().leaf_count()));

  // -- cold render vs cached render ------------------------------------
  const char* targets[] = {"/query/summary/*", "/query/traffic/*",
                           "/query/users/*", "/query/infra/*"};
  double cold_total_ms = 0;
  double cached_total_ms = 0;
  std::printf("%-24s %12s %12s %9s\n", "target", "cold ms", "cached ms",
              "speedup");
  for (const char* target : targets) {
    const auto cold_ms =
        mean_ms(reps, [&] { (void)cold.query(target).body.size(); });
    (void)cached.query(target);  // prime the cache
    const auto cached_ms =
        mean_ms(reps, [&] { (void)cached.query(target).body.size(); });
    cold_total_ms += cold_ms;
    cached_total_ms += cached_ms;
    const auto name = std::string(target).substr(7);  // after "/query/"
    std::printf("%-24s %12.3f %12.4f %8.1fx\n", target, cold_ms, cached_ms,
                cold_ms / cached_ms);
    metrics.record("cold_ms_" + name.substr(0, name.find('/')), cold_ms);
    metrics.record("cached_ms_" + name.substr(0, name.find('/')), cached_ms);
  }
  const auto speedup = cold_total_ms / cached_total_ms;
  std::printf("%-24s %12.3f %12.4f %8.1fx\n", "total", cold_total_ms,
              cached_total_ms, speedup);
  metrics.record("cold_ms_total", cold_total_ms);
  metrics.record("cached_ms_total", cached_total_ms);
  metrics.record("cached_speedup_total", speedup);

  // -- materialized rollup vs on-demand merge --------------------------
  const auto days = cold.tree().users_daily_days();
  if (!days.empty()) {
    const auto day = days.front();
    const std::uint64_t per_day = 86400 / 300;
    const auto materialized_ms = mean_ms(reps, [&] {
      (void)cold.tree().users_daily(day)->buckets_merged();
    });
    const auto on_demand_ms = mean_ms(reps, [&] {
      (void)cold.tree()
          .merge(day * per_day, (day + 1) * per_day - 1, std::nullopt)
          .buckets_merged();
    });
    std::printf("\n%-24s %12.4f ms\n%-24s %12.4f ms (%.1fx)\n",
                "users-daily materialized:", materialized_ms,
                "users-daily on-demand:", on_demand_ms,
                on_demand_ms / materialized_ms);
    metrics.record("rollup_materialized_ms", materialized_ms);
    metrics.record("rollup_on_demand_ms", on_demand_ms);
  }

  // -- tree-merge cost vs window span ----------------------------------
  std::printf("\n%-24s %12s\n", "window", "merge ms");
  for (const std::uint64_t window_s : {900u, 3600u, 7200u}) {
    const auto target = "/query/summary/*?window_s=" + std::to_string(window_s);
    const auto ms = mean_ms(reps, [&] { (void)cold.query(target).status; });
    std::printf("window_s=%-15llu %12.3f\n",
                static_cast<unsigned long long>(window_s), ms);
    metrics.record("merge_ms_window_" + std::to_string(window_s), ms);
  }

  study.close();
  return 0;
}
