// §7.1 — the content-mix explanation for the diurnal ad-ratio.
//
// The paper offers two explanations for the 6-12% diurnal swing of the
// ad-request share: (1) users request different content over the day
// and page categories carry different ad ratios (news-heavy vs
// streaming-heavy hours, citing [27] on site complexity), and
// (2) the ad-blocker-user share varies by hour (2:1 non-blockers at
// peak, ~1:1 off-hours). This bench quantifies both in the RBN-1 trace
// via the page-view segmentation.
#include <cstdio>
#include <map>

#include "core/page_segmenter.h"
#include "experiment_common.h"
#include "stats/render.h"
#include "util/format.h"

namespace {

using namespace adscope;

struct CategoryRow {
  std::uint64_t views = 0;
  std::uint64_t objects = 0;
  std::uint64_t ads = 0;
};

std::string category_of(const std::string& page_url) {
  // Publisher domains encode their category: "news-12.example".
  // Pages outside .example are ad-tech URLs that the referrer
  // reconstruction could not attribute (standalone chains) — grouped,
  // since they are pipeline noise rather than sites.
  const auto scheme = page_url.find("://");
  if (scheme == std::string::npos) return "other";
  const auto start = scheme + 3;
  auto host_end = page_url.find('/', start);
  if (host_end == std::string::npos) host_end = page_url.size();
  const auto host = page_url.substr(start, host_end - start);
  if (host.size() < 8 || host.compare(host.size() - 8, 8, ".example") != 0) {
    return "(unattributed ad-tech)";
  }
  const auto dash = host.find('-');
  if (dash == std::string::npos) return "other";
  return host.substr(0, dash);
}

}  // namespace

int main() {
  bench::preamble("Section 7.1 — page categories vs ad load (RBN-1)",
                  "category ad ratios differ (news-heavy vs streaming "
                  "pages) — explanation 1 for the diurnal ad share");

  const auto world = bench::make_world();

  // Run the study with a page-view callback that aggregates by category
  // and by hour-of-day.
  std::map<std::string, CategoryRow> by_category;
  std::map<unsigned, CategoryRow> by_hour;
  core::TraceStudy study(world.engine, world.ecosystem.abp_registry());
  core::PageSegmenter segmenter;
  segmenter.set_callback([&](const core::PageView& view) {
    auto& cat = by_category[category_of(view.page_url)];
    ++cat.views;
    cat.objects += view.objects;
    cat.ads += view.ad_objects;
    auto& hour = by_hour[static_cast<unsigned>((view.start_ms / 1000 / 3600) %
                                               24)];
    ++hour.views;
    hour.objects += view.objects;
    hour.ads += view.ad_objects;
  });
  // Second classifier pass just for segmentation is wasteful; instead
  // tap the study's own pipeline via a parallel classifier.
  analyzer::HttpExtractor extractor;
  core::TraceClassifier classifier(world.engine);
  classifier.set_callback(
      [&](const core::ClassifiedObject& object) { segmenter.add(object); });
  extractor.set_object_callback(
      [&](const analyzer::WebObject& object) { classifier.process(object); });

  trace::TeeSink tee;
  tee.add(study);
  tee.add(extractor);
  sim::RbnSimulator simulator(world.ecosystem, world.lists, world.seed);
  simulator.simulate(bench::scaled_rbn1(), tee);
  study.finish();
  classifier.flush();
  segmenter.flush();

  stats::TextTable table({"category", "views", "objects/view", "ads/view",
                          "ad share"});
  for (const auto& [category, row] : by_category) {
    if (row.views < 50) continue;
    table.add_row(
        {category, std::to_string(row.views),
         util::fixed(static_cast<double>(row.objects) /
                         static_cast<double>(row.views),
                     1),
         util::fixed(static_cast<double>(row.ads) /
                         static_cast<double>(row.views),
                     1),
         util::percent(static_cast<double>(row.ads) /
                       static_cast<double>(row.objects))});
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::printf("\nExpected: news/games/shop categories carry the highest "
              "ad share; search and\nreference (no ad slots) the lowest; "
              "video dilutes ads with streaming chunks.\n");

  std::printf("\nad share of page-view objects by local hour (RBN-1 starts "
              "Sat 00:00):\n  hour: ");
  for (unsigned h = 0; h < 24; ++h) std::printf("%4u", h);
  std::printf("\n  %%ads: ");
  for (unsigned h = 0; h < 24; ++h) {
    const auto it = by_hour.find(h);
    const double share =
        it == by_hour.end() || it->second.objects == 0
            ? 0.0
            : 100.0 * static_cast<double>(it->second.ads) /
                  static_cast<double>(it->second.objects);
    std::printf("%4.0f", share);
  }
  std::printf("\n(the §7.1 diurnal ratio, now per page view instead of per "
              "raw request)\n");
  return 0;
}
