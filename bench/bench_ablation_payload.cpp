// Ablation — the §10 payload-mode extension, quantified.
//
// The paper (§10): "a complete reconstruction is only possible by
// accessing the payload"; "In cases where the payload can be analyzed,
// our methodology can be extended to detect hidden ads and address the
// challenges discussed above." This bench runs the same workload twice —
// header-only (the paper's deployment) vs payload mode — and reports:
//   * classifier precision/recall against ground-truth intent,
//   * Content-Type misclassification rate (the Table 1 FP mechanism),
//   * hidden text ads detected (zero by construction without payloads).
#include <cstdio>
#include <unordered_map>

#include "core/classifier.h"
#include "experiment_common.h"
#include "stats/render.h"
#include "util/format.h"

namespace {

using namespace adscope;

struct Outcome {
  std::uint64_t tp = 0;
  std::uint64_t fp = 0;
  std::uint64_t fn = 0;
  std::uint64_t type_errors = 0;
  std::uint64_t classified = 0;
  std::uint64_t hidden_ads = 0;
  std::uint64_t hints = 0;
};

}  // namespace

int main() {
  bench::preamble("Ablation — §10 payload mode vs header-only analysis",
                  "payload access recovers exact element types and "
                  "reveals hidden text ads");

  const auto world = bench::make_world();
  sim::PageModelOptions model_options;
  model_options.generate_payloads = true;
  sim::PageModel model(world.ecosystem, model_options);
  sim::TrafficEmitter emitter(world.ecosystem);
  sim::NoBlocker no_blocker;

  trace::MemoryTrace memory;
  memory.on_meta(trace::TraceMeta{});
  std::unordered_map<std::string, bool> truth_ad;       // url -> is ad
  std::unordered_map<std::string, http::RequestType> truth_type;
  std::uint64_t truth_hidden = 0;
  util::Rng rng(world.seed ^ 0x10AD5ULL);
  const auto pages = bench::env_u64("ADSCOPE_ABLATION_PAGES", 2500);
  std::uint64_t t_ms = 0;
  for (std::uint64_t p = 0; p < pages; ++p) {
    const auto site = world.ecosystem.popularity().sample(rng);
    const auto page = model.build(site, rng);
    truth_hidden += static_cast<std::uint64_t>(page.hidden_text_ads);
    for (const auto& request : page.requests) {
      if (request.https) continue;
      truth_ad[request.url] = request.intent != sim::Intent::kContent;
      truth_type[request.url] = request.true_type;
    }
    const auto emitted = apply_blocking(page, no_blocker);
    emitter.emit_page(page, emitted, t_ms, world.ecosystem.client_ip(0),
                      "Mozilla/5.0 (ablation)", memory, rng);
    t_ms += 8'000;
  }

  auto evaluate = [&](bool use_payloads) {
    Outcome outcome;
    core::ClassifierOptions options;
    options.use_payloads = use_payloads;
    analyzer::HttpExtractor extractor;
    core::TraceClassifier classifier(world.engine, options);
    classifier.set_callback([&](const core::ClassifiedObject& object) {
      const auto spec = object.object.url.spec();
      const auto ad_it = truth_ad.find(spec);
      if (ad_it == truth_ad.end()) return;
      ++outcome.classified;
      const bool is_ad = object.verdict.is_ad();
      if (ad_it->second) {
        is_ad ? ++outcome.tp : ++outcome.fn;
      } else if (is_ad) {
        ++outcome.fp;
      }
      const auto type_it = truth_type.find(spec);
      if (type_it != truth_type.end() && object.type != type_it->second) {
        ++outcome.type_errors;
      }
    });
    extractor.set_object_callback(
        [&](const analyzer::WebObject& object) { classifier.process(object); });
    for (const auto& txn : memory.http()) extractor.on_http(txn);
    classifier.flush();
    outcome.hidden_ads = classifier.hidden_text_ads();
    outcome.hints = classifier.payload_type_hints_used();
    return outcome;
  };

  const auto header_only = evaluate(false);
  const auto payload_mode = evaluate(true);

  auto ratio = [](std::uint64_t a, std::uint64_t b) {
    return b == 0 ? 0.0 : static_cast<double>(a) / static_cast<double>(b);
  };
  stats::TextTable table({"Metric", "header-only (paper)", "payload mode"});
  table.add_row({"precision",
                 util::percent(ratio(header_only.tp,
                                     header_only.tp + header_only.fp),
                               2),
                 util::percent(ratio(payload_mode.tp,
                                     payload_mode.tp + payload_mode.fp),
                               2)});
  table.add_row({"recall",
                 util::percent(ratio(header_only.tp,
                                     header_only.tp + header_only.fn),
                               2),
                 util::percent(ratio(payload_mode.tp,
                                     payload_mode.tp + payload_mode.fn),
                               2)});
  table.add_row({"element-type errors",
                 util::percent(ratio(header_only.type_errors,
                                     header_only.classified),
                               2),
                 util::percent(ratio(payload_mode.type_errors,
                                     payload_mode.classified),
                               2)});
  table.add_row({"hidden text ads found",
                 std::to_string(header_only.hidden_ads),
                 std::to_string(payload_mode.hidden_ads)});
  table.add_row({"structure type hints used", "0",
                 std::to_string(payload_mode.hints)});
  std::fputs(table.to_string().c_str(), stdout);
  std::printf("\nground truth: %llu hidden text ads embedded in HTML "
              "(invisible to header-only analysis by construction).\n",
              static_cast<unsigned long long>(truth_hidden));
  return 0;
}
