// §7.3 — the "non-intrusive ads" whitelist: reach, accuracy, and who
// benefits.
//
// Paper findings:
//   * 9.2% of ad requests match the whitelist (15.3% when restricted to
//     EasyList + acceptable-ads classifications);
//   * only 57.3% of whitelisted requests would otherwise have been
//     blacklisted (over-general rules such as @@||gstatic.com^$document
//     whitelist plain content like fonts); of those, 23.2% would have
//     been caught by EasyPrivacy;
//   * publishers: dating/shopping/translation/streaming sites benefit;
//     adult sites see no whitelisting; surprisingly some top news sites
//     don't either; one technology site's own ad platform is 94%
//     whitelisted; Google's services are ~47.9% whitelisted.
#include <cstdio>

#include "experiment_common.h"
#include "stats/render.h"
#include "util/format.h"

int main() {
  using namespace adscope;
  bench::preamble("Section 7.3 — acceptable-ads whitelist analysis (RBN-2)",
                  "9.2% of ad requests whitelisted; only 57.3% of those "
                  "would otherwise be blocked");

  const auto world = bench::make_world();
  core::TraceStudy study(world.engine, world.ecosystem.abp_registry());
  bench::run_rbn_study(world, bench::scaled_rbn2(), study);
  const auto& wl = study.whitelist();

  const double ads = static_cast<double>(wl.ad_requests());
  const double whitelisted = static_cast<double>(wl.whitelisted());
  std::printf("whitelisted / all ad requests:          %s (paper 9.2%%)\n",
              util::percent(whitelisted / ads).c_str());
  std::printf("whitelisted / (EasyList+AA) ads:        %s (paper 15.3%%)\n",
              util::percent(whitelisted /
                            static_cast<double>(wl.easylist_family_ads()))
                  .c_str());
  std::printf("whitelisted that match the blacklist:   %s (paper 57.3%%)\n",
              util::percent(static_cast<double>(wl.whitelisted_would_block()) /
                            whitelisted)
                  .c_str());
  std::printf("  of those, EasyPrivacy-blacklisted:    %s (paper 23.2%%)\n",
              util::percent(
                  static_cast<double>(wl.whitelisted_would_block_ep()) /
                  static_cast<double>(wl.whitelisted_would_block()))
                  .c_str());

  const auto min_pub = bench::env_u64("ADSCOPE_WL_MIN_PUB", 200);
  auto publishers = wl.publishers(min_pub);
  std::printf("\npublishers with >= %llu blacklist-relevant requests: %zu "
              "(paper: 991 FQDNs >= 1K)\n",
              static_cast<unsigned long long>(min_pub), publishers.size());
  stats::TextTable pub_table({"Publisher (category in name)", "blacklisted",
                              "whitelisted", "whitelist share"});
  std::size_t shown = 0;
  for (const auto& row : publishers) {
    if (shown++ >= 12) break;
    pub_table.add_row({row.fqdn, std::to_string(row.blacklisted),
                       std::to_string(row.whitelisted),
                       util::percent(row.whitelisted_share())});
  }
  std::fputs(pub_table.to_string().c_str(), stdout);

  // Category digest: adult sites should show ~0% whitelisting.
  std::printf("\nwhitelist share by publisher category:\n");
  std::map<std::string, std::pair<std::uint64_t, std::uint64_t>> by_cat;
  for (const auto& row : publishers) {
    const auto dash = row.fqdn.find('-');
    if (dash == std::string::npos) continue;
    auto& [black, white] = by_cat[row.fqdn.substr(0, dash)];
    black += row.blacklisted;
    white += row.whitelisted;
  }
  for (const auto& [category, counts] : by_cat) {
    const double total = static_cast<double>(counts.first + counts.second);
    std::printf("  %-8s %s\n", category.c_str(),
                util::percent(static_cast<double>(counts.second) / total)
                    .c_str());
  }

  const auto min_tech = bench::env_u64("ADSCOPE_WL_MIN_ADTECH", 2000);
  auto ad_tech = wl.ad_tech(min_tech);
  std::printf("\nad-tech FQDNs with >= %llu requests: %zu (paper: 10K "
              "threshold)\n",
              static_cast<unsigned long long>(min_tech), ad_tech.size());
  stats::TextTable tech_table({"Ad-tech FQDN", "blacklisted", "whitelisted",
                               "whitelist share"});
  shown = 0;
  for (const auto& row : ad_tech) {
    if (shown++ >= 12) break;
    tech_table.add_row({row.fqdn, std::to_string(row.blacklisted),
                        std::to_string(row.whitelisted),
                        util::percent(row.whitelisted_share())});
  }
  std::fputs(tech_table.to_string().c_str(), stdout);

  // Google aggregate (paper: 47.9% of Google's ad requests whitelisted).
  std::uint64_t google_black = 0;
  std::uint64_t google_white = 0;
  for (const auto& row : wl.ad_tech(1)) {
    if (row.fqdn.find("googlesim") != std::string::npos ||
        row.fqdn.find("doubleclick-sim") != std::string::npos ||
        row.fqdn.find("gstaticsim") != std::string::npos) {
      google_black += row.blacklisted;
      google_white += row.whitelisted;
    }
  }
  if (google_black + google_white > 0) {
    std::printf("\nGoogle-stand-in whitelisted share: %s (paper: 47.9%%)\n",
                util::percent(static_cast<double>(google_white) /
                              static_cast<double>(google_black + google_white))
                    .c_str());
  }
  return 0;
}
