// Table 4 — ad vs non-ad traffic by reported Content-Type (RBN-1).
//
// Paper (top ad rows): image/gif 35.1% of ad requests but only 14.1% of
// ad bytes (43-byte beacons); text/plain and text/html carry most ad
// bytes; "-" (absent) dominates non-ad bytes (large media); video and
// flash contribute bytes, not requests.
#include <cstdio>

#include "experiment_common.h"
#include "stats/render.h"
#include "util/format.h"

int main() {
  using namespace adscope;
  bench::preamble("Table 4 — ad traffic by Content-Type (RBN-1)",
                  "gif beacons dominate ad requests; text and video "
                  "dominate ad bytes; '-' dominates non-ad bytes");

  const auto world = bench::make_world();
  core::TraceStudy study(world.engine, world.ecosystem.abp_registry());
  bench::run_rbn_study(world, bench::scaled_rbn1(), study);
  const auto& traffic = study.traffic();

  const auto rows = traffic.content_table();
  double ad_reqs = 0;
  double ad_bytes = 0;
  double non_reqs = 0;
  double non_bytes = 0;
  for (const auto& [mime, row] : rows) {
    ad_reqs += static_cast<double>(row.ad_requests);
    ad_bytes += static_cast<double>(row.ad_bytes);
    non_reqs += static_cast<double>(row.non_ad_requests);
    non_bytes += static_cast<double>(row.non_ad_bytes);
  }

  stats::TextTable table({"Content-type", "Ads:Reqs", "Ads:Bytes",
                          "NonAds:Reqs", "NonAds:Bytes"});
  std::size_t printed = 0;
  for (const auto& [mime, row] : rows) {
    if (printed++ >= 12) break;
    table.add_row(
        {mime,
         util::percent(static_cast<double>(row.ad_requests) / ad_reqs),
         util::percent(static_cast<double>(row.ad_bytes) / ad_bytes),
         util::percent(static_cast<double>(row.non_ad_requests) / non_reqs),
         util::percent(static_cast<double>(row.non_ad_bytes) / non_bytes)});
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::printf("\npaper top rows: image/gif 35.1/14.1/3.5/0.7; '-' "
              "11.8/5.4/28.7/63.4;\nvideo/mp4 0.0/10.9/0.3/8.6 "
              "(percent of Ads:Reqs/Ads:Bytes/NonAds:Reqs/NonAds:Bytes)\n");
  return 0;
}
