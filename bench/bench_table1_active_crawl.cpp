// Table 1 — active measurements: crawl the top-1K sites under seven
// browser profiles, classify the captured traces with the passive
// pipeline, and report request counts plus EasyList/EasyPrivacy hits.
//
// Paper (Table 1):
//   Vanilla      7,263 HTTPS  57,862 HTTP  4,738 EL   4,807 EP
//   AdBP-Pa      4,287        48,599           6*         6*
//   AdBP-Ad      5,254        53,435          10*      4,279
//   AdBP-Pr      5,189        55,717       3,627          7*
//   Ghostery-Pa  2,908        48,765         940        624
//   Ghostery-Ad  5,734        57,425       1,326      4,668
//   Ghostery-Pr  6,902        55,394       4,514      2,865
// Shape to reproduce: blockers cut HTTP volume by ~10-20%; the blocked
// list's hits collapse to a handful of false positives (*); the other
// list's hits persist; Ghostery removes less than ABP's exact lists.
#include <cstdio>
#include <vector>

#include "experiment_common.h"
#include "stats/render.h"
#include "util/format.h"

namespace {

using namespace adscope;

struct Row {
  sim::BrowserMode mode;
  std::uint64_t https = 0;
  std::uint64_t http = 0;
  std::uint64_t el_hits = 0;
  std::uint64_t ep_hits = 0;
  bool el_fp = false;  // EL hits are false positives (blocker had EL)
  bool ep_fp = false;
};

}  // namespace

int main() {
  bench::preamble(
      "Table 1 — active crawl, 7 browser profiles",
      "ad-blockers cut ~10-20% of requests; blocked list's hits collapse "
      "to false positives (*)");

  const auto world = bench::make_world();
  const auto top_n =
      static_cast<std::size_t>(bench::env_u64("ADSCOPE_CRAWL_TOP", 1000));
  sim::CrawlSimulator crawler(world.ecosystem, world.lists, world.seed);

  const sim::BrowserMode modes[] = {
      sim::BrowserMode::kVanilla,        sim::BrowserMode::kAbpParanoia,
      sim::BrowserMode::kAbpAds,         sim::BrowserMode::kAbpPrivacy,
      sim::BrowserMode::kGhosteryParanoia, sim::BrowserMode::kGhosteryAds,
      sim::BrowserMode::kGhosteryPrivacy,
  };

  std::vector<Row> rows;
  for (const auto mode : modes) {
    const auto crawl = crawler.crawl(mode, top_n);

    core::TraceStudy study(world.engine, world.ecosystem.abp_registry());
    crawl.trace.replay(study);
    study.finish();

    Row row;
    row.mode = mode;
    row.https = crawl.https_requests;
    row.http = crawl.http_requests;
    row.el_hits = study.traffic().easylist_requests();
    row.ep_hits = study.traffic().easyprivacy_requests();
    row.el_fp = mode == sim::BrowserMode::kAbpParanoia ||
                mode == sim::BrowserMode::kAbpAds;
    row.ep_fp = mode == sim::BrowserMode::kAbpParanoia ||
                mode == sim::BrowserMode::kAbpPrivacy;
    rows.push_back(row);
  }

  auto csv = bench::maybe_csv("table1_active_crawl",
                              {"mode", "https", "http", "el_hits",
                               "ep_hits"});
  stats::TextTable table({"Browser Mode", "#HTTPS", "#HTTP", "ELhits",
                          "EPhits", "EL%ofHTTP", "HTTPvsVanilla"});
  const double vanilla_http = static_cast<double>(rows.front().http);
  for (const auto& row : rows) {
    if (csv) {
      csv->add_row({std::string(sim::to_string(row.mode)),
                    std::to_string(row.https), std::to_string(row.http),
                    std::to_string(row.el_hits),
                    std::to_string(row.ep_hits)});
    }
    table.add_row(
        {std::string(sim::to_string(row.mode)), std::to_string(row.https),
         std::to_string(row.http),
         std::to_string(row.el_hits) + (row.el_fp ? " *" : ""),
         std::to_string(row.ep_hits) + (row.ep_fp ? " *" : ""),
         util::percent(static_cast<double>(row.el_hits) /
                       static_cast<double>(row.http)),
         util::percent(static_cast<double>(row.http) / vanilla_http)});
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::printf(
      "\n(*) = the crawling browser itself filtered with this list, so "
      "remaining hits are\nmethodology false positives (Content-Type "
      "lies defeating type-scoped exceptions).\n");
  return 0;
}
