// Figure 4 — ECDF of the EasyList ad-request percentage per active
// browser (>1K requests), split by browser family.
//
// Paper: ~40% of Firefox and Chrome instances are below 1% ad requests
// (ad-blocker candidates); only ~18% of Safari and ~8% of IE instances
// fall below the threshold. Population: FF 3423, Chrome 2267, IE 654,
// Safari 1324, mobile 1.9K.
#include <cstdio>

#include "experiment_common.h"
#include "stats/render.h"
#include "util/format.h"

int main() {
  using namespace adscope;
  bench::preamble("Figure 4 — ECDF of %% ad requests per active browser",
                  "Firefox/Chrome: ~40%% below 1%%; Safari ~18%%, IE ~8%% "
                  "below the 5%% threshold");

  const auto world = bench::make_world();
  core::StudyOptions options;
  options.inference.min_requests = bench::env_u64("ADSCOPE_ACTIVE_MIN", 1000);
  core::TraceStudy study(world.engine, world.ecosystem.abp_registry(),
                         options);
  bench::run_rbn_study(world, bench::scaled_rbn2(), study);
  const auto inference = study.inference();

  std::printf("active browsers: %zu  (of %zu annotated browser pairs, "
              "%zu pairs total)\n\n",
              inference.active_browsers.size(), inference.browsers_total,
              inference.pairs_total);

  auto csv = bench::maybe_csv("fig4_browser_ecdf",
                              {"family", "ad_percent", "cdf"});
  stats::TextTable table({"Family", "n", "F(0.1%)", "F(1%)", "F(5%)",
                          "F(10%)", "median %ads"});
  auto add_curve = [&](const std::string& name, const stats::Ecdf& ecdf) {
    if (ecdf.empty()) return;
    if (csv) {
      for (const auto& [x, f] : ecdf.curve()) {
        csv->add_row({name, util::fixed(x, 4), util::fixed(f, 5)});
      }
    }
    table.add_row({name, std::to_string(ecdf.size()),
                   util::percent(ecdf.fraction_at_or_below(0.1)),
                   util::percent(ecdf.fraction_at_or_below(1.0)),
                   util::percent(ecdf.fraction_at_or_below(5.0)),
                   util::percent(ecdf.fraction_at_or_below(10.0)),
                   util::fixed(ecdf.value_at(0.5), 2) + "%"});
  };
  for (const auto& [family, ecdf] : inference.family_ecdf) {
    add_curve(std::string(ua::to_string(family)) + " (PC)", ecdf);
  }
  add_curve("Any (Mobile)", inference.mobile_ecdf);
  std::fputs(table.to_string().c_str(), stdout);
  std::printf(
      "\nF(x) = share of instances with at most x%% EasyList ad requests.\n"
      "Expected shape: Firefox/Chrome step high near 0%% (ad-blocker "
      "mass);\nSafari/IE rise late; mobile in between.\n");
  return 0;
}
