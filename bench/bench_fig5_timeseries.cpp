// Figure 5 — time series over the 4-day RBN-1 trace (1-hour bins):
// (a) ad vs non-ad request volume, (b) the share of ad requests/bytes.
//
// Paper: non-ad traffic shows the classic residential diurnal pattern
// (quiet nights, lunch dip, evening peak, quieter Saturday). The *ratio*
// of ad requests is itself diurnal, ranging ~6%..12% — explained by the
// content mix and by ad-blocker users being relatively more active
// off-peak. Overall: 17.25% of requests / 1.13% of bytes are ads; list
// shares EL 55.9%, EP 35.1%, non-intrusive rest.
#include <cstdio>

#include "experiment_common.h"
#include "stats/render.h"
#include "util/format.h"

int main() {
  using namespace adscope;
  bench::preamble("Figure 5 — ad vs non-ad traffic over time (RBN-1)",
                  "diurnal request volume; ad-request share itself "
                  "diurnal in the 6..12% range");

  const auto world = bench::make_world();
  core::TraceStudy study(world.engine, world.ecosystem.abp_registry());
  bench::run_rbn_study(world, bench::scaled_rbn1(), study);
  const auto& traffic = study.traffic();
  const auto& series = traffic.series();

  // §7.1 headline aggregates.
  const double req_share = static_cast<double>(traffic.ad_requests()) /
                           static_cast<double>(traffic.requests());
  const double byte_share = static_cast<double>(traffic.ad_bytes()) /
                            static_cast<double>(traffic.bytes());
  const double ads = static_cast<double>(traffic.ad_requests());
  std::printf("ad requests: %s of requests (paper 17.25%%), %s of bytes "
              "(paper 1.13%%)\n",
              util::percent(req_share, 2).c_str(),
              util::percent(byte_share, 2).c_str());
  std::printf("list shares: EasyList %s (paper 55.9%%), EasyPrivacy %s "
              "(paper 35.1%%), non-intrusive %s (rest)\n\n",
              util::percent(static_cast<double>(traffic.easylist_requests()) /
                            ads)
                  .c_str(),
              util::percent(
                  static_cast<double>(traffic.easyprivacy_requests()) / ads)
                  .c_str(),
              util::percent(static_cast<double>(traffic.whitelisted_requests()) /
                            ads)
                  .c_str());

  // (a) request volume sparklines, normalized per series.
  std::printf("(a) hourly request volume (Sat 00:00 + 96h; each line "
              "normalized to its own max)\n");
  const std::size_t series_ids[] = {
      core::TrafficStats::kNonAdReqs, core::TrafficStats::kEasyListReqs,
      core::TrafficStats::kEasyPrivacyReqs, core::TrafficStats::kWhitelistReqs};
  for (const auto id : series_ids) {
    std::printf("  %-18s |%s|\n", series.name(id).c_str(),
                stats::sparkline(series.series(id), series.series_max(id))
                    .c_str());
  }

  // (b) percentage of ad requests / bytes per hour.
  std::printf("\n(b) %% of requests (EL+EP) per 1h bin\n");
  std::vector<double> pct_reqs(series.bin_count(), 0.0);
  std::vector<double> pct_bytes(series.bin_count(), 0.0);
  double lo = 100.0;
  double hi = 0.0;
  for (std::size_t bin = 0; bin < series.bin_count(); ++bin) {
    const double total = series.value(core::TrafficStats::kTotalReqs, bin);
    const double total_bytes =
        series.value(core::TrafficStats::kTotalBytes, bin);
    const double ad_req = series.value(core::TrafficStats::kEasyListReqs, bin) +
                          series.value(core::TrafficStats::kEasyPrivacyReqs,
                                       bin);
    const double ad_bytes =
        series.value(core::TrafficStats::kEasyListBytes, bin) +
        series.value(core::TrafficStats::kEasyPrivacyBytes, bin);
    pct_reqs[bin] = total > 0 ? 100.0 * ad_req / total : 0.0;
    pct_bytes[bin] = total_bytes > 0 ? 100.0 * ad_bytes / total_bytes : 0.0;
    if (total > 500) {  // ignore nearly-empty bins for the range
      lo = std::min(lo, pct_reqs[bin]);
      hi = std::max(hi, pct_reqs[bin]);
    }
  }
  if (auto csv = bench::maybe_csv(
          "fig5_timeseries",
          {"hour", "total_reqs", "nonad_reqs", "easylist_reqs",
           "easyprivacy_reqs", "whitelist_reqs", "pct_ad_reqs",
           "pct_ad_bytes"})) {
    for (std::size_t bin = 0; bin < series.bin_count(); ++bin) {
      csv->add_row(
          {std::to_string(bin),
           util::fixed(series.value(core::TrafficStats::kTotalReqs, bin), 0),
           util::fixed(series.value(core::TrafficStats::kNonAdReqs, bin), 0),
           util::fixed(series.value(core::TrafficStats::kEasyListReqs, bin),
                       0),
           util::fixed(
               series.value(core::TrafficStats::kEasyPrivacyReqs, bin), 0),
           util::fixed(series.value(core::TrafficStats::kWhitelistReqs, bin),
                       0),
           util::fixed(pct_reqs[bin], 3), util::fixed(pct_bytes[bin], 3)});
    }
  }
  std::printf("  %%ad reqs  |%s| (scaled to 16%%)\n",
              stats::sparkline(pct_reqs, 16.0).c_str());
  std::printf("  %%ad bytes |%s| (scaled to 4%%)\n",
              stats::sparkline(pct_bytes, 4.0).c_str());
  std::printf("\nad-request share range across busy hours: %s .. %s "
              "(paper: ~6%%..12%%)\n",
              util::fixed(lo, 1).c_str(), util::fixed(hi, 1).c_str());
  return 0;
}
