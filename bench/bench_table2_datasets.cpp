// Table 2 — data sets: generate the RBN-1 and RBN-2 traces, write them
// through the binary trace format, and report the overview the paper
// gives (§5). Subscriber counts are scaled (ADSCOPE_HOUSEHOLDS); the
// paper's absolute values are printed alongside for reference.
//
// Paper (Table 2):
//   RBN-1: 11 Apr 2015 00:00, 4 days,   7.5K subs, 18.8T bytes, 131.95M reqs
//   RBN-2: 11 Aug 2015 15:30, 15.5 h,  19.7K subs, 11.4T bytes,  85.09M reqs
#include <cstdio>

#include "experiment_common.h"
#include "stats/render.h"
#include "trace/reader.h"
#include "trace/writer.h"
#include "util/format.h"

namespace {

using namespace adscope;

struct TraceRow {
  std::string name;
  trace::TraceMeta meta;
  std::uint64_t http_reqs = 0;
  std::uint64_t http_bytes = 0;
  std::uint64_t tls_flows = 0;
  std::uint64_t file_records = 0;
};

class Counter final : public trace::TraceSink {
 public:
  void on_meta(const trace::TraceMeta& meta) override { meta_ = meta; }
  void on_http(const trace::HttpTransaction& txn) override {
    ++http_;
    bytes_ += txn.content_length;
  }
  void on_tls(const trace::TlsFlow&) override { ++tls_; }

  trace::TraceMeta meta_;
  std::uint64_t http_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t tls_ = 0;
};

}  // namespace

int main() {
  bench::preamble("Table 2 — passive measurement data sets",
                  "RBN-1: 4d/7.5K subs/131.95M reqs/18.8TB; RBN-2: "
                  "15.5h/19.7K subs/85.09M reqs (scaled here)");

  const auto world = bench::make_world();
  sim::RbnSimulator simulator(world.ecosystem, world.lists, world.seed);

  bench::JsonMetrics json("table2_datasets");
  stats::TextTable table({"Trace", "Start", "Duration", "Subscribers",
                          "HTTPbytes", "HTTPreqs", "TLSflows",
                          "reqs/sub"});
  for (const auto& options :
       {bench::scaled_rbn1(), bench::scaled_rbn2()}) {
    const std::string path = "/tmp/adscope_" + options.name + ".adst";
    Counter counter;
    {
      trace::FileTraceWriter writer(path);
      trace::TeeSink tee;
      tee.add(writer);
      tee.add(counter);
      simulator.simulate(options, tee);
    }
    // Round-trip check: the written trace must replay identically.
    trace::FileTraceReader reader(path);
    Counter replay;
    reader.replay(replay);
    if (replay.http_ != counter.http_ || replay.tls_ != counter.tls_ ||
        replay.bytes_ != counter.bytes_) {
      std::fprintf(stderr, "trace round-trip mismatch for %s!\n",
                   options.name.c_str());
      return 1;
    }

    json.record(options.name + ".http_requests",
                static_cast<double>(counter.http_));
    json.record(options.name + ".http_bytes",
                static_cast<double>(counter.bytes_));
    json.record(options.name + ".tls_flows", static_cast<double>(counter.tls_));

    table.add_row({options.name,
                   options.name == "RBN-1" ? "Sat 00:00" : "Tue 15:30",
                   util::fixed(static_cast<double>(options.duration_s) / 3600.0,
                               1) + "h",
                   util::human_count(options.households, 1),
                   util::human_bytes(static_cast<double>(counter.bytes_)),
                   util::human_count(static_cast<double>(counter.http_)),
                   util::human_count(static_cast<double>(counter.tls_)),
                   util::fixed(static_cast<double>(counter.http_) /
                                   static_cast<double>(options.households),
                               0)});
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::printf(
      "\npaper reqs/sub: RBN-1 ~17.6K over 4 days, RBN-2 ~4.3K over 15.5 h.\n"
      "Scale factor = paper subscribers / ADSCOPE_HOUSEHOLDS; shapes are\n"
      "scale-invariant (DESIGN.md section 4.5).\n");
  return 0;
}
