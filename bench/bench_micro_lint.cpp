// Micro-benchmarks for the filter-list linter (DESIGN.md §8): full
// run_lint cost over the generated list set, pruned-text emission, and
// the payoff side — engine load time, token-index footprint and
// classification throughput of the original vs the pruned lists. A
// custom main() re-times the headline numbers and emits BENCH_lint.json
// via JsonMetrics so CI can track both the analyzer's own cost and the
// prune dividend.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "adblock/token_index.h"
#include "experiment_common.h"
#include "lint/linter.h"

namespace {

using namespace adscope;

const bench::World& world() {
  static const bench::World instance = bench::make_world();
  return instance;
}

// The four generated subscriptions, exactly as `adscope lint` would see
// them on disk.
const std::vector<lint::LintSource>& sources() {
  static const std::vector<lint::LintSource> instance = [] {
    const auto& lists = world().lists;
    return std::vector<lint::LintSource>{
        {"easylist", lists.easylist, adblock::ListKind::kEasyList},
        {"easylistgermany", lists.easylist_derivative,
         adblock::ListKind::kEasyListDerivative},
        {"easyprivacy", lists.easyprivacy, adblock::ListKind::kEasyPrivacy},
        {"exceptionrules", lists.acceptable_ads,
         adblock::ListKind::kAcceptableAds},
    };
  }();
  return instance;
}

const lint::LintResult& lint_result() {
  static const lint::LintResult instance = lint::run_lint(sources());
  return instance;
}

const std::vector<std::string>& pruned_texts() {
  static const std::vector<std::string> instance = [] {
    std::vector<std::string> out;
    for (std::size_t s = 0; s < sources().size(); ++s) {
      out.push_back(lint::emit_pruned(sources()[s].text,
                                      lint_result().prunable_lines[s]));
    }
    return out;
  }();
  return instance;
}

adblock::FilterEngine build_engine(bool pruned) {
  adblock::FilterEngine engine;
  for (std::size_t s = 0; s < sources().size(); ++s) {
    const auto& source = sources()[s];
    engine.add_list(adblock::FilterList::parse(
        pruned ? pruned_texts()[s] : source.text, source.kind, source.name));
  }
  return engine;
}

/// Total probe-table/arena/bloom footprint of the keyword indexes an
/// engine would build over these lists (blocking + exception sides).
std::size_t index_memory_bytes(bool pruned) {
  std::size_t total = 0;
  for (std::size_t s = 0; s < sources().size(); ++s) {
    const auto list = adblock::FilterList::parse(
        pruned ? pruned_texts()[s] : sources()[s].text, sources()[s].kind,
        sources()[s].name);
    adblock::TokenIndex blocking;
    adblock::TokenIndex exceptions;
    for (const auto& filter : list.filters()) {
      (filter.is_exception() ? exceptions : blocking).add(&filter);
    }
    blocking.finalize();
    exceptions.finalize();
    total += blocking.approx_memory_bytes() + exceptions.approx_memory_bytes();
  }
  return total;
}

// A stream of requests drawn from real simulated pages.
const std::vector<adblock::Request>& request_stream() {
  static const std::vector<adblock::Request> stream = [] {
    std::vector<adblock::Request> requests;
    sim::PageModel model(world().ecosystem);
    util::Rng rng(7);
    for (std::size_t site = 0; site < 200; ++site) {
      const auto page =
          model.build(site % world().ecosystem.publishers().size(), rng);
      for (const auto& request : page.requests) {
        requests.push_back(adblock::make_request(request.url, page.page_url,
                                                 request.true_type));
      }
    }
    return requests;
  }();
  return stream;
}

void BM_LintRun(benchmark::State& state) {
  for (auto _ : state) {
    auto result = lint::run_lint(sources());
    benchmark::DoNotOptimize(result.diagnostics.data());
  }
  state.counters["rules"] =
      static_cast<double>(lint_result().stats.rules);
  state.counters["prunable"] =
      static_cast<double>(lint_result().stats.prunable);
}
BENCHMARK(BM_LintRun)->Unit(benchmark::kMillisecond);

void BM_EmitPruned(benchmark::State& state) {
  for (auto _ : state) {
    for (std::size_t s = 0; s < sources().size(); ++s) {
      auto text = lint::emit_pruned(sources()[s].text,
                                    lint_result().prunable_lines[s]);
      benchmark::DoNotOptimize(text.data());
    }
  }
}
BENCHMARK(BM_EmitPruned)->Unit(benchmark::kMillisecond);

void BM_EngineLoad(benchmark::State& state) {
  const bool pruned = state.range(0) != 0;
  for (auto _ : state) {
    auto engine = build_engine(pruned);
    benchmark::DoNotOptimize(engine.active_filter_count());
  }
}
BENCHMARK(BM_EngineLoad)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("pruned")
    ->Unit(benchmark::kMillisecond);

void BM_Classify(benchmark::State& state) {
  const bool pruned = state.range(0) != 0;
  const auto engine = build_engine(pruned);
  const auto& stream = request_stream();
  std::size_t i = 0;
  for (auto _ : state) {
    const auto verdict = engine.classify(stream[i]);
    benchmark::DoNotOptimize(&verdict);
    if (++i == stream.size()) i = 0;
  }
}
BENCHMARK(BM_Classify)->Arg(0)->Arg(1)->ArgName("pruned");

// ---------------------------------------------------------------------------
// Headline numbers -> BENCH_lint.json (when ADSCOPE_JSON_DIR is set).

double elapsed_ms(void (*body)()) {
  const auto start = std::chrono::steady_clock::now();
  body();
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(stop - start).count();
}

double min_of_repeats(int repeats, double (*measure)()) {
  double best = measure();
  for (int i = 1; i < repeats; ++i) best = std::min(best, measure());
  return best;
}

double measure_lint_ms() {
  return elapsed_ms([] {
    auto result = lint::run_lint(sources());
    benchmark::DoNotOptimize(result.diagnostics.data());
  });
}

double measure_load_original_ms() {
  return elapsed_ms([] {
    auto engine = build_engine(false);
    benchmark::DoNotOptimize(engine.active_filter_count());
  });
}

double measure_load_pruned_ms() {
  return elapsed_ms([] {
    auto engine = build_engine(true);
    benchmark::DoNotOptimize(engine.active_filter_count());
  });
}

double classify_ns(const adblock::FilterEngine& engine) {
  const auto& stream = request_stream();
  const auto start = std::chrono::steady_clock::now();
  for (const auto& request : stream) {
    const auto verdict = engine.classify(request);
    benchmark::DoNotOptimize(&verdict);
  }
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(stop - start).count() /
         static_cast<double>(stream.size());
}

void emit_json_metrics() {
  bench::JsonMetrics json("lint");
  if (!json.enabled()) return;

  const auto& stats = lint_result().stats;
  json.record("rules", static_cast<double>(stats.rules));
  json.record("diagnostics",
              static_cast<double>(lint_result().diagnostics.size()));
  json.record("errors", static_cast<double>(stats.errors));
  json.record("warnings", static_cast<double>(stats.warnings));
  json.record("prunable", static_cast<double>(stats.prunable));
  json.record("lint_ms", min_of_repeats(5, &measure_lint_ms));

  const double load_original = min_of_repeats(5, &measure_load_original_ms);
  const double load_pruned = min_of_repeats(5, &measure_load_pruned_ms);
  json.record("engine_load_original_ms", load_original);
  json.record("engine_load_pruned_ms", load_pruned);

  const auto memory_original =
      static_cast<double>(index_memory_bytes(false));
  const auto memory_pruned = static_cast<double>(index_memory_bytes(true));
  json.record("index_memory_original_bytes", memory_original);
  json.record("index_memory_pruned_bytes", memory_pruned);
  json.record("index_memory_saved_bytes", memory_original - memory_pruned);

  const auto original = build_engine(false);
  const auto pruned = build_engine(true);
  double classify_original = classify_ns(original);
  double classify_pruned = classify_ns(pruned);
  for (int i = 1; i < 3; ++i) {
    classify_original = std::min(classify_original, classify_ns(original));
    classify_pruned = std::min(classify_pruned, classify_ns(pruned));
  }
  json.record("classify_original_ns", classify_original);
  json.record("classify_pruned_ns", classify_pruned);
  json.record("classify_prune_speedup", classify_original / classify_pruned);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  emit_json_metrics();
  return 0;
}
