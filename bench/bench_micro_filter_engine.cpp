// Micro-benchmarks: filter-engine throughput and the token-index
// ablation (DESIGN.md §4.1) — keyword-indexed candidate selection vs a
// linear scan over all filters, plus parsing and URL tokenization costs.
//
// PR 3 additions: compiled-vs-oracle matcher ablation, classification
// cache on/off over a Zipf-repetitive stream, and a cold-vs-warm
// latency distribution. A custom main() re-times the headline numbers
// and emits BENCH_filter_engine.json via JsonMetrics so CI can track
// the speedup against the recorded pre-rewrite baseline.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <vector>

#include "adblock/classify_cache.h"
#include "adblock/token_index.h"
#include "experiment_common.h"

namespace {

using namespace adscope;

// BM_EngineClassify on the seed (pre-compiled-matcher) engine, measured
// on the reference box. The JSON metrics report the current build
// against this so regressions show up as a shrinking speedup.
constexpr double kSeedClassifyNs = 1720.0;

const bench::World& world() {
  static const bench::World instance = bench::make_world();
  return instance;
}

// A stream of requests drawn from real simulated pages.
const std::vector<adblock::Request>& request_stream() {
  static const std::vector<adblock::Request> stream = [] {
    std::vector<adblock::Request> requests;
    sim::PageModel model(world().ecosystem);
    util::Rng rng(7);
    for (std::size_t site = 0; site < 200; ++site) {
      const auto page = model.build(
          site % world().ecosystem.publishers().size(), rng);
      for (const auto& request : page.requests) {
        requests.push_back(adblock::make_request(request.url, page.page_url,
                                                 request.true_type));
      }
    }
    return requests;
  }();
  return stream;
}

// Zipf-ish revisit pattern over the stream: repeated resources dominate
// (u^6 concentrates ~85% of draws on the first ~40% of requests), which
// is what a classification cache actually sees in trace replay.
const std::vector<std::uint32_t>& zipf_indices() {
  static const std::vector<std::uint32_t> indices = [] {
    const auto n = request_stream().size();
    util::Rng rng(11);
    std::vector<std::uint32_t> out(1 << 15);
    for (auto& index : out) {
      const double u =
          static_cast<double>(rng.next() >> 11) * 0x1.0p-53;  // [0,1)
      index = static_cast<std::uint32_t>(
          std::min<double>(std::pow(u, 6.0) * static_cast<double>(n),
                           static_cast<double>(n - 1)));
    }
    return out;
  }();
  return indices;
}

// One cache-mediated classification, exactly as TraceClassifier does it:
// key on the raw spec + page context, skip tokenize/classify on a hit.
adblock::Classification classify_via_cache(adblock::ClassifyCache& cache,
                                           adblock::TokenScratch& scratch,
                                           const adblock::Request& request) {
  const auto key1 = adblock::ClassifyCache::key_of_url(request.url);
  const auto key2 = adblock::ClassifyCache::key_of_context(
      request.page_url_lower, request.type);
  const auto epoch = world().engine.config_epoch();
  if (cache.enabled()) {
    if (const auto* hit = cache.find(key1, key2, epoch)) return *hit;
  }
  const auto verdict =
      world().engine.classify(adblock::RequestView(request),
                              scratch.tokenize(request.url_lower));
  if (cache.enabled()) cache.insert(key1, key2, epoch, verdict);
  return verdict;
}

void BM_EngineClassify(benchmark::State& state) {
  const auto& requests = request_stream();
  std::size_t i = 0;
  std::uint64_t ads = 0;
  for (auto _ : state) {
    ads += world().engine.classify(requests[i]).is_ad();
    i = (i + 1) % requests.size();
  }
  benchmark::DoNotOptimize(ads);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EngineClassify);

// Ablation: linear scan over every filter of every list.
void BM_EngineClassifyLinearScan(benchmark::State& state) {
  const auto& requests = request_stream();
  const auto& engine = world().engine;
  std::size_t i = 0;
  std::uint64_t hits = 0;
  for (auto _ : state) {
    const auto& request = requests[i];
    const adblock::Filter* blocking = nullptr;
    const adblock::Filter* exception = nullptr;
    for (std::size_t l = 0; l < engine.list_count(); ++l) {
      for (const auto& filter :
           engine.list(static_cast<adblock::ListId>(l)).filters()) {
        if (filter.is_exception()) {
          if (exception == nullptr && filter.matches(request)) {
            exception = &filter;
          }
        } else if (blocking == nullptr && filter.matches(request)) {
          blocking = &filter;
        }
      }
    }
    hits += blocking != nullptr && exception == nullptr;
    i = (i + 1) % requests.size();
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EngineClassifyLinearScan);

// Ablation: cache on (arg = entries) vs off (arg = 0) over the Zipf
// revisit stream. The delta is what TraceClassifier saves per request.
void BM_EngineClassifyCached(benchmark::State& state) {
  const auto& requests = request_stream();
  const auto& order = zipf_indices();
  adblock::ClassifyCache cache(static_cast<std::size_t>(state.range(0)));
  adblock::TokenScratch scratch;
  std::size_t i = 0;
  std::uint64_t ads = 0;
  for (auto _ : state) {
    ads += classify_via_cache(cache, scratch, requests[order[i]]).is_ad();
    i = (i + 1) % order.size();
  }
  benchmark::DoNotOptimize(ads);
  state.SetItemsProcessed(state.iterations());
  if (cache.enabled()) {
    state.counters["hit_rate"] =
        static_cast<double>(cache.hits()) /
        static_cast<double>(std::max<std::uint64_t>(
            cache.hits() + cache.misses(), 1));
  }
}
BENCHMARK(BM_EngineClassifyCached)->Arg(0)->Arg(4096);

// Ablation: compiled pattern programs vs the recursive oracle, over
// every (filter, url) pair of the generated EasyList x request stream.
template <bool kOracle>
void match_benchmark(benchmark::State& state) {
  const auto& requests = request_stream();
  const auto& filters = world().engine.list(0).filters();
  std::size_t i = 0;
  std::uint64_t matched = 0;
  for (auto _ : state) {
    const auto& request = requests[i % requests.size()];
    const auto& filter = filters[(i / requests.size()) % filters.size()];
    if constexpr (kOracle) {
      matched += filter.matches_url_oracle(request.url_lower, request.url);
    } else {
      matched += filter.matches_url(request.url_lower, request.url);
    }
    ++i;
  }
  benchmark::DoNotOptimize(matched);
  state.SetItemsProcessed(state.iterations());
}

void BM_FilterMatchCompiled(benchmark::State& state) {
  match_benchmark<false>(state);
}
BENCHMARK(BM_FilterMatchCompiled);

void BM_FilterMatchOracle(benchmark::State& state) {
  match_benchmark<true>(state);
}
BENCHMARK(BM_FilterMatchOracle);

void BM_UrlTokenize(benchmark::State& state) {
  const auto& requests = request_stream();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        adblock::url_token_hashes(requests[i].url_lower));
    i = (i + 1) % requests.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_UrlTokenize);

// The scratch variant the hot path actually uses (no per-call vector).
void BM_UrlTokenizeScratch(benchmark::State& state) {
  const auto& requests = request_stream();
  adblock::TokenScratch scratch;
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(scratch.tokenize(requests[i].url_lower));
    i = (i + 1) % requests.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_UrlTokenizeScratch);

void BM_ListParse(benchmark::State& state) {
  const auto& lists = world().lists;
  for (auto _ : state) {
    auto parsed = adblock::FilterList::parse(
        lists.easylist, adblock::ListKind::kEasyList, "easylist");
    benchmark::DoNotOptimize(parsed.filters().size());
  }
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(world().lists.easylist.size()));
}
BENCHMARK(BM_ListParse);

void BM_EngineBuild(benchmark::State& state) {
  for (auto _ : state) {
    auto engine = sim::make_engine(world().lists,
                                   sim::ListSelection{.easylist = true,
                                                      .derivative = true,
                                                      .easyprivacy = true,
                                                      .acceptable_ads = true});
    benchmark::DoNotOptimize(engine.active_filter_count());
  }
}
BENCHMARK(BM_EngineBuild);

// --- JSON metrics (custom main) ---------------------------------------
// Re-times the headline paths with a steady clock (min of repeats, so a
// busy CI neighbour inflates nothing) and records them next to the
// seed baseline. Inert unless ADSCOPE_JSON_DIR is set.

using Clock = std::chrono::steady_clock;

double min_of_repeats(int repeats, double (*measure)()) {
  (void)measure();  // warm-up: fault in code and data, settle the clock
  double best = measure();
  for (int r = 1; r < repeats; ++r) best = std::min(best, measure());
  return best;
}

double measure_classify_ns() {
  const auto& requests = request_stream();
  std::uint64_t ads = 0;
  const std::size_t iterations = 16 * requests.size();
  const auto start = Clock::now();
  for (std::size_t i = 0; i < iterations; ++i) {
    ads += world().engine.classify(requests[i % requests.size()]).is_ad();
  }
  const auto stop = Clock::now();
  benchmark::DoNotOptimize(ads);
  return std::chrono::duration<double, std::nano>(stop - start).count() /
         static_cast<double>(iterations);
}

double measure_cached_ns(std::size_t entries) {
  const auto& requests = request_stream();
  const auto& order = zipf_indices();
  adblock::ClassifyCache cache(entries);
  adblock::TokenScratch scratch;
  std::uint64_t ads = 0;
  const std::size_t iterations = 2 * order.size();
  const auto start = Clock::now();
  for (std::size_t i = 0; i < iterations; ++i) {
    ads += classify_via_cache(cache, scratch, requests[order[i % order.size()]])
               .is_ad();
  }
  const auto stop = Clock::now();
  benchmark::DoNotOptimize(ads);
  return std::chrono::duration<double, std::nano>(stop - start).count() /
         static_cast<double>(iterations);
}

double measure_cached_on_ns() { return measure_cached_ns(4096); }
double measure_cached_off_ns() { return measure_cached_ns(0); }

double percentile(std::vector<double>& samples, double q) {
  std::sort(samples.begin(), samples.end());
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(samples.size() - 1));
  return samples[rank];
}

// Cold pass (every lookup misses) vs warm pass (hot head hits) over the
// same stream, per-call latencies for tail percentiles.
void record_cold_warm(bench::JsonMetrics& json) {
  const auto& requests = request_stream();
  adblock::ClassifyCache cache(1 << 15);  // roomy: second pass is all hits
  adblock::TokenScratch scratch;
  std::vector<double> cold;
  std::vector<double> warm;
  cold.reserve(requests.size());
  warm.reserve(requests.size());
  for (int pass = 0; pass < 2; ++pass) {
    auto& samples = pass == 0 ? cold : warm;
    for (const auto& request : requests) {
      const auto start = Clock::now();
      benchmark::DoNotOptimize(classify_via_cache(cache, scratch, request));
      const auto stop = Clock::now();
      samples.push_back(
          std::chrono::duration<double, std::nano>(stop - start).count());
    }
  }
  json.record("classify_cold_p50_ns", percentile(cold, 0.50));
  json.record("classify_cold_p99_ns", percentile(cold, 0.99));
  json.record("classify_warm_p50_ns", percentile(warm, 0.50));
  json.record("classify_warm_p99_ns", percentile(warm, 0.99));
}

void emit_json_metrics() {
  bench::JsonMetrics json("filter_engine");
  if (!json.enabled()) return;

  const double after_ns = min_of_repeats(5, &measure_classify_ns);
  json.record("classify_ns_baseline", kSeedClassifyNs);
  json.record("classify_ns", after_ns);
  json.record("classify_speedup_vs_baseline", kSeedClassifyNs / after_ns);

  const double cache_on_ns = min_of_repeats(3, &measure_cached_on_ns);
  const double cache_off_ns = min_of_repeats(3, &measure_cached_off_ns);
  json.record("classify_cached_ns", cache_on_ns);
  json.record("classify_uncached_ns", cache_off_ns);
  json.record("classify_cache_speedup", cache_off_ns / cache_on_ns);

  record_cold_warm(json);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  emit_json_metrics();
  return 0;
}
