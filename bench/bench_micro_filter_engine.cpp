// Micro-benchmarks: filter-engine throughput and the token-index
// ablation (DESIGN.md §4.1) — keyword-indexed candidate selection vs a
// linear scan over all filters, plus parsing and URL tokenization costs.
#include <benchmark/benchmark.h>

#include <vector>

#include "experiment_common.h"

namespace {

using namespace adscope;

const bench::World& world() {
  static const bench::World instance = bench::make_world();
  return instance;
}

// A stream of requests drawn from real simulated pages.
const std::vector<adblock::Request>& request_stream() {
  static const std::vector<adblock::Request> stream = [] {
    std::vector<adblock::Request> requests;
    sim::PageModel model(world().ecosystem);
    util::Rng rng(7);
    for (std::size_t site = 0; site < 200; ++site) {
      const auto page = model.build(
          site % world().ecosystem.publishers().size(), rng);
      for (const auto& request : page.requests) {
        requests.push_back(adblock::make_request(request.url, page.page_url,
                                                 request.true_type));
      }
    }
    return requests;
  }();
  return stream;
}

void BM_EngineClassify(benchmark::State& state) {
  const auto& requests = request_stream();
  std::size_t i = 0;
  std::uint64_t ads = 0;
  for (auto _ : state) {
    ads += world().engine.classify(requests[i]).is_ad();
    i = (i + 1) % requests.size();
  }
  benchmark::DoNotOptimize(ads);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EngineClassify);

// Ablation: linear scan over every filter of every list.
void BM_EngineClassifyLinearScan(benchmark::State& state) {
  const auto& requests = request_stream();
  const auto& engine = world().engine;
  std::size_t i = 0;
  std::uint64_t hits = 0;
  for (auto _ : state) {
    const auto& request = requests[i];
    const adblock::Filter* blocking = nullptr;
    const adblock::Filter* exception = nullptr;
    for (std::size_t l = 0; l < engine.list_count(); ++l) {
      for (const auto& filter :
           engine.list(static_cast<adblock::ListId>(l)).filters()) {
        if (filter.is_exception()) {
          if (exception == nullptr && filter.matches(request)) {
            exception = &filter;
          }
        } else if (blocking == nullptr && filter.matches(request)) {
          blocking = &filter;
        }
      }
    }
    hits += blocking != nullptr && exception == nullptr;
    i = (i + 1) % requests.size();
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EngineClassifyLinearScan);

void BM_UrlTokenize(benchmark::State& state) {
  const auto& requests = request_stream();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        adblock::url_token_hashes(requests[i].url_lower));
    i = (i + 1) % requests.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_UrlTokenize);

void BM_ListParse(benchmark::State& state) {
  const auto& lists = world().lists;
  for (auto _ : state) {
    auto parsed = adblock::FilterList::parse(
        lists.easylist, adblock::ListKind::kEasyList, "easylist");
    benchmark::DoNotOptimize(parsed.filters().size());
  }
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(world().lists.easylist.size()));
}
BENCHMARK(BM_ListParse);

void BM_EngineBuild(benchmark::State& state) {
  for (auto _ : state) {
    auto engine = sim::make_engine(world().lists,
                                   sim::ListSelection{.easylist = true,
                                                      .derivative = true,
                                                      .easyprivacy = true,
                                                      .acceptable_ads = true});
    benchmark::DoNotOptimize(engine.active_filter_count());
  }
}
BENCHMARK(BM_EngineBuild);

}  // namespace

BENCHMARK_MAIN();
