// Table 3 — ad-blocker usage classes from the two indicators:
// (i) low EasyList ad-request ratio (<= 5%), (ii) HTTPS connections to
// Adblock Plus update servers from the same household.
//
// Paper (Table 3, active browsers):
//   A (ratio x, dl x): 46.8% of instances, 22.5% reqs, 46.3% ad reqs
//   B (ratio x, dl ok): 15.7%              8.1%       15.8%
//   C (ratio ok, dl ok): 22.2%            12.9%        6.5%   <- likely ABP
//   D (ratio ok, dl x): 15.3%              7.1%        4.0%
// Plus: 19.7% of households contact Adblock Plus servers; ~31% of
// Firefox/Chrome instances are type C.
#include <cstdio>

#include "experiment_common.h"
#include "stats/render.h"
#include "util/format.h"

int main() {
  using namespace adscope;
  bench::preamble("Table 3 — indicator cross product (A/B/C/D classes)",
                  "C (likely Adblock Plus) = 22.2% of active browsers, "
                  "carrying only 6.5% of ad requests");

  const auto world = bench::make_world();
  core::StudyOptions options;
  options.inference.min_requests = bench::env_u64("ADSCOPE_ACTIVE_MIN", 1000);
  core::TraceStudy study(world.engine, world.ecosystem.abp_registry(),
                         options);
  sim::RbnStats truth = bench::run_rbn_study(world, bench::scaled_rbn2(),
                                             study);
  const auto inference = study.inference();

  const double active = static_cast<double>(inference.active_browsers.size());
  const double trace_reqs = static_cast<double>(inference.trace_requests);
  const double trace_ads = static_cast<double>(inference.trace_ad_requests);

  auto csv = bench::maybe_csv("table3_indicators",
                              {"class", "instances", "requests",
                               "ad_requests"});
  stats::TextTable table({"Type", "Ratio<=5%", "EasyListDL", "Instances",
                          "% reqs", "% ad reqs"});
  const char* marks[4][2] = {{"no", "no"}, {"no", "yes"},
                             {"yes", "yes"}, {"yes", "no"}};
  for (std::size_t c = 0; c < 4; ++c) {
    const auto& row = inference.classes[c];
    if (csv) {
      csv->add_row({std::string(1, core::to_char(
                                       static_cast<core::IndicatorClass>(c))),
                    std::to_string(row.instances),
                    std::to_string(row.requests),
                    std::to_string(row.ad_requests)});
    }
    table.add_row(
        {std::string(1, core::to_char(static_cast<core::IndicatorClass>(c))),
         marks[c][0], marks[c][1],
         util::percent(static_cast<double>(row.instances) / active),
         util::percent(static_cast<double>(row.requests) / trace_reqs),
         util::percent(static_cast<double>(row.ad_requests) / trace_ads)});
  }
  std::fputs(table.to_string().c_str(), stdout);

  std::printf("\nactive browsers: %zu; likely Adblock Plus users (type C): "
              "%s of active\n",
              inference.active_browsers.size(),
              util::percent(inference.abp_share()).c_str());
  std::printf("households contacting AdblockPlus servers: %s (paper: "
              "19.7%%)\n",
              util::percent(static_cast<double>(
                                study.users().abp_household_count()) /
                            static_cast<double>(
                                study.users().household_count()))
                  .c_str());

  // Per-family type-C share (paper: ~31% of FF/Chrome, ~11% Safari).
  std::printf("\ntype-C share within family (paper: FF+Chrome ~31%%):\n");
  std::map<ua::BrowserFamily, std::pair<int, int>> per_family;
  for (const auto& browser : inference.active_browsers) {
    auto& [c_count, total] = per_family[browser.agent.family];
    ++total;
    if (browser.cls == core::IndicatorClass::kC) ++c_count;
  }
  for (const auto& [family, counts] : per_family) {
    if (counts.second == 0) continue;
    std::printf("  %-8s %s (%d of %d)\n",
                std::string(ua::to_string(family)).c_str(),
                util::percent(static_cast<double>(counts.first) /
                              static_cast<double>(counts.second))
                    .c_str(),
                counts.first, counts.second);
  }

  // Ground-truth check (simulator knows who really runs ABP).
  std::size_t truth_abp = 0;
  for (const auto& browser : truth.truth) {
    truth_abp += browser.blocker == sim::BlockerKind::kAdblockPlus;
  }
  std::printf("\nsimulator ground truth: %zu of %zu browsers run Adblock "
              "Plus (%s)\n",
              truth_abp, truth.truth.size(),
              util::percent(static_cast<double>(truth_abp) /
                            static_cast<double>(truth.truth.size()))
                  .c_str());
  return 0;
}
