// Micro-benchmarks: SIMD kernel ablations (DESIGN.md §9) — every
// dispatched kernel timed at every level the host supports (off / sse2
// / avx2 via util::simd::set_level), plus the Teddy prefilter on/off
// and the mmap advice (hugepage/willneed/prefetch) on/off deltas.
//
// The headline is end-to-end classification against the PR-3 anchor
// (757 ns/request on the reference box, recorded when the compiled
// matcher + flat token index landed): the SIMD tokenizer + Teddy
// prefilter must move that number, not just kernel microseconds. A
// custom main() re-times the headline with a steady clock and emits
// BENCH_simd.json via JsonMetrics (inert unless ADSCOPE_JSON_DIR is
// set) with one row per (kernel, level) so CI tracks the whole
// ablation matrix as a trajectory.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "adblock/teddy.h"
#include "adblock/token_index.h"
#include "experiment_common.h"
#include "trace/mmap_reader.h"
#include "trace/view.h"
#include "trace/writer.h"

namespace {

using namespace adscope;
using util::simd::Level;

// BM_EngineClassify after PR 3 (compiled matcher + flat token index +
// classify cache), measured on the reference box. This PR's vectorized
// tokenize + Teddy candidate pruning is measured against it.
constexpr double kPr3ClassifyNs = 757.0;

const bench::World& world() {
  static const bench::World instance = bench::make_world();
  return instance;
}

const std::vector<adblock::Request>& request_stream() {
  static const std::vector<adblock::Request> stream = [] {
    std::vector<adblock::Request> requests;
    sim::PageModel model(world().ecosystem);
    util::Rng rng(7);
    for (std::size_t site = 0; site < 200; ++site) {
      const auto page = model.build(
          site % world().ecosystem.publishers().size(), rng);
      for (const auto& request : page.requests) {
        requests.push_back(adblock::make_request(request.url, page.page_url,
                                                 request.true_type));
      }
    }
    return requests;
  }();
  return stream;
}

/// All lowercased request URLs, concatenated (byte-throughput corpus).
const std::string& url_corpus() {
  static const std::string corpus = [] {
    std::string all;
    for (const auto& request : request_stream()) all += request.url_lower;
    return all;
  }();
  return corpus;
}

/// Teddy masks compiled from the same filters the engine indexes.
const adblock::TeddyPrefilter& corpus_teddy() {
  static const adblock::TeddyPrefilter instance = [] {
    adblock::TeddyPrefilter teddy;
    for (std::size_t l = 0; l < world().engine.list_count(); ++l) {
      for (const auto& filter :
           world().engine.list(static_cast<adblock::ListId>(l)).filters()) {
        teddy.add(filter);
      }
    }
    return teddy;
  }();
  return instance;
}

/// Pin the dispatch level for one benchmark run; skip when the host
/// cannot run it (so the suite is portable to non-AVX2 boxes).
bool pin_level(benchmark::State& state, Level level) {
  if (util::simd::set_level(level) != level) {
    state.SkipWithError("SIMD level unavailable on this host");
    return false;
  }
  return true;
}

void BM_SimdToLower(benchmark::State& state) {
  if (!pin_level(state, static_cast<Level>(state.range(0)))) return;
  const auto& corpus = url_corpus();
  std::string out(corpus.size(), '\0');
  for (auto _ : state) {
    util::simd::to_lower(corpus.data(), out.data(), corpus.size());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(corpus.size()));
  util::simd::set_level(util::simd::detect_level());
}
BENCHMARK(BM_SimdToLower)->Arg(0)->Arg(1)->Arg(2);

void BM_SimdSeparatorBits(benchmark::State& state) {
  if (!pin_level(state, static_cast<Level>(state.range(0)))) return;
  const auto& corpus = url_corpus();
  std::vector<std::uint64_t> bits(corpus.size() / 64 + 1);
  for (auto _ : state) {
    util::simd::separator_bits(corpus.data(), corpus.size(), bits.data());
    benchmark::DoNotOptimize(bits.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(corpus.size()));
  util::simd::set_level(util::simd::detect_level());
}
BENCHMARK(BM_SimdSeparatorBits)->Arg(0)->Arg(1)->Arg(2);

void BM_SimdTokenizeScratch(benchmark::State& state) {
  if (!pin_level(state, static_cast<Level>(state.range(0)))) return;
  const auto& requests = request_stream();
  adblock::TokenScratch scratch;
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(scratch.tokenize(requests[i].url_lower));
    i = (i + 1) % requests.size();
  }
  state.SetItemsProcessed(state.iterations());
  util::simd::set_level(util::simd::detect_level());
}
BENCHMARK(BM_SimdTokenizeScratch)->Arg(0)->Arg(1)->Arg(2);

void BM_SimdTeddyScan(benchmark::State& state) {
  if (!pin_level(state, static_cast<Level>(state.range(0)))) return;
  const auto& requests = request_stream();
  const auto& teddy = corpus_teddy();
  std::size_t i = 0;
  std::uint64_t acc = 0;
  for (auto _ : state) {
    acc += teddy.scan(requests[i].url_lower);
    i = (i + 1) % requests.size();
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(state.iterations());
  util::simd::set_level(util::simd::detect_level());
}
BENCHMARK(BM_SimdTeddyScan)->Arg(0)->Arg(1)->Arg(2);

// Headline: end-to-end classification. Args: (level, teddy on/off).
void BM_EngineClassifySimd(benchmark::State& state) {
  if (!pin_level(state, static_cast<Level>(state.range(0)))) return;
  adblock::TokenIndex::set_prefilter_enabled(state.range(1) != 0);
  const auto& requests = request_stream();
  std::size_t i = 0;
  std::uint64_t ads = 0;
  for (auto _ : state) {
    ads += world().engine.classify(requests[i]).is_ad();
    i = (i + 1) % requests.size();
  }
  benchmark::DoNotOptimize(ads);
  state.SetItemsProcessed(state.iterations());
  adblock::TokenIndex::set_prefilter_enabled(true);
  util::simd::set_level(util::simd::detect_level());
}
BENCHMARK(BM_EngineClassifySimd)
    ->Args({0, 0})
    ->Args({0, 1})
    ->Args({1, 1})
    ->Args({2, 1})
    ->Args({2, 0});

// Mmap decode with and without the advice bundle (MADV_WILLNEED +
// MADV_HUGEPAGE + software prefetch). Arg: advice on/off.
const std::string& bench_trace_path() {
  static const std::string path = [] {
    const std::string file = "/tmp/adscope_bench_simd_trace.adst";
    trace::MemoryTrace memory;
    sim::RbnSimulator simulator(world().ecosystem, world().lists, 42);
    auto options = sim::rbn2_options(40);
    options.duration_s = 2 * 3600;
    simulator.simulate(options, memory);
    trace::FileTraceWriter writer(file);
    memory.replay(writer);
    writer.close();
    return file;
  }();
  return path;
}

struct NullBatchSink final : trace::TraceBatchSink {
  void on_meta(const trace::TraceMeta&) override {}
  void on_http_batch(
      std::span<const trace::HttpTransactionView> batch) override {
    for (const auto& view : batch) checksum += view.timestamp_ms;
  }
  void on_tls_batch(std::span<const trace::TlsFlowView> batch) override {
    for (const auto& flow : batch) checksum += flow.bytes;
  }
  std::uint64_t checksum = 0;
};

trace::MmapTraceReader::Options advice_options(bool advised) {
  trace::MmapTraceReader::Options options;
  options.madv_willneed = advised;
  options.madv_hugepage = advised;
  options.prefetch = advised;
  return options;
}

void BM_MmapDecodeAdvice(benchmark::State& state) {
  trace::MmapTraceReader reader(bench_trace_path(),
                                advice_options(state.range(0) != 0));
  NullBatchSink sink;
  std::uint64_t records = 0;
  for (auto _ : state) {
    records = reader.replay_batches(sink);
  }
  benchmark::DoNotOptimize(sink.checksum);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(records));
}
BENCHMARK(BM_MmapDecodeAdvice)->Arg(0)->Arg(1);

// --- JSON metrics (custom main) ---------------------------------------

using Clock = std::chrono::steady_clock;

template <typename Body>
double best_seconds(int reps, Body&& body) {
  body();  // warm-up
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto start = Clock::now();
    body();
    best = std::min(best,
                    std::chrono::duration<double>(Clock::now() - start)
                        .count());
  }
  return best;
}

double measure_classify_ns() {
  const auto& requests = request_stream();
  std::uint64_t ads = 0;
  const std::size_t iterations = 16 * requests.size();
  const double seconds = best_seconds(5, [&] {
    for (std::size_t i = 0; i < iterations; ++i) {
      ads += world().engine.classify(requests[i % requests.size()]).is_ad();
    }
  });
  benchmark::DoNotOptimize(ads);
  return seconds * 1e9 / static_cast<double>(iterations);
}

void emit_json_metrics() {
  bench::JsonMetrics json("simd");
  if (!json.enabled()) return;

  const auto& corpus = url_corpus();
  const auto& requests = request_stream();
  const Level best = util::simd::detect_level();
  json.record("detected_level", static_cast<double>(best));
  json.record("classify_ns_anchor_pr3", kPr3ClassifyNs);

  for (const auto level : {Level::kScalar, Level::kSse2, Level::kAvx2}) {
    if (util::simd::set_level(level) != level) continue;
    const std::string tag = util::simd::to_string(level);

    std::string lowered(corpus.size(), '\0');
    const double lower_s = best_seconds(5, [&] {
      util::simd::to_lower(corpus.data(), lowered.data(), corpus.size());
      benchmark::DoNotOptimize(lowered.data());
    });
    json.record("tolower_gbps_" + tag,
                static_cast<double>(corpus.size()) / lower_s / 1e9);

    std::vector<std::uint64_t> bits(corpus.size() / 64 + 1);
    const double sep_s = best_seconds(5, [&] {
      util::simd::separator_bits(corpus.data(), corpus.size(), bits.data());
      benchmark::DoNotOptimize(bits.data());
    });
    json.record("separator_bits_gbps_" + tag,
                static_cast<double>(corpus.size()) / sep_s / 1e9);

    adblock::TokenScratch scratch;
    const double tokenize_s = best_seconds(5, [&] {
      for (const auto& request : requests) {
        benchmark::DoNotOptimize(scratch.tokenize(request.url_lower));
      }
    });
    json.record("tokenize_ns_" + tag,
                tokenize_s * 1e9 / static_cast<double>(requests.size()));

    const auto& teddy = corpus_teddy();
    std::uint64_t acc = 0;
    const double teddy_s = best_seconds(5, [&] {
      for (const auto& request : requests) acc += teddy.scan(request.url_lower);
    });
    benchmark::DoNotOptimize(acc);
    json.record("teddy_scan_ns_" + tag,
                teddy_s * 1e9 / static_cast<double>(requests.size()));

    json.record("classify_ns_" + tag, measure_classify_ns());
  }

  // Teddy ablation at the best level: identical decisions, more probes.
  util::simd::set_level(best);
  adblock::TokenIndex::set_prefilter_enabled(false);
  json.record("classify_ns_best_no_teddy", measure_classify_ns());
  adblock::TokenIndex::set_prefilter_enabled(true);
  const double best_ns = measure_classify_ns();
  json.record("classify_ns_best", best_ns);
  json.record("classify_speedup_vs_pr3", kPr3ClassifyNs / best_ns);

  // Mmap advice ablation (per-record decode cost, warm cache).
  for (const bool advised : {false, true}) {
    trace::MmapTraceReader reader(bench_trace_path(),
                                  advice_options(advised));
    NullBatchSink sink;
    std::uint64_t records = 1;
    const double decode_s =
        best_seconds(5, [&] { records = reader.replay_batches(sink); });
    benchmark::DoNotOptimize(sink.checksum);
    json.record(advised ? "mmap_decode_ns_advised" : "mmap_decode_ns_plain",
                decode_s * 1e9 / static_cast<double>(records));
    if (advised) {
      const auto& advice = reader.advice_stats();
      json.record("mmap_advice_hugepage_ok", advice.hugepage ? 1.0 : 0.0);
      json.record("mmap_advice_willneed_ok", advice.willneed ? 1.0 : 0.0);
    }
  }
  std::remove(bench_trace_path().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  emit_json_metrics();
  return 0;
}
