// Figure 3 — heat map of total requests vs ad requests per
// (IP, User-Agent) pair in RBN-2.
//
// Paper: 508.7K pairs, 18.89% ad requests overall; most pairs issue a
// significant share of ad requests, while a visible population issues
// many requests but hardly any ads (ad-blocker users and ad-free
// automation) — the lower-right region.
#include <cmath>
#include <cstdio>

#include "experiment_common.h"
#include "stats/heatmap.h"
#include "stats/render.h"
#include "util/format.h"

int main() {
  using namespace adscope;
  bench::preamble("Figure 3 — requests vs ad requests per (IP, User-Agent)",
                  "18.89% ad requests; dense diagonal plus a low-ad, "
                  "high-volume population (ad-blockers)");

  const auto world = bench::make_world();
  core::TraceStudy study(world.engine, world.ecosystem.abp_registry());
  bench::run_rbn_study(world, bench::scaled_rbn2(), study);

  stats::LogLogHeatmap map(/*log10_max_x=*/5.0, /*log10_max_y=*/4.0,
                           /*bins_x=*/64, /*bins_y=*/24);
  std::uint64_t pairs = 0;
  for (const auto& [key, user] : study.users().users()) {
    map.add(static_cast<double>(user.requests),
            static_cast<double>(user.ad_requests()));
    ++pairs;
  }

  const double ad_share =
      static_cast<double>(study.users().total_ad_requests()) /
      static_cast<double>(study.users().total_requests());
  std::printf("pairs (IP, User-Agent): %llu   (paper: 508.7K)\n",
              static_cast<unsigned long long>(pairs));
  std::printf("ad requests overall:    %s (paper: 18.89%%)\n\n",
              util::percent(ad_share, 2).c_str());
  std::printf("y = ad requests (log, up to 10^4) | x = total requests "
              "(log, up to 10^5)\n");
  std::fputs(stats::render_heatmap(map, 24).c_str(), stdout);
  std::printf("\nLook for: mass along the diagonal (regular browsing) and "
              "a bottom-right band\n(many requests, few ads) = ad-blocker "
              "users + ad-free device noise.\n");
  return 0;
}
