// Micro-benchmarks: end-to-end pipeline stages — trace serialization,
// Bro-style extraction, full classification (referrer map + type
// inference + normalization + engine), and UA parsing.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/classifier.h"
#include "experiment_common.h"
#include "html/tokenizer.h"
#include "pcap/pcap.h"
#include "trace/reader.h"
#include "trace/writer.h"
#include "ua/user_agent.h"

namespace {

using namespace adscope;

const bench::World& world() {
  static const bench::World instance = bench::make_world();
  return instance;
}

// A small RBN trace shared by the benchmarks below.
const trace::MemoryTrace& sample_trace() {
  static const trace::MemoryTrace trace = [] {
    trace::MemoryTrace memory;
    sim::RbnSimulator simulator(world().ecosystem, world().lists,
                                world().seed);
    auto options = sim::rbn2_options(40);
    options.duration_s = 4 * 3600;
    simulator.simulate(options, memory);
    return memory;
  }();
  return trace;
}

void BM_TraceWrite(benchmark::State& state) {
  const auto& trace = sample_trace();
  for (auto _ : state) {
    trace::FileTraceWriter writer("/tmp/adscope_bench.adst");
    trace.replay(writer);
    writer.close();
    benchmark::DoNotOptimize(writer.records_written());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>((trace.http().size() + trace.tls().size())));
}
BENCHMARK(BM_TraceWrite);

void BM_TraceRead(benchmark::State& state) {
  {
    trace::FileTraceWriter writer("/tmp/adscope_bench.adst");
    sample_trace().replay(writer);
  }
  for (auto _ : state) {
    trace::FileTraceReader reader("/tmp/adscope_bench.adst");
    trace::MemoryTrace memory;
    benchmark::DoNotOptimize(reader.replay(memory));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(sample_trace().http().size() + sample_trace().tls().size()));
}
BENCHMARK(BM_TraceRead);

void BM_FullClassificationPipeline(benchmark::State& state) {
  const auto& trace = sample_trace();
  for (auto _ : state) {
    analyzer::HttpExtractor extractor;
    core::TraceClassifier classifier(world().engine);
    std::uint64_t ads = 0;
    classifier.set_callback([&](const core::ClassifiedObject& object) {
      ads += object.verdict.is_ad();
    });
    extractor.set_object_callback(
        [&](const analyzer::WebObject& object) { classifier.process(object); });
    for (const auto& txn : trace.http()) extractor.on_http(txn);
    classifier.flush();
    benchmark::DoNotOptimize(ads);
  }
  state.SetItemsProcessed(
      state.iterations() * static_cast<std::int64_t>(trace.http().size()));
}
BENCHMARK(BM_FullClassificationPipeline);

void BM_RbnSimulate(benchmark::State& state) {
  sim::RbnSimulator simulator(world().ecosystem, world().lists, world().seed);
  auto options = sim::rbn2_options(10);
  options.duration_s = 2 * 3600;
  std::uint64_t records = 0;
  for (auto _ : state) {
    trace::MemoryTrace memory;
    simulator.simulate(options, memory);
    records = memory.http().size();
    benchmark::DoNotOptimize(records);
  }
  state.SetItemsProcessed(
      state.iterations() * static_cast<std::int64_t>(records));
}
BENCHMARK(BM_RbnSimulate);

void BM_PcapExport(benchmark::State& state) {
  const auto& trace = sample_trace();
  for (auto _ : state) {
    pcap::PcapWriter writer("/tmp/adscope_bench.pcap");
    trace.replay(writer);
    benchmark::DoNotOptimize(writer.packets_written());
  }
  state.SetItemsProcessed(
      state.iterations() * static_cast<std::int64_t>(trace.http().size()));
}
BENCHMARK(BM_PcapExport);

void BM_HtmlTokenize(benchmark::State& state) {
  sim::PageModelOptions options;
  options.generate_payloads = true;
  sim::PageModel model(world().ecosystem, options);
  util::Rng rng(3);
  const auto page = model.build(0, rng);
  const auto& payload = page.requests[0].payload;
  for (auto _ : state) {
    benchmark::DoNotOptimize(html::tokenize(payload));
  }
  state.SetBytesProcessed(
      state.iterations() * static_cast<std::int64_t>(payload.size()));
}
BENCHMARK(BM_HtmlTokenize);

void BM_UserAgentParse(benchmark::State& state) {
  const auto& trace = sample_trace();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ua::parse_user_agent(trace.http()[i].user_agent));
    i = (i + 1) % trace.http().size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_UserAgentParse);

}  // namespace

BENCHMARK_MAIN();
