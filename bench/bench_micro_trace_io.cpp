// Micro-benchmark: trace I/O — istream reader vs zero-copy mmap reader,
// decode-only and end-to-end replay→report.
//
// A harness binary (not google-benchmark): the subjects include a whole
// study pipeline, and the numbers feed the perf trajectory as
// machine-readable JSON through JsonMetrics
// (`ADSCOPE_JSON_DIR=... -> BENCH_trace_io.json`).
//
// Stages measured (best of ADSCOPE_REPS):
//   legacy_decode   FileTraceReader -> null sink (per-record, heap
//                   strings per record)
//   mmap_decode     MmapTraceReader::replay_batches -> null batch sink
//                   (zero-copy views; ZERO allocations per record warm)
//   mmap_adapter    MmapTraceReader::replay -> null sink (views
//                   materialized into one reused scratch record)
//   *_replay_report the same decode front-ends driving a full serial
//                   TraceStudy + report render
//
// The headline metric is decode_speedup (mmap vs istream on the decode
// stage). The end-to-end replay_report_speedup is reported honestly:
// study compute dominates it (Amdahl), so it improves by the decode
// share only.
//
//   ADSCOPE_HOUSEHOLDS  trace scale    (default 40 subscribers)
//   ADSCOPE_HOURS       trace duration (default 4)
//   ADSCOPE_REPS        repetitions    (default 5)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>

#include "core/report.h"
#include "core/study.h"
#include "experiment_common.h"
#include "trace/mmap_reader.h"
#include "trace/reader.h"
#include "trace/view.h"
#include "trace/writer.h"

namespace {

using namespace adscope;
using Clock = std::chrono::steady_clock;

// Seed-era reference points (this corpus, RelWithDebInfo, one core):
// the istream decode→null cost and the full replay→report cost per
// record before the zero-copy layer landed. Recorded so the JSON
// carries speedup-vs-seed even when only the new code is checked out.
constexpr double kSeedDecodeNsPerRecord = 560.0;
constexpr double kSeedReplayReportNsPerRecord = 5100.0;

struct NullSink final : trace::TraceSink {
  void on_meta(const trace::TraceMeta&) override {}
  void on_http(const trace::HttpTransaction& txn) override {
    checksum += txn.timestamp_ms + txn.host.size();
  }
  void on_tls(const trace::TlsFlow& flow) override { checksum += flow.bytes; }
  std::uint64_t checksum = 0;
};

struct NullBatchSink final : trace::TraceBatchSink {
  void on_meta(const trace::TraceMeta&) override {}
  void on_http_batch(std::span<const trace::HttpTransactionView> batch)
      override {
    for (const auto& view : batch) checksum += view.timestamp_ms + view.host.size();
  }
  void on_tls_batch(std::span<const trace::TlsFlowView> batch) override {
    for (const auto& flow : batch) checksum += flow.bytes;
  }
  std::uint64_t checksum = 0;
};

/// Best-of-N wall time of `body`, in seconds.
template <typename Body>
double best_of(int reps, Body&& body) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto start = Clock::now();
    body();
    const double wall =
        std::chrono::duration<double>(Clock::now() - start).count();
    best = std::min(best, wall);
  }
  return best;
}

}  // namespace

int main() {
  bench::preamble(
      "micro: trace io (istream vs zero-copy mmap decode)",
      "n/a — I/O throughput of the replay/report tooling");

  const auto world = bench::make_world();
  const auto reps = static_cast<int>(bench::env_u64("ADSCOPE_REPS", 5));
  const auto path = std::string("/tmp/adscope_bench_trace_io.adst");

  // Corpus: the bench_micro_pipeline trace (RBN-2, 40 households, 4 h).
  trace::MemoryTrace corpus;
  {
    sim::RbnSimulator simulator(world.ecosystem, world.lists, world.seed);
    auto options = sim::rbn2_options(static_cast<std::uint32_t>(
        bench::env_u64("ADSCOPE_HOUSEHOLDS", 40)));
    options.duration_s = bench::env_u64("ADSCOPE_HOURS", 4) * 3600;
    simulator.simulate(options, corpus);
    trace::FileTraceWriter writer(path);
    corpus.replay(writer);
    writer.close();
  }
  const auto records =
      static_cast<double>(corpus.http().size() + corpus.tls().size());
  std::printf("corpus: %.0f records (%zu http, %zu tls)\n\n", records,
              corpus.http().size(), corpus.tls().size());

  // --- decode-only ---------------------------------------------------
  const double legacy_decode = best_of(reps, [&] {
    trace::FileTraceReader reader(path);
    NullSink sink;
    reader.replay(sink);
  });

  // Reader constructed once: the mapping persists across reps, so this
  // measures the warm decode loop (the steady state of every consumer
  // that replays or re-scans a mapped trace).
  trace::MmapTraceReader mapped(path);
  const double mmap_decode = best_of(reps, [&] {
    NullBatchSink sink;
    mapped.replay_batches(sink);
  });
  const double mmap_adapter = best_of(reps, [&] {
    NullSink sink;
    mapped.replay(sink);
  });

  // --- end-to-end replay -> report -----------------------------------
  const auto run_study = [&](auto&& replay) {
    core::StudyOptions options;
    options.inference.min_requests = 300;
    core::TraceStudy study(world.engine, world.ecosystem.abp_registry(),
                           options);
    replay(study);
    study.finish();
    const auto report =
        core::render_full_report(study.view(), &world.ecosystem.asn_db());
    return report.size();
  };
  const double legacy_report = best_of(reps, [&] {
    run_study([&](core::TraceStudy& study) {
      trace::FileTraceReader reader(path);
      reader.replay(study);
    });
  });
  const double mmap_report = best_of(reps, [&] {
    run_study([&](core::TraceStudy& study) { mapped.replay(study); });
  });

  const auto per_record_ns = [&](double wall) { return wall / records * 1e9; };
  const double decode_speedup = legacy_decode / mmap_decode;
  const double report_speedup = legacy_report / mmap_report;

  std::printf("stage                      ns/record      speedup\n");
  std::printf("legacy decode -> null      %9.1f      1.00x (baseline)\n",
              per_record_ns(legacy_decode));
  std::printf("mmap   decode -> batches   %9.1f      %.2fx\n",
              per_record_ns(mmap_decode), decode_speedup);
  std::printf("mmap   decode -> adapter   %9.1f      %.2fx\n",
              per_record_ns(mmap_adapter), legacy_decode / mmap_adapter);
  std::printf("legacy replay -> report    %9.1f      1.00x (baseline)\n",
              per_record_ns(legacy_report));
  std::printf("mmap   replay -> report    %9.1f      %.2fx\n",
              per_record_ns(mmap_report), report_speedup);
  std::printf("\nspeedup vs seed-era decode (%.0f ns/rec): %.2fx\n",
              kSeedDecodeNsPerRecord,
              kSeedDecodeNsPerRecord / per_record_ns(mmap_decode));

  bench::JsonMetrics metrics("trace_io");
  metrics.record("records", records);
  metrics.record("legacy_decode_ns_per_record", per_record_ns(legacy_decode));
  metrics.record("mmap_decode_ns_per_record", per_record_ns(mmap_decode));
  metrics.record("mmap_adapter_ns_per_record", per_record_ns(mmap_adapter));
  metrics.record("decode_speedup", decode_speedup);
  metrics.record("legacy_replay_report_ns_per_record",
                 per_record_ns(legacy_report));
  metrics.record("mmap_replay_report_ns_per_record",
                 per_record_ns(mmap_report));
  metrics.record("replay_report_speedup", report_speedup);
  metrics.record("seed_decode_ns_per_record", kSeedDecodeNsPerRecord);
  metrics.record("seed_replay_report_ns_per_record",
                 kSeedReplayReportNsPerRecord);
  metrics.record("decode_speedup_vs_seed",
                 kSeedDecodeNsPerRecord / per_record_ns(mmap_decode));
  metrics.record("replay_report_speedup_vs_seed",
                 kSeedReplayReportNsPerRecord / per_record_ns(mmap_report));
  std::remove(path.c_str());
  return 0;
}
