// Table 5 / §8.1 — the server-side ad infrastructure (RBN-1).
//
// Paper: 29.0K servers serve EasyList objects, 19.6K EasyPrivacy, 5.2K
// both; per-server EasyList load median 7 / mean 438 / p90 320 / p95
// 1.1K / p99 6.8K; busiest server (Liverail) took 312.3K ad requests;
// 21.1% of all servers deliver at least one ad; ~10.1K "ad servers"
// (>90% ads) deliver 32.7% of adverts; 3.3K tracking servers deliver
// 18.8% of EasyPrivacy objects. Top-10 ASes carry 56.8% of ad objects,
// Google first with 21.0% of ad requests / 33.9% of ad bytes.
#include <cstdio>

#include "experiment_common.h"
#include "stats/render.h"
#include "util/format.h"

int main() {
  using namespace adscope;
  bench::preamble("Table 5 — ad traffic by AS; §8.1 server infrastructure",
                  "top-10 ASes carry 56.8% of ads; Google leads with "
                  "21.0%/33.9% (reqs/bytes)");

  const auto world = bench::make_world();
  core::TraceStudy study(world.engine, world.ecosystem.abp_registry());
  bench::run_rbn_study(world, bench::scaled_rbn1(), study);
  const auto& infra = study.infra();

  std::printf("servers observed: %zu; serving >=1 ad: %zu (%s; paper "
              "21.1%%)\n",
              infra.server_count(), infra.ad_serving_server_count(),
              util::percent(static_cast<double>(
                                infra.ad_serving_server_count()) /
                            static_cast<double>(infra.server_count()))
                  .c_str());
  std::printf("EasyList servers: %zu  EasyPrivacy servers: %zu  both: %zu "
              "(paper: 29.0K / 19.6K / 5.2K)\n",
              infra.easylist_server_count(), infra.easyprivacy_server_count(),
              infra.both_lists_server_count());

  double mean = 0;
  double p90 = 0;
  double p95 = 0;
  double p99 = 0;
  const auto box = infra.ads_per_server_distribution(mean, p90, p95, p99);
  std::printf("EasyList objects per server: median %.0f mean %.0f p90 %.0f "
              "p95 %.0f p99 %.0f (paper: 7 / 438 / 320 / 1.1K / 6.8K)\n",
              box.median, mean, p90, p95, p99);

  const auto busiest = infra.busiest_ad_server();
  std::printf("busiest ad server: %s with %s ad requests -> AS %s "
              "(paper: Liverail, 312.3K)\n",
              netdb::to_string(busiest.first).c_str(),
              util::human_count(static_cast<double>(busiest.second)).c_str(),
              world.ecosystem.asn_db()
                  .as_name(world.ecosystem.asn_db().lookup(busiest.first))
                  .c_str());

  const auto dedicated = infra.dedicated_ad_servers();
  std::printf("dedicated ad servers (>90%% ads): %zu delivering %s of all "
              "ads (paper: 10.1K / 32.7%%)\n",
              dedicated.servers,
              util::percent(dedicated.ad_share_of_trace).c_str());
  const auto tracking = infra.tracking_servers();
  std::printf("tracking servers: %zu delivering %s of EasyPrivacy objects "
              "(paper: 3.3K / 18.8%%)\n\n",
              tracking.servers,
              util::percent(tracking.ad_share_of_trace).c_str());

  const auto rows = infra.as_ranking(world.ecosystem.asn_db(), 10);
  const double total_ads = static_cast<double>(infra.total_ads());
  double total_ad_bytes = 0;
  for (const auto& row : infra.as_ranking(world.ecosystem.asn_db(), 1000)) {
    total_ad_bytes += static_cast<double>(row.ad_bytes);
  }
  auto csv = bench::maybe_csv("table5_asn",
                              {"as", "ad_requests", "ad_bytes",
                               "total_requests", "total_bytes"});
  stats::TextTable table({"AS", "%ads reqs(trace)", "%ads bytes(trace)",
                          "%ads reqs(AS)", "%ads bytes(AS)"});
  double top10 = 0;
  for (const auto& row : rows) {
    if (csv) {
      csv->add_row({row.name, std::to_string(row.ad_requests),
                    std::to_string(row.ad_bytes),
                    std::to_string(row.total_requests),
                    std::to_string(row.total_bytes)});
    }
    top10 += static_cast<double>(row.ad_requests);
    table.add_row(
        {row.name,
         util::percent(static_cast<double>(row.ad_requests) / total_ads),
         util::percent(static_cast<double>(row.ad_bytes) / total_ad_bytes),
         util::percent(static_cast<double>(row.ad_requests) /
                       static_cast<double>(row.total_requests)),
         util::percent(static_cast<double>(row.ad_bytes) /
                       static_cast<double>(row.total_bytes))});
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::printf("\ntop-10 ASes carry %s of ad objects (paper: 56.8%%)\n",
              util::percent(top10 / total_ads).c_str());
  std::printf("paper top rows: Google 21.0/33.9/50.7/15.9; Am.-EC2 "
              "7.0/4.6/19.8/2.8; Akamai 6.5/19.0/6.4/1.0;\n  AppNexus "
              "3.1/0.4/32.9/50.2; Criteo 1.9/1.1/78.1/88.2\n");
  return 0;
}
