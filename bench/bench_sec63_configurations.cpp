// §6.3 — Adblock Plus configurations: which lists do likely-ABP users
// (type C) actually subscribe to?
//
// Paper findings:
//   * among type-C users' ad classifications: 82.3% EasyPrivacy,
//     11.1% acceptable-ads whitelist, rest EasyList;
//   * EasyPrivacy adoption: 5.1% of ABP users have zero EasyPrivacy
//     hits (vs 0.1% of non-adblock users); 13.1% below 10 hits —
//     conclusion: >85% of ABP users do NOT install EasyPrivacy;
//   * acceptable ads: 11.8% of ABP users issue zero whitelisted
//     requests (vs 6.1% non-adblock) — at most ~20% opt out;
//   * ABP users still produce 7.9% of all whitelisted requests
//     (non-adblock users: 37.9%).
#include <cstdio>

#include "experiment_common.h"
#include "stats/render.h"
#include "util/format.h"

int main() {
  using namespace adscope;
  bench::preamble("Section 6.3 — Adblock Plus configuration inference",
                  "most ABP users skip EasyPrivacy and keep acceptable "
                  "ads enabled");

  const auto world = bench::make_world();
  core::StudyOptions options;
  options.inference.min_requests = bench::env_u64("ADSCOPE_ACTIVE_MIN", 1000);
  core::TraceStudy study(world.engine, world.ecosystem.abp_registry(),
                         options);
  sim::RbnStats truth = bench::run_rbn_study(world, bench::scaled_rbn2(),
                                             study);
  const auto inference = study.inference();
  const auto report = study.configurations(inference);

  stats::TextTable table({"Metric", "measured", "paper"});
  auto pct = [](double v) { return util::percent(v); };
  table.add_row({"type-C hits: EasyPrivacy share",
                 pct(report.c_hits_easyprivacy_share), "82.3%"});
  table.add_row({"type-C hits: whitelist share",
                 pct(report.c_hits_whitelist_share), "11.1%"});
  table.add_row({"type-C hits: EasyList share",
                 pct(report.c_hits_easylist_share), "~6%"});
  table.add_row({"ABP users with zero EasyPrivacy hits",
                 pct(report.abp_zero_ep_share), "5.1%"});
  table.add_row({"non-ABP users with zero EasyPrivacy hits",
                 pct(report.non_abp_zero_ep_share), "0.1%"});
  table.add_row({"ABP users with <10 EasyPrivacy hits",
                 pct(report.abp_low_ep_share), "13.1%"});
  table.add_row({"ABP users with zero whitelisted reqs",
                 pct(report.abp_zero_aa_share), "11.8%"});
  table.add_row({"non-ABP users with zero whitelisted reqs",
                 pct(report.non_abp_zero_aa_share), "6.1%"});
  table.add_row({"ABP users with <10 whitelisted reqs",
                 pct(report.abp_low_aa_share), "~20% gap vs non-ABP"});
  table.add_row({"non-ABP users with <10 whitelisted reqs",
                 pct(report.non_abp_low_aa_share), ""});
  table.add_row({"whitelisted reqs from ABP users",
                 pct(report.whitelisted_from_abp_users), "7.9%"});
  table.add_row({"whitelisted reqs from non-ABP users",
                 pct(report.whitelisted_from_non_abp_users), "37.9%"});
  std::fputs(table.to_string().c_str(), stdout);

  // Ground truth: actual configuration shares among simulated ABP users.
  std::size_t abp = 0;
  std::size_t with_ep = 0;
  std::size_t aa_optout = 0;
  for (const auto& browser : truth.truth) {
    if (browser.blocker != sim::BlockerKind::kAdblockPlus) continue;
    ++abp;
    with_ep += browser.abp_config.easyprivacy;
    aa_optout += !browser.abp_config.acceptable_ads;
  }
  if (abp > 0) {
    std::printf("\nsimulator ground truth: EasyPrivacy subscribed %s, "
                "acceptable-ads opted out %s\n",
                util::percent(static_cast<double>(with_ep) /
                              static_cast<double>(abp))
                    .c_str(),
                util::percent(static_cast<double>(aa_optout) /
                              static_cast<double>(abp))
                    .c_str());
  }
  return 0;
}
