// Shared setup for the experiment harnesses (one binary per paper
// table/figure, see DESIGN.md §3).
//
// Every harness builds the same deterministic World from ADSCOPE_SEED
// (default 42), prints a paper-vs-measured preamble, and writes its
// table/figure as text to stdout. Scale knobs come from the environment
// so `for b in build/bench/*; do $b; done` runs out of the box:
//   ADSCOPE_SEED        master seed            (default 42)
//   ADSCOPE_PUBLISHERS  catalog size           (default 3000)
//   ADSCOPE_HOUSEHOLDS  RBN-2 subscriber scale (default 600)
//   ADSCOPE_CRAWL_TOP   crawl size             (default 1000)
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include <memory>

#include "adblock/engine.h"
#include "core/study.h"
#include "sim/crawl_sim.h"
#include "sim/ecosystem.h"
#include "sim/listgen.h"
#include "sim/rbn_sim.h"
#include "stats/csv.h"

namespace adscope::bench {

inline std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoull(value, nullptr, 10);
}

struct World {
  std::uint64_t seed;
  sim::Ecosystem ecosystem;
  sim::GeneratedLists lists;
  /// Analysis engine with every list loaded (EasyList, derivative,
  /// EasyPrivacy, acceptable-ads) — the paper's classification setup.
  adblock::FilterEngine engine;

  World(std::uint64_t seed_value, sim::EcosystemOptions options)
      : seed(seed_value),
        ecosystem(sim::Ecosystem::generate(seed_value, options)),
        lists(sim::generate_lists(ecosystem)),
        engine(sim::make_engine(lists,
                                sim::ListSelection{.easylist = true,
                                                   .derivative = true,
                                                   .easyprivacy = true,
                                                   .acceptable_ads = true})) {}
};

inline World make_world() {
  sim::EcosystemOptions options;
  options.publishers =
      static_cast<std::size_t>(env_u64("ADSCOPE_PUBLISHERS", 3000));
  return World(env_u64("ADSCOPE_SEED", 42), options);
}

/// Run a full RBN simulation straight into an existing TraceStudy
/// (no trace file round trip). Returns the simulator's ground truth.
inline sim::RbnStats run_rbn_study(const World& world,
                                   const sim::RbnOptions& options,
                                   core::TraceStudy& study) {
  sim::RbnSimulator simulator(world.ecosystem, world.lists, world.seed);
  auto stats = simulator.simulate(options, study);
  study.finish();
  return stats;
}

inline sim::RbnOptions scaled_rbn2() {
  return sim::rbn2_options(
      static_cast<std::uint32_t>(env_u64("ADSCOPE_HOUSEHOLDS", 600)));
}

inline sim::RbnOptions scaled_rbn1() {
  return sim::rbn1_options(static_cast<std::uint32_t>(
      env_u64("ADSCOPE_HOUSEHOLDS", 600) * 5 / 12));
}

/// CSV writer for `name` when ADSCOPE_CSV_DIR is set, else null.
inline std::unique_ptr<stats::CsvWriter> maybe_csv(
    const std::string& name, const std::vector<std::string>& header) {
  const auto dir = stats::csv_export_dir();
  if (!dir) return nullptr;
  return std::make_unique<stats::CsvWriter>(*dir, name, header);
}

/// Machine-readable metric sink for the table/figure harnesses, the
/// text-output counterpart of the micro-benchmarks'
/// --benchmark_format=json (see the bench_json CMake target). When
/// ADSCOPE_JSON_DIR is set, the destructor writes
/// `$ADSCOPE_JSON_DIR/BENCH_<name>.json` with every recorded metric;
/// otherwise the object is inert, so harnesses can record
/// unconditionally.
class JsonMetrics {
 public:
  explicit JsonMetrics(std::string name) : name_(std::move(name)) {
    const char* dir = std::getenv("ADSCOPE_JSON_DIR");
    if (dir != nullptr && *dir != '\0') {
      path_ = std::string(dir) + "/BENCH_" + name_ + ".json";
    }
  }

  JsonMetrics(const JsonMetrics&) = delete;
  JsonMetrics& operator=(const JsonMetrics&) = delete;

  bool enabled() const noexcept { return !path_.empty(); }

  void record(const std::string& key, double value) {
    if (enabled()) metrics_.emplace_back(key, value);
  }

  ~JsonMetrics() {
    if (!enabled()) return;
    std::FILE* out = std::fopen(path_.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "JsonMetrics: cannot write %s\n", path_.c_str());
      return;
    }
    std::fprintf(out, "{\n  \"name\": \"%s\",\n  \"metrics\": {",
                 name_.c_str());
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
      std::fprintf(out, "%s\n    \"%s\": %.17g", i == 0 ? "" : ",",
                   metrics_[i].first.c_str(), metrics_[i].second);
    }
    std::fprintf(out, "\n  }\n}\n");
    std::fclose(out);
    std::printf("json metrics -> %s\n", path_.c_str());
  }

 private:
  std::string name_;
  std::string path_;
  std::vector<std::pair<std::string, double>> metrics_;
};

inline void preamble(const char* experiment, const char* paper_claim) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment);
  std::printf("paper: %s\n", paper_claim);
  std::printf("==============================================================\n");
}

}  // namespace adscope::bench
