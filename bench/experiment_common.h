// Shared setup for the experiment harnesses (one binary per paper
// table/figure, see DESIGN.md §3).
//
// Every harness builds the same deterministic World from ADSCOPE_SEED
// (default 42), prints a paper-vs-measured preamble, and writes its
// table/figure as text to stdout. Scale knobs come from the environment
// so `for b in build/bench/*; do $b; done` runs out of the box:
//   ADSCOPE_SEED        master seed            (default 42)
//   ADSCOPE_PUBLISHERS  catalog size           (default 3000)
//   ADSCOPE_HOUSEHOLDS  RBN-2 subscriber scale (default 600)
//   ADSCOPE_CRAWL_TOP   crawl size             (default 1000)
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include <memory>

#include "adblock/engine.h"
#include "core/study.h"
#include "sim/crawl_sim.h"
#include "sim/ecosystem.h"
#include "sim/listgen.h"
#include "sim/rbn_sim.h"
#include "stats/csv.h"

namespace adscope::bench {

inline std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoull(value, nullptr, 10);
}

struct World {
  std::uint64_t seed;
  sim::Ecosystem ecosystem;
  sim::GeneratedLists lists;
  /// Analysis engine with every list loaded (EasyList, derivative,
  /// EasyPrivacy, acceptable-ads) — the paper's classification setup.
  adblock::FilterEngine engine;

  World(std::uint64_t seed_value, sim::EcosystemOptions options)
      : seed(seed_value),
        ecosystem(sim::Ecosystem::generate(seed_value, options)),
        lists(sim::generate_lists(ecosystem)),
        engine(sim::make_engine(lists,
                                sim::ListSelection{.easylist = true,
                                                   .derivative = true,
                                                   .easyprivacy = true,
                                                   .acceptable_ads = true})) {}
};

inline World make_world() {
  sim::EcosystemOptions options;
  options.publishers =
      static_cast<std::size_t>(env_u64("ADSCOPE_PUBLISHERS", 3000));
  return World(env_u64("ADSCOPE_SEED", 42), options);
}

/// Run a full RBN simulation straight into an existing TraceStudy
/// (no trace file round trip). Returns the simulator's ground truth.
inline sim::RbnStats run_rbn_study(const World& world,
                                   const sim::RbnOptions& options,
                                   core::TraceStudy& study) {
  sim::RbnSimulator simulator(world.ecosystem, world.lists, world.seed);
  auto stats = simulator.simulate(options, study);
  study.finish();
  return stats;
}

inline sim::RbnOptions scaled_rbn2() {
  return sim::rbn2_options(
      static_cast<std::uint32_t>(env_u64("ADSCOPE_HOUSEHOLDS", 600)));
}

inline sim::RbnOptions scaled_rbn1() {
  return sim::rbn1_options(static_cast<std::uint32_t>(
      env_u64("ADSCOPE_HOUSEHOLDS", 600) * 5 / 12));
}

/// CSV writer for `name` when ADSCOPE_CSV_DIR is set, else null.
inline std::unique_ptr<stats::CsvWriter> maybe_csv(
    const std::string& name, const std::vector<std::string>& header) {
  const auto dir = stats::csv_export_dir();
  if (!dir) return nullptr;
  return std::make_unique<stats::CsvWriter>(*dir, name, header);
}

inline void preamble(const char* experiment, const char* paper_claim) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment);
  std::printf("paper: %s\n", paper_claim);
  std::printf("==============================================================\n");
}

}  // namespace adscope::bench
