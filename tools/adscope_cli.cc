// adscope — command-line front end.
//
//   adscope gen         synthesize an RBN header trace (.adst)
//   adscope study       run the full paper pipeline on a trace or pcap,
//                       optionally writing a privacy-truncated http.log
//   adscope export-pcap render a trace as Ethernet/IPv4/TCP pcap frames
//   adscope lists       write the generated filter lists as ABP text
//   adscope classify    one-shot URL classification
//   adscope replay      stream a trace into a running adscoped daemon
//   adscope query       answer /query paths over a trace offline, via
//                       the same snapshot store the daemon serves
//   adscope lint        static analysis over ABP filter lists
//
// Run without arguments for the option reference.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "analyzer/http_log.h"
#include "core/parallel_study.h"
#include "lint/linter.h"
#include "lint/render.h"
#include "live/replay.h"
#include "core/report.h"
#include "pcap/pcap.h"
#include "core/study.h"
#include "sim/ecosystem.h"
#include "sim/listgen.h"
#include "sim/rbn_sim.h"
#include "live/live_study.h"
#include "store/store_service.h"
#include "trace/mmap_reader.h"
#include "trace/reader.h"
#include "trace/writer.h"
#include "util/format.h"
#include "util/simd.h"

namespace {

using namespace adscope;

struct Args {
  std::map<std::string, std::string> named;
  bool flag(const std::string& name) const { return named.contains(name); }
  std::string get(const std::string& name, std::string fallback = "") const {
    const auto it = named.find(name);
    return it == named.end() ? fallback : it->second;
  }
  std::uint64_t get_u64(const std::string& name, std::uint64_t fallback) const {
    const auto it = named.find(name);
    return it == named.end() ? fallback
                             : std::strtoull(it->second.c_str(), nullptr, 10);
  }
};

Args parse_args(int argc, char** argv, int first) {
  Args args;
  for (int i = first; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) continue;
    key = key.substr(2);
    if (const auto eq = key.find('='); eq != std::string::npos) {
      args.named[key.substr(0, eq)] = key.substr(eq + 1);
      continue;
    }
    if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      args.named[key] = argv[++i];
    } else {
      args.named[key] = "";
    }
  }
  return args;
}

struct WorldBundle {
  sim::Ecosystem ecosystem;
  sim::GeneratedLists lists;
  adblock::FilterEngine engine;

  explicit WorldBundle(std::uint64_t seed)
      : ecosystem(sim::Ecosystem::generate(seed)),
        lists(sim::generate_lists(ecosystem)),
        engine(sim::make_engine(lists,
                                sim::ListSelection{.easylist = true,
                                                   .derivative = true,
                                                   .easyprivacy = true,
                                                   .acceptable_ads = true})) {}
};

int cmd_gen(const Args& args) {
  const auto out = args.get("out", "trace.adst");
  const auto seed = args.get_u64("seed", 42);
  WorldBundle world(seed);
  sim::RbnSimulator simulator(world.ecosystem, world.lists, seed);
  auto options =
      args.flag("rbn1")
          ? sim::rbn1_options(static_cast<std::uint32_t>(
                args.get_u64("households", 250)))
          : sim::rbn2_options(static_cast<std::uint32_t>(
                args.get_u64("households", 300)));
  if (args.named.contains("hours")) {
    options.duration_s = args.get_u64("hours", 15) * 3600;
  }
  std::printf("generating %s: %u households, %.1f h ...\n",
              options.name.c_str(), options.households,
              static_cast<double>(options.duration_s) / 3600.0);
  trace::FileTraceWriter writer(out);
  const auto stats = simulator.simulate(options, writer);
  writer.close();
  std::printf("wrote %s: %llu HTTP transactions, %llu TLS flows, %s\n",
              out.c_str(),
              static_cast<unsigned long long>(stats.http_requests),
              static_cast<unsigned long long>(stats.https_flows),
              util::human_bytes(static_cast<double>(stats.bytes)).c_str());
  return 0;
}

int cmd_study(const Args& args) {
  const auto path = args.get("trace");
  const auto pcap_path = args.get("pcap");
  if (path.empty() && pcap_path.empty()) {
    std::fprintf(stderr, "study: --trace or --pcap required\n");
    return 2;
  }

  // --simd forces the kernel dispatch level (same values as the
  // ADSCOPE_SIMD env var; the flag wins). Downward only — asking for
  // avx2 on a non-AVX2 host clamps to what the CPU has. Decisions and
  // report bytes are identical at every level; only throughput moves.
  if (const auto simd_arg = args.get("simd"); !simd_arg.empty()) {
    const auto level = util::simd::parse_level(simd_arg);
    if (!level.has_value()) {
      std::fprintf(stderr, "study: --simd must be off, sse2, or avx2\n");
      return 2;
    }
    util::simd::set_level(*level);
  }

  const auto seed = args.get_u64("seed", 42);
  WorldBundle world(seed);

  core::StudyOptions options;
  options.inference.min_requests = args.get_u64("active-min", 1000);
  options.classifier.classify_cache = args.get_u64("classify-cache", 4096);

  // --threads N shards the pipeline by client IP; N=1 (default) keeps
  // the serial study. Results are identical either way.
  const auto threads = args.get_u64("threads", 1);
  std::unique_ptr<core::TraceStudy> serial;
  std::unique_ptr<core::ParallelTraceStudy> parallel;
  trace::TraceSink* study = nullptr;
  if (threads > 1) {
    core::ParallelStudyOptions parallel_options;
    parallel_options.study = options;
    parallel_options.threads = threads;
    parallel = std::make_unique<core::ParallelTraceStudy>(
        world.engine, world.ecosystem.abp_registry(), parallel_options);
    study = parallel.get();
  } else {
    serial = std::make_unique<core::TraceStudy>(
        world.engine, world.ecosystem.abp_registry(), options);
    study = serial.get();
  }

  // Optional privacy-preserving transaction log (the paper's §5 output).
  std::unique_ptr<analyzer::HttpLogWriter> log;
  analyzer::HttpExtractor log_extractor;
  if (!args.get("log").empty()) {
    const auto privacy = args.get("privacy", "fqdn") == "full"
                             ? analyzer::HttpLogWriter::Privacy::kFull
                             : analyzer::HttpLogWriter::Privacy::kFqdnTruncated;
    log = std::make_unique<analyzer::HttpLogWriter>(args.get("log"), privacy);
    log_extractor.set_object_callback(
        [&](const analyzer::WebObject& object) { log->write(object); });
  }

  // --io picks the trace decode surface: mmap (zero-copy, regular
  // files only) or stream (the istream reader). Default auto: mmap
  // whenever the input supports it. Reports are byte-identical across
  // the modes; only the decode cost differs.
  const auto io_arg = args.get("io", "auto");
  if (io_arg != "auto" && io_arg != "mmap" && io_arg != "stream") {
    std::fprintf(stderr, "study: --io must be mmap or stream\n");
    return 2;
  }
  const bool use_mmap =
      pcap_path.empty() &&
      (io_arg == "mmap" ||
       (io_arg == "auto" && trace::MmapTraceReader::supported(path)));
  if (io_arg == "mmap" && pcap_path.empty() &&
      !trace::MmapTraceReader::supported(path)) {
    std::fprintf(stderr, "study: --io=mmap requires a regular file\n");
    return 2;
  }

  trace::TeeSink tee;
  tee.add(*study);
  if (log) tee.add(log_extractor);
  std::uint64_t records = 0;
  const char* io_mode = "stream";
  if (!pcap_path.empty()) {
    pcap::PcapHttpReader reader(pcap_path);
    records = reader.replay(tee);
    io_mode = "pcap";
  } else if (use_mmap) {
    trace::MmapTraceReader reader(path);
    io_mode = "mmap";
    if (parallel && !log) {
      // Fully zero-copy hand-off: view batches go straight into the
      // sharded study, which materializes owning records only at the
      // thread boundary.
      records = reader.replay_batches(*parallel);
    } else {
      records = reader.replay(tee);
    }
  } else {
    trace::FileTraceReader reader(path);
    records = reader.replay(tee);
  }
  core::StudyView view;
  if (parallel) {
    parallel->finish();
    view = parallel->view();
  } else {
    serial->finish();
    view = serial->view();
  }
  view.io_mode = io_mode;
  view.simd_mode = util::simd::to_string(util::simd::active_level());

  // The io and simd modes go on this line, not in the report: stdout
  // below it is asserted byte-identical across thread counts, io modes,
  // and ADSCOPE_SIMD levels.
  std::printf("read %llu records from %s via %s io (simd %s)",
              static_cast<unsigned long long>(records),
              (pcap_path.empty() ? path : pcap_path).c_str(), io_mode,
              view.simd_mode);
  if (threads > 1) std::printf(" (%llu analysis threads)",
                               static_cast<unsigned long long>(threads));
  std::printf("\n\n");
  std::fputs(
      core::render_full_report(view, &world.ecosystem.asn_db()).c_str(),
      stdout);
  // To stderr, not the report: hit rates depend on sharding and cache
  // size, and stdout is asserted byte-identical across thread counts.
  if (view.classifier != nullptr) {
    const auto hits = view.classifier->classify_cache_hits;
    const auto lookups = hits + view.classifier->classify_cache_misses;
    if (lookups > 0) {
      std::fprintf(stderr, "classify cache: %llu / %llu lookups hit (%.1f%%)\n",
                   static_cast<unsigned long long>(hits),
                   static_cast<unsigned long long>(lookups),
                   100.0 * static_cast<double>(hits) /
                       static_cast<double>(lookups));
    }
  }
  if (log) {
    std::printf("http.log: %llu lines -> %s\n",
                static_cast<unsigned long long>(log->lines_written()),
                args.get("log").c_str());
  }
  return 0;
}

int cmd_export_pcap(const Args& args) {
  const auto in_path = args.get("trace");
  const auto out_path = args.get("out", "trace.pcap");
  if (in_path.empty()) {
    std::fprintf(stderr, "export-pcap: --trace required\n");
    return 2;
  }
  pcap::PcapWriter writer(out_path);
  std::uint64_t records = 0;
  if (trace::MmapTraceReader::supported(in_path)) {
    trace::MmapTraceReader reader(in_path);
    records = reader.replay(writer);
  } else {
    trace::FileTraceReader reader(in_path);
    records = reader.replay(writer);
  }
  std::printf("converted %llu records into %llu pcap frames -> %s\n",
              static_cast<unsigned long long>(records),
              static_cast<unsigned long long>(writer.packets_written()),
              out_path.c_str());
  return 0;
}

int cmd_lists(const Args& args) {
  const auto dir = args.get("out-dir", ".");
  WorldBundle world(args.get_u64("seed", 42));
  const struct {
    const char* file;
    const std::string* text;
  } outputs[] = {
      {"easylist.txt", &world.lists.easylist},
      {"easylistgermany.txt", &world.lists.easylist_derivative},
      {"easyprivacy.txt", &world.lists.easyprivacy},
      {"exceptionrules.txt", &world.lists.acceptable_ads},
  };
  for (const auto& output : outputs) {
    const auto path = dir + "/" + output.file;
    std::FILE* file = std::fopen(path.c_str(), "w");
    if (file == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
    std::fwrite(output.text->data(), 1, output.text->size(), file);
    std::fclose(file);
    std::printf("wrote %s (%zu bytes)\n", path.c_str(), output.text->size());
  }
  return 0;
}

int cmd_classify(const Args& args) {
  const auto url = args.get("url");
  if (url.empty()) {
    std::fprintf(stderr, "classify: --url required\n");
    return 2;
  }
  WorldBundle world(args.get_u64("seed", 42));
  auto type = http::RequestType::kOther;
  const auto type_name = args.get("type", "other");
  for (int t = 0; t <= static_cast<int>(http::RequestType::kOther); ++t) {
    if (to_string(static_cast<http::RequestType>(t)) == type_name) {
      type = static_cast<http::RequestType>(t);
      break;
    }
  }
  const auto request = adblock::make_request(url, args.get("page"), type);
  const auto verdict = world.engine.classify(request);
  std::printf("%s\n", std::string(to_string(verdict.decision)).c_str());
  if (verdict.filter != nullptr) {
    std::printf("  rule: %s\n  list: %s\n", verdict.filter->text().c_str(),
                std::string(to_string(verdict.list_kind)).c_str());
  }
  if (verdict.whitelist_saved_it()) {
    std::printf("  would be blocked by: %s\n",
                verdict.blocked_by->text().c_str());
  }
  std::printf("  is_ad: %s\n", verdict.is_ad() ? "yes" : "no");
  return verdict.is_ad() ? 0 : 1;
}

int cmd_replay(const Args& args) {
  live::ReplayOptions options;
  options.trace_path = args.get("trace");
  if (options.trace_path.empty()) {
    std::fprintf(stderr, "replay: --trace required\n");
    return 2;
  }
  options.host = args.get("host", "127.0.0.1");
  options.port = static_cast<std::uint16_t>(args.get_u64("port", 7316));
  options.unix_path = args.get("unix");
  // --speedup 60 compresses an hour of trace time into a wall minute;
  // omitting it streams at full rate (daemon backpressure permitting).
  if (args.named.contains("speedup")) {
    options.speedup = std::strtod(args.get("speedup").c_str(), nullptr);
    if (options.speedup <= 0.0) {
      std::fprintf(stderr, "replay: --speedup must be > 0\n");
      return 2;
    }
  }
  // --presorted promises the file is already in timestamp order, which
  // skips the buffer-sort-re-encode pass and (for regular files)
  // unlocks the zero-copy mmap send path.
  options.time_order = !args.flag("presorted");
  const auto stats = live::replay_trace(options);
  const auto rate =
      stats.wall_s > 0 ? static_cast<double>(stats.records) / stats.wall_s
                       : 0.0;
  std::printf(
      "replayed %llu records (%s on the wire%s) in %.2f s — %.0f rec/s\n",
      static_cast<unsigned long long>(stats.records),
      util::human_bytes(static_cast<double>(stats.bytes)).c_str(),
      stats.zero_copy ? ", zero-copy" : "", stats.wall_s, rate);
  return 0;
}

// `query` replays a trace into an offline snapshot store and answers
// /query paths against it — the same engine the daemon serves over
// HTTP, so the printed bodies match wire responses byte for byte.
// Takes positional PATH arguments plus --key value options.
int cmd_query(int argc, char** argv) {
  std::vector<std::string> paths;
  Args args;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      auto key = arg.substr(2);
      if (const auto eq = key.find('='); eq != std::string::npos) {
        args.named[key.substr(0, eq)] = key.substr(eq + 1);
      } else if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0 &&
                 std::strncmp(argv[i + 1], "/query", 6) != 0) {
        args.named[key] = argv[++i];
      } else {
        args.named[key] = "";
      }
    } else {
      paths.push_back(std::move(arg));
    }
  }
  const auto trace_path = args.get("trace");
  if (trace_path.empty() || paths.empty()) {
    std::fprintf(stderr,
                 "query: --trace and at least one /query path required\n"
                 "usage: adscope query --trace FILE [--bucket-s N] "
                 "[--threads N] [--seed S] [--retention N] [--active-min N] "
                 "PATH...\n");
    return 2;
  }

  WorldBundle world(args.get_u64("seed", 42));

  live::LiveStudyOptions options;
  options.study.inference.min_requests = args.get_u64("active-min", 1000);
  options.study.classifier.classify_cache = args.get_u64("classify-cache", 4096);
  options.threads = args.get_u64("threads", 1);
  options.bucket_seconds = args.get_u64("bucket-s", 300);
  options.window_buckets = UINT64_MAX;  // offline: keep every bucket

  store::StoreServiceOptions store_options;
  store_options.tree.study = options.study;
  store_options.tree.bucket_seconds = options.bucket_seconds;
  const auto retention_s = args.get_u64("retention", 0);
  store_options.tree.retention_buckets =
      retention_s == 0
          ? 0
          : (retention_s + options.bucket_seconds - 1) / options.bucket_seconds;
  store::StoreService store(store_options, &world.ecosystem.asn_db());

  options.on_seal = [&store](std::uint64_t bucket_id, std::size_t shard,
                             const core::TraceStudy& sealed) {
    store.tree().ingest(bucket_id, shard, sealed);
  };
  live::LiveStudy study(world.engine, world.ecosystem.abp_registry(), options);

  std::uint64_t records = 0;
  if (trace::MmapTraceReader::supported(trace_path)) {
    trace::MmapTraceReader reader(trace_path);
    records = reader.replay(study);
  } else {
    trace::FileTraceReader reader(trace_path);
    records = reader.replay(study);
  }
  study.seal_all();
  study.flush();
  store.set_live_stats([&study] {
    return store::LiveStats{study.watermark_ms(), study.records_ingested(),
                            study.total_drops(), study.current_bucket()};
  });
  std::fprintf(stderr, "query: %llu records -> %zu store bucket(s)\n",
               static_cast<unsigned long long>(records),
               store.tree().bucket_count());

  bool failed = false;
  for (const auto& path : paths) {
    const auto response = store.query(path);
    if (response.status != 200) failed = true;
    std::fputs(response.body.c_str(), stdout);
    std::fputc('\n', stdout);
  }
  study.close();
  return failed ? 1 : 0;
}

// `lint` takes positional FILE arguments plus --key=value options, which
// the shared Args parser does not model; it parses argv itself.
int cmd_lint(int argc, char** argv) {
  std::vector<std::string> files;
  std::string format = "text";
  std::string prune_dir;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
    } else if (arg == "--format" && i + 1 < argc) {
      format = argv[++i];
    } else if (arg.rfind("--prune-dir=", 0) == 0) {
      prune_dir = arg.substr(12);
    } else if (arg == "--prune-dir" && i + 1 < argc) {
      prune_dir = argv[++i];
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "lint: unknown option %s\n", arg.c_str());
      return 2;
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) {
    std::fprintf(stderr,
                 "lint: at least one filter-list file required\n"
                 "usage: adscope lint FILE... [--format=text|json] "
                 "[--prune-dir DIR]\n");
    return 2;
  }
  if (format != "text" && format != "json") {
    std::fprintf(stderr, "lint: --format must be text or json\n");
    return 2;
  }

  std::vector<lint::LintSource> sources;
  sources.reserve(files.size());
  for (const auto& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "lint: cannot read %s\n", file.c_str());
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    sources.push_back({file, std::move(text).str(), lint::infer_kind(file)});
  }

  const auto result = lint::run_lint(sources);
  std::fputs(format == "json" ? lint::render_json(result).c_str()
                              : lint::render_text(result).c_str(),
             stdout);
  if (format == "json") std::fputc('\n', stdout);

  if (!prune_dir.empty()) {
    for (std::size_t s = 0; s < sources.size(); ++s) {
      // Strip any directory part: pruned lists land side by side in DIR.
      auto base = sources[s].name;
      if (const auto slash = base.rfind('/'); slash != std::string::npos) {
        base = base.substr(slash + 1);
      }
      const auto out_path = prune_dir + "/" + base;
      std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
      if (!out) {
        std::fprintf(stderr, "lint: cannot write %s\n", out_path.c_str());
        return 2;
      }
      out << lint::emit_pruned(sources[s].text, result.prunable_lines[s]);
      std::fprintf(stderr, "pruned %zu rule(s) -> %s\n",
                   result.prunable_lines[s].size(), out_path.c_str());
    }
  }
  return result.has_errors() ? 1 : 0;
}

void usage() {
  std::fputs(
      "usage: adscope <gen|study|export-pcap|lists|classify|replay|query|"
      "lint> [options]\n"
      "  gen        --out FILE [--households N] [--hours H] [--rbn1] [--seed S]\n"
      "  study      --trace FILE | --pcap FILE  [--log FILE --privacy "
      "fqdn|full]\n"
      "             [--active-min N] [--seed S] [--threads N]\n"
      "             [--io mmap|stream]    trace decode surface (default:\n"
      "                                   mmap for regular files)\n"
      "             [--classify-cache N]  per-shard verdict memo entries\n"
      "                                   (default 4096, 0 disables)\n"
      "  export-pcap --trace FILE --out FILE\n"
      "  lists    --out-dir DIR [--seed S]\n"
      "  classify --url URL [--page URL] [--type image|script|...]\n"
      "  replay   --trace FILE [--host H] [--port N | --unix PATH]\n"
      "           [--speedup X] [--presorted]  trust file timestamp order\n"
      "                                        (enables zero-copy send)\n"
      "  query    --trace FILE PATH...  [--bucket-s N] [--threads N]\n"
      "           [--seed S] [--retention N] [--active-min N]\n"
      "           PATHs are /query targets (grammar: docs/QUERY.md);\n"
      "           exit 0 = all 200, 1 = any error response\n"
      "  lint     FILE... [--format=text|json] [--prune-dir DIR]\n"
      "           exit 0 = clean, 1 = error findings, 2 = usage\n",
      stderr);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string command = argv[1];
  const auto args = parse_args(argc, argv, 2);
  try {
    if (command == "lint") return cmd_lint(argc, argv);
    if (command == "query") return cmd_query(argc, argv);
    if (command == "gen") return cmd_gen(args);
    if (command == "study") return cmd_study(args);
    if (command == "export-pcap") return cmd_export_pcap(args);
    if (command == "lists") return cmd_lists(args);
    if (command == "classify") return cmd_classify(args);
    if (command == "replay") return cmd_replay(args);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "adscope %s: %s\n", command.c_str(), error.what());
    return 1;
  }
  usage();
  return 2;
}
