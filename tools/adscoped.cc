// adscoped — live ingest & serving daemon.
//
// Accepts .adst byte streams (adscope replay, or anything that writes
// the wire format from docs/FORMAT.md) on a TCP or Unix socket, keeps a
// sliding window of time-bucketed study aggregates, and answers HTTP
// queries:
//
//   adscoped --port 7316 --http-port 7317 --bucket-s 300 --window-s 86400
//   curl localhost:7317/study/summary
//   curl localhost:7317/metrics
//
// SIGINT/SIGTERM triggers a graceful shutdown: stop accepting, drain
// the shard queues, seal every bucket, write a final snapshot JSON to
// --snapshot-out, then exit. No accepted record is lost.
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <thread>

#include "live/http_endpoint.h"
#include "live/live_study.h"
#include "live/stream_server.h"
#include "live/study_json.h"
#include "sim/ecosystem.h"
#include "sim/listgen.h"
#include "store/store_service.h"

namespace {

using namespace adscope;

volatile std::sig_atomic_t g_stop = 0;

void handle_stop_signal(int) { g_stop = 1; }

struct Args {
  std::map<std::string, std::string> named;
  bool flag(const std::string& name) const { return named.contains(name); }
  std::string get(const std::string& name, std::string fallback = "") const {
    const auto it = named.find(name);
    return it == named.end() ? fallback : it->second;
  }
  std::uint64_t get_u64(const std::string& name, std::uint64_t fallback) const {
    const auto it = named.find(name);
    return it == named.end() ? fallback
                             : std::strtoull(it->second.c_str(), nullptr, 10);
  }
};

Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) continue;
    key = key.substr(2);
    if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      args.named[key] = argv[++i];
    } else {
      args.named[key] = "";
    }
  }
  return args;
}

void usage() {
  std::fputs(
      "usage: adscoped [options]\n"
      "  --port N          ingest TCP port (default 7316; 0 = ephemeral)\n"
      "  --unix PATH       ingest Unix socket instead of TCP\n"
      "  --http-port N     query/metrics port (default 7317; 0 = ephemeral)\n"
      "  --bucket-s N      aggregation bucket width, seconds (default 300)\n"
      "  --window-s N      sliding window span, seconds (default 86400)\n"
      "  --threads N       analysis shards (default 1; 0 = hw threads)\n"
      "  --active-min N    active-browser request threshold (default 1000)\n"
      "  --classify-cache N  per-shard classification memo entries\n"
      "                    (default 4096, 0 disables)\n"
      "  --seed S          filter-list world seed — must match the trace\n"
      "                    producer's (default 42)\n"
      "  --snapshot-out F  final snapshot JSON on shutdown\n"
      "                    (default adscoped_snapshot.json, \"\" = skip)\n"
      "  --store-retention N  snapshot-store history span, seconds\n"
      "                    (default: the --window-s span; 0 = unbounded)\n"
      "  --store-cache-mb N  query response cache budget, MiB\n"
      "                    (default 8, 0 disables caching)\n"
      "  --public          listen on all interfaces, not just loopback\n",
      stderr);
}

int run(const Args& args) {
  const auto seed = args.get_u64("seed", 42);
  std::printf("adscoped: generating filter-list world (seed %llu) ...\n",
              static_cast<unsigned long long>(seed));
  const auto ecosystem = sim::Ecosystem::generate(seed);
  const auto lists = sim::generate_lists(ecosystem);
  const auto engine =
      sim::make_engine(lists, sim::ListSelection{.easylist = true,
                                                 .derivative = true,
                                                 .easyprivacy = true,
                                                 .acceptable_ads = true});

  live::LiveStudyOptions options;
  options.study.inference.min_requests = args.get_u64("active-min", 1000);
  options.study.classifier.classify_cache =
      args.get_u64("classify-cache", 4096);
  options.threads = args.get_u64("threads", 1);
  options.bucket_seconds = args.get_u64("bucket-s", 300);
  const auto window_s = args.get_u64("window-s", 86400);
  options.window_buckets =
      (window_s + options.bucket_seconds - 1) / options.bucket_seconds;

  // Snapshot store: owns sealed-study copies, so it must outlive the
  // LiveStudy whose workers feed it through on_seal.
  store::StoreServiceOptions store_options;
  store_options.tree.study = options.study;
  store_options.tree.bucket_seconds = options.bucket_seconds;
  const auto retention_s = args.get_u64("store-retention", window_s);
  store_options.tree.retention_buckets =
      retention_s == 0
          ? 0
          : (retention_s + options.bucket_seconds - 1) / options.bucket_seconds;
  store_options.cache.capacity_bytes =
      static_cast<std::size_t>(args.get_u64("store-cache-mb", 8)) << 20;
  store::StoreService store(store_options, &ecosystem.asn_db());

  options.on_seal = [&store](std::uint64_t bucket_id, std::size_t shard,
                             const core::TraceStudy& sealed) {
    store.tree().ingest(bucket_id, shard, sealed);
  };
  live::LiveStudy study(engine, ecosystem.abp_registry(), options);
  store.set_live_stats([&study] {
    return store::LiveStats{study.watermark_ms(), study.records_ingested(),
                            study.total_drops(), study.current_bucket()};
  });

  const bool loopback_only = !args.flag("public");
  const auto unix_path = args.get("unix");
  auto ingest_socket =
      unix_path.empty()
          ? util::ListenSocket::tcp(
                static_cast<std::uint16_t>(args.get_u64("port", 7316)),
                loopback_only)
          : util::ListenSocket::unix_path(unix_path);
  live::TraceStreamServer ingest(study, std::move(ingest_socket));

  auto http_socket = util::ListenSocket::tcp(
      static_cast<std::uint16_t>(args.get_u64("http-port", 7317)),
      loopback_only);
  live::HttpEndpoint endpoint(study, std::move(http_socket),
                              &ecosystem.asn_db(), &ingest, &store);

  ingest.start();
  endpoint.start();
  if (unix_path.empty()) {
    std::printf("adscoped: ingest on tcp:%u, queries on http://127.0.0.1:%u\n",
                ingest.port(), endpoint.port());
  } else {
    std::printf("adscoped: ingest on unix:%s, queries on http://127.0.0.1:%u\n",
                unix_path.c_str(), endpoint.port());
  }
  std::printf(
      "adscoped: %zu shard(s), %llu s buckets, %llu-bucket window\n",
      study.shard_count(),
      static_cast<unsigned long long>(study.bucket_seconds()),
      static_cast<unsigned long long>(study.window_buckets()));
  std::printf(
      "adscoped: snapshot store retains %llu bucket(s) (0 = unbounded), "
      "%zu KiB response cache\n",
      static_cast<unsigned long long>(store.tree().retention_buckets()),
      store.cache_capacity_bytes() >> 10);

  struct sigaction action {};
  action.sa_handler = handle_stop_signal;
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);

  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }

  // Graceful shutdown: no new bytes, drain what was accepted, make it
  // all visible, persist, then tear down.
  std::printf("\nadscoped: shutting down ...\n");
  ingest.stop();
  study.seal_all();
  study.flush();

  const auto snapshot_out = args.get("snapshot-out", "adscoped_snapshot.json");
  if (!snapshot_out.empty()) {
    const auto snapshot = study.snapshot();
    std::ofstream out(snapshot_out);
    if (out) {
      out << live::summary_json(snapshot) << "\n";
      std::printf("adscoped: final snapshot -> %s\n", snapshot_out.c_str());
    } else {
      std::fprintf(stderr, "adscoped: cannot write %s\n", snapshot_out.c_str());
    }
  }

  endpoint.stop();
  study.close();
  std::printf(
      "adscoped: ingested %llu records (%llu dropped), served %llu "
      "HTTP requests\n",
      static_cast<unsigned long long>(study.records_ingested()),
      static_cast<unsigned long long>(study.total_drops()),
      static_cast<unsigned long long>(endpoint.requests_served()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = parse_args(argc, argv);
  if (args.flag("help")) {
    usage();
    return 0;
  }
  try {
    return run(args);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "adscoped: %s\n", error.what());
    return 1;
  }
}
