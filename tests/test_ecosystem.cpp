// sim: ecosystem generation invariants and determinism.
#include <gtest/gtest.h>

#include "sim/ecosystem.h"

namespace adscope::sim {
namespace {

class EcosystemTest : public ::testing::Test {
 protected:
  static EcosystemOptions small() {
    EcosystemOptions options;
    options.publishers = 300;
    return options;
  }
  Ecosystem eco_ = Ecosystem::generate(42, small());
};

TEST_F(EcosystemTest, Determinism) {
  const auto other = Ecosystem::generate(42, small());
  ASSERT_EQ(eco_.publishers().size(), other.publishers().size());
  for (std::size_t i = 0; i < eco_.publishers().size(); ++i) {
    EXPECT_EQ(eco_.publishers()[i].domain, other.publishers()[i].domain);
    EXPECT_EQ(eco_.publishers()[i].server, other.publishers()[i].server);
  }
  ASSERT_EQ(eco_.companies().size(), other.companies().size());
  for (std::size_t i = 0; i < eco_.companies().size(); ++i) {
    EXPECT_EQ(eco_.companies()[i].servers, other.companies()[i].servers);
  }
}

TEST_F(EcosystemTest, DifferentSeedsDiffer) {
  const auto other = Ecosystem::generate(43, small());
  bool any_different = false;
  for (std::size_t i = 0; i < eco_.publishers().size(); ++i) {
    any_different |= eco_.publishers()[i].domain != other.publishers()[i].domain;
  }
  EXPECT_TRUE(any_different);
}

TEST_F(EcosystemTest, ServersLiveInOwnersPrefix) {
  for (const auto& company : eco_.companies()) {
    const auto& entry = eco_.as_entry(company.as_number);
    for (const auto ip : company.servers) {
      EXPECT_TRUE(entry.prefix.contains(ip))
          << company.name << " server outside its AS prefix";
      EXPECT_EQ(eco_.asn_db().lookup(ip), company.as_number);
    }
  }
}

TEST_F(EcosystemTest, PublisherInvariants) {
  for (const auto& publisher : eco_.publishers()) {
    EXPECT_FALSE(publisher.domain.empty());
    EXPECT_NE(publisher.server, 0u);
    EXPECT_NE(publisher.cdn_server, 0u);
    EXPECT_FALSE(publisher.ad_partners.empty());
    EXPECT_FALSE(publisher.tracker_partners.empty());
    for (const auto partner : publisher.ad_partners) {
      ASSERT_LT(partner, eco_.companies().size());
      const auto role = eco_.companies()[partner].role;
      EXPECT_TRUE(role == CompanyRole::kAdNetwork ||
                  role == CompanyRole::kAdExchange);
    }
    EXPECT_EQ(eco_.asn_db().lookup(publisher.server), publisher.as_number);
    // Adult sites are never whitelisted (§7.3 finding baked as intent).
    if (publisher.category == SiteCategory::kAdult) {
      EXPECT_FALSE(publisher.acceptable_ads);
    }
  }
}

TEST_F(EcosystemTest, AbpServersRegistered) {
  EXPECT_EQ(eco_.abp_servers().size(), 3u);
  for (const auto ip : eco_.abp_servers()) {
    EXPECT_TRUE(eco_.abp_registry().is_abp_server(ip));
    EXPECT_EQ(eco_.asn_db().as_name(eco_.asn_db().lookup(ip)), "AdblockPlus");
  }
}

TEST_F(EcosystemTest, ClientIpsInIspPrefix) {
  for (std::uint32_t hh = 0; hh < 100; ++hh) {
    const auto ip = eco_.client_ip(hh);
    EXPECT_EQ(eco_.asn_db().as_name(eco_.asn_db().lookup(ip)), "ISP-RBN");
  }
  EXPECT_NE(eco_.client_ip(0), eco_.client_ip(1));
}

TEST_F(EcosystemTest, Table5AsesPresent) {
  for (const char* name : {"Google", "Am.-EC2", "Akamai", "Am.-AWS",
                           "Hetzner", "AppNexus", "MyLoc", "SoftLayer", "AOL",
                           "Criteo"}) {
    bool found = false;
    for (const auto& entry : eco_.ases()) found |= entry.name == name;
    EXPECT_TRUE(found) << name;
  }
}

TEST_F(EcosystemTest, CompanyLookup) {
  EXPECT_NE(eco_.company_by_name("GoogleAds"), SIZE_MAX);
  EXPECT_NE(eco_.company_by_name("Criteo"), SIZE_MAX);
  EXPECT_EQ(eco_.company_by_name("NoSuchCompany"), SIZE_MAX);
}

TEST_F(EcosystemTest, GoogleApisSharesAdFrontends) {
  const auto apis = eco_.company_by_name("GoogleApis");
  const auto ads = eco_.company_by_name("GoogleAds");
  ASSERT_NE(apis, SIZE_MAX);
  ASSERT_NE(ads, SIZE_MAX);
  // Shared VIPs (DESIGN: mixed ad/content servers at Google).
  EXPECT_EQ(eco_.companies()[apis].servers.front(),
            eco_.companies()[ads].servers.front());
}

TEST_F(EcosystemTest, PopularitySamplerMatchesCatalog) {
  EXPECT_EQ(eco_.popularity().size(), eco_.publishers().size());
}

class PublisherCounts : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PublisherCounts, GeneratesRequestedSize) {
  EcosystemOptions options;
  options.publishers = GetParam();
  const auto eco = Ecosystem::generate(1, options);
  EXPECT_EQ(eco.publishers().size(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Sizes, PublisherCounts,
                         ::testing::Values(10, 100, 1000));

}  // namespace
}  // namespace adscope::sim
