// FilterEngine classification semantics: list priority, exceptions,
// whitelisting, $document page whitelisting, literal lookup.
#include <gtest/gtest.h>

#include "adblock/engine.h"

namespace adscope::adblock {
namespace {

using http::RequestType;

FilterList list_of(std::string_view text, ListKind kind, std::string name) {
  return FilterList::parse(text, kind, std::move(name));
}

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    easylist_ = engine_.add_list(list_of(
        "||adnet.test^$third-party\n"
        "/banners/\n"
        "@@||adnet.test/quality$script\n",
        ListKind::kEasyList, "easylist"));
    easyprivacy_ = engine_.add_list(list_of(
        "||tracker.test^$third-party\n"
        "/pixel.gif?\n",
        ListKind::kEasyPrivacy, "easyprivacy"));
    whitelist_ = engine_.add_list(list_of(
        "@@||adnet.test/aa/*\n"
        "@@||whitelisted-page.test^$document\n",
        ListKind::kAcceptableAds, "exceptionrules"));
  }

  Request ad_request(std::string url,
                     std::string page = "http://site.test/") {
    return make_request(url, page, RequestType::kImage);
  }

  FilterEngine engine_;
  ListId easylist_ = kNoList;
  ListId easyprivacy_ = kNoList;
  ListId whitelist_ = kNoList;
};

TEST_F(EngineTest, NoMatchForPlainContent) {
  const auto result =
      engine_.classify(ad_request("http://site.test/img/logo.png"));
  EXPECT_EQ(result.decision, Decision::kNoMatch);
  EXPECT_FALSE(result.is_ad());
}

TEST_F(EngineTest, BlockedByEasyList) {
  const auto result =
      engine_.classify(ad_request("http://adnet.test/b.gif"));
  EXPECT_EQ(result.decision, Decision::kBlocked);
  EXPECT_EQ(result.list, easylist_);
  EXPECT_TRUE(result.is_ad());
}

TEST_F(EngineTest, BlockedByEasyPrivacy) {
  const auto result =
      engine_.classify(ad_request("http://tracker.test/pixel.gif?cb=1"));
  EXPECT_EQ(result.decision, Decision::kBlocked);
  EXPECT_EQ(result.list, easyprivacy_);
}

TEST_F(EngineTest, ListPriorityAttributesToEarlierList) {
  // Matches /banners/ (EasyList) and ||tracker.test^ (EasyPrivacy):
  // attribution goes to EasyList, like the paper's ordering.
  const auto result =
      engine_.classify(ad_request("http://tracker.test/banners/x.gif"));
  EXPECT_EQ(result.decision, Decision::kBlocked);
  EXPECT_EQ(result.list, easylist_);
}

TEST_F(EngineTest, WhitelistOverridesBlock) {
  const auto result =
      engine_.classify(ad_request("http://adnet.test/aa/banner.gif"));
  EXPECT_EQ(result.decision, Decision::kWhitelisted);
  EXPECT_EQ(result.list, whitelist_);
  EXPECT_TRUE(result.whitelist_saved_it());
  EXPECT_EQ(result.blocked_by_list, easylist_);
  EXPECT_TRUE(result.is_ad());
}

TEST_F(EngineTest, ExceptionInsideEasyListPreventsBlock) {
  const auto result = engine_.classify(make_request(
      "http://adnet.test/quality.js", "http://site.test/",
      RequestType::kScript));
  EXPECT_EQ(result.decision, Decision::kWhitelisted);
  EXPECT_EQ(result.list, easylist_);
}

TEST_F(EngineTest, ExceptionTypeMismatchStillBlocks) {
  // Same URL typed as document (the MIME-lie scenario): the $script
  // exception no longer applies and the blocking rule fires.
  const auto result = engine_.classify(make_request(
      "http://adnet.test/quality.js", "http://site.test/",
      RequestType::kSubdocument));
  EXPECT_EQ(result.decision, Decision::kBlocked);
}

TEST_F(EngineTest, DocumentExceptionWhitelistsWholePage) {
  const auto result = engine_.classify(make_request(
      "http://adnet.test/b.gif", "http://whitelisted-page.test/index.html",
      RequestType::kImage));
  EXPECT_EQ(result.decision, Decision::kWhitelisted);
  EXPECT_EQ(result.list, whitelist_);
}

TEST_F(EngineTest, DisabledListDoesNotMatch) {
  engine_.set_enabled(easyprivacy_, false);
  const auto result =
      engine_.classify(ad_request("http://tracker.test/t.js"));
  EXPECT_EQ(result.decision, Decision::kNoMatch);
  engine_.set_enabled(easyprivacy_, true);
  EXPECT_EQ(engine_.classify(ad_request("http://tracker.test/t.js")).decision,
            Decision::kBlocked);
}

TEST_F(EngineTest, WhitelistOnlyMatchIsStillAnAdSignal) {
  // AA rule hits although no blacklist rule does (over-general rule):
  // counted as whitelisted with no blocked_by.
  engine_.set_enabled(easylist_, false);
  const auto result =
      engine_.classify(ad_request("http://adnet.test/aa/banner.gif"));
  EXPECT_EQ(result.decision, Decision::kWhitelisted);
  EXPECT_FALSE(result.whitelist_saved_it());
}

TEST_F(EngineTest, FindListByKind) {
  EXPECT_EQ(engine_.find_list(ListKind::kEasyList), easylist_);
  EXPECT_EQ(engine_.find_list(ListKind::kEasyPrivacy), easyprivacy_);
  EXPECT_EQ(engine_.find_list(ListKind::kAcceptableAds), whitelist_);
  EXPECT_EQ(engine_.find_list(ListKind::kEasyListDerivative), kNoList);
}

TEST_F(EngineTest, PatternLiteralLookup) {
  EXPECT_TRUE(engine_.pattern_contains_literal("banners"));
  EXPECT_TRUE(engine_.pattern_contains_literal("pixel.gif?"));
  EXPECT_FALSE(engine_.pattern_contains_literal("zzz-not-there"));
}

TEST(EngineEdge, EmptyEngineNeverMatches) {
  FilterEngine engine;
  const auto result = engine.classify(
      make_request("http://ads.test/banner.gif", "", RequestType::kImage));
  EXPECT_EQ(result.decision, Decision::kNoMatch);
  EXPECT_EQ(engine.active_filter_count(), 0u);
}

TEST(EngineEdge, ManyFiltersTokenIndexStaysCorrect) {
  // Build a list with thousands of distinct domain rules; verify a few
  // random probes agree with brute force.
  std::string text;
  for (int i = 0; i < 3000; ++i) {
    text += "||adhost" + std::to_string(i) + ".test^$third-party\n";
  }
  FilterEngine engine;
  engine.add_list(
      FilterList::parse(text, ListKind::kEasyList, "big"));
  for (int i = 0; i < 3000; i += 97) {
    const auto url =
        "http://adhost" + std::to_string(i) + ".test/x.gif";
    const auto result = engine.classify(
        make_request(url, "http://page.test/", http::RequestType::kImage));
    EXPECT_EQ(result.decision, Decision::kBlocked) << url;
  }
  const auto miss = engine.classify(make_request(
      "http://adhost99999.test/x.gif", "http://page.test/",
      http::RequestType::kImage));
  EXPECT_EQ(miss.decision, Decision::kNoMatch);
}

}  // namespace
}  // namespace adscope::adblock
