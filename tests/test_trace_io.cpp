// trace: headers collection, binary format round trips, analyzer
// extraction.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "analyzer/http_extractor.h"
#include "http/headers.h"
#include "trace/io.h"
#include "trace/reader.h"
#include "trace/writer.h"

namespace adscope {
namespace {

TEST(Headers, SetGetCaseInsensitive) {
  http::Headers headers;
  headers.set("Content-Type", "text/html");
  EXPECT_EQ(headers.get_or_empty("content-type"), "text/html");
  headers.set("CONTENT-TYPE", "image/gif");  // overwrite, not append
  EXPECT_EQ(headers.size(), 1u);
  EXPECT_EQ(headers.get_or_empty("Content-Type"), "image/gif");
  EXPECT_FALSE(headers.get("missing").has_value());
  EXPECT_TRUE(headers.contains("content-TYPE"));
}

TEST(Headers, AppendKeepsDuplicates) {
  http::Headers headers;
  headers.append("Set-Cookie", "a=1");
  headers.append("Set-Cookie", "b=2");
  EXPECT_EQ(headers.size(), 2u);
  EXPECT_EQ(headers.get_or_empty("set-cookie"), "a=1");  // first wins
}

TEST(Varint, RoundTripBoundaries) {
  std::stringstream stream;
  const std::uint64_t values[] = {0, 1, 127, 128, 300, 1ULL << 21,
                                  UINT64_MAX};
  for (const auto v : values) trace::write_varint(stream, v);
  for (const auto v : values) {
    std::uint64_t out = 0;
    ASSERT_TRUE(trace::read_varint(stream, out));
    EXPECT_EQ(out, v);
  }
  std::uint64_t eof_value = 0;
  EXPECT_FALSE(trace::read_varint(stream, eof_value));  // clean EOF
}

TEST(Varint, TruncationThrows) {
  std::stringstream stream;
  stream.put(static_cast<char>(0x80));  // continuation with no next byte
  std::uint64_t out = 0;
  EXPECT_THROW(trace::read_varint(stream, out), trace::TraceFormatError);
}

TEST(TraceString, RoundTrip) {
  std::stringstream stream;
  trace::write_string(stream, "hello");
  trace::write_string(stream, "");
  EXPECT_EQ(trace::read_string(stream), "hello");
  EXPECT_EQ(trace::read_string(stream), "");
}

class TraceFileTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }

  trace::HttpTransaction make_txn(std::uint64_t t, const char* host) {
    trace::HttpTransaction txn;
    txn.timestamp_ms = t;
    txn.client_ip = 0x0AC80001;
    txn.server_ip = 0x0A010001;
    txn.host = host;
    txn.uri = "/path?q=" + std::to_string(t);
    txn.referer = t % 2 == 0 ? "" : "http://page.test/";
    txn.user_agent = "UA";
    txn.content_type = "image/gif";
    txn.location = t % 3 == 0 ? "http://next.test/x" : "";
    txn.content_length = 43 + t;
    txn.status_code = t % 3 == 0 ? 302 : 200;
    txn.tcp_handshake_us = 1000;
    txn.http_handshake_us = 2000;
    return txn;
  }

  std::string path_ = "/tmp/adscope_test_trace.adst";
};

TEST_F(TraceFileTest, RoundTripPreservesEverything) {
  trace::MemoryTrace original;
  trace::TraceMeta meta;
  meta.name = "unit";
  meta.start_unix_s = 1'428'710'400;
  meta.duration_s = 3600;
  meta.subscribers = 7;
  meta.uplink_gbps = 3;
  original.on_meta(meta);
  for (std::uint64_t i = 0; i < 200; ++i) {
    original.on_http(make_txn(i, i % 5 == 0 ? "a.test" : "b.test"));
  }
  trace::TlsFlow flow;
  flow.timestamp_ms = 9;
  flow.client_ip = 1;
  flow.server_ip = 2;
  flow.bytes = 4096;
  original.on_tls(flow);

  {
    trace::FileTraceWriter writer(path_);
    original.replay(writer);
  }
  trace::FileTraceReader reader(path_);
  EXPECT_EQ(reader.meta().name, "unit");
  EXPECT_EQ(reader.meta().subscribers, 7u);
  trace::MemoryTrace copy;
  const auto records = reader.replay(copy);
  EXPECT_EQ(records, 201u);
  ASSERT_EQ(copy.http().size(), original.http().size());
  for (std::size_t i = 0; i < copy.http().size(); ++i) {
    const auto& a = original.http()[i];
    const auto& b = copy.http()[i];
    EXPECT_EQ(a.host, b.host);
    EXPECT_EQ(a.uri, b.uri);
    EXPECT_EQ(a.referer, b.referer);
    EXPECT_EQ(a.content_type, b.content_type);
    EXPECT_EQ(a.location, b.location);
    EXPECT_EQ(a.content_length, b.content_length);
    EXPECT_EQ(a.status_code, b.status_code);
    EXPECT_EQ(a.timestamp_ms, b.timestamp_ms);
  }
  ASSERT_EQ(copy.tls().size(), 1u);
  EXPECT_EQ(copy.tls()[0].bytes, 4096u);
}

TEST_F(TraceFileTest, DictionaryCompressesRepeatedStrings) {
  {
    trace::FileTraceWriter writer(path_);
    trace::TraceMeta meta;
    meta.name = "dict";
    writer.on_meta(meta);
    for (std::uint64_t i = 0; i < 1000; ++i) {
      writer.on_http(make_txn(i, "the-same-long-host-name.example.com"));
    }
  }
  const auto size = std::filesystem::file_size(path_);
  // Naive encoding would store the 35-byte host 1000x; the dictionary
  // stores it once. ~60 bytes/record is ample headroom.
  EXPECT_LT(size, 1000u * 70u);
  trace::FileTraceReader reader(path_);
  trace::MemoryTrace copy;
  reader.replay(copy);
  EXPECT_EQ(copy.http().back().host, "the-same-long-host-name.example.com");
}

TEST_F(TraceFileTest, WriterBackPatchesRecordCountHints) {
  {
    trace::FileTraceWriter writer(path_);
    trace::TraceMeta meta;
    meta.name = "hints";
    writer.on_meta(meta);  // hints unknown (0) at this point
    for (std::uint64_t i = 0; i < 37; ++i) writer.on_http(make_txn(i, "h.test"));
    trace::TlsFlow flow;
    flow.timestamp_ms = 1;
    writer.on_tls(flow);
    writer.on_tls(flow);
    writer.close();  // patches the real counts into the header
  }
  trace::FileTraceReader reader(path_);
  EXPECT_EQ(reader.meta().http_count_hint, 37u);
  EXPECT_EQ(reader.meta().tls_count_hint, 2u);

  // MemoryTrace turns the hints into a reservation on on_meta.
  trace::MemoryTrace copy;
  reader.replay(copy);
  EXPECT_EQ(copy.http().size(), 37u);
  EXPECT_GE(copy.http().capacity(), 37u);
  EXPECT_GE(copy.tls().capacity(), 2u);
}

TEST_F(TraceFileTest, StreamedEncoderLeavesHintsUnknown) {
  // A socket writer cannot seek back; its header keeps the 0 = unknown
  // hints and readers must accept that.
  std::ostringstream encoded;
  {
    trace::TraceEncoder encoder(encoded);
    trace::TraceMeta meta;
    meta.name = "no-patch";
    encoder.on_meta(meta);
    encoder.on_http(make_txn(1, "s.test"));
    encoder.finish();
  }
  {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    const auto bytes = encoded.str();
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  trace::FileTraceReader reader(path_);
  EXPECT_EQ(reader.meta().http_count_hint, 0u);
  EXPECT_EQ(reader.meta().tls_count_hint, 0u);
  trace::MemoryTrace copy;
  EXPECT_EQ(reader.replay(copy), 1u);
}

TEST_F(TraceFileTest, TruncationMidRecordThrowsFormatError) {
  {
    trace::FileTraceWriter writer(path_);
    trace::TraceMeta meta;
    meta.name = "cut";
    writer.on_meta(meta);
    for (std::uint64_t i = 0; i < 5; ++i) writer.on_http(make_txn(i, "c.test"));
    writer.close();
  }
  const auto size = std::filesystem::file_size(path_);
  // Chop inside the last record (well past its tag byte): the reader
  // must surface structured truncation, not stale fields or UB.
  std::filesystem::resize_file(path_, size - 10);
  trace::FileTraceReader reader(path_);
  trace::MemoryTrace sink;
  EXPECT_THROW(reader.replay(sink), trace::TraceFormatError);
}

TEST(MemoryTraceSink, MoveOverloadStealsTheStrings) {
  trace::MemoryTrace memory;
  trace::HttpTransaction txn;
  txn.uri = std::string(128, 'x');  // heap-allocated (beyond SSO)
  const char* buffer = txn.uri.data();
  memory.on_http_owned(std::move(txn));
  ASSERT_EQ(memory.http().size(), 1u);
  EXPECT_EQ(memory.http()[0].uri.data(), buffer)
      << "on_http_owned must move, not copy";
}

TEST_F(TraceFileTest, BadMagicRejected) {
  {
    std::ofstream out(path_, std::ios::binary);
    out << "NOPE garbage";
  }
  EXPECT_THROW(trace::FileTraceReader reader(path_), trace::TraceFormatError);
}

TEST_F(TraceFileTest, MissingFileThrows) {
  EXPECT_THROW(trace::FileTraceReader reader("/nonexistent/file.adst"),
               std::runtime_error);
}

TEST(Extractor, BuildsAbsoluteUrls) {
  analyzer::HttpExtractor extractor;
  std::vector<analyzer::WebObject> objects;
  extractor.set_object_callback(
      [&](const analyzer::WebObject& o) { objects.push_back(o); });

  trace::HttpTransaction txn;
  txn.host = "WWW.Site.Test";
  txn.uri = "/a/b?x=1";
  txn.content_type = "Text/HTML; charset=utf-8";
  txn.status_code = 301;
  txn.location = "/moved/here";
  extractor.on_http(txn);

  ASSERT_EQ(objects.size(), 1u);
  EXPECT_EQ(objects[0].url.spec(), "http://www.site.test/a/b?x=1");
  EXPECT_EQ(objects[0].content_type, "text/html");
  EXPECT_TRUE(objects[0].is_redirect());
  EXPECT_EQ(objects[0].location.spec(), "http://www.site.test/moved/here");
}

TEST(Extractor, DropsMalformedHost) {
  analyzer::HttpExtractor extractor;
  int calls = 0;
  extractor.set_object_callback([&](const analyzer::WebObject&) { ++calls; });
  trace::HttpTransaction txn;
  txn.host = "";
  txn.uri = "/x";
  extractor.on_http(txn);
  EXPECT_EQ(calls, 0);
  EXPECT_EQ(extractor.malformed(), 1u);
  EXPECT_EQ(extractor.transactions(), 1u);
}

TEST(Extractor, ForwardsTls) {
  analyzer::HttpExtractor extractor;
  int tls_calls = 0;
  extractor.set_tls_callback([&](const trace::TlsFlow&) { ++tls_calls; });
  extractor.on_tls(trace::TlsFlow{});
  EXPECT_EQ(tls_calls, 1);
}

}  // namespace
}  // namespace adscope
