// core: ReSurf-style page-view segmentation.
#include <gtest/gtest.h>

#include "core/page_segmenter.h"

namespace adscope::core {
namespace {

ClassifiedObject make_object(const std::string& page, std::uint64_t t_ms,
                             bool ad = false, netdb::IpV4 ip = 1,
                             const std::string& ua = "ua") {
  ClassifiedObject object;
  object.object.client_ip = ip;
  object.object.user_agent = ua;
  object.object.timestamp_ms = t_ms;
  object.object.content_length = 100;
  object.object.url = *http::Url::parse(page + "obj");
  object.page_url = page;
  if (ad) {
    object.verdict.decision = adblock::Decision::kBlocked;
    object.verdict.list_kind = adblock::ListKind::kEasyList;
  }
  return object;
}

class SegmenterTest : public ::testing::Test {
 protected:
  SegmenterTest() {
    segmenter_.set_callback(
        [this](const PageView& view) { views_.push_back(view); });
  }

  PageSegmenter segmenter_;
  std::vector<PageView> views_;
};

TEST_F(SegmenterTest, SingleViewAggregates) {
  segmenter_.add(make_object("http://a.test/", 1000));
  segmenter_.add(make_object("http://a.test/", 1500, /*ad=*/true));
  segmenter_.add(make_object("http://a.test/", 2000));
  EXPECT_TRUE(views_.empty());  // still open
  segmenter_.flush();
  ASSERT_EQ(views_.size(), 1u);
  EXPECT_EQ(views_[0].page_url, "http://a.test/");
  EXPECT_EQ(views_[0].objects, 3u);
  EXPECT_EQ(views_[0].ad_objects, 1u);
  EXPECT_EQ(views_[0].bytes, 300u);
  EXPECT_EQ(views_[0].start_ms, 1000u);
  EXPECT_EQ(views_[0].end_ms, 2000u);
  EXPECT_NEAR(views_[0].ad_share(), 1.0 / 3.0, 1e-9);
}

TEST_F(SegmenterTest, IdleGapSplitsRevisits) {
  segmenter_.add(make_object("http://a.test/", 1000));
  // Same page after a long pause: a NEW view (revisit).
  segmenter_.add(make_object("http://a.test/", 1000 + 40'000));
  segmenter_.flush();
  ASSERT_EQ(segmenter_.views_emitted(), 2u);
}

TEST_F(SegmenterTest, ConcurrentPagesStaySeparate) {
  segmenter_.add(make_object("http://a.test/", 1000));
  segmenter_.add(make_object("http://b.test/", 1200));  // second tab
  segmenter_.add(make_object("http://a.test/", 1400));
  segmenter_.flush();
  ASSERT_EQ(views_.size(), 2u);
  std::uint32_t total = 0;
  for (const auto& view : views_) total += view.objects;
  EXPECT_EQ(total, 3u);
}

TEST_F(SegmenterTest, UsersAreSeparate) {
  segmenter_.add(make_object("http://a.test/", 1000, false, 1));
  segmenter_.add(make_object("http://a.test/", 1100, false, 2));
  segmenter_.flush();
  EXPECT_EQ(views_.size(), 2u);
}

TEST_F(SegmenterTest, PagelessObjectsCounted) {
  ClassifiedObject orphan = make_object("http://a.test/", 1000);
  orphan.page_url.clear();
  segmenter_.add(orphan);
  segmenter_.flush();
  EXPECT_EQ(segmenter_.views_emitted(), 0u);
  EXPECT_EQ(segmenter_.objects_without_page(), 1u);
}

TEST_F(SegmenterTest, OpenViewCapEvictsStalest) {
  PageSegmenter::Options options;
  options.max_open_views = 2;
  PageSegmenter segmenter(options);
  std::vector<PageView> views;
  segmenter.set_callback(
      [&](const PageView& view) { views.push_back(view); });
  segmenter.add(make_object("http://a.test/", 1000));
  segmenter.add(make_object("http://b.test/", 1100));
  segmenter.add(make_object("http://c.test/", 1200));  // evicts a
  ASSERT_EQ(views.size(), 1u);
  EXPECT_EQ(views[0].page_url, "http://a.test/");
}

TEST_F(SegmenterTest, RealisticStreamProducesSaneViews) {
  // 50 "page loads" of ~20 objects each, interleaved across 5 users.
  std::uint64_t t = 0;
  for (int page = 0; page < 50; ++page) {
    const auto url = "http://site" + std::to_string(page % 7) +
                     ".test/p" + std::to_string(page);
    const auto ip = static_cast<netdb::IpV4>(1 + page % 5);
    for (int object = 0; object < 20; ++object) {
      segmenter_.add(make_object(url, t, object % 5 == 0, ip));
      t += 100;
    }
    t += 60'000;  // think time
  }
  segmenter_.flush();
  EXPECT_EQ(segmenter_.views_emitted(), 50u);
  for (const auto& view : views_) {
    EXPECT_EQ(view.objects, 20u);
    EXPECT_EQ(view.ad_objects, 4u);
  }
}

}  // namespace
}  // namespace adscope::core
