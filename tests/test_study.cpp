// core: TraceStudy facade — wiring, meta handling, HTTPS accounting,
// finish() semantics.
#include <gtest/gtest.h>

#include "core/study.h"

namespace adscope::core {
namespace {

class StudyTest : public ::testing::Test {
 protected:
  StudyTest() {
    engine_.add_list(adblock::FilterList::parse(
        "||adnet.test^$third-party\n", adblock::ListKind::kEasyList, "el"));
    registry_.add_server(0x01020304);
  }

  trace::HttpTransaction txn(const std::string& host, const std::string& uri,
                             std::uint64_t t_ms = 0) {
    trace::HttpTransaction out;
    out.timestamp_ms = t_ms;
    out.client_ip = 0x0AC80001;
    out.server_ip = 0x0A010001;
    out.host = host;
    out.uri = uri;
    out.user_agent =
        "Mozilla/5.0 (Windows NT 6.1; rv:38.0) Gecko/20100101 Firefox/38.0";
    out.content_type = "image/gif";
    out.content_length = 100;
    out.tcp_handshake_us = 1000;
    out.http_handshake_us = 2000;
    return out;
  }

  adblock::FilterEngine engine_;
  netdb::AbpServerRegistry registry_;
};

TEST_F(StudyTest, MetaDrivesTimeSeriesDuration) {
  TraceStudy study(engine_, registry_);
  trace::TraceMeta meta;
  meta.name = "t";
  meta.duration_s = 7200;
  study.on_meta(meta);
  study.on_http(txn("a.test", "/x"));
  study.finish();
  EXPECT_EQ(study.traffic().series().bin_count(), 2u);
  EXPECT_EQ(study.meta().name, "t");
}

TEST_F(StudyTest, ToleratesMissingMeta) {
  TraceStudy study(engine_, registry_);
  study.on_http(txn("a.test", "/x"));  // no on_meta first
  study.finish();
  EXPECT_EQ(study.traffic().requests(), 1u);
}

TEST_F(StudyTest, AllAggregatorsSeeEachObject) {
  TraceStudy study(engine_, registry_);
  study.on_meta(trace::TraceMeta{});
  study.on_http(txn("site.test", "/index.html"));
  auto ad = txn("adnet.test", "/b.gif", 5);
  ad.referer = "http://site.test/index.html";
  study.on_http(ad);
  study.finish();

  EXPECT_EQ(study.traffic().requests(), 2u);
  EXPECT_EQ(study.traffic().ad_requests(), 1u);
  EXPECT_EQ(study.users().total_requests(), 2u);
  EXPECT_EQ(study.users().total_ad_requests(), 1u);
  EXPECT_EQ(study.infra().total_objects(), 2u);
  EXPECT_EQ(study.infra().total_ads(), 1u);
  EXPECT_EQ(study.whitelist().ad_requests(), 1u);
  EXPECT_GT(study.rtb().ad_delta_ms().total() +
                study.rtb().non_ad_delta_ms().total(),
            0.0);
}

TEST_F(StudyTest, HttpsFlowsCountedAndMatchedAgainstRegistry) {
  TraceStudy study(engine_, registry_);
  study.on_meta(trace::TraceMeta{});
  trace::TlsFlow abp_flow;
  abp_flow.client_ip = 0x0AC80001;
  abp_flow.server_ip = 0x01020304;  // registered ABP server
  abp_flow.server_port = 443;
  study.on_tls(abp_flow);
  trace::TlsFlow other_flow;
  other_flow.client_ip = 0x0AC80001;
  other_flow.server_ip = 0x05060708;
  other_flow.server_port = 443;
  study.on_tls(other_flow);
  study.finish();

  EXPECT_EQ(study.https_flows(), 2u);
  EXPECT_EQ(study.users().tls_to_abp_servers(), 1u);
  EXPECT_EQ(study.users().abp_household_count(), 1u);
}

TEST_F(StudyTest, FinishFlushesHeldRedirects) {
  TraceStudy study(engine_, registry_);
  study.on_meta(trace::TraceMeta{});
  auto redirect = txn("adnet.test", "/adclick?d=1");
  redirect.status_code = 302;
  redirect.location = "http://never-fetched.test/x.gif";
  study.on_http(redirect);
  EXPECT_EQ(study.traffic().requests(), 0u);  // held
  study.finish();
  EXPECT_EQ(study.traffic().requests(), 1u);
  study.finish();  // idempotent
  EXPECT_EQ(study.traffic().requests(), 1u);
}

TEST_F(StudyTest, InferenceUsesConfiguredThresholds) {
  StudyOptions options;
  options.inference.min_requests = 3;
  TraceStudy study(engine_, registry_, options);
  study.on_meta(trace::TraceMeta{});
  for (int i = 0; i < 5; ++i) {
    study.on_http(txn("site.test", "/p" + std::to_string(i)));
  }
  study.finish();
  const auto inference = study.inference();
  EXPECT_EQ(inference.active_browsers.size(), 1u);
  const auto report = study.configurations(inference);
  EXPECT_EQ(report.low_hit_cut, 10u);
}

}  // namespace
}  // namespace adscope::core
