// Filter parsing and matching semantics (ABP grammar).
#include <gtest/gtest.h>

#include "adblock/engine.h"
#include "adblock/filter.h"

namespace adscope::adblock {
namespace {

using http::RequestType;

Request req(std::string url, std::string page = "",
            RequestType type = RequestType::kImage) {
  return make_request(url, page, type);
}

Filter parse_ok(std::string_view line) {
  auto filter = Filter::parse(line);
  EXPECT_TRUE(filter.has_value()) << "rule failed to parse: " << line;
  return *filter;
}

TEST(FilterParse, CommentsAndEmptyAreRejected) {
  EXPECT_FALSE(Filter::parse("").has_value());
  EXPECT_FALSE(Filter::parse("   ").has_value());
  EXPECT_FALSE(Filter::parse("! comment").has_value());
  EXPECT_FALSE(Filter::parse("[Adblock Plus 2.0]").has_value());
}

TEST(FilterParse, ElementHidingIsNotAUrlFilter) {
  EXPECT_FALSE(Filter::parse("##.ad-banner").has_value());
  EXPECT_FALSE(Filter::parse("example.com##.ad").has_value());
  EXPECT_FALSE(Filter::parse("example.com#@#.ad").has_value());
}

TEST(FilterParse, ExceptionPrefix) {
  EXPECT_FALSE(parse_ok("/ads/banner").is_exception());
  EXPECT_TRUE(parse_ok("@@/ads/banner").is_exception());
}

TEST(FilterParse, UnknownOptionDiscardsRule) {
  EXPECT_FALSE(Filter::parse("/ads/$bogus-option").has_value());
  EXPECT_FALSE(Filter::parse("/ads/$image,nonsense").has_value());
}

TEST(FilterParse, AnchorsAreRecognized) {
  const auto domain = parse_ok("||ads.example.com^");
  EXPECT_TRUE(domain.domain_anchor());
  const auto start = parse_ok("|http://ads.");
  EXPECT_TRUE(start.start_anchor());
  const auto end = parse_ok("/banner.gif|");
  EXPECT_TRUE(end.end_anchor());
}

TEST(FilterMatch, PlainSubstring) {
  const auto filter = parse_ok("/banners/");
  EXPECT_TRUE(filter.matches(req("http://x.example/banners/a.gif")));
  EXPECT_FALSE(filter.matches(req("http://x.example/content/a.gif")));
}

TEST(FilterMatch, WildcardSpansSegments) {
  const auto filter = parse_ok("/ads/*/img");
  EXPECT_TRUE(filter.matches(req("http://x.example/ads/v2/img")));
  EXPECT_TRUE(filter.matches(req("http://x.example/ads/a/b/img")));
  EXPECT_FALSE(filter.matches(req("http://x.example/ads/img")));
}

TEST(FilterMatch, CaretMatchesSeparatorOrEnd) {
  const auto filter = parse_ok("||example.com^");
  EXPECT_TRUE(filter.matches(req("http://example.com/")));
  EXPECT_TRUE(filter.matches(req("http://example.com")));  // end counts
  EXPECT_TRUE(filter.matches(req("http://example.com:8080/x")));
  // '.' is NOT a separator: example.com.evil.test must not match the
  // caret...
  EXPECT_FALSE(filter.matches(req("http://example.com.evil.test/")));
}

TEST(FilterMatch, DomainAnchorRequiresLabelBoundary) {
  const auto filter = parse_ok("||ads.example.com^");
  EXPECT_TRUE(filter.matches(req("http://ads.example.com/banner")));
  EXPECT_TRUE(filter.matches(req("http://sub.ads.example.com/banner")));
  EXPECT_FALSE(filter.matches(req("http://badads.example.com/banner")));
  EXPECT_FALSE(filter.matches(req("http://x.example/?u=ads.example.com")));
}

TEST(FilterMatch, DomainAnchorMatchesMidHost) {
  const auto filter = parse_ok("||example.com^");
  EXPECT_TRUE(filter.matches(req("http://a.b.example.com/")));
}

TEST(FilterMatch, StartAnchor) {
  const auto filter = parse_ok("|http://ads.");
  EXPECT_TRUE(filter.matches(req("http://ads.x.example/a")));
  EXPECT_FALSE(filter.matches(req("https://ads.x.example/a")));
  EXPECT_FALSE(filter.matches(req("http://x.example/?r=http://ads.q/")));
}

TEST(FilterMatch, EndAnchor) {
  const auto filter = parse_ok(".gif|");
  EXPECT_TRUE(filter.matches(req("http://x.example/a.gif")));
  EXPECT_FALSE(filter.matches(req("http://x.example/a.gif?x=1")));
}

TEST(FilterMatch, CaseInsensitiveByDefault) {
  const auto filter = parse_ok("/BANNERS/");
  EXPECT_TRUE(filter.matches(req("http://x.example/banners/a")));
  const auto cs = parse_ok("/BaNnErS/$match-case");
  EXPECT_FALSE(cs.matches(req("http://x.example/banners/a")));
  EXPECT_TRUE(cs.matches(req("http://x.example/BaNnErS/a")));
}

TEST(FilterMatch, TypeOptionsRestrict) {
  const auto filter = parse_ok("/ads/$script");
  EXPECT_TRUE(filter.matches(
      req("http://x.example/ads/a.js", "", RequestType::kScript)));
  EXPECT_FALSE(filter.matches(
      req("http://x.example/ads/a.gif", "", RequestType::kImage)));
}

TEST(FilterMatch, InverseTypeOptions) {
  const auto filter = parse_ok("/ads/$~image");
  EXPECT_FALSE(filter.matches(
      req("http://x.example/ads/a.gif", "", RequestType::kImage)));
  EXPECT_TRUE(filter.matches(
      req("http://x.example/ads/a.js", "", RequestType::kScript)));
}

TEST(FilterMatch, DocumentTypeNeedsExplicitOption) {
  // A bare blocking rule must not match main documents.
  const auto filter = parse_ok("||example.com^");
  EXPECT_FALSE(filter.matches(
      req("http://example.com/", "", RequestType::kDocument)));
}

TEST(FilterMatch, ThirdPartyConstraint) {
  const auto third = parse_ok("||adnet.example^$third-party");
  EXPECT_TRUE(third.matches(
      req("http://adnet.example/x.gif", "http://site.test/")));
  EXPECT_FALSE(third.matches(
      req("http://adnet.example/x.gif", "http://adnet.example/")));
  // Unknown page context counts as first-party.
  EXPECT_FALSE(third.matches(req("http://adnet.example/x.gif")));

  const auto first = parse_ok("||cdn.example^$~third-party");
  EXPECT_TRUE(first.matches(
      req("http://cdn.example/x.gif", "http://cdn.example/")));
  EXPECT_FALSE(first.matches(
      req("http://cdn.example/x.gif", "http://other.test/")));
}

TEST(FilterMatch, SubdomainIsFirstParty) {
  const auto third = parse_ok("||example.com^$third-party");
  EXPECT_FALSE(third.matches(
      req("http://static.example.com/x.gif", "http://www.example.com/")));
}

TEST(FilterMatch, DomainOption) {
  const auto filter = parse_ok("/promo/$domain=news.test|~live.news.test");
  EXPECT_TRUE(filter.matches(
      req("http://x.example/promo/a", "http://news.test/")));
  EXPECT_TRUE(filter.matches(
      req("http://x.example/promo/a", "http://sub.news.test/")));
  EXPECT_FALSE(filter.matches(
      req("http://x.example/promo/a", "http://live.news.test/")));
  EXPECT_FALSE(filter.matches(
      req("http://x.example/promo/a", "http://other.test/")));
  // No page context: include-constrained rules do not fire.
  EXPECT_FALSE(filter.matches(req("http://x.example/promo/a")));
}

TEST(FilterMatch, WildcardWithQueryValues) {
  // The paper's example: @@*jsp?callback=aslHandleAds*
  const auto filter = parse_ok("@@*jsp?callback=aslHandleAds*");
  EXPECT_TRUE(filter.matches(
      req("http://x.example/serve.jsp?callback=aslHandleAds123")));
  EXPECT_FALSE(filter.matches(
      req("http://x.example/serve.jsp?callback=other")));
}

TEST(FilterMatch, TrailingWildcardWithEndAnchorMatches) {
  const auto filter = parse_ok("/ads/*|");
  EXPECT_TRUE(filter.matches(req("http://x.example/ads/anything")));
}

TEST(FilterKeywords, ExtractedOnlyWhenReliable) {
  // Bounded on both sides by separators -> reliable.
  EXPECT_EQ(parse_ok("/banners/").index_keywords(),
            std::vector<std::string>{"banners"});
  // Unanchored edges are unreliable ("ads" could sit inside "leads").
  EXPECT_TRUE(parse_ok("ads").index_keywords().empty());
  // A '*' neighbour disqualifies.
  EXPECT_TRUE(parse_ok("/x*banners*y/").index_keywords().empty());
  // Domain anchor makes the leading run reliable.
  const auto kws = parse_ok("||ads.example.com^").index_keywords();
  ASSERT_EQ(kws.size(), 3u);
  EXPECT_EQ(kws[0], "ads");
  EXPECT_EQ(kws[1], "example");
  EXPECT_EQ(kws[2], "com");
}

TEST(FilterKeywords, ShortRunsSkipped) {
  EXPECT_TRUE(parse_ok("/ad/").index_keywords().empty());
}

// Property-style sweep: every filter must match a URL constructed to
// embed its pattern at a valid position.
struct MatchCase {
  const char* rule;
  const char* url;
  bool expect;
};

class FilterMatchSweep : public ::testing::TestWithParam<MatchCase> {};

TEST_P(FilterMatchSweep, Matches) {
  const auto& param = GetParam();
  const auto filter = Filter::parse(param.rule);
  ASSERT_TRUE(filter.has_value()) << param.rule;
  EXPECT_EQ(filter->matches(req(param.url)), param.expect)
      << param.rule << " vs " << param.url;
}

INSTANTIATE_TEST_SUITE_P(
    Grammar, FilterMatchSweep,
    ::testing::Values(
        MatchCase{"/ad_frame.", "http://s.test/ad_frame.html", true},
        MatchCase{"/ad_frame.", "http://s.test/bad_frame.html", false},
        MatchCase{"&ad_unit=", "http://s.test/x?y=1&ad_unit=3", true},
        MatchCase{"&ad_unit=", "http://s.test/x?ad_unit=3", false},
        MatchCase{"||ads.t.test^*.swf", "http://ads.t.test/x/y.swf", true},
        MatchCase{"||ads.t.test^*.swf", "http://ads.t.test/x/y.gif", false},
        MatchCase{"||t.test^banner", "http://t.test/banner", true},
        MatchCase{"||t.test^banner", "http://t.test/xbanner", false},
        MatchCase{"||t.test/banner", "http://t.test/banner", true},
        MatchCase{"|http://t.test/|", "http://t.test/", true},
        MatchCase{"|http://t.test/|", "http://t.test/x", false},
        MatchCase{"/a^b/", "http://t.test/a/b/", true},
        MatchCase{"/a^b/", "http://t.test/axb/", false},
        MatchCase{"^ads^", "http://t.test/ads/x", true},
        MatchCase{"^ads^", "http://t.test/loads/x", false},
        MatchCase{"||t.test^", "http://t.test", true},
        MatchCase{"track.gif?", "http://p.test/track.gif?id=7", true},
        MatchCase{"track.gif?", "http://p.test/track.gif", false}));

}  // namespace
}  // namespace adscope::adblock
