// adblock extras: regex rules, element-hiding index, subscription
// schedule.
#include <gtest/gtest.h>

#include "adblock/element_hiding.h"
#include "adblock/engine.h"
#include "adblock/subscription.h"

namespace adscope::adblock {
namespace {

using http::RequestType;

// ---------------------------------------------------------------- regex
TEST(RegexFilter, BasicMatch) {
  const auto filter = Filter::parse(R"(/banner\d+\.gif/)");
  ASSERT_TRUE(filter.has_value());
  EXPECT_TRUE(filter->is_regex());
  EXPECT_TRUE(filter->matches(make_request("http://x.test/banner42.gif", "",
                                           RequestType::kImage)));
  EXPECT_FALSE(filter->matches(make_request("http://x.test/banner.gif", "",
                                            RequestType::kImage)));
}

TEST(RegexFilter, CaseInsensitiveByDefault) {
  const auto filter = Filter::parse(R"(/AD[0-9]+/)");
  ASSERT_TRUE(filter.has_value());
  EXPECT_TRUE(filter->matches(make_request("http://x.test/ad77", "",
                                           RequestType::kImage)));
}

TEST(RegexFilter, PathLiteralIsNotRegex) {
  // "/banners/" has no regex metacharacters: stays a substring rule.
  const auto filter = Filter::parse("/banners/");
  ASSERT_TRUE(filter.has_value());
  EXPECT_FALSE(filter->is_regex());
}

TEST(RegexFilter, MalformedRegexDiscarded) {
  EXPECT_FALSE(Filter::parse(R"(/ads[/)").has_value());
}

TEST(RegexFilter, OptionsStillApply) {
  const auto filter = Filter::parse(R"(/track(er)?\.js/$script)");
  ASSERT_TRUE(filter.has_value());
  EXPECT_TRUE(filter->matches(make_request("http://x.test/tracker.js", "",
                                           RequestType::kScript)));
  EXPECT_FALSE(filter->matches(make_request("http://x.test/tracker.js", "",
                                            RequestType::kImage)));
}

TEST(RegexFilter, UnindexedButReachableThroughEngine) {
  FilterEngine engine;
  engine.add_list(FilterList::parse(R"(/ad-[a-f0-9]{8}/)",
                                    ListKind::kEasyList, "regex"));
  const auto verdict = engine.classify(make_request(
      "http://x.test/ad-deadbeef", "http://page.test/", RequestType::kImage));
  EXPECT_EQ(verdict.decision, Decision::kBlocked);
  EXPECT_EQ(engine.classify(make_request("http://x.test/ad-zzz", "",
                                         RequestType::kImage))
                .decision,
            Decision::kNoMatch);
}

// -------------------------------------------------------- element hiding
TEST(ElementHiding, GenericAndScopedSelectors) {
  const auto list = FilterList::parse(
      "##.ad-banner\n"
      "news.test##.sponsored\n"
      "news.test,~live.news.test###skyscraper\n"
      "shop.test#@#.ad-banner\n",
      ListKind::kEasyList, "el");
  ElementHidingIndex index;
  index.add_list(list);
  EXPECT_EQ(index.rule_count(), 3u);
  EXPECT_EQ(index.exception_count(), 1u);

  const auto news = index.selectors_for("news.test");
  EXPECT_EQ(news.size(), 3u);  // generic + both scoped rules

  const auto live = index.selectors_for("live.news.test");
  ASSERT_EQ(live.size(), 2u);  // #skyscraper excluded

  const auto shop = index.selectors_for("shop.test");
  // Generic .ad-banner is excepted on shop.test via "#@#".
  EXPECT_TRUE(shop.empty());

  const auto other = index.selectors_for("other.test");
  ASSERT_EQ(other.size(), 1u);
  EXPECT_EQ(other[0], ".ad-banner");
}

TEST(ElementHiding, SubdomainScoping) {
  const auto list = FilterList::parse("news.test##.ad\n",
                                      ListKind::kEasyList, "el");
  ElementHidingIndex index;
  index.add_list(list);
  EXPECT_EQ(index.selectors_for("m.news.test").size(), 1u);
  EXPECT_TRUE(index.selectors_for("newsy.test").empty());
}

// ----------------------------------------------------------- subscription
FilterList list_with_expiry(const char* expires, const char* name) {
  const std::string text =
      std::string("! Expires: ") + expires + "\n/rule1/\n/rule2/x+/\n";
  return FilterList::parse(text, ListKind::kEasyList, name);
}

TEST(Subscriptions, FreshInstallFetchesImmediately) {
  SubscriptionManager manager;
  manager.subscribe(list_with_expiry("4 days", "easylist"));
  const auto due = manager.due(0);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0]->name, "easylist");
  EXPECT_GT(due[0]->download_bytes, 0u);
}

TEST(Subscriptions, SoftExpirySchedule) {
  SubscriptionManager manager;
  manager.subscribe(list_with_expiry("1 days", "easyprivacy"),
                    /*last_updated_s=*/0);
  EXPECT_TRUE(manager.due(3600).empty());
  EXPECT_EQ(manager.due(24 * 3600).size(), 1u);
  manager.mark_updated("easyprivacy", 24 * 3600);
  EXPECT_TRUE(manager.due(25 * 3600).empty());
  EXPECT_EQ(manager.due(48 * 3600).size(), 1u);
}

TEST(Subscriptions, MixedExpiries) {
  SubscriptionManager manager;
  manager.subscribe(list_with_expiry("4 days", "easylist"), 0);
  manager.subscribe(list_with_expiry("1 days", "easyprivacy"), 0);
  EXPECT_EQ(manager.next_due_s(), 24 * 3600);
  const auto due = manager.due(2 * 24 * 3600);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0]->name, "easyprivacy");
  EXPECT_EQ(manager.due(5 * 24 * 3600).size(), 2u);
}

TEST(Subscriptions, BackdatedInstall) {
  SubscriptionManager manager;
  // Updated 3 days before the trace started; 4-day expiry -> due after
  // one more day.
  manager.subscribe(list_with_expiry("4 days", "easylist"),
                    -3 * 24 * 3600);
  EXPECT_TRUE(manager.due(12 * 3600).empty());
  EXPECT_EQ(manager.due(25 * 3600).size(), 1u);
}

}  // namespace
}  // namespace adscope::adblock
