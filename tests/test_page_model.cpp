// sim: page model — request-tree structure, ground-truth consistency
// with the filter lists, imperfection injection. Mostly property-style
// over many generated pages.
#include <gtest/gtest.h>

#include "http/url.h"
#include "sim/listgen.h"
#include "sim/page_model.h"

namespace adscope::sim {
namespace {

class PageModelTest : public ::testing::Test {
 protected:
  static EcosystemOptions small() {
    EcosystemOptions options;
    options.publishers = 200;
    return options;
  }
  Ecosystem eco_ = Ecosystem::generate(42, small());
  GeneratedLists lists_ = generate_lists(eco_);
  PageModel model_{eco_};
};

TEST_F(PageModelTest, TreeStructureIsValid) {
  util::Rng rng(1);
  for (std::size_t site = 0; site < 100; ++site) {
    const auto page = model_.build(site, rng);
    ASSERT_FALSE(page.requests.empty());
    EXPECT_EQ(page.requests[0].parent, -1);
    EXPECT_EQ(page.requests[0].true_type, http::RequestType::kDocument);
    EXPECT_EQ(page.requests[0].url, page.page_url);
    for (std::size_t i = 1; i < page.requests.size(); ++i) {
      const auto& request = page.requests[i];
      // Parents precede children (forward tree).
      ASSERT_GE(request.parent, 0);
      ASSERT_LT(static_cast<std::size_t>(request.parent), i);
      // Every URL parses.
      ASSERT_TRUE(http::Url::parse(request.url).has_value()) << request.url;
      EXPECT_NE(request.server_ip, 0u) << request.url;
    }
  }
}

TEST_F(PageModelTest, Determinism) {
  util::Rng rng_a(7);
  util::Rng rng_b(7);
  const auto a = model_.build(3, rng_a);
  const auto b = model_.build(3, rng_b);
  ASSERT_EQ(a.requests.size(), b.requests.size());
  for (std::size_t i = 0; i < a.requests.size(); ++i) {
    EXPECT_EQ(a.requests[i].url, b.requests[i].url);
    EXPECT_EQ(a.requests[i].size, b.requests[i].size);
  }
}

// Property: ground-truth ad intents line up with what the default ABP
// configuration would do, given full information and correct headers.
TEST_F(PageModelTest, IntentConsistentWithLists) {
  const auto engine = make_engine(lists_, ListSelection{.easylist = true,
                                                        .derivative = true,
                                                        .easyprivacy = true,
                                                        .acceptable_ads = true});
  util::Rng rng(11);
  std::size_t checked_ads = 0;
  std::size_t checked_trackers = 0;
  std::size_t ad_misses = 0;
  std::size_t tracker_misses = 0;
  for (std::size_t site = 0; site < 150; ++site) {
    const auto page = model_.build(site, rng);
    for (const auto& request : page.requests) {
      const auto query = adblock::make_request(request.url, page.page_url,
                                               request.true_type);
      const auto verdict = engine.classify(query);
      switch (request.intent) {
        case Intent::kAd:
          ++checked_ads;
          ad_misses += verdict.decision != adblock::Decision::kBlocked;
          break;
        case Intent::kAaAd:
          ++checked_ads;
          // AA inventory is whitelisted under the default config.
          ad_misses += verdict.decision == adblock::Decision::kNoMatch;
          break;
        case Intent::kTracker:
          ++checked_trackers;
          // Most trackers are blocked by EasyPrivacy; a whitelisted
          // analytics provider's beacons are acceptable-ads matches.
          tracker_misses += verdict.decision == adblock::Decision::kNoMatch;
          break;
        case Intent::kContent:
          break;
      }
    }
  }
  ASSERT_GT(checked_ads, 200u);
  ASSERT_GT(checked_trackers, 200u);
  // The lists are generated from the same catalog: coverage must be
  // essentially total (a few first-party promos on whitelisted own-ad
  // platforms legitimately escape).
  EXPECT_LT(static_cast<double>(ad_misses) / static_cast<double>(checked_ads),
            0.02);
  EXPECT_LT(static_cast<double>(tracker_misses) /
                static_cast<double>(checked_trackers),
            0.02);
}

TEST_F(PageModelTest, ImperfectionsInjected) {
  util::Rng rng(13);
  std::size_t redirects = 0;
  std::size_t broken_referer = 0;
  std::size_t missing_mime = 0;
  std::size_t lying_scripts = 0;
  std::size_t https = 0;
  std::size_t total = 0;
  for (std::size_t site = 0; site < 200; ++site) {
    const auto page = model_.build(site % 200, rng);
    for (const auto& request : page.requests) {
      ++total;
      redirects += request.status == 302;
      broken_referer += request.parent >= 0 && request.referer.empty();
      missing_mime += request.reported_mime.empty() && request.status == 200;
      https += request.https;
      lying_scripts += request.true_type == http::RequestType::kScript &&
                       request.reported_mime == "text/html";
    }
  }
  EXPECT_GT(redirects, 0u);
  EXPECT_GT(broken_referer, 0u);
  EXPECT_GT(missing_mime, 0u);
  EXPECT_GT(lying_scripts, 0u);
  EXPECT_GT(https, 0u);
  // But they stay rare.
  EXPECT_LT(missing_mime, total / 5);
}

TEST_F(PageModelTest, RedirectChainsAreConsistent) {
  util::Rng rng(17);
  for (std::size_t site = 0; site < 120; ++site) {
    const auto page = model_.build(site % 200, rng);
    for (std::size_t i = 0; i < page.requests.size(); ++i) {
      const auto& request = page.requests[i];
      if (request.status != 302) continue;
      EXPECT_FALSE(request.location.empty());
      // The redirect target must appear later, refererless, as a child.
      bool found = false;
      for (std::size_t j = i + 1; j < page.requests.size(); ++j) {
        if (page.requests[j].url == request.location) {
          EXPECT_EQ(page.requests[j].parent, static_cast<int>(i));
          EXPECT_TRUE(page.requests[j].referer.empty());
          found = true;
          break;
        }
      }
      EXPECT_TRUE(found) << request.url;
    }
  }
}

TEST_F(PageModelTest, TrackingPixelsAre43Bytes) {
  util::Rng rng(19);
  std::size_t pixels = 0;
  for (std::size_t site = 0; site < 100; ++site) {
    const auto page = model_.build(site, rng);
    for (const auto& request : page.requests) {
      if (request.url.find("/pixel.gif?") != std::string::npos) {
        EXPECT_EQ(request.size, 43u);
        EXPECT_EQ(request.intent, Intent::kTracker);
        ++pixels;
      }
    }
  }
  EXPECT_GT(pixels, 20u);
}

TEST_F(PageModelTest, RtbOnlyOnExchangeBids) {
  util::Rng rng(23);
  std::size_t bids = 0;
  for (std::size_t site = 0; site < 100; ++site) {
    const auto page = model_.build(site, rng);
    for (const auto& request : page.requests) {
      if (request.rtb) {
        ++bids;
        EXPECT_NE(request.url.find("/rtb/bid"), std::string::npos);
        EXPECT_NE(request.intent, Intent::kContent);
      }
    }
  }
  EXPECT_GT(bids, 10u);
}

TEST_F(PageModelTest, VideoSitesEmitLargeMedia) {
  util::Rng rng(29);
  std::size_t video_sites_seen = 0;
  for (std::size_t site = 0; site < 200; ++site) {
    const auto& publisher = eco_.publishers()[site];
    if (publisher.category != SiteCategory::kVideo) continue;
    ++video_sites_seen;
    const auto page = model_.build(site, rng);
    std::uint64_t media_bytes = 0;
    for (const auto& request : page.requests) {
      if (request.true_type == http::RequestType::kMedia) {
        media_bytes += request.size;
      }
    }
    EXPECT_GT(media_bytes, 0u) << publisher.domain;
  }
  EXPECT_GT(video_sites_seen, 0u);
}

}  // namespace
}  // namespace adscope::sim
