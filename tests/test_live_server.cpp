// live: sockets end to end — TraceStreamServer, HttpEndpoint, replay.
//
// The acceptance-grade test here is EndToEnd.ReplayMatchesOfflineStudy:
// a trace replayed over TCP into the daemon stack must yield the same
// full report (and the same /study/summary JSON) as an offline serial
// study over the identical record order. Plus: graceful stop loses no
// accepted record, malformed streams are counted not fatal, and the
// HTTP routes answer correctly both in-process and over the wire.
#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <string>
#include <thread>

#include "core/report.h"
#include "core/study.h"
#include "live/http_endpoint.h"
#include "live/live_study.h"
#include "live/replay.h"
#include "live/stream_server.h"
#include "live/study_json.h"
#include "sim/ecosystem.h"
#include "sim/listgen.h"
#include "sim/rbn_sim.h"
#include "trace/writer.h"
#include "util/socket.h"

namespace adscope {
namespace {

/// Spin-waits (with sleeps) until `predicate` holds; fails the test on
/// timeout. Socket handoff is asynchronous, so every cross-thread
/// assertion goes through this.
template <typename Predicate>
::testing::AssertionResult eventually(Predicate predicate,
                                      int timeout_ms = 10000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (predicate()) return ::testing::AssertionSuccess();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return ::testing::AssertionFailure() << "condition not met within "
                                       << timeout_ms << " ms";
}

class LiveServerTest : public ::testing::Test {
 protected:
  static const sim::Ecosystem& eco() {
    static const sim::Ecosystem instance = [] {
      sim::EcosystemOptions options;
      options.publishers = 400;
      return sim::Ecosystem::generate(42, options);
    }();
    return instance;
  }
  static const sim::GeneratedLists& lists() {
    static const sim::GeneratedLists instance = sim::generate_lists(eco());
    return instance;
  }
  static const adblock::FilterEngine& engine() {
    static const adblock::FilterEngine instance = sim::make_engine(
        lists(), sim::ListSelection{.easylist = true,
                                    .derivative = true,
                                    .easyprivacy = true,
                                    .acceptable_ads = true});
    return instance;
  }
  static const trace::MemoryTrace& sample_trace() {
    static const trace::MemoryTrace instance = [] {
      trace::MemoryTrace memory;
      sim::RbnSimulator simulator(eco(), lists(), 42);
      auto options = sim::rbn2_options(40);
      options.duration_s = 2 * 3600;
      simulator.simulate(options, memory);
      return memory;
    }();
    return instance;
  }
  /// The sample trace on disk, for the replay client.
  static const std::string& trace_path() {
    static const std::string instance = [] {
      const auto path = testing::TempDir() + "live_server_sample.adst";
      trace::FileTraceWriter writer(path);
      sample_trace().replay(writer);
      writer.close();
      return path;
    }();
    return instance;
  }
  static core::StudyOptions study_options() {
    core::StudyOptions options;
    options.inference.min_requests = 300;
    return options;
  }
  static std::uint64_t sample_records() {
    return sample_trace().http().size() + sample_trace().tls().size();
  }
  static live::LiveStudyOptions live_options(std::size_t threads) {
    live::LiveStudyOptions options;
    options.study = study_options();
    options.threads = threads;
    // Whole trace in one bucket: the e2e comparison is byte-exact.
    options.bucket_seconds = sample_trace().meta().duration_s;
    return options;
  }
  static std::string report_of(const core::StudyView& view) {
    return core::render_full_report(view, &eco().asn_db());
  }

  /// One short-lived exchange against `port`; Connection: close keeps
  /// the read-until-EOF below from waiting out the keep-alive idle
  /// timeout (tests/test_query_api.cpp covers the keep-alive path).
  static std::string http_get(std::uint16_t port, const std::string& target) {
    auto fd = util::connect_tcp("127.0.0.1", port);
    const std::string request =
        "GET " + target + " HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n";
    EXPECT_TRUE(util::send_all(fd.get(), request));
    std::string response;
    char chunk[4096];
    while (true) {
      if (!util::wait_readable(fd.get(), 5000)) break;
      const auto n = util::recv_some(fd.get(), chunk, sizeof(chunk));
      if (n == 0) break;
      response.append(chunk, n);
    }
    return response;
  }

  static std::string body_of(const std::string& response) {
    const auto at = response.find("\r\n\r\n");
    return at == std::string::npos ? std::string() : response.substr(at + 4);
  }
};

// ---------------------------------------------------------------------------

TEST_F(LiveServerTest, EndToEndReplayMatchesOfflineStudy) {
  // Offline reference over the identical record order (time-sorted, as
  // the replay client sends it).
  trace::MemoryTrace sorted = sample_trace();
  live::sort_by_time(sorted);
  core::TraceStudy offline(engine(), eco().abp_registry(), study_options());
  live::replay_time_ordered(sorted, offline);
  offline.finish();
  const auto offline_report = report_of(offline.view());

  live::LiveStudy study(engine(), eco().abp_registry(), live_options(2));
  live::TraceStreamServer server(study, util::ListenSocket::tcp(0));
  live::HttpEndpoint endpoint(study, util::ListenSocket::tcp(0),
                              &eco().asn_db(), &server);
  server.start();
  endpoint.start();
  ASSERT_NE(server.port(), 0);
  ASSERT_NE(endpoint.port(), 0);

  live::ReplayOptions replay;
  replay.trace_path = trace_path();
  replay.port = server.port();
  const auto stats = live::replay_trace(replay);
  EXPECT_EQ(stats.records, 1 + sample_records());
  EXPECT_GT(stats.bytes, 0u);

  // The end-of-stream marker seals and flushes; wait for it to land.
  ASSERT_TRUE(eventually([&] { return server.streams_completed() == 1; }));
  EXPECT_EQ(server.decode_errors(), 0u);
  EXPECT_EQ(study.records_ingested(), sample_records());
  EXPECT_EQ(study.total_drops(), 0u);

  // Identity 1: the merged live view renders the offline report.
  EXPECT_EQ(report_of(study.snapshot().view()), offline_report);

  // Identity 2: /study/summary over the wire equals the in-process
  // rendering of the offline-equivalent snapshot.
  const auto wire = http_get(endpoint.port(), "/study/summary");
  EXPECT_NE(wire.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_EQ(body_of(wire), live::summary_json(study.snapshot()));

  const auto metrics =
      body_of(http_get(endpoint.port(), "/metrics"));
  EXPECT_NE(metrics.find("adscoped_records_ingested_total " +
                         std::to_string(sample_records())),
            std::string::npos);
  EXPECT_NE(metrics.find("adscoped_streams_completed_total 1"),
            std::string::npos);

  endpoint.stop();
  server.stop();
  study.close();
}

TEST_F(LiveServerTest, GracefulStopLosesNoAcceptedRecords) {
  live::LiveStudy study(engine(), eco().abp_registry(), live_options(2));
  live::TraceStreamServer server(study, util::ListenSocket::tcp(0));
  server.start();

  // Stream the bytes WITHOUT the end marker — the peer just goes away,
  // as a real vantage-point feed would on a crash.
  std::ostringstream encoded;
  trace::TraceEncoder encoder(encoded);
  sample_trace().replay(encoder);
  {
    auto fd = util::connect_tcp("127.0.0.1", server.port());
    ASSERT_TRUE(util::send_all(fd.get(), encoded.str()));
  }  // closes without finish()

  ASSERT_TRUE(
      eventually([&] { return study.records_ingested() == sample_records(); }));

  // The shutdown sequence the daemon runs on SIGTERM.
  server.stop();
  study.seal_all();
  study.flush();
  const auto snapshot = study.snapshot();
  study.close();

  EXPECT_EQ(snapshot.records_ingested, sample_records());
  EXPECT_EQ(snapshot.records_dropped, 0u);
  EXPECT_EQ(snapshot.view().traffic->requests(), sample_trace().http().size());
  EXPECT_EQ(snapshot.https_flows(), sample_trace().tls().size());
  EXPECT_EQ(server.streams_completed(), 0u);  // no end marker arrived
}

TEST_F(LiveServerTest, MalformedStreamIsCountedNotFatal) {
  live::LiveStudy study(engine(), eco().abp_registry(), live_options(1));
  live::TraceStreamServer server(study, util::ListenSocket::tcp(0));
  server.start();

  {
    auto fd = util::connect_tcp("127.0.0.1", server.port());
    ASSERT_TRUE(util::send_all(fd.get(), "this is not an adst stream"));
  }
  ASSERT_TRUE(eventually([&] { return server.decode_errors() == 1; }));

  // The server keeps serving: a good stream still lands afterwards.
  std::ostringstream encoded;
  trace::TraceEncoder encoder(encoded);
  sample_trace().replay(encoder);
  encoder.finish();
  {
    auto fd = util::connect_tcp("127.0.0.1", server.port());
    ASSERT_TRUE(util::send_all(fd.get(), encoded.str()));
  }
  ASSERT_TRUE(eventually([&] { return server.streams_completed() == 1; }));
  EXPECT_EQ(study.records_ingested(), sample_records());
  server.stop();
  study.close();
}

TEST_F(LiveServerTest, UnixSocketIngestWorks) {
  const auto socket_path = testing::TempDir() + "adscoped_test.sock";
  live::LiveStudy study(engine(), eco().abp_registry(), live_options(1));
  live::TraceStreamServer server(study,
                                 util::ListenSocket::unix_path(socket_path));
  server.start();

  live::ReplayOptions replay;
  replay.trace_path = trace_path();
  replay.unix_path = socket_path;
  const auto stats = live::replay_trace(replay);
  EXPECT_EQ(stats.records, 1 + sample_records());
  ASSERT_TRUE(eventually([&] { return server.streams_completed() == 1; }));
  EXPECT_EQ(study.records_ingested(), sample_records());
  server.stop();
  study.close();
}

TEST_F(LiveServerTest, PacedReplayStillDeliversEverything) {
  live::LiveStudy study(engine(), eco().abp_registry(), live_options(1));
  live::TraceStreamServer server(study, util::ListenSocket::tcp(0));
  server.start();

  live::ReplayOptions replay;
  replay.trace_path = trace_path();
  replay.port = server.port();
  // 2 h of trace squeezed into ~70 ms of wall time — enough to take the
  // pacing branch on nearly every record.
  replay.speedup = 100000.0;
  const auto stats = live::replay_trace(replay);
  EXPECT_EQ(stats.records, 1 + sample_records());
  EXPECT_GT(stats.wall_s, 0.0);
  ASSERT_TRUE(eventually([&] { return server.streams_completed() == 1; }));
  EXPECT_EQ(study.records_ingested(), sample_records());
  EXPECT_EQ(study.late_drops(), 0u);
  server.stop();
  study.close();
}

// ---------------------------------------------------------------------------
// HttpEndpoint routing (in-process) and transport behavior.

TEST_F(LiveServerTest, EndpointRoutes) {
  live::LiveStudy study(engine(), eco().abp_registry(), live_options(1));
  live::HttpEndpoint endpoint(study, util::ListenSocket::tcp(0));

  EXPECT_EQ(endpoint.handle("GET", "/healthz").status, 200);
  EXPECT_EQ(endpoint.handle("GET", "/healthz").body, "ok\n");
  EXPECT_EQ(endpoint.handle("GET", "/metrics").status, 200);
  EXPECT_EQ(endpoint.handle("GET", "/study/summary").status, 200);
  EXPECT_EQ(endpoint.handle("GET", "/study/traffic").status, 200);
  EXPECT_EQ(endpoint.handle("GET", "/study/users").status, 200);
  EXPECT_EQ(endpoint.handle("GET", "/study/infra").status, 200);
  EXPECT_EQ(endpoint.handle("GET", "/study/summary?window_s=60").status, 200);
  EXPECT_EQ(endpoint.handle("GET", "/study/summary?window_s=0").status, 400);
  EXPECT_EQ(endpoint.handle("GET", "/study/summary?window_s=x").status, 400);
  EXPECT_EQ(endpoint.handle("GET", "/study/nope").status, 404);
  EXPECT_EQ(endpoint.handle("GET", "/").status, 404);
  EXPECT_EQ(endpoint.handle("POST", "/healthz").status, 405);
  study.close();
}

TEST_F(LiveServerTest, EndpointOverTheWire) {
  live::LiveStudy study(engine(), eco().abp_registry(), live_options(1));
  live::HttpEndpoint endpoint(study, util::ListenSocket::tcp(0));
  endpoint.start();

  const auto health = http_get(endpoint.port(), "/healthz");
  EXPECT_NE(health.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(health.find("Connection: close"), std::string::npos);
  EXPECT_EQ(body_of(health), "ok\n");

  const auto missing = http_get(endpoint.port(), "/nope");
  EXPECT_NE(missing.find("HTTP/1.1 404"), std::string::npos);

  EXPECT_TRUE(eventually([&] { return endpoint.requests_served() == 2; }));
  endpoint.stop();
  study.close();
}

TEST_F(LiveServerTest, MetricsExposeDropAndQueueGauges) {
  live::LiveStudy study(engine(), eco().abp_registry(), live_options(1));
  live::HttpEndpoint endpoint(study, util::ListenSocket::tcp(0));
  const auto metrics = endpoint.render_metrics();
  for (const char* series : {
           "adscoped_records_ingested_total",
           "adscoped_records_dropped_total{reason=\"late\"}",
           "adscoped_records_dropped_total{reason=\"pre_meta\"}",
           "adscoped_records_dropped_total{reason=\"closed\"}",
           "adscoped_ingest_rate_records_per_second",
           "adscoped_queue_depth",
           "adscoped_buckets",
           "adscoped_watermark_ms",
           "adscoped_http_requests_total",
       }) {
    EXPECT_NE(metrics.find(series), std::string::npos) << series;
  }
  study.close();
}

}  // namespace
}  // namespace adscope
