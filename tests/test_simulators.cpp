// sim: crawl and RBN simulators — determinism, profile ordering, trace
// well-formedness, ABP update flows.
#include <gtest/gtest.h>

#include <unordered_set>

#include "sim/crawl_sim.h"
#include "sim/rbn_sim.h"
#include "ua/user_agent.h"

namespace adscope::sim {
namespace {

class SimulatorTest : public ::testing::Test {
 protected:
  static EcosystemOptions small() {
    EcosystemOptions options;
    options.publishers = 150;
    return options;
  }
  static RbnOptions tiny_rbn() {
    auto options = rbn2_options(40);
    options.duration_s = 3 * 3600;
    return options;
  }
  Ecosystem eco_ = Ecosystem::generate(42, small());
  GeneratedLists lists_ = generate_lists(eco_);
};

TEST_F(SimulatorTest, CrawlDeterministicPerMode) {
  CrawlSimulator crawler(eco_, lists_, 7);
  const auto a = crawler.crawl(BrowserMode::kVanilla, 50);
  const auto b = crawler.crawl(BrowserMode::kVanilla, 50);
  ASSERT_EQ(a.http_requests, b.http_requests);
  ASSERT_EQ(a.trace.http().size(), b.trace.http().size());
  for (std::size_t i = 0; i < a.trace.http().size(); ++i) {
    EXPECT_EQ(a.trace.http()[i].uri, b.trace.http()[i].uri);
  }
}

TEST_F(SimulatorTest, CrawlBlockerTracesAreSubsets) {
  CrawlSimulator crawler(eco_, lists_, 7);
  const auto vanilla = crawler.crawl(BrowserMode::kVanilla, 60);
  const auto paranoia = crawler.crawl(BrowserMode::kAbpParanoia, 60);
  EXPECT_LT(paranoia.http_requests, vanilla.http_requests);
  // Same sites => every paranoia URL also occurs in the vanilla trace.
  std::unordered_set<std::string> vanilla_urls;
  for (const auto& txn : vanilla.trace.http()) {
    vanilla_urls.insert(txn.host + txn.uri);
  }
  for (const auto& txn : paranoia.trace.http()) {
    EXPECT_TRUE(vanilla_urls.contains(txn.host + txn.uri))
        << txn.host << txn.uri;
  }
}

TEST_F(SimulatorTest, CrawlVisitRangesPartitionTrace) {
  CrawlSimulator crawler(eco_, lists_, 7);
  const auto result = crawler.crawl(BrowserMode::kVanilla, 40);
  EXPECT_EQ(result.visits.size(), 40u);
  std::size_t expected_start = 0;
  for (const auto& visit : result.visits) {
    EXPECT_EQ(visit.first_txn, expected_start);
    expected_start += visit.txn_count;
  }
  EXPECT_EQ(expected_start, result.trace.http().size());
}

TEST_F(SimulatorTest, RbnMetaAndVolume) {
  RbnSimulator simulator(eco_, lists_, 11);
  trace::MemoryTrace memory;
  const auto stats = simulator.simulate(tiny_rbn(), memory);
  EXPECT_EQ(memory.meta().name, "RBN-2");
  EXPECT_EQ(memory.meta().subscribers, 40u);
  EXPECT_EQ(memory.meta().duration_s, 3u * 3600u);
  EXPECT_GT(stats.http_requests, 1000u);
  EXPECT_EQ(stats.http_requests + stats.https_flows,
            memory.http().size() + memory.tls().size());
  EXPECT_GT(stats.browsers, 40u);
  EXPECT_GT(stats.abp_browsers, 0u);
  // Timestamps stay within the trace window.
  for (const auto& txn : memory.http()) {
    EXPECT_LT(txn.timestamp_ms, (tiny_rbn().duration_s + 1) * 1000);
  }
}

TEST_F(SimulatorTest, RbnDeterminism) {
  RbnSimulator simulator(eco_, lists_, 11);
  trace::MemoryTrace a;
  trace::MemoryTrace b;
  simulator.simulate(tiny_rbn(), a);
  simulator.simulate(tiny_rbn(), b);
  ASSERT_EQ(a.http().size(), b.http().size());
  for (std::size_t i = 0; i < a.http().size(); i += 97) {
    EXPECT_EQ(a.http()[i].uri, b.http()[i].uri);
    EXPECT_EQ(a.http()[i].timestamp_ms, b.http()[i].timestamp_ms);
  }
}

TEST_F(SimulatorTest, AbpHouseholdsEmitUpdateFlows) {
  RbnSimulator simulator(eco_, lists_, 11);
  trace::MemoryTrace memory;
  const auto stats = simulator.simulate(tiny_rbn(), memory);
  ASSERT_GT(stats.abp_households, 0u);
  // Find TLS flows to ABP servers; their client IPs must be a subset of
  // the ABP households.
  std::unordered_set<netdb::IpV4> abp_clients;
  for (const auto& flow : memory.tls()) {
    if (eco_.abp_registry().is_abp_server(flow.server_ip)) {
      abp_clients.insert(flow.client_ip);
    }
  }
  EXPECT_GT(abp_clients.size(), 0u);
  EXPECT_LE(abp_clients.size(), stats.abp_households);
}

TEST_F(SimulatorTest, GroundTruthMatchesPopulation) {
  RbnSimulator simulator(eco_, lists_, 11);
  trace::MemoryTrace memory;
  const auto stats = simulator.simulate(tiny_rbn(), memory);
  EXPECT_EQ(stats.truth.size(), stats.browsers);
  std::size_t abp = 0;
  for (const auto& browser : stats.truth) {
    abp += browser.blocker == BlockerKind::kAdblockPlus;
    EXPECT_FALSE(browser.user_agent.empty());
    // Family annotation consistent with the UA string.
    const auto parsed = ua::parse_user_agent(browser.user_agent);
    EXPECT_TRUE(parsed.is_browser()) << browser.user_agent;
  }
  EXPECT_EQ(abp, stats.abp_browsers);
}

TEST_F(SimulatorTest, NonBrowserNoisePresent) {
  RbnSimulator simulator(eco_, lists_, 11);
  trace::MemoryTrace memory;
  const auto stats = simulator.simulate(tiny_rbn(), memory);
  EXPECT_GT(stats.devices, stats.browsers);
  bool saw_non_browser_ua = false;
  for (const auto& txn : memory.http()) {
    if (!ua::parse_user_agent(txn.user_agent).is_browser()) {
      saw_non_browser_ua = true;
      break;
    }
  }
  EXPECT_TRUE(saw_non_browser_ua);
}

TEST_F(SimulatorTest, Rbn1PresetDiffers) {
  const auto rbn1 = rbn1_options(30);
  EXPECT_EQ(rbn1.name, "RBN-1");
  EXPECT_EQ(rbn1.duration_s, 4u * 24 * 3600);
  EXPECT_EQ(rbn1.start_hour, 0u);
  EXPECT_EQ(rbn1.start_weekday, 5u);  // Saturday
  EXPECT_LT(rbn1.activity_scale, 1.0);
}

TEST_F(SimulatorTest, DynamicIpReassignmentOnMultiDayTraces) {
  // §5: households keep an address only for ~a day. A 3-day trace must
  // show each browser under several client IPs; a 15.5 h trace must not.
  RbnSimulator simulator(eco_, lists_, 11);
  auto long_options = rbn1_options(20);
  long_options.duration_s = 3 * 24 * 3600;
  trace::MemoryTrace long_trace;
  simulator.simulate(long_options, long_trace);
  std::unordered_map<std::string, std::unordered_set<netdb::IpV4>> ips_by_ua;
  for (const auto& txn : long_trace.http()) {
    ips_by_ua[txn.user_agent].insert(txn.client_ip);
  }
  std::size_t multi_ip_agents = 0;
  for (const auto& [ua, ips] : ips_by_ua) {
    multi_ip_agents += ips.size() > 1;
  }
  EXPECT_GT(multi_ip_agents, ips_by_ua.size() / 2);

  // Within one lease period (3 h trace) no re-addressing happens: the
  // set of client IPs is exactly the household allocation.
  trace::MemoryTrace short_trace;
  simulator.simulate(tiny_rbn(), short_trace);
  std::unordered_set<netdb::IpV4> short_ips;
  for (const auto& txn : short_trace.http()) {
    short_ips.insert(txn.client_ip);
  }
  EXPECT_LE(short_ips.size(), 40u);

  // The long trace, by contrast, shows many more addresses than
  // households — the §5 reason per-user analysis needs short traces.
  std::unordered_set<netdb::IpV4> long_ips;
  for (const auto& txn : long_trace.http()) long_ips.insert(txn.client_ip);
  EXPECT_GT(long_ips.size(), 20u);
}

TEST_F(SimulatorTest, StaticAddressingWhenDisabled) {
  RbnSimulator simulator(eco_, lists_, 11);
  auto options = rbn1_options(10);
  options.duration_s = 2 * 24 * 3600;
  options.ip_reassignment_hours = 0;
  trace::MemoryTrace memory;
  simulator.simulate(options, memory);
  std::unordered_set<netdb::IpV4> ips;
  for (const auto& txn : memory.http()) ips.insert(txn.client_ip);
  EXPECT_LE(ips.size(), 10u);
}

TEST_F(SimulatorTest, DiurnalPatternVisible) {
  RbnSimulator simulator(eco_, lists_, 11);
  trace::MemoryTrace memory;
  auto options = rbn2_options(60);
  options.duration_s = 24 * 3600;
  options.start_hour = 0;
  simulator.simulate(options, memory);
  std::uint64_t night = 0;  // 02:00-05:00
  std::uint64_t evening = 0;  // 19:00-22:00
  for (const auto& txn : memory.http()) {
    const auto hour = txn.timestamp_ms / 1000 / 3600;
    if (hour >= 2 && hour < 5) ++night;
    if (hour >= 19 && hour < 22) ++evening;
  }
  EXPECT_GT(evening, night * 2);
}

}  // namespace
}  // namespace adscope::sim
