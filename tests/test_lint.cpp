// Tests for the filter-list static analyzer (DESIGN.md §8): golden
// diagnostics per analysis, subsumption/disjointness unit laws, JSON
// emission, and the prune-safety property — a pruned list set must
// classify a generated URL corpus and an example trace byte-identically
// to the original, at 1, 2 and 7 threads.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <map>
#include <string>
#include <variant>
#include <vector>

#include "adblock/engine.h"
#include "adblock/filter.h"
#include "adblock/filter_list.h"
#include "core/parallel_study.h"
#include "core/report.h"
#include "core/study.h"
#include "lint/linter.h"
#include "lint/regex_risk.h"
#include "lint/render.h"
#include "lint/subsumption.h"
#include "sim/ecosystem.h"
#include "sim/listgen.h"
#include "sim/rbn_sim.h"
#include "trace/record.h"
#include "util/rng.h"
#include "util/strings.h"

namespace adscope::lint {
namespace {

using adblock::Filter;

Filter parse_ok(std::string_view line) {
  auto filter = Filter::parse(line);
  EXPECT_TRUE(filter.has_value()) << "rule failed to parse: " << line;
  return *filter;
}

LintResult lint_one(std::string text,
                    adblock::ListKind kind = adblock::ListKind::kCustom) {
  return run_lint({{"list.txt", std::move(text), kind}});
}

/// Diagnostics of one check, in report order.
std::vector<const Diagnostic*> of_check(const LintResult& result,
                                        Check check) {
  std::vector<const Diagnostic*> out;
  for (const auto& d : result.diagnostics) {
    if (d.check == check) out.push_back(&d);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Golden diagnostics, one analysis at a time.

TEST(LintParse, BadRegexIsAnError) {
  const auto result = lint_one("/ads([0-9]+/\n");
  const auto parse = of_check(result, Check::kParse);
  ASSERT_EQ(parse.size(), 1u);
  EXPECT_EQ(parse[0]->severity, Severity::kError);
  EXPECT_EQ(parse[0]->line, 1u);
  EXPECT_EQ(parse[0]->rule, "/ads([0-9]+/");
  EXPECT_NE(parse[0]->message.find("bad-regex"), std::string::npos);
  EXPECT_TRUE(result.has_errors());
}

TEST(LintParse, UnknownAndMalformedOptionsAreWarnings) {
  const auto result = lint_one(
      "||cdn.example/ads^$webbug\n"
      "||cdn.example/track^$~match-case\n");
  const auto parse = of_check(result, Check::kParse);
  ASSERT_EQ(parse.size(), 2u);
  EXPECT_EQ(parse[0]->severity, Severity::kWarning);
  EXPECT_NE(parse[0]->message.find("webbug"), std::string::npos);
  EXPECT_NE(parse[1]->message.find("match-case"), std::string::npos);
  EXPECT_EQ(result.stats.discarded_lines, 2u);
  EXPECT_FALSE(result.has_errors());
}

TEST(LintParse, CommentsAndElementHidingAreNotFindings) {
  const auto result = lint_one(
      "! a comment\n"
      "example.com##.ad-box\n"
      "/banner/\n");
  EXPECT_TRUE(result.diagnostics.empty());
  EXPECT_EQ(result.stats.rules, 1u);
  EXPECT_EQ(result.stats.elemhide_rules, 1u);
  EXPECT_EQ(result.stats.discarded_lines, 0u);
}

TEST(LintDuplicate, ExactAndSemanticDuplicatesArePrunable) {
  const auto result = lint_one(
      "&ad_box_\n"
      "&ad_box_\n"
      "/adframe/*$script,third-party\n"
      "/adframe/*$third-party,script\n");
  const auto dups = of_check(result, Check::kDuplicate);
  ASSERT_EQ(dups.size(), 2u);
  EXPECT_EQ(dups[0]->line, 2u);
  EXPECT_EQ(dups[0]->other_line, 1u);
  EXPECT_TRUE(dups[0]->prunable);
  EXPECT_EQ(dups[1]->line, 4u);  // option order does not matter
  EXPECT_EQ(dups[1]->other_line, 3u);
  EXPECT_EQ(result.stats.prunable, 2u);
}

TEST(LintDuplicate, CrossListDuplicatePointsAtTheEarlierList) {
  const auto result = run_lint({
      {"a.txt", "ads.js\n", adblock::ListKind::kEasyList},
      {"b.txt", "ads.js\n", adblock::ListKind::kEasyPrivacy},
  });
  const auto dups = of_check(result, Check::kDuplicate);
  ASSERT_EQ(dups.size(), 1u);
  EXPECT_EQ(dups[0]->list, "b.txt");
  EXPECT_EQ(dups[0]->other_list, "a.txt");
}

TEST(LintShadowed, NarrowRuleBehindBroadPrefixIsPrunable) {
  const auto result = lint_one(
      "-adbanner.\n"
      "-adbanner.gif\n"
      "||adserver.example^\n"
      "||adserver.example^/creative*.png\n");
  const auto shadowed = of_check(result, Check::kShadowed);
  ASSERT_EQ(shadowed.size(), 2u);
  EXPECT_EQ(shadowed[0]->line, 2u);
  EXPECT_NE(shadowed[0]->message.find("-adbanner."), std::string::npos);
  EXPECT_EQ(shadowed[1]->line, 4u);
  EXPECT_EQ(shadowed[1]->other_line, 3u);
  EXPECT_TRUE(shadowed[1]->prunable);
}

TEST(LintShadowed, BroaderRuleAfterTheNarrowOneIsNotFlagged) {
  // The narrow rule fires first in engine order; the broad one is not a
  // same-or-earlier subsumer, so neither rule may be pruned (removing
  // the narrow one would change *attribution*, which the report shows).
  const auto result = lint_one(
      "-adbanner.gif\n"
      "-adbanner.\n");
  EXPECT_TRUE(of_check(result, Check::kShadowed).empty());
}

TEST(LintShadowed, OptionsMustSubsumeNotJustOverlap) {
  // $script narrows the type mask: the broad pattern no longer covers
  // everything the narrow rule matches.
  const auto result = lint_one(
      "-adbanner.$script\n"
      "-adbanner.gif\n");
  EXPECT_TRUE(of_check(result, Check::kShadowed).empty());
}

TEST(LintDeadException, TypeDisjointExceptionIsFlaggedButNotPruned) {
  const auto result = lint_one(
      "||ads.partner.example^$script\n"
      "@@||ads.partner.example^$image\n");
  const auto dead = of_check(result, Check::kDeadException);
  ASSERT_EQ(dead.size(), 1u);
  EXPECT_EQ(dead[0]->line, 2u);
  EXPECT_FALSE(dead[0]->prunable);
  EXPECT_EQ(result.stats.prunable, 0u);
}

TEST(LintDeadException, OverlappingAndDocumentExceptionsStayQuiet) {
  const auto result = lint_one(
      "||ads.partner.example^$script\n"
      "@@||ads.partner.example^$script\n"
      "@@||news.example^$document\n");
  // Line 2 overlaps; line 3 whitelists pages through a separate engine
  // path, so "overlaps no blocking rule" is not evidence of deadness.
  EXPECT_TRUE(of_check(result, Check::kDeadException).empty());
}

TEST(LintEmptyMatchSet, UnsatisfiableOptionsAreErrorsAndPrunable) {
  const auto result = lint_one(
      "example.net/pixel$image,~image\n"
      "example.net/window$popup\n"
      "example.net/banner$domain=shop.example|~shop.example\n");
  const auto empty = of_check(result, Check::kEmptyMatchSet);
  ASSERT_EQ(empty.size(), 3u);
  for (const auto* d : empty) {
    EXPECT_EQ(d->severity, Severity::kError);
    EXPECT_TRUE(d->prunable);
  }
  EXPECT_EQ(result.stats.prunable, 3u);
}

TEST(LintSlowPath, UntokenizableRuleIsAnInfo) {
  const auto result = lint_one("*a*\n");
  const auto slow = of_check(result, Check::kSlowPath);
  ASSERT_EQ(slow.size(), 1u);
  EXPECT_EQ(slow[0]->severity, Severity::kInfo);
  EXPECT_FALSE(slow[0]->prunable);
}

TEST(LintRegexRisk, NestedQuantifierIsFlagged) {
  const auto result = lint_one("/(banner[0-9]+)+\\.gif/\n");
  const auto risk = of_check(result, Check::kRegexRisk);
  ASSERT_EQ(risk.size(), 1u);
  EXPECT_EQ(risk[0]->severity, Severity::kWarning);
}

TEST(LintPrune, EqualsCouplingRescueKeepsQueryNormalizerProbes) {
  // "/adframe/?id=" is shadowed by "/adframe/", but its body feeds
  // pattern_contains_literal ("id=" probes); no identical pattern
  // survives, so the rule must be kept.
  const auto result = lint_one(
      "/adframe/\n"
      "/adframe/?id=\n");
  const auto shadowed = of_check(result, Check::kShadowed);
  ASSERT_EQ(shadowed.size(), 1u);
  EXPECT_FALSE(shadowed[0]->prunable);
  EXPECT_NE(shadowed[0]->message.find("kept anyway"), std::string::npos);
  EXPECT_EQ(result.stats.prunable, 0u);
  EXPECT_TRUE(result.prunable_lines[0].empty());
}

TEST(LintPrune, EqualsRescueNotNeededWhenIdenticalPatternSurvives) {
  const auto result = lint_one(
      "/adframe/?id=\n"
      "/adframe/?id=\n");
  const auto dups = of_check(result, Check::kDuplicate);
  ASSERT_EQ(dups.size(), 1u);
  EXPECT_TRUE(dups[0]->prunable);  // the surviving copy keeps the probe
}

TEST(LintStatsTest, RollupCountsMatchDiagnostics) {
  const auto result = lint_one(
      "/ads([0-9]+/\n"
      "ads.js\n"
      "ads.js\n"
      "*a*\n");
  std::size_t errors = 0, warnings = 0, infos = 0;
  for (const auto& d : result.diagnostics) {
    errors += d.severity == Severity::kError;
    warnings += d.severity == Severity::kWarning;
    infos += d.severity == Severity::kInfo;
  }
  EXPECT_EQ(result.stats.errors, errors);
  EXPECT_EQ(result.stats.warnings, warnings);
  EXPECT_EQ(result.stats.infos, infos);
  EXPECT_EQ(result.stats.by_check[static_cast<std::size_t>(Check::kParse)],
            1u);
  EXPECT_EQ(
      result.stats.by_check[static_cast<std::size_t>(Check::kDuplicate)], 1u);
  // Most severe first: the bad-regex error leads the report.
  ASSERT_FALSE(result.diagnostics.empty());
  EXPECT_EQ(result.diagnostics.front().severity, Severity::kError);
}

TEST(LintShadowCap, OverBudgetRunSkipsQuadraticAnalyses) {
  LintOptions options;
  options.shadow_cap = 1;
  const auto result = run_lint(
      {{"list.txt",
        "-adbanner.\n"
        "-adbanner.gif\n",
        adblock::ListKind::kCustom}},
      options);
  EXPECT_TRUE(result.stats.shadowing_degraded);
  EXPECT_TRUE(of_check(result, Check::kShadowed).empty());
  EXPECT_NE(render_text(result).find("shadowing budget"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Subsumption and disjointness laws.

TEST(Subsumption, PrefixLemmaCases) {
  // Unanchored prefix.
  EXPECT_TRUE(subsumes(parse_ok("-adbanner."), parse_ok("-adbanner.gif")));
  // Unanchored literal inside a literal run of a general pattern.
  EXPECT_TRUE(subsumes(parse_ok("banner"), parse_ok("/ad*mybanner^x")));
  // Domain anchor, broad prefix with trailing '^' and wildcard tail.
  EXPECT_TRUE(subsumes(parse_ok("||adserver.example^"),
                       parse_ok("||adserver.example^/creative*.png")));
  // Start anchor.
  EXPECT_TRUE(subsumes(parse_ok("|https://cdn.example/"),
                       parse_ok("|https://cdn.example/promos/")));
  // End anchor (suffix dual).
  EXPECT_TRUE(subsumes(parse_ok(".swf|"), parse_ok("player.swf|")));
  // Reflexive.
  EXPECT_TRUE(subsumes(parse_ok("ads.js"), parse_ok("ads.js")));
}

TEST(Subsumption, RejectsNonCoveringPairs) {
  // Prefix the wrong way around.
  EXPECT_FALSE(subsumes(parse_ok("-adbanner.gif"), parse_ok("-adbanner.")));
  // Broad is start-anchored but narrow is not: match positions differ.
  EXPECT_FALSE(subsumes(parse_ok("|ads"), parse_ok("ads.js")));
  // Narrow type mask on the broad side.
  EXPECT_FALSE(subsumes(parse_ok("ads$script"), parse_ok("ads.js")));
  // Third-party constraint on the broad side only.
  EXPECT_FALSE(subsumes(parse_ok("ads$third-party"), parse_ok("ads.js")));
  // Include-domain confinement on the broad side only.
  EXPECT_FALSE(
      subsumes(parse_ok("ads$domain=shop.example"), parse_ok("ads.js")));
  // Exception vs blocking never subsume each other.
  EXPECT_FALSE(subsumes(parse_ok("@@ads"), parse_ok("ads.js")));
  // Regexes are opaque.
  EXPECT_FALSE(subsumes(parse_ok("/ads/"), parse_ok("adsx")));
  // Case-sensitive broad rule cannot cover a case-insensitive narrow one.
  EXPECT_FALSE(subsumes(parse_ok("ads$match-case"), parse_ok("adsx")));
}

TEST(Subsumption, OptionAwareCoverage) {
  // Broad covers a narrower type mask and matching party constraint.
  EXPECT_TRUE(subsumes(parse_ok("ads"), parse_ok("ads.js$script")));
  EXPECT_TRUE(
      subsumes(parse_ok("ads$third-party"), parse_ok("ads.js$third-party")));
  // Broad include set covers the narrow one.
  EXPECT_TRUE(subsumes(parse_ok("ads$domain=shop.example"),
                       parse_ok("ads.js$domain=m.shop.example")));
  // Broad excludes must be re-excluded by the narrow rule.
  EXPECT_FALSE(subsumes(parse_ok("ads$domain=~shop.example"),
                        parse_ok("ads.js")));
  EXPECT_TRUE(subsumes(parse_ok("ads$domain=~shop.example"),
                       parse_ok("ads.js$domain=~shop.example")));
  // Case-sensitive pair compares original case.
  EXPECT_TRUE(
      subsumes(parse_ok("/PROMO/$match-case"), parse_ok("/PROMO/x$match-case")));
  EXPECT_FALSE(
      subsumes(parse_ok("/PROMO/$match-case"), parse_ok("/promo/x$match-case")));
}

TEST(Disjointness, ProvableCases) {
  EXPECT_TRUE(provably_disjoint(parse_ok("ads$script"), parse_ok("ads$image")));
  EXPECT_TRUE(provably_disjoint(parse_ok("ads$third-party"),
                                parse_ok("ads$~third-party")));
  EXPECT_TRUE(provably_disjoint(parse_ok("ads$domain=a.example"),
                                parse_ok("ads$domain=b.example")));
  EXPECT_TRUE(provably_disjoint(parse_ok("|http://a.example/x"),
                                parse_ok("|http://b.example/y")));
  EXPECT_TRUE(provably_disjoint(parse_ok(".gif|"), parse_ok(".png|")));
  EXPECT_TRUE(provably_disjoint(parse_ok("||a.example^"),
                                parse_ok("||b.example^")));
}

TEST(Disjointness, StaysConservativeWhenOverlapIsPossible) {
  EXPECT_FALSE(provably_disjoint(parse_ok("ads"), parse_ok("banner")));
  EXPECT_FALSE(provably_disjoint(parse_ok("||a.example^"),
                                 parse_ok("||sub.a.example^")));
  EXPECT_FALSE(provably_disjoint(parse_ok("ads$domain=a.example"),
                                 parse_ok("ads$domain=sub.a.example")));
  EXPECT_FALSE(provably_disjoint(parse_ok("|http://a.example/x"),
                                 parse_ok("|http://a.example/xy")));
}

TEST(Signature, CanonicalizesOptionOrderAndCase) {
  EXPECT_EQ(semantic_signature(parse_ok("/adframe/*$script,third-party")),
            semantic_signature(parse_ok("/adframe/*$third-party,script")));
  EXPECT_EQ(semantic_signature(parse_ok("ADS.js")),
            semantic_signature(parse_ok("ads.js")));
  EXPECT_NE(semantic_signature(parse_ok("ADS.js$match-case")),
            semantic_signature(parse_ok("ads.js$match-case")));
  EXPECT_NE(semantic_signature(parse_ok("ads.js")),
            semantic_signature(parse_ok("@@ads.js")));
  EXPECT_NE(semantic_signature(parse_ok("ads$domain=a.example")),
            semantic_signature(parse_ok("ads$domain=~a.example")));
}

TEST(LiteralRuns, SplitsOnWildcardsAndSeparators) {
  const auto runs = literal_runs("/ad*mybanner^x");
  ASSERT_EQ(runs.size(), 3u);
  EXPECT_EQ(runs[0], "/ad");
  EXPECT_EQ(runs[1], "mybanner");
  EXPECT_EQ(runs[2], "x");
  EXPECT_TRUE(literal_runs("*^*").empty());
}

TEST(RegexRiskTest, FlagsNestedQuantifiersAndLargeRepeats) {
  EXPECT_TRUE(assess_regex("(a+)+").has_value());
  EXPECT_TRUE(assess_regex("(x|y*)*z").has_value());
  EXPECT_TRUE(assess_regex("(ab{2,}c)+").has_value());
  EXPECT_TRUE(assess_regex("a{5000}").has_value());
  EXPECT_FALSE(assess_regex("ads[0-9]+\\.gif").has_value());
  EXPECT_FALSE(assess_regex("(https?)://").has_value());  // '?' is benign
  EXPECT_FALSE(assess_regex("(abc)+def").has_value());
  EXPECT_FALSE(assess_regex("a{2,10}").has_value());
}

// ---------------------------------------------------------------------------
// Pruned-text emission.

TEST(EmitPruned, DropsExactlyTheNamedLines) {
  const std::string text = "one\ntwo\nthree\nfour";  // no trailing newline
  EXPECT_EQ(emit_pruned(text, {2, 4}), "one\nthree\n");
  EXPECT_EQ(emit_pruned(text, {}), "one\ntwo\nthree\nfour");
  EXPECT_EQ(emit_pruned("a\nb\n", {1, 2}), "");
}

TEST(EmitPruned, PrunedFixtureRelints_Clean) {
  const std::string text =
      "&ad_box_\n"
      "&ad_box_\n"
      "-adbanner.\n"
      "-adbanner.gif\n"
      "example.net/window$popup\n";
  auto result = lint_one(text);
  EXPECT_EQ(result.stats.prunable, 3u);
  const auto pruned = emit_pruned(text, result.prunable_lines[0]);
  const auto relint = lint_one(pruned);
  EXPECT_EQ(relint.stats.prunable, 0u);
  EXPECT_EQ(relint.stats.rules, result.stats.rules - 3u);
}

TEST(InferKind, MapsWellKnownFilenames) {
  EXPECT_EQ(infer_kind("easylist.txt"), adblock::ListKind::kEasyList);
  EXPECT_EQ(infer_kind("EasyPrivacy.txt"), adblock::ListKind::kEasyPrivacy);
  EXPECT_EQ(infer_kind("exceptionrules.txt"),
            adblock::ListKind::kAcceptableAds);
  EXPECT_EQ(infer_kind("lists/acceptable_ads.txt"),
            adblock::ListKind::kAcceptableAds);
  EXPECT_EQ(infer_kind("mine.txt"), adblock::ListKind::kCustom);
}

// ---------------------------------------------------------------------------
// JSON round-trip: render_json output parses back into the same stats
// and diagnostics with a minimal in-test JSON reader.

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string,
               std::vector<JsonValue>, std::map<std::string, JsonValue>>
      value;
  const JsonValue& at(const std::string& key) const {
    return std::get<std::map<std::string, JsonValue>>(value).at(key);
  }
  const std::vector<JsonValue>& array() const {
    return std::get<std::vector<JsonValue>>(value);
  }
  const std::string& str() const { return std::get<std::string>(value); }
  double num() const { return std::get<double>(value); }
  bool boolean() const { return std::get<bool>(value); }
};

class JsonReader {
 public:
  explicit JsonReader(std::string_view text) : text_(text) {}
  JsonValue parse() {
    auto value = parse_value();
    skip_ws();
    EXPECT_EQ(pos_, text_.size()) << "trailing bytes after JSON document";
    return value;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  char peek() {
    skip_ws();
    EXPECT_LT(pos_, text_.size()) << "unexpected end of JSON";
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }
  void expect(char c) {
    EXPECT_EQ(peek(), c);
    ++pos_;
  }
  JsonValue parse_value() {
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return {parse_string()};
      case 't': pos_ += 4; return {true};
      case 'f': pos_ += 5; return {false};
      case 'n': pos_ += 4; return {nullptr};
      default: return parse_number();
    }
  }
  JsonValue parse_object() {
    expect('{');
    std::map<std::string, JsonValue> out;
    if (peek() != '}') {
      while (true) {
        auto key = parse_string();
        expect(':');
        out.emplace(std::move(key), parse_value());
        if (peek() != ',') break;
        ++pos_;
      }
    }
    expect('}');
    return {std::move(out)};
  }
  JsonValue parse_array() {
    expect('[');
    std::vector<JsonValue> out;
    if (peek() != ']') {
      while (true) {
        out.push_back(parse_value());
        if (peek() != ',') break;
        ++pos_;
      }
    }
    expect(']');
    return {std::move(out)};
  }
  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'r': out.push_back('\r'); break;
          case 'u': {
            // Only \u00XX is emitted by JsonWriter (control characters).
            const auto hex = text_.substr(pos_, 4);
            out.push_back(
                static_cast<char>(std::stoi(std::string(hex), nullptr, 16)));
            pos_ += 4;
            break;
          }
          default: out.push_back(esc); break;
        }
      } else {
        out.push_back(c);
      }
    }
    expect('"');
    return out;
  }
  JsonValue parse_number() {
    std::size_t end = pos_;
    while (end < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[end])) ||
            text_[end] == '-' || text_[end] == '+' || text_[end] == '.' ||
            text_[end] == 'e' || text_[end] == 'E')) {
      ++end;
    }
    const double value = std::stod(std::string(text_.substr(pos_, end - pos_)));
    pos_ = end;
    return {value};
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

TEST(LintJson, RoundTripsThroughJsonWriter) {
  // Rule text exercises escaping: quotes and backslashes survive.
  const auto result = lint_one(
      "/ads\\d\"([0-9]+/\n"
      "ads.js\n"
      "ads.js\n"
      "*a*\n"
      "example.net/window$popup\n");
  const auto json = render_json(result);
  const auto doc = JsonReader(json).parse();

  EXPECT_EQ(doc.at("schema").str(), "adscope-lint-1");
  const auto& stats = doc.at("stats");
  EXPECT_EQ(stats.at("lists").num(), static_cast<double>(result.stats.lists));
  EXPECT_EQ(stats.at("rules").num(), static_cast<double>(result.stats.rules));
  EXPECT_EQ(stats.at("errors").num(),
            static_cast<double>(result.stats.errors));
  EXPECT_EQ(stats.at("warnings").num(),
            static_cast<double>(result.stats.warnings));
  EXPECT_EQ(stats.at("infos").num(), static_cast<double>(result.stats.infos));
  EXPECT_EQ(stats.at("prunable").num(),
            static_cast<double>(result.stats.prunable));
  EXPECT_EQ(stats.at("shadowing_degraded").boolean(), false);
  for (std::size_t c = 0; c < kCheckCount; ++c) {
    EXPECT_EQ(stats.at("by_check")
                  .at(std::string(to_string(static_cast<Check>(c))))
                  .num(),
              static_cast<double>(result.stats.by_check[c]));
  }

  const auto& diagnostics = doc.at("diagnostics").array();
  ASSERT_EQ(diagnostics.size(), result.diagnostics.size());
  for (std::size_t i = 0; i < diagnostics.size(); ++i) {
    const auto& d = result.diagnostics[i];
    EXPECT_EQ(diagnostics[i].at("severity").str(), to_string(d.severity));
    EXPECT_EQ(diagnostics[i].at("check").str(), to_string(d.check));
    EXPECT_EQ(diagnostics[i].at("list").str(), d.list);
    EXPECT_EQ(diagnostics[i].at("line").num(), static_cast<double>(d.line));
    EXPECT_EQ(diagnostics[i].at("rule").str(), d.rule);
    EXPECT_EQ(diagnostics[i].at("message").str(), d.message);
    EXPECT_EQ(diagnostics[i].at("prunable").boolean(), d.prunable);
  }
}

// ---------------------------------------------------------------------------
// Prune safety, end to end: generated lists seeded with inert defects
// must classify identically before and after pruning — per request over
// a URL corpus, and byte-for-byte through the full study report at 1, 2
// and 7 threads.

class PruneDifferentialTest : public ::testing::Test {
 protected:
  static const sim::Ecosystem& eco() {
    static const sim::Ecosystem instance = [] {
      sim::EcosystemOptions options;
      options.publishers = 400;
      return sim::Ecosystem::generate(42, options);
    }();
    return instance;
  }

  /// Generated lists with an appended block of inert defects the linter
  /// must prove removable: exact/semantic duplicates, shadowed rules,
  /// and unsatisfiable option sets.
  static const std::vector<LintSource>& sources() {
    static const std::vector<LintSource> instance = [] {
      auto lists = sim::generate_lists(eco());
      lists.easylist +=
          "! --- seeded inert defects (lint must prune all of these) ---\n"
          "&seed_ad_box_\n"
          "&seed_ad_box_\n"
          "/seedframe/*$script,third-party\n"
          "/seedframe/*$third-party,script\n"
          "||seedads.example^\n"
          "||seedads.example^/creative*.png\n"
          "seedpixel.example/p$image,~image\n"
          "seedpopup.example/w$popup\n";
      return std::vector<LintSource>{
          {"easylist", std::move(lists.easylist),
           adblock::ListKind::kEasyList},
          {"easyprivacy", std::move(lists.easyprivacy),
           adblock::ListKind::kEasyPrivacy},
          {"exceptionrules", std::move(lists.acceptable_ads),
           adblock::ListKind::kAcceptableAds},
      };
    }();
    return instance;
  }

  static const LintResult& lint() {
    static const LintResult instance = run_lint(sources());
    return instance;
  }

  static adblock::FilterEngine build_engine(bool pruned) {
    adblock::FilterEngine engine;
    for (std::size_t s = 0; s < sources().size(); ++s) {
      const auto& source = sources()[s];
      const std::string text =
          pruned ? emit_pruned(source.text, lint().prunable_lines[s])
                 : source.text;
      engine.add_list(
          adblock::FilterList::parse(text, source.kind, source.name));
    }
    return engine;
  }

  static const adblock::FilterEngine& original() {
    static const adblock::FilterEngine instance = build_engine(false);
    return instance;
  }
  static const adblock::FilterEngine& pruned() {
    static const adblock::FilterEngine instance = build_engine(true);
    return instance;
  }
};

TEST_F(PruneDifferentialTest, FindsSeededDefects) {
  EXPECT_GE(lint().stats.prunable, 4u);  // at least the seeded block
  ASSERT_EQ(lint().prunable_lines.size(), 3u);
  EXPECT_GE(lint().prunable_lines[0].size(), 4u);
  EXPECT_LT(pruned().active_filter_count(), original().active_filter_count());
}

TEST_F(PruneDifferentialTest, CorpusClassifiesIdentically) {
  // URLs from the simulated ecosystem's own traffic plus synthetic ones
  // aimed at the seeded rules' match space.
  util::Rng rng(20260807);
  const auto& companies = eco().companies();
  std::vector<adblock::Request> corpus;
  corpus.reserve(6000);
  const auto types = {http::RequestType::kScript, http::RequestType::kImage,
                      http::RequestType::kXhr, http::RequestType::kDocument,
                      http::RequestType::kSubdocument};
  auto pick_type = [&] {
    auto it = types.begin();
    std::advance(it, static_cast<long>(rng.below(types.size())));
    return *it;
  };
  for (int i = 0; i < 6000; ++i) {
    std::string url = "http://";
    switch (rng.below(4)) {
      case 0: {  // real ad-ecosystem server
        const auto& domains = companies[rng.below(companies.size())].domains;
        url += domains.empty() ? "empty.example" : domains[0];
        url += "/serve/ad" + std::to_string(rng.below(100)) + ".js";
        break;
      }
      case 1:  // seeded-rule match space
        url += rng.chance(0.5) ? "seedads.example" : "cdn.seedads.example";
        url += rng.chance(0.5) ? "/creative" + std::to_string(rng.below(9)) +
                                     ".png"
                               : "/other/seed_ad_box_1";
        break;
      case 2:  // shadow/duplicate fragments in the path
        url += "pub" + std::to_string(rng.below(50)) + ".example/";
        url += rng.chance(0.5) ? "seedframe/inner" : "seedpixel.example/p";
        break;
      default:  // plain content
        url += "pub" + std::to_string(rng.below(50)) + ".example/page" +
               std::to_string(rng.below(30)) + ".html";
        break;
    }
    const std::string page =
        "http://pub" + std::to_string(rng.below(50)) + ".example/";
    corpus.push_back(adblock::make_request(url, page, pick_type()));
  }
  std::size_t decided = 0;
  for (const auto& request : corpus) {
    const auto a = original().classify(request);
    const auto b = pruned().classify(request);
    ASSERT_EQ(a.decision, b.decision);
    EXPECT_EQ(a.list_kind, b.list_kind);
    EXPECT_EQ(a.is_ad(), b.is_ad());
    EXPECT_EQ(a.whitelist_saved_it(), b.whitelist_saved_it());
    decided += a.decision != adblock::Decision::kNoMatch;
  }
  EXPECT_GT(decided, 0u) << "corpus never hit a rule; test is vacuous";
}

TEST_F(PruneDifferentialTest, StudyReportsIdenticalAtOneTwoAndSevenThreads) {
  trace::MemoryTrace memory;
  const auto lists = sim::generate_lists(eco());
  sim::RbnSimulator simulator(eco(), lists, 42);
  auto rbn = sim::rbn2_options(60);
  rbn.duration_s = 2 * 3600;
  simulator.simulate(rbn, memory);

  core::StudyOptions study_options;
  study_options.inference.min_requests = 300;

  core::TraceStudy serial(original(), eco().abp_registry(), study_options);
  memory.replay(serial);
  serial.finish();
  const auto serial_report =
      core::render_full_report(serial.view(), &eco().asn_db());

  for (const std::size_t threads : {1u, 2u, 7u}) {
    core::ParallelStudyOptions options;
    options.study = study_options;
    options.threads = threads;
    core::ParallelTraceStudy study(pruned(), eco().abp_registry(), options);
    memory.replay(study);
    study.finish();
    EXPECT_EQ(core::render_full_report(study.view(), &eco().asn_db()),
              serial_report)
        << "pruned-engine report diverged at " << threads << " threads";
  }
}

}  // namespace
}  // namespace adscope::lint
