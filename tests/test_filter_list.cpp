// adblock: FilterList parsing — metadata, element hiding, discards.
#include <gtest/gtest.h>

#include "adblock/filter_list.h"

namespace adscope::adblock {
namespace {

constexpr const char* kListText = R"([Adblock Plus 2.0]
! Title: Test List
! Version: 201504110815
! Expires: 4 days (update frequency)
! Homepage: https://example.test
/banners/*
||ads.example.com^$third-party
@@||ads.example.com/ok$script

! a comment between rules
##.ad-class
example.com##.sponsored
example.com,~shop.example.com###ad-box
news.test#@#.whitelisted-ad
bogus-option-rule$nonsense
$$$
)";

TEST(FilterListParse, Metadata) {
  const auto list = FilterList::parse(kListText, ListKind::kEasyList, "test");
  EXPECT_EQ(list.name(), "test");
  EXPECT_EQ(list.kind(), ListKind::kEasyList);
  EXPECT_EQ(list.title(), "Test List");
  EXPECT_EQ(list.version(), "201504110815");
  EXPECT_EQ(list.expires_hours(), 96u);
}

TEST(FilterListParse, ExpiresHours) {
  const auto list = FilterList::parse("! Expires: 12 hours\n/x/",
                                      ListKind::kEasyPrivacy, "ep");
  EXPECT_EQ(list.expires_hours(), 12u);
  const auto fallback =
      FilterList::parse("/x/", ListKind::kCustom, "c");
  EXPECT_EQ(fallback.expires_hours(), 120u);  // ABP default
}

TEST(FilterListParse, RuleCounts) {
  const auto list = FilterList::parse(kListText, ListKind::kEasyList, "test");
  EXPECT_EQ(list.filters().size(), 3u);
  EXPECT_EQ(list.exception_count(), 1u);
  EXPECT_EQ(list.element_hiding_rules().size(), 4u);
  // "bogus-option-rule$nonsense" and "$$$" are discarded.
  EXPECT_EQ(list.discarded_rules(), 2u);
}

TEST(FilterListParse, ElementHidingDomains) {
  const auto list = FilterList::parse(kListText, ListKind::kEasyList, "test");
  const auto& rules = list.element_hiding_rules();
  // "##.ad-class": generic.
  EXPECT_TRUE(rules[0].include_domains.empty());
  EXPECT_EQ(rules[0].selector, ".ad-class");
  EXPECT_FALSE(rules[0].exception);
  // "example.com##.sponsored".
  ASSERT_EQ(rules[1].include_domains.size(), 1u);
  EXPECT_EQ(rules[1].include_domains[0], "example.com");
  // "example.com,~shop.example.com###ad-box".
  ASSERT_EQ(rules[2].exclude_domains.size(), 1u);
  EXPECT_EQ(rules[2].exclude_domains[0], "shop.example.com");
  EXPECT_EQ(rules[2].selector, "#ad-box");
  // "news.test#@#.whitelisted-ad" is an exception.
  EXPECT_TRUE(rules[3].exception);
}

TEST(FilterListParse, EmptyAndCommentOnly) {
  const auto empty = FilterList::parse("", ListKind::kCustom, "e");
  EXPECT_TRUE(empty.filters().empty());
  const auto comments =
      FilterList::parse("! one\n! two\n", ListKind::kCustom, "c");
  EXPECT_TRUE(comments.filters().empty());
  EXPECT_EQ(comments.discarded_rules(), 0u);
}

TEST(FilterListParse, CrLfLineEndings) {
  const auto list = FilterList::parse("/a/\r\n/b/\r\n", ListKind::kCustom,
                                      "crlf");
  ASSERT_EQ(list.filters().size(), 2u);
  EXPECT_EQ(list.filters()[0].pattern(), "/a/");
}

TEST(FilterListParse, KindNames) {
  EXPECT_EQ(to_string(ListKind::kEasyList), "EasyList");
  EXPECT_EQ(to_string(ListKind::kEasyPrivacy), "EasyPrivacy");
  EXPECT_EQ(to_string(ListKind::kAcceptableAds), "non-intrusive-ads");
  EXPECT_EQ(to_string(ListKind::kEasyListDerivative), "EasyList-derivative");
}

}  // namespace
}  // namespace adscope::adblock
