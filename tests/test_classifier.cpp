// core: the TraceClassifier pipeline — page attribution, content-type
// inference with redirect patching, emission semantics.
#include <gtest/gtest.h>

#include <vector>

#include "core/classifier.h"

namespace adscope::core {
namespace {

adblock::FilterEngine make_engine() {
  adblock::FilterEngine engine;
  engine.add_list(adblock::FilterList::parse(
      "||adnet.test^$third-party\n"
      "/banners/\n"
      "@@||adnet.test/quality$script\n",
      adblock::ListKind::kEasyList, "el"));
  return engine;
}

class ClassifierTest : public ::testing::Test {
 protected:
  void SetUp() override { reset({}); }

  void reset(ClassifierOptions options) {
    classifier_ = std::make_unique<TraceClassifier>(engine_, options);
    output_.clear();
    classifier_->set_callback(
        [this](const ClassifiedObject& object) { output_.push_back(object); });
  }

  analyzer::WebObject object(const std::string& url,
                             const std::string& referer,
                             const std::string& mime,
                             std::uint16_t status = 200,
                             const std::string& location = "") {
    analyzer::WebObject web;
    web.url = *http::Url::parse(url);
    web.referer = referer;
    web.content_type = mime;
    web.status_code = status;
    if (!location.empty()) web.location = *http::Url::parse(location);
    web.client_ip = 1;
    web.user_agent = "test-ua";
    web.content_length = 100;
    return web;
  }

  const ClassifiedObject& find(const std::string& url_spec) {
    for (const auto& out : output_) {
      if (out.object.url.spec() == url_spec) return out;
    }
    ADD_FAILURE() << "not emitted: " << url_spec;
    static ClassifiedObject dummy;
    return dummy;
  }

  adblock::FilterEngine engine_ = make_engine();
  std::unique_ptr<TraceClassifier> classifier_;
  std::vector<ClassifiedObject> output_;
};

TEST_F(ClassifierTest, DocumentStartsPage) {
  classifier_->process(object("http://site.test/index.html", "", "text/html"));
  ASSERT_EQ(output_.size(), 1u);
  EXPECT_EQ(output_[0].type, http::RequestType::kDocument);
  EXPECT_EQ(output_[0].page_url, "http://site.test/index.html");
  EXPECT_EQ(output_[0].page_host, "site.test");
}

TEST_F(ClassifierTest, RefererAssignsPage) {
  classifier_->process(object("http://site.test/index.html", "", "text/html"));
  classifier_->process(object("http://adnet.test/b.gif",
                              "http://site.test/index.html", "image/gif"));
  ASSERT_EQ(output_.size(), 2u);
  EXPECT_EQ(output_[1].page_url, "http://site.test/index.html");
  // Third-party rule fires because page context is known.
  EXPECT_EQ(output_[1].verdict.decision, adblock::Decision::kBlocked);
}

TEST_F(ClassifierTest, RefererChainThroughSubresources) {
  classifier_->process(object("http://site.test/index.html", "", "text/html"));
  classifier_->process(object("http://site.test/frame.html",
                              "http://site.test/index.html", "text/html"));
  classifier_->process(object("http://adnet.test/inner.gif",
                              "http://site.test/frame.html", "image/gif"));
  // The iframe is a subdocument, and its child maps to the ROOT page.
  EXPECT_EQ(find("http://site.test/frame.html").type,
            http::RequestType::kSubdocument);
  EXPECT_EQ(find("http://adnet.test/inner.gif").page_url,
            "http://site.test/index.html");
}

TEST_F(ClassifierTest, ExtensionBeatsContentType) {
  classifier_->process(
      object("http://site.test/app.js", "", "text/html"));  // lying header
  EXPECT_EQ(output_[0].type, http::RequestType::kScript);
  EXPECT_TRUE(output_[0].type_from_extension);
}

TEST_F(ClassifierTest, MimeFallbackWhenNoExtension) {
  classifier_->process(object("http://site.test/api", "", "text/css"));
  EXPECT_EQ(output_[0].type, http::RequestType::kStylesheet);
  EXPECT_FALSE(output_[0].type_from_extension);
}

TEST_F(ClassifierTest, RedirectHeldAndPatchedByTarget) {
  classifier_->process(object("http://site.test/index.html", "", "text/html"));
  // Redirect source: no extension, misleading CT; target is an image.
  classifier_->process(object("http://adnet.test/adclick?d=1",
                              "http://site.test/index.html", "text/html", 302,
                              "http://adnet.test/banners/b.gif"));
  EXPECT_EQ(output_.size(), 1u);  // held
  classifier_->process(
      object("http://adnet.test/banners/b.gif", "", "image/gif"));
  ASSERT_EQ(output_.size(), 3u);
  const auto& source = find("http://adnet.test/adclick?d=1");
  EXPECT_EQ(source.type, http::RequestType::kImage);  // typed by target
  // Target got its page via Location patching despite the empty Referer.
  const auto& target = find("http://adnet.test/banners/b.gif");
  EXPECT_EQ(target.page_url, "http://site.test/index.html");
  EXPECT_EQ(classifier_->redirects_patched(), 1u);
}

TEST_F(ClassifierTest, HeldRedirectExpiresAfterWindow) {
  ClassifierOptions options;
  options.redirect_window = 3;
  reset(options);
  classifier_->process(object("http://site.test/index.html", "", "text/html"));
  classifier_->process(object("http://adnet.test/adclick?d=1",
                              "http://site.test/index.html", "text/html", 302,
                              "http://never.test/x"));
  for (int i = 0; i < 5; ++i) {
    classifier_->process(object("http://site.test/img" + std::to_string(i) +
                                    ".gif",
                                "http://site.test/index.html", "image/gif"));
  }
  EXPECT_EQ(classifier_->redirects_expired(), 1u);
  // The expired redirect was still emitted (with its own inferred type).
  find("http://adnet.test/adclick?d=1");
}

TEST_F(ClassifierTest, FlushEmitsHeldRedirects) {
  classifier_->process(object("http://site.test/index.html", "", "text/html"));
  classifier_->process(object("http://adnet.test/adclick?d=1",
                              "http://site.test/index.html", "text/html", 302,
                              "http://never.test/x"));
  EXPECT_EQ(output_.size(), 1u);
  classifier_->flush();
  EXPECT_EQ(output_.size(), 2u);
}

TEST_F(ClassifierTest, RedirectPatchingDisabled) {
  ClassifierOptions options;
  options.redirect_patching = false;
  reset(options);
  classifier_->process(object("http://adnet.test/adclick?d=1",
                              "http://site.test/index.html", "text/html", 302,
                              "http://adnet.test/banners/b.gif"));
  EXPECT_EQ(output_.size(), 1u);  // emitted immediately
}

TEST_F(ClassifierTest, EmbeddedUrlAttributesPage) {
  classifier_->process(object("http://site.test/index.html", "", "text/html"));
  classifier_->process(object(
      "http://adnet.test/render.js?img=http%3A%2F%2Fadnet.test%2Fdelivery"
      "%2Fb.gif",
      "http://site.test/index.html", "application/javascript"));
  classifier_->process(
      object("http://adnet.test/delivery/b.gif", "", "image/gif"));
  const auto& creative = find("http://adnet.test/delivery/b.gif");
  EXPECT_EQ(creative.page_url, "http://site.test/index.html");
  EXPECT_EQ(creative.verdict.decision, adblock::Decision::kBlocked);
}

TEST_F(ClassifierTest, UsersAreIsolated) {
  classifier_->process(object("http://site.test/index.html", "", "text/html"));
  auto other_user = object("http://adnet.test/b.gif",
                           "http://site.test/index.html", "image/gif");
  other_user.client_ip = 99;  // different household, same referer string
  classifier_->process(other_user);
  // Page attribution still works (referer is self-contained)...
  EXPECT_EQ(output_[1].page_url, "http://site.test/index.html");
  // ...but per-user maps are separate: the other user's refmap never saw
  // the document, so page came from the raw referer, not a stored page.
}

TEST_F(ClassifierTest, UserEvictionFlushesPending) {
  ClassifierOptions options;
  options.max_users = 2;
  reset(options);
  auto redirect = object("http://adnet.test/adclick?d=1", "", "text/html",
                         302, "http://x.test/y");
  redirect.client_ip = 1;
  classifier_->process(redirect);
  for (netdb::IpV4 ip = 2; ip <= 4; ++ip) {
    auto obj = object("http://site.test/a.gif", "", "image/gif");
    obj.client_ip = ip;
    classifier_->process(obj);
  }
  // User 1 was evicted; its held redirect must have been emitted.
  find("http://adnet.test/adclick?d=1");
}

TEST_F(ClassifierTest, ProcessedCounter) {
  classifier_->process(object("http://a.test/", "", "text/html"));
  classifier_->process(object("http://b.test/", "", "text/html"));
  EXPECT_EQ(classifier_->processed(), 2u);
}

}  // namespace
}  // namespace adscope::core
