// sim: traffic emitter timing model and diurnal activity curve.
#include <gtest/gtest.h>

#include "sim/diurnal.h"
#include "sim/emitter.h"
#include "sim/listgen.h"

namespace adscope::sim {
namespace {

class EmitterTest : public ::testing::Test {
 protected:
  static EcosystemOptions small() {
    EcosystemOptions options;
    options.publishers = 100;
    return options;
  }
  Ecosystem eco_ = Ecosystem::generate(42, small());
  PageModel model_{eco_};
  TrafficEmitter emitter_{eco_};
  NoBlocker no_blocker_;

  trace::MemoryTrace emit_pages(int pages, util::Rng& rng) {
    trace::MemoryTrace memory;
    memory.on_meta(trace::TraceMeta{});
    for (int p = 0; p < pages; ++p) {
      const auto page =
          model_.build(static_cast<std::size_t>(p) % 100, rng);
      const auto emitted = apply_blocking(page, no_blocker_);
      emitter_.emit_page(page, emitted,
                         static_cast<std::uint64_t>(p) * 10'000,
                         eco_.client_ip(0), "UA", memory, rng);
    }
    return memory;
  }
};

TEST_F(EmitterTest, HttpHandshakeAlwaysAfterTcp) {
  util::Rng rng(1);
  const auto memory = emit_pages(30, rng);
  ASSERT_GT(memory.http().size(), 500u);
  for (const auto& txn : memory.http()) {
    EXPECT_GE(txn.http_handshake_us, txn.tcp_handshake_us);
    EXPECT_GT(txn.tcp_handshake_us, 0u);
  }
}

TEST_F(EmitterTest, RttTracksServerAs) {
  util::Rng rng(2);
  const auto memory = emit_pages(60, rng);
  // Partition hand-shakes by AS distance: EU hosting vs US clouds.
  std::vector<double> eu;
  std::vector<double> us;
  for (const auto& txn : memory.http()) {
    const auto as_name =
        eco_.asn_db().as_name(eco_.asn_db().lookup(txn.server_ip));
    if (as_name == "EU-Host-1" || as_name == "Hetzner") {
      eu.push_back(txn.tcp_handshake_us);
    } else if (as_name == "Am.-EC2" || as_name == "US-Host-1") {
      us.push_back(txn.tcp_handshake_us);
    }
  }
  ASSERT_GT(eu.size(), 20u);
  ASSERT_GT(us.size(), 20u);
  double eu_mean = 0;
  for (const auto v : eu) eu_mean += v;
  eu_mean /= static_cast<double>(eu.size());
  double us_mean = 0;
  for (const auto v : us) us_mean += v;
  us_mean /= static_cast<double>(us.size());
  EXPECT_GT(us_mean, 3 * eu_mean);  // ~100 ms vs ~15 ms
}

TEST_F(EmitterTest, RtbRequestsCarryAuctionDelay) {
  util::Rng rng(3);
  trace::MemoryTrace memory;
  memory.on_meta(trace::TraceMeta{});
  std::vector<std::string> rtb_uris;
  for (int p = 0; p < 200; ++p) {
    const auto page = model_.build(static_cast<std::size_t>(p) % 100, rng);
    const auto emitted = apply_blocking(page, no_blocker_);
    emitter_.emit_page(page, emitted, 0, eco_.client_ip(0), "UA", memory,
                       rng);
  }
  std::size_t rtb_seen = 0;
  for (const auto& txn : memory.http()) {
    if (txn.uri.find("/rtb/bid") == std::string::npos) continue;
    ++rtb_seen;
    const auto delta = txn.http_handshake_us - txn.tcp_handshake_us;
    EXPECT_GT(delta, 60'000u) << "auction must take >= 60 ms";
    EXPECT_LT(delta, 250'000u);
  }
  EXPECT_GT(rtb_seen, 30u);
}

TEST_F(EmitterTest, HttpsBecomesTlsFlow) {
  util::Rng rng(4);
  const auto memory = emit_pages(60, rng);
  EXPECT_GT(memory.tls().size(), 0u);
  for (const auto& flow : memory.tls()) {
    EXPECT_EQ(flow.server_port, 443);
    EXPECT_GT(flow.bytes, 0u);
  }
}

TEST_F(EmitterTest, HttpsRefererNotLeakedToHttp) {
  // A page served over HTTPS must not contribute Referer headers to its
  // HTTP subresources.
  util::Rng rng(5);
  trace::MemoryTrace memory;
  memory.on_meta(trace::TraceMeta{});
  for (int p = 0; p < 400; ++p) {
    const auto page = model_.build(static_cast<std::size_t>(p) % 100, rng);
    if (!page.requests[0].https) continue;
    const auto emitted = apply_blocking(page, no_blocker_);
    emitter_.emit_page(page, emitted, 0, eco_.client_ip(0), "UA", memory,
                       rng);
  }
  for (const auto& txn : memory.http()) {
    EXPECT_EQ(txn.referer.rfind("https://", 0), std::string::npos)
        << txn.referer;
  }
}

TEST(Diurnal, EveningPeaksOverNight) {
  const DiurnalClock clock{0, 0};  // Monday 00:00
  const double night = diurnal_weight(clock, 3 * 3600);
  const double evening = diurnal_weight(clock, 20 * 3600);
  EXPECT_GT(evening, 3 * night);
}

TEST(Diurnal, LunchDipVisible) {
  const DiurnalClock clock{0, 0};
  EXPECT_LT(diurnal_weight(clock, 12 * 3600),
            diurnal_weight(clock, 11 * 3600));
}

TEST(Diurnal, SaturdayQuieter) {
  const DiurnalClock weekday{0, 1};   // Tuesday
  const DiurnalClock saturday{0, 5};  // Saturday
  EXPECT_LT(diurnal_weight(saturday, 20 * 3600),
            diurnal_weight(weekday, 20 * 3600));
}

TEST(Diurnal, ClockWrapsAcrossDays) {
  const DiurnalClock clock{15, 1};  // Tuesday 15:00
  EXPECT_EQ(clock.hour_at(0), 15u);
  EXPECT_EQ(clock.hour_at(9 * 3600), 0u);   // midnight -> Wednesday
  EXPECT_EQ(clock.weekday_at(9 * 3600), 2u);
  EXPECT_EQ(clock.weekday_at((9 + 24 * 6) * 3600), 1u);  // wraps the week
}

TEST(Diurnal, NightOwlFlattensCurve) {
  const DiurnalClock clock{0, 0};
  const double regular_ratio = diurnal_weight(clock, 20 * 3600) /
                               diurnal_weight(clock, 3 * 3600);
  const double owl_ratio = diurnal_weight(clock, 20 * 3600, true) /
                           diurnal_weight(clock, 3 * 3600, true);
  EXPECT_LT(owl_ratio, regular_ratio);
}

}  // namespace
}  // namespace adscope::sim
