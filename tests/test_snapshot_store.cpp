// store: the queryable snapshot subsystem in isolation — query grammar
// (valid, invalid, and fuzz-shaped inputs), UTC calendar helpers, the
// field-selective JSON filter, the sharded LRU response cache, and the
// SnapshotTree itself: merges over tree leaves must render byte-
// identically to LiveStudy::snapshot() over the same sealed buckets
// (the merge laws in action), materialized rollups must equal on-demand
// merges, and retention must bound memory during a long replay.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/study.h"
#include "live/live_study.h"
#include "sim/ecosystem.h"
#include "sim/listgen.h"
#include "sim/rbn_sim.h"
#include "stats/json_filter.h"
#include "trace/record.h"
#include "store/query.h"
#include "store/response_cache.h"
#include "store/snapshot_tree.h"
#include "store/store_service.h"
#include "store/study_json.h"

namespace adscope {
namespace {

// ---------------------------------------------------------------------------
// Query grammar

store::QuerySpec parse_ok(const std::string& target,
                          std::uint64_t bucket_seconds = 300) {
  store::QuerySpec spec;
  store::QueryError error;
  EXPECT_TRUE(store::parse_query(target, bucket_seconds, spec, error))
      << target << ": " << error.message;
  return spec;
}

store::QueryError parse_err(const std::string& target,
                            std::uint64_t bucket_seconds = 300) {
  store::QuerySpec spec;
  store::QueryError error;
  EXPECT_FALSE(store::parse_query(target, bucket_seconds, spec, error))
      << target << " unexpectedly parsed";
  return error;
}

TEST(QueryParser, AcceptsAggregatesAndTimeSelectors) {
  auto spec = parse_ok("/query/summary/*");
  EXPECT_EQ(spec.aggregate, store::QuerySpec::Aggregate::kSummary);
  EXPECT_EQ(spec.min_bucket, 0u);
  EXPECT_EQ(spec.max_bucket, UINT64_MAX);
  EXPECT_FALSE(spec.shard.has_value());

  // Bare aggregate defaults to '*'.
  spec = parse_ok("/query/traffic");
  EXPECT_EQ(spec.aggregate, store::QuerySpec::Aggregate::kTraffic);
  EXPECT_EQ(spec.max_bucket, UINT64_MAX);

  spec = parse_ok("/query/users/latest");
  EXPECT_TRUE(spec.latest_only);

  spec = parse_ok("/query/infra/@7");
  EXPECT_EQ(spec.min_bucket, 7u);
  EXPECT_EQ(spec.max_bucket, 7u);

  spec = parse_ok("/query/summary/@2..@9");
  EXPECT_EQ(spec.min_bucket, 2u);
  EXPECT_EQ(spec.max_bucket, 9u);
}

TEST(QueryParser, MapsUtcInstantsToBuckets) {
  // 2015-08-11T15:00:00Z = 1439305200 s; bucket width 300 s.
  auto spec = parse_ok("/query/summary/2015-08-11T15:00");
  EXPECT_EQ(spec.min_bucket, 1439305200u / 300);
  EXPECT_EQ(spec.max_bucket, spec.min_bucket);

  spec = parse_ok("/query/summary/2015-08-11T15:00:00..2015-08-11T16:00:00");
  EXPECT_EQ(spec.min_bucket, 1439305200u / 300);
  EXPECT_EQ(spec.max_bucket, (1439305200u + 3600) / 300);

  // A bare date names the bucket containing midnight.
  spec = parse_ok("/query/summary/2015-08-11");
  EXPECT_EQ(spec.min_bucket, 1439251200u / 300);
}

TEST(QueryParser, AcceptsShardSelector) {
  auto spec = parse_ok("/query/users/*/3");
  EXPECT_TRUE(spec.shard.has_value());
  EXPECT_EQ(*spec.shard, 3u);
  spec = parse_ok("/query/users/*/*");
  EXPECT_FALSE(spec.shard.has_value());
}

TEST(QueryParser, AcceptsRollupsAndBuckets) {
  EXPECT_EQ(parse_ok("/query/buckets").aggregate,
            store::QuerySpec::Aggregate::kBuckets);
  EXPECT_EQ(parse_ok("/query/rollup/infra-cumulative").aggregate,
            store::QuerySpec::Aggregate::kRollupInfraCumulative);
  auto spec = parse_ok("/query/rollup/users-daily/2015-08-11");
  EXPECT_EQ(spec.aggregate, store::QuerySpec::Aggregate::kRollupUsersDaily);
  ASSERT_TRUE(spec.day.has_value());
  EXPECT_EQ(*spec.day, 1439251200u / 86400);
  EXPECT_FALSE(parse_ok("/query/rollup/users-daily/*").day.has_value());
  EXPECT_FALSE(parse_ok("/query/rollup/users-daily").day.has_value());
}

TEST(QueryParser, ParsesRenderingParams) {
  auto spec = parse_ok("/query/infra/*?top=25&fields=trace,servers");
  EXPECT_TRUE(spec.params.has_top());
  EXPECT_EQ(spec.params.top, 25u);
  ASSERT_EQ(spec.params.fields.size(), 2u);
  EXPECT_EQ(spec.params.fields[0], "trace");
  EXPECT_EQ(spec.params.fields[1], "servers");

  spec = parse_ok("/query/summary/*?window_s=900");
  EXPECT_EQ(spec.params.window_s, 900u);

  // Unknown keys are ignored.
  spec = parse_ok("/query/summary/*?foo=bar&top=1");
  EXPECT_EQ(spec.params.top, 1u);
}

TEST(QueryParser, UnknownPathsAre404) {
  EXPECT_EQ(parse_err("/nope").status, 404);
  EXPECT_EQ(parse_err("/query/nope/*").status, 404);
  EXPECT_EQ(parse_err("/query/rollup/nope").status, 404);
  EXPECT_EQ(parse_err("/query/buckets/extra").status, 404);
  EXPECT_EQ(parse_err("/query/summary/*/1/extra").status, 404);
  EXPECT_EQ(parse_err("/query/rollup/users-daily/2015-08-11/x").status, 404);
}

TEST(QueryParser, MalformedSelectorsAre400) {
  for (const char* target : {
           "/query/summary/@",             // bare bucket marker
           "/query/summary/@x",            // non-numeric bucket
           "/query/summary/@9..@2",        // reversed range
           "/query/summary/2015-13-01",    // impossible month
           "/query/summary/2015-02-29",    // not a leap year
           "/query/summary/2015-08-11T25:00",  // impossible hour
           "/query/summary/yesterday",     // free-text time
           "/query/summary/*/x",           // non-numeric shard
           "/query/summary/*/-1",          // signed shard
           "/query/users/latest?window_s=60",   // window_s needs '*'
           "/query/users/@1..@2?window_s=60",
       }) {
    EXPECT_EQ(parse_err(target).status, 400) << target;
  }
}

TEST(QueryParser, HardenedParamParsing) {
  for (const char* target : {
           "/query/summary/*?window_s=",      // empty
           "/query/summary/*?window_s=0",     // zero window
           "/query/summary/*?window_s=abc",   // non-numeric
           "/query/summary/*?window_s=-5",    // signed
           "/query/summary/*?window_s=1e3",   // exponent
           "/query/summary/*?window_s=60x",   // trailing junk
           "/query/summary/*?window_s=99999999999999999999999",  // overflow
           "/query/summary/*?top=",
           "/query/summary/*?top=ten",
           "/query/summary/*?fields=",
           "/query/summary/*?fields=a,,b",
           "/query/summary/*?fields=tr%61ce",  // no percent-decoding
       }) {
    const auto error = parse_err(target);
    EXPECT_EQ(error.status, 400) << target;
    EXPECT_FALSE(error.param.empty()) << target;
  }
}

TEST(QueryParser, FuzzShapedInputsNeverCrash) {
  // Every answer must be a clean accept or a structured error — no
  // throw, no crash. Deterministic pseudo-random target soup.
  const std::string alphabet = "/*@.?&=-0123456789abcTZ:_,";
  std::uint64_t state = 0x9E3779B97F4A7C15ull;
  for (int round = 0; round < 2000; ++round) {
    std::string target = "/query/";
    const auto length = (state >> 16) % 40;
    for (std::uint64_t i = 0; i < length; ++i) {
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      target.push_back(alphabet[(state >> 33) % alphabet.size()]);
    }
    store::QuerySpec spec;
    store::QueryError error;
    const bool accepted = store::parse_query(target, 300, spec, error);
    if (!accepted) {
      EXPECT_TRUE(error.status == 400 || error.status == 404) << target;
      EXPECT_FALSE(error.message.empty()) << target;
    }
  }
}

// ---------------------------------------------------------------------------
// Calendar helpers

TEST(Calendar, CivilDateRoundTrips) {
  EXPECT_EQ(store::days_from_civil(1970, 1, 1), 0);
  EXPECT_EQ(store::days_from_civil(1970, 1, 2), 1);
  EXPECT_EQ(store::days_from_civil(2015, 8, 11), 1439251200 / 86400);
  EXPECT_EQ(store::format_civil_date(0), "1970-01-01");
  EXPECT_EQ(store::format_civil_date(1439251200 / 86400), "2015-08-11");
  for (const std::uint64_t day : {0u, 59u, 365u, 16659u, 20000u}) {
    const auto text = store::format_civil_date(day);
    const auto parsed = store::parse_civil_date(text);
    ASSERT_TRUE(parsed.has_value()) << text;
    EXPECT_EQ(static_cast<std::uint64_t>(*parsed), day);
  }
}

TEST(Calendar, LeapYearsAndInvalidDates) {
  EXPECT_TRUE(store::parse_civil_date("2016-02-29").has_value());
  EXPECT_TRUE(store::parse_civil_date("2000-02-29").has_value());
  EXPECT_FALSE(store::parse_civil_date("1900-02-29").has_value());
  EXPECT_FALSE(store::parse_civil_date("2015-02-29").has_value());
  EXPECT_FALSE(store::parse_civil_date("2015-00-10").has_value());
  EXPECT_FALSE(store::parse_civil_date("2015-04-31").has_value());
  EXPECT_FALSE(store::parse_civil_date("2015-4-31").has_value());
  EXPECT_FALSE(store::parse_civil_date("20150431").has_value());
}

TEST(Calendar, UtcInstants) {
  EXPECT_EQ(store::parse_utc_instant("1970-01-01T00:00").value_or(1), 0u);
  EXPECT_EQ(store::parse_utc_instant("2015-08-11T15:00:00").value_or(0),
            1439305200u);
  EXPECT_EQ(store::parse_utc_instant("2015-08-11T15:00").value_or(0),
            1439305200u);
  EXPECT_FALSE(store::parse_utc_instant("2015-08-11T15").has_value());
  EXPECT_FALSE(store::parse_utc_instant("2015-08-11 15:00").has_value());
  EXPECT_EQ(store::format_utc(1439305200u), "2015-08-11T15:00:00");
}

// ---------------------------------------------------------------------------
// JSON field filter

TEST(JsonFilter, KeepsRequestedTopLevelMembers) {
  const std::string doc =
      R"({"a":1,"b":{"x":[1,2,{"y":"},{"}]},"c":"quote \" brace }","d":null})";
  std::string out;
  std::vector<std::string> missing;
  ASSERT_TRUE(stats::filter_top_level_fields(doc, {"b", "d"}, out, missing));
  EXPECT_EQ(out, R"({"b":{"x":[1,2,{"y":"},{"}]},"d":null})");
  EXPECT_TRUE(missing.empty());

  // Document order wins, not request order.
  ASSERT_TRUE(stats::filter_top_level_fields(doc, {"c", "a"}, out, missing));
  EXPECT_EQ(out, R"({"a":1,"c":"quote \" brace }"})");
}

TEST(JsonFilter, ReportsMissingFields) {
  std::string out;
  std::vector<std::string> missing;
  ASSERT_TRUE(stats::filter_top_level_fields(R"({"a":1})", {"a", "nope"},
                                             out, missing));
  ASSERT_EQ(missing.size(), 1u);
  EXPECT_EQ(missing[0], "nope");
}

TEST(JsonFilter, RejectsNonObjects) {
  std::string out;
  std::vector<std::string> missing;
  EXPECT_FALSE(stats::filter_top_level_fields("[1,2]", {"a"}, out, missing));
  EXPECT_FALSE(stats::filter_top_level_fields("", {"a"}, out, missing));
  EXPECT_FALSE(stats::filter_top_level_fields(R"({"a":1)", {"a"}, out,
                                              missing));
}

// ---------------------------------------------------------------------------
// Response cache

TEST(ResponseCache, HitMissAndCounters) {
  store::ResponseCache cache({.capacity_bytes = 1 << 20, .shards = 1});
  std::string body;
  EXPECT_FALSE(cache.get("k1", body));
  cache.put("k1", "v1");
  ASSERT_TRUE(cache.get("k1", body));
  EXPECT_EQ(body, "v1");
  const auto counters = cache.counters();
  EXPECT_EQ(counters.hits, 1u);
  EXPECT_EQ(counters.misses, 1u);
  EXPECT_EQ(counters.entries, 1u);
  EXPECT_EQ(counters.bytes, 4u);
}

TEST(ResponseCache, EvictsLeastRecentlyUsedFirst) {
  // Single shard, budget for ~3 entries of 20 bytes (10-byte keys +
  // 10-byte bodies).
  store::ResponseCache cache({.capacity_bytes = 60, .shards = 1});
  const std::string body(10 - 2, 'x');
  cache.put("aaaaaaaaaa", body + "_a");
  cache.put("bbbbbbbbbb", body + "_b");
  cache.put("cccccccccc", body + "_c");
  std::string out;
  ASSERT_TRUE(cache.get("aaaaaaaaaa", out));  // promote a over b
  cache.put("dddddddddd", body + "_d");       // must evict b, the LRU
  EXPECT_FALSE(cache.get("bbbbbbbbbb", out));
  EXPECT_TRUE(cache.get("aaaaaaaaaa", out));
  EXPECT_TRUE(cache.get("cccccccccc", out));
  EXPECT_TRUE(cache.get("dddddddddd", out));
  EXPECT_EQ(cache.counters().evictions, 1u);
}

TEST(ResponseCache, EpochInKeyInvalidatesNaturally) {
  // The store keys entries by (target, fingerprint); a fingerprint
  // bump is simply a different key — old epochs age out via LRU.
  store::ResponseCache cache({.capacity_bytes = 1 << 10, .shards = 1});
  cache.put("/query/summary#e1", "old");
  std::string out;
  EXPECT_FALSE(cache.get("/query/summary#e2", out));
  ASSERT_TRUE(cache.get("/query/summary#e1", out));
  EXPECT_EQ(out, "old");
}

TEST(ResponseCache, ZeroCapacityDisablesAndOversizedSkipped) {
  store::ResponseCache off({.capacity_bytes = 0, .shards = 1});
  off.put("k", "v");
  std::string out;
  EXPECT_FALSE(off.get("k", out));
  EXPECT_EQ(off.counters().entries, 0u);

  store::ResponseCache tiny({.capacity_bytes = 8, .shards = 1});
  tiny.put("key", std::string(100, 'x'));  // larger than the budget
  EXPECT_FALSE(tiny.get("key", out));
  EXPECT_EQ(tiny.counters().entries, 0u);
  EXPECT_EQ(tiny.counters().evictions, 0u);
}

TEST(ResponseCache, ClearDropsEntriesKeepsCounters) {
  store::ResponseCache cache({.capacity_bytes = 1 << 10, .shards = 2});
  cache.put("k1", "v1");
  cache.put("k2", "v2");
  std::string out;
  ASSERT_TRUE(cache.get("k1", out));
  cache.clear();
  EXPECT_FALSE(cache.get("k1", out));
  EXPECT_EQ(cache.counters().entries, 0u);
  EXPECT_EQ(cache.counters().bytes, 0u);
  EXPECT_EQ(cache.counters().hits, 1u);
}

// ---------------------------------------------------------------------------
// SnapshotTree against a real LiveStudy

class SnapshotTreeTest : public ::testing::Test {
 protected:
  static const sim::Ecosystem& eco() {
    static const sim::Ecosystem instance = [] {
      sim::EcosystemOptions options;
      options.publishers = 400;
      return sim::Ecosystem::generate(42, options);
    }();
    return instance;
  }
  static const sim::GeneratedLists& lists() {
    static const sim::GeneratedLists instance = sim::generate_lists(eco());
    return instance;
  }
  static const adblock::FilterEngine& engine() {
    static const adblock::FilterEngine instance = sim::make_engine(
        lists(), sim::ListSelection{.easylist = true,
                                    .derivative = true,
                                    .easyprivacy = true,
                                    .acceptable_ads = true});
    return instance;
  }
  static const trace::MemoryTrace& sample_trace() {
    static const trace::MemoryTrace instance = [] {
      trace::MemoryTrace memory;
      sim::RbnSimulator simulator(eco(), lists(), 42);
      auto options = sim::rbn2_options(40);
      options.duration_s = 2 * 3600;
      simulator.simulate(options, memory);
      return memory;
    }();
    return instance;
  }
  static core::StudyOptions study_options() {
    core::StudyOptions options;
    options.inference.min_requests = 300;
    return options;
  }

  struct FedStore {
    store::SnapshotTree tree;
    std::uint64_t watermark_ms = 0;
    std::uint64_t ingested = 0;
    std::uint64_t dropped = 0;

    explicit FedStore(store::SnapshotTreeOptions options) : tree(options) {}
  };

  /// Replays the sample trace through a LiveStudy whose seal hook feeds
  /// `tree`, with `threads` shards and 300 s buckets. Returns the study
  /// alive (closed) so callers can compare snapshots.
  static std::unique_ptr<live::LiveStudy> feed(FedStore& fed,
                                               std::size_t threads) {
    live::LiveStudyOptions options;
    options.study = study_options();
    options.threads = threads;
    options.bucket_seconds = 300;
    options.window_buckets = UINT64_MAX;
    options.on_seal = [&fed](std::uint64_t bucket_id, std::size_t shard,
                             const core::TraceStudy& sealed) {
      fed.tree.ingest(bucket_id, shard, sealed);
    };
    auto study = std::make_unique<live::LiveStudy>(engine(),
                                                   eco().abp_registry(),
                                                   options);
    sample_trace().replay(*study);
    study->seal_all();
    study->flush();
    fed.watermark_ms = study->watermark_ms();
    fed.ingested = study->records_ingested();
    fed.dropped = study->total_drops();
    return study;
  }

  static store::SnapshotTreeOptions tree_options() {
    store::SnapshotTreeOptions options;
    options.study = study_options();
    options.bucket_seconds = 300;
    return options;
  }

  static void stamp(core::StudySnapshot& snapshot, const FedStore& fed) {
    snapshot.watermark_ms = fed.watermark_ms;
    snapshot.records_ingested = fed.ingested;
    snapshot.records_dropped = fed.dropped;
  }
};

TEST_F(SnapshotTreeTest, TreeMergeRendersIdenticallyToLiveSnapshot) {
  for (const std::size_t threads : {1u, 2u, 7u}) {
    FedStore fed(tree_options());
    auto study = feed(fed, threads);

    auto from_tree = fed.tree.merge(0, UINT64_MAX, std::nullopt);
    stamp(from_tree, fed);
    const auto from_live = study->snapshot();

    EXPECT_EQ(store::summary_json(from_tree), store::summary_json(from_live))
        << threads << " threads";
    EXPECT_EQ(store::traffic_json(from_tree), store::traffic_json(from_live));
    EXPECT_EQ(store::users_json(from_tree), store::users_json(from_live));
    EXPECT_EQ(store::infra_json(from_tree, &eco().asn_db(), 10),
              store::infra_json(from_live, &eco().asn_db(), 10));
    study->close();
  }
}

TEST_F(SnapshotTreeTest, SubRangeAndShardMergesMatchLive) {
  FedStore fed(tree_options());
  auto study = feed(fed, 2);

  // A middle slice of buckets.
  auto tree_slice = fed.tree.merge(3, 9, std::nullopt);
  stamp(tree_slice, fed);
  const auto live_slice = study->snapshot(3, 9);
  EXPECT_EQ(store::summary_json(tree_slice), store::summary_json(live_slice));
  EXPECT_EQ(store::users_json(tree_slice), store::users_json(live_slice));

  // Per-shard leaves partition every leaf.
  const auto all = fed.tree.leaf_count();
  std::size_t across = 0;
  for (std::size_t shard = 0; shard < 2; ++shard) {
    across += static_cast<std::size_t>(
        fed.tree.merge(0, UINT64_MAX, shard).buckets_merged());
  }
  EXPECT_EQ(across, all);
  study->close();
}

TEST_F(SnapshotTreeTest, MaterializedRollupsEqualOnDemandMerges) {
  FedStore fed(tree_options());
  auto study = feed(fed, 2);
  study->close();

  const auto days = fed.tree.users_daily_days();
  ASSERT_FALSE(days.empty());
  const std::uint64_t buckets_per_day = 86400 / 300;
  for (const auto day : days) {
    auto rollup = fed.tree.users_daily(day);
    ASSERT_TRUE(rollup.has_value());
    stamp(*rollup, fed);
    auto on_demand = fed.tree.merge(day * buckets_per_day,
                                    (day + 1) * buckets_per_day - 1,
                                    std::nullopt);
    stamp(on_demand, fed);
    EXPECT_EQ(store::users_json(*rollup), store::users_json(on_demand));
  }

  auto cumulative = fed.tree.infra_cumulative();
  stamp(cumulative, fed);
  auto full = fed.tree.merge(0, UINT64_MAX, std::nullopt);
  stamp(full, fed);
  EXPECT_EQ(store::infra_json(cumulative, &eco().asn_db(), 10),
            store::infra_json(full, &eco().asn_db(), 10));
}

TEST_F(SnapshotTreeTest, RetentionBoundsTreeDuringLongReplay) {
  // 2 h of 300 s buckets = 24 buckets; retain 5. Run under the ASan
  // job, this also proves eviction releases leaf memory cleanly.
  auto options = tree_options();
  options.retention_buckets = 5;
  FedStore fed(options);
  auto study = feed(fed, 2);
  study->close();

  EXPECT_LE(fed.tree.bucket_count(), 5u);
  EXPECT_GT(fed.tree.buckets_evicted(), 0u);
  ASSERT_TRUE(fed.tree.min_bucket().has_value());
  EXPECT_GT(*fed.tree.min_bucket(), 0u);
  // The cumulative rollup ignores retention: it still covers every
  // sealed leaf ever ingested.
  EXPECT_EQ(fed.tree.infra_cumulative().buckets_merged(),
            fed.tree.leaves_ingested());
  // Epoch moved on every mutation.
  EXPECT_GE(fed.tree.epoch(), fed.tree.leaves_ingested());
}

TEST_F(SnapshotTreeTest, StoreServiceEndToEnd) {
  store::StoreServiceOptions options;
  options.tree = tree_options();
  options.cache.shards = 1;
  store::StoreService service(options, &eco().asn_db());

  live::LiveStudyOptions live_options;
  live_options.study = study_options();
  live_options.threads = 2;
  live_options.bucket_seconds = 300;
  live_options.window_buckets = UINT64_MAX;
  live_options.on_seal = [&service](std::uint64_t bucket_id, std::size_t shard,
                                    const core::TraceStudy& sealed) {
    service.tree().ingest(bucket_id, shard, sealed);
  };
  live::LiveStudy study(engine(), eco().abp_registry(), live_options);
  sample_trace().replay(study);
  study.seal_all();
  study.flush();
  service.set_live_stats([&study] {
    return store::LiveStats{study.watermark_ms(), study.records_ingested(),
                            study.total_drops(), study.current_bucket()};
  });

  // 200s with ETags; repeated queries hit the cache.
  const auto first = service.query("/query/summary/*");
  ASSERT_EQ(first.status, 200);
  EXPECT_FALSE(first.etag.empty());
  const auto again = service.query("/query/summary/*");
  EXPECT_EQ(again.body, first.body);
  EXPECT_EQ(again.etag, first.etag);
  EXPECT_GE(service.cache_counters().hits, 1u);

  // fields= filtering really subsets the document.
  const auto filtered = service.query("/query/summary/*?fields=trace,users");
  ASSERT_EQ(filtered.status, 200);
  EXPECT_LT(filtered.body.size(), first.body.size());
  EXPECT_EQ(filtered.body.rfind("{\"trace\"", 0), 0u);
  EXPECT_EQ(filtered.body.find("\"page_views\""), std::string::npos);
  const auto unknown_field =
      service.query("/query/summary/*?fields=trace,nope");
  EXPECT_EQ(unknown_field.status, 400);
  EXPECT_NE(unknown_field.body.find("\"param\":\"fields\""),
            std::string::npos);

  // Rollup listing and a present day.
  const auto days = service.query("/query/rollup/users-daily/*");
  ASSERT_EQ(days.status, 200);
  const auto missing_day = service.query("/query/rollup/users-daily/1999-01-01");
  EXPECT_EQ(missing_day.status, 404);

  // window_s answers the same bytes as the equivalent bucket range.
  const auto windowed = service.query("/query/summary/*?window_s=900");
  ASSERT_EQ(windowed.status, 200);
  const auto current = study.current_bucket();
  const auto explicit_range =
      service.query("/query/summary/@" + std::to_string(current - 2) + "..@" +
                    std::to_string(current + 1000));
  ASSERT_EQ(explicit_range.status, 200);
  EXPECT_EQ(windowed.body, explicit_range.body);

  // Buckets index is coherent.
  const auto buckets = service.query("/query/buckets");
  ASSERT_EQ(buckets.status, 200);
  EXPECT_NE(buckets.body.find("\"bucket_seconds\":300"), std::string::npos);

  study.close();
}

}  // namespace
}  // namespace adscope
