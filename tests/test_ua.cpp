// ua: User-Agent classification (the §6.1 annotation step).
#include <gtest/gtest.h>

#include "sim/ua_factory.h"
#include "ua/user_agent.h"
#include "util/rng.h"

namespace adscope::ua {
namespace {

struct UaCase {
  const char* ua;
  BrowserFamily family;
  DeviceClass device;
};

class UaSweep : public ::testing::TestWithParam<UaCase> {};

TEST_P(UaSweep, Classifies) {
  const auto info = parse_user_agent(GetParam().ua);
  EXPECT_EQ(info.family, GetParam().family) << GetParam().ua;
  EXPECT_EQ(info.device, GetParam().device) << GetParam().ua;
}

INSTANTIATE_TEST_SUITE_P(
    Real2015Strings, UaSweep,
    ::testing::Values(
        UaCase{"Mozilla/5.0 (Windows NT 6.1; WOW64; rv:38.0) Gecko/20100101 "
               "Firefox/38.0",
               BrowserFamily::kFirefox, DeviceClass::kDesktop},
        UaCase{"Mozilla/5.0 (Windows NT 6.3) AppleWebKit/537.36 (KHTML, like "
               "Gecko) Chrome/43.0.2357.81 Safari/537.36",
               BrowserFamily::kChrome, DeviceClass::kDesktop},
        UaCase{"Mozilla/5.0 (Macintosh; Intel Mac OS X 10_10_3) "
               "AppleWebKit/600.5.17 (KHTML, like Gecko) Version/8.0.5 "
               "Safari/600.5.17",
               BrowserFamily::kSafari, DeviceClass::kDesktop},
        UaCase{"Mozilla/5.0 (Windows NT 6.1; Trident/7.0; rv:11.0) like Gecko",
               BrowserFamily::kInternetExplorer, DeviceClass::kDesktop},
        UaCase{"Mozilla/4.0 (compatible; MSIE 9.0; Windows NT 6.1; "
               "Trident/5.0)",
               BrowserFamily::kInternetExplorer, DeviceClass::kDesktop},
        UaCase{"Mozilla/5.0 (iPhone; CPU iPhone OS 8_1 like Mac OS X) "
               "AppleWebKit/600.1.4 (KHTML, like Gecko) Version/8.0 "
               "Mobile/12B411 Safari/600.1.4",
               BrowserFamily::kSafari, DeviceClass::kMobile},
        UaCase{"Mozilla/5.0 (Linux; Android 5.0; SM-G900F Build/LRX21T) "
               "AppleWebKit/537.36 (KHTML, like Gecko) Chrome/40.0.2214.89 "
               "Mobile Safari/537.36",
               BrowserFamily::kChrome, DeviceClass::kMobile},
        UaCase{"Mozilla/5.0 (PlayStation 4 2.51) AppleWebKit/537.73",
               BrowserFamily::kNone, DeviceClass::kConsole},
        UaCase{"Mozilla/5.0 (SMART-TV; Linux; Tizen 2.3) AppleWebKit/538.1 TV "
               "Safari/538.1",
               BrowserFamily::kNone, DeviceClass::kSmartTv},
        UaCase{"Dalvik/2.1.0 (Linux; U; Android 5.0.1)", BrowserFamily::kNone,
               DeviceClass::kApp},
        UaCase{"Microsoft-CryptoAPI/6.1", BrowserFamily::kNone,
               DeviceClass::kRobot},
        UaCase{"curl/7.38.0", BrowserFamily::kNone, DeviceClass::kRobot},
        UaCase{"Googlebot/2.1 (+http://www.google.com/bot.html)",
               BrowserFamily::kNone, DeviceClass::kRobot},
        UaCase{"", BrowserFamily::kNone, DeviceClass::kUnknown},
        UaCase{"TotallyUnknownAgent/1.0", BrowserFamily::kNone,
               DeviceClass::kUnknown}));

TEST(Ua, VersionExtraction) {
  const auto ff = parse_user_agent(
      "Mozilla/5.0 (X11; Linux x86_64; rv:38.0) Gecko/20100101 Firefox/38.0");
  EXPECT_EQ(ff.major_version, 38);
  const auto chrome = parse_user_agent(
      "Mozilla/5.0 (Windows NT 6.1) AppleWebKit/537.36 (KHTML, like Gecko) "
      "Chrome/43.0.2357.81 Safari/537.36");
  EXPECT_EQ(chrome.major_version, 43);
}

TEST(Ua, IsBrowserPredicate) {
  EXPECT_TRUE(parse_user_agent("Mozilla/5.0 (Windows NT 6.1; rv:38.0) "
                               "Gecko/20100101 Firefox/38.0")
                  .is_browser());
  EXPECT_FALSE(parse_user_agent("curl/7.38.0").is_browser());
  EXPECT_FALSE(parse_user_agent("").is_browser());
}

TEST(Ua, OperaAndEdgeAreOtherNotChrome) {
  const auto opera = parse_user_agent(
      "Mozilla/5.0 (Windows NT 6.1) AppleWebKit/537.36 (KHTML, like Gecko) "
      "Chrome/42.0.2311.90 Safari/537.36 OPR/29.0.1795.47");
  EXPECT_EQ(opera.family, BrowserFamily::kOther);
}

// Property: every factory-generated UA string classifies back to the
// family/device it was generated for.
TEST(UaFactory, RoundTripsThroughParser) {
  util::Rng rng(99);
  const BrowserFamily families[] = {
      BrowserFamily::kFirefox, BrowserFamily::kChrome, BrowserFamily::kSafari,
      BrowserFamily::kInternetExplorer};
  for (int i = 0; i < 200; ++i) {
    for (const auto family : families) {
      const auto ua_string = sim::make_desktop_ua(family, rng);
      const auto info = parse_user_agent(ua_string);
      EXPECT_EQ(info.family, family) << ua_string;
      EXPECT_EQ(info.device, DeviceClass::kDesktop) << ua_string;
    }
    const auto mobile = parse_user_agent(sim::make_mobile_ua(rng));
    EXPECT_EQ(mobile.device, DeviceClass::kMobile);
    EXPECT_TRUE(mobile.is_browser());
    EXPECT_FALSE(parse_user_agent(sim::make_console_ua(rng)).is_browser());
    EXPECT_FALSE(parse_user_agent(sim::make_smarttv_ua(rng)).is_browser());
    EXPECT_FALSE(parse_user_agent(sim::make_app_ua(rng)).is_browser());
  }
}

}  // namespace
}  // namespace adscope::ua
