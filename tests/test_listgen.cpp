// sim: generated filter lists parse cleanly and behave like their real
// counterparts; Ghostery database coverage.
#include <gtest/gtest.h>

#include "sim/listgen.h"

namespace adscope::sim {
namespace {

class ListGenTest : public ::testing::Test {
 protected:
  static EcosystemOptions small() {
    EcosystemOptions options;
    options.publishers = 300;
    return options;
  }
  Ecosystem eco_ = Ecosystem::generate(42, small());
  GeneratedLists lists_ = generate_lists(eco_);
};

TEST_F(ListGenTest, ListsParseWithoutDiscards) {
  using adblock::FilterList;
  using adblock::ListKind;
  const struct {
    const std::string* text;
    ListKind kind;
  } cases[] = {
      {&lists_.easylist, ListKind::kEasyList},
      {&lists_.easylist_derivative, ListKind::kEasyListDerivative},
      {&lists_.easyprivacy, ListKind::kEasyPrivacy},
      {&lists_.acceptable_ads, ListKind::kAcceptableAds},
  };
  for (const auto& c : cases) {
    const auto list = FilterList::parse(*c.text, c.kind, "x");
    EXPECT_EQ(list.discarded_rules(), 0u) << to_string(c.kind);
    EXPECT_FALSE(list.filters().empty()) << to_string(c.kind);
    EXPECT_FALSE(list.title().empty());
  }
}

TEST_F(ListGenTest, ExpiryMatchesPaper) {
  const auto el = adblock::FilterList::parse(
      lists_.easylist, adblock::ListKind::kEasyList, "el");
  EXPECT_EQ(el.expires_hours(), 96u);  // 4 days [1]
  const auto ep = adblock::FilterList::parse(
      lists_.easyprivacy, adblock::ListKind::kEasyPrivacy, "ep");
  EXPECT_EQ(ep.expires_hours(), 24u);  // 1 day [2]
}

TEST_F(ListGenTest, AcceptableAdsIsPureWhitelist) {
  const auto aa = adblock::FilterList::parse(
      lists_.acceptable_ads, adblock::ListKind::kAcceptableAds, "aa");
  EXPECT_EQ(aa.exception_count(), aa.filters().size());
}

TEST_F(ListGenTest, EasyListHasElementHidingRules) {
  const auto el = adblock::FilterList::parse(
      lists_.easylist, adblock::ListKind::kEasyList, "el");
  EXPECT_FALSE(el.element_hiding_rules().empty());
}

TEST_F(ListGenTest, EngineSelectionControlsLists) {
  const auto full = make_engine(lists_, ListSelection{.easylist = true,
                                                      .derivative = true,
                                                      .easyprivacy = true,
                                                      .acceptable_ads = true});
  EXPECT_EQ(full.list_count(), 4u);
  const auto default_config = make_engine(lists_, ListSelection{});
  EXPECT_EQ(default_config.list_count(), 2u);  // EasyList + acceptable ads
  EXPECT_NE(full.find_list(adblock::ListKind::kEasyPrivacy),
            adblock::kNoList);
  EXPECT_EQ(default_config.find_list(adblock::ListKind::kEasyPrivacy),
            adblock::kNoList);
}

TEST_F(ListGenTest, EngineBlocksKnownAdDomains) {
  const auto engine = make_engine(lists_, ListSelection{});
  const auto request = adblock::make_request(
      "http://adserv.googlesim.com/ads/show.js?slot=1",
      "http://news-0.example/", http::RequestType::kScript);
  EXPECT_EQ(engine.classify(request).decision, adblock::Decision::kBlocked);
}

TEST_F(ListGenTest, GermanDomainsOnlyInDerivative) {
  const auto without = make_engine(lists_, ListSelection{});
  const auto with = make_engine(lists_, ListSelection{.derivative = true});
  const auto request = adblock::make_request(
      "http://euroads-sim.de/banner/x.gif", "http://news-0.example/",
      http::RequestType::kImage);
  EXPECT_EQ(without.classify(request).decision,
            adblock::Decision::kNoMatch);
  EXPECT_EQ(with.classify(request).decision, adblock::Decision::kBlocked);
}

TEST_F(ListGenTest, GstaticWhitelistedWholesale) {
  // The over-general acceptable-ads rule (§7.3): fonts — plain content —
  // match the whitelist.
  const auto engine = make_engine(lists_, ListSelection{});
  const auto font = adblock::make_request(
      "http://fonts.gstaticsim.com/s/font1.woff", "http://news-0.example/",
      http::RequestType::kFont);
  const auto verdict = engine.classify(font);
  EXPECT_EQ(verdict.decision, adblock::Decision::kWhitelisted);
  EXPECT_EQ(verdict.list_kind, adblock::ListKind::kAcceptableAds);
  EXPECT_FALSE(verdict.whitelist_saved_it());  // no blacklist match
}

TEST_F(ListGenTest, AaInventoryWhitelistedOverBlock) {
  const auto engine = make_engine(lists_, ListSelection{});
  const auto aa_ad = adblock::make_request(
      "http://adserv.googlesim.com/aa/creative/b1.gif",
      "http://news-0.example/", http::RequestType::kImage);
  const auto verdict = engine.classify(aa_ad);
  EXPECT_EQ(verdict.decision, adblock::Decision::kWhitelisted);
  EXPECT_TRUE(verdict.whitelist_saved_it());
  EXPECT_EQ(verdict.blocked_by_kind, adblock::ListKind::kEasyList);
}

TEST_F(ListGenTest, TrackersCaughtByEasyPrivacyOnly) {
  const auto el_only = make_engine(lists_, ListSelection{});
  const auto with_ep = make_engine(lists_, ListSelection{.easyprivacy = true});
  const auto beacon = adblock::make_request(
      "http://pixellayer-sim.com/pixel.gif?cb=123",
      "http://news-0.example/", http::RequestType::kImage);
  EXPECT_EQ(el_only.classify(beacon).decision, adblock::Decision::kNoMatch);
  const auto verdict = with_ep.classify(beacon);
  EXPECT_EQ(verdict.decision, adblock::Decision::kBlocked);
  EXPECT_EQ(verdict.list_kind, adblock::ListKind::kEasyPrivacy);
}

TEST_F(ListGenTest, GhosteryDbCoversKnownCompanies) {
  const auto db = build_ghostery_db(eco_);
  EXPECT_GT(db.size(), 0u);
  // DoubleClick is ghostery_known; advertising category.
  EXPECT_TRUE(db.blocks("ad.doubleclick-sim.com",
                        GhosteryDb::Selection::ads()));
  EXPECT_FALSE(db.blocks("ad.doubleclick-sim.com",
                         GhosteryDb::Selection::privacy_mode()));
  // GStatic is not ghostery_known (CDNs excluded).
  EXPECT_FALSE(db.blocks("fonts.gstaticsim.com",
                         GhosteryDb::Selection::paranoia()));
  // Unknown hosts are never blocked.
  EXPECT_FALSE(db.blocks("news-0.example", GhosteryDb::Selection::paranoia()));
}

TEST_F(ListGenTest, Determinism) {
  const auto again = generate_lists(eco_);
  EXPECT_EQ(lists_.easylist, again.easylist);
  EXPECT_EQ(lists_.easyprivacy, again.easyprivacy);
  EXPECT_EQ(lists_.acceptable_ads, again.acceptable_ads);
  EXPECT_EQ(lists_.easylist_derivative, again.easylist_derivative);
}

}  // namespace
}  // namespace adscope::sim
