// html: tokenizer and payload-mode structure extraction (§10).
#include <gtest/gtest.h>

#include "adblock/element_hiding.h"
#include "html/resource_extractor.h"
#include "html/tokenizer.h"

namespace adscope::html {
namespace {

TEST(Tokenizer, TagsTextAndComments) {
  const auto tokens = tokenize(
      "<html><body>hello <b>world</b><!-- note --></body></html>");
  ASSERT_EQ(tokens.size(), 9u);
  EXPECT_EQ(tokens[0].kind, Token::Kind::kStartTag);
  EXPECT_EQ(tokens[0].name, "html");
  EXPECT_EQ(tokens[2].kind, Token::Kind::kText);
  EXPECT_EQ(tokens[2].text, "hello");
  EXPECT_EQ(tokens[5].kind, Token::Kind::kEndTag);
  EXPECT_EQ(tokens[5].name, "b");
  EXPECT_EQ(tokens[6].kind, Token::Kind::kComment);
}

TEST(Tokenizer, Attributes) {
  const auto tokens = tokenize(
      R"(<img SRC="http://x.test/a.gif" alt='pic' width=10 />)");
  ASSERT_EQ(tokens.size(), 1u);
  const auto& img = tokens[0];
  EXPECT_EQ(img.name, "img");
  EXPECT_TRUE(img.self_closing);
  EXPECT_EQ(img.attr("src"), "http://x.test/a.gif");
  EXPECT_EQ(img.attr("alt"), "pic");
  EXPECT_EQ(img.attr("width"), "10");
  EXPECT_EQ(img.attr("missing"), "");
}

TEST(Tokenizer, ScriptBodyIsRawText) {
  const auto tokens = tokenize(
      "<script>if (a < b) { x(\"<div>\"); }</script><p>after</p>");
  ASSERT_GE(tokens.size(), 4u);
  EXPECT_EQ(tokens[0].name, "script");
  EXPECT_EQ(tokens[1].kind, Token::Kind::kText);
  EXPECT_NE(tokens[1].text.find("a < b"), std::string::npos);
  EXPECT_EQ(tokens[2].kind, Token::Kind::kEndTag);
  EXPECT_EQ(tokens[3].name, "p");
}

TEST(Tokenizer, SurvivesGarbage) {
  // Must not crash or hang on malformed markup.
  tokenize("<");
  tokenize("<<<>>>");
  tokenize("<img src=");
  tokenize("<script>never closed");
  tokenize("<!-- never closed");
  tokenize("<a b='unclosed quote>");
  tokenize("plain text only");
  SUCCEED();
}

TEST(Extractor, CollectsTypedResources) {
  const auto base = *http::Url::parse("http://site.test/dir/page.html");
  const auto structure = extract_structure(R"(
    <html><head>
      <link rel="stylesheet" href="/css/site.css"/>
      <script src="http://ads.test/show.js"></script>
    </head><body>
      <img src="img/logo.png"/>
      <iframe src="http://frame.test/inner.html"></iframe>
      <video src="/media/v.mp4"></video>
      <embed src="/flash/x.swf"/>
      <img/>
    </body></html>)",
                                            base);
  ASSERT_EQ(structure.resources.size(), 6u);
  EXPECT_EQ(structure.resources[0].url, "http://site.test/css/site.css");
  EXPECT_EQ(structure.resources[0].type, http::RequestType::kStylesheet);
  EXPECT_EQ(structure.resources[1].url, "http://ads.test/show.js");
  EXPECT_EQ(structure.resources[1].type, http::RequestType::kScript);
  EXPECT_EQ(structure.resources[2].url, "http://site.test/dir/img/logo.png");
  EXPECT_EQ(structure.resources[2].type, http::RequestType::kImage);
  EXPECT_EQ(structure.resources[3].type, http::RequestType::kSubdocument);
  EXPECT_EQ(structure.resources[4].type, http::RequestType::kMedia);
  EXPECT_EQ(structure.resources[5].type, http::RequestType::kObject);
}

TEST(Extractor, TextBlocksWithClassesAndIds) {
  const auto base = *http::Url::parse("http://site.test/");
  const auto structure = extract_structure(R"(
    <div class="article main">real content here</div>
    <div class="sponsored-link">buy things now</div>
    <div id="ad-leaderboard">more ads</div>
    <span>no attrs</span>)",
                                           base);
  ASSERT_EQ(structure.text_blocks.size(), 4u);
  EXPECT_EQ(structure.text_blocks[0].classes.size(), 2u);
  EXPECT_EQ(structure.text_blocks[0].classes[0], "article");
  EXPECT_GT(structure.text_blocks[0].text_length, 0u);
  EXPECT_EQ(structure.text_blocks[1].classes[0], "sponsored-link");
  EXPECT_EQ(structure.text_blocks[2].id, "ad-leaderboard");
}

TEST(SelectorMatch, ClassIdAndPrefix) {
  using adblock::selector_matches_block;
  const std::vector<std::string> classes = {"sponsored-link", "wide"};
  EXPECT_TRUE(selector_matches_block(".sponsored-link", classes, ""));
  EXPECT_FALSE(selector_matches_block(".sponsored", classes, ""));
  EXPECT_TRUE(selector_matches_block("#ad-box", {}, "ad-box"));
  EXPECT_FALSE(selector_matches_block("#ad-box", {}, "ad"));
  EXPECT_TRUE(
      selector_matches_block("div[id^=\"ad-\"]", {}, "ad-leaderboard"));
  EXPECT_FALSE(selector_matches_block("div[id^=\"ad-\"]", {}, "header"));
  EXPECT_TRUE(selector_matches_block("div[class^=\"spons\"]", classes, ""));
  EXPECT_FALSE(selector_matches_block("", classes, "x"));
}

}  // namespace
}  // namespace adscope::html
