// ClassifyCache: memoization identity (cache-on == cache-off), CLOCK
// eviction bounds, epoch invalidation, and the zero-allocation guarantee
// of the warm classify path.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <tuple>
#include <vector>

#include "adblock/classify_cache.h"
#include "adblock/engine.h"
#include "core/classifier.h"
#include "http/url.h"
#include "util/strings.h"

// --- global allocation-counting hook ---------------------------------
// Counts every operator-new in the binary; tests snapshot the counter
// around a region to assert the hot paths stay off the heap.
namespace {
std::atomic<std::uint64_t> g_allocations{0};
}

void* operator new(std::size_t size) {
  ++g_allocations;
  if (void* ptr = std::malloc(size ? size : 1)) return ptr;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  ++g_allocations;
  if (void* ptr = std::malloc(size ? size : 1)) return ptr;
  throw std::bad_alloc();
}
void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }

namespace adscope::adblock {
namespace {

std::uint64_t allocations() {
  return g_allocations.load(std::memory_order_relaxed);
}

FilterEngine make_engine() {
  FilterEngine engine;
  engine.add_list(FilterList::parse("||adnet.test^\n"
                                    "/banners/\n"
                                    "track*.gif\n"
                                    "@@||adnet.test/ok^\n",
                                    ListKind::kEasyList, "el"));
  return engine;
}

TEST(ClassifyCacheTest, FindAndInsertOnWarmKeysDoNotAllocate) {
  ClassifyCache cache(256);
  Classification verdict;
  verdict.decision = Decision::kBlocked;
  cache.insert(1, 2, 7, verdict);

  const auto before = allocations();
  for (int i = 0; i < 1000; ++i) {
    const Classification* hit = cache.find(1, 2, 7);
    ASSERT_NE(hit, nullptr);
    ASSERT_EQ(hit->decision, Decision::kBlocked);
    cache.insert(1, 2, 7, *hit);
  }
  // Eviction churn within existing sets is heap-free too.
  for (std::uint64_t key = 0; key < 4096; ++key) {
    cache.insert(key, key, 7, verdict);
  }
  EXPECT_EQ(allocations(), before);
  EXPECT_EQ(cache.hits(), 1000u);
}

TEST(ClassifyCacheTest, WarmEngineClassifyDoesNotAllocate) {
  const auto engine = make_engine();
  const auto request = make_request("http://adnet.test/banners/a.gif",
                                    "http://site.test/index.html",
                                    http::RequestType::kImage);
  const auto miss = make_request("http://plain.test/logo.png",
                                 "http://site.test/index.html",
                                 http::RequestType::kImage);
  TokenScratch scratch;
  // Warm the scratch once; from here the classify path owns no heap.
  (void)scratch.tokenize(request.url_lower);

  const auto before = allocations();
  for (int i = 0; i < 500; ++i) {
    const auto tokens = scratch.tokenize(request.url_lower);
    const auto verdict = engine.classify(RequestView(request), tokens);
    ASSERT_EQ(verdict.decision, Decision::kBlocked);
    const auto miss_tokens = scratch.tokenize(miss.url_lower);
    const auto miss_verdict = engine.classify(RequestView(miss), miss_tokens);
    ASSERT_EQ(miss_verdict.decision, Decision::kNoMatch);
  }
  EXPECT_EQ(allocations(), before);
}

TEST(ClassifyCacheTest, DisabledCacheNeverHits) {
  ClassifyCache cache(0);
  EXPECT_FALSE(cache.enabled());
  Classification verdict;
  cache.insert(1, 2, 3, verdict);
  EXPECT_EQ(cache.find(1, 2, 3), nullptr);
  EXPECT_EQ(cache.capacity(), 0u);
}

TEST(ClassifyCacheTest, SizeStaysWithinCapacityUnderChurn) {
  ClassifyCache cache(64);
  Classification verdict;
  for (std::uint64_t key = 0; key < 10000; ++key) {
    cache.insert(key * 2654435761u, key, 1, verdict);
  }
  EXPECT_LE(cache.size(), cache.capacity());
  EXPECT_GE(cache.capacity(), 64u);
}

TEST(ClassifyCacheTest, ReferencedEntriesGetASecondChance) {
  ClassifyCache cache(ClassifyCache::kWays);  // a single set of 4 ways
  Classification verdict;
  // Fill the set: keys 0,16,32,48 land in ways 0..3 (set mask is 0).
  for (std::uint64_t key = 0; key < 64; key += 16) {
    cache.insert(key, key, 1, verdict);
  }
  // Overflow: the first full CLOCK sweep clears every reference bit and
  // evicts way 0 (key 0); the hand stops at way 1.
  cache.insert(64, 64, 1, verdict);
  EXPECT_EQ(cache.find(0, 0, 1), nullptr);
  ASSERT_NE(cache.find(16, 16, 1), nullptr);  // re-references way 1

  // Next eviction starts at way 1: key 16 is referenced, so the hand
  // skips it and takes way 2 (key 32) instead.
  cache.insert(80, 80, 1, verdict);
  EXPECT_NE(cache.find(16, 16, 1), nullptr);
  EXPECT_EQ(cache.find(32, 32, 1), nullptr);
  EXPECT_NE(cache.find(80, 80, 1), nullptr);
}

TEST(ClassifyCacheTest, EpochChangeInvalidatesEverything) {
  ClassifyCache cache(64);
  Classification verdict;
  verdict.decision = Decision::kWhitelisted;
  cache.insert(5, 6, 1, verdict);
  ASSERT_NE(cache.find(5, 6, 1), nullptr);

  EXPECT_EQ(cache.find(5, 6, 2), nullptr);  // epoch bumped -> cold
  EXPECT_EQ(cache.size(), 0u);
  cache.insert(5, 6, 2, verdict);
  EXPECT_NE(cache.find(5, 6, 2), nullptr);
  // The old epoch is gone for good (monotonic config versions).
  EXPECT_EQ(cache.find(5, 6, 3), nullptr);
}

TEST(ClassifyCacheTest, EngineEpochBumpsOnConfigChange) {
  FilterEngine engine;
  const auto e0 = engine.config_epoch();
  const auto id = engine.add_list(
      FilterList::parse("/ads/\n", ListKind::kEasyList, "el"));
  const auto e1 = engine.config_epoch();
  EXPECT_NE(e0, e1);
  engine.set_enabled(id, false);
  const auto e2 = engine.config_epoch();
  EXPECT_NE(e1, e2);
  engine.set_enabled(id, false);  // no-op: same state
  EXPECT_EQ(engine.config_epoch(), e2);
}

}  // namespace
}  // namespace adscope::adblock

namespace adscope::core {
namespace {

analyzer::WebObject web_object(const std::string& url,
                               const std::string& referer,
                               const std::string& mime,
                               netdb::IpV4 client = 1) {
  analyzer::WebObject web;
  web.url = *http::Url::parse(url);
  web.referer = referer;
  web.content_type = mime;
  web.status_code = 200;
  web.client_ip = client;
  web.user_agent = "test-ua";
  web.content_length = 100;
  return web;
}

std::vector<analyzer::WebObject> zipf_stream() {
  std::vector<analyzer::WebObject> stream;
  for (int round = 0; round < 20; ++round) {
    stream.push_back(
        web_object("http://site.test/index.html", "", "text/html"));
    // The same hot resources over and over (the Zipf head)...
    for (int rep = 0; rep < 5; ++rep) {
      stream.push_back(web_object("http://adnet.test/banners/hot.gif",
                                  "http://site.test/index.html",
                                  "image/gif"));
      stream.push_back(web_object("http://static.test/app.js",
                                  "http://site.test/index.html",
                                  "application/javascript"));
    }
    // ...plus a unique tail entry per round.
    stream.push_back(web_object(
        "http://tail.test/item" + std::to_string(round) + ".png",
        "http://site.test/index.html", "image/png"));
  }
  return stream;
}

using Emitted = std::tuple<std::string, int, std::string, std::string, int>;

std::pair<std::vector<Emitted>, ClassifierCounters> run_stream(
    const adblock::FilterEngine& engine, std::size_t cache_entries) {
  ClassifierOptions options;
  options.classify_cache = cache_entries;
  TraceClassifier classifier(engine, options);
  std::vector<Emitted> emitted;
  classifier.set_callback([&](const ClassifiedObject& out) {
    emitted.emplace_back(out.object.url.spec(),
                         static_cast<int>(out.verdict.decision),
                         out.page_url, out.page_host,
                         static_cast<int>(out.verdict.list));
  });
  for (const auto& object : zipf_stream()) classifier.process(object);
  classifier.flush();
  return {std::move(emitted), classifier.counters()};
}

TEST(ClassifierCacheTest, CacheOnMatchesCacheOffExactly) {
  adblock::FilterEngine engine;
  engine.add_list(adblock::FilterList::parse("||adnet.test^$third-party\n"
                                             "/banners/\n"
                                             "@@||adnet.test/ok^\n",
                                             adblock::ListKind::kEasyList,
                                             "el"));
  const auto cached = run_stream(engine, 4096);
  const auto uncached = run_stream(engine, 0);

  EXPECT_EQ(cached.first, uncached.first);
  EXPECT_GT(cached.second.classify_cache_hits, 0u);
  EXPECT_EQ(uncached.second.classify_cache_hits, 0u);
  EXPECT_EQ(uncached.second.classify_cache_misses, 0u);
  EXPECT_EQ(cached.second.classify_cache_hits +
                cached.second.classify_cache_misses,
            cached.second.processed);
}

TEST(ClassifierCacheTest, CountersMergeIncludesCacheFields) {
  ClassifierCounters a;
  a.classify_cache_hits = 3;
  a.classify_cache_misses = 5;
  ClassifierCounters b;
  b.classify_cache_hits = 10;
  b.classify_cache_misses = 1;
  a.merge(b);
  EXPECT_EQ(a.classify_cache_hits, 13u);
  EXPECT_EQ(a.classify_cache_misses, 6u);
}

TEST(ClassifierCacheTest, PageContextMatchesFreshComputation) {
  PageContext context;
  const std::vector<std::string> pages = {
      "http://site.test/index.html",
      "http://site.test/index.html",  // repeat -> memo hit
      "HTTP://Other.Test/Page",
      "",
      "not a url",
      "http://site.test/index.html",
  };
  for (const auto& page : pages) {
    const auto& info = context.lookup(page);
    EXPECT_EQ(info.page, page);
    EXPECT_EQ(info.page_lower, util::to_lower(page));
    std::string expected_host;
    if (!page.empty()) {
      if (const auto parsed = http::Url::parse(page)) {
        expected_host = parsed->host();
      }
    }
    EXPECT_EQ(info.page_host, expected_host) << page;
  }
}

TEST(ClassifierCacheTest, MakeRequestIntoMatchesMakeRequest) {
  adblock::Request reused;
  const std::vector<std::tuple<std::string, std::string, http::RequestType>>
      cases = {
          {"http://a.test/x.gif", "http://page.test/", http::RequestType::kImage},
          {"  http://trim.test/y ", "", http::RequestType::kScript},
          {"HTTPS://Upper.Test/Z?Q=1", "HTTP://Page.Test/Index.HTML",
           http::RequestType::kDocument},
      };
  for (const auto& [url, page, type] : cases) {
    const auto fresh = adblock::make_request(url, page, type);
    adblock::make_request_into(url, page, type, reused);
    EXPECT_EQ(reused.url, fresh.url);
    EXPECT_EQ(reused.url_lower, fresh.url_lower);
    EXPECT_EQ(reused.host, fresh.host);
    EXPECT_EQ(reused.page_host, fresh.page_host);
    EXPECT_EQ(reused.page_url_lower, fresh.page_url_lower);
    EXPECT_EQ(reused.type, fresh.type);
  }
}

}  // namespace
}  // namespace adscope::core
