// Property-based tests: randomized consistency and robustness checks.
#include <gtest/gtest.h>

#include <sstream>

#include "adblock/engine.h"
#include "http/url.h"
#include "trace/io.h"
#include "trace/reader.h"
#include "trace/writer.h"
#include "util/rng.h"

namespace adscope {
namespace {

// ---------------------------------------------------------------------
// Engine vs brute force: the token index must never change semantics.
// ---------------------------------------------------------------------

std::string random_token(util::Rng& rng, std::size_t min_len,
                         std::size_t max_len) {
  static const char kAlphabet[] = "abcdefghijklmnopqrstuvwxyz0123456789";
  const auto length = min_len + rng.below(max_len - min_len + 1);
  std::string out;
  for (std::size_t i = 0; i < length; ++i) {
    out.push_back(kAlphabet[rng.below(sizeof(kAlphabet) - 1)]);
  }
  return out;
}

std::string random_rule(util::Rng& rng) {
  std::string rule;
  if (rng.chance(0.15)) rule += "@@";
  switch (rng.below(4)) {
    case 0:
      rule += "||" + random_token(rng, 3, 8) + ".test^";
      break;
    case 1:
      rule += "/" + random_token(rng, 3, 8) + "/";
      break;
    case 2:
      rule += "&" + random_token(rng, 2, 6) + "=";
      break;
    default:
      rule += "/" + random_token(rng, 3, 6) + "/*" +
              random_token(rng, 3, 6);
      break;
  }
  if (rng.chance(0.2)) rule += "$third-party";
  else if (rng.chance(0.1)) rule += "$image";
  return rule;
}

std::string random_url(util::Rng& rng,
                       const std::vector<std::string>& rules) {
  std::string url = "http://" + random_token(rng, 3, 8) + ".test/";
  // Half the time, splice a fragment of a real rule into the URL so
  // matches actually occur.
  if (!rules.empty() && rng.chance(0.6)) {
    auto fragment = rules[rng.below(rules.size())];
    // Strip rule syntax.
    std::erase(fragment, '@');
    std::erase(fragment, '|');
    std::erase(fragment, '^');
    std::erase(fragment, '*');
    const auto dollar = fragment.find('$');
    if (dollar != std::string::npos) fragment.resize(dollar);
    url += random_token(rng, 1, 4) + fragment + random_token(rng, 1, 4);
  } else {
    url += random_token(rng, 4, 12) + "/" + random_token(rng, 4, 12);
  }
  if (rng.chance(0.4)) url += "?" + random_token(rng, 2, 5) + "=" +
                              random_token(rng, 2, 10);
  return url;
}

TEST(PropertyEngine, TokenIndexMatchesBruteForce) {
  util::Rng rng(20150828);
  for (int round = 0; round < 8; ++round) {
    std::vector<std::string> rule_texts;
    std::string list_text;
    for (int i = 0; i < 120; ++i) {
      const auto rule = random_rule(rng);
      rule_texts.push_back(rule);
      list_text += rule + "\n";
    }
    adblock::FilterEngine engine;
    engine.add_list(adblock::FilterList::parse(
        list_text, adblock::ListKind::kEasyList, "fuzz"));
    const auto& list = engine.list(0);

    for (int probe = 0; probe < 400; ++probe) {
      const auto url = random_url(rng, rule_texts);
      const auto request = adblock::make_request(
          url, rng.chance(0.5) ? "http://page.test/" : "",
          rng.chance(0.3) ? http::RequestType::kScript
                          : http::RequestType::kImage);
      // Brute force with ABP semantics: any exception wins, else first
      // blocking match.
      const adblock::Filter* exception = nullptr;
      const adblock::Filter* blocking = nullptr;
      for (const auto& filter : list.filters()) {
        if (!filter.matches(request)) continue;
        if (filter.is_exception()) {
          if (exception == nullptr) exception = &filter;
        } else if (blocking == nullptr) {
          blocking = &filter;
        }
      }
      auto expected = adblock::Decision::kNoMatch;
      if (exception != nullptr) {
        expected = adblock::Decision::kWhitelisted;
      } else if (blocking != nullptr) {
        expected = adblock::Decision::kBlocked;
      }
      const auto verdict = engine.classify(request);
      ASSERT_EQ(verdict.decision, expected)
          << "round " << round << " url " << url;
    }
  }
}

// ---------------------------------------------------------------------
// Parser robustness: hostile inputs must not crash or throw.
// ---------------------------------------------------------------------

TEST(PropertyRobustness, UrlParserSurvivesGarbage) {
  util::Rng rng(77);
  for (int i = 0; i < 3000; ++i) {
    std::string garbage;
    const auto length = rng.below(80);
    for (std::size_t j = 0; j < length; ++j) {
      garbage.push_back(static_cast<char>(rng.below(256)));
    }
    const auto url = http::Url::parse(garbage);  // must not crash
    if (url) {
      EXPECT_FALSE(url->host().empty());
      EXPECT_FALSE(url->spec().empty());
    }
    http::Url base = http::Url::from_host_and_target("h.test", "/x");
    base.resolve(garbage);  // must not crash either
  }
}

TEST(PropertyRobustness, FilterParserSurvivesGarbage) {
  util::Rng rng(78);
  const char kChars[] = "abc|^*$@~=/.,!#?&()[]{}\\ \t";
  for (int i = 0; i < 5000; ++i) {
    std::string garbage;
    const auto length = rng.below(40);
    for (std::size_t j = 0; j < length; ++j) {
      garbage.push_back(kChars[rng.below(sizeof(kChars) - 1)]);
    }
    const auto filter = adblock::Filter::parse(garbage);
    if (filter) {
      // A parsed filter must be usable.
      filter->matches(adblock::make_request("http://x.test/abc", "",
                                            http::RequestType::kImage));
    }
  }
}

TEST(PropertyRobustness, FilterListParserSurvivesGarbage) {
  util::Rng rng(79);
  std::string text;
  for (int i = 0; i < 500; ++i) {
    const auto length = rng.below(60);
    for (std::size_t j = 0; j < length; ++j) {
      text.push_back(static_cast<char>(32 + rng.below(95)));
    }
    text.push_back('\n');
  }
  const auto list =
      adblock::FilterList::parse(text, adblock::ListKind::kCustom, "fuzz");
  EXPECT_LE(list.filters().size(), 500u);
}

TEST(PropertyRobustness, TraceReaderSurvivesTruncation) {
  // Write a valid trace, then replay progressively truncated copies:
  // each must either succeed partially or throw TraceFormatError —
  // never crash or loop.
  const std::string path = "/tmp/adscope_trunc_src.adst";
  {
    trace::FileTraceWriter writer(path);
    trace::TraceMeta meta;
    meta.name = "t";
    writer.on_meta(meta);
    for (int i = 0; i < 20; ++i) {
      trace::HttpTransaction txn;
      txn.host = "host" + std::to_string(i) + ".test";
      txn.uri = "/u";
      txn.user_agent = "ua";
      writer.on_http(txn);
    }
  }
  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string bytes = buffer.str();

  for (std::size_t cut = 5; cut < bytes.size(); cut += 7) {
    const std::string truncated_path = "/tmp/adscope_trunc_cut.adst";
    {
      std::ofstream out(truncated_path, std::ios::binary);
      out.write(bytes.data(), static_cast<std::streamsize>(cut));
    }
    try {
      trace::FileTraceReader reader(truncated_path);
      trace::MemoryTrace memory;
      reader.replay(memory);
    } catch (const trace::TraceFormatError&) {
      // acceptable
    }
  }
  std::remove(path.c_str());
  std::remove("/tmp/adscope_trunc_cut.adst");
}

TEST(PropertyRobustness, EngineHandlesHugeUrls) {
  adblock::FilterEngine engine;
  engine.add_list(adblock::FilterList::parse(
      "/banners/\n||ads.test^\n", adblock::ListKind::kEasyList, "el"));
  std::string url = "http://x.test/";
  for (int i = 0; i < 2000; ++i) url += "segment/";
  url += "banners/x.gif";
  const auto verdict = engine.classify(
      adblock::make_request(url, "", http::RequestType::kImage));
  EXPECT_EQ(verdict.decision, adblock::Decision::kBlocked);
}

}  // namespace
}  // namespace adscope
