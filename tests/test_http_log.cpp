// analyzer: Bro-style http.log writer and the §5 FQDN-truncation
// anonymization; stats: CSV export.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "analyzer/http_log.h"
#include "stats/csv.h"

namespace adscope {
namespace {

analyzer::WebObject sample_object() {
  analyzer::WebObject object;
  object.timestamp_ms = 1234;
  object.client_ip = 0x0AC80001;
  object.server_ip = 0x0A010001;
  object.url = *http::Url::parse(
      "http://news.test/very/private/path?user=secret");
  object.referer = "http://other.test/also/private?q=1";
  object.user_agent = "UA with\ttab";
  object.content_type = "text/html";
  object.content_length = 512;
  object.status_code = 200;
  object.tcp_handshake_us = 100;
  object.http_handshake_us = 200;
  return object;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(HttpLog, TruncateToFqdn) {
  EXPECT_EQ(analyzer::truncate_to_fqdn(
                *http::Url::parse("https://a.b.test/p/q?x=1")),
            "https://a.b.test/");
  EXPECT_EQ(analyzer::truncate_to_fqdn(http::Url{}), "");
}

TEST(HttpLog, FullModeKeepsUrls) {
  const std::string path = "/tmp/adscope_httplog_full.tsv";
  {
    analyzer::HttpLogWriter writer(path,
                                   analyzer::HttpLogWriter::Privacy::kFull);
    writer.write(sample_object());
    EXPECT_EQ(writer.lines_written(), 1u);
  }
  const auto content = read_file(path);
  EXPECT_NE(content.find("/very/private/path"), std::string::npos);
  EXPECT_NE(content.find("#fields"), std::string::npos);
  // Tab inside a field must not break the TSV.
  EXPECT_NE(content.find("UA with tab"), std::string::npos);
  std::remove(path.c_str());
}

TEST(HttpLog, TruncatedModeRemovesSensitiveParts) {
  const std::string path = "/tmp/adscope_httplog_trunc.tsv";
  {
    analyzer::HttpLogWriter writer(
        path, analyzer::HttpLogWriter::Privacy::kFqdnTruncated);
    writer.write(sample_object());
  }
  const auto content = read_file(path);
  EXPECT_EQ(content.find("private"), std::string::npos);
  EXPECT_EQ(content.find("secret"), std::string::npos);
  EXPECT_NE(content.find("http://news.test/"), std::string::npos);
  EXPECT_NE(content.find("http://other.test/"), std::string::npos);
  std::remove(path.c_str());
}

TEST(HttpLog, OpenFailureThrows) {
  EXPECT_THROW(analyzer::HttpLogWriter("/nonexistent-dir/x.tsv",
                                       analyzer::HttpLogWriter::Privacy::kFull),
               std::runtime_error);
}

TEST(Csv, WritesEscapedRows) {
  {
    stats::CsvWriter csv("/tmp", "adscope_csv_test", {"a", "b"});
    csv.add_row({"plain", "with,comma"});
    csv.add_row({"with\"quote", "x"});
  }
  const auto content = read_file("/tmp/adscope_csv_test.csv");
  EXPECT_NE(content.find("a,b\n"), std::string::npos);
  EXPECT_NE(content.find("plain,\"with,comma\"\n"), std::string::npos);
  EXPECT_NE(content.find("\"with\"\"quote\",x\n"), std::string::npos);
  std::remove("/tmp/adscope_csv_test.csv");
}

TEST(Csv, ExportDirFromEnvironment) {
  unsetenv("ADSCOPE_CSV_DIR");
  EXPECT_FALSE(stats::csv_export_dir().has_value());
  setenv("ADSCOPE_CSV_DIR", "/tmp", 1);
  ASSERT_TRUE(stats::csv_export_dir().has_value());
  EXPECT_EQ(*stats::csv_export_dir(), "/tmp");
  unsetenv("ADSCOPE_CSV_DIR");
}

}  // namespace
}  // namespace adscope
