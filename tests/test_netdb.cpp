// netdb: IPv4 parsing, prefixes, longest-prefix matching, ABP registry.
#include <gtest/gtest.h>

#include "netdb/abp_servers.h"
#include "netdb/asn_db.h"
#include "netdb/ipv4.h"

namespace adscope::netdb {
namespace {

TEST(IpV4, ParseAndFormat) {
  const auto ip = parse_ipv4("10.1.2.3");
  ASSERT_TRUE(ip.has_value());
  EXPECT_EQ(*ip, 0x0A010203u);
  EXPECT_EQ(to_string(*ip), "10.1.2.3");
  EXPECT_EQ(to_string(0xFFFFFFFFu), "255.255.255.255");
}

TEST(IpV4, ParseRejectsBadInput) {
  EXPECT_FALSE(parse_ipv4("").has_value());
  EXPECT_FALSE(parse_ipv4("10.1.2").has_value());
  EXPECT_FALSE(parse_ipv4("10.1.2.3.4").has_value());
  EXPECT_FALSE(parse_ipv4("10.1.2.256").has_value());
  EXPECT_FALSE(parse_ipv4("10.1.2.x").has_value());
  EXPECT_FALSE(parse_ipv4("10..2.3").has_value());
}

TEST(Prefix, ContainsBoundaries) {
  const auto prefix = parse_prefix("10.1.0.0/16");
  ASSERT_TRUE(prefix.has_value());
  EXPECT_TRUE(prefix->contains(*parse_ipv4("10.1.0.0")));
  EXPECT_TRUE(prefix->contains(*parse_ipv4("10.1.255.255")));
  EXPECT_FALSE(prefix->contains(*parse_ipv4("10.2.0.0")));
  EXPECT_FALSE(prefix->contains(*parse_ipv4("10.0.255.255")));

  const Prefix everything{0, 0};
  EXPECT_TRUE(everything.contains(0xDEADBEEF));
  const Prefix host{*parse_ipv4("1.2.3.4"), 32};
  EXPECT_TRUE(host.contains(*parse_ipv4("1.2.3.4")));
  EXPECT_FALSE(host.contains(*parse_ipv4("1.2.3.5")));
}

TEST(Prefix, ParseAndFormat) {
  EXPECT_FALSE(parse_prefix("10.0.0.0").has_value());
  EXPECT_FALSE(parse_prefix("10.0.0.0/33").has_value());
  EXPECT_EQ(to_string(*parse_prefix("10.0.0.0/8")), "10.0.0.0/8");
}

TEST(AsnDb, LongestPrefixWins) {
  AsnDatabase db;
  db.add_route(*parse_prefix("10.0.0.0/8"), 100);
  db.add_route(*parse_prefix("10.1.0.0/16"), 200);
  db.add_route(*parse_prefix("10.1.2.0/24"), 300);

  EXPECT_EQ(db.lookup(*parse_ipv4("10.9.9.9")), 100u);
  EXPECT_EQ(db.lookup(*parse_ipv4("10.1.9.9")), 200u);
  EXPECT_EQ(db.lookup(*parse_ipv4("10.1.2.9")), 300u);
  EXPECT_EQ(db.lookup(*parse_ipv4("11.0.0.1")), kUnknownAs);
  EXPECT_EQ(db.route_count(), 3u);
}

TEST(AsnDb, OverwriteSamePrefix) {
  AsnDatabase db;
  db.add_route(*parse_prefix("10.0.0.0/8"), 1);
  db.add_route(*parse_prefix("10.0.0.0/8"), 2);
  EXPECT_EQ(db.lookup(*parse_ipv4("10.0.0.1")), 2u);
  EXPECT_EQ(db.route_count(), 1u);
}

TEST(AsnDb, Names) {
  AsnDatabase db;
  db.set_as_info(15169, "Google");
  EXPECT_EQ(db.as_name(15169), "Google");
  EXPECT_EQ(db.as_name(1), "AS1");
  db.set_as_info(15169, "Google LLC");  // update
  EXPECT_EQ(db.as_name(15169), "Google LLC");
}

TEST(AsnDb, DefaultRoute) {
  AsnDatabase db;
  db.add_route(Prefix{0, 0}, 7);
  EXPECT_EQ(db.lookup(0x12345678), 7u);
}

TEST(AbpRegistry, MembershipAndEnumeration) {
  AbpServerRegistry registry;
  EXPECT_FALSE(registry.is_abp_server(1));
  registry.add_server(1);
  registry.add_server(2);
  registry.add_server(1);  // duplicate
  EXPECT_TRUE(registry.is_abp_server(1));
  EXPECT_TRUE(registry.is_abp_server(2));
  EXPECT_FALSE(registry.is_abp_server(3));
  EXPECT_EQ(registry.size(), 2u);
  EXPECT_EQ(registry.servers().size(), 2u);
}

}  // namespace
}  // namespace adscope::netdb
