// stats: order statistics, ECDF, histograms, heat map, time series,
// rendering.
#include <gtest/gtest.h>

#include "stats/ecdf.h"
#include "stats/heatmap.h"
#include "stats/histogram.h"
#include "stats/render.h"
#include "stats/summary.h"
#include "stats/timeseries.h"

namespace adscope::stats {
namespace {

TEST(Summary, Quantiles) {
  std::vector<double> values = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(quantile(values, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(values, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(values, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(values, 0.25), 2.0);
  EXPECT_DOUBLE_EQ(quantile({1, 2}, 0.5), 1.5);  // interpolation
  EXPECT_DOUBLE_EQ(quantile({}, 0.5), 0.0);
}

TEST(Summary, MeanStddev) {
  EXPECT_DOUBLE_EQ(mean({2, 4, 6}), 4.0);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_NEAR(stddev({2, 4, 6}), 2.0, 1e-9);
  EXPECT_DOUBLE_EQ(stddev({5}), 0.0);
}

TEST(Summary, BoxStatsWhiskers) {
  // 1..12 plus an outlier at 100: whisker must stop at 12.
  std::vector<double> values;
  for (int i = 1; i <= 12; ++i) values.push_back(i);
  values.push_back(100.0);
  const auto box = box_stats(values);
  EXPECT_EQ(box.n, 13u);
  EXPECT_DOUBLE_EQ(box.median, 7.0);
  EXPECT_DOUBLE_EQ(box.max, 100.0);
  EXPECT_DOUBLE_EQ(box.whisker_high, 12.0);
  EXPECT_DOUBLE_EQ(box.whisker_low, 1.0);
}

TEST(Ecdf, FractionsAndValues) {
  Ecdf ecdf;
  for (const double v : {1.0, 2.0, 2.0, 3.0}) ecdf.add(v);
  EXPECT_DOUBLE_EQ(ecdf.fraction_at_or_below(0.5), 0.0);
  EXPECT_DOUBLE_EQ(ecdf.fraction_at_or_below(2.0), 0.75);
  EXPECT_DOUBLE_EQ(ecdf.fraction_at_or_below(99.0), 1.0);
  EXPECT_DOUBLE_EQ(ecdf.value_at(0.0), 1.0);
  const auto curve = ecdf.curve();
  ASSERT_EQ(curve.size(), 3u);  // distinct values only
  EXPECT_DOUBLE_EQ(curve[1].first, 2.0);
  EXPECT_DOUBLE_EQ(curve[1].second, 0.75);
}

TEST(Ecdf, Empty) {
  Ecdf ecdf;
  EXPECT_TRUE(ecdf.empty());
  EXPECT_DOUBLE_EQ(ecdf.fraction_at_or_below(1.0), 0.0);
  EXPECT_TRUE(ecdf.curve().empty());
}

TEST(LinearHistogram, BinningAndDensity) {
  LinearHistogram hist(0.0, 10.0, 10);
  hist.add(0.5);
  hist.add(9.5);
  hist.add(100.0);  // clamps to last bin
  hist.add(-5.0);   // clamps to first bin
  EXPECT_DOUBLE_EQ(hist.count(0), 2.0);
  EXPECT_DOUBLE_EQ(hist.count(9), 2.0);
  EXPECT_DOUBLE_EQ(hist.total(), 4.0);
  const auto density = hist.density();
  double integral = 0;
  for (const auto d : density) integral += d * 1.0;  // bin width 1
  EXPECT_NEAR(integral, 1.0, 1e-9);
}

TEST(LogHistogram, ModesInLogSpace) {
  LogHistogram hist(0.0, 6.0, 24);
  for (int i = 0; i < 100; ++i) hist.add(43.0);      // beacons
  for (int i = 0; i < 10; ++i) hist.add(1.0e6);      // megabyte objects
  const auto mode = hist.bin_center(hist.mode_bin());
  EXPECT_GT(mode, 20.0);
  EXPECT_LT(mode, 100.0);
  EXPECT_DOUBLE_EQ(hist.total(), 110.0);
  hist.add(0.0);  // non-positive clamps, no crash
}

TEST(Heatmap, CountsAndEdges) {
  LogLogHeatmap map(4.0, 4.0, 8, 8);
  map.add(0, 0);
  map.add(9999, 9999);
  map.add(9999, 0);
  EXPECT_EQ(map.total(), 3u);
  EXPECT_EQ(map.count(0, 0), 1u);
  EXPECT_EQ(map.count(7, 7), 1u);
  EXPECT_EQ(map.count(7, 0), 1u);
  EXPECT_EQ(map.max_cell(), 1u);
  EXPECT_NEAR(map.x_edge(0), 0.0, 1e-9);
}

TEST(TimeSeries, BinningAndMax) {
  BinnedTimeSeries series(7200, 3600, {"a", "b"});
  EXPECT_EQ(series.bin_count(), 2u);
  series.add(0, 10);
  series.add(0, 3599);
  series.add(0, 3600, 5.0);
  series.add(1, 999999);  // clamps to last bin
  EXPECT_DOUBLE_EQ(series.value(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(series.value(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(series.value(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(series.series_max(0), 5.0);
  EXPECT_DOUBLE_EQ(series.global_max(), 5.0);
  EXPECT_EQ(series.name(1), "b");
}

TEST(Render, TextTableAlignment) {
  TextTable table({"col", "longer-column"});
  table.add_row({"a-very-long-cell", "b"});
  const auto out = table.to_string();
  EXPECT_NE(out.find("col"), std::string::npos);
  EXPECT_NE(out.find("a-very-long-cell"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  // Rows: header, separator, one data row.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 3);
}

TEST(Render, Bar) {
  EXPECT_EQ(bar(5, 10, 10).size(), 5u);
  EXPECT_EQ(bar(20, 10, 10).size(), 10u);  // clamped
  EXPECT_TRUE(bar(0, 10, 10).empty());
  EXPECT_TRUE(bar(5, 0, 10).empty());
}

TEST(Render, Sparkline) {
  const auto line = sparkline({0.0, 0.5, 1.0}, 1.0);
  EXPECT_EQ(line.size(), 3u);
  EXPECT_EQ(line[0], ' ');
  EXPECT_EQ(line[2], '#');
}

TEST(Render, BoxplotLine) {
  BoxStats box;
  box.whisker_low = 1;
  box.q1 = 2;
  box.median = 5;
  box.q3 = 8;
  box.whisker_high = 9;
  const auto line = boxplot_line(box, 0, 10, 21);
  EXPECT_EQ(line.size(), 21u);
  EXPECT_EQ(line[10], 'M');
  EXPECT_EQ(line[2], '|');
  EXPECT_TRUE(boxplot_line(box, 0, 0, 21).empty());
}

TEST(Render, HeatmapShadesDensity) {
  LogLogHeatmap map(2.0, 2.0, 4, 4);
  for (int i = 0; i < 100; ++i) map.add(50, 50);
  map.add(0, 0);
  const auto out = render_heatmap(map, 4);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  EXPECT_NE(out.find('#'), std::string::npos);  // dense cell
}

}  // namespace
}  // namespace adscope::stats
