// live+store: the /query HTTP surface against the legacy /study routes.
//
// The acceptance-grade property: every legacy /study view must be
// byte-identical to its /query equivalent — with and without the
// response cache, at 1, 2 and 7 shard threads — because both render
// through store::study_json over merge-law-equal snapshots. Plus the
// transport upgrades that rode along: ETag/If-None-Match revalidation
// (304s on both route families), HTTP/1.1 keep-alive with explicit
// Connection: close, and the uniform structured 400/404 error bodies.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "core/study.h"
#include "live/http_endpoint.h"
#include "live/live_study.h"
#include "sim/ecosystem.h"
#include "sim/listgen.h"
#include "sim/rbn_sim.h"
#include "store/store_service.h"
#include "trace/record.h"
#include "util/socket.h"

namespace adscope {
namespace {

class QueryApiTest : public ::testing::Test {
 protected:
  static const sim::Ecosystem& eco() {
    static const sim::Ecosystem instance = [] {
      sim::EcosystemOptions options;
      options.publishers = 400;
      return sim::Ecosystem::generate(42, options);
    }();
    return instance;
  }
  static const sim::GeneratedLists& lists() {
    static const sim::GeneratedLists instance = sim::generate_lists(eco());
    return instance;
  }
  static const adblock::FilterEngine& engine() {
    static const adblock::FilterEngine instance = sim::make_engine(
        lists(), sim::ListSelection{.easylist = true,
                                    .derivative = true,
                                    .easyprivacy = true,
                                    .acceptable_ads = true});
    return instance;
  }
  static const trace::MemoryTrace& sample_trace() {
    static const trace::MemoryTrace instance = [] {
      trace::MemoryTrace memory;
      sim::RbnSimulator simulator(eco(), lists(), 42);
      auto options = sim::rbn2_options(40);
      options.duration_s = 2 * 3600;
      simulator.simulate(options, memory);
      return memory;
    }();
    return instance;
  }

  /// A fed serving stack: LiveStudy with the sample trace sealed in,
  /// its SnapshotTree (fed through on_seal), and an HttpEndpoint over
  /// both. Declaration order matters: seal callbacks write into the
  /// store, so it must outlive the study.
  struct Stack {
    store::StoreService store;
    live::LiveStudy study;
    live::HttpEndpoint endpoint;

    explicit Stack(std::size_t threads, std::size_t cache_bytes = 8u << 20)
        : store(store_options(cache_bytes), &eco().asn_db()),
          study(engine(), eco().abp_registry(), live_options(threads)),
          endpoint(study, util::ListenSocket::tcp(0), &eco().asn_db(),
                   nullptr, &store) {
      sample_trace().replay(study);
      study.seal_all();
      study.flush();
      store.set_live_stats([this] {
        return store::LiveStats{study.watermark_ms(),
                                study.records_ingested(), study.total_drops(),
                                study.current_bucket()};
      });
    }
    ~Stack() { study.close(); }

    live::HttpEndpoint::Response get(const std::string& target,
                                     const std::string& if_none_match = "") {
      return endpoint.handle("GET", target, if_none_match);
    }

   private:
    store::StoreServiceOptions store_options(std::size_t cache_bytes) {
      store::StoreServiceOptions options;
      options.tree.study = study_options();
      options.tree.bucket_seconds = 300;
      options.cache.capacity_bytes = cache_bytes;
      return options;
    }
    static core::StudyOptions study_options() {
      core::StudyOptions options;
      options.inference.min_requests = 300;
      return options;
    }
    live::LiveStudyOptions live_options(std::size_t threads) {
      live::LiveStudyOptions options;
      options.study = study_options();
      options.threads = threads;
      options.bucket_seconds = 300;
      options.window_buckets = UINT64_MAX;
      options.on_seal = [this](std::uint64_t bucket_id, std::size_t shard,
                               const core::TraceStudy& sealed) {
        store.tree().ingest(bucket_id, shard, sealed);
      };
      return options;
    }
  };

  /// Reads exactly one HTTP response (headers + Content-Length body)
  /// from a connected socket — the framing a keep-alive client needs.
  static std::string recv_response(int fd) {
    std::string response;
    char chunk[4096];
    auto have_headers = [&] {
      return response.find("\r\n\r\n") != std::string::npos;
    };
    while (!have_headers()) {
      if (!util::wait_readable(fd, 5000)) return response;
      const auto n = util::recv_some(fd, chunk, sizeof(chunk));
      if (n == 0) return response;
      response.append(chunk, static_cast<std::size_t>(n));
    }
    const auto header_end = response.find("\r\n\r\n") + 4;
    std::size_t content_length = 0;
    const auto at = response.find("Content-Length: ");
    if (at != std::string::npos && at < header_end) {
      content_length = static_cast<std::size_t>(
          std::strtoull(response.c_str() + at + 16, nullptr, 10));
    }
    while (response.size() < header_end + content_length) {
      if (!util::wait_readable(fd, 5000)) break;
      const auto n = util::recv_some(fd, chunk, sizeof(chunk));
      if (n == 0) break;
      response.append(chunk, static_cast<std::size_t>(n));
    }
    return response;
  }

  static std::string body_of(const std::string& response) {
    const auto at = response.find("\r\n\r\n");
    return at == std::string::npos ? std::string() : response.substr(at + 4);
  }
};

TEST_F(QueryApiTest, QueryMatchesLegacyByteForByteAcrossThreadCounts) {
  const std::pair<std::string, std::string> pairs[] = {
      {"/study/summary", "/query/summary/*"},
      {"/study/traffic", "/query/traffic/*"},
      {"/study/users", "/query/users/*"},
      {"/study/infra", "/query/infra/*"},
      {"/study/summary?window_s=900", "/query/summary/*?window_s=900"},
      {"/study/users?window_s=1200", "/query/users/*?window_s=1200"},
  };
  for (const std::size_t threads : {1u, 2u, 7u}) {
    Stack cached(threads);
    Stack uncached(threads, /*cache_bytes=*/0);
    for (const auto& [legacy, query] : pairs) {
      const auto expect = cached.get(legacy);
      ASSERT_EQ(expect.status, 200) << legacy;
      // Cold render, cached render, and cache-disabled render must all
      // answer the same bytes as the legacy route.
      const auto cold = cached.get(query);
      ASSERT_EQ(cold.status, 200) << query;
      EXPECT_EQ(cold.body, expect.body) << threads << " threads " << query;
      const auto warm = cached.get(query);
      EXPECT_EQ(warm.body, expect.body) << threads << " threads " << query;
      EXPECT_EQ(uncached.get(query).body, uncached.get(legacy).body)
          << threads << " threads " << query;
    }
    EXPECT_GE(cached.store.cache_counters().hits, 1u);
    EXPECT_EQ(uncached.store.cache_counters().entries, 0u);
  }
}

TEST_F(QueryApiTest, EtagRevalidationAnswers304) {
  Stack stack(2);
  for (const std::string& target : {std::string("/study/summary"),
                                   std::string("/query/summary/*"),
                                   std::string("/query/buckets")}) {
    const auto first = stack.get(target);
    ASSERT_EQ(first.status, 200) << target;
    ASSERT_FALSE(first.etag.empty()) << target;
    EXPECT_EQ(first.etag.front(), '"') << target;

    const auto revalidated = stack.get(target, first.etag);
    EXPECT_EQ(revalidated.status, 304) << target;
    EXPECT_TRUE(revalidated.body.empty()) << target;
    EXPECT_EQ(revalidated.etag, first.etag) << target;

    EXPECT_EQ(stack.get(target, "*").status, 304) << target;
    EXPECT_EQ(stack.get(target, "\"stale\"").status, 200) << target;
  }
  // The two route families fingerprint different state: legacy tags
  // carry the live ring counters, query tags the store epoch.
  EXPECT_NE(stack.get("/study/summary").etag,
            stack.get("/query/summary/*").etag);
}

TEST_F(QueryApiTest, KeepAliveServesManyRequestsPerConnection) {
  Stack stack(2);
  stack.endpoint.start();
  auto fd = util::connect_tcp("127.0.0.1", stack.endpoint.port());

  const std::string request =
      "GET /query/summary/latest HTTP/1.1\r\nHost: t\r\n\r\n";
  std::vector<std::string> bodies;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(util::send_all(fd.get(), request));
    const auto response = recv_response(fd.get());
    ASSERT_NE(response.find("200 OK"), std::string::npos) << response;
    EXPECT_NE(response.find("Connection: keep-alive"), std::string::npos);
    bodies.push_back(body_of(response));
  }
  EXPECT_EQ(bodies[0], bodies[1]);
  EXPECT_EQ(bodies[1], bodies[2]);

  // An explicit close is honored: the server says so and the socket
  // reaches EOF.
  ASSERT_TRUE(util::send_all(
      fd.get(),
      "GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"));
  const auto last = recv_response(fd.get());
  EXPECT_NE(last.find("Connection: close"), std::string::npos);
  char extra[16];
  EXPECT_TRUE(util::wait_readable(fd.get(), 5000));
  EXPECT_EQ(util::recv_some(fd.get(), extra, sizeof(extra)), 0u);
  stack.endpoint.stop();
}

TEST_F(QueryApiTest, Http10ClosesByDefault) {
  Stack stack(1);
  stack.endpoint.start();
  auto fd = util::connect_tcp("127.0.0.1", stack.endpoint.port());
  ASSERT_TRUE(util::send_all(fd.get(), "GET /healthz HTTP/1.0\r\n\r\n"));
  const auto response = recv_response(fd.get());
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("Connection: close"), std::string::npos);
  char extra[16];
  EXPECT_TRUE(util::wait_readable(fd.get(), 5000));
  EXPECT_EQ(util::recv_some(fd.get(), extra, sizeof(extra)), 0u);
  stack.endpoint.stop();
}

TEST_F(QueryApiTest, Etag304OverTheWire) {
  Stack stack(2);
  stack.endpoint.start();
  auto fd = util::connect_tcp("127.0.0.1", stack.endpoint.port());
  ASSERT_TRUE(util::send_all(
      fd.get(), "GET /query/summary/* HTTP/1.1\r\nHost: t\r\n\r\n"));
  const auto first = recv_response(fd.get());
  const auto tag_at = first.find("ETag: ");
  ASSERT_NE(tag_at, std::string::npos) << first;
  const auto etag =
      first.substr(tag_at + 6, first.find("\r\n", tag_at) - tag_at - 6);

  ASSERT_TRUE(util::send_all(fd.get(),
                             "GET /query/summary/* HTTP/1.1\r\nHost: t\r\n"
                             "If-None-Match: " + etag +
                                 "\r\nConnection: close\r\n\r\n"));
  const auto second = recv_response(fd.get());
  EXPECT_NE(second.find("304 Not Modified"), std::string::npos) << second;
  EXPECT_TRUE(body_of(second).empty());
  stack.endpoint.stop();
}

TEST_F(QueryApiTest, StructuredErrorsAreUniformAcrossRoutes) {
  Stack stack(2);
  const struct {
    const char* target;
    int status;
    const char* param;
  } cases[] = {
      {"/study/summary?window_s=abc", 400, "window_s"},
      {"/study/summary?window_s=0", 400, "window_s"},
      {"/study/users?window_s=99999999999999999999999", 400, "window_s"},
      {"/query/summary/*?window_s=abc", 400, "window_s"},
      {"/query/summary/*?window_s=0", 400, "window_s"},
      {"/query/summary/*?fields=", 400, "fields"},
      {"/query/summary/*?fields=trace,nope", 400, "fields"},
      {"/query/summary/@9..@2", 400, ""},
      {"/query/summary/*/x", 400, ""},
      {"/query/users/latest?window_s=60", 400, "window_s"},
      {"/nope", 404, nullptr},
      {"/study/nope", 404, nullptr},
      {"/query/nope/*", 404, nullptr},
      {"/query/rollup/nope", 404, nullptr},
      {"/query/rollup/users-daily/1999-01-01", 404, nullptr},
  };
  for (const auto& item : cases) {
    const auto response = stack.get(item.target);
    EXPECT_EQ(response.status, item.status) << item.target;
    EXPECT_EQ(response.content_type, "application/json") << item.target;
    EXPECT_NE(response.body.find("\"error\""), std::string::npos)
        << item.target << ": " << response.body;
    EXPECT_NE(response.body.find("\"status\":" + std::to_string(item.status)),
              std::string::npos)
        << item.target << ": " << response.body;
    if (item.param != nullptr && *item.param != '\0') {
      EXPECT_NE(response.body.find("\"param\":\"" + std::string(item.param) +
                                   "\""),
                std::string::npos)
          << item.target << ": " << response.body;
    }
    EXPECT_TRUE(response.etag.empty()) << item.target;
  }
  // Errors never get cached or revalidated.
  EXPECT_EQ(stack.get("/query/nope/*", "\"anything\"").status, 404);
}

TEST_F(QueryApiTest, QueryRoutesAnswer404WithoutStore) {
  // An endpoint wired without a store keeps the legacy surface but
  // rejects /query cleanly.
  core::StudyOptions study_options;
  study_options.inference.min_requests = 300;
  live::LiveStudyOptions options;
  options.study = study_options;
  options.threads = 1;
  options.bucket_seconds = 300;
  live::LiveStudy study(engine(), eco().abp_registry(), options);
  live::HttpEndpoint endpoint(study, util::ListenSocket::tcp(0),
                              &eco().asn_db());
  const auto response = endpoint.handle("GET", "/query/summary/*");
  EXPECT_EQ(response.status, 404);
  EXPECT_NE(response.body.find("snapshot store"), std::string::npos);
  study.close();
}

TEST_F(QueryApiTest, MethodsOtherThanGetAre405) {
  Stack stack(1);
  for (const char* method : {"POST", "PUT", "DELETE", "HEAD"}) {
    EXPECT_EQ(stack.endpoint.handle(method, "/query/summary/*").status, 405)
        << method;
  }
}

}  // namespace
}  // namespace adscope
