// live: StreamDecoder, JsonWriter and LiveStudy windowing.
//
// The load-bearing guarantee is the window-rotation identity: after
// buckets are sealed and evicted, the merged snapshot over the
// surviving buckets renders a report byte-identical to a fresh serial
// TraceStudy fed only the surviving records — at 1, 2 and 7 ingest
// threads. The construction keeps per-user activity inside one bucket
// (distinct users per epoch), which is exactly the precondition the
// LiveStudy header documents.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <stdexcept>
#include <string>

#include "core/report.h"
#include "core/study.h"
#include "live/live_study.h"
#include "live/replay.h"
#include "live/study_json.h"
#include "sim/ecosystem.h"
#include "sim/listgen.h"
#include "sim/rbn_sim.h"
#include "stats/json.h"
#include "trace/stream.h"
#include "trace/writer.h"

namespace adscope {
namespace {

// ---------------------------------------------------------------------------
// JsonWriter

TEST(JsonWriterTest, ObjectsArraysAndEscaping) {
  stats::JsonWriter json;
  json.begin_object();
  json.field("plain", std::string_view("value"));
  json.field("quoted", std::string_view("a\"b\\c\nd\te"));
  json.key("nested").begin_object();
  json.field("n", std::uint64_t{7});
  json.end_object();
  json.key("list").begin_array();
  json.value(std::uint64_t{1});
  json.value(true);
  json.null();
  json.end_array();
  json.end_object();
  EXPECT_EQ(json.str(),
            "{\"plain\":\"value\",\"quoted\":\"a\\\"b\\\\c\\nd\\te\","
            "\"nested\":{\"n\":7},\"list\":[1,true,null]}");
}

TEST(JsonWriterTest, ControlCharactersEscapedAsUnicode) {
  std::string out;
  stats::json_escape(out, std::string_view("a\x01z", 3));
  EXPECT_EQ(out, "a\\u0001z");
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  stats::JsonWriter json;
  json.begin_array();
  json.value(1.5);
  json.value(std::nan(""));
  json.end_array();
  EXPECT_EQ(json.str(), "[1.5,null]");
}

TEST(JsonWriterTest, StructuralMisuseThrows) {
  {
    stats::JsonWriter json;
    json.begin_object();
    EXPECT_THROW(json.value(std::uint64_t{1}), std::logic_error);  // no key
  }
  {
    stats::JsonWriter json;
    json.begin_array();
    EXPECT_THROW(json.end_object(), std::logic_error);  // mismatched close
  }
  {
    stats::JsonWriter json;
    json.begin_object();
    EXPECT_THROW(json.str(), std::logic_error);  // unclosed container
  }
}

// ---------------------------------------------------------------------------
// StreamDecoder

trace::MemoryTrace tiny_trace() {
  trace::MemoryTrace memory;
  trace::TraceMeta meta;
  meta.name = "tiny";
  meta.start_unix_s = 1439305200;
  meta.duration_s = 600;
  meta.subscribers = 2;
  memory.on_meta(meta);

  trace::HttpTransaction txn;
  txn.timestamp_ms = 1000;
  txn.client_ip = 0x0a000001;
  txn.server_ip = 0xc0a80001;
  txn.status_code = 302;
  txn.host = "www.example.com";
  txn.uri = "/index.html?q=1";
  txn.referer = "http://ref.example.com/";
  txn.user_agent = "Mozilla/5.0 (tiny)";
  txn.content_type = "text/html";
  txn.location = "http://www.example.com/next";
  txn.content_length = 1234;
  txn.tcp_handshake_us = 1500;
  txn.http_handshake_us = 42000;
  memory.on_http(txn);

  // Same host + UA again: exercises dictionary reference encoding.
  txn.timestamp_ms = 2500;
  txn.uri = "/second";
  txn.referer.clear();
  txn.location.clear();
  txn.status_code = 200;
  memory.on_http(txn);

  trace::TlsFlow flow;
  flow.timestamp_ms = 3000;
  flow.client_ip = 0x0a000002;
  flow.server_ip = 0xc0a80002;
  flow.bytes = 99999;
  memory.on_tls(flow);
  return memory;
}

std::string encode(const trace::MemoryTrace& memory, bool with_end = true) {
  std::ostringstream out;
  trace::TraceEncoder encoder(out);
  memory.replay(encoder);
  if (with_end) encoder.finish();
  return out.str();
}

void expect_equal_traces(const trace::MemoryTrace& got,
                         const trace::MemoryTrace& want) {
  // Re-encoding is a full deep comparison: every field of every record
  // round-trips through the same deterministic byte layout.
  EXPECT_EQ(encode(got), encode(want));
}

TEST(StreamDecoderTest, RoundtripSingleChunk) {
  const auto wire = encode(tiny_trace());
  trace::MemoryTrace decoded;
  trace::StreamDecoder decoder(decoded);
  EXPECT_TRUE(decoder.awaiting_header());
  const auto delivered = decoder.feed(wire);
  EXPECT_EQ(delivered, 4u);  // meta + 2 http + 1 tls
  EXPECT_TRUE(decoder.finished());
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
  expect_equal_traces(decoded, tiny_trace());
}

TEST(StreamDecoderTest, RoundtripByteByByte) {
  const auto wire = encode(tiny_trace());
  trace::MemoryTrace decoded;
  trace::StreamDecoder decoder(decoded);
  std::size_t delivered = 0;
  for (const char byte : wire) {
    delivered += decoder.feed(std::string_view(&byte, 1));
  }
  EXPECT_EQ(delivered, 4u);
  EXPECT_TRUE(decoder.finished());
  expect_equal_traces(decoded, tiny_trace());
}

TEST(StreamDecoderTest, RoundtripAwkwardChunkSizes) {
  const auto wire = encode(tiny_trace());
  for (const std::size_t chunk : {2u, 3u, 7u, 13u}) {
    trace::MemoryTrace decoded;
    trace::StreamDecoder decoder(decoded);
    for (std::size_t at = 0; at < wire.size(); at += chunk) {
      decoder.feed(std::string_view(wire).substr(at, chunk));
    }
    EXPECT_TRUE(decoder.finished());
    expect_equal_traces(decoded, tiny_trace());
  }
}

TEST(StreamDecoderTest, NoEndMarkerMeansNotFinished) {
  const auto wire = encode(tiny_trace(), /*with_end=*/false);
  trace::MemoryTrace decoded;
  trace::StreamDecoder decoder(decoded);
  decoder.feed(wire);
  EXPECT_FALSE(decoder.finished());
  EXPECT_EQ(decoded.http().size(), 2u);
  EXPECT_EQ(decoded.tls().size(), 1u);
}

TEST(StreamDecoderTest, BadMagicThrowsAndPoisons) {
  auto wire = encode(tiny_trace());
  wire[0] = 'X';
  trace::MemoryTrace decoded;
  trace::StreamDecoder decoder(decoded);
  EXPECT_THROW(decoder.feed(wire), trace::TraceFormatError);
  EXPECT_THROW(decoder.feed("more"), trace::TraceFormatError);
}

TEST(StreamDecoderTest, TrailingBytesAfterEndThrow) {
  auto wire = encode(tiny_trace());
  wire += "junk";
  trace::MemoryTrace decoded;
  trace::StreamDecoder decoder(decoded);
  EXPECT_THROW(decoder.feed(wire), trace::TraceFormatError);
}

TEST(StreamDecoderTest, UnknownRecordTagThrows) {
  auto wire = encode(tiny_trace(), /*with_end=*/false);
  wire += '\x7f';
  trace::MemoryTrace decoded;
  trace::StreamDecoder decoder(decoded);
  EXPECT_THROW(decoder.feed(wire), trace::TraceFormatError);
}

// ---------------------------------------------------------------------------
// Shared world for the LiveStudy tests.

class LiveStudyTest : public ::testing::Test {
 protected:
  static const sim::Ecosystem& eco() {
    static const sim::Ecosystem instance = [] {
      sim::EcosystemOptions options;
      options.publishers = 400;
      return sim::Ecosystem::generate(42, options);
    }();
    return instance;
  }
  static const sim::GeneratedLists& lists() {
    static const sim::GeneratedLists instance = sim::generate_lists(eco());
    return instance;
  }
  static const adblock::FilterEngine& engine() {
    static const adblock::FilterEngine instance = sim::make_engine(
        lists(), sim::ListSelection{.easylist = true,
                                    .derivative = true,
                                    .easyprivacy = true,
                                    .acceptable_ads = true});
    return instance;
  }
  /// One hour of RBN-2, time-sorted (as a live vantage point sees it).
  static const trace::MemoryTrace& epoch_trace() {
    static const trace::MemoryTrace instance = [] {
      trace::MemoryTrace memory;
      sim::RbnSimulator simulator(eco(), lists(), 42);
      auto options = sim::rbn2_options(50);
      options.duration_s = kEpochSeconds;
      simulator.simulate(options, memory);
      live::sort_by_time(memory);
      return memory;
    }();
    return instance;
  }
  static core::StudyOptions study_options() {
    core::StudyOptions options;
    options.inference.min_requests = 300;
    return options;
  }
  static std::string report_of(const core::StudyView& view) {
    return core::render_full_report(view, &eco().asn_db());
  }

  static constexpr std::uint64_t kEpochSeconds = 3600;
  static constexpr std::uint64_t kEpochs = 3;

  /// The meta every study below sees: one trace long enough for all
  /// epochs, so offline and live aggregates have identical shapes.
  static trace::TraceMeta wide_meta() {
    auto meta = epoch_trace().meta();
    meta.duration_s = kEpochs * kEpochSeconds;
    return meta;
  }

  /// Epoch k = the sample records with timestamps shifted k hours and
  /// client IPs shifted into a disjoint range (the simulator spans
  /// < 2^18 addresses), so no per-user state crosses an epoch boundary.
  static void feed_epoch(trace::TraceSink& sink, std::uint64_t k) {
    const std::uint64_t dt_ms = k * kEpochSeconds * 1000;
    const std::uint32_t dip = static_cast<std::uint32_t>(k) << 18;
    for (auto txn : epoch_trace().http()) {
      txn.timestamp_ms += dt_ms;
      txn.client_ip += dip;
      sink.on_http(txn);
    }
    for (auto flow : epoch_trace().tls()) {
      flow.timestamp_ms += dt_ms;
      flow.client_ip += dip;
      sink.on_tls(flow);
    }
  }

  static std::uint64_t epoch_records() {
    return epoch_trace().http().size() + epoch_trace().tls().size();
  }
};

// ---------------------------------------------------------------------------
// Window rotation: evict the oldest epoch, compare against a fresh
// serial study over the survivors. Byte-identical, at 1/2/7 threads.

TEST_F(LiveStudyTest, RotationIdentityAtOneTwoAndSevenThreads) {
  // Serial ground truth: epochs 1 and 2 only, same meta.
  core::TraceStudy serial(engine(), eco().abp_registry(), study_options());
  serial.on_meta(wide_meta());
  feed_epoch(serial, 1);
  feed_epoch(serial, 2);
  serial.finish();
  const auto serial_report = report_of(serial.view());

  for (const std::size_t threads : {1u, 2u, 7u}) {
    live::LiveStudyOptions options;
    options.study = study_options();
    options.threads = threads;
    options.bucket_seconds = kEpochSeconds;  // one bucket per epoch
    options.window_buckets = 2;
    live::LiveStudy study(engine(), eco().abp_registry(), options);
    EXPECT_EQ(study.shard_count(), threads);

    study.on_meta(wide_meta());
    for (std::uint64_t k = 0; k < kEpochs; ++k) feed_epoch(study, k);

    // Watermark is now in bucket 2; the 2-bucket window retires epoch 0.
    EXPECT_EQ(study.current_bucket(), 2u);
    study.maintain();
    study.seal_all();
    study.flush();
    EXPECT_GE(study.buckets_evicted(), 1u);
    EXPECT_EQ(study.late_drops(), 0u);
    EXPECT_EQ(study.records_ingested(), kEpochs * epoch_records());

    const auto snapshot = study.snapshot();
    EXPECT_EQ(snapshot.first_bucket(), 1u);
    EXPECT_EQ(snapshot.last_bucket(), 2u);
    EXPECT_EQ(report_of(snapshot.view()), serial_report)
        << "surviving-window report diverged at " << threads << " threads";
    study.close();
  }
}

TEST_F(LiveStudyTest, SnapshotMergesOnlySealedBuckets) {
  live::LiveStudyOptions options;
  options.study = study_options();
  options.threads = 2;
  options.bucket_seconds = kEpochSeconds;
  live::LiveStudy study(engine(), eco().abp_registry(), options);
  study.on_meta(wide_meta());
  feed_epoch(study, 0);
  study.flush();

  // Nothing is sealed yet: the snapshot is empty (but counts ingest).
  const auto before = study.snapshot();
  EXPECT_EQ(before.buckets_merged(), 0u);
  EXPECT_EQ(before.records_ingested, epoch_records());
  EXPECT_EQ(before.view().traffic->requests(), 0u);

  study.seal_all();
  study.flush();
  const auto after = study.snapshot();
  EXPECT_EQ(after.buckets_merged(), 2u);  // one per shard
  EXPECT_EQ(after.view().traffic->requests(), epoch_trace().http().size());
  EXPECT_EQ(after.https_flows(), epoch_trace().tls().size());
  study.close();
}

TEST_F(LiveStudyTest, SnapshotWindowSelectsTrailingBuckets) {
  live::LiveStudyOptions options;
  options.study = study_options();
  options.threads = 1;
  options.bucket_seconds = kEpochSeconds;
  options.window_buckets = 10;
  live::LiveStudy study(engine(), eco().abp_registry(), options);
  study.on_meta(wide_meta());
  for (std::uint64_t k = 0; k < kEpochs; ++k) feed_epoch(study, k);
  study.seal_all();
  study.flush();

  const auto trailing = study.snapshot_window(2 * kEpochSeconds);
  EXPECT_EQ(trailing.first_bucket(), 1u);
  EXPECT_EQ(trailing.last_bucket(), 2u);
  EXPECT_EQ(trailing.view().traffic->requests(),
            2 * epoch_trace().http().size());

  const auto one = study.snapshot(1, 1);
  EXPECT_EQ(one.buckets_merged(), 1u);
  EXPECT_EQ(one.view().traffic->requests(), epoch_trace().http().size());
  study.close();
}

// ---------------------------------------------------------------------------
// Drop accounting.

TEST_F(LiveStudyTest, LateRecordsAreDroppedAndCounted) {
  live::LiveStudyOptions options;
  options.study = study_options();
  options.bucket_seconds = 60;
  options.seal_lag_buckets = 0;  // seal aggressively right behind the watermark
  live::LiveStudy study(engine(), eco().abp_registry(), options);
  study.on_meta(wide_meta());

  trace::HttpTransaction txn = epoch_trace().http().front();
  txn.timestamp_ms = 130'000;  // bucket 2
  study.on_http(txn);
  study.maintain();  // seals buckets 0 and 1
  study.flush();

  txn.timestamp_ms = 30'000;  // bucket 0 — already sealed
  study.on_http(txn);
  study.flush();
  EXPECT_EQ(study.late_drops(), 1u);
  EXPECT_EQ(study.records_ingested(), 2u);

  study.seal_all();
  study.flush();
  EXPECT_EQ(study.snapshot().view().traffic->requests(), 1u);
  study.close();
}

TEST_F(LiveStudyTest, SealLagKeepsRecentBucketsOpenForStragglers) {
  live::LiveStudyOptions options;
  options.study = study_options();
  options.bucket_seconds = 60;
  options.seal_lag_buckets = 1;
  live::LiveStudy study(engine(), eco().abp_registry(), options);
  study.on_meta(wide_meta());

  trace::HttpTransaction txn = epoch_trace().http().front();
  txn.timestamp_ms = 130'000;  // bucket 2
  study.on_http(txn);
  study.maintain();  // seals only bucket 0
  study.flush();

  txn.timestamp_ms = 70'000;  // bucket 1 — still open thanks to the lag
  study.on_http(txn);
  study.seal_all();
  study.flush();
  EXPECT_EQ(study.late_drops(), 0u);
  EXPECT_EQ(study.snapshot().view().traffic->requests(), 2u);
  study.close();
}

TEST_F(LiveStudyTest, PreMetaRecordsAreDroppedAndCounted) {
  live::LiveStudy study(engine(), eco().abp_registry());
  study.on_http(epoch_trace().http().front());
  EXPECT_EQ(study.pre_meta_drops(), 1u);
  EXPECT_EQ(study.records_ingested(), 0u);
  study.close();
}

TEST_F(LiveStudyTest, FirstMetaWinsLaterMetasCounted) {
  live::LiveStudy study(engine(), eco().abp_registry());
  auto meta = wide_meta();
  study.on_meta(meta);
  meta.name = "impostor";
  study.on_meta(meta);
  EXPECT_EQ(study.metas_ignored(), 1u);
  EXPECT_EQ(study.snapshot().meta().name, wide_meta().name);
  study.close();
}

TEST_F(LiveStudyTest, RecordsAfterCloseAreDroppedAndCounted) {
  live::LiveStudy study(engine(), eco().abp_registry());
  study.on_meta(wide_meta());
  study.close();
  study.on_http(epoch_trace().http().front());
  EXPECT_EQ(study.closed_drops(), 1u);
  // The study stays queryable after close().
  EXPECT_EQ(study.snapshot().records_dropped, 1u);
}

TEST_F(LiveStudyTest, FlushDrainsTheQueues) {
  live::LiveStudyOptions options;
  options.study = study_options();
  options.threads = 3;
  live::LiveStudy study(engine(), eco().abp_registry(), options);
  study.on_meta(wide_meta());
  feed_epoch(study, 0);
  study.flush();
  EXPECT_EQ(study.queue_depth(), 0u);
  study.close();
}

// ---------------------------------------------------------------------------
// JSON rendering sanity (schema-level; exact numbers are covered by the
// identity tests above and the server end-to-end test).

TEST_F(LiveStudyTest, SummaryJsonCarriesTheHeadlineNumbers) {
  live::LiveStudyOptions options;
  options.study = study_options();
  options.bucket_seconds = kEpochSeconds;
  live::LiveStudy study(engine(), eco().abp_registry(), options);
  study.on_meta(wide_meta());
  feed_epoch(study, 0);
  study.seal_all();
  study.flush();
  const auto snapshot = study.snapshot();
  const auto json = live::summary_json(snapshot);
  EXPECT_NE(json.find("\"trace\":{\"name\":\"RBN-2\""), std::string::npos);
  EXPECT_NE(json.find("\"requests\":" +
                      std::to_string(epoch_trace().http().size())),
            std::string::npos);
  EXPECT_NE(json.find("\"classes\":{\"A\":"), std::string::npos);
  EXPECT_NE(json.find("\"records_ingested\":" +
                      std::to_string(epoch_records())),
            std::string::npos);

  // The other documents render without structural errors and share the
  // window header.
  for (const auto& document :
       {live::traffic_json(snapshot), live::users_json(snapshot),
        live::infra_json(snapshot, &eco().asn_db())}) {
    EXPECT_NE(document.find("\"window\":{\"bucket_seconds\":3600"),
              std::string::npos);
  }
  study.close();
}

}  // namespace
}  // namespace adscope
