// core: filter-aware query normalization (§3.1 "Base URL").
#include <gtest/gtest.h>

#include "adblock/engine.h"
#include "core/query_normalizer.h"

namespace adscope::core {
namespace {

adblock::FilterEngine make_engine() {
  adblock::FilterEngine engine;
  engine.add_list(adblock::FilterList::parse(
      "@@*jsp?callback=aslHandleAds*\n"
      "/banners/\n"
      "&ad_unit=\n",
      adblock::ListKind::kEasyList, "el"));
  return engine;
}

class NormalizerTest : public ::testing::Test {
 protected:
  adblock::FilterEngine engine_ = make_engine();
  QueryNormalizer normalizer_{engine_};
};

TEST_F(NormalizerTest, StaticValuesKept) {
  EXPECT_TRUE(normalizer_.must_preserve("page", "home"));
  EXPECT_TRUE(normalizer_.must_preserve("v", "2"));
}

TEST_F(NormalizerTest, DynamicValuesDetected) {
  // Long tokens, embedded URLs, timestamps.
  EXPECT_FALSE(normalizer_.must_preserve(
      "sid", "0123456789abcdef0123456789abcdef"));
  EXPECT_FALSE(normalizer_.must_preserve("u", "http://x.test/p"));
  EXPECT_FALSE(normalizer_.must_preserve("cb", "1428710400"));
}

TEST_F(NormalizerTest, FilterKeyedValuesPreserved) {
  // "callback=" appears in the exception rule: even dynamic-looking
  // values must survive (the paper's aslHandleAds example).
  EXPECT_TRUE(normalizer_.must_preserve(
      "callback", "aslHandleAds0123456789abcdef"));
}

TEST_F(NormalizerTest, NormalizeRewritesOnlyDynamic) {
  const auto url = *http::Url::parse(
      "http://s.test/a?page=home&cb=1428710400&u=http%3A%2F%2Fx%2Fy");
  const auto normalized = normalizer_.normalize(url);
  EXPECT_EQ(normalized.query(), "page=home&cb=x&u=x");
}

TEST_F(NormalizerTest, ExceptionSurvivesNormalization) {
  const auto url = *http::Url::parse(
      "http://s.test/serve.jsp?callback=aslHandleAds0123456789abcdef"
      "&sid=00112233445566778899aabbccddeeff");
  const auto normalized = normalizer_.normalize(url);
  const auto request = adblock::make_request(
      normalized.spec(), "http://page.test/", http::RequestType::kScript);
  // Still matched by "@@*jsp?callback=aslHandleAds*".
  EXPECT_EQ(engine_.classify(request).decision,
            adblock::Decision::kWhitelisted);
}

TEST_F(NormalizerTest, NaiveModeBreaksException) {
  QueryNormalizer naive(engine_, /*filter_aware=*/false);
  const auto url = *http::Url::parse(
      "http://s.test/serve.jsp?callback=aslHandleAds0123456789abcdef&v=1");
  const auto normalized = naive.normalize(url);
  EXPECT_EQ(normalized.query(), "callback=x&v=1");
}

TEST_F(NormalizerTest, QueryWithoutValuesUntouched) {
  const auto url = *http::Url::parse("http://s.test/a?flag&other");
  EXPECT_EQ(normalizer_.normalize(url).query(), "flag&other");
  const auto no_query = *http::Url::parse("http://s.test/a");
  EXPECT_EQ(normalizer_.normalize(no_query).query(), "");
}

TEST_F(NormalizerTest, EmbeddedAdUrlNeutralized) {
  // Raw embedded ad URL would spuriously match "/banners/".
  const auto url = *http::Url::parse(
      "http://pub.test/outclick?u=http://ad.test/banners/b1.gif&t=2");
  const auto normalized = normalizer_.normalize(url);
  EXPECT_EQ(normalized.query().find("/banners/"), std::string::npos);
  const auto request = adblock::make_request(
      normalized.spec(), "http://pub.test/", http::RequestType::kXhr);
  EXPECT_EQ(engine_.classify(request).decision,
            adblock::Decision::kNoMatch);
}

}  // namespace
}  // namespace adscope::core
