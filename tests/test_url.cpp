// http: URL parsing/resolution, registrable domains, MIME taxonomy.
#include <gtest/gtest.h>

#include "http/mime.h"
#include "http/public_suffix.h"
#include "http/url.h"

namespace adscope::http {
namespace {

TEST(Url, ParseBasic) {
  const auto url = Url::parse("http://www.Example.COM/path/a.gif?x=1#frag");
  ASSERT_TRUE(url.has_value());
  EXPECT_EQ(url->scheme(), "http");
  EXPECT_EQ(url->host(), "www.example.com");
  EXPECT_EQ(url->path(), "/path/a.gif");
  EXPECT_EQ(url->query(), "x=1");
  EXPECT_EQ(url->port(), 0);  // default normalized away
  EXPECT_EQ(url->spec(), "http://www.example.com/path/a.gif?x=1");
}

TEST(Url, ParseRejectsGarbage) {
  EXPECT_FALSE(Url::parse("").has_value());
  EXPECT_FALSE(Url::parse("not a url").has_value());
  EXPECT_FALSE(Url::parse("http://").has_value());
  EXPECT_FALSE(Url::parse("://host/").has_value());
  EXPECT_FALSE(Url::parse("1http://x/").has_value());
}

TEST(Url, PortHandling) {
  const auto url = Url::parse("http://h.test:8080/x");
  ASSERT_TRUE(url.has_value());
  EXPECT_EQ(url->port(), 8080);
  EXPECT_EQ(url->host_and_path(), "h.test:8080/x");
  const auto default_port = Url::parse("https://h.test:443/x");
  ASSERT_TRUE(default_port.has_value());
  EXPECT_EQ(default_port->port(), 0);
  EXPECT_FALSE(Url::parse("http://h.test:99999/").has_value());
}

TEST(Url, HostOnly) {
  const auto url = Url::parse("http://h.test");
  ASSERT_TRUE(url.has_value());
  EXPECT_EQ(url->path(), "/");
  EXPECT_EQ(url->spec(), "http://h.test/");
}

TEST(Url, FromHostAndTarget) {
  const auto url = Url::from_host_and_target("H.Test", "/a/b?q=2");
  EXPECT_EQ(url.host(), "h.test");
  EXPECT_EQ(url.path(), "/a/b");
  EXPECT_EQ(url.query(), "q=2");
  EXPECT_FALSE(url.https());
  const auto tls = Url::from_host_and_target("h.test", "/", true);
  EXPECT_TRUE(tls.https());
  const auto empty = Url::from_host_and_target("", "/x");
  EXPECT_TRUE(empty.empty());
}

TEST(Url, ResolveAbsolute) {
  const auto base = *Url::parse("http://a.test/dir/page.html?x=1");
  EXPECT_EQ(base.resolve("http://b.test/other").spec(),
            "http://b.test/other");
}

TEST(Url, ResolveSchemeRelative) {
  const auto base = *Url::parse("https://a.test/dir/");
  EXPECT_EQ(base.resolve("//b.test/x").spec(), "https://b.test/x");
}

TEST(Url, ResolveAbsolutePath) {
  const auto base = *Url::parse("http://a.test/dir/page.html?x=1");
  const auto resolved = base.resolve("/new/path?y=2");
  EXPECT_EQ(resolved.spec(), "http://a.test/new/path?y=2");
}

TEST(Url, ResolveRelativePath) {
  const auto base = *Url::parse("http://a.test/dir/page.html");
  EXPECT_EQ(base.resolve("img.gif").spec(), "http://a.test/dir/img.gif");
}

TEST(Url, Extension) {
  EXPECT_EQ(Url::parse("http://x.test/a/b.GIF")->extension(), "gif");
  EXPECT_EQ(Url::parse("http://x.test/a.tar.gz")->extension(), "gz");
  EXPECT_EQ(Url::parse("http://x.test/dir.d/file")->extension(), "");
  EXPECT_EQ(Url::parse("http://x.test/file.")->extension(), "");
  EXPECT_EQ(Url::parse("http://x.test/")->extension(), "");
}

TEST(PublicSuffix, RegistrableDomain) {
  EXPECT_EQ(registrable_domain("www.example.com"), "example.com");
  EXPECT_EQ(registrable_domain("a.b.news.co.uk"), "news.co.uk");
  EXPECT_EQ(registrable_domain("example.com"), "example.com");
  EXPECT_EQ(registrable_domain("com"), "com");
  EXPECT_EQ(registrable_domain("localhost"), "localhost");
  EXPECT_EQ(registrable_domain("10.1.2.3"), "10.1.2.3");
}

TEST(PublicSuffix, ThirdParty) {
  EXPECT_FALSE(is_third_party("static.example.com", "www.example.com"));
  EXPECT_TRUE(is_third_party("ads.tracker.net", "www.example.com"));
  EXPECT_FALSE(is_third_party("", "www.example.com"));
}

TEST(PublicSuffix, HostMatchesDomain) {
  EXPECT_TRUE(host_matches_domain("a.b.test", "b.test"));
  EXPECT_TRUE(host_matches_domain("b.test", "b.test"));
  EXPECT_FALSE(host_matches_domain("ab.test", "b.test"));
  EXPECT_FALSE(host_matches_domain("b.test", "a.b.test"));
  EXPECT_FALSE(host_matches_domain("x", ""));
}

TEST(Mime, Canonicalization) {
  EXPECT_EQ(canonical_mime(" Text/HTML; charset=utf-8 "), "text/html");
  EXPECT_EQ(canonical_mime("image/GIF"), "image/gif");
  EXPECT_EQ(canonical_mime(""), "");
}

TEST(Mime, TypeFromMime) {
  EXPECT_EQ(type_from_mime("text/html"), RequestType::kDocument);
  EXPECT_EQ(type_from_mime("text/css"), RequestType::kStylesheet);
  EXPECT_EQ(type_from_mime("application/javascript"), RequestType::kScript);
  EXPECT_EQ(type_from_mime("image/webp"), RequestType::kImage);
  EXPECT_EQ(type_from_mime("video/x-flv"), RequestType::kMedia);
  EXPECT_EQ(type_from_mime("application/x-shockwave-flash"),
            RequestType::kObject);
  EXPECT_EQ(type_from_mime("application/json"), RequestType::kXhr);
  EXPECT_EQ(type_from_mime("text/plain"), RequestType::kOther);
  EXPECT_EQ(type_from_mime(""), RequestType::kOther);
  EXPECT_EQ(type_from_mime("-"), RequestType::kOther);
}

// §3.1's extension table, parameterized.
struct ExtCase {
  const char* ext;
  std::optional<RequestType> expected;
};

class ExtensionTable : public ::testing::TestWithParam<ExtCase> {};

TEST_P(ExtensionTable, Maps) {
  EXPECT_EQ(type_from_extension(GetParam().ext), GetParam().expected);
}

INSTANTIATE_TEST_SUITE_P(
    Paper, ExtensionTable,
    ::testing::Values(ExtCase{"png", RequestType::kImage},
                      ExtCase{"gif", RequestType::kImage},
                      ExtCase{"jpg", RequestType::kImage},
                      ExtCase{"svg", RequestType::kImage},
                      ExtCase{"ico", RequestType::kImage},
                      ExtCase{"css", RequestType::kStylesheet},
                      ExtCase{"js", RequestType::kScript},
                      ExtCase{"mp4", RequestType::kMedia},
                      ExtCase{"avi", RequestType::kMedia},
                      ExtCase{"swf", RequestType::kObject},
                      ExtCase{"html", RequestType::kDocument},
                      ExtCase{"xyz", std::nullopt},
                      ExtCase{"", std::nullopt}));

TEST(Mime, ContentClass) {
  EXPECT_EQ(class_from_mime("image/gif"), ContentClass::kImage);
  EXPECT_EQ(class_from_mime("text/plain"), ContentClass::kText);
  EXPECT_EQ(class_from_mime("video/mp4"), ContentClass::kVideo);
  EXPECT_EQ(class_from_mime("application/xml"), ContentClass::kApplication);
  EXPECT_EQ(class_from_mime(""), ContentClass::kOther);
}

}  // namespace
}  // namespace adscope::http
