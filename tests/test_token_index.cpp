// TokenIndex: flat probe-table correctness vs the build-map path, URL
// token dedup (the duplicate-bucket-visit bug), and TokenScratch reuse.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "adblock/filter.h"
#include "adblock/token_index.h"
#include "util/rng.h"

namespace adscope::adblock {
namespace {

Filter parse_ok(std::string_view line) {
  auto filter = Filter::parse(line);
  EXPECT_TRUE(filter.has_value()) << "rule failed to parse: " << line;
  return *filter;
}

TEST(UrlTokens, DuplicateTokensAreDeduplicated) {
  const auto tokens = url_token_hashes("http://x.test/ads/ads/ads.js");
  std::set<std::uint64_t> unique(tokens.begin(), tokens.end());
  EXPECT_EQ(tokens.size(), unique.size());

  // Order is first occurrence, not sorted: scan attribution depends on it.
  const auto once = url_token_hashes("http://x.test/ads/only.js");
  const auto thrice = url_token_hashes("http://x.test/ads/ads/ads.js");
  const auto ads_pos_once =
      std::find(once.begin(), once.end(),
                url_token_hashes("ads").front()) - once.begin();
  const auto ads_pos_thrice =
      std::find(thrice.begin(), thrice.end(),
                url_token_hashes("ads").front()) - thrice.begin();
  EXPECT_EQ(ads_pos_once, ads_pos_thrice);
}

// Regression: before dedup, a token occurring N times in the URL made
// scan() visit its bucket N times and re-evaluate every filter in it.
TEST(TokenIndexTest, RepeatedUrlTokenEvaluatesFiltersOnce) {
  const auto filter = parse_ok("/ads/banner");
  TokenIndex index;
  index.add(&filter);
  index.finalize();

  TokenScratch scratch;
  const auto tokens = scratch.tokenize("http://x.test/ads/ads/ads.js");
  std::size_t evaluations = 0;
  index.scan(tokens, [&](const Filter&) {
    ++evaluations;
    return false;
  });
  EXPECT_EQ(evaluations, 1u);
}

TEST(TokenScratchTest, MatchesVectorTokenizer) {
  const std::vector<std::string> urls = {
      "",
      "http://a.test/",
      "http://x.test/ads/ads/ads.js",
      "https://sub.domain.test/path/to/resource.png?q=1&track=abc",
      "no-keyword-chars-!!!-##",
      "ab.cd.ef",  // every run below keyword length
  };
  TokenScratch scratch;
  for (const auto& url : urls) {
    const auto expected = url_token_hashes(url);
    const auto got = scratch.tokenize(url);
    ASSERT_EQ(expected.size(), got.size()) << url;
    EXPECT_TRUE(std::equal(expected.begin(), expected.end(), got.begin()))
        << url;
  }
}

TEST(TokenScratchTest, OverflowSpillsWithoutLosingTokens) {
  // More distinct tokens than the inline capacity.
  std::string url = "http://x.test/";
  for (std::size_t i = 0; i < TokenScratch::kInlineCapacity + 40; ++i) {
    url += "tok" + std::to_string(i) + "/";
  }
  TokenScratch scratch;
  const auto expected = url_token_hashes(url);
  ASSERT_GT(expected.size(), TokenScratch::kInlineCapacity);
  const auto got = scratch.tokenize(url);
  ASSERT_EQ(expected.size(), got.size());
  EXPECT_TRUE(std::equal(expected.begin(), expected.end(), got.begin()));

  // The scratch stays usable (and correct) after a spill.
  const auto small = scratch.tokenize("http://y.test/just/one");
  EXPECT_EQ(small.size(), url_token_hashes("http://y.test/just/one").size());
}

std::vector<const Filter*> scan_all(const TokenIndex& index,
                                    std::span<const std::uint64_t> tokens) {
  std::vector<const Filter*> out;
  index.scan(tokens, [&](const Filter& filter) {
    out.push_back(&filter);
    return false;
  });
  return out;
}

TEST(TokenIndexTest, FinalizedScanIdenticalToBuildMapScan) {
  util::Rng rng(99);
  std::vector<Filter> filters;
  for (int i = 0; i < 200; ++i) {
    std::string rule = "/kw" + std::to_string(rng.below(60)) + "x" +
                       std::to_string(i) + "/";
    if (i % 7 == 0) rule = "^^^";  // no keyword -> unindexed
    filters.push_back(parse_ok(rule));
  }
  TokenIndex flat;
  TokenIndex map;
  for (const auto& filter : filters) {
    flat.add(&filter);
    map.add(&filter);
  }
  flat.finalize();
  ASSERT_TRUE(flat.finalized());
  ASSERT_FALSE(map.finalized());
  EXPECT_EQ(flat.indexed_count(), map.indexed_count());
  EXPECT_EQ(flat.bucket_count(), map.bucket_count());
  EXPECT_GE(flat.table_slots(), flat.bucket_count() * 2);

  TokenScratch scratch;
  for (int probe = 0; probe < 500; ++probe) {
    std::string url = "http://t.test/";
    for (int piece = 0; piece < 4; ++piece) {
      url += "kw" + std::to_string(rng.below(80)) + "x" +
             std::to_string(rng.below(220)) + "/";
    }
    const auto tokens = scratch.tokenize(url);
    EXPECT_EQ(scan_all(flat, tokens), scan_all(map, tokens)) << url;
  }
}

TEST(TokenIndexTest, EarlyStopStopsScan) {
  const auto first = parse_ok("/stopword/a");
  const auto second = parse_ok("/stopword/b");
  TokenIndex index;
  index.add(&first);
  index.add(&second);
  index.finalize();
  TokenScratch scratch;
  std::size_t seen = 0;
  const bool stopped =
      index.scan(scratch.tokenize("http://x.test/stopword/a"),
                 [&](const Filter&) { return ++seen == 1; });
  EXPECT_TRUE(stopped);
  EXPECT_EQ(seen, 1u);
}

TEST(TokenIndexTest, FinalizeIsIdempotentAndAddThrowsAfter) {
  const auto filter = parse_ok("/something/");
  TokenIndex index;
  index.add(&filter);
  index.finalize();
  const auto slots = index.table_slots();
  index.finalize();  // no-op
  EXPECT_EQ(index.table_slots(), slots);
  EXPECT_THROW(index.add(&filter), std::logic_error);
}

TEST(TokenIndexTest, EmptyIndexScansNothing) {
  TokenIndex index;
  index.finalize();
  TokenScratch scratch;
  EXPECT_FALSE(index.scan(scratch.tokenize("http://x.test/anything"),
                          [](const Filter&) { return true; }));
}

}  // namespace
}  // namespace adscope::adblock
