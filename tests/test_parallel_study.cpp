// core: ParallelTraceStudy — shard/merge correctness.
//
// Two layers of guarantees are asserted here:
//  * every aggregate's merge() is a commutative/associative sum, so the
//    shard combination cannot depend on scheduling (property-style
//    tests over generated shards);
//  * the sharded pipeline end-to-end produces a report byte-identical
//    to the serial TraceStudy on the same RBN trace, at 1, 2 and 7
//    threads.
// Plus unit coverage for the util substrate (ThreadPool, BoundedQueue).
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <cstdio>

#include "core/parallel_study.h"
#include "core/report.h"
#include "sim/ecosystem.h"
#include "sim/listgen.h"
#include "sim/rbn_sim.h"
#include "trace/mmap_reader.h"
#include "trace/writer.h"
#include "util/bounded_queue.h"
#include "util/hash.h"
#include "util/thread_pool.h"

namespace adscope {
namespace {

// ---------------------------------------------------------------------------
// util substrate

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  util::ThreadPool pool(3);
  EXPECT_EQ(pool.thread_count(), 3u);
  std::atomic<int> sum{0};
  std::vector<std::future<void>> done;
  for (int i = 0; i < 16; ++i) {
    done.push_back(pool.submit([&sum] { sum.fetch_add(1); }));
  }
  for (auto& f : done) f.get();
  EXPECT_EQ(sum.load(), 16);
}

TEST(ThreadPoolTest, ExceptionsPropagateThroughFutures) {
  util::ThreadPool pool(1);
  auto f = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
  // The worker survives a throwing task.
  auto ok = pool.submit([] {});
  EXPECT_NO_THROW(ok.get());
}

TEST(ThreadPoolTest, ZeroResolvesToHardwareConcurrency) {
  EXPECT_GE(util::resolve_thread_count(0), 1u);
  EXPECT_EQ(util::resolve_thread_count(5), 5u);
}

TEST(BoundedQueueTest, FifoAndDrainAfterClose) {
  util::BoundedQueue<int> queue(4);
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(queue.push(i));
  queue.close();
  EXPECT_FALSE(queue.push(99));  // rejected after close
  int out = -1;
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(queue.pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(queue.pop(out));  // closed and drained
}

TEST(BoundedQueueTest, BackpressureBlocksUntilConsumed) {
  util::BoundedQueue<int> queue(1);
  EXPECT_TRUE(queue.push(0));
  std::atomic<bool> second_pushed{false};
  std::thread producer([&] {
    queue.push(1);  // blocks: queue is full
    second_pushed.store(true);
  });
  // The producer must be stuck behind the full queue.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(second_pushed.load());
  int out = -1;
  EXPECT_TRUE(queue.pop(out));
  producer.join();
  EXPECT_TRUE(second_pushed.load());
  EXPECT_TRUE(queue.pop(out));
  EXPECT_EQ(out, 1);
}

TEST(BoundedQueueTest, CloseReleasesBlockedProducer) {
  util::BoundedQueue<int> queue(1);
  EXPECT_TRUE(queue.push(0));
  std::atomic<bool> rejected{false};
  std::thread producer([&] { rejected.store(!queue.push(1)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.close();
  producer.join();
  EXPECT_TRUE(rejected.load());
}

// ---------------------------------------------------------------------------
// Shared world: one small RBN trace, reused by every study test below.

class ParallelStudyTest : public ::testing::Test {
 protected:
  static const sim::Ecosystem& eco() {
    static const sim::Ecosystem instance = [] {
      sim::EcosystemOptions options;
      options.publishers = 400;
      return sim::Ecosystem::generate(42, options);
    }();
    return instance;
  }
  static const sim::GeneratedLists& lists() {
    static const sim::GeneratedLists instance = sim::generate_lists(eco());
    return instance;
  }
  static const adblock::FilterEngine& engine() {
    static const adblock::FilterEngine instance = sim::make_engine(
        lists(), sim::ListSelection{.easylist = true,
                                    .derivative = true,
                                    .easyprivacy = true,
                                    .acceptable_ads = true});
    return instance;
  }
  static const trace::MemoryTrace& sample_trace() {
    static const trace::MemoryTrace instance = [] {
      trace::MemoryTrace memory;
      sim::RbnSimulator simulator(eco(), lists(), 42);
      auto options = sim::rbn2_options(60);
      options.duration_s = 4 * 3600;
      simulator.simulate(options, memory);
      return memory;
    }();
    return instance;
  }
  static core::StudyOptions study_options() {
    core::StudyOptions options;
    options.inference.min_requests = 300;
    return options;
  }
  /// The serial ground truth every parallel run must reproduce.
  static const core::TraceStudy& serial() {
    static const core::TraceStudy& instance = *[] {
      auto study = new core::TraceStudy(engine(), eco().abp_registry(),
                                        study_options());
      sample_trace().replay(*study);
      study->finish();
      return study;
    }();
    return instance;
  }
  static std::string report_of(const core::StudyView& view) {
    return core::render_full_report(view, &eco().asn_db());
  }
};

// ---------------------------------------------------------------------------
// Property-style merge laws.
//
// Shards are generated exactly the way ParallelTraceStudy generates
// them (hash(client_ip) % n), then merged by hand in different orders
// and groupings; the rendered report exposes every aggregate at once.

namespace {

/// A standalone aggregate set that merges like ParallelTraceStudy does.
struct Aggregates {
  core::UserIndex users;
  core::TrafficStats traffic;
  core::WhitelistAnalysis whitelist;
  core::InfraAnalysis infra;
  core::RtbAnalysis rtb;
  core::PageViewStats page_views;
  core::ClassifierCounters counters;
  std::uint64_t https_flows = 0;

  explicit Aggregates(std::uint64_t duration_s) : traffic(duration_s) {}

  void absorb(const core::TraceStudy& study) {
    users.merge(study.users());
    traffic.merge(study.traffic());
    whitelist.merge(study.whitelist());
    infra.merge(study.infra());
    rtb.merge(study.rtb());
    page_views.merge(study.page_views());
    counters.merge(study.classifier().counters());
    https_flows += study.https_flows();
  }

  void absorb(const Aggregates& other) {
    users.merge(other.users);
    traffic.merge(other.traffic);
    whitelist.merge(other.whitelist);
    infra.merge(other.infra);
    rtb.merge(other.rtb);
    page_views.merge(other.page_views);
    counters.merge(other.counters);
    https_flows += other.https_flows;
  }

  core::StudyView view(const trace::TraceMeta& meta,
                       const core::InferenceOptions& inference) const {
    core::StudyView view;
    view.meta = &meta;
    view.users = &users;
    view.traffic = &traffic;
    view.whitelist = &whitelist;
    view.infra = &infra;
    view.rtb = &rtb;
    view.page_views = &page_views;
    view.https_flows = https_flows;
    view.inference_options = inference;
    return view;
  }
};

}  // namespace

class MergeLawsTest : public ParallelStudyTest {
 protected:
  static constexpr std::size_t kShards = 3;

  /// Finished per-shard studies over the hash-partitioned sample trace.
  static const std::vector<std::unique_ptr<core::TraceStudy>>& shards() {
    static const auto instance = [] {
      std::vector<std::unique_ptr<core::TraceStudy>> studies;
      for (std::size_t i = 0; i < kShards; ++i) {
        studies.push_back(std::make_unique<core::TraceStudy>(
            engine(), eco().abp_registry(), study_options()));
        studies.back()->on_meta(sample_trace().meta());
      }
      for (const auto& txn : sample_trace().http()) {
        studies[util::fnv1a_u64(txn.client_ip) % kShards]->on_http(txn);
      }
      for (const auto& flow : sample_trace().tls()) {
        studies[util::fnv1a_u64(flow.client_ip) % kShards]->on_tls(flow);
      }
      for (auto& study : studies) study->finish();
      return studies;
    }();
    return instance;
  }

  static std::string merged_report(const std::vector<std::size_t>& order) {
    Aggregates merged(sample_trace().meta().duration_s);
    for (const auto i : order) merged.absorb(*shards()[i]);
    return report_of(
        merged.view(sample_trace().meta(), study_options().inference));
  }
};

TEST_F(MergeLawsTest, MergeIsCommutative) {
  const auto reference = merged_report({0, 1, 2});
  EXPECT_EQ(merged_report({0, 2, 1}), reference);
  EXPECT_EQ(merged_report({1, 0, 2}), reference);
  EXPECT_EQ(merged_report({1, 2, 0}), reference);
  EXPECT_EQ(merged_report({2, 0, 1}), reference);
  EXPECT_EQ(merged_report({2, 1, 0}), reference);
}

TEST_F(MergeLawsTest, MergeIsAssociative) {
  const auto duration = sample_trace().meta().duration_s;
  // ((A + B) + C)
  Aggregates left(duration);
  left.absorb(*shards()[0]);
  left.absorb(*shards()[1]);
  left.absorb(*shards()[2]);
  // (A + (B + C))
  Aggregates bc(duration);
  bc.absorb(*shards()[1]);
  bc.absorb(*shards()[2]);
  Aggregates right(duration);
  right.absorb(*shards()[0]);
  right.absorb(bc);

  const auto& meta = sample_trace().meta();
  const auto inference = study_options().inference;
  EXPECT_EQ(report_of(left.view(meta, inference)),
            report_of(right.view(meta, inference)));
  EXPECT_EQ(left.counters.processed, right.counters.processed);
  EXPECT_EQ(left.counters.redirects_patched, right.counters.redirects_patched);
}

TEST_F(MergeLawsTest, PartitionPlusMergeMatchesSerial) {
  EXPECT_EQ(merged_report({0, 1, 2}), report_of(serial().view()));
}

// ---------------------------------------------------------------------------
// End-to-end: ParallelTraceStudy vs the serial study.

TEST_F(ParallelStudyTest, IdenticalReportAtOneTwoAndSevenThreads) {
  const auto serial_report = report_of(serial().view());
  for (const std::size_t threads : {1u, 2u, 7u}) {
    core::ParallelStudyOptions options;
    options.study = study_options();
    options.threads = threads;
    core::ParallelTraceStudy study(engine(), eco().abp_registry(), options);
    EXPECT_EQ(study.shard_count(), threads);
    sample_trace().replay(study);
    study.finish();
    EXPECT_EQ(report_of(study.view()), serial_report)
        << "report diverged at " << threads << " threads";
    // Counters are not part of the report; compare them explicitly.
    EXPECT_EQ(study.classifier_counters().processed,
              serial().classifier().counters().processed);
    EXPECT_EQ(study.https_flows(), serial().https_flows());
    EXPECT_EQ(study.transactions_before_meta(),
              serial().transactions_before_meta());
  }
}

TEST_F(ParallelStudyTest, MmapBatchReplayIdenticalAtOneTwoAndSevenThreads) {
  // The zero-copy pipeline end to end: mmap'd file -> view batches ->
  // shard-boundary materialization -> merged report. Must be
  // byte-identical to the serial study fed record by record.
  const std::string path = "/tmp/adscope_test_parallel_mmap.adst";
  {
    trace::FileTraceWriter writer(path);
    sample_trace().replay(writer);
  }
  const auto serial_report = report_of(serial().view());
  for (const std::size_t threads : {1u, 2u, 7u}) {
    core::ParallelStudyOptions options;
    options.study = study_options();
    options.threads = threads;
    options.dispatch_batch_records = 64;  // force plenty of flushes
    core::ParallelTraceStudy study(engine(), eco().abp_registry(), options);
    trace::MmapTraceReader reader(path);
    reader.replay_batches(study);
    study.finish();
    EXPECT_EQ(report_of(study.view()), serial_report)
        << "mmap batch report diverged at " << threads << " threads";
    EXPECT_EQ(study.classifier_counters().processed,
              serial().classifier().counters().processed);
    EXPECT_EQ(study.https_flows(), serial().https_flows());
  }
  std::remove(path.c_str());
}

TEST_F(ParallelStudyTest, ExternalPoolIsReusedAcrossStudies) {
  util::ThreadPool pool(4);
  const auto serial_report = report_of(serial().view());
  for (int run = 0; run < 2; ++run) {
    core::ParallelStudyOptions options;
    options.study = study_options();
    options.threads = 4;
    core::ParallelTraceStudy study(engine(), eco().abp_registry(), options,
                                   &pool);
    sample_trace().replay(study);
    study.finish();
    EXPECT_EQ(report_of(study.view()), serial_report);
  }
}

TEST_F(ParallelStudyTest, UndersizedPoolRejected) {
  util::ThreadPool pool(2);
  core::ParallelStudyOptions options;
  options.threads = 4;
  EXPECT_THROW(
      core::ParallelTraceStudy(engine(), eco().abp_registry(), options, &pool),
      std::invalid_argument);
}

TEST_F(ParallelStudyTest, CountsTransactionsBeforeMeta) {
  core::ParallelStudyOptions options;
  options.threads = 2;
  core::ParallelTraceStudy study(engine(), eco().abp_registry(), options);
  // No on_meta: the transactions must still be processed, and counted.
  for (std::size_t i = 0; i < 4 && i < sample_trace().http().size(); ++i) {
    study.on_http(sample_trace().http()[i]);
  }
  study.finish();
  EXPECT_EQ(study.transactions_before_meta(), 4u);
  EXPECT_GT(study.classifier_counters().processed, 0u);
}

TEST_F(ParallelStudyTest, FinishIsIdempotent) {
  core::ParallelStudyOptions options;
  options.study = study_options();
  options.threads = 2;
  core::ParallelTraceStudy study(engine(), eco().abp_registry(), options);
  sample_trace().replay(study);
  study.finish();
  const auto first = report_of(study.view());
  study.finish();
  EXPECT_EQ(report_of(study.view()), first);
}

}  // namespace
}  // namespace adscope
