// core: UserIndex aggregation and the §6.2 two-indicator inference.
#include <gtest/gtest.h>

#include "core/inference.h"
#include "core/user_index.h"

namespace adscope::core {
namespace {

// Hand-built ClassifiedObjects: no engine needed since Classification
// carries its own list kinds.
ClassifiedObject make_object(netdb::IpV4 ip, const std::string& ua,
                             adblock::Decision decision,
                             adblock::ListKind kind,
                             std::uint64_t bytes = 100) {
  ClassifiedObject object;
  object.object.client_ip = ip;
  object.object.user_agent = ua;
  object.object.content_length = bytes;
  object.object.timestamp_ms = 1000;
  object.verdict.decision = decision;
  object.verdict.list_kind = kind;
  object.verdict.list = 0;
  return object;
}

constexpr const char* kFirefox =
    "Mozilla/5.0 (Windows NT 6.1; rv:38.0) Gecko/20100101 Firefox/38.0";
constexpr const char* kChrome =
    "Mozilla/5.0 (Windows NT 6.1) AppleWebKit/537.36 (KHTML, like Gecko) "
    "Chrome/43.0.2357.81 Safari/537.36";

class InferenceTest : public ::testing::Test {
 protected:
  // Add `total` requests for user (ip, ua), `ads` of which are EasyList
  // hits.
  void add_user(netdb::IpV4 ip, const std::string& ua, int total, int ads) {
    for (int i = 0; i < total - ads; ++i) {
      index_.add(make_object(ip, ua, adblock::Decision::kNoMatch,
                             adblock::ListKind::kCustom));
    }
    for (int i = 0; i < ads; ++i) {
      index_.add(make_object(ip, ua, adblock::Decision::kBlocked,
                             adblock::ListKind::kEasyList));
    }
  }

  void mark_abp_household(netdb::IpV4 ip) {
    registry_.add_server(999);
    trace::TlsFlow flow;
    flow.client_ip = ip;
    flow.server_ip = 999;
    flow.server_port = 443;
    index_.add_tls(flow, registry_);
  }

  UserIndex index_;
  netdb::AbpServerRegistry registry_;
};

TEST_F(InferenceTest, UserAggregation) {
  add_user(1, kFirefox, 10, 2);
  add_user(1, kChrome, 5, 0);  // same household, second browser
  EXPECT_EQ(index_.users().size(), 2u);
  EXPECT_EQ(index_.household_count(), 1u);
  EXPECT_EQ(index_.total_requests(), 15u);
  EXPECT_EQ(index_.total_ad_requests(), 2u);
}

TEST_F(InferenceTest, EasyListRatioCountsOnlyEasyList) {
  index_.add(make_object(1, kFirefox, adblock::Decision::kBlocked,
                         adblock::ListKind::kEasyList));
  index_.add(make_object(1, kFirefox, adblock::Decision::kBlocked,
                         adblock::ListKind::kEasyPrivacy));
  index_.add(make_object(1, kFirefox, adblock::Decision::kWhitelisted,
                         adblock::ListKind::kAcceptableAds));
  index_.add(make_object(1, kFirefox, adblock::Decision::kNoMatch,
                         adblock::ListKind::kCustom));
  const auto& stats = index_.users().begin()->second;
  EXPECT_EQ(stats.requests, 4u);
  EXPECT_EQ(stats.ads_easylist, 1u);
  EXPECT_EQ(stats.ads_easyprivacy, 1u);
  EXPECT_EQ(stats.ads_whitelisted, 1u);
  EXPECT_EQ(stats.ad_requests(), 3u);
  EXPECT_DOUBLE_EQ(stats.easylist_ratio(), 0.25);
}

TEST_F(InferenceTest, NonAcceptableWhitelistIsNotAnAd) {
  // An EasyList-internal exception match must not count as an ad.
  index_.add(make_object(1, kFirefox, adblock::Decision::kWhitelisted,
                         adblock::ListKind::kEasyList));
  EXPECT_EQ(index_.total_ad_requests(), 0u);
}

TEST_F(InferenceTest, TlsToNonAbpServerIgnored) {
  registry_.add_server(999);
  trace::TlsFlow flow;
  flow.client_ip = 1;
  flow.server_ip = 5;  // not an ABP server
  flow.server_port = 443;
  index_.add_tls(flow, registry_);
  EXPECT_EQ(index_.abp_household_count(), 0u);
  EXPECT_FALSE(index_.household_downloads_easylist(1));
}

TEST_F(InferenceTest, FourClasses) {
  InferenceOptions options;
  options.min_requests = 100;
  options.ratio_threshold = 0.05;

  add_user(1, kFirefox, 200, 40);   // high ratio, no download  -> A
  add_user(2, kFirefox, 200, 40);   // high ratio, download     -> B
  add_user(3, kFirefox, 200, 2);    // low ratio, download      -> C
  add_user(4, kFirefox, 200, 2);    // low ratio, no download   -> D
  add_user(5, kChrome, 50, 25);     // below activity cut: excluded
  mark_abp_household(2);
  mark_abp_household(3);

  const auto result = infer_adblock_usage(index_, options);
  ASSERT_EQ(result.active_browsers.size(), 4u);
  EXPECT_EQ(result.classes[0].instances, 1u);  // A
  EXPECT_EQ(result.classes[1].instances, 1u);  // B
  EXPECT_EQ(result.classes[2].instances, 1u);  // C
  EXPECT_EQ(result.classes[3].instances, 1u);  // D
  EXPECT_DOUBLE_EQ(result.abp_share(), 0.25);
  for (const auto& browser : result.active_browsers) {
    switch (browser.stats->ip) {
      case 1: EXPECT_EQ(browser.cls, IndicatorClass::kA); break;
      case 2: EXPECT_EQ(browser.cls, IndicatorClass::kB); break;
      case 3: EXPECT_EQ(browser.cls, IndicatorClass::kC); break;
      case 4: EXPECT_EQ(browser.cls, IndicatorClass::kD); break;
      default: FAIL();
    }
  }
}

TEST_F(InferenceTest, NonBrowsersExcluded) {
  add_user(1, "curl/7.38.0", 5000, 0);
  InferenceOptions options;
  options.min_requests = 100;
  const auto result = infer_adblock_usage(index_, options);
  EXPECT_TRUE(result.active_browsers.empty());
  EXPECT_EQ(result.browsers_total, 0u);
  EXPECT_EQ(result.pairs_total, 1u);
}

TEST_F(InferenceTest, EcdfPopulated) {
  add_user(1, kFirefox, 200, 20);
  add_user(2, kChrome, 200, 0);
  InferenceOptions options;
  options.min_requests = 100;
  const auto result = infer_adblock_usage(index_, options);
  EXPECT_EQ(result.family_ecdf.at(ua::BrowserFamily::kFirefox).size(), 1u);
  EXPECT_EQ(result.family_ecdf.at(ua::BrowserFamily::kChrome).size(), 1u);
}

TEST_F(InferenceTest, ConfigurationReportShares) {
  InferenceOptions options;
  options.min_requests = 10;
  // Type-C user with EasyPrivacy hits but no whitelisted requests.
  for (int i = 0; i < 50; ++i) {
    index_.add(make_object(3, kFirefox, adblock::Decision::kNoMatch,
                           adblock::ListKind::kCustom));
  }
  for (int i = 0; i < 20; ++i) {
    index_.add(make_object(3, kFirefox, adblock::Decision::kBlocked,
                           adblock::ListKind::kEasyPrivacy));
  }
  mark_abp_household(3);
  // Type-A user with whitelisted requests.
  add_user(1, kChrome, 100, 30);
  for (int i = 0; i < 10; ++i) {
    index_.add(make_object(1, kChrome, adblock::Decision::kWhitelisted,
                           adblock::ListKind::kAcceptableAds));
  }

  const auto inference = infer_adblock_usage(index_, options);
  const auto report = analyze_configurations(inference, 10);
  EXPECT_DOUBLE_EQ(report.c_hits_easyprivacy_share, 1.0);
  EXPECT_DOUBLE_EQ(report.abp_zero_aa_share, 1.0);
  EXPECT_DOUBLE_EQ(report.abp_zero_ep_share, 0.0);
  EXPECT_DOUBLE_EQ(report.non_abp_zero_aa_share, 0.0);
  EXPECT_DOUBLE_EQ(report.whitelisted_from_non_abp_users, 1.0);
}

TEST(IndicatorClassNames, Chars) {
  EXPECT_EQ(to_char(IndicatorClass::kA), 'A');
  EXPECT_EQ(to_char(IndicatorClass::kD), 'D');
}

}  // namespace
}  // namespace adscope::core
