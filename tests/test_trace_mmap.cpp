// trace: zero-copy mmap reader and the view/batch surface.
//
// The load-bearing guarantees asserted here:
//  * the mmap reader and the legacy istream reader decode identical
//    records, in identical global order, from the same file;
//  * the warm decode loop (dictionary-hit path) performs ZERO heap
//    allocations per record (global operator-new hook);
//  * corrupted or truncated inputs always fail with TraceFormatError —
//    every prefix of a valid file either decodes or throws, never UB;
//  * views are dead once their delivery callback returns (documented in
//    trace/view.h and asserted with a death test);
//  * raw replay reproduces a byte-stream the legacy reader accepts.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <new>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "trace/io.h"
#include "trace/mmap_reader.h"
#include "trace/reader.h"
#include "trace/record.h"
#include "trace/stream.h"
#include "trace/view.h"
#include "trace/writer.h"

// --- global allocation-counting hook ---------------------------------
// Counts every operator-new in the binary; tests snapshot the counter
// around a region to assert the hot paths stay off the heap.
namespace {
std::atomic<std::uint64_t> g_allocations{0};
}

void* operator new(std::size_t size) {
  ++g_allocations;
  if (void* ptr = std::malloc(size ? size : 1)) return ptr;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  ++g_allocations;
  if (void* ptr = std::malloc(size ? size : 1)) return ptr;
  throw std::bad_alloc();
}
void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }

namespace adscope {
namespace {

std::uint64_t allocations() {
  return g_allocations.load(std::memory_order_relaxed);
}

trace::HttpTransaction make_txn(std::uint64_t t) {
  trace::HttpTransaction txn;
  txn.timestamp_ms = t;
  txn.client_ip = 0x0AC80000u + static_cast<netdb::IpV4>(t % 16);
  txn.server_ip = 0x0A010001;
  txn.host = t % 4 == 0 ? "ads.example.test" : "content.example.test";
  txn.uri = "/path/" + std::to_string(t) + "?q=" + std::to_string(t * 3);
  txn.referer = t % 2 == 0 ? "" : "http://page.test/article";
  txn.user_agent = t % 3 == 0 ? "Mozilla/5.0 (X11; Linux)" : "Fetcher/1.0";
  txn.content_type = t % 5 == 0 ? "image/gif" : "text/html";
  txn.location = t % 7 == 0 ? "http://next.test/x" : "";
  txn.content_length = 100 + t;
  txn.status_code = t % 7 == 0 ? 302 : 200;
  txn.tcp_handshake_us = static_cast<std::uint32_t>(1000 + t);
  txn.http_handshake_us = static_cast<std::uint32_t>(2000 + t);
  return txn;
}

trace::TlsFlow make_flow(std::uint64_t t) {
  trace::TlsFlow flow;
  flow.timestamp_ms = t;
  flow.client_ip = 0x0AC80000u + static_cast<netdb::IpV4>(t % 16);
  flow.server_ip = 0x0A020002;
  flow.bytes = 4096 + t;
  return flow;
}

/// Writes a trace with HTTP and TLS records interleaved (kind switches
/// every few records), so batch order preservation is actually
/// exercised.
void write_sample(const std::string& path, std::uint64_t records) {
  trace::FileTraceWriter writer(path);
  trace::TraceMeta meta;
  meta.name = "mmap-test";
  meta.start_unix_s = 1'428'710'400;
  meta.duration_s = 3600;
  meta.subscribers = 16;
  writer.on_meta(meta);
  for (std::uint64_t t = 0; t < records; ++t) {
    if (t % 5 == 3) {
      writer.on_tls(make_flow(t));
    } else {
      writer.on_http(make_txn(t));
    }
  }
  writer.close();
}

/// Records the exact delivery sequence: kind + timestamp per record.
class SequenceSink final : public trace::TraceSink {
 public:
  void on_meta(const trace::TraceMeta&) override {}
  void on_http(const trace::HttpTransaction& txn) override {
    sequence.emplace_back('H', txn.timestamp_ms);
  }
  void on_tls(const trace::TlsFlow& flow) override {
    sequence.emplace_back('T', flow.timestamp_ms);
  }
  std::vector<std::pair<char, std::uint64_t>> sequence;
};

class SequenceBatchSink final : public trace::TraceBatchSink {
 public:
  void on_meta(const trace::TraceMeta&) override {}
  void on_http_batch(std::span<const trace::HttpTransactionView> batch)
      override {
    ++http_batches;
    for (const auto& view : batch) sequence.emplace_back('H', view.timestamp_ms);
  }
  void on_tls_batch(std::span<const trace::TlsFlowView> batch) override {
    ++tls_batches;
    for (const auto& flow : batch) sequence.emplace_back('T', flow.timestamp_ms);
  }
  std::vector<std::pair<char, std::uint64_t>> sequence;
  int http_batches = 0;
  int tls_batches = 0;
};

/// Touches every view field without allocating or retaining anything.
class NullBatchSink final : public trace::TraceBatchSink {
 public:
  void on_meta(const trace::TraceMeta&) override {}
  void on_http_batch(std::span<const trace::HttpTransactionView> batch)
      override {
    for (const auto& view : batch) {
      checksum += view.timestamp_ms + view.host.size() + view.uri.size() +
                  view.user_agent.size() + view.content_type.size();
    }
  }
  void on_tls_batch(std::span<const trace::TlsFlowView> batch) override {
    for (const auto& flow : batch) checksum += flow.bytes;
  }
  std::uint64_t checksum = 0;
};

void expect_equal_http(const std::vector<trace::HttpTransaction>& a,
                       const std::vector<trace::HttpTransaction>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].timestamp_ms, b[i].timestamp_ms);
    EXPECT_EQ(a[i].client_ip, b[i].client_ip);
    EXPECT_EQ(a[i].server_ip, b[i].server_ip);
    EXPECT_EQ(a[i].server_port, b[i].server_port);
    EXPECT_EQ(a[i].status_code, b[i].status_code);
    EXPECT_EQ(a[i].host, b[i].host);
    EXPECT_EQ(a[i].uri, b[i].uri);
    EXPECT_EQ(a[i].referer, b[i].referer);
    EXPECT_EQ(a[i].user_agent, b[i].user_agent);
    EXPECT_EQ(a[i].content_type, b[i].content_type);
    EXPECT_EQ(a[i].location, b[i].location);
    EXPECT_EQ(a[i].content_length, b[i].content_length);
    EXPECT_EQ(a[i].tcp_handshake_us, b[i].tcp_handshake_us);
    EXPECT_EQ(a[i].http_handshake_us, b[i].http_handshake_us);
    EXPECT_EQ(a[i].payload, b[i].payload);
  }
}

class MmapReaderTest : public ::testing::Test {
 protected:
  void SetUp() override { write_sample(path_, 500); }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_ = "/tmp/adscope_test_mmap.adst";
};

// ---------------------------------------------------------------------------
// Differential identity against the legacy reader.

TEST_F(MmapReaderTest, MatchesLegacyReaderRecordForRecord) {
  trace::MemoryTrace legacy;
  std::uint64_t legacy_records = 0;
  {
    trace::FileTraceReader reader(path_);
    legacy_records = reader.replay(legacy);
  }
  trace::MemoryTrace mapped;
  trace::MmapTraceReader reader(path_);
  const auto mapped_records = reader.replay(mapped);

  EXPECT_EQ(mapped_records, legacy_records);
  EXPECT_EQ(reader.meta().name, "mmap-test");
  EXPECT_EQ(mapped.meta().name, legacy.meta().name);
  EXPECT_EQ(mapped.meta().http_count_hint, legacy.meta().http_count_hint);
  expect_equal_http(mapped.http(), legacy.http());
  ASSERT_EQ(mapped.tls().size(), legacy.tls().size());
  for (std::size_t i = 0; i < mapped.tls().size(); ++i) {
    EXPECT_EQ(mapped.tls()[i].timestamp_ms, legacy.tls()[i].timestamp_ms);
    EXPECT_EQ(mapped.tls()[i].bytes, legacy.tls()[i].bytes);
  }
}

TEST_F(MmapReaderTest, BatchesPreserveGlobalRecordOrder) {
  SequenceSink legacy;
  {
    trace::FileTraceReader reader(path_);
    reader.replay(legacy);
  }
  // A tiny batch size forces many flushes, including on kind switches.
  trace::MmapTraceReader::Options options;
  options.batch_records = 3;
  trace::MmapTraceReader reader(path_, options);
  SequenceBatchSink batched;
  reader.replay_batches(batched);

  EXPECT_EQ(batched.sequence, legacy.sequence);
  EXPECT_GT(batched.http_batches, 1);
  EXPECT_GT(batched.tls_batches, 1);
}

TEST_F(MmapReaderTest, ReplayIsRestartable) {
  trace::MmapTraceReader reader(path_);
  NullBatchSink first;
  NullBatchSink second;
  reader.replay_batches(first);
  reader.replay_batches(second);
  EXPECT_EQ(first.checksum, second.checksum);
  EXPECT_GT(first.checksum, 0u);
}

// ---------------------------------------------------------------------------
// The headline guarantee: zero heap allocations per record once the
// reader is warm (dictionary interned, batch buffers at capacity).

TEST_F(MmapReaderTest, WarmReplayDecodesWithZeroAllocations) {
  trace::MmapTraceReader reader(path_);
  NullBatchSink sink;
  reader.replay_batches(sink);  // warm-up: interns the dictionary

  const auto before = allocations();
  reader.replay_batches(sink);
  const auto after = allocations();
  EXPECT_EQ(after - before, 0u)
      << "warm mmap decode must not touch the heap";
  EXPECT_GT(sink.checksum, 0u);
}

// ---------------------------------------------------------------------------
// Corruption: structured failure, never UB.

TEST_F(MmapReaderTest, EveryTruncatedPrefixDecodesOrThrowsFormatError) {
  std::string bytes;
  {
    std::ifstream in(path_, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    bytes = std::move(buf).str();
  }
  std::uint64_t full_records = 0;
  {
    trace::FileTraceReader reader(path_);
    trace::MemoryTrace sink;
    full_records = reader.replay(sink);
  }

  const std::string prefix_path = "/tmp/adscope_test_mmap_prefix.adst";
  std::uint64_t throws = 0;
  for (std::size_t cut = 0; cut < bytes.size(); cut += 7) {
    {
      std::ofstream out(prefix_path, std::ios::binary | std::ios::trunc);
      out.write(bytes.data(), static_cast<std::streamsize>(cut));
    }
    // Both readers must agree: a prefix either decodes some records
    // (truncation exactly at a record boundary) or throws
    // TraceFormatError. Anything else — another exception type, a
    // crash — is a bug.
    for (const int kind : {0, 1}) {
      try {
        trace::MemoryTrace sink;
        std::uint64_t records = 0;
        if (kind == 0) {
          trace::FileTraceReader reader(prefix_path);
          records = reader.replay(sink);
        } else {
          trace::MmapTraceReader reader(prefix_path);
          records = reader.replay(sink);
        }
        EXPECT_LE(records, full_records);
      } catch (const trace::TraceFormatError&) {
        ++throws;  // structured failure: expected for most cuts
      }
    }
  }
  EXPECT_GT(throws, 0u);
  std::remove(prefix_path.c_str());
}

TEST(MmapReaderCorruption, DictionaryIdOutOfRangeThrows) {
  // Hand-crafted v2 stream (also exercises no-hint version compat):
  // header + one HTTP record whose host references dictionary id 7
  // when nothing has been defined.
  std::ostringstream out;
  out.write(trace::kTraceMagic, sizeof(trace::kTraceMagic));
  trace::write_varint(out, trace::kTraceVersionNoHints);
  trace::write_string(out, "bad-dict");  // meta name
  trace::write_varint(out, 0);           // start
  trace::write_varint(out, 0);           // duration
  trace::write_varint(out, 1);           // subscribers
  trace::write_varint(out, 1);           // uplink
  trace::write_varint(out, 1);           // tag kHttp
  trace::write_varint(out, 42);          // timestamp
  trace::write_varint(out, 1);           // client_ip
  trace::write_varint(out, 2);           // server_ip
  trace::write_varint(out, 80);          // port
  trace::write_varint(out, 200);         // status
  trace::write_varint(out, 7);           // host dictionary id: OUT OF RANGE

  const std::string path = "/tmp/adscope_test_mmap_dict.adst";
  {
    std::ofstream file(path, std::ios::binary | std::ios::trunc);
    const auto bytes = out.str();
    file.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  for (const int kind : {0, 1}) {
    try {
      trace::MemoryTrace sink;
      if (kind == 0) {
        trace::FileTraceReader reader(path);
        reader.replay(sink);
      } else {
        trace::MmapTraceReader reader(path);
        reader.replay(sink);
      }
      FAIL() << "out-of-range dictionary id must throw";
    } catch (const trace::TraceFormatError& error) {
      EXPECT_NE(std::string(error.what()).find("out of range"),
                std::string::npos)
          << error.what();
    }
  }
  std::remove(path.c_str());
}

TEST(MmapReaderCorruption, VersionTwoFilesStillReadable) {
  std::ostringstream out;
  out.write(trace::kTraceMagic, sizeof(trace::kTraceMagic));
  trace::write_varint(out, trace::kTraceVersionNoHints);
  trace::write_string(out, "v2-file");
  trace::write_varint(out, 100);  // start
  trace::write_varint(out, 200);  // duration
  trace::write_varint(out, 3);    // subscribers
  trace::write_varint(out, 1);    // uplink
  trace::write_varint(out, 2);    // tag kTls
  trace::write_varint(out, 5);    // timestamp
  trace::write_varint(out, 1);    // client_ip
  trace::write_varint(out, 2);    // server_ip
  trace::write_varint(out, 443);  // port
  trace::write_varint(out, 999);  // bytes
  trace::write_varint(out, 0);    // end marker

  const std::string path = "/tmp/adscope_test_mmap_v2.adst";
  {
    std::ofstream file(path, std::ios::binary | std::ios::trunc);
    const auto bytes = out.str();
    file.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  trace::MmapTraceReader reader(path);
  EXPECT_EQ(reader.meta().name, "v2-file");
  EXPECT_EQ(reader.meta().http_count_hint, 0u);  // v2: unknown
  trace::MemoryTrace sink;
  EXPECT_EQ(reader.replay(sink), 1u);
  ASSERT_EQ(sink.tls().size(), 1u);
  EXPECT_EQ(sink.tls()[0].bytes, 999u);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Raw replay: spans concatenate back into a stream the legacy reader
// accepts, byte-identically in record content.

TEST_F(MmapReaderTest, RawReplayReproducesAValidStream) {
  class Concatenate final : public trace::MmapTraceReader::RawSink {
   public:
    void on_raw(const trace::MmapTraceReader::RawRecord& record) override {
      bytes.append(record.bytes.data(), record.bytes.size());
    }
    std::string bytes;
  };

  trace::MmapTraceReader reader(path_);
  Concatenate raw;
  const auto records = reader.replay_raw(raw);

  const std::string copy_path = "/tmp/adscope_test_mmap_raw.adst";
  {
    std::ofstream out(copy_path, std::ios::binary | std::ios::trunc);
    const auto header = reader.header_bytes();
    out.write(header.data(), static_cast<std::streamsize>(header.size()));
    out.write(raw.bytes.data(),
              static_cast<std::streamsize>(raw.bytes.size()));
    out.put('\0');  // end marker (varint kEnd)
  }

  trace::MemoryTrace original;
  {
    trace::FileTraceReader legacy(path_);
    legacy.replay(original);
  }
  trace::MemoryTrace reproduced;
  {
    trace::FileTraceReader legacy(copy_path);
    EXPECT_EQ(legacy.replay(reproduced), records);
  }
  expect_equal_http(reproduced.http(), original.http());
  EXPECT_EQ(reproduced.tls().size(), original.tls().size());
  std::remove(copy_path.c_str());
}

// ---------------------------------------------------------------------------
// View lifetime: a view stored beyond its callback is dangling by
// contract (trace/view.h). After the reader is destroyed the mapping is
// gone, so touching the stolen view dies (SIGSEGV raw, ASan report
// under sanitizers) — the documented failure mode, asserted.

#if GTEST_HAS_DEATH_TEST
TEST_F(MmapReaderTest, ViewsStoredPastCallbackDieWithTheMapping) {
  class Thief final : public trace::TraceBatchSink {
   public:
    void on_meta(const trace::TraceMeta&) override {}
    void on_http_batch(std::span<const trace::HttpTransactionView> batch)
        override {
      if (!batch.empty()) stolen = batch.front().uri;  // contract violation
    }
    void on_tls_batch(std::span<const trace::TlsFlowView>) override {}
    std::string_view stolen;
  };

  Thief thief;
  {
    trace::MmapTraceReader reader(path_);
    reader.replay_batches(thief);
  }  // reader destroyed: mapping unmapped, `stolen` dangles
  EXPECT_DEATH(
      {
        volatile char c = thief.stolen.empty() ? '\0' : thief.stolen[0];
        (void)c;
      },
      "");
}
#endif  // GTEST_HAS_DEATH_TEST

// ---------------------------------------------------------------------------
// StreamDecoder's batch surface agrees with its per-record surface.

TEST(StreamDecoderBatch, MatchesPerRecordDeliveryAcrossChunks) {
  std::ostringstream encoded;
  {
    trace::TraceEncoder encoder(encoded);
    trace::TraceMeta meta;
    meta.name = "stream-batch";
    encoder.on_meta(meta);
    for (std::uint64_t t = 0; t < 100; ++t) {
      if (t % 4 == 2) {
        encoder.on_tls(make_flow(t));
      } else {
        encoder.on_http(make_txn(t));
      }
    }
    encoder.finish();
  }
  const auto bytes = encoded.str();

  trace::MemoryTrace per_record;
  trace::StreamDecoder record_decoder(per_record);

  class Collect final : public trace::TraceBatchSink {
   public:
    void on_meta(const trace::TraceMeta& meta) override { memory.on_meta(meta); }
    void on_http_batch(std::span<const trace::HttpTransactionView> batch)
        override {
      for (const auto& view : batch) {
        memory.on_http_owned(trace::materialize(view));
        sequence.emplace_back('H', view.timestamp_ms);
      }
    }
    void on_tls_batch(std::span<const trace::TlsFlowView> batch) override {
      for (const auto& flow : batch) {
        memory.on_tls(flow);
        sequence.emplace_back('T', flow.timestamp_ms);
      }
    }
    trace::MemoryTrace memory;
    std::vector<std::pair<char, std::uint64_t>> sequence;
  };
  Collect collected;
  trace::StreamDecoder batch_decoder(collected);

  // Feed both in awkward 7-byte chunks so records straddle feeds.
  for (std::size_t i = 0; i < bytes.size(); i += 7) {
    const auto chunk = std::string_view(bytes).substr(i, 7);
    record_decoder.feed(chunk);
    batch_decoder.feed(chunk);
  }
  EXPECT_TRUE(record_decoder.finished());
  EXPECT_TRUE(batch_decoder.finished());
  EXPECT_EQ(batch_decoder.records_decoded(), record_decoder.records_decoded());
  expect_equal_http(collected.memory.http(), per_record.http());
  ASSERT_EQ(collected.memory.tls().size(), per_record.tls().size());
  // Global order preserved across kinds, not just per kind.
  for (std::size_t i = 1; i < collected.sequence.size(); ++i) {
    EXPECT_LE(collected.sequence[i - 1].second, collected.sequence[i].second);
  }
}

// ---------------------------------------------------------------------------
// >2 GiB traces: 64-bit offsets end to end. The file is written with
// holes (payload bytes never touch the disk), so it costs little real
// storage but maps and decodes as 2.2 GiB of records. Gated behind
// ADSCOPE_BIG_TRACE=1 — the CI bench-smoke job runs it; local runs skip.

TEST(MmapReaderBigTrace, SparseTraceOver2GiBDecodes) {
  if (std::getenv("ADSCOPE_BIG_TRACE") == nullptr) {
    GTEST_SKIP() << "set ADSCOPE_BIG_TRACE=1 to run the >2 GiB case";
  }
  const std::string path = "/tmp/adscope_test_big_trace.adst";
  constexpr std::uint64_t kRecords = 2200;
  constexpr std::uint64_t kPayload = 1 << 20;  // 1 MiB per record
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(trace::kTraceMagic, sizeof(trace::kTraceMagic));
    trace::write_varint(out, trace::kTraceVersionNoHints);
    trace::write_string(out, "big");
    trace::write_varint(out, 0);  // start
    trace::write_varint(out, 0);  // duration
    trace::write_varint(out, 1);  // subscribers
    trace::write_varint(out, 1);  // uplink
    for (std::uint64_t t = 0; t < kRecords; ++t) {
      trace::write_varint(out, 1);    // tag kHttp
      trace::write_varint(out, t);    // timestamp
      trace::write_varint(out, 1);    // client_ip
      trace::write_varint(out, 2);    // server_ip
      trace::write_varint(out, 80);   // port
      trace::write_varint(out, 200);  // status
      trace::write_varint(out, 0);    // host: empty
      trace::write_string(out, "/big");  // uri
      trace::write_varint(out, 0);    // referer: empty string length
      trace::write_varint(out, 0);    // user_agent id
      trace::write_varint(out, 0);    // content_type id
      trace::write_varint(out, 0);    // location: empty
      trace::write_varint(out, kPayload);  // content_length
      trace::write_varint(out, 0);    // tcp handshake
      trace::write_varint(out, 0);    // http handshake
      trace::write_varint(out, kPayload);  // payload length...
      // ...then a hole instead of a megabyte of zeros: seek forward and
      // let the filesystem materialize zero pages.
      out.seekp(static_cast<std::streamoff>(kPayload) - 1,
                std::ios_base::cur);
      out.put('\0');
    }
    trace::write_varint(out, 0);  // end marker
  }

  trace::MmapTraceReader reader(path);
  ASSERT_GT(reader.file_size(), std::uint64_t{1} << 31)
      << "test file must exceed 2 GiB to prove 64-bit offsets";

  class Count final : public trace::TraceBatchSink {
   public:
    void on_meta(const trace::TraceMeta&) override {}
    void on_http_batch(std::span<const trace::HttpTransactionView> batch)
        override {
      for (const auto& view : batch) {
        ++records;
        payload_bytes += view.payload.size();
        last_timestamp = view.timestamp_ms;
      }
    }
    void on_tls_batch(std::span<const trace::TlsFlowView>) override {}
    std::uint64_t records = 0;
    std::uint64_t payload_bytes = 0;
    std::uint64_t last_timestamp = 0;
  };
  Count count;
  EXPECT_EQ(reader.replay_batches(count), kRecords);
  EXPECT_EQ(count.records, kRecords);
  EXPECT_EQ(count.payload_bytes, kRecords * kPayload);
  EXPECT_EQ(count.last_timestamp, kRecords - 1);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace adscope
