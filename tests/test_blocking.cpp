// sim: browser-side blocking emulation — transitive suppression and the
// §4.1 profile semantics.
#include <gtest/gtest.h>

#include "sim/browser_profile.h"

namespace adscope::sim {
namespace {

class BlockingTest : public ::testing::Test {
 protected:
  static EcosystemOptions small() {
    EcosystemOptions options;
    options.publishers = 200;
    return options;
  }
  Ecosystem eco_ = Ecosystem::generate(42, small());
  GeneratedLists lists_ = generate_lists(eco_);
  PageModel model_{eco_};
};

TEST_F(BlockingTest, NoBlockerKeepsEverything) {
  NoBlocker blocker;
  util::Rng rng(1);
  const auto page = model_.build(0, rng);
  const auto emitted = apply_blocking(page, blocker);
  for (const auto flag : emitted) EXPECT_TRUE(flag);
}

TEST_F(BlockingTest, ChildrenOfBlockedRequestsSuppressed) {
  // Hand-built page: doc -> ad script -> bid -> creative.
  PageLoad page;
  page.page_url = "http://news-0.example/";
  SimRequest doc;
  doc.parent = -1;
  doc.url = page.page_url;
  doc.true_type = http::RequestType::kDocument;
  page.requests.push_back(doc);
  SimRequest script;
  script.parent = 0;
  script.url = "http://adserv.googlesim.com/ads/show.js?slot=0";
  script.true_type = http::RequestType::kScript;
  page.requests.push_back(script);
  SimRequest creative;
  creative.parent = 1;
  creative.url = "http://news-0.example/harmless.gif";  // itself unblocked
  creative.true_type = http::RequestType::kImage;
  page.requests.push_back(creative);

  AbpBlocker blocker(lists_, ListSelection{});
  const auto emitted = apply_blocking(page, blocker);
  EXPECT_TRUE(emitted[0]);
  EXPECT_FALSE(emitted[1]);  // blocked directly
  EXPECT_FALSE(emitted[2]);  // suppressed transitively
}

TEST_F(BlockingTest, AbpParanoiaBlocksMoreThanAds) {
  AbpBlocker ads(lists_, ListSelection{.easylist = true,
                                       .derivative = false,
                                       .easyprivacy = false,
                                       .acceptable_ads = true});
  AbpBlocker paranoia(lists_, ListSelection{.easylist = true,
                                            .derivative = false,
                                            .easyprivacy = true,
                                            .acceptable_ads = false});
  util::Rng rng(3);
  std::size_t kept_ads = 0;
  std::size_t kept_paranoia = 0;
  for (std::size_t site = 0; site < 60; ++site) {
    util::Rng page_rng(site);
    const auto page = model_.build(site, page_rng);
    for (const auto flag : apply_blocking(page, ads)) kept_ads += flag;
    for (const auto flag : apply_blocking(page, paranoia)) {
      kept_paranoia += flag;
    }
  }
  EXPECT_LT(kept_paranoia, kept_ads);
  (void)rng;
}

TEST_F(BlockingTest, AcceptableAdsSurviveDefaultConfig) {
  AbpBlocker default_config(lists_, ListSelection{});  // EL + AA
  AbpBlocker aa_optout(lists_, ListSelection{.easylist = true,
                                             .derivative = false,
                                             .easyprivacy = false,
                                             .acceptable_ads = false});
  PageLoad page;
  page.page_url = "http://news-0.example/";
  SimRequest doc;
  doc.parent = -1;
  doc.url = page.page_url;
  doc.true_type = http::RequestType::kDocument;
  page.requests.push_back(doc);
  SimRequest aa_ad;
  aa_ad.parent = 0;
  aa_ad.url = "http://adserv.googlesim.com/aa/creative/b1.gif";
  aa_ad.true_type = http::RequestType::kImage;
  aa_ad.intent = Intent::kAaAd;
  page.requests.push_back(aa_ad);

  EXPECT_TRUE(apply_blocking(page, default_config)[1]);
  EXPECT_FALSE(apply_blocking(page, aa_optout)[1]);
}

TEST_F(BlockingTest, GhosteryBlocksKnownThirdPartiesOnly) {
  GhosteryBlocker blocker(build_ghostery_db(eco_),
                          GhosteryDb::Selection::ads());
  PageLoad page;
  page.page_url = "http://news-0.example/";
  SimRequest first_party;
  first_party.url = "http://news-0.example/banners/self.gif";
  SimRequest known_ad;
  known_ad.url = "http://ad.doubleclick-sim.com/b.gif";
  SimRequest unknown_host;
  unknown_host.url = "http://unknown-server.test/b.gif";
  EXPECT_FALSE(blocker.blocks(first_party, page));
  EXPECT_TRUE(blocker.blocks(known_ad, page));
  EXPECT_FALSE(blocker.blocks(unknown_host, page));
}

TEST_F(BlockingTest, ModeFactoryCoversAllProfiles) {
  const BrowserMode modes[] = {
      BrowserMode::kVanilla,        BrowserMode::kAbpAds,
      BrowserMode::kAbpPrivacy,     BrowserMode::kAbpParanoia,
      BrowserMode::kGhosteryAds,    BrowserMode::kGhosteryPrivacy,
      BrowserMode::kGhosteryParanoia};
  util::Rng rng(5);
  const auto page = model_.build(0, rng);
  for (const auto mode : modes) {
    const auto blocker = make_blocker(mode, lists_, eco_);
    ASSERT_NE(blocker, nullptr) << to_string(mode);
    const auto emitted = apply_blocking(page, *blocker);
    EXPECT_EQ(emitted.size(), page.requests.size());
    EXPECT_TRUE(emitted[0]) << "main document must never be blocked";
  }
}

TEST_F(BlockingTest, ProfileNamesMatchPaper) {
  EXPECT_EQ(to_string(BrowserMode::kVanilla), "Vanilla");
  EXPECT_EQ(to_string(BrowserMode::kAbpParanoia), "AdBP-Pa");
  EXPECT_EQ(to_string(BrowserMode::kGhosteryPrivacy), "Ghostery-Pr");
}

}  // namespace
}  // namespace adscope::sim
