// pcap: export/import round trip and frame well-formedness.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "pcap/pcap.h"

namespace adscope::pcap {
namespace {

trace::HttpTransaction sample_txn(std::uint64_t t_ms = 2000) {
  trace::HttpTransaction txn;
  txn.timestamp_ms = t_ms;
  txn.client_ip = 0x0AC80005;
  txn.server_ip = 0x0A010009;
  txn.server_port = 80;
  txn.host = "news.test";
  txn.uri = "/story.html?id=7";
  txn.referer = "http://portal.test/";
  txn.user_agent = "TestAgent/1.0";
  txn.content_type = "text/html";
  txn.content_length = 1234;
  txn.status_code = 200;
  txn.tcp_handshake_us = 15'000;
  txn.http_handshake_us = 120'000;
  return txn;
}

class PcapTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = "/tmp/adscope_test.pcap";
};

TEST_F(PcapTest, GlobalHeaderIsClassicLittleEndian) {
  {
    PcapWriter writer(path_);
    writer.on_meta(trace::TraceMeta{});
  }
  std::ifstream in(path_, std::ios::binary);
  unsigned char header[24] = {};
  in.read(reinterpret_cast<char*>(header), 24);
  EXPECT_EQ(header[0], 0xD4);
  EXPECT_EQ(header[1], 0xC3);
  EXPECT_EQ(header[2], 0xB2);
  EXPECT_EQ(header[3], 0xA1);
  EXPECT_EQ(header[20], 1u);  // LINKTYPE_ETHERNET
}

TEST_F(PcapTest, HttpTransactionBecomesFourFrames) {
  PcapWriter writer(path_);
  trace::TraceMeta meta;
  meta.start_unix_s = 1'428'710'400;
  writer.on_meta(meta);
  writer.on_http(sample_txn());
  EXPECT_EQ(writer.packets_written(), 4u);
  writer.on_tls(trace::TlsFlow{});
  EXPECT_EQ(writer.packets_written(), 6u);
}

TEST_F(PcapTest, RoundTripRestoresHeadersAndTimings) {
  const auto original = sample_txn();
  {
    PcapWriter writer(path_);
    trace::TraceMeta meta;
    meta.start_unix_s = 1'428'710'400;
    writer.on_meta(meta);
    writer.on_http(original);
  }
  PcapHttpReader reader(path_);
  trace::MemoryTrace memory;
  const auto transactions = reader.replay(memory);
  ASSERT_EQ(transactions, 1u);
  ASSERT_EQ(memory.http().size(), 1u);
  const auto& txn = memory.http()[0];
  EXPECT_EQ(txn.host, original.host);
  EXPECT_EQ(txn.uri, original.uri);
  EXPECT_EQ(txn.referer, original.referer);
  EXPECT_EQ(txn.user_agent, original.user_agent);
  EXPECT_EQ(txn.status_code, original.status_code);
  EXPECT_EQ(txn.content_type, original.content_type);
  EXPECT_EQ(txn.content_length, original.content_length);
  EXPECT_EQ(txn.client_ip, original.client_ip);
  EXPECT_EQ(txn.server_ip, original.server_ip);
  // Hand-shake timings survive via the SYN exchange layout.
  EXPECT_EQ(txn.tcp_handshake_us, original.tcp_handshake_us);
  EXPECT_EQ(txn.http_handshake_us, original.http_handshake_us);
  EXPECT_EQ(reader.packets_parsed(), 4u);
  EXPECT_EQ(reader.packets_skipped(), 0u);
}

TEST_F(PcapTest, ManyTransactionsRoundTrip) {
  constexpr int kCount = 200;
  {
    PcapWriter writer(path_);
    trace::TraceMeta meta;
    meta.start_unix_s = 1'428'710'400;
    writer.on_meta(meta);
    for (int i = 0; i < kCount; ++i) {
      auto txn = sample_txn(2000 + static_cast<std::uint64_t>(i) * 250);
      txn.uri = "/obj" + std::to_string(i);
      txn.status_code = i % 7 == 0 ? 302 : 200;
      if (txn.status_code == 302) txn.location = "http://next.test/x";
      writer.on_http(txn);
    }
  }
  PcapHttpReader reader(path_);
  trace::MemoryTrace memory;
  EXPECT_EQ(reader.replay(memory), static_cast<std::uint64_t>(kCount));
  int redirects = 0;
  for (const auto& txn : memory.http()) {
    redirects += txn.status_code == 302;
    EXPECT_FALSE(txn.host.empty());
  }
  EXPECT_GT(redirects, 0);
  // Redirect Location restored.
  bool found_location = false;
  for (const auto& txn : memory.http()) {
    if (!txn.location.empty()) {
      EXPECT_EQ(txn.location, "http://next.test/x");
      found_location = true;
    }
  }
  EXPECT_TRUE(found_location);
}

TEST_F(PcapTest, TlsFlowsImportedFromSynExchange) {
  {
    PcapWriter writer(path_);
    writer.on_meta(trace::TraceMeta{});
    trace::TlsFlow flow;
    flow.timestamp_ms = 500;
    flow.client_ip = 1;
    flow.server_ip = 2;
    flow.server_port = 443;
    writer.on_tls(flow);
  }
  PcapHttpReader reader(path_);
  trace::MemoryTrace memory;
  reader.replay(memory);
  ASSERT_EQ(memory.tls().size(), 1u);
  EXPECT_EQ(memory.tls()[0].server_port, 443);
}

TEST_F(PcapTest, ForeignMagicRejected) {
  {
    std::ofstream out(path_, std::ios::binary);
    out << "NOT A PCAP FILE AT ALL......";
  }
  EXPECT_THROW(PcapHttpReader reader(path_), PcapFormatError);
}

TEST_F(PcapTest, SurvivesTruncation) {
  {
    PcapWriter writer(path_);
    writer.on_meta(trace::TraceMeta{});
    for (std::uint64_t i = 0; i < 10; ++i) {
      writer.on_http(sample_txn(1000 + i * 100));
    }
  }
  std::ifstream in(path_, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string bytes = buffer.str();
  for (std::size_t cut = 30; cut < bytes.size(); cut += 101) {
    const std::string cut_path = "/tmp/adscope_pcap_cut.pcap";
    {
      std::ofstream out(cut_path, std::ios::binary);
      out.write(bytes.data(), static_cast<std::streamsize>(cut));
    }
    try {
      PcapHttpReader reader(cut_path);
      trace::MemoryTrace memory;
      reader.replay(memory);  // partial replay or format error, no crash
    } catch (const PcapFormatError&) {
    }
    std::remove(cut_path.c_str());
  }
}

TEST_F(PcapTest, ChecksumsAreValid) {
  // Recompute the IPv4 header checksum of the first frame: a correct
  // implementation yields zero when summed over the full header.
  {
    PcapWriter writer(path_);
    writer.on_meta(trace::TraceMeta{});
    writer.on_http(sample_txn());
  }
  std::ifstream in(path_, std::ios::binary);
  in.seekg(24 + 16 + 14);  // global header + record header + ethernet
  unsigned char ip[20] = {};
  in.read(reinterpret_cast<char*>(ip), 20);
  std::uint32_t sum = 0;
  for (int i = 0; i < 20; i += 2) sum += (ip[i] << 8) | ip[i + 1];
  while (sum >> 16) sum = (sum & 0xFFFF) + (sum >> 16);
  EXPECT_EQ(sum, 0xFFFFu);
}

}  // namespace
}  // namespace adscope::pcap
