// core: study report rendering.
#include <gtest/gtest.h>

#include "core/report.h"
#include "sim/listgen.h"
#include "sim/rbn_sim.h"

namespace adscope::core {
namespace {

class ReportTest : public ::testing::Test {
 protected:
  static const sim::Ecosystem& eco() {
    static const sim::Ecosystem instance = [] {
      sim::EcosystemOptions options;
      options.publishers = 120;
      return sim::Ecosystem::generate(42, options);
    }();
    return instance;
  }

  ReportTest()
      : lists_(sim::generate_lists(eco())),
        engine_(sim::make_engine(lists_,
                                 sim::ListSelection{.easylist = true,
                                                    .derivative = true,
                                                    .easyprivacy = true,
                                                    .acceptable_ads = true})),
        study_(engine_, eco().abp_registry()) {
    sim::RbnSimulator simulator(eco(), lists_, 42);
    auto options = sim::rbn2_options(30);
    options.duration_s = 2 * 3600;
    simulator.simulate(options, study_);
    study_.finish();
  }

  sim::GeneratedLists lists_;
  adblock::FilterEngine engine_;
  TraceStudy study_;
};

TEST_F(ReportTest, TrafficSectionHasKeyNumbers) {
  const auto report = render_traffic_report(study_);
  EXPECT_NE(report.find("HTTP transactions:"), std::string::npos);
  EXPECT_NE(report.find("ad requests:"), std::string::npos);
  EXPECT_NE(report.find("EasyList:"), std::string::npos);
  EXPECT_NE(report.find("EasyPrivacy:"), std::string::npos);
  EXPECT_NE(report.find("non-intrusive:"), std::string::npos);
  EXPECT_NE(report.find("page views:"), std::string::npos);
}

TEST_F(ReportTest, InferenceSectionListsClasses) {
  const auto report = render_inference_report(study_);
  for (const char* cls : {"class A", "class B", "class C", "class D"}) {
    EXPECT_NE(report.find(cls), std::string::npos) << cls;
  }
  EXPECT_NE(report.find("likely Adblock Plus users"), std::string::npos);
}

TEST_F(ReportTest, InfrastructureSectionRanksAses) {
  const auto report =
      render_infrastructure_report(study_, eco().asn_db());
  EXPECT_NE(report.find("top ASes"), std::string::npos);
  EXPECT_NE(report.find("Google"), std::string::npos);
  EXPECT_NE(report.find("RTB regime"), std::string::npos);
}

TEST_F(ReportTest, FullReportComposesAndSkipsAsnWhenNull) {
  const auto with_asn = render_full_report(study_, &eco().asn_db());
  EXPECT_NE(with_asn.find("== traffic"), std::string::npos);
  EXPECT_NE(with_asn.find("== ad-blocker usage"), std::string::npos);
  EXPECT_NE(with_asn.find("== infrastructure"), std::string::npos);

  const auto without = render_full_report(study_);
  EXPECT_EQ(without.find("== infrastructure"), std::string::npos);
  EXPECT_NE(without.find("== traffic"), std::string::npos);
}

}  // namespace
}  // namespace adscope::core
