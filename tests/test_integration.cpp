// End-to-end integration: simulator -> trace file -> full study ->
// paper-shaped findings, validated against simulator ground truth.
#include <gtest/gtest.h>

#include <cstdio>
#include <unordered_map>

#include "core/study.h"
#include "sim/crawl_sim.h"
#include "sim/rbn_sim.h"
#include "trace/reader.h"
#include "trace/writer.h"
#include "util/hash.h"

namespace adscope {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static const sim::Ecosystem& eco() {
    static const sim::Ecosystem instance = [] {
      sim::EcosystemOptions options;
      options.publishers = 400;
      return sim::Ecosystem::generate(42, options);
    }();
    return instance;
  }
  static const sim::GeneratedLists& lists() {
    static const sim::GeneratedLists instance = sim::generate_lists(eco());
    return instance;
  }
  static const adblock::FilterEngine& engine() {
    static const adblock::FilterEngine instance = sim::make_engine(
        lists(), sim::ListSelection{.easylist = true,
                                    .derivative = true,
                                    .easyprivacy = true,
                                    .acceptable_ads = true});
    return instance;
  }
  // One shared RBN run for all assertions (expensive).
  struct Run {
    core::StudyOptions study_options;
    std::unique_ptr<core::TraceStudy> study;
    sim::RbnStats truth;
  };
  static const Run& run() {
    static const Run instance = [] {
      Run r;
      r.study_options.inference.min_requests = 300;
      r.study = std::make_unique<core::TraceStudy>(
          engine(), eco().abp_registry(), r.study_options);
      sim::RbnSimulator simulator(eco(), lists(), 42);
      auto options = sim::rbn2_options(150);
      options.duration_s = 8 * 3600;
      r.truth = simulator.simulate(options, *r.study);
      r.study->finish();
      return r;
    }();
    return instance;
  }
};

TEST_F(IntegrationTest, AdShareInPaperBallpark) {
  const auto& traffic = run().study->traffic();
  const double share = static_cast<double>(traffic.ad_requests()) /
                       static_cast<double>(traffic.requests());
  // Paper: 17-19% of requests are ads.
  EXPECT_GT(share, 0.10);
  EXPECT_LT(share, 0.30);
  // Bytes share far lower than request share (paper: 1.13% vs 17.25%).
  const double byte_share = static_cast<double>(traffic.ad_bytes()) /
                            static_cast<double>(traffic.bytes());
  EXPECT_LT(byte_share, share / 2);
}

TEST_F(IntegrationTest, ListSharesOrdered) {
  const auto& traffic = run().study->traffic();
  // Paper: EasyList 55.9% > EasyPrivacy 35.1% > non-intrusive ~9%.
  EXPECT_GT(traffic.easylist_requests(), traffic.easyprivacy_requests());
  EXPECT_GT(traffic.easyprivacy_requests(), traffic.whitelisted_requests());
  EXPECT_GT(traffic.whitelisted_requests(), 0u);
}

TEST_F(IntegrationTest, InferenceFindsAbpUsers) {
  const auto inference = run().study->inference();
  ASSERT_GT(inference.active_browsers.size(), 30u);
  // Type C exists and is a meaningful minority (paper: 22.2%).
  const double c_share = inference.abp_share();
  EXPECT_GT(c_share, 0.05);
  EXPECT_LT(c_share, 0.50);
  // Type C carries disproportionately few ad requests (paper: 6.5% of
  // ads vs 12.9% of requests).
  const auto& c = inference.classes[2];
  const double c_req_share = static_cast<double>(c.requests) /
                             static_cast<double>(inference.trace_requests);
  const double c_ad_share =
      static_cast<double>(c.ad_requests) /
      static_cast<double>(inference.trace_ad_requests);
  EXPECT_LT(c_ad_share, c_req_share);
}

TEST_F(IntegrationTest, InferencePrecisionAgainstGroundTruth) {
  const auto inference = run().study->inference();
  std::unordered_map<std::uint64_t, bool> truly_abp;
  for (const auto& browser : run().truth.truth) {
    truly_abp[util::hash_combine(util::fnv1a_u64(browser.ip),
                                 util::fnv1a(browser.user_agent))] =
        browser.blocker == sim::BlockerKind::kAdblockPlus;
  }
  std::uint64_t tp = 0;
  std::uint64_t fp = 0;
  std::uint64_t fn = 0;
  for (const auto& browser : inference.active_browsers) {
    const auto key =
        util::hash_combine(util::fnv1a_u64(browser.stats->ip),
                           util::fnv1a(browser.stats->user_agent));
    const auto it = truly_abp.find(key);
    if (it == truly_abp.end()) continue;
    const bool predicted = browser.cls == core::IndicatorClass::kC;
    tp += predicted && it->second;
    fp += predicted && !it->second;
    fn += !predicted && it->second;
  }
  ASSERT_GT(tp + fn, 10u);
  const double precision =
      static_cast<double>(tp) / static_cast<double>(tp + fp);
  const double recall = static_cast<double>(tp) / static_cast<double>(tp + fn);
  // The two-indicator method should be a decent detector on active
  // users. Recall is bounded by the subscription schedule: ABP users
  // whose lists don't soft-expire inside the 8 h window never produce
  // indicator 2 and land in class D (the paper's own blind spot).
  EXPECT_GT(precision, 0.6) << "tp=" << tp << " fp=" << fp;
  EXPECT_GT(recall, 0.35) << "tp=" << tp << " fn=" << fn;
}

TEST_F(IntegrationTest, WhitelistAccuracyFindingHolds) {
  const auto& wl = run().study->whitelist();
  ASSERT_GT(wl.whitelisted(), 0u);
  // §7.3: a substantial share of whitelisted requests would NOT have
  // been blacklisted (the gstatic-style over-general rules).
  const double match_blacklist =
      static_cast<double>(wl.whitelisted_would_block()) /
      static_cast<double>(wl.whitelisted());
  EXPECT_GT(match_blacklist, 0.2);
  EXPECT_LT(match_blacklist, 0.95);
}

TEST_F(IntegrationTest, RtbSignalPresent) {
  const auto& rtb = run().study->rtb();
  EXPECT_GT(rtb.ad_share_in_rtb_regime(),
            3.0 * rtb.non_ad_share_in_rtb_regime());
  // Exchanges dominate the RTB regime.
  const auto hosts = rtb.rtb_hosts(5);
  ASSERT_FALSE(hosts.empty());
  EXPECT_TRUE(hosts[0].domain.find("sim") != std::string::npos);
}

TEST_F(IntegrationTest, AbpHouseholdShareConsistent) {
  const auto& users = run().study->users();
  // Detected ABP households must not exceed the simulated ones. With
  // the subscription schedule, only lists soft-expiring inside the 8 h
  // window phone home (acceptable-ads daily, EasyList every 4 days), so
  // a sizable minority is detectable — not all.
  EXPECT_LE(users.abp_household_count(), run().truth.abp_households);
  EXPECT_GT(users.abp_household_count(),
            run().truth.abp_households / 5);
}

TEST_F(IntegrationTest, StudyThroughTraceFileMatchesDirectFeed) {
  // Pipeline determinism: file round trip must not change any headline
  // number.
  const std::string path = "/tmp/adscope_integration.adst";
  sim::RbnSimulator simulator(eco(), lists(), 99);
  auto options = sim::rbn2_options(25);
  options.duration_s = 2 * 3600;

  core::TraceStudy direct(engine(), eco().abp_registry());
  {
    trace::FileTraceWriter writer(path);
    trace::TeeSink tee;
    tee.add(writer);
    tee.add(direct);
    simulator.simulate(options, tee);
    direct.finish();
  }
  core::TraceStudy from_file(engine(), eco().abp_registry());
  trace::FileTraceReader reader(path);
  reader.replay(from_file);
  from_file.finish();

  EXPECT_EQ(direct.traffic().requests(), from_file.traffic().requests());
  EXPECT_EQ(direct.traffic().ad_requests(),
            from_file.traffic().ad_requests());
  EXPECT_EQ(direct.traffic().easylist_requests(),
            from_file.traffic().easylist_requests());
  EXPECT_EQ(direct.users().users().size(), from_file.users().users().size());
  EXPECT_EQ(direct.https_flows(), from_file.https_flows());
  std::remove(path.c_str());
}

TEST_F(IntegrationTest, CrawlClassificationRecoversBlocking) {
  // Table-1 mechanics at small scale: classify the vanilla trace, then
  // verify the AdBP-Pa trace has (almost) no EasyList hits left.
  sim::CrawlSimulator crawler(eco(), lists(), 42);
  const auto vanilla = crawler.crawl(sim::BrowserMode::kVanilla, 80);
  const auto paranoia = crawler.crawl(sim::BrowserMode::kAbpParanoia, 80);

  auto count_el = [&](const sim::CrawlResult& crawl) {
    core::TraceStudy study(engine(), eco().abp_registry());
    crawl.trace.replay(study);
    study.finish();
    return study.traffic().easylist_requests();
  };
  const auto vanilla_hits = count_el(vanilla);
  const auto paranoia_hits = count_el(paranoia);
  EXPECT_GT(vanilla_hits, 100u);
  EXPECT_LT(paranoia_hits, vanilla_hits / 20);
}

}  // namespace
}  // namespace adscope
