// util/simd — randomized differential suite.
//
// Every dispatched kernel is pitted against its scalar oracle at every
// level the host CPU can run, over fuzzed inputs that cover the nasty
// cases: embedded NULs, non-ASCII bytes, and lengths straddling the
// 16/32-byte block boundaries (15/16/17, 31/32/33/34). On top of the
// kernel layer, the suite asserts the Teddy prefilter is sound (it
// never rejects a filter that actually matches), the SIMD tokenizer is
// identical to the byte-walk oracle, and a full study renders a
// byte-identical report at every ADSCOPE_SIMD level and thread count.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <random>
#include <string>
#include <string_view>
#include <vector>

#include "adblock/engine.h"
#include "adblock/filter.h"
#include "adblock/teddy.h"
#include "adblock/token_index.h"
#include "core/parallel_study.h"
#include "core/report.h"
#include "sim/ecosystem.h"
#include "sim/listgen.h"
#include "sim/rbn_sim.h"
#include "trace/writer.h"
#include "util/hash.h"
#include "util/simd.h"
#include "util/strings.h"

namespace adscope {
namespace {

using util::simd::Level;

/// Levels the host can actually run (set_level clamps upward requests).
std::vector<Level> available_levels() {
  std::vector<Level> levels;
  for (const auto level : {Level::kScalar, Level::kSse2, Level::kAvx2}) {
    if (util::simd::set_level(level) == level) levels.push_back(level);
  }
  util::simd::set_level(util::simd::detect_level());
  return levels;
}

/// Byte soup weighted toward the interesting classes: letters both
/// cases, digits, '%', URL separators, embedded NULs, and non-ASCII.
std::string fuzz_string(std::mt19937_64& rng, std::size_t length) {
  static constexpr std::string_view kAlphabet =
      "abcdefghijklmnopqrstuvwxyz"
      "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
      "0123456789%%//??&&==::.-_~^|*@";
  std::string out(length, '\0');
  for (auto& c : out) {
    const auto roll = rng() % 100;
    if (roll < 90) {
      c = kAlphabet[rng() % kAlphabet.size()];
    } else if (roll < 95) {
      c = static_cast<char>(0x80 + rng() % 0x80);  // non-ASCII
    } else {
      c = '\0';
    }
  }
  return out;
}

/// Block-boundary lengths plus a spread of everything else.
std::vector<std::size_t> fuzz_lengths() {
  std::vector<std::size_t> lengths = {0,  1,  2,  3,  15,  16,  17,
                                      31, 32, 33, 34, 35,  63,  64,
                                      65, 66, 96, 100, 511, 512, 513};
  for (std::size_t i = 4; i < 50; i += 3) lengths.push_back(i);
  return lengths;
}

class SimdDifferentialTest : public ::testing::Test {
 protected:
  void TearDown() override {
    util::simd::set_level(util::simd::detect_level());
  }
};

TEST_F(SimdDifferentialTest, ToLowerMatchesScalarAtEveryLevel) {
  std::mt19937_64 rng(1);
  for (const auto length : fuzz_lengths()) {
    for (int round = 0; round < 8; ++round) {
      const auto input = fuzz_string(rng, length);
      std::string expected(length, '\xAA');
      util::simd::scalar::to_lower(input.data(), expected.data(), length);
      for (const auto level : available_levels()) {
        util::simd::set_level(level);
        std::string actual(length, '\x55');
        util::simd::to_lower(input.data(), actual.data(), length);
        ASSERT_EQ(actual, expected)
            << "level " << util::simd::to_string(level) << " len " << length;
      }
    }
  }
}

TEST_F(SimdDifferentialTest, IequalsMatchesScalarAtEveryLevel) {
  std::mt19937_64 rng(2);
  for (const auto length : fuzz_lengths()) {
    for (int round = 0; round < 8; ++round) {
      const auto a = fuzz_string(rng, length);
      auto b = a;
      // Three shapes: case-flipped equal, one byte off, unrelated.
      if (round % 3 == 0) {
        for (auto& c : b) {
          if (c >= 'a' && c <= 'z' && rng() % 2 == 0) {
            c = static_cast<char>(c - 0x20);
          } else if (c >= 'A' && c <= 'Z' && rng() % 2 == 0) {
            c = static_cast<char>(c + 0x20);
          }
        }
      } else if (round % 3 == 1 && length > 0) {
        b[rng() % length] = static_cast<char>(rng() % 256);
      } else {
        b = fuzz_string(rng, length);
      }
      const bool expected =
          util::simd::scalar::iequals(a.data(), b.data(), length);
      for (const auto level : available_levels()) {
        util::simd::set_level(level);
        ASSERT_EQ(util::simd::iequals(a.data(), b.data(), length), expected)
            << "level " << util::simd::to_string(level) << " len " << length;
      }
    }
  }
}

TEST_F(SimdDifferentialTest, ClassifierBitsMatchScalarAtEveryLevel) {
  std::mt19937_64 rng(3);
  for (const auto length : fuzz_lengths()) {
    const std::size_t words = (length + 63) / 64;
    for (int round = 0; round < 8; ++round) {
      const auto input = fuzz_string(rng, length);
      std::vector<std::uint64_t> expected_kw(std::max<std::size_t>(words, 1));
      std::vector<std::uint64_t> expected_sep(expected_kw.size());
      util::simd::scalar::keyword_bits(input.data(), length,
                                       expected_kw.data());
      util::simd::scalar::separator_bits(input.data(), length,
                                         expected_sep.data());
      // Scalar oracle must agree with the predicate definitions.
      for (std::size_t i = 0; i < length; ++i) {
        ASSERT_EQ((expected_kw[i / 64] >> (i % 64)) & 1,
                  adblock::is_keyword_char(input[i]) ? 1u : 0u);
        ASSERT_EQ((expected_sep[i / 64] >> (i % 64)) & 1,
                  adblock::is_separator(input[i]) ? 1u : 0u);
      }
      for (const auto level : available_levels()) {
        util::simd::set_level(level);
        // Poisoned buffers: kernels must zero the tail bits of the last
        // contracted word themselves. Only (n+63)/64 words are owned by
        // the kernel; anything beyond stays poisoned by contract.
        std::vector<std::uint64_t> actual(expected_kw.size(), ~0ULL);
        util::simd::keyword_bits(input.data(), length, actual.data());
        ASSERT_TRUE(std::equal(actual.begin(), actual.begin() + static_cast<std::ptrdiff_t>(words),
                               expected_kw.begin()))
            << "keyword_bits level " << util::simd::to_string(level)
            << " len " << length;
        std::fill(actual.begin(), actual.end(), ~0ULL);
        util::simd::separator_bits(input.data(), length, actual.data());
        ASSERT_TRUE(std::equal(actual.begin(), actual.begin() + static_cast<std::ptrdiff_t>(words),
                               expected_sep.begin()))
            << "separator_bits level " << util::simd::to_string(level)
            << " len " << length;
      }
    }
  }
}

TEST_F(SimdDifferentialTest, ContainsU64MatchesScalarAtEveryLevel) {
  std::mt19937_64 rng(4);
  for (std::size_t length = 0; length < 70; ++length) {
    std::vector<std::uint64_t> haystack(length);
    for (auto& v : haystack) v = rng() % 97;  // collisions guaranteed
    for (int round = 0; round < 16; ++round) {
      const std::uint64_t needle = rng() % 97;
      const bool expected = util::simd::scalar::contains_u64(
          haystack.data(), length, needle);
      ASSERT_EQ(expected, std::find(haystack.begin(), haystack.end(),
                                    needle) != haystack.end());
      for (const auto level : available_levels()) {
        util::simd::set_level(level);
        ASSERT_EQ(util::simd::contains_u64(haystack.data(), length, needle),
                  expected)
            << "level " << util::simd::to_string(level) << " len " << length;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Teddy.

/// Test-side mask builder over raw lowercase literals, mirroring
/// TeddyPrefilter::add, so the kernel can be exercised without filters.
struct TeddyFixture {
  util::simd::TeddyMasks masks;
  std::vector<std::pair<std::string, std::uint8_t>> literals;

  void add(std::string literal) {
    const auto bit =
        static_cast<std::uint8_t>(1U << (util::fnv1a(literal) & 7U));
    for (std::size_t j = 0; j < literal.size(); ++j) {
      const auto c = static_cast<std::uint8_t>(literal[j]);
      masks.masks[j][0][c & 15] =
          static_cast<std::uint8_t>(masks.masks[j][0][c & 15] | bit);
      masks.masks[j][1][c >> 4] =
          static_cast<std::uint8_t>(masks.masks[j][1][c >> 4] | bit);
    }
    auto& field = literal.size() == 2 ? masks.len2_buckets
                                      : masks.len3_buckets;
    field = static_cast<std::uint8_t>(field | bit);
    literals.emplace_back(std::move(literal), bit);
  }

  /// Ground truth the scan mask must be a superset of: buckets whose
  /// literal really does occur in `s`.
  std::uint8_t occurring(std::string_view s) const {
    std::uint8_t seen = 0;
    for (const auto& [literal, bit] : literals) {
      if (s.find(literal) != std::string_view::npos) {
        seen = static_cast<std::uint8_t>(seen | bit);
      }
    }
    return seen;
  }
};

TeddyFixture random_teddy(std::mt19937_64& rng) {
  static constexpr std::string_view kLiteralChars =
      "abcdefghijklmnopqrstuvwxyz0123456789%/.-_";
  TeddyFixture fixture;
  const std::size_t count = 1 + rng() % 12;
  for (std::size_t i = 0; i < count; ++i) {
    std::string literal(2 + rng() % 2, '\0');
    for (auto& c : literal) c = kLiteralChars[rng() % kLiteralChars.size()];
    fixture.add(std::move(literal));
  }
  return fixture;
}

TEST_F(SimdDifferentialTest, TeddyScanMatchesScalarAtEveryLevel) {
  std::mt19937_64 rng(5);
  for (int set = 0; set < 12; ++set) {
    const auto fixture = random_teddy(rng);
    for (const auto length : fuzz_lengths()) {
      for (int round = 0; round < 4; ++round) {
        auto input = fuzz_string(rng, length);
        // Half the rounds, plant a literal at a random position so hit
        // paths are exercised, not just the all-miss fast path.
        if (round % 2 == 1 && length >= 3) {
          const auto& lit = fixture.literals[rng() % fixture.literals.size()]
                                .first;
          if (lit.size() <= length) {
            input.replace(rng() % (length - lit.size() + 1), lit.size(), lit);
          }
        }
        const auto expected = util::simd::scalar::teddy_scan(
            fixture.masks, input.data(), input.size());
        for (const auto level : available_levels()) {
          util::simd::set_level(level);
          ASSERT_EQ(util::simd::teddy_scan(fixture.masks, input.data(),
                                           input.size()),
                    expected)
              << "level " << util::simd::to_string(level) << " len "
              << length;
        }
      }
    }
  }
}

TEST_F(SimdDifferentialTest, TeddyScanIsSupersetOfTrueOccurrences) {
  std::mt19937_64 rng(6);
  for (int set = 0; set < 16; ++set) {
    const auto fixture = random_teddy(rng);
    for (const auto length : fuzz_lengths()) {
      auto input = fuzz_string(rng, length);
      if (length >= 4) {
        const auto& lit =
            fixture.literals[rng() % fixture.literals.size()].first;
        if (lit.size() <= length) {
          input.replace(rng() % (length - lit.size() + 1), lit.size(), lit);
        }
      }
      const auto truth = fixture.occurring(input);
      for (const auto level : available_levels()) {
        util::simd::set_level(level);
        const auto scanned = util::simd::teddy_scan(fixture.masks,
                                                    input.data(),
                                                    input.size());
        ASSERT_EQ(scanned & truth, truth)
            << "teddy missed a real literal occurrence at level "
            << util::simd::to_string(level) << " len " << length;
      }
    }
  }
}

adblock::Filter parse_ok(std::string_view line) {
  auto filter = adblock::Filter::parse(line);
  EXPECT_TRUE(filter.has_value()) << "rule failed to parse: " << line;
  return *filter;
}

TEST(TeddyPrefilterTest, LeadLiteralExtraction) {
  using adblock::TeddyPrefilter;
  // First run of length >= 3 wins, '*' and '^' break runs.
  EXPECT_EQ(TeddyPrefilter::lead_literal(parse_ok("/banners/")), "/ba");
  EXPECT_EQ(TeddyPrefilter::lead_literal(parse_ok("a*click-through")), "cli");
  EXPECT_EQ(TeddyPrefilter::lead_literal(parse_ok("ad^pixel")), "pix");
  // Length-2 fallback when no run reaches 3.
  EXPECT_EQ(TeddyPrefilter::lead_literal(parse_ok("ad^b*cd")), "ad");
  // Regex rules and wildcard soup are exempt (always probed).
  EXPECT_EQ(TeddyPrefilter::lead_literal(parse_ok(R"(/banner\d+\.gif/)")),
            "");
  EXPECT_EQ(TeddyPrefilter::lead_literal(parse_ok("a*b*c")), "");
}

TEST(TeddyPrefilterTest, NeverRejectsAMatchingFilter) {
  // For every (rule, URL the rule matches): the bucket bit assigned at
  // add() time must survive the scan of that URL — the soundness
  // contract the engine's candidate skipping rests on.
  const std::pair<const char*, const char*> cases[] = {
      {"/banners/", "http://x.example/banners/a.gif"},
      {"||ads.example.com^", "http://ads.example.com/img.png"},
      {"-ad-300x250.", "http://cdn.example/img-ad-300x250.jpg"},
      {"/track*click", "http://t.example/track/b/click?id=1"},
      {"banner$image", "http://x.example/banner.gif"},
      {"|http://promo.", "http://promo.example/x"},
      {"/creative.js|", "http://static.example/creative.js"},
      {"AdServer", "http://x.example/AdServer/unit"},  // match-case superset
      {"ad^b*cd", "http://x.example/ad/b/xxcd"},       // len-2 literal
  };
  adblock::TeddyPrefilter teddy;
  std::vector<std::uint8_t> bits;
  std::vector<adblock::Filter> filters;
  for (const auto& [rule, url] : cases) {
    filters.push_back(parse_ok(rule));
    bits.push_back(teddy.add(filters.back()));
  }
  for (const auto level : available_levels()) {
    util::simd::set_level(level);
    for (std::size_t i = 0; i < filters.size(); ++i) {
      const auto request = adblock::make_request(
          cases[i].second, "http://site.example/", http::RequestType::kImage);
      ASSERT_TRUE(filters[i].matches(request))
          << "case " << i << " does not match its URL — fix the test";
      if (bits[i] == 0) continue;  // exempt: always probed
      const auto lower = util::to_lower(cases[i].second);
      EXPECT_NE(teddy.scan(lower) & bits[i], 0)
          << "teddy rejected matching rule " << cases[i].first
          << " at level " << util::simd::to_string(level);
    }
  }
  util::simd::set_level(util::simd::detect_level());
}

// ---------------------------------------------------------------------------
// Tokenizer.

TEST_F(SimdDifferentialTest, TokenizerMatchesOracleOnFuzzedUrls) {
  std::mt19937_64 rng(7);
  adblock::TokenScratch scratch;
  for (const auto length : fuzz_lengths()) {
    for (int round = 0; round < 8; ++round) {
      const auto url = util::to_lower(fuzz_string(rng, length));
      const auto expected = adblock::url_token_hashes_oracle(url);
      for (const auto level : available_levels()) {
        util::simd::set_level(level);
        ASSERT_EQ(adblock::url_token_hashes(url), expected)
            << "level " << util::simd::to_string(level) << " len " << length;
        const auto span = scratch.tokenize(url);
        ASSERT_TRUE(std::equal(span.begin(), span.end(), expected.begin(),
                               expected.end()))
            << "scratch diverged at level " << util::simd::to_string(level)
            << " len " << length;
      }
    }
  }
}

TEST_F(SimdDifferentialTest, TokenizerSpillPathMatchesOracle) {
  // > TokenScratch::kInlineCapacity distinct tokens forces the overflow
  // vector; dedup semantics must not change across the spill.
  std::string url;
  for (int i = 0; i < 130; ++i) {
    url += "tok" + std::to_string(i) + "/";
  }
  url += url;  // every token duplicated once
  const auto expected = adblock::url_token_hashes_oracle(url);
  ASSERT_GT(expected.size(), adblock::TokenScratch::kInlineCapacity);
  adblock::TokenScratch scratch;
  for (const auto level : available_levels()) {
    util::simd::set_level(level);
    ASSERT_EQ(adblock::url_token_hashes(url), expected);
    const auto span = scratch.tokenize(url);
    ASSERT_TRUE(std::equal(span.begin(), span.end(), expected.begin(),
                           expected.end()));
  }
}

// ---------------------------------------------------------------------------
// Dispatch plumbing.

TEST(SimdDispatchTest, ParseLevelAndToString) {
  EXPECT_EQ(util::simd::parse_level("off"), Level::kScalar);
  EXPECT_EQ(util::simd::parse_level("scalar"), Level::kScalar);
  EXPECT_EQ(util::simd::parse_level("sse2"), Level::kSse2);
  EXPECT_EQ(util::simd::parse_level("avx2"), Level::kAvx2);
  EXPECT_FALSE(util::simd::parse_level("avx512").has_value());
  EXPECT_FALSE(util::simd::parse_level("").has_value());
  EXPECT_STREQ(util::simd::to_string(Level::kScalar), "off");
  EXPECT_STREQ(util::simd::to_string(Level::kSse2), "sse2");
  EXPECT_STREQ(util::simd::to_string(Level::kAvx2), "avx2");
}

TEST(SimdDispatchTest, SetLevelClampsToHardware) {
  const auto best = util::simd::detect_level();
  EXPECT_EQ(util::simd::set_level(Level::kAvx2),
            std::min(Level::kAvx2, best));
  EXPECT_EQ(util::simd::set_level(Level::kScalar), Level::kScalar);
  EXPECT_EQ(util::simd::active_level(), Level::kScalar);
  EXPECT_EQ(util::simd::set_level(best), best);
  EXPECT_EQ(util::simd::active_level(), best);
}

// ---------------------------------------------------------------------------
// End to end: the full study pipeline must render byte-identical
// reports at every SIMD level, thread count, and prefilter setting.

class SimdStudyTest : public ::testing::Test {
 protected:
  static const sim::Ecosystem& eco() {
    static const sim::Ecosystem instance = [] {
      sim::EcosystemOptions options;
      options.publishers = 300;
      return sim::Ecosystem::generate(42, options);
    }();
    return instance;
  }
  static const sim::GeneratedLists& lists() {
    static const sim::GeneratedLists instance = sim::generate_lists(eco());
    return instance;
  }
  static const adblock::FilterEngine& engine() {
    static const adblock::FilterEngine instance = sim::make_engine(
        lists(), sim::ListSelection{.easylist = true,
                                    .derivative = true,
                                    .easyprivacy = true,
                                    .acceptable_ads = true});
    return instance;
  }
  static const trace::MemoryTrace& sample_trace() {
    static const trace::MemoryTrace instance = [] {
      trace::MemoryTrace memory;
      sim::RbnSimulator simulator(eco(), lists(), 42);
      auto options = sim::rbn2_options(40);
      options.duration_s = 2 * 3600;
      simulator.simulate(options, memory);
      return memory;
    }();
    return instance;
  }
  static core::StudyOptions study_options() {
    core::StudyOptions options;
    options.inference.min_requests = 200;
    return options;
  }
  static std::string run_report(std::size_t threads) {
    core::ParallelStudyOptions options;
    options.study = study_options();
    options.threads = threads;
    core::ParallelTraceStudy study(engine(), eco().abp_registry(), options);
    sample_trace().replay(study);
    study.finish();
    return core::render_full_report(study.view(), &eco().asn_db());
  }

  void TearDown() override {
    util::simd::set_level(util::simd::detect_level());
    adblock::TokenIndex::set_prefilter_enabled(true);
  }
};

TEST_F(SimdStudyTest, ReportByteIdenticalAcrossLevelsAndThreadCounts) {
  util::simd::set_level(Level::kScalar);
  const auto reference = run_report(1);
  for (const auto level : available_levels()) {
    util::simd::set_level(level);
    for (const std::size_t threads : {1u, 2u, 7u}) {
      EXPECT_EQ(run_report(threads), reference)
          << "report diverged at level " << util::simd::to_string(level)
          << ", " << threads << " threads";
    }
  }
}

TEST_F(SimdStudyTest, ReportByteIdenticalWithPrefilterDisabled) {
  adblock::TokenIndex::set_prefilter_enabled(true);
  const auto with_teddy = run_report(1);
  adblock::TokenIndex::set_prefilter_enabled(false);
  EXPECT_EQ(run_report(1), with_teddy);
}

}  // namespace
}  // namespace adscope
