// core: bounded maps, referrer map, embedded-URL extraction.
#include <gtest/gtest.h>

#include "core/bounded_map.h"
#include "core/referrer_map.h"

namespace adscope::core {
namespace {

TEST(BoundedMap, PutGetTake) {
  BoundedStringMap map(4);
  map.put("a", "1");
  EXPECT_EQ(map.get("a"), "1");
  map.put("a", "2");  // overwrite, no growth
  EXPECT_EQ(map.get("a"), "2");
  EXPECT_EQ(map.size(), 1u);
  EXPECT_EQ(map.take("a"), "2");
  EXPECT_FALSE(map.get("a").has_value());
  EXPECT_FALSE(map.take("a").has_value());
}

TEST(BoundedMap, FifoEviction) {
  BoundedStringMap map(3);
  map.put("a", "1");
  map.put("b", "2");
  map.put("c", "3");
  map.put("d", "4");  // evicts "a"
  EXPECT_FALSE(map.get("a").has_value());
  EXPECT_EQ(map.get("d"), "4");
  EXPECT_LE(map.size(), 3u);
}

TEST(BoundedMap, HardCapUnderChurn) {
  BoundedStringMap map(16);
  for (int i = 0; i < 10000; ++i) {
    map.put("key" + std::to_string(i), "v");
    ASSERT_LE(map.size(), 16u);
  }
}

TEST(ReferrerMap, ObjectPages) {
  ReferrerMap map(64);
  map.note_object("http://s.test/img.gif", "http://s.test/");
  EXPECT_EQ(map.page_of("http://s.test/img.gif"), "http://s.test/");
  EXPECT_FALSE(map.page_of("http://unknown/").has_value());
}

TEST(ReferrerMap, RedirectConsumedOnce) {
  ReferrerMap map(64);
  map.note_redirect("http://cdn.test/banner.gif", "http://s.test/");
  EXPECT_EQ(map.take_redirect_page("http://cdn.test/banner.gif"),
            "http://s.test/");
  EXPECT_FALSE(
      map.take_redirect_page("http://cdn.test/banner.gif").has_value());
}

TEST(ReferrerMap, EmbeddedPages) {
  ReferrerMap map(64);
  map.note_embedded("http://ad.test/x.gif", "http://s.test/");
  EXPECT_EQ(map.embedded_page("http://ad.test/x.gif"), "http://s.test/");
}

TEST(EmbeddedUrls, PlainUrlInQuery) {
  const auto urls =
      extract_embedded_urls("u=http://a.test/path&x=1");
  ASSERT_EQ(urls.size(), 1u);
  EXPECT_EQ(urls[0], "http://a.test/path");
}

TEST(EmbeddedUrls, PercentEncodedUrl) {
  const auto urls = extract_embedded_urls(
      "dl=http%3A%2F%2Fnews.test%2Fstory.html&z=9");
  ASSERT_GE(urls.size(), 1u);
  EXPECT_EQ(urls[0], "http://news.test/story.html");
}

TEST(EmbeddedUrls, MultipleAndHttps) {
  const auto urls = extract_embedded_urls(
      "a=http://one.test/&b=https://two.test/x");
  ASSERT_EQ(urls.size(), 2u);
  EXPECT_EQ(urls[0], "http://one.test/");
  EXPECT_EQ(urls[1], "https://two.test/x");
}

TEST(EmbeddedUrls, IgnoresNonUrls) {
  EXPECT_TRUE(extract_embedded_urls("q=httpstatus&x=http").empty());
  EXPECT_TRUE(extract_embedded_urls("").empty());
  EXPECT_TRUE(extract_embedded_urls("plain=value").empty());
}

TEST(EmbeddedUrls, StopsAtDelimiters) {
  const auto urls = extract_embedded_urls("u=http://a.test/p&next=1");
  ASSERT_EQ(urls.size(), 1u);
  EXPECT_EQ(urls[0], "http://a.test/p");
}

}  // namespace
}  // namespace adscope::core
