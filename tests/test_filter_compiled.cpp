// Differential tests for the compiled pattern programs (DESIGN.md §4.1):
// the fast-path matchers must agree byte-for-byte with the recursive
// oracle on generated URLs, and ABP golden cases pin the anchor/option
// semantics the compiler must preserve.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "adblock/engine.h"
#include "adblock/filter.h"
#include "util/rng.h"
#include "util/strings.h"

namespace adscope::adblock {
namespace {

Filter parse_ok(std::string_view line) {
  auto filter = Filter::parse(line);
  EXPECT_TRUE(filter.has_value()) << "rule failed to parse: " << line;
  return *filter;
}

// Fixture list covering every pattern class and anchor combination the
// compiler discriminates on.
const std::vector<std::string>& fixture_rules() {
  static const std::vector<std::string> rules = {
      // Plain literals (kLiteral), with and without anchors.
      "/banner/",
      "ads.js",
      "|http://track.",
      ".swf|",
      "|http://cdn.test/app.js|",
      "||ads.test^",
      "||static.ads.test/img",
      // Separator placeholders and wildcards (kGeneral).
      "/ad^",
      "^promo^",
      "/banners/*/img",
      "||ads.test^*/pixel",
      "track*.gif|",
      "*/sponsor/*",
      "^ad*cdn^",
      "||a.test^*^b*",
      "ad*",
      "*ads",
      "**",
      // Options that interact with matching.
      "banner$match-case",
      "/PROMO/$match-case",
      "||ads.test^$domain=site.test|~private.site.test",
      "@@||ads.test/ok^",
      "@@/banners/*/safe$image",
  };
  return rules;
}

std::string random_token(util::Rng& rng, std::size_t min_len,
                         std::size_t max_len) {
  static const char kAlphabet[] =
      "abcdefghijklmnopqrstuvwxyzABCDE0123456789";
  const auto length = min_len + rng.below(max_len - min_len + 1);
  std::string out;
  for (std::size_t i = 0; i < length; ++i) {
    out.push_back(kAlphabet[rng.below(sizeof(kAlphabet) - 1)]);
  }
  return out;
}

// URLs biased toward rule fragments so the interesting branches (partial
// matches, backtracking, anchors at both ends) actually execute.
std::string random_url(util::Rng& rng) {
  const auto& rules = fixture_rules();
  std::string url = rng.chance(0.5) ? "http://" : "https://";
  if (rng.chance(0.3)) url += random_token(rng, 2, 5) + ".";
  url += rng.chance(0.4) ? "ads.test" : random_token(rng, 3, 8) + ".test";
  url += "/";
  for (int piece = 0; piece < 3; ++piece) {
    if (rng.chance(0.55)) {
      auto fragment = rules[rng.below(rules.size())];
      std::erase(fragment, '@');
      std::erase(fragment, '|');
      if (rng.chance(0.5)) std::erase(fragment, '^');
      if (rng.chance(0.5)) std::erase(fragment, '*');
      const auto dollar = fragment.find('$');
      if (dollar != std::string::npos) fragment.resize(dollar);
      url += fragment;
    } else {
      url += random_token(rng, 2, 10);
    }
    if (piece < 2 && rng.chance(0.6)) url += rng.chance(0.5) ? "/" : "";
  }
  if (rng.chance(0.3)) {
    url += "?" + random_token(rng, 2, 4) + "=" + random_token(rng, 2, 8);
  }
  return url;
}

TEST(FilterCompiled, DifferentialAgainstOracleOnGeneratedUrls) {
  std::vector<Filter> filters;
  for (const auto& rule : fixture_rules()) filters.push_back(parse_ok(rule));

  util::Rng rng(424242);
  std::size_t checked = 0;
  for (int i = 0; i < 6000; ++i) {
    const auto url = random_url(rng);
    const auto url_lower = util::to_lower(url);
    for (const auto& filter : filters) {
      const bool compiled = filter.matches_url(url_lower, url);
      const bool oracle = filter.matches_url_oracle(url_lower, url);
      ASSERT_EQ(compiled, oracle)
          << "rule '" << filter.text() << "' vs url '" << url << "'";
      ++checked;
    }
  }
  EXPECT_GT(checked, 5000u * fixture_rules().size() / 2);
}

TEST(FilterCompiled, ClassificationIdenticalToBruteForce) {
  std::string list_text;
  for (const auto& rule : fixture_rules()) list_text += rule + "\n";
  FilterEngine engine;
  engine.add_list(
      FilterList::parse(list_text, ListKind::kEasyList, "fixture"));
  const auto& list = engine.list(0);

  util::Rng rng(77);
  for (int i = 0; i < 2000; ++i) {
    const auto request = make_request(
        random_url(rng),
        rng.chance(0.6) ? "http://site.test/page.html" : "",
        rng.chance(0.3) ? http::RequestType::kScript
                        : http::RequestType::kImage);
    const Filter* blocking = nullptr;
    const Filter* exception = nullptr;
    for (const auto& filter : list.filters()) {
      if (!filter.matches(request)) continue;
      if (filter.is_exception()) {
        if (exception == nullptr) exception = &filter;
      } else if (blocking == nullptr) {
        blocking = &filter;
      }
    }
    // The engine's winning filter follows token-scan order (not list
    // order), so assert the decision and that the attribution is a real
    // match of the right kind.
    const auto verdict = engine.classify(request);
    if (exception != nullptr) {
      ASSERT_EQ(verdict.decision, Decision::kWhitelisted) << request.url;
      ASSERT_NE(verdict.filter, nullptr);
      ASSERT_TRUE(verdict.filter->is_exception());
      ASSERT_TRUE(verdict.filter->matches(request)) << request.url;
    } else if (blocking != nullptr) {
      ASSERT_EQ(verdict.decision, Decision::kBlocked) << request.url;
      ASSERT_NE(verdict.filter, nullptr);
      ASSERT_FALSE(verdict.filter->is_exception());
      ASSERT_TRUE(verdict.filter->matches(request)) << request.url;
    } else {
      ASSERT_EQ(verdict.decision, Decision::kNoMatch) << request.url;
    }
  }
}

TEST(FilterCompiled, PatternClassAssignment) {
  EXPECT_EQ(parse_ok("/banner/").pattern_class(), PatternClass::kLiteral);
  EXPECT_EQ(parse_ok("|http://x.test/a|").pattern_class(),
            PatternClass::kLiteral);
  EXPECT_EQ(parse_ok("||ads.test/img").pattern_class(),
            PatternClass::kLiteral);
  EXPECT_EQ(parse_ok("||ads.test^").pattern_class(), PatternClass::kGeneral);
  EXPECT_EQ(parse_ok("/a/*/b").pattern_class(), PatternClass::kGeneral);
}

// --- ABP golden cases -------------------------------------------------

bool hits(const Filter& filter, const std::string& url,
          const std::string& page = "",
          http::RequestType type = http::RequestType::kImage) {
  const auto request = make_request(url, page, type);
  const bool compiled = filter.matches(request);
  // Every golden simultaneously checks the oracle path.
  EXPECT_EQ(filter.matches_url(request.url_lower, request.url),
            filter.matches_url_oracle(request.url_lower, request.url))
      << filter.text() << " vs " << url;
  return compiled;
}

TEST(FilterGolden, DomainAnchor) {
  const auto filter = parse_ok("||ads.test^");
  EXPECT_TRUE(hits(filter, "http://ads.test/banner.gif"));
  EXPECT_TRUE(hits(filter, "https://cdn.ads.test/banner.gif"));
  EXPECT_TRUE(hits(filter, "http://ads.test:8080/banner.gif"));
  EXPECT_FALSE(hits(filter, "http://badads.test/banner.gif"));
  EXPECT_FALSE(hits(filter, "http://ads.test.evil.example/x"));
  EXPECT_FALSE(hits(filter, "http://site.test/http://ads.test/x"));
}

TEST(FilterGolden, StartAndEndAnchors) {
  const auto start = parse_ok("|http://track.");
  EXPECT_TRUE(hits(start, "http://track.test/p.gif"));
  EXPECT_FALSE(hits(start, "https://track.test/p.gif"));
  EXPECT_FALSE(hits(start, "http://x.test/http://track.y/"));

  const auto end = parse_ok(".swf|");
  EXPECT_TRUE(hits(end, "http://x.test/movie.swf"));
  EXPECT_FALSE(hits(end, "http://x.test/movie.swf?x=1"));

  const auto both = parse_ok("|http://cdn.test/app.js|");
  EXPECT_TRUE(hits(both, "http://cdn.test/app.js"));
  EXPECT_FALSE(hits(both, "http://cdn.test/app.js2"));
}

TEST(FilterGolden, SeparatorPlaceholder) {
  const auto filter = parse_ok("/ad^");
  EXPECT_TRUE(hits(filter, "http://x.test/ad/img.gif"));
  EXPECT_TRUE(hits(filter, "http://x.test/ad?x=1"));
  // End of address counts as a separator (ABP documented rule).
  EXPECT_TRUE(hits(filter, "http://x.test/ad"));
  EXPECT_FALSE(hits(filter, "http://x.test/admin/"));
}

TEST(FilterGolden, DomainOption) {
  const auto filter =
      parse_ok("||ads.test^$domain=site.test|~private.site.test");
  EXPECT_TRUE(
      hits(filter, "http://ads.test/b.gif", "http://site.test/index.html"));
  EXPECT_TRUE(
      hits(filter, "http://ads.test/b.gif", "http://www.site.test/a.html"));
  EXPECT_FALSE(hits(filter, "http://ads.test/b.gif",
                    "http://private.site.test/a.html"));
  EXPECT_FALSE(
      hits(filter, "http://ads.test/b.gif", "http://other.test/a.html"));
  EXPECT_FALSE(hits(filter, "http://ads.test/b.gif", ""));
}

TEST(FilterGolden, MatchCase) {
  const auto filter = parse_ok("/PROMO/$match-case");
  EXPECT_TRUE(hits(filter, "http://x.test/PROMO/1.gif"));
  EXPECT_FALSE(hits(filter, "http://x.test/promo/1.gif"));

  const auto insensitive = parse_ok("/promo/");
  EXPECT_TRUE(hits(insensitive, "http://x.test/PROMO/1.gif"));
}

TEST(FilterGolden, WildcardBacktracking) {
  const auto filter = parse_ok("/banners/*/img");
  EXPECT_TRUE(hits(filter, "http://x.test/banners/a/img.png"));
  EXPECT_TRUE(hits(filter, "http://x.test/banners/a/b/img.png"));
  EXPECT_FALSE(hits(filter, "http://x.test/banners/img.png"));

  // Trailing wildcard with an end anchor must still match.
  const auto trail = parse_ok("track*.gif|");
  EXPECT_TRUE(hits(trail, "http://x.test/tracker/a.gif"));
  EXPECT_FALSE(hits(trail, "http://x.test/tracker/a.gif?x=1"));

  // A pattern ending in '^' accepts end-of-address after a wildcard.
  const auto caret_end = parse_ok("ad*^");
  EXPECT_TRUE(hits(caret_end, "http://x.test/ad"));
  EXPECT_TRUE(hits(caret_end, "http://x.test/adx/"));
}

}  // namespace
}  // namespace adscope::adblock
