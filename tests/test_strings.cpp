// util: strings, formatting, hashing, deterministic RNG.
#include <gtest/gtest.h>

#include <set>

#include "util/format.h"
#include "util/hash.h"
#include "util/rng.h"
#include "util/strings.h"

namespace adscope::util {
namespace {

TEST(Strings, ToLower) {
  EXPECT_EQ(to_lower("AbC-12%Z"), "abc-12%z");
  EXPECT_EQ(to_lower(""), "");
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(starts_with("http://x", "http"));
  EXPECT_FALSE(starts_with("ttp://x", "http"));
  EXPECT_FALSE(starts_with("ht", "http"));
  EXPECT_TRUE(ends_with("a.gif", ".gif"));
  EXPECT_FALSE(ends_with("gif", ".gif"));
}

TEST(Strings, CaseInsensitiveEquals) {
  EXPECT_TRUE(iequals("Content-Type", "content-type"));
  EXPECT_FALSE(iequals("Content-Type", "content-typ"));
  EXPECT_TRUE(iequals("", ""));
}

TEST(Strings, CaseInsensitiveFind) {
  EXPECT_EQ(ifind("Hello World", "world"), 6u);
  EXPECT_EQ(ifind("Hello", "xyz"), std::string_view::npos);
  EXPECT_EQ(ifind("abc", ""), 0u);
  EXPECT_EQ(ifind("ab", "abc"), std::string_view::npos);
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  a b \r\n"), "a b");
  EXPECT_EQ(trim("\t\t"), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(Strings, Split) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
  EXPECT_EQ(split_nonempty("a,,b,", ',').size(), 2u);
  EXPECT_EQ(split("", ',').size(), 1u);
}

TEST(Strings, ParseU64) {
  std::uint64_t value = 0;
  EXPECT_TRUE(parse_u64("0", value));
  EXPECT_EQ(value, 0u);
  EXPECT_TRUE(parse_u64("18446744073709551615", value));
  EXPECT_EQ(value, UINT64_MAX);
  EXPECT_FALSE(parse_u64("18446744073709551616", value));  // overflow
  EXPECT_FALSE(parse_u64("", value));
  EXPECT_FALSE(parse_u64("12a", value));
  EXPECT_FALSE(parse_u64("-1", value));
}

TEST(Format, Percent) {
  EXPECT_EQ(percent(0.123), "12.3%");
  EXPECT_EQ(percent(0.12345, 2), "12.35%");
  EXPECT_EQ(percent(0.0, 0), "0%");
}

TEST(Format, HumanBytes) {
  EXPECT_EQ(human_bytes(500), "500B");
  EXPECT_EQ(human_bytes(18.8e12), "18.8T");
  EXPECT_EQ(human_bytes(1.5e6), "1.5M");
}

TEST(Format, HumanCount) {
  EXPECT_EQ(human_count(131.95e6), "131.95M");
  EXPECT_EQ(human_count(19700, 1), "19.7K");
  EXPECT_EQ(human_count(42), "42");
}

TEST(Hash, Deterministic) {
  EXPECT_EQ(fnv1a("abc"), fnv1a("abc"));
  EXPECT_NE(fnv1a("abc"), fnv1a("abd"));
  EXPECT_NE(fnv1a_u64(1), fnv1a_u64(2));
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
}

TEST(Rng, SeedDeterminism) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
  Rng c(8);
  EXPECT_NE(Rng(7).next(), c.next());
}

TEST(Rng, ForkIndependence) {
  Rng parent(1);
  Rng child_a = parent.fork(1);
  Rng child_b = parent.fork(2);
  EXPECT_NE(child_a.next(), child_b.next());
}

TEST(Rng, BelowBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
  EXPECT_EQ(rng.below(0), 0u);
  EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ExponentialMean) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / 20000.0, 5.0, 0.25);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  double sum = 0;
  double sq = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / kN;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(sq / kN - mean * mean, 4.0, 0.3);
}

TEST(Rng, PoissonMean) {
  Rng rng(17);
  for (const double lambda : {0.5, 3.0, 50.0}) {
    double sum = 0;
    for (int i = 0; i < 5000; ++i) sum += rng.poisson(lambda);
    EXPECT_NEAR(sum / 5000.0, lambda, lambda * 0.1 + 0.1) << lambda;
  }
  EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, WeightedRespectsWeights) {
  Rng rng(19);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 8000; ++i) ++counts[rng.weighted(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_GT(counts[2], counts[0]);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.5);
}

TEST(Zipf, RankOrdering) {
  ZipfSampler zipf(100, 1.0);
  Rng rng(23);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf.sample(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[90]);
}

class ZipfExponents : public ::testing::TestWithParam<double> {};

TEST_P(ZipfExponents, SamplesInRange) {
  ZipfSampler zipf(50, GetParam());
  Rng rng(29);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_LT(zipf.sample(rng), 50u);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ZipfExponents,
                         ::testing::Values(0.5, 0.8, 1.0, 1.2, 2.0));

}  // namespace
}  // namespace adscope::util
