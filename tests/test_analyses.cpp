// core: TrafficStats, WhitelistAnalysis, InfraAnalysis, RtbAnalysis over
// hand-built classified objects.
#include <gtest/gtest.h>

#include "core/infra_analysis.h"
#include "core/rtb_analysis.h"
#include "core/traffic_stats.h"
#include "core/whitelist_analysis.h"

namespace adscope::core {
namespace {

ClassifiedObject make_object(adblock::Decision decision,
                             adblock::ListKind kind, std::uint64_t bytes,
                             const std::string& mime,
                             std::uint64_t t_s = 0,
                             netdb::IpV4 server = 10) {
  ClassifiedObject object;
  object.object.url = *http::Url::parse("http://host.test/object");
  object.object.content_type = mime;
  object.object.content_length = bytes;
  object.object.timestamp_ms = t_s * 1000;
  object.object.server_ip = server;
  object.verdict.decision = decision;
  object.verdict.list_kind = kind;
  return object;
}

TEST(TrafficStatsTest, TotalsAndListAttribution) {
  TrafficStats stats(7200, 3600);
  stats.add(make_object(adblock::Decision::kNoMatch,
                        adblock::ListKind::kCustom, 1000, "text/html"));
  stats.add(make_object(adblock::Decision::kBlocked,
                        adblock::ListKind::kEasyList, 43, "image/gif"));
  stats.add(make_object(adblock::Decision::kBlocked,
                        adblock::ListKind::kEasyListDerivative, 43,
                        "image/gif"));
  stats.add(make_object(adblock::Decision::kBlocked,
                        adblock::ListKind::kEasyPrivacy, 43, "image/gif"));
  stats.add(make_object(adblock::Decision::kWhitelisted,
                        adblock::ListKind::kAcceptableAds, 500, "image/jpeg"));

  EXPECT_EQ(stats.requests(), 5u);
  EXPECT_EQ(stats.ad_requests(), 4u);
  EXPECT_EQ(stats.easylist_requests(), 2u);  // EL + derivative
  EXPECT_EQ(stats.easyprivacy_requests(), 1u);
  EXPECT_EQ(stats.whitelisted_requests(), 1u);
  EXPECT_EQ(stats.ad_bytes(), 43u * 3 + 500u);
  EXPECT_EQ(stats.bytes(), 1000u + 43u * 3 + 500u);
}

TEST(TrafficStatsTest, TimeSeriesBinning) {
  TrafficStats stats(7200, 3600);
  stats.add(make_object(adblock::Decision::kBlocked,
                        adblock::ListKind::kEasyList, 10, "image/gif", 100));
  stats.add(make_object(adblock::Decision::kNoMatch,
                        adblock::ListKind::kCustom, 10, "text/html", 4000));
  const auto& series = stats.series();
  EXPECT_DOUBLE_EQ(series.value(TrafficStats::kEasyListReqs, 0), 1.0);
  EXPECT_DOUBLE_EQ(series.value(TrafficStats::kNonAdReqs, 1), 1.0);
  EXPECT_DOUBLE_EQ(series.value(TrafficStats::kTotalReqs, 0), 1.0);
}

TEST(TrafficStatsTest, ContentTableSortedByAdRequests) {
  TrafficStats stats(3600);
  for (int i = 0; i < 3; ++i) {
    stats.add(make_object(adblock::Decision::kBlocked,
                          adblock::ListKind::kEasyList, 43, "image/gif"));
  }
  stats.add(make_object(adblock::Decision::kBlocked,
                        adblock::ListKind::kEasyList, 10000, "text/html"));
  stats.add(make_object(adblock::Decision::kNoMatch,
                        adblock::ListKind::kCustom, 10, ""));
  const auto rows = stats.content_table();
  ASSERT_GE(rows.size(), 3u);
  EXPECT_EQ(rows[0].first, "image/gif");
  EXPECT_EQ(rows[0].second.ad_requests, 3u);
  // Absent Content-Type shows as "-".
  bool has_dash = false;
  for (const auto& [mime, row] : rows) has_dash |= mime == "-";
  EXPECT_TRUE(has_dash);
}

TEST(TrafficStatsTest, SizeHistogramsByClass) {
  TrafficStats stats(3600);
  stats.add(make_object(adblock::Decision::kBlocked,
                        adblock::ListKind::kEasyList, 43, "image/gif"));
  stats.add(make_object(adblock::Decision::kNoMatch,
                        adblock::ListKind::kCustom, 2'000'000, "video/mp4"));
  EXPECT_EQ(stats.ad_sizes(http::ContentClass::kImage).total(), 1.0);
  EXPECT_EQ(stats.non_ad_sizes(http::ContentClass::kVideo).total(), 1.0);
  EXPECT_EQ(stats.ad_sizes(http::ContentClass::kVideo).total(), 0.0);
}

ClassifiedObject whitelist_object(bool would_block,
                                  adblock::ListKind blocked_kind,
                                  const std::string& page_host,
                                  const std::string& host) {
  ClassifiedObject object;
  object.object.url = *http::Url::parse("http://" + host + "/x.gif");
  object.page_host = page_host;
  object.page_url = page_host.empty() ? "" : "http://" + page_host + "/";
  object.verdict.decision = adblock::Decision::kWhitelisted;
  object.verdict.list_kind = adblock::ListKind::kAcceptableAds;
  if (would_block) {
    static const auto filter = *adblock::Filter::parse("/x.gif");
    object.verdict.blocked_by = &filter;
    object.verdict.blocked_by_kind = blocked_kind;
    object.verdict.blocked_by_list = 0;
  }
  return object;
}

ClassifiedObject blocked_object(adblock::ListKind kind,
                                const std::string& page_host,
                                const std::string& host) {
  ClassifiedObject object;
  object.object.url = *http::Url::parse("http://" + host + "/y.gif");
  object.page_host = page_host;
  object.verdict.decision = adblock::Decision::kBlocked;
  object.verdict.list_kind = kind;
  return object;
}

TEST(WhitelistAnalysisTest, AccuracyCounters) {
  WhitelistAnalysis analysis;
  analysis.add(whitelist_object(true, adblock::ListKind::kEasyList,
                                "news.test", "adnet.test"));
  analysis.add(whitelist_object(true, adblock::ListKind::kEasyPrivacy,
                                "news.test", "tracker.test"));
  analysis.add(whitelist_object(false, adblock::ListKind::kCustom,
                                "news.test", "gstatic.test"));
  analysis.add(blocked_object(adblock::ListKind::kEasyList, "news.test",
                              "adnet.test"));

  EXPECT_EQ(analysis.ad_requests(), 4u);
  EXPECT_EQ(analysis.whitelisted(), 3u);
  EXPECT_EQ(analysis.whitelisted_would_block(), 2u);
  EXPECT_EQ(analysis.whitelisted_would_block_ep(), 1u);
}

TEST(WhitelistAnalysisTest, Beneficiaries) {
  WhitelistAnalysis analysis;
  for (int i = 0; i < 10; ++i) {
    analysis.add(blocked_object(adblock::ListKind::kEasyList, "news.test",
                                "adnet.test"));
  }
  for (int i = 0; i < 5; ++i) {
    analysis.add(whitelist_object(true, adblock::ListKind::kEasyList,
                                  "news.test", "adnet.test"));
  }
  const auto publishers = analysis.publishers(5);
  ASSERT_EQ(publishers.size(), 1u);
  EXPECT_EQ(publishers[0].fqdn, "news.test");
  EXPECT_EQ(publishers[0].blacklisted, 10u);
  EXPECT_EQ(publishers[0].whitelisted, 5u);
  EXPECT_NEAR(publishers[0].whitelisted_share(), 5.0 / 15.0, 1e-9);
  EXPECT_TRUE(analysis.publishers(50).empty());  // threshold respected
  const auto tech = analysis.ad_tech(5);
  ASSERT_EQ(tech.size(), 1u);
  EXPECT_EQ(tech[0].fqdn, "adnet.test");
}

TEST(InfraAnalysisTest, ServerAccounting) {
  InfraAnalysis infra;
  // Server 10: mixed (2 ads of 4 objects). Server 20: ads only.
  infra.add(make_object(adblock::Decision::kBlocked,
                        adblock::ListKind::kEasyList, 10, "image/gif", 0, 10));
  infra.add(make_object(adblock::Decision::kBlocked,
                        adblock::ListKind::kEasyPrivacy, 10, "image/gif", 0,
                        10));
  infra.add(make_object(adblock::Decision::kNoMatch,
                        adblock::ListKind::kCustom, 10, "text/html", 0, 10));
  infra.add(make_object(adblock::Decision::kNoMatch,
                        adblock::ListKind::kCustom, 10, "text/html", 0, 10));
  for (int i = 0; i < 5; ++i) {
    infra.add(make_object(adblock::Decision::kBlocked,
                          adblock::ListKind::kEasyList, 10, "image/gif", 0,
                          20));
  }
  EXPECT_EQ(infra.server_count(), 2u);
  EXPECT_EQ(infra.ad_serving_server_count(), 2u);
  EXPECT_EQ(infra.easylist_server_count(), 2u);
  EXPECT_EQ(infra.easyprivacy_server_count(), 1u);
  EXPECT_EQ(infra.both_lists_server_count(), 1u);
  const auto dedicated = infra.dedicated_ad_servers(0.9);
  EXPECT_EQ(dedicated.servers, 1u);
  EXPECT_EQ(dedicated.ads, 5u);
  EXPECT_NEAR(dedicated.ad_share_of_trace, 5.0 / 7.0, 1e-9);
  const auto busiest = infra.busiest_ad_server();
  EXPECT_EQ(busiest.first, 20u);
  EXPECT_EQ(busiest.second, 5u);
}

TEST(InfraAnalysisTest, AsRanking) {
  InfraAnalysis infra;
  netdb::AsnDatabase db;
  db.add_route(*netdb::parse_prefix("0.0.0.10/32"), 100);
  db.add_route(*netdb::parse_prefix("0.0.0.20/32"), 200);
  db.set_as_info(100, "MixedAS");
  db.set_as_info(200, "AdAS");
  infra.add(make_object(adblock::Decision::kBlocked,
                        adblock::ListKind::kEasyList, 10, "image/gif", 0, 10));
  infra.add(make_object(adblock::Decision::kNoMatch,
                        adblock::ListKind::kCustom, 10, "text/html", 0, 10));
  for (int i = 0; i < 3; ++i) {
    infra.add(make_object(adblock::Decision::kBlocked,
                          adblock::ListKind::kEasyList, 10, "image/gif", 0,
                          20));
  }
  const auto rows = infra.as_ranking(db, 10);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].name, "AdAS");
  EXPECT_EQ(rows[0].ad_requests, 3u);
  EXPECT_EQ(rows[1].name, "MixedAS");
  EXPECT_EQ(rows[1].total_requests, 2u);
}

TEST(RtbAnalysisTest, DeltaSeparation) {
  RtbAnalysis rtb;
  auto with_timing = [](bool ad, std::uint32_t tcp_us, std::uint32_t http_us) {
    auto object = make_object(
        ad ? adblock::Decision::kBlocked : adblock::Decision::kNoMatch,
        ad ? adblock::ListKind::kEasyList : adblock::ListKind::kCustom, 10,
        "image/gif");
    object.object.tcp_handshake_us = tcp_us;
    object.object.http_handshake_us = http_us;
    return object;
  };
  // Ads: 120 ms auction delay; non-ads: 1 ms.
  for (int i = 0; i < 10; ++i) {
    rtb.add(with_timing(true, 20'000, 140'000));
    rtb.add(with_timing(false, 20'000, 21'000));
  }
  EXPECT_DOUBLE_EQ(rtb.ad_share_in_rtb_regime(), 1.0);
  EXPECT_DOUBLE_EQ(rtb.non_ad_share_in_rtb_regime(), 0.0);
  const auto& hist = rtb.ad_delta_ms();
  const auto mode = hist.bin_center(hist.mode_bin());
  EXPECT_GT(mode, 60.0);
  EXPECT_LT(mode, 250.0);
  const auto hosts = rtb.rtb_hosts(5);
  ASSERT_EQ(hosts.size(), 1u);
  EXPECT_EQ(hosts[0].domain, "host.test");
  EXPECT_DOUBLE_EQ(hosts[0].share, 1.0);
}

TEST(RtbAnalysisTest, MissingResponseSkipped) {
  RtbAnalysis rtb;
  auto object = make_object(adblock::Decision::kNoMatch,
                            adblock::ListKind::kCustom, 10, "text/html");
  object.object.http_handshake_us = 0;
  rtb.add(object);
  EXPECT_EQ(rtb.non_ad_delta_ms().total(), 0.0);
}

}  // namespace
}  // namespace adscope::core
