// §10 payload mode end to end: payload generation, type hints, hidden
// text-ad detection.
#include <gtest/gtest.h>

#include <cstdio>

#include "core/classifier.h"
#include "sim/emitter.h"
#include "sim/listgen.h"
#include "trace/reader.h"
#include "trace/writer.h"

namespace adscope {
namespace {

class PayloadModeTest : public ::testing::Test {
 protected:
  static sim::EcosystemOptions small() {
    sim::EcosystemOptions options;
    options.publishers = 150;
    return options;
  }
  PayloadModeTest()
      : eco_(sim::Ecosystem::generate(42, small())),
        lists_(sim::generate_lists(eco_)),
        engine_(sim::make_engine(lists_,
                                 sim::ListSelection{.easylist = true,
                                                    .derivative = true,
                                                    .easyprivacy = true,
                                                    .acceptable_ads = true})) {
  }

  sim::PageModel payload_model() {
    sim::PageModelOptions options;
    options.generate_payloads = true;
    return sim::PageModel(eco_, options);
  }

  sim::Ecosystem eco_;
  sim::GeneratedLists lists_;
  adblock::FilterEngine engine_;
};

TEST_F(PayloadModeTest, DocumentsCarryTheirStructure) {
  auto model = payload_model();
  util::Rng rng(1);
  int with_text_ads = 0;
  for (std::size_t site = 0; site < 60; ++site) {
    const auto page = model.build(site, rng);
    const auto& payload = page.requests[0].payload;
    ASSERT_FALSE(payload.empty());
    // Every direct HTTP child with a markup type is referenced.
    for (std::size_t i = 1; i < page.requests.size(); ++i) {
      const auto& request = page.requests[i];
      if (request.parent != 0 || request.https) continue;
      if (request.true_type == http::RequestType::kImage ||
          request.true_type == http::RequestType::kScript) {
        EXPECT_NE(payload.find(request.url), std::string::npos)
            << request.url;
      }
    }
    with_text_ads += page.hidden_text_ads > 0;
  }
  EXPECT_GT(with_text_ads, 5);
}

TEST_F(PayloadModeTest, HeaderOnlyModeIgnoresPayloads) {
  sim::PageModel plain(eco_);  // payloads off by default
  util::Rng rng(2);
  const auto page = plain.build(0, rng);
  EXPECT_TRUE(page.requests[0].payload.empty());
  EXPECT_EQ(page.hidden_text_ads, 0);
}

TEST_F(PayloadModeTest, ClassifierUsesTypeHints) {
  // A script with a lying Content-Type and no extension: header-only
  // analysis types it wrong; payload mode recovers the <script> tag.
  analyzer::WebObject document;
  document.url = *http::Url::parse("http://site.test/index.html");
  document.content_type = "text/html";
  document.payload =
      "<html><body><script src=\"http://site.test/loader?v=2\"></script>"
      "</body></html>";
  document.client_ip = 1;
  document.user_agent = "ua";

  analyzer::WebObject script;
  script.url = *http::Url::parse("http://site.test/loader?v=2");
  script.referer = "http://site.test/index.html";
  script.content_type = "text/html";  // the lie
  script.client_ip = 1;
  script.user_agent = "ua";

  auto run = [&](bool use_payloads) {
    core::ClassifierOptions options;
    options.use_payloads = use_payloads;
    core::TraceClassifier classifier(engine_, options);
    http::RequestType script_type = http::RequestType::kOther;
    classifier.set_callback([&](const core::ClassifiedObject& object) {
      if (object.object.url.spec() == "http://site.test/loader?v=2") {
        script_type = object.type;
      }
    });
    classifier.process(document);
    classifier.process(script);
    classifier.flush();
    return script_type;
  };

  EXPECT_EQ(run(false), http::RequestType::kSubdocument);  // fooled
  EXPECT_EQ(run(true), http::RequestType::kScript);        // recovered
}

TEST_F(PayloadModeTest, HiddenTextAdsDetected) {
  auto model = payload_model();
  sim::TrafficEmitter emitter(eco_);
  sim::NoBlocker no_blocker;
  util::Rng rng(3);

  trace::MemoryTrace memory;
  memory.on_meta(trace::TraceMeta{});
  int truth_hidden = 0;
  for (std::size_t p = 0; p < 150; ++p) {
    const auto page = model.build(p % 150, rng);
    truth_hidden += page.hidden_text_ads;
    const auto emitted = apply_blocking(page, no_blocker);
    emitter.emit_page(page, emitted, p * 5'000, eco_.client_ip(0), "ua",
                      memory, rng);
  }
  ASSERT_GT(truth_hidden, 20);

  core::ClassifierOptions options;
  options.use_payloads = true;
  analyzer::HttpExtractor extractor;
  core::TraceClassifier classifier(engine_, options);
  classifier.set_callback([](const core::ClassifiedObject&) {});
  extractor.set_object_callback(
      [&](const analyzer::WebObject& object) { classifier.process(object); });
  for (const auto& txn : memory.http()) extractor.on_http(txn);
  classifier.flush();

  // HTTPS landing pages are invisible, so detection is a lower bound —
  // but it must recover the bulk of the embedded ads.
  EXPECT_GT(classifier.hidden_text_ads(),
            static_cast<std::uint64_t>(truth_hidden) * 6 / 10);
  EXPECT_LE(classifier.hidden_text_ads(),
            static_cast<std::uint64_t>(truth_hidden));
  EXPECT_GT(classifier.payload_type_hints_used(), 100u);
}

TEST_F(PayloadModeTest, PayloadSurvivesTraceRoundTrip) {
  auto model = payload_model();
  util::Rng rng(4);
  const auto page = model.build(1, rng);

  trace::HttpTransaction txn;
  txn.host = "site.test";
  txn.uri = "/";
  txn.payload = page.requests[0].payload;
  {
    trace::FileTraceWriter writer("/tmp/adscope_payload.adst");
    writer.on_meta(trace::TraceMeta{});
    writer.on_http(txn);
  }
  trace::FileTraceReader reader("/tmp/adscope_payload.adst");
  trace::MemoryTrace memory;
  reader.replay(memory);
  ASSERT_EQ(memory.http().size(), 1u);
  EXPECT_EQ(memory.http()[0].payload, page.requests[0].payload);
  std::remove("/tmp/adscope_payload.adst");
}

}  // namespace
}  // namespace adscope
