#include "util/strings.h"

#include <cstdint>
#include <limits>

#include "util/simd.h"

namespace adscope::util {

std::string to_lower(std::string_view s) {
  std::string out;
  out.resize(s.size());
  simd::to_lower(s.data(), out.data(), s.size());
  return out;
}

void to_lower_into(std::string_view s, std::string& out) {
  out.resize(s.size());
  simd::to_lower(s.data(), out.data(), s.size());
}

bool starts_with(std::string_view s, std::string_view prefix) noexcept {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) noexcept {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool iequals(std::string_view a, std::string_view b) noexcept {
  return a.size() == b.size() && simd::iequals(a.data(), b.data(), a.size());
}

std::size_t ifind(std::string_view haystack, std::string_view needle) noexcept {
  if (needle.empty()) return 0;
  if (needle.size() > haystack.size()) return std::string_view::npos;
  const std::size_t last = haystack.size() - needle.size();
  for (std::size_t i = 0; i <= last; ++i) {
    std::size_t j = 0;
    while (j < needle.size() &&
           ascii_lower(haystack[i + j]) == ascii_lower(needle[j])) {
      ++j;
    }
    if (j == needle.size()) return i;
  }
  return std::string_view::npos;
}

namespace {
constexpr bool is_space(char c) noexcept {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n';
}
}  // namespace

std::string_view trim(std::string_view s) noexcept {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && is_space(s[b])) ++b;
  while (e > b && is_space(s[e - 1])) --e;
  return s.substr(b, e - b);
}

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string_view> split_nonempty(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  for (auto piece : split(s, sep)) {
    if (!piece.empty()) out.push_back(piece);
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool parse_u64(std::string_view s, std::uint64_t& out) noexcept {
  if (s.empty()) return false;
  std::uint64_t value = 0;
  for (char c : s) {
    if (!is_ascii_digit(c)) return false;
    const auto digit = static_cast<std::uint64_t>(c - '0');
    if (value > (std::numeric_limits<std::uint64_t>::max() - digit) / 10) {
      return false;
    }
    value = value * 10 + digit;
  }
  out = value;
  return true;
}

}  // namespace adscope::util
