// Bounded multi-producer blocking queue with backpressure.
//
// The sharded analysis path (core::ParallelTraceStudy) feeds one queue
// per shard worker: the trace-reading thread blocks in push() when a
// shard falls behind, so memory stays bounded no matter how large the
// trace is. close() releases consumers once the producer is done;
// pop() then drains the remaining records and finally reports
// exhaustion.
//
// Locking is expressed through util::Mutex/CondVar so the Clang
// thread-safety analysis proves every access to the guarded state is
// under mutex_ (wait predicates are explicit loops for the same reason).
#pragma once

#include <cstddef>
#include <deque>
#include <utility>

#include "util/annotations.h"

namespace adscope::util {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks while the queue is full (backpressure). Returns false when
  /// the queue was closed (the item is dropped).
  bool push(T item) {
    {
      MutexLock lock(mutex_);
      while (items_.size() >= capacity_ && !closed_) not_full_.wait(mutex_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and
  /// drained. Returns false only on exhaustion.
  bool pop(T& out) {
    {
      MutexLock lock(mutex_);
      while (items_.empty() && !closed_) not_empty_.wait(mutex_);
      if (items_.empty()) return false;  // closed and drained
      out = std::move(items_.front());
      items_.pop_front();
    }
    not_full_.notify_one();
    return true;
  }

  /// No further push() succeeds; consumers drain what remains.
  void close() {
    {
      MutexLock lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  std::size_t capacity() const noexcept { return capacity_; }

  std::size_t size() const {
    MutexLock lock(mutex_);
    return items_.size();
  }

 private:
  const std::size_t capacity_;
  mutable Mutex mutex_;
  CondVar not_empty_;
  CondVar not_full_;
  std::deque<T> items_ ADSCOPE_GUARDED_BY(mutex_);
  bool closed_ ADSCOPE_GUARDED_BY(mutex_) = false;
};

}  // namespace adscope::util
