// Bounded multi-producer blocking queue with backpressure.
//
// The sharded analysis path (core::ParallelTraceStudy) feeds one queue
// per shard worker: the trace-reading thread blocks in push() when a
// shard falls behind, so memory stays bounded no matter how large the
// trace is. close() releases consumers once the producer is done;
// pop() then drains the remaining records and finally reports
// exhaustion.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

namespace adscope::util {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks while the queue is full (backpressure). Returns false when
  /// the queue was closed (the item is dropped).
  bool push(T item) {
    std::unique_lock lock(mutex_);
    not_full_.wait(lock,
                   [this] { return items_.size() < capacity_ || closed_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and
  /// drained. Returns false only on exhaustion.
  bool pop(T& out) {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [this] { return !items_.empty() || closed_; });
    if (items_.empty()) return false;  // closed and drained
    out = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  /// No further push() succeeds; consumers drain what remains.
  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  std::size_t capacity() const noexcept { return capacity_; }

  std::size_t size() const {
    std::lock_guard lock(mutex_);
    return items_.size();
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace adscope::util
