#include "util/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <system_error>

namespace adscope::util {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

Fd make_socket(int domain) {
  const int fd = ::socket(domain, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  return Fd(fd);
}

}  // namespace

void Fd::reset() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool wait_readable(int fd, int timeout_ms) {
  struct pollfd pfd {};
  pfd.fd = fd;
  pfd.events = POLLIN;
  for (;;) {
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw_errno("poll");
    }
    return ready > 0;
  }
}

bool send_all(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const auto n = ::send(fd, data.data() + sent, data.size() - sent,
                          MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE || errno == ECONNRESET) return false;
      throw_errno("send");
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

std::size_t recv_some(int fd, char* out, std::size_t max) {
  for (;;) {
    const auto n = ::recv(fd, out, max, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == ECONNRESET) return 0;  // treat like peer close
      throw_errno("recv");
    }
    return static_cast<std::size_t>(n);
  }
}

ListenSocket ListenSocket::tcp(std::uint16_t port, bool loopback_only) {
  Fd fd = make_socket(AF_INET);
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = loopback_only ? htonl(INADDR_LOOPBACK) : INADDR_ANY;
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    throw_errno("bind");
  }
  if (::listen(fd.get(), SOMAXCONN) < 0) throw_errno("listen");
  // Recover the port the kernel picked for port == 0.
  socklen_t len = sizeof(addr);
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    throw_errno("getsockname");
  }
  return ListenSocket(std::move(fd), ntohs(addr.sin_port), {});
}

ListenSocket ListenSocket::unix_path(const std::string& path) {
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path)) {
    throw std::invalid_argument("unix socket path too long: " + path);
  }
  Fd fd = make_socket(AF_UNIX);
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ::unlink(path.c_str());
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    throw_errno("bind");
  }
  if (::listen(fd.get(), SOMAXCONN) < 0) throw_errno("listen");
  return ListenSocket(std::move(fd), 0, path);
}

ListenSocket::~ListenSocket() {
  if (!path_.empty() && fd_.valid()) ::unlink(path_.c_str());
}

Fd ListenSocket::accept(int timeout_ms) {
  if (!wait_readable(fd_.get(), timeout_ms)) return Fd();
  const int client = ::accept(fd_.get(), nullptr, nullptr);
  if (client < 0) {
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK ||
        errno == ECONNABORTED) {
      return Fd();
    }
    throw_errno("accept");
  }
  return Fd(client);
}

Fd ListenSocket::connect() const {
  return path_.empty() ? connect_tcp("127.0.0.1", port_) : connect_unix(path_);
}

Fd connect_tcp(const std::string& host, std::uint16_t port) {
  Fd fd = make_socket(AF_INET);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw std::invalid_argument("connect_tcp: not an IPv4 address: " + host);
  }
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    throw_errno("connect");
  }
  return fd;
}

Fd connect_unix(const std::string& path) {
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path)) {
    throw std::invalid_argument("unix socket path too long: " + path);
  }
  Fd fd = make_socket(AF_UNIX);
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    throw_errno("connect");
  }
  return fd;
}

}  // namespace adscope::util
