#include "util/format.h"

#include <array>
#include <cmath>
#include <cstdio>

namespace adscope::util {

std::string fixed(double value, int decimals) {
  std::array<char, 64> buf{};
  std::snprintf(buf.data(), buf.size(), "%.*f", decimals, value);
  return std::string(buf.data());
}

std::string percent(double fraction, int decimals) {
  return fixed(fraction * 100.0, decimals) + "%";
}

namespace {
std::string with_suffix(double value, const char* suffix, int decimals) {
  return fixed(value, decimals) + suffix;
}
}  // namespace

std::string human_bytes(double bytes) {
  constexpr double kKilo = 1000.0;
  if (bytes >= kKilo * kKilo * kKilo * kKilo) {
    return with_suffix(bytes / (kKilo * kKilo * kKilo * kKilo), "T", 1);
  }
  if (bytes >= kKilo * kKilo * kKilo) {
    return with_suffix(bytes / (kKilo * kKilo * kKilo), "G", 1);
  }
  if (bytes >= kKilo * kKilo) {
    return with_suffix(bytes / (kKilo * kKilo), "M", 1);
  }
  if (bytes >= kKilo) {
    return with_suffix(bytes / kKilo, "K", 1);
  }
  return with_suffix(bytes, "B", 0);
}

std::string human_count(double count, int decimals) {
  constexpr double kKilo = 1000.0;
  if (count >= kKilo * kKilo * kKilo) {
    return with_suffix(count / (kKilo * kKilo * kKilo), "B", decimals);
  }
  if (count >= kKilo * kKilo) {
    return with_suffix(count / (kKilo * kKilo), "M", decimals);
  }
  if (count >= kKilo) {
    return with_suffix(count / kKilo, "K", decimals);
  }
  return fixed(count, count == std::floor(count) ? 0 : decimals);
}

}  // namespace adscope::util
