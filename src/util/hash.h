// FNV-1a hashing for strings and small keys.
//
// Used by the filter engine's token index and the user index; chosen for
// determinism across platforms (std::hash makes no such promise).
#pragma once

#include <cstdint>
#include <string_view>

namespace adscope::util {

constexpr std::uint64_t kFnvOffset = 0xCBF29CE484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001B3ULL;

constexpr std::uint64_t fnv1a(std::string_view s,
                              std::uint64_t seed = kFnvOffset) noexcept {
  std::uint64_t h = seed;
  for (char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= kFnvPrime;
  }
  return h;
}

constexpr std::uint64_t fnv1a_u64(std::uint64_t value,
                                  std::uint64_t seed = kFnvOffset) noexcept {
  std::uint64_t h = seed;
  for (int i = 0; i < 8; ++i) {
    h ^= (value >> (i * 8)) & 0xFFU;
    h *= kFnvPrime;
  }
  return h;
}

/// Combine two hashes (boost-style).
constexpr std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) noexcept {
  return a ^ (b + 0x9E3779B97F4A7C15ULL + (a << 12) + (a >> 4));
}

}  // namespace adscope::util
