#include "util/thread_pool.h"

namespace adscope::util {

std::size_t resolve_thread_count(std::size_t requested) noexcept {
  if (requested > 0) return requested;
  const auto hw = static_cast<std::size_t>(std::thread::hardware_concurrency());
  return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(std::size_t threads) {
  const auto count = resolve_thread_count(threads);
  workers_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (auto& worker : workers_) worker.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  auto future = packaged.get_future();
  {
    MutexLock lock(mutex_);
    tasks_.push_back(std::move(packaged));
  }
  wake_.notify_one();
  return future;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      MutexLock lock(mutex_);
      while (!stopping_ && tasks_.empty()) wake_.wait(mutex_);
      if (tasks_.empty()) return;  // stopping and drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

}  // namespace adscope::util
