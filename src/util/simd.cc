#include "util/simd.h"

#include <atomic>
#include <cstdlib>
#include <mutex>

#if defined(__x86_64__) || (defined(__i386__) && defined(__SSE2__))
#define ADSCOPE_SIMD_X86 1
#include <immintrin.h>
#endif

namespace adscope::util::simd {

// ---------------------------------------------------------------------------
// Scalar reference kernels. These define the semantics; every vector
// variant below must be bit-identical (tests/test_simd.cpp fuzzes that).

namespace {

constexpr bool scalar_is_keyword(char c) noexcept {
  return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '%';
}

constexpr bool scalar_is_separator(char c) noexcept {
  return !((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
           (c >= '0' && c <= '9') || c == '_' || c == '-' || c == '.' ||
           c == '%');
}

template <bool (*Pred)(char)>
void scalar_bits(const char* s, std::size_t n, std::uint64_t* bits) noexcept {
  for (std::size_t w = 0; w * 64 < n; ++w) {
    const std::size_t limit = n - w * 64 < 64 ? n - w * 64 : 64;
    std::uint64_t word = 0;
    for (std::size_t b = 0; b < limit; ++b) {
      word |= static_cast<std::uint64_t>(Pred(s[w * 64 + b])) << b;
    }
    bits[w] = word;
  }
}

}  // namespace

namespace scalar {

void to_lower(const char* src, char* dst, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    const char c = src[i];
    dst[i] = (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
  }
}

bool iequals(const char* a, const char* b, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    const char ca = a[i];
    const char cb = b[i];
    const char la =
        (ca >= 'A' && ca <= 'Z') ? static_cast<char>(ca + 0x20) : ca;
    const char lb =
        (cb >= 'A' && cb <= 'Z') ? static_cast<char>(cb + 0x20) : cb;
    if (la != lb) return false;
  }
  return true;
}

void keyword_bits(const char* s, std::size_t n, std::uint64_t* bits) noexcept {
  scalar_bits<scalar_is_keyword>(s, n, bits);
}

void separator_bits(const char* s, std::size_t n,
                    std::uint64_t* bits) noexcept {
  scalar_bits<scalar_is_separator>(s, n, bits);
}

bool contains_u64(const std::uint64_t* a, std::size_t n,
                  std::uint64_t value) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] == value) return true;
  }
  return false;
}

std::uint8_t teddy_scan(const TeddyMasks& m, const char* s,
                        std::size_t n) noexcept {
  const auto want =
      static_cast<std::uint8_t>(m.len2_buckets | m.len3_buckets);
  if (want == 0 || n < 2) return 0;
  const auto at = [&m, s](int j, std::size_t i) noexcept -> std::uint8_t {
    const auto c = static_cast<std::uint8_t>(s[i]);
    return static_cast<std::uint8_t>(m.masks[j][0][c & 15] &
                                     m.masks[j][1][c >> 4]);
  };
  std::uint8_t seen = 0;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const auto c01 = static_cast<std::uint8_t>(at(0, i) & at(1, i + 1));
    if (c01 == 0) continue;
    seen = static_cast<std::uint8_t>(seen | (c01 & m.len2_buckets));
    if (i + 2 < n) {
      seen = static_cast<std::uint8_t>(seen | (c01 & at(2, i + 2)));
    }
    if (seen == want) break;  // sound: seen only ever grows toward want
  }
  return seen;
}

}  // namespace scalar

// ---------------------------------------------------------------------------
// x86 vector kernels. The SSE2 variants need no function attribute
// (SSE2 is baseline on x86-64); the AVX2 variants carry target("avx2")
// so this translation unit builds without -mavx2 and the instruction
// set stays a pure runtime decision.

#ifdef ADSCOPE_SIMD_X86

namespace {

// --- SSE2 -----------------------------------------------------------------

inline __m128i sse2_in_range(__m128i v, char lo, char hi) noexcept {
  // lo <= c <= hi via signed compares: bytes >= 0x80 are negative and
  // fail the lower bound, matching the scalar predicates on signed char.
  return _mm_and_si128(
      _mm_cmpgt_epi8(v, _mm_set1_epi8(static_cast<char>(lo - 1))),
      _mm_cmpgt_epi8(_mm_set1_epi8(static_cast<char>(hi + 1)), v));
}

inline __m128i sse2_lower_block(__m128i v) noexcept {
  return _mm_or_si128(
      v, _mm_and_si128(sse2_in_range(v, 'A', 'Z'), _mm_set1_epi8(0x20)));
}

void to_lower_sse2(const char* src, char* dst, std::size_t n) noexcept {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     sse2_lower_block(v));
  }
  scalar::to_lower(src + i, dst + i, n - i);
}

bool iequals_sse2(const char* a, const char* b, std::size_t n) noexcept {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i va =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    const __m128i eq =
        _mm_cmpeq_epi8(sse2_lower_block(va), sse2_lower_block(vb));
    if (_mm_movemask_epi8(eq) != 0xFFFF) return false;
  }
  return scalar::iequals(a + i, b + i, n - i);
}

inline __m128i sse2_keyword_mask(__m128i v) noexcept {
  return _mm_or_si128(
      _mm_or_si128(sse2_in_range(v, 'a', 'z'), sse2_in_range(v, '0', '9')),
      _mm_cmpeq_epi8(v, _mm_set1_epi8('%')));
}

inline __m128i sse2_separator_mask(__m128i v) noexcept {
  __m128i good = _mm_or_si128(sse2_in_range(v, 'a', 'z'),
                              sse2_in_range(v, 'A', 'Z'));
  good = _mm_or_si128(good, sse2_in_range(v, '0', '9'));
  good = _mm_or_si128(good, _mm_cmpeq_epi8(v, _mm_set1_epi8('_')));
  good = _mm_or_si128(good, _mm_cmpeq_epi8(v, _mm_set1_epi8('-')));
  good = _mm_or_si128(good, _mm_cmpeq_epi8(v, _mm_set1_epi8('.')));
  good = _mm_or_si128(good, _mm_cmpeq_epi8(v, _mm_set1_epi8('%')));
  return _mm_xor_si128(good, _mm_set1_epi8(-1));
}

template <__m128i (*Classify)(__m128i) noexcept,
          void (*ScalarTail)(const char*, std::size_t,
                             std::uint64_t*) noexcept>
void bits_sse2(const char* s, std::size_t n, std::uint64_t* bits) noexcept {
  std::size_t i = 0;
  std::size_t w = 0;
  for (; i + 64 <= n; i += 64, ++w) {
    std::uint64_t word = 0;
    for (int q = 0; q < 4; ++q) {
      const __m128i v =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(s + i + 16 * q));
      word |= static_cast<std::uint64_t>(static_cast<std::uint32_t>(
                  static_cast<unsigned>(_mm_movemask_epi8(Classify(v)))))
              << (16 * q);
    }
    bits[w] = word;
  }
  if (i < n) ScalarTail(s + i, n - i, bits + w);
}

void keyword_bits_sse2(const char* s, std::size_t n,
                       std::uint64_t* bits) noexcept {
  bits_sse2<sse2_keyword_mask, scalar::keyword_bits>(s, n, bits);
}

void separator_bits_sse2(const char* s, std::size_t n,
                         std::uint64_t* bits) noexcept {
  bits_sse2<sse2_separator_mask, scalar::separator_bits>(s, n, bits);
}

bool contains_u64_sse2(const std::uint64_t* a, std::size_t n,
                       std::uint64_t value) noexcept {
  const __m128i needle = _mm_set1_epi64x(static_cast<long long>(value));
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    // SSE2 has no 64-bit compare: AND the 32-bit halves' equality.
    const __m128i eq32 = _mm_cmpeq_epi32(v, needle);
    const __m128i eq64 = _mm_and_si128(
        eq32, _mm_shuffle_epi32(eq32, _MM_SHUFFLE(2, 3, 0, 1)));
    if (_mm_movemask_epi8(eq64) != 0) return true;
  }
  return i < n && a[i] == value;
}

// SSE2 predates pshufb, so the nibble-table shotgun scan has no 16-byte
// variant here; the SSE2 kernel table points teddy_scan at the scalar
// walk (the prefilter is consulted lazily, so this stays a net win).

// --- AVX2 -----------------------------------------------------------------

__attribute__((target("avx2"))) inline __m256i avx2_in_range(
    __m256i v, char lo, char hi) noexcept {
  return _mm256_and_si256(
      _mm256_cmpgt_epi8(v, _mm256_set1_epi8(static_cast<char>(lo - 1))),
      _mm256_cmpgt_epi8(_mm256_set1_epi8(static_cast<char>(hi + 1)), v));
}

__attribute__((target("avx2"))) inline __m256i avx2_lower_block(
    __m256i v) noexcept {
  return _mm256_or_si256(
      v,
      _mm256_and_si256(avx2_in_range(v, 'A', 'Z'), _mm256_set1_epi8(0x20)));
}

__attribute__((target("avx2"))) void to_lower_avx2(const char* src, char* dst,
                                                   std::size_t n) noexcept {
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        avx2_lower_block(v));
  }
  if (i + 16 <= n) {  // one 16-byte step shrinks the scalar tail
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     sse2_lower_block(v));
    i += 16;
  }
  scalar::to_lower(src + i, dst + i, n - i);
}

__attribute__((target("avx2"))) bool iequals_avx2(const char* a, const char* b,
                                                  std::size_t n) noexcept {
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i eq =
        _mm256_cmpeq_epi8(avx2_lower_block(va), avx2_lower_block(vb));
    if (_mm256_movemask_epi8(eq) != -1) return false;
  }
  return iequals_sse2(a + i, b + i, n - i);
}

__attribute__((target("avx2"))) inline __m256i avx2_keyword_mask(
    __m256i v) noexcept {
  return _mm256_or_si256(
      _mm256_or_si256(avx2_in_range(v, 'a', 'z'),
                      avx2_in_range(v, '0', '9')),
      _mm256_cmpeq_epi8(v, _mm256_set1_epi8('%')));
}

__attribute__((target("avx2"))) inline __m256i avx2_separator_mask(
    __m256i v) noexcept {
  __m256i good = _mm256_or_si256(avx2_in_range(v, 'a', 'z'),
                                 avx2_in_range(v, 'A', 'Z'));
  good = _mm256_or_si256(good, avx2_in_range(v, '0', '9'));
  good = _mm256_or_si256(good, _mm256_cmpeq_epi8(v, _mm256_set1_epi8('_')));
  good = _mm256_or_si256(good, _mm256_cmpeq_epi8(v, _mm256_set1_epi8('-')));
  good = _mm256_or_si256(good, _mm256_cmpeq_epi8(v, _mm256_set1_epi8('.')));
  good = _mm256_or_si256(good, _mm256_cmpeq_epi8(v, _mm256_set1_epi8('%')));
  return _mm256_xor_si256(good, _mm256_set1_epi8(-1));
}

__attribute__((target("avx2"))) void keyword_bits_avx2(
    const char* s, std::size_t n, std::uint64_t* bits) noexcept {
  std::size_t i = 0;
  std::size_t w = 0;
  for (; i + 64 <= n; i += 64, ++w) {
    const __m256i v0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s + i));
    const __m256i v1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s + i + 32));
    const auto m0 = static_cast<std::uint32_t>(
        _mm256_movemask_epi8(avx2_keyword_mask(v0)));
    const auto m1 = static_cast<std::uint32_t>(
        _mm256_movemask_epi8(avx2_keyword_mask(v1)));
    bits[w] = static_cast<std::uint64_t>(m0) |
              (static_cast<std::uint64_t>(m1) << 32);
  }
  if (i < n) keyword_bits_sse2(s + i, n - i, bits + w);
}

__attribute__((target("avx2"))) void separator_bits_avx2(
    const char* s, std::size_t n, std::uint64_t* bits) noexcept {
  std::size_t i = 0;
  std::size_t w = 0;
  for (; i + 64 <= n; i += 64, ++w) {
    const __m256i v0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s + i));
    const __m256i v1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s + i + 32));
    const auto m0 = static_cast<std::uint32_t>(
        _mm256_movemask_epi8(avx2_separator_mask(v0)));
    const auto m1 = static_cast<std::uint32_t>(
        _mm256_movemask_epi8(avx2_separator_mask(v1)));
    bits[w] = static_cast<std::uint64_t>(m0) |
              (static_cast<std::uint64_t>(m1) << 32);
  }
  if (i < n) separator_bits_sse2(s + i, n - i, bits + w);
}

__attribute__((target("avx2"))) bool contains_u64_avx2(
    const std::uint64_t* a, std::size_t n, std::uint64_t value) noexcept {
  const __m256i needle = _mm256_set1_epi64x(static_cast<long long>(value));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i eq = _mm256_cmpeq_epi64(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)), needle);
    if (!_mm256_testz_si256(eq, eq)) return true;
  }
  return scalar::contains_u64(a + i, n - i, value);
}

/// OR-reduce the 32 bytes of `v` into one byte.
__attribute__((target("avx2"))) inline std::uint8_t avx2_or_reduce(
    __m256i v) noexcept {
  __m128i x = _mm_or_si128(_mm256_castsi256_si128(v),
                           _mm256_extracti128_si256(v, 1));
  x = _mm_or_si128(x, _mm_srli_si128(x, 8));
  x = _mm_or_si128(x, _mm_srli_si128(x, 4));
  x = _mm_or_si128(x, _mm_srli_si128(x, 2));
  x = _mm_or_si128(x, _mm_srli_si128(x, 1));
  return static_cast<std::uint8_t>(_mm_cvtsi128_si32(x));
}

/// Broadcast one 16-byte nibble table across both lanes. (A named
/// function, not a lambda: GCC lambdas do not inherit the enclosing
/// function's target("avx2") attribute.)
__attribute__((target("avx2"))) inline __m256i avx2_teddy_table(
    const TeddyMasks& m, int j, int half) noexcept {
  return _mm256_broadcastsi128_si256(_mm_loadu_si128(
      reinterpret_cast<const __m128i*>(m.masks[j][half])));
}

/// Per-byte bucket candidates: shuffle the lo/hi nibble tables and AND.
__attribute__((target("avx2"))) inline __m256i avx2_teddy_classify(
    __m256i lo, __m256i hi, __m256i v) noexcept {
  const __m256i nib = _mm256_set1_epi8(0x0F);
  const __m256i ln = _mm256_and_si256(v, nib);
  const __m256i hn = _mm256_and_si256(_mm256_srli_epi16(v, 4), nib);
  return _mm256_and_si256(_mm256_shuffle_epi8(lo, ln),
                          _mm256_shuffle_epi8(hi, hn));
}

__attribute__((target("avx2"))) std::uint8_t teddy_scan_avx2(
    const TeddyMasks& m, const char* s, std::size_t n) noexcept {
  const auto want =
      static_cast<std::uint8_t>(m.len2_buckets | m.len3_buckets);
  if (want == 0 || n < 2) return 0;
  std::uint8_t seen = 0;
  std::size_t i = 0;
  // Vector main loop: positions i..i+31 need bytes up to s[i+33], so it
  // runs while i+34 <= n; the straggler positions finish on the scalar
  // walk below (identical semantics — asserted by the differential
  // tests).
  if (n >= 34) {
    const __m256i lo0 = avx2_teddy_table(m, 0, 0);
    const __m256i hi0 = avx2_teddy_table(m, 0, 1);
    const __m256i lo1 = avx2_teddy_table(m, 1, 0);
    const __m256i hi1 = avx2_teddy_table(m, 1, 1);
    const __m256i lo2 = avx2_teddy_table(m, 2, 0);
    const __m256i hi2 = avx2_teddy_table(m, 2, 1);
    __m256i acc01 = _mm256_setzero_si256();
    __m256i acc012 = _mm256_setzero_si256();
    for (; i + 34 <= n; i += 32) {
      const __m256i v0 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s + i));
      const __m256i v1 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s + i + 1));
      const __m256i c01 =
          _mm256_and_si256(avx2_teddy_classify(lo0, hi0, v0),
                           avx2_teddy_classify(lo1, hi1, v1));
      // Cheap skip: URL chunks rarely contain any lead-pair hit.
      if (_mm256_testz_si256(c01, c01)) continue;
      const __m256i v2 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s + i + 2));
      acc01 = _mm256_or_si256(acc01, c01);
      acc012 = _mm256_or_si256(
          acc012, _mm256_and_si256(c01, avx2_teddy_classify(lo2, hi2, v2)));
    }
    seen = static_cast<std::uint8_t>(
        (avx2_or_reduce(acc01) & m.len2_buckets) | avx2_or_reduce(acc012));
  }
  // Scalar straggler walk over positions [i, n).
  const auto at = [&m, s](int j, std::size_t k) noexcept -> std::uint8_t {
    const auto c = static_cast<std::uint8_t>(s[k]);
    return static_cast<std::uint8_t>(m.masks[j][0][c & 15] &
                                     m.masks[j][1][c >> 4]);
  };
  for (; i + 1 < n; ++i) {
    const auto c01 = static_cast<std::uint8_t>(at(0, i) & at(1, i + 1));
    if (c01 == 0) continue;
    seen = static_cast<std::uint8_t>(seen | (c01 & m.len2_buckets));
    if (i + 2 < n) {
      seen = static_cast<std::uint8_t>(seen | (c01 & at(2, i + 2)));
    }
  }
  return seen;
}

}  // namespace

#endif  // ADSCOPE_SIMD_X86

// ---------------------------------------------------------------------------
// Dispatch: one function-pointer table per level, an atomic pointer to
// the active one, resolved once (hardware probe + ADSCOPE_SIMD) on first
// use. Kernel calls load the pointer relaxed — a plain mov on x86.

namespace {

struct KernelTable {
  void (*to_lower)(const char*, char*, std::size_t) noexcept;
  bool (*iequals)(const char*, const char*, std::size_t) noexcept;
  void (*keyword_bits)(const char*, std::size_t, std::uint64_t*) noexcept;
  void (*separator_bits)(const char*, std::size_t, std::uint64_t*) noexcept;
  bool (*contains_u64)(const std::uint64_t*, std::size_t,
                       std::uint64_t) noexcept;
  std::uint8_t (*teddy_scan)(const TeddyMasks&, const char*,
                             std::size_t) noexcept;
  Level level;
};

constexpr KernelTable kScalarTable = {
    scalar::to_lower,     scalar::iequals,      scalar::keyword_bits,
    scalar::separator_bits, scalar::contains_u64, scalar::teddy_scan,
    Level::kScalar,
};

#ifdef ADSCOPE_SIMD_X86
constexpr KernelTable kSse2Table = {
    to_lower_sse2,      iequals_sse2,      keyword_bits_sse2,
    separator_bits_sse2, contains_u64_sse2,
    scalar::teddy_scan,  // no pshufb before SSSE3
    Level::kSse2,
};

constexpr KernelTable kAvx2Table = {
    to_lower_avx2,      iequals_avx2,      keyword_bits_avx2,
    separator_bits_avx2, contains_u64_avx2, teddy_scan_avx2,
    Level::kAvx2,
};
#endif

const KernelTable* table_for(Level level) noexcept {
#ifdef ADSCOPE_SIMD_X86
  switch (level) {
    case Level::kScalar: return &kScalarTable;
    case Level::kSse2: return &kSse2Table;
    case Level::kAvx2: return &kAvx2Table;
  }
#else
  (void)level;
#endif
  return &kScalarTable;
}

std::atomic<const KernelTable*> g_table{nullptr};
std::atomic<bool> g_env_forced{false};
std::once_flag g_init_once;

void init_table() {
  Level level = detect_level();
  if (const char* env = std::getenv("ADSCOPE_SIMD");
      env != nullptr && *env != '\0') {
    if (const auto forced = parse_level(env);
        forced.has_value() && *forced < level) {
      level = *forced;
      g_env_forced.store(true, std::memory_order_relaxed);
    }
  }
  g_table.store(table_for(level), std::memory_order_release);
}

const KernelTable& table() noexcept {
  const KernelTable* t = g_table.load(std::memory_order_acquire);
  if (t == nullptr) {
    std::call_once(g_init_once, init_table);
    t = g_table.load(std::memory_order_acquire);
  }
  return *t;
}

}  // namespace

Level detect_level() noexcept {
#ifdef ADSCOPE_SIMD_X86
  return __builtin_cpu_supports("avx2") ? Level::kAvx2 : Level::kSse2;
#else
  return Level::kScalar;
#endif
}

Level active_level() noexcept { return table().level; }

bool level_forced_by_env() noexcept {
  (void)table();  // ensure the env was consulted
  return g_env_forced.load(std::memory_order_relaxed);
}

Level set_level(Level level) noexcept {
  if (level > detect_level()) level = detect_level();
  std::call_once(g_init_once, init_table);  // keep first-use semantics sane
  g_table.store(table_for(level), std::memory_order_release);
  return level;
}

std::optional<Level> parse_level(std::string_view text) noexcept {
  if (text == "off" || text == "scalar") return Level::kScalar;
  if (text == "sse2") return Level::kSse2;
  if (text == "avx2") return Level::kAvx2;
  return std::nullopt;
}

const char* to_string(Level level) noexcept {
  switch (level) {
    case Level::kScalar: return "off";
    case Level::kSse2: return "sse2";
    case Level::kAvx2: return "avx2";
  }
  return "off";
}

void to_lower(const char* src, char* dst, std::size_t n) noexcept {
  table().to_lower(src, dst, n);
}

bool iequals(const char* a, const char* b, std::size_t n) noexcept {
  return table().iequals(a, b, n);
}

void keyword_bits(const char* s, std::size_t n, std::uint64_t* bits) noexcept {
  table().keyword_bits(s, n, bits);
}

void separator_bits(const char* s, std::size_t n,
                    std::uint64_t* bits) noexcept {
  table().separator_bits(s, n, bits);
}

bool contains_u64(const std::uint64_t* a, std::size_t n,
                  std::uint64_t value) noexcept {
  return table().contains_u64(a, n, value);
}

std::uint8_t teddy_scan(const TeddyMasks& masks, const char* s,
                        std::size_t n) noexcept {
  return table().teddy_scan(masks, s, n);
}

}  // namespace adscope::util::simd
