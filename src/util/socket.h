// Thin POSIX socket helpers for the live subsystem.
//
// Wraps the handful of calls the streaming daemon needs — TCP and Unix
// listeners, poll-with-timeout accept loops, full-buffer send — behind
// RAII fds, so the server code contains no raw socket boilerplate and
// every error surfaces as std::system_error with the failing call named.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

namespace adscope::util {

/// Owning file descriptor; closes on destruction.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) noexcept : fd_(fd) {}
  ~Fd() { reset(); }

  Fd(Fd&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = std::exchange(other.fd_, -1);
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const noexcept { return fd_; }
  bool valid() const noexcept { return fd_ >= 0; }
  int release() noexcept { return std::exchange(fd_, -1); }
  void reset() noexcept;

 private:
  int fd_ = -1;
};

/// Blocks until `fd` is readable or `timeout_ms` elapsed. Returns true
/// when readable. Throws std::system_error on poll failure.
bool wait_readable(int fd, int timeout_ms);

/// Sends the whole buffer (retrying short writes, EINTR). Returns false
/// when the peer closed the connection; throws on other errors.
bool send_all(int fd, std::string_view data);

/// Reads once into `out` (up to `max`). Returns bytes read, 0 on orderly
/// peer shutdown. Throws on errors other than EINTR.
std::size_t recv_some(int fd, char* out, std::size_t max);

/// Listening socket — TCP loopback/any or a Unix domain path.
class ListenSocket {
 public:
  /// Binds and listens on `port` (0 picks an ephemeral port, readable
  /// via port()). `loopback_only` binds 127.0.0.1, else INADDR_ANY.
  static ListenSocket tcp(std::uint16_t port, bool loopback_only = true);

  /// Binds and listens on a Unix socket path (unlinked first).
  static ListenSocket unix_path(const std::string& path);

  ListenSocket(ListenSocket&&) = default;
  ListenSocket& operator=(ListenSocket&&) = default;

  ~ListenSocket();

  /// Waits up to `timeout_ms` for a pending connection and accepts it.
  /// Returns an invalid Fd on timeout (the caller's shutdown-check
  /// window) or when the socket was shut down.
  Fd accept(int timeout_ms);

  int fd() const noexcept { return fd_.get(); }
  std::uint16_t port() const noexcept { return port_; }
  const std::string& path() const noexcept { return path_; }

  /// Connects to this listener (loopback TCP or the Unix path) —
  /// the client-side counterpart used by replay and the tests.
  Fd connect() const;

 private:
  ListenSocket(Fd fd, std::uint16_t port, std::string path)
      : fd_(std::move(fd)), port_(port), path_(std::move(path)) {}

  Fd fd_;
  std::uint16_t port_ = 0;
  std::string path_;  // non-empty for Unix sockets
};

/// Connects to host:port (TCP, blocking). Throws std::system_error.
Fd connect_tcp(const std::string& host, std::uint16_t port);

/// Connects to a Unix socket path. Throws std::system_error.
Fd connect_unix(const std::string& path);

}  // namespace adscope::util
