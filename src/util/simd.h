// Runtime-dispatched SIMD kernels for the byte-classification hot paths.
//
// Every kernel exists in three variants — scalar, SSE2 and AVX2 — behind
// one function-pointer table selected at startup: the hardware is probed
// once (cpuid via __builtin_cpu_supports), `ADSCOPE_SIMD=off|sse2|avx2`
// overrides the choice downward (an override above what the CPU supports
// is clamped), and tests/benches can re-point the table with set_level()
// to run the same workload over every implementation. The scalar
// variants are the semantic reference: each SIMD kernel is asserted
// byte-identical to its scalar twin by the randomized differential suite
// in tests/test_simd.cpp, and the scalar table is a first-class
// production path (the ADSCOPE_SIMD=off CI job runs the whole test suite
// over it), not just an oracle.
//
// Non-x86 builds compile the scalar table only; detect_level() then
// reports kScalar and overrides are no-ops.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>

namespace adscope::util::simd {

/// Instruction-set tiers, ordered: a smaller level is always selectable.
enum class Level : std::uint8_t {
  kScalar = 0,  // plain C++ (ADSCOPE_SIMD=off)
  kSse2 = 1,    // 16-byte blocks, baseline on x86-64
  kAvx2 = 2,    // 32-byte blocks + vpshufb nibble lookups
};

/// Best level the hardware supports (env ignored).
Level detect_level() noexcept;

/// The level the kernel table currently dispatches to. Resolved on first
/// use: min(detect_level(), ADSCOPE_SIMD override if set).
Level active_level() noexcept;

/// True when ADSCOPE_SIMD forced the active level below the hardware's.
bool level_forced_by_env() noexcept;

/// Re-point the kernel table (clamped to detect_level()); returns the
/// level actually installed. For tests and bench ablations; not
/// thread-safe against concurrent kernel calls mid-switch.
Level set_level(Level level) noexcept;

/// Parse an ADSCOPE_SIMD value ("off"/"scalar", "sse2", "avx2");
/// nullopt on anything else.
std::optional<Level> parse_level(std::string_view text) noexcept;

/// Spelling used by ADSCOPE_SIMD, --simd echoes and /metrics:
/// "off", "sse2", "avx2".
const char* to_string(Level level) noexcept;

// ---------------------------------------------------------------------------
// Dispatched kernels. All tolerate n == 0 and embedded NUL / non-ASCII
// bytes (non-ASCII passes through classification as "no match", exactly
// like the scalar predicates in util/strings.h and adblock/filter.h).

/// ASCII-lower `src[0..n)` into `dst` (regions must not overlap).
void to_lower(const char* src, char* dst, std::size_t n) noexcept;

/// Case-insensitive ASCII equality of two equal-length byte ranges.
bool iequals(const char* a, const char* b, std::size_t n) noexcept;

/// Bit i of `bits` = is_keyword_char(s[i]) ([a-z0-9%]); tail bits of the
/// last word are zeroed. `bits` must hold (n + 63) / 64 words.
void keyword_bits(const char* s, std::size_t n, std::uint64_t* bits) noexcept;

/// Bit i of `bits` = adblock::is_separator(s[i]); tail bits zeroed.
void separator_bits(const char* s, std::size_t n,
                    std::uint64_t* bits) noexcept;

/// True when `value` occurs in `a[0..n)` (token-dedup probe).
bool contains_u64(const std::uint64_t* a, std::size_t n,
                  std::uint64_t value) noexcept;

// ---------------------------------------------------------------------------
// Teddy-style multi-literal shotgun prefilter (Hyperscan's "Teddy"
// idea): up to 8 buckets of 2-3-byte lowercase literals, compiled into
// per-position nibble lookup tables. scan() answers, for a whole URL in
// one vectorized pass, "which buckets have at least one literal that
// occurs somewhere in this string" as an 8-bit mask — a sound prefilter
// (never misses a real occurrence; false positives only).

struct TeddyMasks {
  /// masks[j][0][lo_nibble] & masks[j][1][hi_nibble] = buckets whose
  /// literal byte j could be this byte. Position 2 is populated only by
  /// 3-byte literals.
  alignas(32) std::uint8_t masks[3][2][16] = {};
  /// Buckets whose literal is 2 bytes long (decided at positions 0-1).
  std::uint8_t len2_buckets = 0;
  /// Buckets with any 3-byte literal (need the position-2 test).
  std::uint8_t len3_buckets = 0;
};

/// OR over all positions i of the bucket candidates at i:
///   cand3(i) = m0(s[i]) & m1(s[i+1]) & m2(s[i+2])      (3-byte buckets)
///   cand2(i) = m0(s[i]) & m1(s[i+1]) & len2_buckets    (2-byte buckets)
/// where mj(c) = masks[j][0][c & 15] & masks[j][1][c >> 4]. Positions
/// where i+1 or i+2 fall off the end contribute only the shorter terms.
std::uint8_t teddy_scan(const TeddyMasks& masks, const char* s,
                        std::size_t n) noexcept;

// ---------------------------------------------------------------------------
// Scalar reference implementations — the differential-test oracles, and
// the kScalar table's entries. Always compiled, every platform.

namespace scalar {
void to_lower(const char* src, char* dst, std::size_t n) noexcept;
bool iequals(const char* a, const char* b, std::size_t n) noexcept;
void keyword_bits(const char* s, std::size_t n, std::uint64_t* bits) noexcept;
void separator_bits(const char* s, std::size_t n,
                    std::uint64_t* bits) noexcept;
bool contains_u64(const std::uint64_t* a, std::size_t n,
                  std::uint64_t value) noexcept;
std::uint8_t teddy_scan(const TeddyMasks& masks, const char* s,
                        std::size_t n) noexcept;
}  // namespace scalar

}  // namespace adscope::util::simd
