// Small formatting helpers for bench/table output.
#pragma once

#include <cstdint>
#include <string>

namespace adscope::util {

/// "12.3%" with the given number of decimals.
std::string percent(double fraction, int decimals = 1);

/// Human-readable byte count: "18.8T", "1.4G", "312K".
std::string human_bytes(double bytes);

/// Human-readable count: "131.95M", "19.7K".
std::string human_count(double count, int decimals = 2);

/// Fixed-width decimal with the given number of decimals.
std::string fixed(double value, int decimals);

}  // namespace adscope::util
