// Reusable fixed-size worker pool.
//
// Workers are started once and reused across submissions — the sharded
// analysis path runs many studies (benchmarks, repeated CLI runs)
// without re-paying thread start-up each time. Tasks may block (the
// shard drain loops block on their record queues), so callers that
// submit N interdependent long-running tasks must size the pool with at
// least N threads; ParallelTraceStudy enforces this.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "util/annotations.h"

namespace adscope::util {

class ThreadPool {
 public:
  /// `threads == 0` uses the hardware concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; the future resolves when it finishes (exceptions
  /// propagate through the future).
  std::future<void> submit(std::function<void()> task);

  std::size_t thread_count() const noexcept { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  Mutex mutex_;
  CondVar wake_;
  std::deque<std::packaged_task<void()>> tasks_ ADSCOPE_GUARDED_BY(mutex_);
  bool stopping_ ADSCOPE_GUARDED_BY(mutex_) = false;
};

/// Pool sizing helper: explicit request, else hardware concurrency.
std::size_t resolve_thread_count(std::size_t requested) noexcept;

}  // namespace adscope::util
