// Deterministic pseudo-random number generation.
//
// All randomness in adscope flows from a single 64-bit seed so that every
// synthetic trace, table and figure is bit-for-bit reproducible. We use
// splitmix64 for seeding and xoshiro256** for the stream (public-domain
// algorithms by Blackman & Vigna); <random> engines are avoided because
// their distributions are not cross-platform deterministic.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <numbers>
#include <vector>

namespace adscope::util {

/// splitmix64: used to expand one seed into generator state and to derive
/// independent sub-streams (e.g. one per simulated user).
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** deterministic PRNG with explicit, portable distributions.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  /// Derive an independent generator; `salt` distinguishes sub-streams
  /// spawned from the same parent state.
  Rng fork(std::uint64_t salt) noexcept {
    return Rng(next() ^ (salt * 0x9E3779B97F4A7C15ULL));
  }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound == 0 returns 0.
  std::uint64_t below(std::uint64_t bound) noexcept {
    if (bound == 0) return 0;
    // Rejection sampling to remove modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(below(span));
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Bernoulli draw.
  bool chance(double p) noexcept { return uniform() < p; }

  /// Exponential with the given mean (mean > 0).
  double exponential(double mean) noexcept {
    double u;
    do {
      u = uniform();
    } while (u <= 0.0);
    return -mean * std::log(u);
  }

  /// Standard normal via Box–Muller.
  double normal() noexcept {
    double u1;
    do {
      u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * std::numbers::pi * u2);
  }

  double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  /// Log-normal parameterized by the underlying normal's mu/sigma.
  double lognormal(double mu, double sigma) noexcept {
    return std::exp(normal(mu, sigma));
  }

  /// Pareto (heavy tail) with scale xm > 0 and shape alpha > 0.
  double pareto(double xm, double alpha) noexcept {
    double u;
    do {
      u = uniform();
    } while (u <= 0.0);
    return xm / std::pow(u, 1.0 / alpha);
  }

  /// Poisson-distributed count. Knuth's method below lambda = 30, normal
  /// approximation above (adequate for workload generation).
  std::uint32_t poisson(double lambda) noexcept {
    if (lambda <= 0.0) return 0;
    if (lambda < 30.0) {
      const double limit = std::exp(-lambda);
      double product = uniform();
      std::uint32_t count = 0;
      while (product > limit) {
        ++count;
        product *= uniform();
      }
      return count;
    }
    const double value = normal(lambda, std::sqrt(lambda));
    return value <= 0.0 ? 0 : static_cast<std::uint32_t>(value + 0.5);
  }

  /// Pick an index according to non-negative weights; weights must not all
  /// be zero.
  std::size_t weighted(const std::vector<double>& weights) noexcept {
    double total = 0.0;
    for (double w : weights) total += w;
    double x = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      x -= weights[i];
      if (x < 0.0) return i;
    }
    return weights.empty() ? 0 : weights.size() - 1;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Precomputed Zipf sampler over ranks [0, n): rank r has probability
/// proportional to 1/(r+1)^s. Used for site popularity and user activity,
/// which the paper observes to be heavy-tailed.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s) : cdf_(n) {
    double total = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      total += 1.0 / std::pow(static_cast<double>(r + 1), s);
      cdf_[r] = total;
    }
    for (auto& v : cdf_) v /= total;
  }

  std::size_t size() const noexcept { return cdf_.size(); }

  std::size_t sample(Rng& rng) const noexcept {
    const double u = rng.uniform();
    // Binary search for the first rank whose cumulative mass exceeds u.
    std::size_t lo = 0;
    std::size_t hi = cdf_.size();
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo < cdf_.size() ? lo : cdf_.size() - 1;
  }

 private:
  std::vector<double> cdf_;
};

}  // namespace adscope::util
