// Clang thread-safety annotations and the capability wrappers that make
// them enforceable (-Wthread-safety; DESIGN.md §6).
//
// The analysis needs annotated lock types: std::mutex and the standard
// guards carry no capability attributes, so locking through them is
// invisible to the checker. util::Mutex / util::MutexLock / util::CondVar
// are thin zero-state wrappers that (a) compile to the std primitives and
// (b) tell Clang exactly which capability each critical section holds,
// so a GUARDED_BY field accessed outside its mutex is a compile error in
// the CI static-analysis job. Under GCC (no thread-safety analysis) every
// macro expands to nothing and the wrappers are pure pass-throughs.
#pragma once

#include <condition_variable>
#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define ADSCOPE_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef ADSCOPE_THREAD_ANNOTATION
#define ADSCOPE_THREAD_ANNOTATION(x)  // not Clang: no-op
#endif

#define ADSCOPE_CAPABILITY(x) ADSCOPE_THREAD_ANNOTATION(capability(x))
#define ADSCOPE_SCOPED_CAPABILITY ADSCOPE_THREAD_ANNOTATION(scoped_lockable)
#define ADSCOPE_GUARDED_BY(x) ADSCOPE_THREAD_ANNOTATION(guarded_by(x))
#define ADSCOPE_PT_GUARDED_BY(x) ADSCOPE_THREAD_ANNOTATION(pt_guarded_by(x))
#define ADSCOPE_ACQUIRE(...) \
  ADSCOPE_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ADSCOPE_RELEASE(...) \
  ADSCOPE_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define ADSCOPE_REQUIRES(...) \
  ADSCOPE_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define ADSCOPE_EXCLUDES(...) \
  ADSCOPE_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define ADSCOPE_RETURN_CAPABILITY(x) \
  ADSCOPE_THREAD_ANNOTATION(lock_returned(x))
#define ADSCOPE_NO_THREAD_SAFETY_ANALYSIS \
  ADSCOPE_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace adscope::util {

/// std::mutex with a capability attribute, so GUARDED_BY(mutex_) fields
/// are checkable. Also a BasicLockable, which lets CondVar wait on it
/// directly (no std::unique_lock, which the analysis cannot see through).
class ADSCOPE_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ADSCOPE_ACQUIRE() { mutex_.lock(); }
  void unlock() ADSCOPE_RELEASE() { mutex_.unlock(); }

 private:
  std::mutex mutex_;
};

/// Scoped lock over Mutex (std::lock_guard equivalent). Scoped-only by
/// design: early unlock is expressed with a nested block, which the
/// analysis verifies, instead of a manual unlock() it cannot.
class ADSCOPE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) ADSCOPE_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() ADSCOPE_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// Condition variable paired with util::Mutex. wait() takes the Mutex
/// itself (condition_variable_any unlocks/relocks any BasicLockable), and
/// the REQUIRES annotation makes "wait without holding the lock" a
/// compile error. Predicates are spelled as explicit while-loops at the
/// call sites so the guarded reads stay inside the analyzed function
/// body (lambdas are analyzed without the caller's capability context).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mutex) ADSCOPE_REQUIRES(mutex) {
    cv_.wait(mutex);
  }
  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace adscope::util
