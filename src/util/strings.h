// String utilities shared across adscope.
//
// All functions are ASCII-oriented: HTTP header fields, URLs and filter
// rules are ASCII by specification (non-ASCII bytes pass through
// untouched), so no locale machinery is involved.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace adscope::util {

/// Lower-case a single ASCII character; non-letters pass through.
constexpr char ascii_lower(char c) noexcept {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}

constexpr bool is_ascii_digit(char c) noexcept { return c >= '0' && c <= '9'; }

constexpr bool is_ascii_alpha(char c) noexcept {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
}

constexpr bool is_ascii_alnum(char c) noexcept {
  return is_ascii_digit(c) || is_ascii_alpha(c);
}

/// Lower-case an entire string (ASCII only).
std::string to_lower(std::string_view s);

/// to_lower into a caller-owned buffer, reusing its capacity. `s` must not
/// alias `out`.
void to_lower_into(std::string_view s, std::string& out);

/// True if `s` starts with `prefix` (case-sensitive).
bool starts_with(std::string_view s, std::string_view prefix) noexcept;

/// True if `s` ends with `suffix` (case-sensitive).
bool ends_with(std::string_view s, std::string_view suffix) noexcept;

/// Case-insensitive ASCII equality.
bool iequals(std::string_view a, std::string_view b) noexcept;

/// Case-insensitive substring search; returns npos when absent.
std::size_t ifind(std::string_view haystack, std::string_view needle) noexcept;

/// Strip leading/trailing ASCII whitespace (SP, HTAB, CR, LF).
std::string_view trim(std::string_view s) noexcept;

/// Split on a single character; empty fields are kept.
std::vector<std::string_view> split(std::string_view s, char sep);

/// Split on a single character, dropping empty fields.
std::vector<std::string_view> split_nonempty(std::string_view s, char sep);

/// Join pieces with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Parse a non-negative decimal integer; returns false on any non-digit or
/// overflow. Used for Content-Length and friends where leniency is a bug.
bool parse_u64(std::string_view s, std::uint64_t& out) noexcept;

}  // namespace adscope::util
