#include "core/study.h"

namespace adscope::core {

TraceStudy::TraceStudy(const adblock::FilterEngine& engine,
                       const netdb::AbpServerRegistry& registry,
                       StudyOptions options)
    : engine_(engine),
      registry_(registry),
      options_(options),
      classifier_(engine, options.classifier) {
  classifier_.set_callback([this](const ClassifiedObject& object) {
    users_.add(object);
    if (traffic_) traffic_->add(object);
    whitelist_.add(object);
    infra_.add(object);
    rtb_.add(object);
    segmenter_.add(object);
  });
  segmenter_.set_callback([this](const PageView& view) {
    ++page_views_.views;
    page_views_.objects += view.objects;
    page_views_.ad_objects += view.ad_objects;
  });
  extractor_.set_object_callback(
      [this](const analyzer::WebObject& object) { classifier_.process(object); });
  extractor_.set_tls_callback([this](const trace::TlsFlow& flow) {
    ++https_flows_;
    users_.add_tls(flow, registry_);
  });
}

void TraceStudy::on_meta(const trace::TraceMeta& meta) {
  meta_ = meta;
  meta_seen_ = true;
  const auto duration =
      meta.duration_s > 0 ? meta.duration_s : options_.default_duration_s;
  traffic_ = std::make_unique<TrafficStats>(duration,
                                            options_.timeseries_bin_s);
}

void TraceStudy::ensure_traffic() {
  if (traffic_) return;
  // Tolerate traces without a meta block, but build the aggregate
  // directly instead of re-feeding a default meta through on_meta()
  // (which would also implicitly reset meta_ state).
  const auto duration = meta_.duration_s > 0 ? meta_.duration_s
                                             : options_.default_duration_s;
  traffic_ = std::make_unique<TrafficStats>(duration,
                                            options_.timeseries_bin_s);
}

void TraceStudy::on_http(const trace::HttpTransaction& txn) {
  if (!meta_seen_) ++transactions_before_meta_;  // observable, not silent
  ensure_traffic();
  extractor_.on_http(txn);
}

void TraceStudy::on_tls(const trace::TlsFlow& flow) { extractor_.on_tls(flow); }

void TraceStudy::finish() {
  if (finished_) return;
  classifier_.flush();
  segmenter_.flush();
  finished_ = true;
}

InferenceResult TraceStudy::inference() const {
  return infer_adblock_usage(users_, options_.inference);
}

ConfigurationReport TraceStudy::configurations(
    const InferenceResult& inference) const {
  return analyze_configurations(inference, traffic_->whitelisted_requests());
}

StudyView TraceStudy::view() const noexcept {
  StudyView view;
  view.meta = &meta_;
  view.users = &users_;
  view.traffic = traffic_.get();
  view.whitelist = &whitelist_;
  view.infra = &infra_;
  view.rtb = &rtb_;
  view.page_views = &page_views_;
  view.classifier = &classifier_.counters();
  view.https_flows = https_flows_;
  view.inference_options = options_.inference;
  return view;
}

}  // namespace adscope::core
