#include "core/content_inference.h"

namespace adscope::core {

TypeInference infer_type(const analyzer::WebObject& object, bool is_own_page) {
  TypeInference result;
  if (const auto ext_type = http::type_from_extension(object.url.extension())) {
    result.type = *ext_type;
    result.from_extension = true;
  } else {
    result.type = http::type_from_mime(object.content_type);
  }
  if (result.type == http::RequestType::kDocument && !is_own_page) {
    result.type = http::RequestType::kSubdocument;
  }
  return result;
}

}  // namespace adscope::core
