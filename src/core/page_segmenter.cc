#include "core/page_segmenter.h"

#include <algorithm>

#include "util/hash.h"

namespace adscope::core {

void PageSegmenter::emit(PageView&& view) {
  ++views_;
  if (callback_) callback_(view);
}

void PageSegmenter::close_idle(UserViews& user, std::uint64_t now_ms) {
  for (std::size_t i = 0; i < user.open.size();) {
    if (now_ms >= user.open[i].end_ms + options_.idle_gap_ms) {
      emit(std::move(user.open[i]));
      user.open.erase(user.open.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
}

void PageSegmenter::add(const ClassifiedObject& object) {
  if (object.page_url.empty()) {
    ++orphans_;
    return;
  }
  const auto key =
      util::hash_combine(util::fnv1a_u64(object.object.client_ip),
                         util::fnv1a(object.object.user_agent));
  auto it = users_.find(key);
  if (it == users_.end()) {
    while (users_.size() >= options_.max_users && !user_order_.empty()) {
      const auto victim = user_order_.front();
      user_order_.pop_front();
      const auto vit = users_.find(victim);
      if (vit != users_.end()) {
        for (auto& view : vit->second.open) emit(std::move(view));
        users_.erase(vit);
      }
    }
    it = users_.emplace(key, UserViews{}).first;
    it->second.ip = object.object.client_ip;
    it->second.user_agent = object.object.user_agent;
    user_order_.push_back(key);
  }
  UserViews& user = it->second;
  const auto now_ms = object.object.timestamp_ms;
  close_idle(user, now_ms);

  auto view_it = std::find_if(
      user.open.begin(), user.open.end(),
      [&](const PageView& view) { return view.page_url == object.page_url; });
  if (view_it == user.open.end()) {
    if (user.open.size() >= options_.max_open_views) {
      // Close the stalest view to make room.
      auto oldest = std::min_element(
          user.open.begin(), user.open.end(),
          [](const PageView& a, const PageView& b) {
            return a.end_ms < b.end_ms;
          });
      emit(std::move(*oldest));
      user.open.erase(oldest);
    }
    PageView view;
    view.client_ip = user.ip;
    view.user_agent = user.user_agent;
    view.page_url = object.page_url;
    view.start_ms = now_ms;
    view.end_ms = now_ms;
    user.open.push_back(std::move(view));
    view_it = user.open.end() - 1;
  }
  PageView& view = *view_it;
  view.end_ms = std::max(view.end_ms, now_ms);
  ++view.objects;
  view.bytes += object.object.content_length;
  view.ad_objects += object.verdict.is_ad() ? 1u : 0u;
}

void PageSegmenter::flush() {
  for (auto& [key, user] : users_) {
    for (auto& view : user.open) emit(std::move(view));
    user.open.clear();
  }
}

}  // namespace adscope::core
