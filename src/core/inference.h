// Ad-blocker usage inference (§6.2, Table 3, Figure 4) and Adblock Plus
// configuration analysis (§6.3).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <vector>

#include "core/user_index.h"
#include "stats/ecdf.h"
#include "ua/user_agent.h"

namespace adscope::core {

struct InferenceOptions {
  /// Indicator-1 threshold: EasyList ad-request ratio at or below which a
  /// browser qualifies as an ad-blocker candidate (paper: 5%).
  double ratio_threshold = 0.05;
  /// "Active user" cut: minimum requests (paper: 1K). Scale with trace.
  std::uint64_t min_requests = 1000;
};

/// Table 3 classes — cross product of the two indicators.
enum class IndicatorClass : std::uint8_t {
  kA = 0,  // ratio high,  no EasyList download
  kB = 1,  // ratio high,  EasyList download
  kC = 2,  // ratio low,   EasyList download  -> likely Adblock Plus
  kD = 3,  // ratio low,   no EasyList download
};

char to_char(IndicatorClass cls) noexcept;

struct AnnotatedBrowser {
  const UserStats* stats = nullptr;
  ua::AgentInfo agent;
  bool low_ratio = false;
  bool easylist_download = false;
  IndicatorClass cls = IndicatorClass::kA;
};

struct ClassAggregate {
  std::uint64_t instances = 0;
  std::uint64_t requests = 0;
  std::uint64_t ad_requests = 0;
};

struct InferenceResult {
  std::vector<AnnotatedBrowser> active_browsers;
  std::array<ClassAggregate, 4> classes{};

  // Denominators for Table 3's "% requests"/"% ad reqs." columns
  // (shares of the whole trace).
  std::uint64_t trace_requests = 0;
  std::uint64_t trace_ad_requests = 0;

  // Figure 4: per-family ECDF of the EasyList ad-request percentage.
  std::map<ua::BrowserFamily, stats::Ecdf> family_ecdf;
  stats::Ecdf mobile_ecdf;

  // §6 population stats.
  std::size_t pairs_total = 0;     // all (IP, UA) pairs
  std::size_t browsers_total = 0;  // pairs annotated as browsers
  std::uint64_t browser_requests = 0;
  std::uint64_t browser_ad_requests = 0;

  std::uint64_t active_requests = 0;
  std::uint64_t active_ad_requests = 0;

  /// Likely Adblock Plus users (type C) as share of active browsers.
  double abp_share() const noexcept {
    const auto active = static_cast<double>(active_browsers.size());
    return active == 0 ? 0.0
                       : static_cast<double>(classes[2].instances) / active;
  }
};

InferenceResult infer_adblock_usage(const UserIndex& index,
                                    const InferenceOptions& options);

/// §6.3 — what do Adblock Plus users subscribe to?
struct ConfigurationReport {
  // List-hit composition among likely ABP users (type C).
  double c_hits_easyprivacy_share = 0;  // paper: 82.3%
  double c_hits_whitelist_share = 0;    // paper: 11.1%
  double c_hits_easylist_share = 0;

  // EasyPrivacy subscription estimate: share of users with zero / < k
  // EasyPrivacy hits, ABP users vs non-ABP users (paper: 5.1% vs 0.1%;
  // 13.1% at the permissive cut).
  double abp_zero_ep_share = 0;
  double non_abp_zero_ep_share = 0;
  double abp_low_ep_share = 0;   // < low_hit_cut hits
  double non_abp_low_ep_share = 0;

  // Acceptable-ads opt-out estimate (paper: 11.8% vs 6.1% at zero;
  // ~20% gap below 10 requests).
  double abp_zero_aa_share = 0;
  double non_abp_zero_aa_share = 0;
  double abp_low_aa_share = 0;
  double non_abp_low_aa_share = 0;

  // Whitelisted-request volume split (paper: ABP users 7.9%,
  // non-adblock users 37.9% of all whitelisted requests).
  double whitelisted_from_abp_users = 0;
  double whitelisted_from_non_abp_users = 0;

  std::uint64_t low_hit_cut = 10;
};

ConfigurationReport analyze_configurations(const InferenceResult& inference,
                                           std::uint64_t total_whitelisted,
                                           std::uint64_t low_hit_cut = 10);

}  // namespace adscope::core
