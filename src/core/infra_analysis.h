// Advertisement infrastructure analysis — §8.1, Table 5.
//
// Per-server (IP) ad/total object accounting, "ad-only" and "tracking"
// server detection, per-server load quantiles, and the AS ranking
// produced with the routing-table (AsnDatabase) lookup.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "adblock/engine.h"
#include "core/classifier.h"
#include "netdb/asn_db.h"
#include "stats/summary.h"

namespace adscope::core {

struct ServerStats {
  std::uint64_t objects = 0;
  std::uint64_t bytes = 0;
  std::uint64_t ads_easylist = 0;  // incl. derivatives & AA matches
  std::uint64_t ads_easyprivacy = 0;
  std::uint64_t ad_bytes = 0;

  std::uint64_t ad_objects() const noexcept {
    return ads_easylist + ads_easyprivacy;
  }
  double ad_share() const noexcept {
    return objects == 0 ? 0.0
                        : static_cast<double>(ad_objects()) /
                              static_cast<double>(objects);
  }
};

struct AsRow {
  netdb::AsNumber as_number = 0;
  std::string name;
  std::uint64_t ad_requests = 0;
  std::uint64_t ad_bytes = 0;
  std::uint64_t total_requests = 0;
  std::uint64_t total_bytes = 0;
};

class InfraAnalysis {
 public:
  InfraAnalysis() = default;

  void add(const ClassifiedObject& object);

  /// Accumulate another analysis (shard combination); per-server stats
  /// and totals sum. Commutative and associative.
  void merge(const InfraAnalysis& other);

  const std::unordered_map<netdb::IpV4, ServerStats>& servers() const {
    return servers_;
  }

  std::size_t server_count() const noexcept { return servers_.size(); }
  /// Servers with at least one EasyList- / EasyPrivacy-attributed object.
  std::size_t easylist_server_count() const;
  std::size_t easyprivacy_server_count() const;
  std::size_t both_lists_server_count() const;
  /// Servers where >= 1 request classified as ad.
  std::size_t ad_serving_server_count() const;

  /// "Ad servers": >= `share` of requests are ads (paper: 0.9). Returns
  /// {server count, ads they deliver, share of all ads}.
  struct DedicatedServers {
    std::size_t servers = 0;
    std::uint64_t ads = 0;
    double ad_share_of_trace = 0;
  };
  DedicatedServers dedicated_ad_servers(double share = 0.9) const;
  DedicatedServers tracking_servers(double share = 0.9) const;

  /// Distribution of EasyList ad objects per server (paper: median 7,
  /// mean 438, p90/95/99 = 320/1.1K/6.8K).
  stats::BoxStats ads_per_server_distribution(double& mean_out,
                                              double& p90, double& p95,
                                              double& p99) const;

  /// Busiest ad server by request count.
  std::pair<netdb::IpV4, std::uint64_t> busiest_ad_server() const;

  /// Table 5: ASes ranked by ad requests.
  std::vector<AsRow> as_ranking(const netdb::AsnDatabase& db,
                                std::size_t top_n) const;

  std::uint64_t total_ads() const noexcept { return total_ads_; }
  std::uint64_t total_objects() const noexcept { return total_objects_; }

 private:
  std::unordered_map<netdb::IpV4, ServerStats> servers_;
  std::uint64_t total_ads_ = 0;
  std::uint64_t total_ad_bytes_ = 0;
  std::uint64_t total_objects_ = 0;
};

}  // namespace adscope::core
