#include "core/traffic_stats.h"

#include <algorithm>

namespace adscope::core {

namespace {
constexpr std::size_t kContentClasses = 5;
// Object sizes span 1 byte .. 100 MB on a log axis (Figure 6's range).
constexpr double kSizeLogLo = 0.0;
constexpr double kSizeLogHi = 8.0;
constexpr std::size_t kSizeBins = 48;
}  // namespace

TrafficStats::TrafficStats(std::uint64_t duration_s, std::uint64_t bin_s)
    : series_(duration_s, bin_s,
              {"non-ad reqs", "EasyList reqs", "EasyPrivacy reqs",
               "Non-intrusive reqs", "total reqs", "total bytes",
               "EasyList bytes", "EasyPrivacy bytes"}) {
  for (std::size_t i = 0; i < kContentClasses; ++i) {
    ad_size_.emplace_back(kSizeLogLo, kSizeLogHi, kSizeBins);
    non_ad_size_.emplace_back(kSizeLogLo, kSizeLogHi, kSizeBins);
  }
}

void TrafficStats::add(const ClassifiedObject& object) {
  const auto& web = object.object;
  const auto t_s = web.timestamp_ms / 1000;
  const auto size = static_cast<double>(web.content_length);

  ++requests_;
  bytes_ += web.content_length;
  series_.add(kTotalReqs, t_s);
  series_.add(kTotalBytes, t_s, size);

  const std::string mime = web.content_type.empty() ? "-" : web.content_type;
  auto& row = content_[mime];
  const auto cls =
      static_cast<std::size_t>(http::class_from_mime(web.content_type));

  if (!object.verdict.is_ad()) {
    series_.add(kNonAdReqs, t_s);
    ++row.non_ad_requests;
    row.non_ad_bytes += web.content_length;
    if (web.content_length > 0) {
      non_ad_size_[cls].add(static_cast<double>(web.content_length));
    }
    return;
  }

  ad_bytes_ += web.content_length;
  ++row.ad_requests;
  row.ad_bytes += web.content_length;
  if (web.content_length > 0) {
    ad_size_[cls].add(static_cast<double>(web.content_length));
  }

  if (object.verdict.decision == adblock::Decision::kWhitelisted) {
    ++whitelist_reqs_;
    series_.add(kWhitelistReqs, t_s);
    return;
  }
  switch (object.verdict.list_kind) {
    case adblock::ListKind::kEasyPrivacy:
      ++easyprivacy_reqs_;
      series_.add(kEasyPrivacyReqs, t_s);
      series_.add(kEasyPrivacyBytes, t_s, size);
      break;
    case adblock::ListKind::kEasyListDerivative:
      ++derivative_reqs_;
      series_.add(kEasyListReqs, t_s);
      series_.add(kEasyListBytes, t_s, size);
      break;
    case adblock::ListKind::kEasyList:
    case adblock::ListKind::kAcceptableAds:
    case adblock::ListKind::kCustom:
      ++easylist_reqs_;
      series_.add(kEasyListReqs, t_s);
      series_.add(kEasyListBytes, t_s, size);
      break;
  }
}

void TrafficStats::merge(const TrafficStats& other) {
  series_.merge(other.series_);
  requests_ += other.requests_;
  bytes_ += other.bytes_;
  easylist_reqs_ += other.easylist_reqs_;
  derivative_reqs_ += other.derivative_reqs_;
  easyprivacy_reqs_ += other.easyprivacy_reqs_;
  whitelist_reqs_ += other.whitelist_reqs_;
  ad_bytes_ += other.ad_bytes_;
  for (const auto& [mime, theirs] : other.content_) {
    auto& row = content_[mime];
    row.ad_requests += theirs.ad_requests;
    row.ad_bytes += theirs.ad_bytes;
    row.non_ad_requests += theirs.non_ad_requests;
    row.non_ad_bytes += theirs.non_ad_bytes;
  }
  for (std::size_t i = 0; i < ad_size_.size(); ++i) {
    ad_size_[i].merge(other.ad_size_[i]);
    non_ad_size_[i].merge(other.non_ad_size_[i]);
  }
}

std::vector<std::pair<std::string, ContentTypeRow>>
TrafficStats::content_table() const {
  std::vector<std::pair<std::string, ContentTypeRow>> rows(content_.begin(),
                                                           content_.end());
  // Tie-break on the MIME string: a total order keeps the table stable
  // no matter how the rows were accumulated (serial vs merged shards).
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    if (a.second.ad_requests != b.second.ad_requests) {
      return a.second.ad_requests > b.second.ad_requests;
    }
    return a.first < b.first;
  });
  return rows;
}

const stats::LogHistogram& TrafficStats::ad_sizes(
    http::ContentClass cls) const {
  return ad_size_[static_cast<std::size_t>(cls)];
}

const stats::LogHistogram& TrafficStats::non_ad_sizes(
    http::ContentClass cls) const {
  return non_ad_size_[static_cast<std::size_t>(cls)];
}

}  // namespace adscope::core
