// Acceptable-ads ("non-intrusive ads") whitelist analysis — §7.3.
//
// Answers: how many ad requests are whitelisted; how many whitelisted
// requests would a blacklist otherwise have caught (list accuracy); and
// which publishers / ad-tech services benefit from the whitelist.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "adblock/engine.h"
#include "core/classifier.h"

namespace adscope::core {

struct BeneficiaryRow {
  std::string fqdn;
  std::uint64_t blacklisted = 0;  // blocked requests
  std::uint64_t whitelisted = 0;  // acceptable-ads matches

  double whitelisted_share() const noexcept {
    const auto total = blacklisted + whitelisted;
    return total == 0 ? 0.0
                      : static_cast<double>(whitelisted) /
                            static_cast<double>(total);
  }
};

class WhitelistAnalysis {
 public:
  WhitelistAnalysis() = default;

  void add(const ClassifiedObject& object);

  /// Accumulate another analysis (shard combination); counters sum and
  /// beneficiary tables add row-wise. Commutative and associative.
  void merge(const WhitelistAnalysis& other);

  std::uint64_t ad_requests() const noexcept { return ad_requests_; }
  std::uint64_t whitelisted() const noexcept { return whitelisted_; }
  /// Whitelisted requests a blacklist rule also matched ("match the
  /// blacklist" in §7.3; paper: 57.3%).
  std::uint64_t whitelisted_would_block() const noexcept {
    return would_block_;
  }
  /// Of those, the share EasyPrivacy would have filtered (paper: 23.2%).
  std::uint64_t whitelisted_would_block_ep() const noexcept {
    return would_block_ep_;
  }
  /// Whitelist share restricted to EasyList+AA classifications
  /// (paper: 15.3% vs 9.2% over all lists).
  std::uint64_t easylist_family_ads() const noexcept {
    return easylist_family_ads_;
  }

  /// Publishers (page FQDNs) with at least `min_blacklisted` blocked
  /// requests, by blocked volume (paper threshold: 1K).
  std::vector<BeneficiaryRow> publishers(std::uint64_t min_blacklisted) const;

  /// Ad-tech services (request FQDNs), paper threshold: 10K.
  std::vector<BeneficiaryRow> ad_tech(std::uint64_t min_blacklisted) const;

 private:
  struct Counts {
    std::uint64_t blacklisted = 0;
    std::uint64_t whitelisted = 0;
  };

  static std::vector<BeneficiaryRow> top_rows(
      const std::unordered_map<std::string, Counts>& map,
      std::uint64_t min_blacklisted);

  std::uint64_t ad_requests_ = 0;
  std::uint64_t whitelisted_ = 0;
  std::uint64_t would_block_ = 0;
  std::uint64_t would_block_ep_ = 0;
  std::uint64_t easylist_family_ads_ = 0;

  // Only whitelisted requests "matching the blacklist" count here, per
  // the paper's §7.3 restriction.
  std::unordered_map<std::string, Counts> by_page_;
  std::unordered_map<std::string, Counts> by_request_host_;
};

}  // namespace adscope::core
