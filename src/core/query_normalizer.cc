#include "core/query_normalizer.h"

#include "util/strings.h"

namespace adscope::core {

bool QueryNormalizer::looks_dynamic(std::string_view value) const {
  if (value.size() >= 24) return true;  // session ids, cache busters
  if (value.find("http") != std::string_view::npos) return true;
  if (value.find("%2f") != std::string_view::npos ||
      value.find("%2F") != std::string_view::npos ||
      value.find('/') != std::string_view::npos) {
    return true;  // embedded path or encoded URL
  }
  std::size_t digits = 0;
  for (char c : value) {
    if (util::is_ascii_digit(c)) ++digits;
  }
  // Mostly-numeric values of nontrivial length are timestamps/ids.
  return value.size() >= 6 && digits * 2 >= value.size();
}

bool QueryNormalizer::must_preserve(std::string_view key,
                                    std::string_view value) {
  if (!looks_dynamic(value)) return true;  // static values stay anyway
  if (!filter_aware_) return false;        // naive mode rewrites everything
  const std::string key_lower = util::to_lower(key);
  auto [it, inserted] = key_in_lists_.try_emplace(key_lower, false);
  if (inserted) {
    it->second = engine_.pattern_contains_literal(key_lower + "=");
  }
  return it->second;
}

http::Url QueryNormalizer::normalize(const http::Url& url) {
  if (url.query().empty()) return url;
  http::Url out = url;
  std::string rebuilt;
  bool changed = false;
  for (const auto param : util::split(std::string_view(url.query()), '&')) {
    if (!rebuilt.empty()) rebuilt += '&';
    const auto eq = param.find('=');
    if (eq == std::string_view::npos) {
      rebuilt += param;
      continue;
    }
    const auto key = param.substr(0, eq);
    const auto value = param.substr(eq + 1);
    if (must_preserve(key, value)) {
      rebuilt += param;
    } else {
      rebuilt += key;
      rebuilt += "=x";
      changed = true;
    }
  }
  if (changed) out.set_query(std::move(rebuilt));
  return out;
}

}  // namespace adscope::core
