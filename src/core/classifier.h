// TraceClassifier — the paper's ad-classification pipeline (Figure 1).
//
// Streams Bro-extracted WebObjects through:
//   1. per-user referrer-map page reconstruction (§3.1, "Referrer Map"),
//   2. content-type inference with redirect patching — a redirect source
//      is typed after its *consequent* request, held in a small pending
//      window until the target shows up (§3.1, "Content Type"),
//   3. query-string normalization that preserves filter-list literals
//      (§3.1, "Base URL"),
//   4. FilterEngine classification (the libadblockplus call).
//
// Users are keyed by (client IP, User-Agent) following Maier et al. [45]
// for NAT separation. All per-user state is bounded; exceeding the user
// cap evicts the oldest user after flushing their pending redirects.
//
// Emission order: held redirect sources are emitted when patched or
// expired, so output order can deviate from capture order by up to the
// redirect window — consumers must not assume strict timestamps.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <unordered_map>

#include "adblock/classify_cache.h"
#include "adblock/element_hiding.h"
#include "adblock/engine.h"
#include "analyzer/http_extractor.h"
#include "core/content_inference.h"
#include "core/query_normalizer.h"
#include "core/referrer_map.h"

namespace adscope::core {

/// Single-entry memo of the page-derived request fields. Trace objects
/// arrive page-by-page, so the same page URL is re-lowered and re-parsed
/// for nearly every request it triggered; one remembered entry removes
/// that rework without unbounded state.
class PageContext {
 public:
  struct Info {
    std::string page;        // key (page spec, original case)
    std::string page_lower;  // to_lower(page)
    std::string page_host;   // Url::parse(page).host() or ""
  };

  /// Fields for `page`; recomputed only when the page changed.
  const Info& lookup(const std::string& page);

 private:
  Info info_;
  bool valid_ = false;
};

struct ClassifiedObject {
  analyzer::WebObject object;
  http::RequestType type = http::RequestType::kOther;
  bool type_from_extension = false;
  std::string page_url;   // reconstructed page spec ("" when unknown)
  std::string page_host;  // host of page_url
  adblock::Classification verdict;
};

struct ClassifierOptions {
  // Ablation switches (DESIGN.md §4.2) — all on by default.
  bool redirect_patching = true;
  bool embedded_urls = true;
  bool query_normalization = true;
  /// Rewrite every dynamic query value, ignoring filter literals
  /// (ablation baseline; breaks value-keyed exception rules).
  bool naive_query_normalization = false;
  /// §10 payload mode: when document objects carry their HTML body,
  /// recover the page structure exactly — embedded-resource types become
  /// ground truth instead of inferences, and text advertisements hidden
  /// in the HTML (never requested, so invisible to header analysis) are
  /// detected via the element-hiding rules.
  bool use_payloads = false;

  /// Entry budget of the per-classifier classification memo (0 disables).
  /// Each pipeline shard owns its own cache, so no locking is involved.
  std::size_t classify_cache = 4096;

  std::size_t per_user_url_capacity = 2048;
  std::size_t max_users = 1 << 18;
  // A held redirect source expires after this many subsequent objects
  // from the same user.
  std::uint64_t redirect_window = 32;
};

/// Pipeline throughput/diagnostic counters; mergeable so sharded runs
/// can combine per-worker classifiers into trace-wide totals.
struct ClassifierCounters {
  std::uint64_t processed = 0;
  std::uint64_t redirects_patched = 0;
  std::uint64_t redirects_expired = 0;
  std::uint64_t hidden_text_ads = 0;
  std::uint64_t payload_type_hints_used = 0;
  std::uint64_t classify_cache_hits = 0;
  std::uint64_t classify_cache_misses = 0;

  void merge(const ClassifierCounters& other) noexcept {
    processed += other.processed;
    redirects_patched += other.redirects_patched;
    redirects_expired += other.redirects_expired;
    hidden_text_ads += other.hidden_text_ads;
    payload_type_hints_used += other.payload_type_hints_used;
    classify_cache_hits += other.classify_cache_hits;
    classify_cache_misses += other.classify_cache_misses;
  }
};

class TraceClassifier {
 public:
  using Callback = std::function<void(const ClassifiedObject&)>;

  TraceClassifier(const adblock::FilterEngine& engine,
                  ClassifierOptions options = {});

  void set_callback(Callback callback) { callback_ = std::move(callback); }

  /// Process one object; may emit zero or more classified objects.
  void process(const analyzer::WebObject& object);

  /// Emit everything still held (end of trace).
  void flush();

  std::uint64_t processed() const noexcept { return counters_.processed; }
  std::uint64_t redirects_patched() const noexcept {
    return counters_.redirects_patched;
  }
  std::uint64_t redirects_expired() const noexcept {
    return counters_.redirects_expired;
  }
  /// Payload mode only: embedded text ads found via element hiding.
  std::uint64_t hidden_text_ads() const noexcept {
    return counters_.hidden_text_ads;
  }
  /// Payload mode only: requests typed from the document structure.
  std::uint64_t payload_type_hints_used() const noexcept {
    return counters_.payload_type_hints_used;
  }
  const ClassifierCounters& counters() const noexcept { return counters_; }
  const adblock::ClassifyCache& classify_cache() const noexcept {
    return cache_;
  }

 private:
  struct PendingRedirect {
    analyzer::WebObject object;
    std::string page;
    std::uint64_t deadline = 0;
  };

  struct UserState {
    explicit UserState(std::size_t capacity)
        : refmap(capacity), type_hints(capacity) {}
    ReferrerMap refmap;
    // Payload mode: URL -> element type gleaned from the document HTML
    // (single digit encoding of http::RequestType).
    BoundedStringMap type_hints;
    std::unordered_map<std::string, PendingRedirect> pending;
    std::deque<std::pair<std::uint64_t, std::string>> expiry;  // deadline,target
    std::uint64_t counter = 0;
  };

  UserState& user_state(netdb::IpV4 ip, const std::string& user_agent);
  void analyze_payload(UserState& user, const analyzer::WebObject& object,
                       const std::string& page);
  void expire_pending(UserState& user);
  void flush_user(UserState& user);
  void classify_and_emit(const analyzer::WebObject& object,
                         const std::string& page, http::RequestType type,
                         bool from_extension);

  const adblock::FilterEngine& engine_;
  ClassifierOptions options_;
  QueryNormalizer normalizer_;
  adblock::ElementHidingIndex elemhide_;  // populated in payload mode
  Callback callback_;
  adblock::ClassifyCache cache_;
  adblock::RequestScratch scratch_;
  PageContext page_ctx_;

  std::unordered_map<std::uint64_t, UserState> users_;
  std::deque<std::uint64_t> user_order_;
  ClassifierCounters counters_;
};

}  // namespace adscope::core
