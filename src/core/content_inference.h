// Content-type inference for header-trace objects (§3.1 "Content Type").
//
// Priority: the URL's file extension (robust against the Content-Type
// mismatches documented by Schneider et al. [52]); then the response
// Content-Type; finally kOther. "document" vs "subdocument" cannot be
// read from headers — it is derived from the referrer reconstruction
// (an HTML object that *is* its own page is a document; an HTML object
// inside another page is an iframe, i.e. subdocument).
#pragma once

#include "analyzer/http_extractor.h"
#include "http/mime.h"

namespace adscope::core {

struct TypeInference {
  http::RequestType type = http::RequestType::kOther;
  bool from_extension = false;
};

/// Infer the AdBlock request type for `object`. `is_own_page` is true
/// when the referrer reconstruction determined the object starts a page.
TypeInference infer_type(const analyzer::WebObject& object, bool is_own_page);

}  // namespace adscope::core
