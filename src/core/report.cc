#include "core/report.h"

#include "stats/render.h"
#include "util/format.h"

namespace adscope::core {

namespace {

double share(std::uint64_t part, std::uint64_t whole) {
  return whole == 0 ? 0.0
                    : static_cast<double>(part) / static_cast<double>(whole);
}

}  // namespace

std::string render_traffic_report(const StudyView& view) {
  const auto& traffic = *view.traffic;
  const auto ads = traffic.ad_requests();
  std::string out;
  out += "== traffic (§7) ==\n";
  out += "HTTP transactions: " +
         util::human_count(static_cast<double>(traffic.requests())) + " (" +
         util::human_bytes(static_cast<double>(traffic.bytes())) + ")\n";
  out += "HTTPS flows:       " +
         util::human_count(static_cast<double>(view.https_flows)) + "\n";
  out += "ad requests:       " +
         util::human_count(static_cast<double>(ads)) + " = " +
         util::percent(share(ads, traffic.requests())) + " of requests, " +
         util::percent(share(traffic.ad_bytes(), traffic.bytes())) +
         " of bytes\n";
  out += "  EasyList:        " +
         util::percent(share(traffic.easylist_requests(), ads)) + "\n";
  out += "  EasyPrivacy:     " +
         util::percent(share(traffic.easyprivacy_requests(), ads)) + "\n";
  out += "  non-intrusive:   " +
         util::percent(share(traffic.whitelisted_requests(), ads)) + "\n";
  const auto& views = *view.page_views;
  out += "page views:        " +
         util::human_count(static_cast<double>(views.views)) + " (" +
         util::fixed(views.objects_per_view(), 1) + " objects, " +
         util::fixed(views.ads_per_view(), 1) + " ads per view)\n";
  return out;
}

std::string render_inference_report(const StudyView& view) {
  const auto inference = view.inference();
  const auto report = view.configurations(inference);
  std::string out;
  out += "== ad-blocker usage (§6) ==\n";
  out += "active browsers: " +
         std::to_string(inference.active_browsers.size()) + " of " +
         std::to_string(inference.browsers_total) + " annotated (" +
         std::to_string(inference.pairs_total) + " (IP,UA) pairs)\n";
  const double active =
      static_cast<double>(inference.active_browsers.size());
  for (std::size_t c = 0; c < 4; ++c) {
    const auto& row = inference.classes[c];
    out += std::string("  class ") +
           to_char(static_cast<IndicatorClass>(c)) + ": " +
           util::percent(active == 0
                             ? 0.0
                             : static_cast<double>(row.instances) / active) +
           " of active, " +
           util::percent(share(row.ad_requests,
                               inference.trace_ad_requests)) +
           " of ad requests\n";
  }
  out += "likely Adblock Plus users (type C): " +
         util::percent(inference.abp_share()) + "\n";
  out += "households contacting ABP servers: " +
         util::percent(share(view.users->abp_household_count(),
                             view.users->household_count())) +
         "\n";
  out += "estimated EasyPrivacy adoption gap: ABP users without "
         "EasyPrivacy hits " +
         util::percent(report.abp_zero_ep_share) + " vs non-ABP " +
         util::percent(report.non_abp_zero_ep_share) + "\n";
  return out;
}

std::string render_infrastructure_report(const StudyView& view,
                                         const netdb::AsnDatabase& asn_db) {
  const auto& infra = *view.infra;
  std::string out;
  out += "== infrastructure (§8) ==\n";
  out += "servers: " + std::to_string(infra.server_count()) +
         ", serving ads: " + std::to_string(infra.ad_serving_server_count()) +
         "\n";
  const auto dedicated = infra.dedicated_ad_servers();
  out += "dedicated ad servers (>90% ads): " +
         std::to_string(dedicated.servers) + " carrying " +
         util::percent(dedicated.ad_share_of_trace) + " of ads\n";
  out += "top ASes by ad objects:\n";
  const auto total_ads = static_cast<double>(infra.total_ads());
  for (const auto& row : infra.as_ranking(asn_db, 5)) {
    out += "  " + row.name + ": " +
           util::percent(total_ads == 0
                             ? 0.0
                             : static_cast<double>(row.ad_requests) /
                                   total_ads) +
           " of ads (" +
           util::percent(share(row.ad_requests, row.total_requests)) +
           " of its own traffic)\n";
  }
  const auto& rtb = *view.rtb;
  out += "RTB regime (>=90 ms): ads " +
         util::percent(rtb.ad_share_in_rtb_regime()) + " vs rest " +
         util::percent(rtb.non_ad_share_in_rtb_regime()) + "\n";
  return out;
}

std::string render_full_report(const StudyView& view,
                               const netdb::AsnDatabase* asn_db) {
  std::string out = "=== adscope study: " + view.meta->name + " ===\n\n";
  out += render_traffic_report(view) + "\n";
  out += render_inference_report(view);
  if (asn_db != nullptr) {
    out += "\n" + render_infrastructure_report(view, *asn_db);
  }
  return out;
}

}  // namespace adscope::core
