#include "core/study_snapshot.h"

namespace adscope::core {

StudySnapshot::StudySnapshot(const trace::TraceMeta& meta,
                             const StudyOptions& options)
    : meta_(meta), options_(options) {
  const auto duration =
      meta.duration_s > 0 ? meta.duration_s : options.default_duration_s;
  traffic_ = std::make_unique<TrafficStats>(duration, options.timeseries_bin_s);
}

void StudySnapshot::absorb(const TraceStudy& study) {
  users_.merge(study.users());
  if (study.has_traffic()) traffic_->merge(study.traffic());
  whitelist_.merge(study.whitelist());
  infra_.merge(study.infra());
  rtb_.merge(study.rtb());
  page_views_.merge(study.page_views());
  classifier_counters_.merge(study.classifier().counters());
  https_flows_ += study.https_flows();
  ++buckets_merged_;
}

void StudySnapshot::merge(const StudySnapshot& other) {
  users_.merge(other.users_);
  traffic_->merge(*other.traffic_);
  whitelist_.merge(other.whitelist_);
  infra_.merge(other.infra_);
  rtb_.merge(other.rtb_);
  page_views_.merge(other.page_views_);
  classifier_counters_.merge(other.classifier_counters_);
  https_flows_ += other.https_flows_;
  buckets_merged_ += other.buckets_merged_;
  if (other.first_bucket_ < first_bucket_) first_bucket_ = other.first_bucket_;
  if (other.buckets_merged_ > 0 && other.last_bucket_ > last_bucket_) {
    last_bucket_ = other.last_bucket_;
  }
  if (other.watermark_ms > watermark_ms) watermark_ms = other.watermark_ms;
  records_ingested += other.records_ingested;
  records_dropped += other.records_dropped;
}

StudyView StudySnapshot::view() const noexcept {
  StudyView view;
  view.meta = &meta_;
  view.users = &users_;
  view.traffic = traffic_.get();
  view.whitelist = &whitelist_;
  view.infra = &infra_;
  view.rtb = &rtb_;
  view.page_views = &page_views_;
  view.classifier = &classifier_counters_;
  view.https_flows = https_flows_;
  view.inference_options = options_.inference;
  return view;
}

}  // namespace adscope::core
