// ParallelTraceStudy — sharded multi-core version of TraceStudy.
//
// Every piece of per-user pipeline state (the classifier's ReferrerMap,
// UserIndex, PageSegmenter) is keyed by client_ip, so the trace can be
// partitioned by hash(client_ip) % nshards without changing any
// per-user processing order. Each shard runs a complete serial
// TraceStudy on its own worker thread, fed through a bounded queue of
// record *batches* (backpressure keeps memory flat when a shard falls
// behind); finish() closes the queues, joins the workers, and merges
// the shard aggregates in shard-index order.
//
// Dispatch is batched to amortize queue locking: the feeding thread
// accumulates dispatch_batch_records records per shard and pushes whole
// vectors. The study is both a per-record TraceSink and a zero-copy
// TraceBatchSink — on the batch surface, views are materialized into
// owning records exactly once, at the shard boundary (a record must own
// its strings to cross a thread; see trace/view.h).
//
// Determinism guarantee: the merged result is identical to a serial
// TraceStudy over the same trace — per-user record order is preserved
// inside a shard (a shard's pending batch of one kind is flushed before
// a record of the other kind is queued for it), every aggregate's
// merge() is a commutative/associative sum, and the fixed merge order
// makes even hash-map iteration consequences reproducible. The one
// caveat: the classifier's and segmenter's per-shard user caps
// (ClassifierOptions::max_users, PageSegmenter::Options::max_users)
// trigger later than in a serial run because each shard sees fewer
// users; below the caps (the normal case), reports are byte-identical.
// Asserted in tests/test_parallel_study.cpp.
#pragma once

#include <cstddef>
#include <future>
#include <memory>
#include <variant>
#include <vector>

#include "core/study.h"
#include "trace/view.h"
#include "util/bounded_queue.h"
#include "util/thread_pool.h"

namespace adscope::core {

struct ParallelStudyOptions {
  /// Forwarded verbatim to every shard's TraceStudy.
  StudyOptions study;
  /// Worker (= shard) count; 0 picks the hardware concurrency.
  std::size_t threads = 0;
  /// Records buffered per shard before the feeding thread blocks
  /// (rounded to whole dispatch batches, minimum two).
  std::size_t queue_capacity = 4096;
  /// Records accumulated per shard before a batch is pushed to its
  /// queue; the lock/notify cost is paid once per batch, not per
  /// record.
  std::size_t dispatch_batch_records = 256;
};

class ParallelTraceStudy final : public trace::TraceSink,
                                 public trace::TraceBatchSink {
 public:
  /// `pool` optionally supplies reusable worker threads (it must have
  /// at least `threads` of them, or the shard drain loops could starve
  /// each other — enforced with std::invalid_argument). Without a pool
  /// the study owns one sized to the shard count. Engine, registry and
  /// pool must outlive the study.
  ParallelTraceStudy(const adblock::FilterEngine& engine,
                     const netdb::AbpServerRegistry& registry,
                     ParallelStudyOptions options = {},
                     util::ThreadPool* pool = nullptr);
  ~ParallelTraceStudy() override;

  ParallelTraceStudy(const ParallelTraceStudy&) = delete;
  ParallelTraceStudy& operator=(const ParallelTraceStudy&) = delete;

  // TraceSink + TraceBatchSink (call from one thread; records fan out
  // to the shards). The single on_meta overrides both bases.
  void on_meta(const trace::TraceMeta& meta) override;
  void on_http(const trace::HttpTransaction& txn) override;
  void on_http_owned(trace::HttpTransaction&& txn) override;
  void on_tls(const trace::TlsFlow& flow) override;
  void on_http_batch(std::span<const trace::HttpTransactionView> batch) override;
  void on_tls_batch(std::span<const trace::TlsFlowView> batch) override;

  /// Close the shard queues, join the workers, merge. Idempotent.
  void finish();

  std::size_t shard_count() const noexcept { return shards_.size(); }

  // Merged per-section results; valid after finish().
  const trace::TraceMeta& meta() const noexcept { return meta_; }
  const UserIndex& users() const noexcept { return users_; }
  const TrafficStats& traffic() const { return *traffic_; }
  const WhitelistAnalysis& whitelist() const noexcept { return whitelist_; }
  const InfraAnalysis& infra() const noexcept { return infra_; }
  const RtbAnalysis& rtb() const noexcept { return rtb_; }
  const PageViewStats& page_views() const noexcept { return page_views_; }
  const ClassifierCounters& classifier_counters() const noexcept {
    return classifier_counters_;
  }
  std::uint64_t https_flows() const noexcept { return https_flows_; }
  std::uint64_t transactions_before_meta() const noexcept {
    return transactions_before_meta_;
  }

  InferenceResult inference() const;
  ConfigurationReport configurations(const InferenceResult& inference) const;

  /// Same window the serial study exposes — feeds the shared report
  /// renderers. Valid after finish().
  StudyView view() const noexcept;

 private:
  /// A queue item is a whole batch; meta is broadcast as its own item.
  using Item = std::variant<trace::TraceMeta,
                            std::vector<trace::HttpTransaction>,
                            std::vector<trace::TlsFlow>>;

  struct Shard {
    explicit Shard(const adblock::FilterEngine& engine,
                   const netdb::AbpServerRegistry& registry,
                   const StudyOptions& options, std::size_t queue_items)
        : study(engine, registry, options), queue(queue_items) {}

    TraceStudy study;
    util::BoundedQueue<Item> queue;
    std::future<void> done;
    // Producer-side accumulators (touched only by the feeding thread).
    std::vector<trace::HttpTransaction> pending_http;
    std::vector<trace::TlsFlow> pending_tls;
  };

  std::size_t shard_of(netdb::IpV4 client_ip) const noexcept;
  void flush_http(Shard& shard);
  void flush_tls(Shard& shard);
  void merge_shards();

  ParallelStudyOptions options_;
  std::unique_ptr<util::ThreadPool> owned_pool_;
  util::ThreadPool* pool_;  // owned_pool_.get() or the caller's
  std::vector<std::unique_ptr<Shard>> shards_;

  // Merged aggregates (filled by finish()).
  trace::TraceMeta meta_;
  UserIndex users_;
  std::unique_ptr<TrafficStats> traffic_;
  WhitelistAnalysis whitelist_;
  InfraAnalysis infra_;
  RtbAnalysis rtb_;
  PageViewStats page_views_;
  ClassifierCounters classifier_counters_;
  std::uint64_t https_flows_ = 0;
  std::uint64_t transactions_before_meta_ = 0;
  bool finished_ = false;
};

}  // namespace adscope::core
