#include "core/infra_analysis.h"

#include <algorithm>

namespace adscope::core {

void InfraAnalysis::add(const ClassifiedObject& object) {
  auto& server = servers_[object.object.server_ip];
  ++server.objects;
  server.bytes += object.object.content_length;
  ++total_objects_;

  const auto& verdict = object.verdict;
  if (!verdict.is_ad()) return;
  ++total_ads_;
  server.ad_bytes += object.object.content_length;
  total_ad_bytes_ += object.object.content_length;

  const auto kind = verdict.decision == adblock::Decision::kBlocked ||
                            verdict.whitelist_saved_it()
                        ? verdict.effective_block_kind()
                        : adblock::ListKind::kEasyList;
  if (kind == adblock::ListKind::kEasyPrivacy) {
    ++server.ads_easyprivacy;
  } else {
    ++server.ads_easylist;
  }
}

void InfraAnalysis::merge(const InfraAnalysis& other) {
  for (const auto& [ip, theirs] : other.servers_) {
    auto& ours = servers_[ip];
    ours.objects += theirs.objects;
    ours.bytes += theirs.bytes;
    ours.ads_easylist += theirs.ads_easylist;
    ours.ads_easyprivacy += theirs.ads_easyprivacy;
    ours.ad_bytes += theirs.ad_bytes;
  }
  total_ads_ += other.total_ads_;
  total_ad_bytes_ += other.total_ad_bytes_;
  total_objects_ += other.total_objects_;
}

std::size_t InfraAnalysis::easylist_server_count() const {
  std::size_t n = 0;
  for (const auto& [ip, s] : servers_) n += s.ads_easylist > 0;
  return n;
}

std::size_t InfraAnalysis::easyprivacy_server_count() const {
  std::size_t n = 0;
  for (const auto& [ip, s] : servers_) n += s.ads_easyprivacy > 0;
  return n;
}

std::size_t InfraAnalysis::both_lists_server_count() const {
  std::size_t n = 0;
  for (const auto& [ip, s] : servers_) {
    n += s.ads_easylist > 0 && s.ads_easyprivacy > 0;
  }
  return n;
}

std::size_t InfraAnalysis::ad_serving_server_count() const {
  std::size_t n = 0;
  for (const auto& [ip, s] : servers_) n += s.ad_objects() > 0;
  return n;
}

InfraAnalysis::DedicatedServers InfraAnalysis::dedicated_ad_servers(
    double share) const {
  DedicatedServers out;
  for (const auto& [ip, s] : servers_) {
    if (s.ad_objects() > 0 && s.ad_share() > share) {
      ++out.servers;
      out.ads += s.ad_objects();
    }
  }
  if (total_ads_ > 0) {
    out.ad_share_of_trace =
        static_cast<double>(out.ads) / static_cast<double>(total_ads_);
  }
  return out;
}

InfraAnalysis::DedicatedServers InfraAnalysis::tracking_servers(
    double share) const {
  DedicatedServers out;
  std::uint64_t total_ep = 0;
  for (const auto& [ip, s] : servers_) total_ep += s.ads_easyprivacy;
  for (const auto& [ip, s] : servers_) {
    if (s.objects == 0 || s.ads_easyprivacy == 0) continue;
    const double ep_share = static_cast<double>(s.ads_easyprivacy) /
                            static_cast<double>(s.objects);
    if (ep_share > share) {
      ++out.servers;
      out.ads += s.ads_easyprivacy;
    }
  }
  if (total_ep > 0) {
    out.ad_share_of_trace =
        static_cast<double>(out.ads) / static_cast<double>(total_ep);
  }
  return out;
}

stats::BoxStats InfraAnalysis::ads_per_server_distribution(
    double& mean_out, double& p90, double& p95, double& p99) const {
  std::vector<double> loads;
  for (const auto& [ip, s] : servers_) {
    if (s.ads_easylist > 0) {
      loads.push_back(static_cast<double>(s.ads_easylist));
    }
  }
  mean_out = stats::mean(loads);
  std::sort(loads.begin(), loads.end());
  p90 = stats::sorted_quantile(loads, 0.90);
  p95 = stats::sorted_quantile(loads, 0.95);
  p99 = stats::sorted_quantile(loads, 0.99);
  return stats::box_stats(std::move(loads));
}

std::pair<netdb::IpV4, std::uint64_t> InfraAnalysis::busiest_ad_server()
    const {
  // Lowest IP wins ties so the answer does not depend on hash-table
  // iteration order (which differs between serial and merged maps).
  std::pair<netdb::IpV4, std::uint64_t> best{0, 0};
  for (const auto& [ip, s] : servers_) {
    const auto ads = s.ad_objects();
    if (ads > best.second || (ads == best.second && ads > 0 && ip < best.first)) {
      best = {ip, ads};
    }
  }
  return best;
}

std::vector<AsRow> InfraAnalysis::as_ranking(const netdb::AsnDatabase& db,
                                             std::size_t top_n) const {
  std::unordered_map<netdb::AsNumber, AsRow> by_as;
  for (const auto& [ip, s] : servers_) {
    const auto as_number = db.lookup(ip);
    auto& row = by_as[as_number];
    row.as_number = as_number;
    row.ad_requests += s.ad_objects();
    row.ad_bytes += s.ad_bytes;
    row.total_requests += s.objects;
    row.total_bytes += s.bytes;
  }
  std::vector<AsRow> rows;
  rows.reserve(by_as.size());
  for (auto& [as_number, row] : by_as) {
    row.name = db.as_name(as_number);
    rows.push_back(std::move(row));
  }
  // AS-number tie-break: a total order keeps the ranking identical no
  // matter how the per-server map was accumulated.
  std::sort(rows.begin(), rows.end(), [](const AsRow& a, const AsRow& b) {
    if (a.ad_requests != b.ad_requests) return a.ad_requests > b.ad_requests;
    return a.as_number < b.as_number;
  });
  if (rows.size() > top_n) rows.resize(top_n);
  return rows;
}

}  // namespace adscope::core
