#include "core/rtb_analysis.h"

#include <algorithm>

#include "http/public_suffix.h"

namespace adscope::core {

namespace {
// Log axis 0.01 ms .. ~3 s, matching Figure 7.
constexpr double kLogLo = -2.0;
constexpr double kLogHi = 3.5;
constexpr std::size_t kBins = 55;
}  // namespace

RtbAnalysis::RtbAnalysis()
    : ad_(kLogLo, kLogHi, kBins), non_ad_(kLogLo, kLogHi, kBins) {}

void RtbAnalysis::add(const ClassifiedObject& object) {
  const auto& web = object.object;
  if (web.http_handshake_us == 0) return;  // no response observed
  const double delta_us = web.http_handshake_us > web.tcp_handshake_us
                              ? static_cast<double>(web.http_handshake_us -
                                                    web.tcp_handshake_us)
                              : 0.0;
  // Clamp to the axis floor: sub-10us differences are capture noise.
  const double delta_ms = std::max(delta_us / 1000.0, 0.01);

  if (object.verdict.is_ad()) {
    ad_.add(delta_ms);
    ++ad_total_;
    if (delta_ms >= threshold_ms_) {
      ++ad_above_;
      const auto domain = http::registrable_domain(web.url.host());
      ++rtb_domains_[std::string(domain)];
    }
  } else {
    non_ad_.add(delta_ms);
    ++non_ad_total_;
    if (delta_ms >= threshold_ms_) ++non_ad_above_;
  }
}

void RtbAnalysis::merge(const RtbAnalysis& other) {
  ad_.merge(other.ad_);
  non_ad_.merge(other.non_ad_);
  ad_above_ += other.ad_above_;
  ad_total_ += other.ad_total_;
  non_ad_above_ += other.non_ad_above_;
  non_ad_total_ += other.non_ad_total_;
  for (const auto& [domain, count] : other.rtb_domains_) {
    rtb_domains_[domain] += count;
  }
}

double RtbAnalysis::ad_share_in_rtb_regime() const noexcept {
  return ad_total_ == 0 ? 0.0
                        : static_cast<double>(ad_above_) /
                              static_cast<double>(ad_total_);
}

double RtbAnalysis::non_ad_share_in_rtb_regime() const noexcept {
  return non_ad_total_ == 0 ? 0.0
                            : static_cast<double>(non_ad_above_) /
                                  static_cast<double>(non_ad_total_);
}

std::vector<RtbAnalysis::RtbHost> RtbAnalysis::rtb_hosts(
    std::size_t top_n) const {
  std::vector<RtbHost> hosts;
  std::uint64_t total = 0;
  for (const auto& [domain, count] : rtb_domains_) total += count;
  for (const auto& [domain, count] : rtb_domains_) {
    hosts.push_back(RtbHost{
        domain, count,
        total == 0 ? 0.0
                   : static_cast<double>(count) / static_cast<double>(total)});
  }
  // Domain tie-break: the tally map is unordered, so equal counts need
  // a total order to rank reproducibly.
  std::sort(hosts.begin(), hosts.end(), [](const auto& a, const auto& b) {
    if (a.requests != b.requests) return a.requests > b.requests;
    return a.domain < b.domain;
  });
  if (hosts.size() > top_n) hosts.resize(top_n);
  return hosts;
}

}  // namespace adscope::core
