#include "core/referrer_map.h"

#include <vector>

#include "http/url.h"
#include "util/strings.h"

namespace adscope::core {

namespace {

// Decode %XX sequences (lower/upper hex). Invalid escapes pass through.
std::string percent_decode(std::string_view s) {
  auto hex = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%' && i + 2 < s.size()) {
      const int hi = hex(s[i + 1]);
      const int lo = hex(s[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>(hi * 16 + lo));
        i += 2;
        continue;
      }
    }
    out.push_back(s[i]);
  }
  return out;
}

void collect_from(std::string_view text, std::vector<std::string>& out) {
  for (std::size_t pos = 0; pos < text.size();) {
    const auto hit = text.find("http", pos);
    if (hit == std::string_view::npos) break;
    // Must be a URL start: "http://" or "https://".
    auto candidate = text.substr(hit);
    if (!util::starts_with(candidate, "http://") &&
        !util::starts_with(candidate, "https://")) {
      pos = hit + 4;
      continue;
    }
    // The embedded URL ends at the enclosing query's delimiters.
    const auto end = candidate.find_first_of("&\"' <>");
    if (end != std::string_view::npos) candidate = candidate.substr(0, end);
    if (const auto url = http::Url::parse(candidate)) {
      out.push_back(url->spec());
    }
    pos = hit + candidate.size() + 1;
  }
}

}  // namespace

std::vector<std::string> extract_embedded_urls(const std::string& query) {
  std::vector<std::string> out;
  if (query.empty()) return out;
  collect_from(query, out);
  // Percent-encoded URLs hide from the plain scan; decode once and rescan.
  if (query.find('%') != std::string::npos) {
    collect_from(percent_decode(query), out);
  }
  return out;
}

}  // namespace adscope::core
