#include "core/inference.h"

namespace adscope::core {

char to_char(IndicatorClass cls) noexcept {
  switch (cls) {
    case IndicatorClass::kA: return 'A';
    case IndicatorClass::kB: return 'B';
    case IndicatorClass::kC: return 'C';
    case IndicatorClass::kD: return 'D';
  }
  return '?';
}

InferenceResult infer_adblock_usage(const UserIndex& index,
                                    const InferenceOptions& options) {
  InferenceResult result;
  result.trace_requests = index.total_requests();
  result.trace_ad_requests = index.total_ad_requests();
  result.pairs_total = index.users().size();

  for (const auto& [key, stats] : index.users()) {
    const auto agent = ua::parse_user_agent(stats.user_agent);
    if (!agent.is_browser()) continue;
    ++result.browsers_total;
    result.browser_requests += stats.requests;
    result.browser_ad_requests += stats.ad_requests();

    if (stats.requests < options.min_requests) continue;

    AnnotatedBrowser browser;
    browser.stats = &stats;
    browser.agent = agent;
    browser.low_ratio = stats.easylist_ratio() <= options.ratio_threshold;
    browser.easylist_download = index.household_downloads_easylist(stats.ip);
    if (browser.low_ratio) {
      browser.cls = browser.easylist_download ? IndicatorClass::kC
                                              : IndicatorClass::kD;
    } else {
      browser.cls = browser.easylist_download ? IndicatorClass::kB
                                              : IndicatorClass::kA;
    }

    auto& aggregate = result.classes[static_cast<std::size_t>(browser.cls)];
    ++aggregate.instances;
    aggregate.requests += stats.requests;
    aggregate.ad_requests += stats.ad_requests();
    result.active_requests += stats.requests;
    result.active_ad_requests += stats.ad_requests();

    const double ad_percent = stats.easylist_ratio() * 100.0;
    if (agent.device == ua::DeviceClass::kMobile) {
      result.mobile_ecdf.add(ad_percent);
    } else {
      result.family_ecdf[agent.family].add(ad_percent);
    }
    result.active_browsers.push_back(browser);
  }
  return result;
}

ConfigurationReport analyze_configurations(const InferenceResult& inference,
                                           std::uint64_t total_whitelisted,
                                           std::uint64_t low_hit_cut) {
  ConfigurationReport report;
  report.low_hit_cut = low_hit_cut;

  std::uint64_t c_el = 0;
  std::uint64_t c_ep = 0;
  std::uint64_t c_aa = 0;
  std::uint64_t abp_users = 0;
  std::uint64_t non_abp_users = 0;
  std::uint64_t abp_zero_ep = 0;
  std::uint64_t non_abp_zero_ep = 0;
  std::uint64_t abp_low_ep = 0;
  std::uint64_t non_abp_low_ep = 0;
  std::uint64_t abp_zero_aa = 0;
  std::uint64_t non_abp_zero_aa = 0;
  std::uint64_t abp_low_aa = 0;
  std::uint64_t non_abp_low_aa = 0;
  std::uint64_t abp_whitelisted = 0;
  std::uint64_t non_abp_whitelisted = 0;

  for (const auto& browser : inference.active_browsers) {
    const auto& stats = *browser.stats;
    const bool abp = browser.cls == IndicatorClass::kC;
    // The paper contrasts likely-ABP (C) with clearly-non-ABP (A).
    const bool non_abp = browser.cls == IndicatorClass::kA;
    if (abp) {
      ++abp_users;
      c_el += stats.ads_easylist + stats.ads_derivative;
      c_ep += stats.ads_easyprivacy;
      c_aa += stats.ads_whitelisted;
      abp_whitelisted += stats.ads_whitelisted;
      if (stats.ads_easyprivacy == 0) ++abp_zero_ep;
      if (stats.ads_easyprivacy < low_hit_cut) ++abp_low_ep;
      if (stats.ads_whitelisted == 0) ++abp_zero_aa;
      if (stats.ads_whitelisted < low_hit_cut) ++abp_low_aa;
    } else if (non_abp) {
      ++non_abp_users;
      non_abp_whitelisted += stats.ads_whitelisted;
      if (stats.ads_easyprivacy == 0) ++non_abp_zero_ep;
      if (stats.ads_easyprivacy < low_hit_cut) ++non_abp_low_ep;
      if (stats.ads_whitelisted == 0) ++non_abp_zero_aa;
      if (stats.ads_whitelisted < low_hit_cut) ++non_abp_low_aa;
    }
  }

  const double c_total = static_cast<double>(c_el + c_ep + c_aa);
  if (c_total > 0) {
    report.c_hits_easylist_share = static_cast<double>(c_el) / c_total;
    report.c_hits_easyprivacy_share = static_cast<double>(c_ep) / c_total;
    report.c_hits_whitelist_share = static_cast<double>(c_aa) / c_total;
  }
  auto share = [](std::uint64_t part, std::uint64_t whole) {
    return whole == 0 ? 0.0
                      : static_cast<double>(part) / static_cast<double>(whole);
  };
  report.abp_zero_ep_share = share(abp_zero_ep, abp_users);
  report.non_abp_zero_ep_share = share(non_abp_zero_ep, non_abp_users);
  report.abp_low_ep_share = share(abp_low_ep, abp_users);
  report.non_abp_low_ep_share = share(non_abp_low_ep, non_abp_users);
  report.abp_zero_aa_share = share(abp_zero_aa, abp_users);
  report.non_abp_zero_aa_share = share(non_abp_zero_aa, non_abp_users);
  report.abp_low_aa_share = share(abp_low_aa, abp_users);
  report.non_abp_low_aa_share = share(non_abp_low_aa, non_abp_users);
  report.whitelisted_from_abp_users = share(abp_whitelisted, total_whitelisted);
  report.whitelisted_from_non_abp_users =
      share(non_abp_whitelisted, total_whitelisted);
  return report;
}

}  // namespace adscope::core
