// Query-string normalization (§3.1 "Base URL").
//
// Requests often embed parts of a previous request's URL in their query
// string; those dynamic values can spuriously match filters that were
// meant for the *embedded* URL. The paper normalizes query values to a
// placeholder — but must not rewrite values that filter rules key on
// (e.g. "@@*jsp?callback=aslHandleAds*"): rewriting those would break
// the exception and flip the classification.
//
// Implementation: a value is rewritten to "x" when it "looks dynamic"
// (embedded URL, long token, high digit share) UNLESS the literal
// "key=value-prefix" occurs in any loaded filter. Keep-decisions are
// cached per key since the engine scan is linear.
#pragma once

#include <string>
#include <unordered_map>

#include "adblock/engine.h"
#include "http/url.h"

namespace adscope::core {

class QueryNormalizer {
 public:
  /// `filter_aware = false` gives the naive variant that rewrites every
  /// dynamic value — it breaks exception rules that key on query values
  /// (ablation baseline; the paper's approach is filter-aware).
  explicit QueryNormalizer(const adblock::FilterEngine& engine,
                           bool filter_aware = true)
      : engine_(engine), filter_aware_(filter_aware) {}

  /// Normalized copy of `url` (query values rewritten where safe).
  http::Url normalize(const http::Url& url);

  /// Exposed for tests: should this key=value pair be preserved?
  bool must_preserve(std::string_view key, std::string_view value);

 private:
  bool looks_dynamic(std::string_view value) const;

  const adblock::FilterEngine& engine_;
  bool filter_aware_;
  // key -> whether any filter mentions "key=" (then values stay intact).
  std::unordered_map<std::string, bool> key_in_lists_;
};

}  // namespace adscope::core
