// Page-view segmentation — the ReSurf [56] / StreamStructure [38] layer.
//
// The referrer map answers "which page does this request belong to?";
// this module answers "how many page *views* did a user perform, and
// what did each contain?" — the unit behind the paper's activity
// statements ("1K requests ≈ a few page retrievals", §6.1) and the
// per-page-load resampling of Figure 2.
//
// A view opens when a user's request is attributed to a page not
// currently open for them, collects every subsequent request attributed
// to that page, and closes after an idle gap (think-time boundary, as
// in ReSurf) or at flush.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/classifier.h"

namespace adscope::core {

struct PageView {
  netdb::IpV4 client_ip = 0;
  std::string user_agent;
  std::string page_url;
  std::uint64_t start_ms = 0;
  std::uint64_t end_ms = 0;
  std::uint32_t objects = 0;
  std::uint32_t ad_objects = 0;
  std::uint64_t bytes = 0;

  double ad_share() const noexcept {
    return objects == 0 ? 0.0
                        : static_cast<double>(ad_objects) /
                              static_cast<double>(objects);
  }
};

class PageSegmenter {
 public:
  struct Options {
    /// A view closes when no request of its page arrives for this long
    /// (ReSurf's think-time boundary).
    std::uint64_t idle_gap_ms = 30'000;
    /// Concurrent open views tracked per user.
    std::size_t max_open_views = 16;
    /// Users tracked simultaneously (FIFO eviction, views flushed).
    std::size_t max_users = 1 << 16;
  };

  using Callback = std::function<void(const PageView&)>;

  PageSegmenter() : PageSegmenter(Options{}) {}
  explicit PageSegmenter(Options options) : options_(options) {}

  void set_callback(Callback callback) { callback_ = std::move(callback); }

  /// Stream in classified objects (per-user temporal order).
  void add(const ClassifiedObject& object);

  /// Close every open view.
  void flush();

  std::uint64_t views_emitted() const noexcept { return views_; }
  std::uint64_t objects_without_page() const noexcept { return orphans_; }

 private:
  struct UserViews {
    netdb::IpV4 ip = 0;
    std::string user_agent;
    // page url -> open view (small; linear structures suffice).
    std::vector<PageView> open;
  };

  void emit(PageView&& view);
  void close_idle(UserViews& user, std::uint64_t now_ms);

  Options options_;
  Callback callback_;
  std::unordered_map<std::uint64_t, UserViews> users_;
  std::deque<std::uint64_t> user_order_;
  std::uint64_t views_ = 0;
  std::uint64_t orphans_ = 0;
};

}  // namespace adscope::core
