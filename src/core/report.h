// Textual study reports.
//
// One place that turns a finished study into the human-readable summary
// the paper's sections would print — used by the CLI, the examples, and
// anywhere else that wants "the §6-§8 numbers" without re-assembling
// them from the analysis objects.
//
// The renderers consume a StudyView, so serial (TraceStudy) and sharded
// (ParallelTraceStudy) runs print through the same code path — the
// basis of the parallel path's "identical report" guarantee. The
// TraceStudy overloads below keep existing call sites working.
#pragma once

#include <string>

#include "core/study.h"
#include "netdb/asn_db.h"

namespace adscope::core {

/// §7.1-style traffic summary: volumes, ad shares, list attribution,
/// page views.
std::string render_traffic_report(const StudyView& view);

/// §6-style ad-blocker usage summary: indicator classes, household
/// download share, configuration estimates.
std::string render_inference_report(const StudyView& view);

/// §8-style infrastructure summary: server counts, dedicated servers,
/// top ASes, RTB regime.
std::string render_infrastructure_report(const StudyView& view,
                                         const netdb::AsnDatabase& asn_db);

/// Everything above, in paper order. `asn_db` may be null (section
/// skipped).
std::string render_full_report(const StudyView& view,
                               const netdb::AsnDatabase* asn_db = nullptr);

inline std::string render_traffic_report(const TraceStudy& study) {
  return render_traffic_report(study.view());
}
inline std::string render_inference_report(const TraceStudy& study) {
  return render_inference_report(study.view());
}
inline std::string render_infrastructure_report(
    const TraceStudy& study, const netdb::AsnDatabase& asn_db) {
  return render_infrastructure_report(study.view(), asn_db);
}
inline std::string render_full_report(const TraceStudy& study,
                                      const netdb::AsnDatabase* asn_db = nullptr) {
  return render_full_report(study.view(), asn_db);
}

}  // namespace adscope::core
