#include "core/whitelist_analysis.h"

#include <algorithm>

namespace adscope::core {

void WhitelistAnalysis::add(const ClassifiedObject& object) {
  const auto& verdict = object.verdict;
  if (!verdict.is_ad()) return;
  ++ad_requests_;

  const bool blocked = verdict.decision == adblock::Decision::kBlocked;
  // §7.3 whitelisting means the *acceptable-ads* list specifically;
  // exceptions inside blocking lists are not "non-intrusive ads".
  const bool whitelisted =
      verdict.decision == adblock::Decision::kWhitelisted &&
      verdict.list_kind == adblock::ListKind::kAcceptableAds;
  const bool would_block = whitelisted && verdict.whitelist_saved_it();

  const auto blocked_kind = verdict.effective_block_kind();
  const bool easylist_family =
      blocked_kind == adblock::ListKind::kEasyList ||
      blocked_kind == adblock::ListKind::kEasyListDerivative;

  if (whitelisted) {
    ++whitelisted_;
    if (would_block) {
      ++would_block_;
      if (blocked_kind == adblock::ListKind::kEasyPrivacy) ++would_block_ep_;
    }
    if (!would_block || easylist_family) ++easylist_family_ads_;
  } else if (easylist_family) {
    ++easylist_family_ads_;
  }

  // Beneficiary accounting uses blocked requests and whitelisted
  // requests that match the blacklist (§7.3).
  if (!blocked && !would_block) return;
  if (blocked && !easylist_family &&
      blocked_kind != adblock::ListKind::kEasyPrivacy) {
    return;  // custom lists are out of scope
  }
  Counts* page = nullptr;
  if (!object.page_host.empty()) page = &by_page_[object.page_host];
  Counts& host = by_request_host_[object.object.url.host()];
  if (blocked) {
    ++host.blacklisted;
    if (page != nullptr) ++page->blacklisted;
  } else {
    ++host.whitelisted;
    if (page != nullptr) ++page->whitelisted;
  }
}

void WhitelistAnalysis::merge(const WhitelistAnalysis& other) {
  ad_requests_ += other.ad_requests_;
  whitelisted_ += other.whitelisted_;
  would_block_ += other.would_block_;
  would_block_ep_ += other.would_block_ep_;
  easylist_family_ads_ += other.easylist_family_ads_;
  for (const auto& [fqdn, counts] : other.by_page_) {
    auto& row = by_page_[fqdn];
    row.blacklisted += counts.blacklisted;
    row.whitelisted += counts.whitelisted;
  }
  for (const auto& [fqdn, counts] : other.by_request_host_) {
    auto& row = by_request_host_[fqdn];
    row.blacklisted += counts.blacklisted;
    row.whitelisted += counts.whitelisted;
  }
}

std::vector<BeneficiaryRow> WhitelistAnalysis::top_rows(
    const std::unordered_map<std::string, Counts>& map,
    std::uint64_t min_blacklisted) {
  std::vector<BeneficiaryRow> rows;
  for (const auto& [fqdn, counts] : map) {
    if (counts.blacklisted + counts.whitelisted < min_blacklisted) continue;
    rows.push_back(BeneficiaryRow{fqdn, counts.blacklisted,
                                  counts.whitelisted});
  }
  // FQDN tie-break: rows come out of an unordered map, so without a
  // total order equal-volume rows would rank by hash-table history.
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    const auto a_total = a.blacklisted + a.whitelisted;
    const auto b_total = b.blacklisted + b.whitelisted;
    if (a_total != b_total) return a_total > b_total;
    return a.fqdn < b.fqdn;
  });
  return rows;
}

std::vector<BeneficiaryRow> WhitelistAnalysis::publishers(
    std::uint64_t min_blacklisted) const {
  return top_rows(by_page_, min_blacklisted);
}

std::vector<BeneficiaryRow> WhitelistAnalysis::ad_tech(
    std::uint64_t min_blacklisted) const {
  return top_rows(by_request_host_, min_blacklisted);
}

}  // namespace adscope::core
