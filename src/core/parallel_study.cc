#include "core/parallel_study.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "util/hash.h"

namespace adscope::core {

ParallelTraceStudy::ParallelTraceStudy(const adblock::FilterEngine& engine,
                                       const netdb::AbpServerRegistry& registry,
                                       ParallelStudyOptions options,
                                       util::ThreadPool* pool)
    : options_(options) {
  if (options_.dispatch_batch_records == 0) options_.dispatch_batch_records = 1;
  const auto shards = util::resolve_thread_count(options.threads);
  if (pool != nullptr) {
    if (pool->thread_count() < shards) {
      throw std::invalid_argument(
          "ParallelTraceStudy: pool smaller than shard count (drain loops "
          "would starve each other)");
    }
    pool_ = pool;
  } else {
    owned_pool_ = std::make_unique<util::ThreadPool>(shards);
    pool_ = owned_pool_.get();
  }

  // queue_capacity is a record budget; the queue holds batches, so
  // convert (two items minimum so producer and consumer can overlap).
  const auto queue_items = std::max<std::size_t>(
      2, options_.queue_capacity / options_.dispatch_batch_records);

  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(engine, registry, options_.study,
                                              queue_items));
    shards_.back()->pending_http.reserve(options_.dispatch_batch_records);
    shards_.back()->pending_tls.reserve(options_.dispatch_batch_records);
  }
  for (auto& shard : shards_) {
    Shard* s = shard.get();
    s->done = pool_->submit([s] {
      Item item;
      while (s->queue.pop(item)) {
        std::visit(
            [s](const auto& batch) {
              using T = std::decay_t<decltype(batch)>;
              if constexpr (std::is_same_v<T, trace::TraceMeta>) {
                s->study.on_meta(batch);
              } else if constexpr (std::is_same_v<
                                       T,
                                       std::vector<trace::HttpTransaction>>) {
                for (const auto& txn : batch) s->study.on_http(txn);
              } else {
                for (const auto& flow : batch) s->study.on_tls(flow);
              }
            },
            item);
      }
      s->study.finish();
    });
  }
}

ParallelTraceStudy::~ParallelTraceStudy() {
  try {
    finish();
  } catch (...) {
    // Destructors must not throw; a worker exception was already
    // swallowed here — finish() explicitly rethrows for callers that
    // care.
  }
}

std::size_t ParallelTraceStudy::shard_of(netdb::IpV4 client_ip) const noexcept {
  // FNV over the IP (not the raw value): client addresses share prefixes,
  // and modulo on sequential integers would lump whole subnets together.
  return util::fnv1a_u64(client_ip) % shards_.size();
}

void ParallelTraceStudy::flush_http(Shard& shard) {
  if (shard.pending_http.empty()) return;
  shard.queue.push(Item{std::move(shard.pending_http)});
  shard.pending_http = {};
  shard.pending_http.reserve(options_.dispatch_batch_records);
}

void ParallelTraceStudy::flush_tls(Shard& shard) {
  if (shard.pending_tls.empty()) return;
  shard.queue.push(Item{std::move(shard.pending_tls)});
  shard.pending_tls = {};
  shard.pending_tls.reserve(options_.dispatch_batch_records);
}

void ParallelTraceStudy::on_meta(const trace::TraceMeta& meta) {
  meta_ = meta;
  for (auto& shard : shards_) {
    flush_http(*shard);
    flush_tls(*shard);
    shard->queue.push(Item{meta});
  }
}

void ParallelTraceStudy::on_http(const trace::HttpTransaction& txn) {
  Shard& shard = *shards_[shard_of(txn.client_ip)];
  flush_tls(shard);  // preserve per-shard record order across kinds
  shard.pending_http.push_back(txn);
  if (shard.pending_http.size() >= options_.dispatch_batch_records) {
    flush_http(shard);
  }
}

void ParallelTraceStudy::on_http_owned(trace::HttpTransaction&& txn) {
  Shard& shard = *shards_[shard_of(txn.client_ip)];
  flush_tls(shard);
  shard.pending_http.push_back(std::move(txn));
  if (shard.pending_http.size() >= options_.dispatch_batch_records) {
    flush_http(shard);
  }
}

void ParallelTraceStudy::on_tls(const trace::TlsFlow& flow) {
  Shard& shard = *shards_[shard_of(flow.client_ip)];
  flush_http(shard);  // preserve per-shard record order across kinds
  shard.pending_tls.push_back(flow);
  if (shard.pending_tls.size() >= options_.dispatch_batch_records) {
    flush_tls(shard);
  }
}

void ParallelTraceStudy::on_http_batch(
    std::span<const trace::HttpTransactionView> batch) {
  // The one place a zero-copy view becomes an owning record: it is
  // about to cross a thread, so it must own its strings.
  for (const auto& view : batch) {
    Shard& shard = *shards_[shard_of(view.client_ip)];
    flush_tls(shard);
    shard.pending_http.emplace_back();
    trace::materialize(view, shard.pending_http.back());
    if (shard.pending_http.size() >= options_.dispatch_batch_records) {
      flush_http(shard);
    }
  }
}

void ParallelTraceStudy::on_tls_batch(
    std::span<const trace::TlsFlowView> batch) {
  for (const auto& flow : batch) on_tls(flow);
}

void ParallelTraceStudy::finish() {
  if (finished_) return;
  for (auto& shard : shards_) {
    flush_http(*shard);
    flush_tls(*shard);
    shard->queue.close();
  }
  for (auto& shard : shards_) shard->done.get();  // rethrows worker errors
  merge_shards();
  finished_ = true;
}

void ParallelTraceStudy::merge_shards() {
  // Deterministic merge order (shard 0, 1, …): every merge() is a
  // commutative/associative sum, but fixing the order removes even the
  // possibility of scheduling-dependent results.
  const auto duration = meta_.duration_s > 0
                            ? meta_.duration_s
                            : options_.study.default_duration_s;
  traffic_ = std::make_unique<TrafficStats>(duration,
                                            options_.study.timeseries_bin_s);
  for (const auto& shard : shards_) {
    const TraceStudy& study = shard->study;
    users_.merge(study.users());
    if (study.has_traffic()) traffic_->merge(study.traffic());
    whitelist_.merge(study.whitelist());
    infra_.merge(study.infra());
    rtb_.merge(study.rtb());
    page_views_.merge(study.page_views());
    classifier_counters_.merge(study.classifier().counters());
    https_flows_ += study.https_flows();
    transactions_before_meta_ += study.transactions_before_meta();
  }
}

InferenceResult ParallelTraceStudy::inference() const {
  return infer_adblock_usage(users_, options_.study.inference);
}

ConfigurationReport ParallelTraceStudy::configurations(
    const InferenceResult& inference) const {
  return analyze_configurations(inference, traffic_->whitelisted_requests());
}

StudyView ParallelTraceStudy::view() const noexcept {
  StudyView view;
  view.meta = &meta_;
  view.users = &users_;
  view.traffic = traffic_.get();
  view.whitelist = &whitelist_;
  view.infra = &infra_;
  view.rtb = &rtb_;
  view.page_views = &page_views_;
  view.classifier = &classifier_counters_;
  view.https_flows = https_flows_;
  view.inference_options = options_.study.inference;
  return view;
}

}  // namespace adscope::core
