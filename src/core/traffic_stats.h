// Ad-traffic characterization (§7.1, §7.2): totals, list attribution,
// 1-hour time series (Figure 5), Content-Type breakdown (Table 4) and
// object-size densities by MIME class (Figure 6).
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "adblock/engine.h"
#include "core/classifier.h"
#include "stats/histogram.h"
#include "stats/timeseries.h"

namespace adscope::core {

struct ContentTypeRow {
  std::uint64_t ad_requests = 0;
  std::uint64_t ad_bytes = 0;
  std::uint64_t non_ad_requests = 0;
  std::uint64_t non_ad_bytes = 0;
};

class TrafficStats {
 public:
  /// Time-series indices (Figure 5).
  enum Series : std::size_t {
    kNonAdReqs = 0,
    kEasyListReqs,
    kEasyPrivacyReqs,
    kWhitelistReqs,
    kTotalReqs,
    kTotalBytes,
    kEasyListBytes,
    kEasyPrivacyBytes,
    kSeriesCount,
  };

  TrafficStats(std::uint64_t duration_s, std::uint64_t bin_s = 3600);

  void add(const ClassifiedObject& object);

  /// Accumulate a shard with the same duration/bin configuration
  /// (counters and content rows sum; time series and size histograms
  /// add bin-wise). Throws std::invalid_argument on a shape mismatch.
  void merge(const TrafficStats& other);

  // §7.1 aggregates.
  std::uint64_t requests() const noexcept { return requests_; }
  std::uint64_t bytes() const noexcept { return bytes_; }
  std::uint64_t ad_requests() const noexcept {
    return easylist_reqs_ + derivative_reqs_ + easyprivacy_reqs_ +
           whitelist_reqs_;
  }
  std::uint64_t ad_bytes() const noexcept { return ad_bytes_; }
  std::uint64_t easylist_requests() const noexcept {
    return easylist_reqs_ + derivative_reqs_;
  }
  std::uint64_t easyprivacy_requests() const noexcept {
    return easyprivacy_reqs_;
  }
  std::uint64_t whitelisted_requests() const noexcept {
    return whitelist_reqs_;
  }

  const stats::BinnedTimeSeries& series() const noexcept { return series_; }

  /// Table 4 rows keyed by reported MIME ("-" for absent), ordered by ad
  /// request count descending.
  std::vector<std::pair<std::string, ContentTypeRow>> content_table() const;

  /// Figure 6 densities: size histograms per coarse content class.
  const stats::LogHistogram& ad_sizes(http::ContentClass cls) const;
  const stats::LogHistogram& non_ad_sizes(http::ContentClass cls) const;

 private:
  stats::BinnedTimeSeries series_;

  std::uint64_t requests_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t easylist_reqs_ = 0;
  std::uint64_t derivative_reqs_ = 0;
  std::uint64_t easyprivacy_reqs_ = 0;
  std::uint64_t whitelist_reqs_ = 0;
  std::uint64_t ad_bytes_ = 0;

  std::map<std::string, ContentTypeRow> content_;
  std::vector<stats::LogHistogram> ad_size_;
  std::vector<stats::LogHistogram> non_ad_size_;
};

}  // namespace adscope::core
