// Insertion-order-bounded string map.
//
// The referrer reconstruction keeps several per-user URL associations.
// Traces are unbounded streams, so every map is capped: when full, the
// oldest entry is evicted (FIFO). Web page structures are temporally
// local — a request's page context arrives within the same page load —
// so FIFO eviction loses almost nothing while bounding memory hard.
#pragma once

#include <cstddef>
#include <deque>
#include <optional>
#include <string>
#include <unordered_map>

namespace adscope::core {

class BoundedStringMap {
 public:
  explicit BoundedStringMap(std::size_t capacity) : capacity_(capacity) {}

  void put(const std::string& key, std::string value) {
    auto [it, inserted] = map_.try_emplace(key, std::move(value));
    if (!inserted) {
      it->second = std::move(value);
      return;
    }
    order_.push_back(key);
    while (map_.size() > capacity_ && !order_.empty()) {
      map_.erase(order_.front());
      order_.pop_front();
    }
  }

  std::optional<std::string> get(const std::string& key) const {
    const auto it = map_.find(key);
    if (it == map_.end()) return std::nullopt;
    return it->second;
  }

  /// Get and remove (redirect targets are consumed exactly once).
  std::optional<std::string> take(const std::string& key) {
    const auto it = map_.find(key);
    if (it == map_.end()) return std::nullopt;
    std::string value = std::move(it->second);
    map_.erase(it);  // stale deque entry is harmless: erase is idempotent
    return value;
  }

  std::size_t size() const noexcept { return map_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }

 private:
  std::size_t capacity_;
  std::unordered_map<std::string, std::string> map_;
  std::deque<std::string> order_;
};

}  // namespace adscope::core
