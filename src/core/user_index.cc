#include "core/user_index.h"

#include "util/hash.h"

namespace adscope::core {

void UserIndex::add(const ClassifiedObject& object) {
  const auto key = util::hash_combine(util::fnv1a_u64(object.object.client_ip),
                                      util::fnv1a(object.object.user_agent));
  auto [it, inserted] = users_.try_emplace(key);
  UserStats& stats = it->second;
  if (inserted) {
    stats.ip = object.object.client_ip;
    stats.user_agent = object.object.user_agent;
  }
  ++stats.requests;
  stats.bytes += object.object.content_length;
  stats.first_ms = std::min(stats.first_ms, object.object.timestamp_ms);
  stats.last_ms = std::max(stats.last_ms, object.object.timestamp_ms);
  ++total_requests_;
  households_.insert(object.object.client_ip);

  const auto& verdict = object.verdict;
  if (!verdict.is_ad()) return;
  ++total_ads_;
  stats.ad_bytes += object.object.content_length;
  if (verdict.decision == adblock::Decision::kWhitelisted) {
    ++stats.ads_whitelisted;
    return;
  }
  switch (verdict.list_kind) {
    case adblock::ListKind::kEasyList:
      ++stats.ads_easylist;
      break;
    case adblock::ListKind::kEasyListDerivative:
      ++stats.ads_derivative;
      break;
    case adblock::ListKind::kEasyPrivacy:
      ++stats.ads_easyprivacy;
      break;
    case adblock::ListKind::kAcceptableAds:
    case adblock::ListKind::kCustom:
      ++stats.ads_derivative;  // custom blocking lists group with derivatives
      break;
  }
}

void UserIndex::merge(const UserIndex& other) {
  for (const auto& [key, theirs] : other.users_) {
    auto [it, inserted] = users_.try_emplace(key);
    UserStats& ours = it->second;
    if (inserted) {
      ours.ip = theirs.ip;
      ours.user_agent = theirs.user_agent;
    }
    ours.requests += theirs.requests;
    ours.bytes += theirs.bytes;
    ours.ads_easylist += theirs.ads_easylist;
    ours.ads_derivative += theirs.ads_derivative;
    ours.ads_easyprivacy += theirs.ads_easyprivacy;
    ours.ads_whitelisted += theirs.ads_whitelisted;
    ours.ad_bytes += theirs.ad_bytes;
    ours.first_ms = std::min(ours.first_ms, theirs.first_ms);
    ours.last_ms = std::max(ours.last_ms, theirs.last_ms);
  }
  households_.insert(other.households_.begin(), other.households_.end());
  abp_households_.insert(other.abp_households_.begin(),
                         other.abp_households_.end());
  total_requests_ += other.total_requests_;
  total_ads_ += other.total_ads_;
  abp_flows_ += other.abp_flows_;
}

void UserIndex::add_tls(const trace::TlsFlow& flow,
                        const netdb::AbpServerRegistry& registry) {
  if (flow.server_port != 443) return;
  if (!registry.is_abp_server(flow.server_ip)) return;
  ++abp_flows_;
  abp_households_.insert(flow.client_ip);
}

}  // namespace adscope::core
