// Real-time-bidding detection — §8.2, Figure 7.
//
// Ad exchanges hold HTTP responses for up to ~100 ms while the auction
// runs. The paper detects this as the difference between the HTTP
// hand-shake (first response - first request) and the TCP hand-shake
// (SYN-ACK - SYN, a network-RTT proxy that cancels out server distance).
// Ad requests show extra modes near 10 ms and 120 ms that non-ad
// requests lack.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/classifier.h"
#include "stats/histogram.h"

namespace adscope::core {

class RtbAnalysis {
 public:
  RtbAnalysis();

  void add(const ClassifiedObject& object);

  /// Accumulate another analysis (shard combination): histograms add
  /// bin-wise, counters and RTB-domain tallies sum. Commutative and
  /// associative.
  void merge(const RtbAnalysis& other);

  const stats::LogHistogram& ad_delta_ms() const noexcept { return ad_; }
  const stats::LogHistogram& non_ad_delta_ms() const noexcept {
    return non_ad_;
  }

  /// Share of requests in the RTB regime (hand-shake delta >= 90 ms,
  /// the paper's cut-off).
  double ad_share_in_rtb_regime() const noexcept;
  double non_ad_share_in_rtb_regime() const noexcept;
  double rtb_threshold_ms() const noexcept { return threshold_ms_; }

  /// Ad-request registrable domains in the RTB regime, by contribution
  /// (paper: DoubleClick 14.5%, Mopub/Rubicon/Pubmatic/Criteo ~5% each).
  struct RtbHost {
    std::string domain;
    std::uint64_t requests = 0;
    double share = 0;
  };
  std::vector<RtbHost> rtb_hosts(std::size_t top_n) const;

 private:
  stats::LogHistogram ad_;
  stats::LogHistogram non_ad_;
  std::uint64_t ad_above_ = 0;
  std::uint64_t ad_total_ = 0;
  std::uint64_t non_ad_above_ = 0;
  std::uint64_t non_ad_total_ = 0;
  double threshold_ms_ = 90.0;
  std::unordered_map<std::string, std::uint64_t> rtb_domains_;
};

}  // namespace adscope::core
