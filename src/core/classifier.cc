#include "core/classifier.h"

#include "html/resource_extractor.h"
#include "util/hash.h"
#include "util/strings.h"

namespace adscope::core {

const PageContext::Info& PageContext::lookup(const std::string& page) {
  if (!valid_ || info_.page != page) {
    info_.page = page;
    util::to_lower_into(page, info_.page_lower);
    info_.page_host.clear();
    if (!page.empty()) {
      if (const auto parsed = http::Url::parse(page)) {
        info_.page_host = parsed->host();
      }
    }
    valid_ = true;
  }
  return info_;
}

TraceClassifier::TraceClassifier(const adblock::FilterEngine& engine,
                                 ClassifierOptions options)
    : engine_(engine),
      options_(options),
      normalizer_(engine, !options.naive_query_normalization),
      cache_(options.classify_cache) {
  if (options_.use_payloads) {
    for (std::size_t i = 0; i < engine.list_count(); ++i) {
      elemhide_.add_list(engine.list(static_cast<adblock::ListId>(i)));
    }
  }
}

void TraceClassifier::analyze_payload(UserState& user,
                                      const analyzer::WebObject& object,
                                      const std::string& page) {
  const auto structure =
      html::extract_structure(object.payload, object.url);
  for (const auto& resource : structure.resources) {
    user.refmap.note_object(resource.url, page);
    user.type_hints.put(
        resource.url,
        std::string(1, static_cast<char>(
                           '0' + static_cast<int>(resource.type))));
  }
  // Text blocks whose classes/ids the element-hiding rules target are
  // the "hidden ads" of §2/§10: embedded in the HTML, never requested.
  const auto selectors = elemhide_.selectors_for(object.url.host());
  for (const auto& block : structure.text_blocks) {
    for (const auto selector : selectors) {
      if (adblock::selector_matches_block(selector, block.classes,
                                          block.id)) {
        ++counters_.hidden_text_ads;
        break;
      }
    }
  }
}

TraceClassifier::UserState& TraceClassifier::user_state(
    netdb::IpV4 ip, const std::string& user_agent) {
  const auto key =
      util::hash_combine(util::fnv1a_u64(ip), util::fnv1a(user_agent));
  const auto it = users_.find(key);
  if (it != users_.end()) return it->second;

  while (users_.size() >= options_.max_users && !user_order_.empty()) {
    const auto victim = user_order_.front();
    user_order_.pop_front();
    const auto vit = users_.find(victim);
    if (vit != users_.end()) {
      flush_user(vit->second);
      users_.erase(vit);
    }
  }
  user_order_.push_back(key);
  return users_.emplace(key, UserState(options_.per_user_url_capacity))
      .first->second;
}

void TraceClassifier::classify_and_emit(const analyzer::WebObject& object,
                                        const std::string& page,
                                        http::RequestType type,
                                        bool from_extension) {
  ClassifiedObject out;
  out.object = object;
  out.type = type;
  out.type_from_extension = from_extension;
  out.page_url = page;
  const PageContext::Info& page_info = page_ctx_.lookup(page);
  out.page_host = page_info.page_host;

  // The verdict is a pure function of (original URL, page, type, engine
  // config): normalization and lowering are deterministic, so the memo is
  // keyed on the pre-normalization spec and a hit skips all of it.
  object.url.spec_to(scratch_.raw_spec);
  const auto key1 = adblock::ClassifyCache::key_of_url(scratch_.raw_spec);
  const auto key2 = adblock::ClassifyCache::key_of_context(page, type);
  const auto epoch = engine_.config_epoch();
  if (cache_.enabled()) {
    if (const adblock::Classification* hit = cache_.find(key1, key2, epoch)) {
      ++counters_.classify_cache_hits;
      out.verdict = *hit;
      if (callback_) callback_(out);
      return;
    }
    ++counters_.classify_cache_misses;
  }

  adblock::Request& request = scratch_.request;
  if (options_.query_normalization) {
    normalizer_.normalize(object.url).spec_to(request.url);
  } else {
    object.url.spec_to(request.url);
  }
  util::to_lower_into(request.url, request.url_lower);
  request.host = object.url.host();
  request.page_host = page_info.page_host;
  request.page_url_lower = page_info.page_lower;
  request.type = type;

  out.verdict = engine_.classify(adblock::RequestView(request),
                                 scratch_.tokens.tokenize(request.url_lower));
  if (cache_.enabled()) cache_.insert(key1, key2, epoch, out.verdict);
  if (callback_) callback_(out);
}

void TraceClassifier::expire_pending(UserState& user) {
  while (!user.expiry.empty() && user.expiry.front().first <= user.counter) {
    const auto target = std::move(user.expiry.front().second);
    user.expiry.pop_front();
    const auto it = user.pending.find(target);
    if (it == user.pending.end()) continue;  // already patched
    // Never typed by a consequent request: fall back to its own headers.
    const auto inference = infer_type(it->second.object, /*is_own_page=*/false);
    classify_and_emit(it->second.object, it->second.page, inference.type,
                      inference.from_extension);
    ++counters_.redirects_expired;
    user.pending.erase(it);
  }
}

void TraceClassifier::flush_user(UserState& user) {
  user.counter += options_.redirect_window + 1;
  expire_pending(user);
}

void TraceClassifier::flush() {
  for (auto& [key, user] : users_) flush_user(user);
}

void TraceClassifier::process(const analyzer::WebObject& object) {
  ++counters_.processed;
  UserState& user = user_state(object.client_ip, object.user_agent);
  ++user.counter;
  expire_pending(user);

  const std::string url_spec = object.url.spec();

  // --- 1. page attribution -------------------------------------------
  std::string page;
  if (!object.referer.empty()) {
    if (const auto ref = http::Url::parse(object.referer)) {
      const auto ref_spec = ref->spec();
      page = user.refmap.page_of(ref_spec).value_or(ref_spec);
    }
  }
  if (page.empty() && options_.redirect_patching) {
    if (auto patched = user.refmap.take_redirect_page(url_spec)) {
      page = std::move(*patched);
    }
  }
  if (page.empty() && options_.embedded_urls) {
    if (auto embedded = user.refmap.embedded_page(url_spec)) {
      page = std::move(*embedded);
    }
  }

  // --- 2. content-type inference --------------------------------------
  const bool is_own_page = page.empty() || page == url_spec;
  auto inference = infer_type(object, is_own_page);
  if (options_.use_payloads) {
    // Structure recovered from a parent document overrides header-based
    // inference: this is the DOM knowledge Adblock Plus actually has.
    if (const auto hint = user.type_hints.take(url_spec)) {
      inference.type =
          static_cast<http::RequestType>((*hint)[0] - '0');
      inference.from_extension = false;
      ++counters_.payload_type_hints_used;
    }
  }
  if (page.empty() && inference.type == http::RequestType::kDocument) {
    page = url_spec;  // starts a new page
  }

  // Future requests that cite this URL as their referer belong to this
  // object's page (documents root their own page).
  const std::string& effective_page = page.empty() ? url_spec : page;
  user.refmap.note_object(
      url_spec, inference.type == http::RequestType::kDocument ? url_spec
                                                               : effective_page);

  // --- 3. structural side information ----------------------------------
  if (options_.use_payloads && !object.payload.empty() &&
      (inference.type == http::RequestType::kDocument ||
       inference.type == http::RequestType::kSubdocument)) {
    analyze_payload(user, object, effective_page);
  }
  if (options_.embedded_urls && !object.url.query().empty()) {
    for (const auto& embedded : extract_embedded_urls(object.url.query())) {
      user.refmap.note_embedded(embedded, effective_page);
    }
  }

  // A held redirect source whose target just arrived inherits this
  // object's type (§3.1: type the redirect by its consequent request).
  if (options_.redirect_patching) {
    const auto it = user.pending.find(url_spec);
    if (it != user.pending.end()) {
      classify_and_emit(it->second.object, it->second.page, inference.type,
                        inference.from_extension);
      ++counters_.redirects_patched;
      user.pending.erase(it);
    }
  }

  // --- 4. classify (or hold redirects for type patching) ---------------
  if (object.is_redirect() && options_.redirect_patching) {
    const auto target_spec = object.location.spec();
    user.refmap.note_redirect(target_spec, effective_page);
    PendingRedirect held{object, page,
                         user.counter + options_.redirect_window};
    user.expiry.emplace_back(held.deadline, target_spec);
    user.pending.insert_or_assign(target_spec, std::move(held));
    return;
  }

  classify_and_emit(object, page, inference.type, inference.from_extension);
}

}  // namespace adscope::core
