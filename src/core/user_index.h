// Per-user aggregation keyed by (IP, User-Agent) — §6, Figure 3.
//
// Tracks, for every end device/browser visible at the vantage point, the
// volume of requests and the ad requests attributed by each filter list;
// and, per household (IP), whether any device downloaded EasyList from
// an Adblock Plus server over HTTPS (the §3.2 indicator).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "adblock/engine.h"
#include "core/classifier.h"
#include "netdb/abp_servers.h"
#include "trace/record.h"

namespace adscope::core {

struct UserStats {
  netdb::IpV4 ip = 0;
  std::string user_agent;

  std::uint64_t requests = 0;
  std::uint64_t bytes = 0;
  std::uint64_t ads_easylist = 0;     // blocked by EasyList
  std::uint64_t ads_derivative = 0;   // blocked by EasyList derivatives
  std::uint64_t ads_easyprivacy = 0;  // blocked by EasyPrivacy
  std::uint64_t ads_whitelisted = 0;  // matched the acceptable-ads list
  std::uint64_t ad_bytes = 0;
  std::uint64_t first_ms = UINT64_MAX;
  std::uint64_t last_ms = 0;

  std::uint64_t ad_requests() const noexcept {
    return ads_easylist + ads_derivative + ads_easyprivacy + ads_whitelisted;
  }

  /// Indicator 1 ratio (§6.2): EasyList hits only — the list installed
  /// by default — relative to all requests.
  double easylist_ratio() const noexcept {
    return requests == 0 ? 0.0
                         : static_cast<double>(ads_easylist) /
                               static_cast<double>(requests);
  }
};

class UserIndex {
 public:
  UserIndex() = default;

  void add(const ClassifiedObject& object);

  /// Feed a port-443 flow; marks the household when the server is a known
  /// Adblock Plus update server.
  void add_tls(const trace::TlsFlow& flow,
               const netdb::AbpServerRegistry& registry);

  /// Accumulate another index (shard combination). Per-user stats sum;
  /// household sets union. Commutative and associative, so shard merge
  /// order cannot change the result.
  void merge(const UserIndex& other);

  bool household_downloads_easylist(netdb::IpV4 ip) const {
    return abp_households_.contains(ip);
  }

  const std::unordered_map<std::uint64_t, UserStats>& users() const noexcept {
    return users_;
  }

  std::uint64_t total_requests() const noexcept { return total_requests_; }
  std::uint64_t total_ad_requests() const noexcept { return total_ads_; }
  std::size_t household_count() const noexcept { return households_.size(); }
  std::size_t abp_household_count() const noexcept {
    return abp_households_.size();
  }
  std::uint64_t tls_to_abp_servers() const noexcept { return abp_flows_; }

 private:
  std::unordered_map<std::uint64_t, UserStats> users_;
  std::unordered_set<netdb::IpV4> households_;
  std::unordered_set<netdb::IpV4> abp_households_;
  std::uint64_t total_requests_ = 0;
  std::uint64_t total_ads_ = 0;
  std::uint64_t abp_flows_ = 0;
};

}  // namespace adscope::core
