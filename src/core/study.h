// TraceStudy — one-stop pipeline for a passive trace.
//
// Wires HttpExtractor -> TraceClassifier -> every aggregate analysis the
// paper's evaluation needs. Feed it a trace (it is a TraceSink), call
// finish(), then read the per-section results:
//   users()     — Figure 3, inputs to §6
//   inference() — Table 3, Figure 4 (§6.2)
//   traffic()   — §7.1, Table 4, Figures 5 & 6
//   whitelist() — §7.3
//   infra()     — §8.1, Table 5 (needs an AsnDatabase)
//   rtb()       — §8.2, Figure 7
//
// For multi-core analysis of the same trace see core::ParallelTraceStudy
// (parallel_study.h), which runs one of these per shard and merges.
#pragma once

#include <memory>
#include <optional>

#include "adblock/engine.h"
#include "analyzer/http_extractor.h"
#include "core/classifier.h"
#include "core/inference.h"
#include "core/infra_analysis.h"
#include "core/page_segmenter.h"
#include "core/rtb_analysis.h"
#include "core/traffic_stats.h"
#include "core/user_index.h"
#include "core/whitelist_analysis.h"
#include "netdb/abp_servers.h"
#include "trace/record.h"

namespace adscope::core {

struct StudyOptions {
  ClassifierOptions classifier;
  InferenceOptions inference;
  std::uint64_t timeseries_bin_s = 3600;
  /// Fallback trace duration when the meta block is absent.
  std::uint64_t default_duration_s = 24 * 3600;
};

/// Page-view statistics from the ReSurf-style segmentation.
struct PageViewStats {
  std::uint64_t views = 0;
  std::uint64_t objects = 0;
  std::uint64_t ad_objects = 0;

  void merge(const PageViewStats& other) noexcept {
    views += other.views;
    objects += other.objects;
    ad_objects += other.ad_objects;
  }

  double objects_per_view() const noexcept {
    return views == 0 ? 0.0
                      : static_cast<double>(objects) /
                            static_cast<double>(views);
  }
  double ads_per_view() const noexcept {
    return views == 0 ? 0.0
                      : static_cast<double>(ad_objects) /
                            static_cast<double>(views);
  }
};

/// Read-only window onto a finished study's per-section results.
///
/// Both TraceStudy and ParallelTraceStudy expose one via view(), so the
/// report renderers (core/report.h) and any downstream consumer work on
/// either pipeline without caring how the aggregates were produced.
struct StudyView {
  const trace::TraceMeta* meta = nullptr;
  const UserIndex* users = nullptr;
  const TrafficStats* traffic = nullptr;
  const WhitelistAnalysis* whitelist = nullptr;
  const InfraAnalysis* infra = nullptr;
  const RtbAnalysis* rtb = nullptr;
  const PageViewStats* page_views = nullptr;
  /// Pipeline throughput/diagnostic counters (classification-cache hit
  /// rates included); may be null for producers that do not track them.
  const ClassifierCounters* classifier = nullptr;
  std::uint64_t https_flows = 0;
  InferenceOptions inference_options;
  /// Decode surface the records arrived through ("mmap", "stream",
  /// "pcap"); diagnostic only — the report renderers ignore it so
  /// reports stay byte-identical across io modes.
  const char* io_mode = nullptr;
  /// Active SIMD dispatch level ("off", "sse2", "avx2"); diagnostic
  /// only, ignored by the report renderers for the same reason —
  /// reports are byte-identical at every ADSCOPE_SIMD level.
  const char* simd_mode = nullptr;

  /// Run the §6.2 inference over the aggregated users.
  InferenceResult inference() const {
    return infer_adblock_usage(*users, inference_options);
  }
  ConfigurationReport configurations(const InferenceResult& result) const {
    return analyze_configurations(result, traffic->whitelisted_requests());
  }
};

class TraceStudy final : public trace::TraceSink {
 public:
  /// `registry` may be empty (then indicator 2 never fires). The engine
  /// and registry must outlive the study.
  TraceStudy(const adblock::FilterEngine& engine,
             const netdb::AbpServerRegistry& registry,
             StudyOptions options = {});

  // Internal callbacks capture `this`; the study must stay put.
  TraceStudy(const TraceStudy&) = delete;
  TraceStudy& operator=(const TraceStudy&) = delete;
  TraceStudy(TraceStudy&&) = delete;
  TraceStudy& operator=(TraceStudy&&) = delete;

  // TraceSink:
  void on_meta(const trace::TraceMeta& meta) override;
  void on_http(const trace::HttpTransaction& txn) override;
  void on_tls(const trace::TlsFlow& flow) override;

  /// Flush held state; call once after the full trace was fed.
  void finish();

  const trace::TraceMeta& meta() const noexcept { return meta_; }
  const UserIndex& users() const noexcept { return users_; }
  const TrafficStats& traffic() const { return *traffic_; }
  bool has_traffic() const noexcept { return traffic_ != nullptr; }
  const WhitelistAnalysis& whitelist() const noexcept { return whitelist_; }
  const InfraAnalysis& infra() const noexcept { return infra_; }
  const RtbAnalysis& rtb() const noexcept { return rtb_; }
  const TraceClassifier& classifier() const noexcept { return classifier_; }
  const PageViewStats& page_views() const noexcept { return page_views_; }

  /// Run the §6.2 inference over the aggregated users (after finish()).
  InferenceResult inference() const;
  ConfigurationReport configurations(const InferenceResult& inference) const;

  std::uint64_t https_flows() const noexcept { return https_flows_; }
  /// HTTP transactions seen before any meta block (the time series then
  /// runs on the fallback duration — observable instead of silent).
  std::uint64_t transactions_before_meta() const noexcept {
    return transactions_before_meta_;
  }

  StudyView view() const noexcept;

 private:
  /// Lazily build the time-series aggregate when a trace carries no
  /// meta block, counting the transactions affected.
  void ensure_traffic();

  const adblock::FilterEngine& engine_;
  const netdb::AbpServerRegistry& registry_;
  StudyOptions options_;

  trace::TraceMeta meta_;
  analyzer::HttpExtractor extractor_;
  TraceClassifier classifier_;
  UserIndex users_;
  PageSegmenter segmenter_;
  PageViewStats page_views_;
  std::unique_ptr<TrafficStats> traffic_;  // needs duration from meta
  WhitelistAnalysis whitelist_;
  InfraAnalysis infra_;
  RtbAnalysis rtb_;
  std::uint64_t https_flows_ = 0;
  std::uint64_t transactions_before_meta_ = 0;
  bool meta_seen_ = false;
  bool finished_ = false;
};

}  // namespace adscope::core
