// Referrer map — partial Web-page reconstruction from HTTP headers
// (§3.1 "Referrer Map", after StreamStructure [38] and ReSurf [56]).
//
// Associates every requested URL with the page ("root document") that
// triggered it, using three signals:
//   1. the Referer chain (a request's page is its referer's page),
//   2. Location headers — a redirect's target inherits the source's page,
//      repairing chains broken by redirects that drop the Referer,
//   3. URLs embedded in query strings (e.g. ad impressions carrying the
//      landing page), which also bind the embedded URL to the page.
//
// One instance per end user (IP + User-Agent); all state is bounded.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/bounded_map.h"

namespace adscope::core {

class ReferrerMap {
 public:
  explicit ReferrerMap(std::size_t capacity = 2048)
      : page_of_(capacity),
        redirect_page_(capacity / 4),
        embedded_page_(capacity / 4) {}

  /// Record that `url_spec` belongs to `page` (both full URL specs).
  void note_object(const std::string& url_spec, const std::string& page) {
    page_of_.put(url_spec, page);
  }

  /// Page a previously seen URL belongs to.
  std::optional<std::string> page_of(const std::string& url_spec) const {
    return page_of_.get(url_spec);
  }

  /// Record that a redirect pointed at `target_spec` from a request on
  /// `page` — the repair for referer-less post-redirect requests.
  void note_redirect(const std::string& target_spec, const std::string& page) {
    redirect_page_.put(target_spec, page);
  }

  /// Consume the page recorded for a redirect target.
  std::optional<std::string> take_redirect_page(const std::string& target_spec) {
    return redirect_page_.take(target_spec);
  }

  /// Record a URL found embedded in another request's query string.
  void note_embedded(const std::string& url_spec, const std::string& page) {
    embedded_page_.put(url_spec, page);
  }

  std::optional<std::string> embedded_page(const std::string& url_spec) const {
    return embedded_page_.get(url_spec);
  }

 private:
  BoundedStringMap page_of_;
  BoundedStringMap redirect_page_;
  BoundedStringMap embedded_page_;
};

/// Extract absolute URLs embedded in a query string: plain
/// ("...&u=http://x/y") and percent-encoded ("...&u=http%3A%2F%2Fx%2Fy")
/// forms. Returns decoded URL specs.
std::vector<std::string> extract_embedded_urls(const std::string& query);

}  // namespace adscope::core
