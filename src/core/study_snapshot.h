// StudySnapshot — an owned, immutable-input merge of finished studies.
//
// TraceStudy aggregates one stream of records; a snapshot *accumulates*
// any number of finished studies (absorb) or other snapshots (merge)
// into a single set of aggregates that survives independently of the
// producers. The live serving layer renders snapshots without holding
// any lock, and the snapshot store (src/store) keeps them as tree
// leaves and rolls them up across time windows.
//
// Merge laws: every underlying aggregate's merge() is commutative and
// associative (property-tested since PR-1), so absorbing studies
// directly and merging per-bucket snapshots of the same studies yield
// byte-identical reports — the invariant the /query-vs-/study identity
// tests pin.
#pragma once

#include <cstdint>
#include <memory>

#include "core/study.h"

namespace adscope::core {

class StudySnapshot {
 public:
  StudySnapshot(const trace::TraceMeta& meta, const StudyOptions& options);

  StudySnapshot(StudySnapshot&&) = default;
  StudySnapshot& operator=(StudySnapshot&&) = default;

  /// Accumulate one finished per-bucket study.
  void absorb(const TraceStudy& study);

  /// Accumulate another snapshot built from the same meta/options shape
  /// (same trace duration and time-series binning; merging snapshots of
  /// different worlds is a logic error).
  void merge(const StudySnapshot& other);

  /// Record that `bucket` contributed, widening [first, last].
  void note_bucket(std::uint64_t bucket) noexcept {
    if (bucket < first_bucket_) first_bucket_ = bucket;
    if (bucket > last_bucket_) last_bucket_ = bucket;
  }

  StudyView view() const noexcept;

  const trace::TraceMeta& meta() const noexcept { return meta_; }
  std::uint64_t buckets_merged() const noexcept { return buckets_merged_; }
  std::uint64_t first_bucket() const noexcept { return first_bucket_; }
  std::uint64_t last_bucket() const noexcept { return last_bucket_; }
  std::uint64_t bucket_seconds = 0;
  std::uint64_t watermark_ms = 0;
  std::uint64_t records_ingested = 0;
  std::uint64_t records_dropped = 0;

  const ClassifierCounters& classifier_counters() const noexcept {
    return classifier_counters_;
  }
  std::uint64_t https_flows() const noexcept { return https_flows_; }

 private:
  trace::TraceMeta meta_;
  StudyOptions options_;
  UserIndex users_;
  std::unique_ptr<TrafficStats> traffic_;
  WhitelistAnalysis whitelist_;
  InfraAnalysis infra_;
  RtbAnalysis rtb_;
  PageViewStats page_views_;
  ClassifierCounters classifier_counters_;
  std::uint64_t https_flows_ = 0;
  std::uint64_t buckets_merged_ = 0;
  std::uint64_t first_bucket_ = UINT64_MAX;
  std::uint64_t last_bucket_ = 0;
};

}  // namespace adscope::core
