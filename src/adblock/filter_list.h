// A parsed filter list (EasyList, EasyPrivacy, acceptable-ads, ...).
//
// Parses the "[Adblock Plus 2.0]" header, "! Key: value" metadata
// (Title, Version, Expires — the soft-expiry that drives the update
// traffic the paper uses as its second indicator, §3.2), URL filters and
// element-hiding rules. Element-hiding rules are retained for
// completeness: the paper explicitly cannot apply them to header traces
// (no payload), and neither can we, but list statistics and update sizes
// depend on them.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "adblock/filter.h"

namespace adscope::adblock {

/// Well-known list families from the paper.
enum class ListKind : std::uint8_t {
  kEasyList,
  kEasyListDerivative,  // language customizations of EasyList
  kEasyPrivacy,
  kAcceptableAds,  // "non-intrusive advertisements" whitelist
  kCustom,
};

std::string_view to_string(ListKind kind) noexcept;

/// "domains##selector" / "domains#@#selector" rule. Acts on the DOM; kept
/// for list statistics only.
struct ElementHidingRule {
  std::vector<std::string> include_domains;
  std::vector<std::string> exclude_domains;
  std::string selector;
  bool exception = false;  // "#@#"
};

/// A line the parser rejected, with enough context for the lint layer to
/// report "name:line: reason". Comments, headers and blank lines are not
/// recorded — only lines that looked like rules and failed.
struct DiscardedLine {
  std::uint32_t line = 0;  // 1-based
  std::string text;
  ParseDiagnosis diagnosis;
};

class FilterList {
 public:
  /// An empty list; fill via parse().
  FilterList() = default;

  /// Parse the full text of a list. Lines that fail to parse are counted,
  /// not fatal — mirroring ABP, which skips invalid rules.
  static FilterList parse(std::string_view text, ListKind kind,
                          std::string name);

  const std::string& name() const noexcept { return name_; }
  ListKind kind() const noexcept { return kind_; }
  const std::string& title() const noexcept { return title_; }
  const std::string& version() const noexcept { return version_; }

  /// Soft-expiry in hours (default 120h = 5 days, ABP's fallback).
  unsigned expires_hours() const noexcept { return expires_hours_; }

  const std::vector<Filter>& filters() const noexcept { return filters_; }
  const std::vector<ElementHidingRule>& element_hiding_rules() const noexcept {
    return elemhide_;
  }
  std::size_t discarded_rules() const noexcept { return discarded_; }
  std::size_t exception_count() const noexcept { return exceptions_; }

  /// 1-based source line of filters()[i] — parallel to filters(). Lets
  /// the lint layer point diagnostics at the original file.
  const std::vector<std::uint32_t>& filter_lines() const noexcept {
    return filter_lines_;
  }
  /// Rule-looking lines the parser rejected, with reasons.
  const std::vector<DiscardedLine>& discarded_lines() const noexcept {
    return discarded_lines_;
  }

 private:
  void parse_metadata(std::string_view line);
  static std::optional<ElementHidingRule> parse_elemhide(
      std::string_view line);

  std::string name_;
  ListKind kind_ = ListKind::kCustom;
  std::string title_;
  std::string version_;
  unsigned expires_hours_ = 120;
  std::vector<Filter> filters_;
  std::vector<std::uint32_t> filter_lines_;
  std::vector<ElementHidingRule> elemhide_;
  std::vector<DiscardedLine> discarded_lines_;
  std::size_t discarded_ = 0;
  std::size_t exceptions_ = 0;
};

}  // namespace adscope::adblock
