#include "adblock/element_hiding.h"

#include <algorithm>

#include "http/public_suffix.h"

namespace adscope::adblock {

void ElementHidingIndex::add_list(const FilterList& list) {
  for (const auto& rule : list.element_hiding_rules()) {
    if (rule.exception) {
      exceptions_.push_back(&rule);
    } else if (rule.include_domains.empty()) {
      generic_.push_back(&rule);
    } else {
      scoped_.push_back(&rule);
    }
  }
}

bool ElementHidingIndex::rule_applies(const ElementHidingRule& rule,
                                      std::string_view host) {
  for (const auto& domain : rule.exclude_domains) {
    if (http::host_matches_domain(host, domain)) return false;
  }
  if (rule.include_domains.empty()) return true;
  for (const auto& domain : rule.include_domains) {
    if (http::host_matches_domain(host, domain)) return true;
  }
  return false;
}

std::vector<std::string_view> ElementHidingIndex::selectors_for(
    std::string_view host) const {
  std::vector<std::string_view> selectors;
  auto excepted = [&](std::string_view selector) {
    return std::any_of(exceptions_.begin(), exceptions_.end(),
                       [&](const ElementHidingRule* exception) {
                         return exception->selector == selector &&
                                rule_applies(*exception, host);
                       });
  };
  for (const auto* rule : generic_) {
    if (rule_applies(*rule, host) && !excepted(rule->selector)) {
      selectors.push_back(rule->selector);
    }
  }
  for (const auto* rule : scoped_) {
    if (rule_applies(*rule, host) && !excepted(rule->selector)) {
      selectors.push_back(rule->selector);
    }
  }
  return selectors;
}

bool selector_matches_block(std::string_view selector,
                            const std::vector<std::string>& classes,
                            std::string_view id) {
  if (selector.empty()) return false;
  if (selector[0] == '.') {
    const auto wanted = selector.substr(1);
    for (const auto& cls : classes) {
      if (cls == wanted) return true;
    }
    return false;
  }
  if (selector[0] == '#') return !id.empty() && id == selector.substr(1);
  // "tag[attr^=\"prefix\"]" — prefix attribute selectors.
  const auto bracket = selector.find('[');
  if (bracket == std::string_view::npos) return false;
  const auto caret = selector.find("^=\"", bracket);
  const auto close = selector.rfind("\"]");
  if (caret == std::string_view::npos || close == std::string_view::npos ||
      close <= caret + 3) {
    return false;
  }
  const auto attr = selector.substr(bracket + 1, caret - bracket - 1);
  const auto prefix = selector.substr(caret + 3, close - caret - 3);
  if (attr == "id") {
    return id.size() >= prefix.size() &&
           id.compare(0, prefix.size(), prefix) == 0;
  }
  if (attr == "class") {
    for (const auto& cls : classes) {
      if (cls.size() >= prefix.size() &&
          cls.compare(0, prefix.size(), prefix) == 0) {
        return true;
      }
    }
  }
  return false;
}

}  // namespace adscope::adblock
