// A single AdBlock Plus URL filter.
//
// Implements the documented ABP filter grammar
// (https://adblockplus.org/en/filters):
//   * blocking rules and "@@" exception rules,
//   * "||" domain anchor, "|" start/end anchors,
//   * "*" wildcard and "^" separator placeholder,
//   * "/.../" regular-expression rules,
//   * "$" options: content-type constraints (script, image, stylesheet,
//     object, xmlhttprequest, subdocument, document, media, font, other),
//     inverse types ("~script"), "third-party"/"~third-party",
//     "domain=a.example|~b.example", "match-case", and the exception-only
//     "elemhide".
// Element-hiding rules ("##"/"#@#") are represented separately
// (see filter_list.h) because they act on the DOM, not on URLs.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <regex>
#include <string>
#include <string_view>
#include <vector>

#include "http/mime.h"

namespace adscope::adblock {

/// Bitmask over http::RequestType.
using TypeMask = std::uint16_t;

constexpr TypeMask type_bit(http::RequestType t) noexcept {
  return static_cast<TypeMask>(1U << static_cast<unsigned>(t));
}

/// All categories a bare filter applies to ("document" must be requested
/// explicitly for blocking rules, as in ABP; exception rules may carry it).
constexpr TypeMask kDefaultTypeMask =
    static_cast<TypeMask>(type_bit(http::RequestType::kSubdocument) |
                          type_bit(http::RequestType::kStylesheet) |
                          type_bit(http::RequestType::kScript) |
                          type_bit(http::RequestType::kImage) |
                          type_bit(http::RequestType::kMedia) |
                          type_bit(http::RequestType::kFont) |
                          type_bit(http::RequestType::kObject) |
                          type_bit(http::RequestType::kXhr) |
                          type_bit(http::RequestType::kOther));

constexpr TypeMask kAllTypeMask =
    static_cast<TypeMask>(kDefaultTypeMask |
                          type_bit(http::RequestType::kDocument));

enum class ThirdPartyConstraint : std::uint8_t {
  kAny,
  kThirdPartyOnly,
  kFirstPartyOnly,
};

/// The subject of a classification query.
struct Request {
  std::string url;        // full spec, original case
  std::string url_lower;  // pre-lowered for case-insensitive matching
  std::string host;       // lower-case request host
  std::string page_host;  // lower-case host of the page that triggered it
  std::string page_url_lower;  // lower-case URL of that page ("" if unknown)
  http::RequestType type = http::RequestType::kOther;
};

/// Borrowed view of a Request — everything matching actually reads. The
/// engine also builds one over per-page strings for "$document" probes,
/// which keeps that path free of string copies.
struct RequestView {
  std::string_view url;
  std::string_view url_lower;
  std::string_view host;
  std::string_view page_host;
  std::string_view page_url_lower;
  http::RequestType type = http::RequestType::kOther;
  // Lazily memoized is_third_party(host, page_host): it is a pure function
  // of the request, yet it was recomputed (public-suffix walk included)
  // for every $third-party candidate filter. -1 = not yet computed.
  mutable std::int8_t third_party_memo = -1;

  RequestView() = default;
  RequestView(const Request& request)  // NOLINT: implicit by design
      : url(request.url),
        url_lower(request.url_lower),
        host(request.host),
        page_host(request.page_host),
        page_url_lower(request.page_url_lower),
        type(request.type) {}
};

/// Execution strategy chosen for a pattern when it is compiled at parse
/// time (DESIGN.md §4.1).
enum class PatternClass : std::uint8_t {
  kRegex,    // "/.../" rule, delegated to std::regex
  kLiteral,  // no '*'/'^': a single find/compare per candidate position
  kGeneral,  // wildcard program, matched iteratively without recursion
};

/// Why a line was rejected by Filter::parse — machine-readable so the
/// lint layer (src/lint/) can report "file:line: unknown option 'foo'"
/// instead of a bare discard count.
struct ParseDiagnosis {
  enum class Reason : std::uint8_t {
    kNone,            // parsed successfully
    kEmpty,           // blank line
    kComment,         // "!" comment or "[...]" header
    kElementHiding,   // "##"/"#@#"/"#?#" rule (handled by FilterList)
    kBadElementHiding,  // element-hiding separator but malformed rule
    kUnknownOption,   // "$" option this engine does not know
    kBadOptionSyntax,   // empty option, "~" on a non-invertible option
    kBadRegex,        // "/.../" rule whose expression failed to compile
    kEmptyPattern,    // anchor-less empty body (would match everything)
  };
  Reason reason = Reason::kNone;
  std::string detail;  // offending option text, regex error message, ...
};

std::string_view to_string(ParseDiagnosis::Reason reason) noexcept;

class Filter {
 public:
  /// Parse one filter line. Returns nullopt for comments, element-hiding
  /// rules, empty lines and rules with unsupported/unknown options (ABP
  /// discards those too). When `why` is non-null it records the rejection
  /// reason (kNone on success).
  static std::optional<Filter> parse(std::string_view line,
                                     ParseDiagnosis* why = nullptr);

  /// True for "@@" exception rules.
  bool is_exception() const noexcept { return exception_; }

  /// True when the rule carries the $document option (page whitelisting).
  bool whitelists_document() const noexcept {
    return exception_ &&
           (type_mask_ & type_bit(http::RequestType::kDocument)) != 0;
  }

  bool matches(const RequestView& request) const;

  /// Pattern-only match against a lower-case URL string; ignores options.
  /// Exposed for tests and for the query-string normalizer, which needs to
  /// know whether a literal appears in any rule.
  bool matches_url(std::string_view url_lower,
                   std::string_view url_original) const;

  /// Reference implementation of matches_url built on the recursive
  /// wildcard matcher. Kept as the differential-test oracle for the
  /// compiled fast paths; never used on the classification hot path.
  bool matches_url_oracle(std::string_view url_lower,
                          std::string_view url_original) const;

  PatternClass pattern_class() const noexcept { return class_; }

  const std::string& text() const noexcept { return text_; }
  const std::string& pattern() const noexcept { return pattern_; }
  /// Pattern body in its original case ($match-case matching; lint uses
  /// it for case-sensitive subsumption checks).
  const std::string& pattern_original() const noexcept {
    return pattern_original_;
  }
  /// For kRegex rules: the expression between the slashes (original
  /// case). Empty for non-regex rules.
  std::string_view regex_source() const noexcept {
    if (regex_ == nullptr || pattern_original_.size() < 2) return {};
    return std::string_view(pattern_original_).substr(
        1, pattern_original_.size() - 2);
  }
  TypeMask type_mask() const noexcept { return type_mask_; }
  ThirdPartyConstraint third_party() const noexcept { return third_party_; }
  bool match_case() const noexcept { return match_case_; }
  bool domain_anchor() const noexcept { return domain_anchor_; }
  bool start_anchor() const noexcept { return start_anchor_; }
  bool end_anchor() const noexcept { return end_anchor_; }
  bool is_regex() const noexcept { return regex_ != nullptr; }
  const std::vector<std::string>& include_domains() const noexcept {
    return include_domains_;
  }
  const std::vector<std::string>& exclude_domains() const noexcept {
    return exclude_domains_;
  }

  /// Candidate index keywords: maximal [a-z0-9%] runs of length >= 3 that
  /// are guaranteed to appear as complete tokens in any matching URL.
  std::vector<std::string> index_keywords() const;

 private:
  Filter() = default;

  bool parse_options(std::string_view options, ParseDiagnosis* why);
  bool domain_constraint_ok(std::string_view page_host) const;
  /// Classify the pattern and record the leading-literal offsets the
  /// compiled matcher seeds candidate positions from. Run once at the end
  /// of parse().
  void compile();
  /// Anchored match attempt at one position (domain/start anchors).
  bool match_at(std::string_view pat, std::string_view url,
                std::size_t pos) const;

  std::string text_;     // original rule text
  std::string pattern_;  // body without anchors/options, lower-cased
  std::string pattern_original_;  // original case (for $match-case)
  // Compiled pattern program: the class picks the matcher; for kGeneral,
  // scan_skip_ strips leading '*'s and lead_lit_len_ is the length of the
  // first literal run (offsets into pattern_, which is case-aligned with
  // pattern_original_ — to_lower never moves characters).
  PatternClass class_ = PatternClass::kLiteral;
  std::uint32_t scan_skip_ = 0;
  std::uint32_t lead_lit_len_ = 0;
  // Compiled "/.../" rule; shared_ptr keeps Filter copyable.
  std::shared_ptr<const std::regex> regex_;
  bool exception_ = false;
  bool domain_anchor_ = false;
  bool start_anchor_ = false;
  bool end_anchor_ = false;
  bool match_case_ = false;
  TypeMask type_mask_ = kDefaultTypeMask;
  ThirdPartyConstraint third_party_ = ThirdPartyConstraint::kAny;
  std::vector<std::string> include_domains_;
  std::vector<std::string> exclude_domains_;
};

/// Separator per the ABP definition: anything but a letter, a digit, or
/// one of "_", "-", ".", "%".
constexpr bool is_separator(char c) noexcept {
  return !((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
           (c >= '0' && c <= '9') || c == '_' || c == '-' || c == '.' ||
           c == '%');
}

/// True when c participates in index keywords ([a-z0-9%]).
constexpr bool is_keyword_char(char c) noexcept {
  return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '%';
}

}  // namespace adscope::adblock
