#include "adblock/classify_cache.h"

namespace adscope::adblock {

ClassifyCache::ClassifyCache(std::size_t capacity) {
  if (capacity == 0) return;
  std::size_t sets = 1;
  while (sets * kWays < capacity) sets <<= 1;
  entries_.resize(sets * kWays);
  hand_.assign(sets, 0);
  set_mask_ = sets - 1;
}

const Classification* ClassifyCache::find(std::uint64_t key1,
                                          std::uint64_t key2,
                                          std::uint64_t epoch) noexcept {
  if (entries_.empty()) return nullptr;
  if (epoch != epoch_) {
    clear();
    epoch_ = epoch;
  }
  const auto base = (key1 & set_mask_) * kWays;
  for (std::size_t way = 0; way < kWays; ++way) {
    Entry& entry = entries_[base + way];
    if (entry.used && entry.key1 == key1 && entry.key2 == key2) {
      entry.referenced = true;
      ++hits_;
      return &entry.value;
    }
  }
  ++misses_;
  return nullptr;
}

void ClassifyCache::insert(std::uint64_t key1, std::uint64_t key2,
                           std::uint64_t epoch, const Classification& value) {
  if (entries_.empty()) return;
  if (epoch != epoch_) {
    clear();
    epoch_ = epoch;
  }
  const auto set = key1 & set_mask_;
  const auto base = set * kWays;
  std::size_t victim = kWays;
  for (std::size_t way = 0; way < kWays; ++way) {
    Entry& entry = entries_[base + way];
    if (entry.used && entry.key1 == key1 && entry.key2 == key2) {
      victim = way;  // refresh in place (concurrent duplicate insert)
      break;
    }
    if (victim == kWays && !entry.used) victim = way;
  }
  if (victim == kWays) {
    // CLOCK within the set: sweep from the hand, clearing second-chance
    // bits until one entry is out of chances (at most two passes).
    auto hand = hand_[set];
    for (;;) {
      Entry& entry = entries_[base + hand];
      if (!entry.referenced) {
        victim = hand;
        hand_[set] = static_cast<std::uint8_t>((hand + 1) % kWays);
        break;
      }
      entry.referenced = false;
      hand = static_cast<std::uint8_t>((hand + 1) % kWays);
    }
  }
  Entry& entry = entries_[base + victim];
  if (!entry.used) ++live_;
  entry.key1 = key1;
  entry.key2 = key2;
  entry.value = value;
  entry.used = true;
  entry.referenced = true;
}

void ClassifyCache::clear() noexcept {
  for (auto& entry : entries_) {
    entry.used = false;
    entry.referenced = false;
  }
  if (!hand_.empty()) hand_.assign(hand_.size(), 0);
  live_ = 0;
}

}  // namespace adscope::adblock
