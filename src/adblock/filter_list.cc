#include "adblock/filter_list.h"

#include "util/strings.h"

namespace adscope::adblock {

std::string_view to_string(ListKind kind) noexcept {
  switch (kind) {
    case ListKind::kEasyList: return "EasyList";
    case ListKind::kEasyListDerivative: return "EasyList-derivative";
    case ListKind::kEasyPrivacy: return "EasyPrivacy";
    case ListKind::kAcceptableAds: return "non-intrusive-ads";
    case ListKind::kCustom: return "custom";
  }
  return "custom";
}

void FilterList::parse_metadata(std::string_view line) {
  // "! Key: value"
  auto body = util::trim(line.substr(1));
  const auto colon = body.find(':');
  if (colon == std::string_view::npos) return;
  const auto key = util::trim(body.substr(0, colon));
  const auto value = util::trim(body.substr(colon + 1));
  if (util::iequals(key, "Title")) {
    title_ = std::string(value);
  } else if (util::iequals(key, "Version")) {
    version_ = std::string(value);
  } else if (util::iequals(key, "Expires")) {
    // "4 days" / "12 hours", optionally followed by a comment.
    std::uint64_t amount = 0;
    std::size_t i = 0;
    while (i < value.size() && util::is_ascii_digit(value[i])) {
      amount = amount * 10 + static_cast<std::uint64_t>(value[i] - '0');
      ++i;
    }
    const auto unit = util::trim(value.substr(i));
    if (amount > 0) {
      if (util::starts_with(unit, "hour")) {
        expires_hours_ = static_cast<unsigned>(amount);
      } else {  // days is the default unit
        expires_hours_ = static_cast<unsigned>(amount * 24);
      }
    }
  }
}

std::optional<ElementHidingRule> FilterList::parse_elemhide(
    std::string_view line) {
  bool exception = false;
  auto sep = line.find("#@#");
  std::size_t sep_len = 3;
  if (sep != std::string_view::npos) {
    exception = true;
  } else {
    sep = line.find("##");
    sep_len = 2;
  }
  if (sep == std::string_view::npos) return std::nullopt;
  ElementHidingRule rule;
  rule.exception = exception;
  rule.selector = std::string(util::trim(line.substr(sep + sep_len)));
  if (rule.selector.empty()) return std::nullopt;
  for (auto dom : util::split_nonempty(line.substr(0, sep), ',')) {
    dom = util::trim(dom);
    if (dom.empty()) continue;
    if (dom[0] == '~') {
      rule.exclude_domains.emplace_back(util::to_lower(dom.substr(1)));
    } else {
      rule.include_domains.emplace_back(util::to_lower(dom));
    }
  }
  return rule;
}

FilterList FilterList::parse(std::string_view text, ListKind kind,
                             std::string name) {
  FilterList list;
  list.kind_ = kind;
  list.name_ = std::move(name);

  std::size_t start = 0;
  std::uint32_t line_no = 0;
  while (start <= text.size()) {
    auto end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    const auto line = util::trim(text.substr(start, end - start));
    start = end + 1;
    ++line_no;

    if (line.empty()) continue;
    if (line[0] == '[') continue;  // "[Adblock Plus 2.0]" header
    if (line[0] == '!') {
      list.parse_metadata(line);
      continue;
    }
    if (line.find("##") != std::string_view::npos ||
        line.find("#@#") != std::string_view::npos) {
      if (auto rule = parse_elemhide(line)) {
        list.elemhide_.push_back(std::move(*rule));
      } else {
        ++list.discarded_;
        list.discarded_lines_.push_back(
            {line_no, std::string(line),
             {ParseDiagnosis::Reason::kBadElementHiding, {}}});
      }
      continue;
    }
    ParseDiagnosis why;
    if (auto filter = Filter::parse(line, &why)) {
      if (filter->is_exception()) ++list.exceptions_;
      list.filters_.push_back(std::move(*filter));
      list.filter_lines_.push_back(line_no);
    } else {
      ++list.discarded_;
      list.discarded_lines_.push_back(
          {line_no, std::string(line), std::move(why)});
    }
  }
  return list;
}

}  // namespace adscope::adblock
