// FilterEngine — the libadblockplus-equivalent classification core.
//
// Holds an ordered set of filter lists and answers, for each request:
// is it a match, which list triggered, and is it whitelisted — the exact
// result triple the paper extracts from libadblockplus (Figure 1).
//
// Semantics follow Adblock Plus: a request is *blocked* when a blocking
// rule matches and no exception rule does; an exception match (from any
// list — in practice the acceptable-ads whitelist) marks the request
// *whitelisted*, remembering the blocking rule it overrode so analyses
// like §7.3 ("would this have been blocked otherwise?") can be answered.
// "$document" exceptions whitelist every request of a matching page.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "adblock/filter.h"
#include "adblock/filter_list.h"
#include "adblock/token_index.h"

namespace adscope::adblock {

using ListId = int;
constexpr ListId kNoList = -1;

enum class Decision : std::uint8_t {
  kNoMatch,
  kBlocked,
  kWhitelisted,
};

std::string_view to_string(Decision decision) noexcept;

/// Result of classifying one request.
struct Classification {
  Decision decision = Decision::kNoMatch;
  ListId list = kNoList;            // list that decided (block or whitelist)
  ListKind list_kind = ListKind::kCustom;
  const Filter* filter = nullptr;   // rule that decided
  ListId blocked_by_list = kNoList;  // when whitelisted: overridden rule
  ListKind blocked_by_kind = ListKind::kCustom;
  const Filter* blocked_by = nullptr;

  /// The paper's "ad request": blacklisted by any blocking list, or
  /// whitelisted by the non-intrusive-ads list. Exception rules *inside*
  /// a blocking list protect non-ad resources and do not count.
  bool is_ad() const noexcept {
    return decision == Decision::kBlocked ||
           (decision == Decision::kWhitelisted &&
            list_kind == ListKind::kAcceptableAds);
  }

  /// Whitelisted requests that a blacklist would otherwise have caught.
  bool whitelist_saved_it() const noexcept {
    return decision == Decision::kWhitelisted && blocked_by != nullptr;
  }

  /// Kind of the blocking list that (would have) caught the request.
  ListKind effective_block_kind() const noexcept {
    return decision == Decision::kBlocked ? list_kind : blocked_by_kind;
  }
};

class FilterEngine {
 public:
  FilterEngine() = default;

  // Lists are consulted in insertion order; insert EasyList before
  // EasyPrivacy to reproduce the paper's attribution priority.
  ListId add_list(FilterList list);

  void set_enabled(ListId id, bool enabled);
  bool enabled(ListId id) const;

  const FilterList& list(ListId id) const;
  std::size_t list_count() const noexcept { return slots_.size(); }

  /// Find the first list of a given kind, or kNoList.
  ListId find_list(ListKind kind) const noexcept;

  Classification classify(const Request& request) const;

  /// True when `literal` (lower-case) occurs in the body of any loaded
  /// rule. The query normalizer (§3.1 "Base URL") uses this to avoid
  /// rewriting query fields that filters key on.
  bool pattern_contains_literal(std::string_view literal_lower) const;

  /// Number of URL filters across enabled lists (for stats/benches).
  std::size_t active_filter_count() const noexcept;

 private:
  struct Slot {
    FilterList list;
    TokenIndex blocking;
    TokenIndex exceptions;
    // Exceptions carrying $document whitelist whole pages; they are few
    // and matched against the page URL, so a flat vector is right.
    std::vector<const Filter*> document_exceptions;
    bool enabled = true;
  };

  const Filter* match_blocking(const Slot& slot,
                               std::span<const std::uint64_t> tokens,
                               const Request& request) const;
  const Filter* match_exception(const Slot& slot,
                                std::span<const std::uint64_t> tokens,
                                const Request& request) const;

  std::vector<Slot> slots_;
};

/// Build a Request from URL pieces (convenience for callers/tests).
Request make_request(std::string_view url, std::string_view page_url,
                     http::RequestType type);

}  // namespace adscope::adblock
