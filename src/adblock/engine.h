// FilterEngine — the libadblockplus-equivalent classification core.
//
// Holds an ordered set of filter lists and answers, for each request:
// is it a match, which list triggered, and is it whitelisted — the exact
// result triple the paper extracts from libadblockplus (Figure 1).
//
// Semantics follow Adblock Plus: a request is *blocked* when a blocking
// rule matches and no exception rule does; an exception match (from any
// list — in practice the acceptable-ads whitelist) marks the request
// *whitelisted*, remembering the blocking rule it overrode so analyses
// like §7.3 ("would this have been blocked otherwise?") can be answered.
// "$document" exceptions whitelist every request of a matching page.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "adblock/filter.h"
#include "adblock/filter_list.h"
#include "adblock/token_index.h"

namespace adscope::adblock {

using ListId = int;
constexpr ListId kNoList = -1;

enum class Decision : std::uint8_t {
  kNoMatch,
  kBlocked,
  kWhitelisted,
};

std::string_view to_string(Decision decision) noexcept;

/// Result of classifying one request.
struct Classification {
  Decision decision = Decision::kNoMatch;
  ListId list = kNoList;            // list that decided (block or whitelist)
  ListKind list_kind = ListKind::kCustom;
  const Filter* filter = nullptr;   // rule that decided
  ListId blocked_by_list = kNoList;  // when whitelisted: overridden rule
  ListKind blocked_by_kind = ListKind::kCustom;
  const Filter* blocked_by = nullptr;

  /// The paper's "ad request": blacklisted by any blocking list, or
  /// whitelisted by the non-intrusive-ads list. Exception rules *inside*
  /// a blocking list protect non-ad resources and do not count.
  bool is_ad() const noexcept {
    return decision == Decision::kBlocked ||
           (decision == Decision::kWhitelisted &&
            list_kind == ListKind::kAcceptableAds);
  }

  /// Whitelisted requests that a blacklist would otherwise have caught.
  bool whitelist_saved_it() const noexcept {
    return decision == Decision::kWhitelisted && blocked_by != nullptr;
  }

  /// Kind of the blocking list that (would have) caught the request.
  ListKind effective_block_kind() const noexcept {
    return decision == Decision::kBlocked ? list_kind : blocked_by_kind;
  }
};

class FilterEngine {
 public:
  FilterEngine() = default;

  // Lists are consulted in insertion order; insert EasyList before
  // EasyPrivacy to reproduce the paper's attribution priority.
  ListId add_list(FilterList list);

  void set_enabled(ListId id, bool enabled);
  bool enabled(ListId id) const;

  const FilterList& list(ListId id) const;
  std::size_t list_count() const noexcept { return slots_.size(); }

  /// Find the first list of a given kind, or kNoList.
  ListId find_list(ListKind kind) const noexcept;

  /// Classify a request. The convenience overload tokenizes into a stack
  /// scratch; the hot-path overload takes pre-tokenized URL tokens (from
  /// a caller-owned TokenScratch) and performs no heap allocation for
  /// non-regex filter lists.
  Classification classify(const Request& request) const;
  Classification classify(const RequestView& request,
                          std::span<const std::uint64_t> tokens) const;

  /// Monotonic configuration version: bumped by add_list/set_enabled.
  /// Classification caches key on it so a config change invalidates every
  /// memoized verdict (the Filter pointers and attribution would be
  /// stale).
  std::uint64_t config_epoch() const noexcept { return epoch_; }

  /// True when `literal` (lower-case) occurs in the body of any loaded
  /// rule. The query normalizer (§3.1 "Base URL") uses this to avoid
  /// rewriting query fields that filters key on.
  bool pattern_contains_literal(std::string_view literal_lower) const;

  /// Number of URL filters across enabled lists (for stats/benches).
  std::size_t active_filter_count() const noexcept;

 private:
  struct Slot {
    FilterList list;
    TokenIndex blocking;
    TokenIndex exceptions;
    // Exceptions carrying $document whitelist whole pages; they are few
    // and matched against the page URL, so a flat vector is right.
    std::vector<const Filter*> document_exceptions;
    bool enabled = true;
  };

  const Filter* match_blocking(const Slot& slot,
                               std::span<const std::uint64_t> tokens,
                               const RequestView& request) const;
  const Filter* match_exception(const Slot& slot,
                                std::span<const std::uint64_t> tokens,
                                const RequestView& request) const;

  std::vector<Slot> slots_;
  std::uint64_t epoch_ = 0;
};

/// Build a Request from URL pieces (convenience for callers/tests).
Request make_request(std::string_view url, std::string_view page_url,
                     http::RequestType type);

/// Allocation-reusing variant: fills `out` in place, reusing its string
/// capacity. `out` may alias a previously filled Request.
void make_request_into(std::string_view url, std::string_view page_url,
                       http::RequestType type, Request& out);

/// Caller-owned per-thread scratch for the zero-allocation classify path:
/// a reusable Request (string capacity persists across calls), the token
/// buffer, and a spec-rendering buffer for cache keys.
struct RequestScratch {
  Request request;
  TokenScratch tokens;
  std::string raw_spec;
};

}  // namespace adscope::adblock
