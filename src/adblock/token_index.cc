#include "adblock/token_index.h"

#include <algorithm>
#include <stdexcept>

#include "util/strings.h"

namespace adscope::adblock {

namespace {

/// Walk the keyword runs of `url_lower`, calling `emit` with each run's
/// FNV hash. Shared by the vector and scratch tokenizers. The hash is
/// folded into the same character walk that finds the run boundaries —
/// one pass over the URL instead of scan-then-rehash.
template <typename Emit>
void for_each_token(std::string_view url_lower, Emit&& emit) {
  const char* p = url_lower.data();
  const char* const end = p + url_lower.size();
  while (p != end) {
    if (!is_keyword_char(*p)) {
      ++p;
      continue;
    }
    const char* const run = p;
    std::uint64_t hash = util::kFnvOffset;
    do {
      hash ^= static_cast<std::uint8_t>(*p);
      hash *= util::kFnvPrime;
      ++p;
    } while (p != end && is_keyword_char(*p));
    if (p - run >= 3) emit(hash);
  }
}

}  // namespace

std::vector<std::uint64_t> url_token_hashes(std::string_view url_lower) {
  std::vector<std::uint64_t> tokens;
  for_each_token(url_lower, [&tokens](std::uint64_t hash) {
    if (std::find(tokens.begin(), tokens.end(), hash) == tokens.end()) {
      tokens.push_back(hash);
    }
  });
  return tokens;
}

std::span<const std::uint64_t> TokenScratch::tokenize(
    std::string_view url_lower) {
  std::size_t count = 0;
  bool spilled = false;
  for_each_token(url_lower, [&](std::uint64_t hash) {
    if (!spilled) {
      for (std::size_t k = 0; k < count; ++k) {
        if (inline_[k] == hash) return;
      }
      if (count < kInlineCapacity) {
        inline_[count++] = hash;
        return;
      }
      // Pathological URL: continue in the retained overflow vector.
      overflow_.assign(inline_.begin(), inline_.end());
      spilled = true;
    }
    if (std::find(overflow_.begin(), overflow_.end(), hash) ==
        overflow_.end()) {
      overflow_.push_back(hash);
    }
  });
  if (spilled) return {overflow_.data(), overflow_.size()};
  return {inline_.data(), count};
}

void TokenIndex::add(const Filter* filter) {
  if (finalized_) {
    throw std::logic_error("TokenIndex::add after finalize()");
  }
  const auto keywords = filter->index_keywords();
  if (keywords.empty()) {
    unindexed_.push_back(filter);
    return;
  }
  // Place the filter in the currently least-crowded bucket among its
  // keywords (ties: longer keyword first — more selective).
  const std::string* best = nullptr;
  std::size_t best_load = 0;
  for (const auto& kw : keywords) {
    const auto it = building_.find(util::fnv1a(kw));
    const std::size_t load = it == building_.end() ? 0 : it->second.size();
    if (best == nullptr || load < best_load ||
        (load == best_load && kw.size() > best->size())) {
      best = &kw;
      best_load = load;
    }
  }
  building_[util::fnv1a(*best)].push_back(filter);
  ++indexed_;
}

void TokenIndex::finalize() {
  if (finalized_) return;
  finalized_ = true;
  keys_ = building_.size();
  if (keys_ == 0) return;

  // Deterministic layout: keys in ascending order (unordered_map order is
  // platform-defined); per-key candidate order stays insertion order, so
  // scan results are bit-identical to the build-map path.
  std::vector<std::uint64_t> keys;
  keys.reserve(keys_);
  for (const auto& [key, filters] : building_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());

  std::size_t slots = 1;
  while (slots < keys_ * 2) slots <<= 1;  // <= 50% load factor
  table_.assign(slots, Probe{});
  mask_ = slots - 1;
  // ~4 bloom bits per slot (min one 64-bit word).
  const std::size_t bloom_words = std::max<std::size_t>(slots / 16, 1);
  bloom_.assign(bloom_words, 0);
  bloom_mask_ = bloom_words - 1;
  for (const auto& [key, filters] : building_) {
    bloom_[(key >> 6) & bloom_mask_] |= std::uint64_t{1} << (key & 63);
  }
  arena_.reserve(indexed_);
  for (const auto key : keys) {
    auto& filters = building_[key];
    Probe probe;
    probe.key = key;
    probe.begin = static_cast<std::uint32_t>(arena_.size());
    probe.count = static_cast<std::uint32_t>(filters.size());
    arena_.insert(arena_.end(), filters.begin(), filters.end());
    auto slot = key & mask_;
    while (table_[slot].count != 0) slot = (slot + 1) & mask_;
    table_[slot] = probe;
  }
  building_.clear();
}

}  // namespace adscope::adblock
