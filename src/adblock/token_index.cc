#include "adblock/token_index.h"

#include "util/strings.h"

namespace adscope::adblock {

std::vector<std::uint64_t> url_token_hashes(std::string_view url_lower) {
  std::vector<std::uint64_t> tokens;
  std::size_t i = 0;
  while (i < url_lower.size()) {
    if (!is_keyword_char(url_lower[i])) {
      ++i;
      continue;
    }
    std::size_t j = i;
    while (j < url_lower.size() && is_keyword_char(url_lower[j])) ++j;
    if (j - i >= 3) tokens.push_back(util::fnv1a(url_lower.substr(i, j - i)));
    i = j;
  }
  return tokens;
}

void TokenIndex::add(const Filter* filter) {
  const auto keywords = filter->index_keywords();
  if (keywords.empty()) {
    unindexed_.push_back(filter);
    return;
  }
  // Place the filter in the currently least-crowded bucket among its
  // keywords (ties: longer keyword first — more selective).
  const std::string* best = nullptr;
  std::size_t best_load = 0;
  for (const auto& kw : keywords) {
    const auto it = buckets_.find(util::fnv1a(kw));
    const std::size_t load = it == buckets_.end() ? 0 : it->second.size();
    if (best == nullptr || load < best_load ||
        (load == best_load && kw.size() > best->size())) {
      best = &kw;
      best_load = load;
    }
  }
  buckets_[util::fnv1a(*best)].push_back(filter);
  ++indexed_;
}

}  // namespace adscope::adblock
