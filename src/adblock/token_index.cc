#include "adblock/token_index.h"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <stdexcept>

#include "util/simd.h"
#include "util/strings.h"

namespace adscope::adblock {

namespace {

/// Reference walker: byte-at-a-time boundary test with the FNV hash
/// folded into the same pass. The differential oracle for the SIMD run
/// scanner below.
template <typename Emit>
void for_each_token_scalar(std::string_view url_lower, Emit&& emit) {
  const char* p = url_lower.data();
  const char* const end = p + url_lower.size();
  while (p != end) {
    if (!is_keyword_char(*p)) {
      ++p;
      continue;
    }
    const char* const run = p;
    std::uint64_t hash = util::kFnvOffset;
    do {
      hash ^= static_cast<std::uint8_t>(*p);
      hash *= util::kFnvPrime;
      ++p;
    } while (p != end && is_keyword_char(*p));
    if (p - run >= 3) emit(hash);
  }
}

/// SIMD run scanner: classify a span of the URL into a keyword bitset
/// with the dispatched kernel (32/16 bytes per instruction on
/// AVX2/SSE2), then walk runs with ctz/shift arithmetic — the per-byte
/// work that remains is the FNV multiply over actual keyword bytes,
/// which the hash demands anyway. Emits exactly what
/// for_each_token_scalar emits, for every ADSCOPE_SIMD level (the
/// scalar kernel produces the same bitset).
template <typename Emit>
void for_each_token(std::string_view url_lower, Emit&& emit) {
  const char* const data = url_lower.data();
  const std::size_t n = url_lower.size();
  constexpr std::size_t kSpan = 512;  // bitset span; URLs rarely need two
  std::uint64_t bits[kSpan / 64];

  std::uint64_t hash = util::kFnvOffset;
  std::size_t run_start = 0;
  bool in_run = false;
  for (std::size_t base = 0; base < n; base += kSpan) {
    const std::size_t len = std::min(kSpan, n - base);
    util::simd::keyword_bits(data + base, len, bits);
    const std::size_t words = (len + 63) / 64;
    for (std::size_t w = 0; w < words; ++w) {
      const std::uint64_t word = bits[w];  // tail bits beyond len are 0
      const std::size_t word_base = base + w * 64;
      std::size_t pos = 0;
      while (pos < 64) {
        if (!in_run) {
          const std::uint64_t rest = word >> pos;
          if (rest == 0) break;
          pos += static_cast<std::size_t>(std::countr_zero(rest));
          run_start = word_base + pos;
          hash = util::kFnvOffset;
          in_run = true;
        }
        const std::size_t run_len = static_cast<std::size_t>(
            std::countr_one(word >> pos));  // 64 - pos when all ones
        for (std::size_t k = 0; k < run_len; ++k) {
          hash ^= static_cast<std::uint8_t>(data[word_base + pos + k]);
          hash *= util::kFnvPrime;
        }
        pos += run_len;
        if (pos < 64) {
          // The next bit is 0: the run ends here.
          if (word_base + pos - run_start >= 3) emit(hash);
          in_run = false;
        }
        // pos == 64: the run may continue into the next word (or span).
      }
    }
  }
  if (in_run && n - run_start >= 3) emit(hash);
}

}  // namespace

std::vector<std::uint64_t> url_token_hashes(std::string_view url_lower) {
  // Same inline-dedup strategy as TokenScratch (first occurrence wins),
  // materialized into an owned vector — not the old std::find-per-token
  // O(n^2) walk over the growing output.
  TokenScratch scratch;
  const auto tokens = scratch.tokenize(url_lower);
  return {tokens.begin(), tokens.end()};
}

std::vector<std::uint64_t> url_token_hashes_oracle(
    std::string_view url_lower) {
  std::vector<std::uint64_t> tokens;
  for_each_token_scalar(url_lower, [&tokens](std::uint64_t hash) {
    if (std::find(tokens.begin(), tokens.end(), hash) == tokens.end()) {
      tokens.push_back(hash);
    }
  });
  return tokens;
}

std::span<const std::uint64_t> TokenScratch::tokenize(
    std::string_view url_lower) {
  std::size_t count = 0;
  bool spilled = false;
  for_each_token(url_lower, [&](std::uint64_t hash) {
    if (!spilled) {
      if (util::simd::contains_u64(inline_.data(), count, hash)) return;
      if (count < kInlineCapacity) {
        inline_[count++] = hash;
        return;
      }
      // Pathological URL: continue in the retained overflow vector.
      overflow_.assign(inline_.begin(), inline_.end());
      spilled = true;
    }
    if (!util::simd::contains_u64(overflow_.data(), overflow_.size(), hash)) {
      overflow_.push_back(hash);
    }
  });
  if (spilled) return {overflow_.data(), overflow_.size()};
  return {inline_.data(), count};
}

std::atomic<bool> TokenIndex::prefilter_enabled_{[] {
  const char* env = std::getenv("ADSCOPE_TEDDY");
  return env == nullptr || std::string_view(env) != "off";
}()};

void TokenIndex::set_prefilter_enabled(bool enabled) noexcept {
  prefilter_enabled_.store(enabled, std::memory_order_relaxed);
}

bool TokenIndex::prefilter_enabled() noexcept {
  return prefilter_enabled_.load(std::memory_order_relaxed);
}

void TokenIndex::add(const Filter* filter) {
  if (finalized_) {
    throw std::logic_error("TokenIndex::add after finalize()");
  }
  const auto keywords = filter->index_keywords();
  if (keywords.empty()) {
    unindexed_.push_back(filter);
    return;
  }
  // Place the filter in the currently least-crowded bucket among its
  // keywords (ties: longer keyword first — more selective).
  const std::string* best = nullptr;
  std::size_t best_load = 0;
  for (const auto& kw : keywords) {
    const auto it = building_.find(util::fnv1a(kw));
    const std::size_t load = it == building_.end() ? 0 : it->second.size();
    if (best == nullptr || load < best_load ||
        (load == best_load && kw.size() > best->size())) {
      best = &kw;
      best_load = load;
    }
  }
  building_[util::fnv1a(*best)].push_back(filter);
  ++indexed_;
}

void TokenIndex::finalize() {
  if (finalized_) return;
  finalized_ = true;
  keys_ = building_.size();
  const auto teddy_bits = [this](const Filter& filter) {
    return teddy_.add(filter);
  };

  // Teddy bucket bits for the filters that are scanned unconditionally.
  unindexed_bits_.reserve(unindexed_.size());
  for (const Filter* filter : unindexed_) {
    unindexed_bits_.push_back(teddy_bits(*filter));
  }

  if (keys_ == 0) return;

  // Deterministic layout: keys in ascending order (unordered_map order is
  // platform-defined); per-key candidate order stays insertion order, so
  // scan results are bit-identical to the build-map path.
  std::vector<std::uint64_t> keys;
  keys.reserve(keys_);
  for (const auto& [key, filters] : building_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());

  std::size_t slots = 1;
  while (slots < keys_ * 2) slots <<= 1;  // <= 50% load factor
  table_.assign(slots, Probe{});
  mask_ = slots - 1;
  // ~4 bloom bits per slot (min one 64-bit word).
  const std::size_t bloom_words = std::max<std::size_t>(slots / 16, 1);
  bloom_.assign(bloom_words, 0);
  bloom_mask_ = bloom_words - 1;
  for (const auto& [key, filters] : building_) {
    bloom_[(key >> 6) & bloom_mask_] |= std::uint64_t{1} << (key & 63);
  }
  arena_.reserve(indexed_);
  arena_bits_.reserve(indexed_);
  for (const auto key : keys) {
    auto& filters = building_[key];
    Probe probe;
    probe.key = key;
    probe.begin = static_cast<std::uint32_t>(arena_.size());
    probe.count = static_cast<std::uint32_t>(filters.size());
    arena_.insert(arena_.end(), filters.begin(), filters.end());
    for (const Filter* filter : filters) {
      arena_bits_.push_back(teddy_bits(*filter));
    }
    auto slot = key & mask_;
    while (table_[slot].count != 0) slot = (slot + 1) & mask_;
    table_[slot] = probe;
  }
  building_.clear();
}

}  // namespace adscope::adblock
