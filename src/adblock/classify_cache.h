// Bounded memoization of FilterEngine::classify results.
//
// Trace URLs are Zipf-repetitive (the RBN workload model, DESIGN.md §2;
// Gugelmann et al. observe the same skew in real ad/tracker traffic), so
// the same (URL, page, type) triple is classified over and over. A
// classification is a pure function of that triple plus the engine
// configuration, which makes it safe to cache: the key folds the
// original-case URL (match-case/regex rules see case), the page URL
// (page host and "$document" probes derive from it) and the request
// type; the engine's config epoch invalidates everything when lists are
// added or toggled.
//
// The cache is owned per pipeline shard (one per TraceClassifier), never
// shared across threads — no locks, and the Filter pointers inside a
// cached Classification stay valid because the engine outlives every
// shard. Eviction is set-associative CLOCK: fixed arrays, no heap
// traffic after construction, and a lookup is one indexed probe of
// kWays entries — the hit path performs zero allocations.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "adblock/engine.h"
#include "util/hash.h"

namespace adscope::adblock {

class ClassifyCache {
 public:
  static constexpr std::size_t kWays = 4;

  /// `capacity` is the entry budget (rounded up to a power-of-two set
  /// count times kWays); 0 disables the cache entirely.
  explicit ClassifyCache(std::size_t capacity);

  bool enabled() const noexcept { return !entries_.empty(); }

  /// First key half: hash of the original-case request URL.
  static std::uint64_t key_of_url(std::string_view url) noexcept {
    return util::fnv1a(url);
  }
  /// Second key half: page URL folded with the request type.
  static std::uint64_t key_of_context(std::string_view page_url,
                                      http::RequestType type) noexcept {
    return util::hash_combine(util::fnv1a(page_url),
                              static_cast<std::uint64_t>(type) + 1);
  }

  /// Look up (key1, key2) under the given engine epoch. An epoch change
  /// drops every entry (the Filter pointers may dangle conceptually —
  /// the attribution rules changed). Returns nullptr on miss.
  const Classification* find(std::uint64_t key1, std::uint64_t key2,
                             std::uint64_t epoch) noexcept;

  /// Remember a classification; evicts within the target set via CLOCK.
  void insert(std::uint64_t key1, std::uint64_t key2, std::uint64_t epoch,
              const Classification& value);

  void clear() noexcept;

  std::uint64_t hits() const noexcept { return hits_; }
  std::uint64_t misses() const noexcept { return misses_; }
  std::size_t size() const noexcept { return live_; }
  std::size_t capacity() const noexcept { return entries_.size(); }

 private:
  struct Entry {
    std::uint64_t key1 = 0;
    std::uint64_t key2 = 0;
    Classification value;
    bool used = false;
    bool referenced = false;  // CLOCK second-chance bit
  };

  std::vector<Entry> entries_;      // sets_ * kWays, contiguous
  std::vector<std::uint8_t> hand_;  // per-set CLOCK hand
  std::uint64_t set_mask_ = 0;
  std::uint64_t epoch_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::size_t live_ = 0;
};

}  // namespace adscope::adblock
