#include "adblock/subscription.h"

#include <limits>

namespace adscope::adblock {

void SubscriptionManager::subscribe(const FilterList& list,
                                    std::int64_t last_updated_s) {
  Subscription subscription;
  subscription.name = list.name();
  subscription.kind = list.kind();
  subscription.expires_hours = list.expires_hours();
  subscription.last_updated_s = last_updated_s;
  // A list download is roughly proportional to its rule count; 60 bytes
  // per rule approximates the 2015 EasyList text.
  subscription.download_bytes =
      60 * (list.filters().size() + list.element_hiding_rules().size()) +
      4096;
  subscriptions_.push_back(std::move(subscription));
}

std::vector<const Subscription*> SubscriptionManager::due(
    std::int64_t now_s) const {
  std::vector<const Subscription*> out;
  for (const auto& subscription : subscriptions_) {
    if (subscription.due(now_s)) out.push_back(&subscription);
  }
  return out;
}

void SubscriptionManager::mark_updated(const std::string& name,
                                       std::int64_t now_s) {
  for (auto& subscription : subscriptions_) {
    if (subscription.name == name) {
      subscription.last_updated_s = now_s;
      return;
    }
  }
}

std::int64_t SubscriptionManager::next_due_s() const noexcept {
  std::int64_t best = std::numeric_limits<std::int64_t>::max();
  for (const auto& subscription : subscriptions_) {
    const auto next =
        subscription.last_updated_s +
        static_cast<std::int64_t>(subscription.expires_hours) * 3600;
    best = std::min(best, next);
  }
  return best;
}

}  // namespace adscope::adblock
