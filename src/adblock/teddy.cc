#include "adblock/teddy.h"

#include <algorithm>

#include "util/hash.h"

namespace adscope::adblock {

std::string_view TeddyPrefilter::lead_literal(const Filter& filter) noexcept {
  if (filter.is_regex()) return {};
  // Walk the literal runs of the (lowercased) pattern. Runs exclude '*'
  // (matches any span) and '^' (matches a separator or end-of-address):
  // every character of a run is matched verbatim and contiguously in any
  // URL the filter accepts, so the run is a sound prefilter literal.
  // Match-case rules are covered too: pattern() is the lowercased body
  // and scan() runs over the lowercased URL, a superset of the
  // case-exact occurrence.
  const std::string_view pat = filter.pattern();
  std::string_view len2_fallback;
  std::size_t i = 0;
  while (i < pat.size()) {
    if (pat[i] == '*' || pat[i] == '^') {
      ++i;
      continue;
    }
    std::size_t j = i;
    while (j < pat.size() && pat[j] != '*' && pat[j] != '^') ++j;
    if (j - i >= 3) return pat.substr(i, 3);
    if (j - i == 2 && len2_fallback.empty()) len2_fallback = pat.substr(i, 2);
    i = j;
  }
  return len2_fallback;
}

std::uint8_t TeddyPrefilter::add(const Filter& filter) {
  const auto literal = lead_literal(filter);
  if (literal.empty()) return 0;
  const auto bit =
      static_cast<std::uint8_t>(1U << (util::fnv1a(literal) & 7U));
  for (std::size_t j = 0; j < literal.size(); ++j) {
    const auto c = static_cast<std::uint8_t>(literal[j]);
    masks_.masks[j][0][c & 15] =
        static_cast<std::uint8_t>(masks_.masks[j][0][c & 15] | bit);
    masks_.masks[j][1][c >> 4] =
        static_cast<std::uint8_t>(masks_.masks[j][1][c >> 4] | bit);
  }
  if (literal.size() == 2) {
    masks_.len2_buckets = static_cast<std::uint8_t>(masks_.len2_buckets | bit);
  } else {
    masks_.len3_buckets = static_cast<std::uint8_t>(masks_.len3_buckets | bit);
  }
  return bit;
}

}  // namespace adscope::adblock
