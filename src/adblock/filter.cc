#include "adblock/filter.h"

#include <algorithm>
#include <bit>
#include <utility>

#include "http/public_suffix.h"
#include "util/simd.h"
#include "util/strings.h"

namespace adscope::adblock {

namespace {

using http::RequestType;

std::optional<RequestType> type_option(std::string_view name) {
  if (name == "document") return RequestType::kDocument;
  if (name == "subdocument") return RequestType::kSubdocument;
  if (name == "stylesheet") return RequestType::kStylesheet;
  if (name == "script") return RequestType::kScript;
  if (name == "image" || name == "background") return RequestType::kImage;
  if (name == "media") return RequestType::kMedia;
  if (name == "font") return RequestType::kFont;
  if (name == "object" || name == "object-subrequest") {
    return RequestType::kObject;
  }
  if (name == "xmlhttprequest") return RequestType::kXhr;
  if (name == "other" || name == "websocket" || name == "ping") {
    return RequestType::kOther;
  }
  return std::nullopt;
}

// Recursive wildcard matcher. `require_end` pins the match to the end of
// `text` (trailing "|" anchor).
bool match_rec(std::string_view pat, std::size_t pi, std::string_view text,
               std::size_t ti, bool require_end) {
  for (;;) {
    if (pi == pat.size()) return !require_end || ti == text.size();
    const char pc = pat[pi];
    if (pc == '*') {
      while (pi < pat.size() && pat[pi] == '*') ++pi;
      if (pi == pat.size()) return true;  // '*' absorbs the rest
      for (std::size_t k = ti; k <= text.size(); ++k) {
        if (match_rec(pat, pi, text, k, require_end)) return true;
      }
      return false;
    }
    if (pc == '^') {
      if (ti == text.size()) {
        // End of the address is accepted as a separator; the rest of the
        // pattern must then be able to match the empty string.
        ++pi;
        while (pi < pat.size() && (pat[pi] == '*' || pat[pi] == '^')) ++pi;
        return pi == pat.size();
      }
      if (!is_separator(text[ti])) return false;
      ++pi;
      ++ti;
      continue;
    }
    if (ti == text.size() || pc != text[ti]) return false;
    ++pi;
    ++ti;
  }
}

/// Iterative equivalent of match_rec: greedy matching with single-point
/// backtracking to the most recent '*' (the classic wildcard algorithm;
/// '^' is a one-character class, which the algorithm supports, plus the
/// ABP twist that end-of-address counts as a separator). No recursion,
/// no allocation, O(n·m) worst case but O(n+m) on the common patterns.
/// Equivalence with match_rec is asserted by the differential tests.
bool match_program(std::string_view pat, std::string_view text,
                   std::size_t start, bool require_end) noexcept {
  std::size_t pi = 0;
  std::size_t ti = start;
  std::size_t star_pi = std::string_view::npos;
  std::size_t star_ti = 0;
  for (;;) {
    if (pi < pat.size() && pat[pi] == '*') {
      star_pi = ++pi;
      star_ti = ti;
      continue;
    }
    if (pi == pat.size()) {
      if (!require_end || ti == text.size()) return true;
      // Pattern exhausted but the end anchor fails: resume at the star.
    } else if (ti < text.size()) {
      const char pc = pat[pi];
      if (pc == '^' ? is_separator(text[ti]) : pc == text[ti]) {
        ++pi;
        ++ti;
        continue;
      }
    } else {
      // End of the address: accepted as a final separator when the rest
      // of the pattern can match the empty string ('*'s and '^'s only).
      bool rest_empty_ok = true;
      for (std::size_t k = pi; k < pat.size(); ++k) {
        if (pat[k] != '*' && pat[k] != '^') {
          rest_empty_ok = false;
          break;
        }
      }
      if (rest_empty_ok) return true;
    }
    if (star_pi == std::string_view::npos) return false;
    if (star_ti >= text.size()) return false;
    ti = ++star_ti;
    pi = star_pi;
  }
}

}  // namespace

std::string_view to_string(ParseDiagnosis::Reason reason) noexcept {
  using Reason = ParseDiagnosis::Reason;
  switch (reason) {
    case Reason::kNone: return "ok";
    case Reason::kEmpty: return "empty-line";
    case Reason::kComment: return "comment";
    case Reason::kElementHiding: return "element-hiding";
    case Reason::kBadElementHiding: return "bad-element-hiding";
    case Reason::kUnknownOption: return "unknown-option";
    case Reason::kBadOptionSyntax: return "bad-option-syntax";
    case Reason::kBadRegex: return "bad-regex";
    case Reason::kEmptyPattern: return "empty-pattern";
  }
  return "ok";
}

namespace {

void diagnose(ParseDiagnosis* why, ParseDiagnosis::Reason reason,
              std::string detail = {}) {
  if (why == nullptr) return;
  why->reason = reason;
  why->detail = std::move(detail);
}

}  // namespace

std::optional<Filter> Filter::parse(std::string_view line,
                                    ParseDiagnosis* why) {
  diagnose(why, ParseDiagnosis::Reason::kNone);
  auto text = util::trim(line);
  if (text.empty()) {
    diagnose(why, ParseDiagnosis::Reason::kEmpty);
    return std::nullopt;
  }
  if (text[0] == '!' || text[0] == '[') {  // comment / list header
    diagnose(why, ParseDiagnosis::Reason::kComment);
    return std::nullopt;
  }
  // Element-hiding rules are handled by FilterList, not here.
  if (text.find("##") != std::string_view::npos ||
      text.find("#@#") != std::string_view::npos ||
      text.find("#?#") != std::string_view::npos) {
    diagnose(why, ParseDiagnosis::Reason::kElementHiding);
    return std::nullopt;
  }

  Filter f;
  f.text_ = std::string(text);

  auto body = text;
  if (util::starts_with(body, "@@")) {
    f.exception_ = true;
    body = body.substr(2);
  }

  // Options are introduced by the last '$' whose suffix parses as options.
  if (const auto dollar = body.rfind('$');
      dollar != std::string_view::npos && dollar > 0) {
    if (f.parse_options(body.substr(dollar + 1), why)) {
      body = body.substr(0, dollar);
    } else {
      return std::nullopt;  // unknown option: ABP discards the rule
    }
  }

  // Regular-expression rules: pattern wrapped in slashes.
  if (body.size() >= 3 && body.front() == '/' && body.back() == '/') {
    const auto expression = body.substr(1, body.size() - 2);
    // Require some regex metacharacter; otherwise "/banners/" style path
    // literals would be misread (ABP's heuristic is the same idea).
    if (expression.find_first_of("\\[](){}+?|") != std::string_view::npos) {
      // std::regex construction can throw more than regex_error on
      // pathological vendor rules (resource exhaustion on huge {n,m}
      // repeats surfaces as bad_alloc/runtime_error depending on the
      // library). Catch everything: a malformed rule must degrade into
      // a lint diagnostic, never an exception out of FilterList::parse.
      try {
        auto flags = std::regex::ECMAScript | std::regex::optimize;
        if (!f.match_case_) flags |= std::regex::icase;
        f.regex_ = std::make_shared<const std::regex>(
            std::string(expression), flags);
        f.pattern_original_ = std::string(body);
        f.pattern_ = util::to_lower(body);
        f.compile();
        return f;
      } catch (const std::exception& error) {
        diagnose(why, ParseDiagnosis::Reason::kBadRegex, error.what());
        return std::nullopt;  // malformed regex: discard like ABP
      }
    }
  }

  if (util::starts_with(body, "||")) {
    f.domain_anchor_ = true;
    body = body.substr(2);
  } else if (util::starts_with(body, "|")) {
    f.start_anchor_ = true;
    body = body.substr(1);
  }
  if (util::ends_with(body, "|")) {
    f.end_anchor_ = true;
    body = body.substr(0, body.size() - 1);
  }
  if (body.empty() && !f.domain_anchor_ && !f.start_anchor_) {
    // Matches everything; reject like ABP does.
    diagnose(why, ParseDiagnosis::Reason::kEmptyPattern);
    return std::nullopt;
  }
  f.pattern_original_ = std::string(body);
  f.pattern_ = util::to_lower(body);
  f.compile();
  return f;
}

void Filter::compile() {
  if (regex_ != nullptr) {
    class_ = PatternClass::kRegex;
    return;
  }
  const std::string_view pat = pattern_;
  if (pat.find_first_of("*^") == std::string_view::npos) {
    class_ = PatternClass::kLiteral;
    return;
  }
  class_ = PatternClass::kGeneral;
  // Unanchored scans drop leading '*'s (a star before anything is a
  // no-op when every start position is tried) and then jump between
  // occurrences of the first literal run instead of trying every byte.
  std::size_t i = 0;
  while (i < pat.size() && pat[i] == '*') ++i;
  scan_skip_ = static_cast<std::uint32_t>(i);
  std::size_t j = i;
  while (j < pat.size() && pat[j] != '*' && pat[j] != '^') ++j;
  lead_lit_len_ = static_cast<std::uint32_t>(j - i);
}

bool Filter::parse_options(std::string_view options, ParseDiagnosis* why) {
  TypeMask positive = 0;
  TypeMask negative = 0;
  bool saw_positive = false;

  for (auto raw : util::split(options, ',')) {
    auto opt = util::trim(raw);
    if (opt.empty()) {
      diagnose(why, ParseDiagnosis::Reason::kBadOptionSyntax,
               "empty option in '$" + std::string(options) + "'");
      return false;
    }
    bool inverse = false;
    if (opt[0] == '~') {
      inverse = true;
      opt = opt.substr(1);
    }
    const auto lowered = util::to_lower(opt);

    if (lowered == "match-case") {
      if (inverse) {
        diagnose(why, ParseDiagnosis::Reason::kBadOptionSyntax,
                 "'match-case' cannot be inverted");
        return false;
      }
      match_case_ = true;
      continue;
    }
    if (lowered == "third-party") {
      third_party_ = inverse ? ThirdPartyConstraint::kFirstPartyOnly
                             : ThirdPartyConstraint::kThirdPartyOnly;
      continue;
    }
    if (util::starts_with(lowered, "domain=")) {
      if (inverse) {
        diagnose(why, ParseDiagnosis::Reason::kBadOptionSyntax,
                 "'domain=' cannot be inverted (invert individual hosts)");
        return false;
      }
      // Named: substr() on std::string yields a temporary that must
      // outlive the views split() hands back.
      const std::string domain_list = lowered.substr(7);
      for (auto dom : util::split_nonempty(domain_list, '|')) {
        if (dom[0] == '~') {
          exclude_domains_.emplace_back(dom.substr(1));
        } else {
          include_domains_.emplace_back(dom);
        }
      }
      continue;
    }
    if (lowered == "collapse" || lowered == "elemhide" ||
        lowered == "generichide" || lowered == "genericblock") {
      // Valid ABP options without an effect on URL classification of
      // header traces ("elemhide" & friends act on the DOM).
      continue;
    }
    if (lowered == "popup") {
      // Pop-up windows are unobservable in header traces; the option is
      // accepted but contributes no matchable category.
      if (!inverse) saw_positive = true;
      continue;
    }
    if (const auto type = type_option(lowered)) {
      if (inverse) {
        negative = static_cast<TypeMask>(negative | type_bit(*type));
      } else {
        saw_positive = true;
        positive = static_cast<TypeMask>(positive | type_bit(*type));
      }
      continue;
    }
    diagnose(why, ParseDiagnosis::Reason::kUnknownOption, std::string(opt));
    return false;  // unknown option
  }

  const TypeMask base = saw_positive ? positive : kDefaultTypeMask;
  type_mask_ = static_cast<TypeMask>(base & ~negative);
  return true;
}

bool Filter::domain_constraint_ok(std::string_view page_host) const {
  if (include_domains_.empty() && exclude_domains_.empty()) return true;
  for (const auto& dom : exclude_domains_) {
    if (http::host_matches_domain(page_host, dom)) return false;
  }
  if (include_domains_.empty()) return true;
  for (const auto& dom : include_domains_) {
    if (http::host_matches_domain(page_host, dom)) return true;
  }
  return false;
}

bool Filter::matches(const RequestView& request) const {
  if ((type_mask_ & type_bit(request.type)) == 0) return false;
  if (third_party_ != ThirdPartyConstraint::kAny) {
    if (request.third_party_memo < 0) {
      request.third_party_memo =
          !request.page_host.empty() &&
          http::is_third_party(request.host, request.page_host);
    }
    const bool third = request.third_party_memo > 0;
    if (third_party_ == ThirdPartyConstraint::kThirdPartyOnly && !third) {
      return false;
    }
    if (third_party_ == ThirdPartyConstraint::kFirstPartyOnly && third) {
      return false;
    }
  }
  if (!domain_constraint_ok(request.page_host)) return false;
  return matches_url(request.url_lower, request.url);
}

bool Filter::match_at(std::string_view pat, std::string_view url,
                      std::size_t pos) const {
  if (class_ == PatternClass::kLiteral) {
    if (pos > url.size() || url.size() - pos < pat.size()) return false;
    if (url.compare(pos, pat.size(), pat) != 0) return false;
    return !end_anchor_ || pos + pat.size() == url.size();
  }
  return match_program(pat, url, pos, end_anchor_);
}

bool Filter::matches_url(std::string_view url_lower,
                         std::string_view url_original) const {
  if (class_ == PatternClass::kRegex) {
    const std::string_view subject = match_case_ ? url_original : url_lower;
    return std::regex_search(subject.begin(), subject.end(), *regex_);
  }
  const std::string_view url = match_case_ ? url_original : url_lower;
  const std::string_view pat = match_case_ ? pattern_original_ : pattern_;

  if (domain_anchor_) {
    // Match must start at the beginning of a (sub)domain label of the
    // URL's host.
    const auto scheme_end = url.find("://");
    if (scheme_end == std::string_view::npos) return false;
    const auto host_start = scheme_end + 3;
    auto host_end = url.find_first_of("/:?", host_start);
    if (host_end == std::string_view::npos) host_end = url.size();
    std::size_t pos = host_start;
    for (;;) {
      if (match_at(pat, url, pos)) return true;
      const auto dot = url.find('.', pos);
      if (dot == std::string_view::npos || dot + 1 >= host_end) return false;
      pos = dot + 1;
    }
  }
  if (start_anchor_) return match_at(pat, url, 0);

  if (class_ == PatternClass::kLiteral) {
    // Plain substring — the dominant filter class. find() is libc memmem
    // underneath (SIMD-accelerated); the end anchor degenerates to one
    // suffix compare.
    if (end_anchor_) {
      return url.size() >= pat.size() &&
             url.compare(url.size() - pat.size(), pat.size(), pat) == 0;
    }
    return url.find(pat) != std::string_view::npos;
  }

  // General unanchored: candidate start positions are seeded from the
  // first literal run (or separator positions when the pattern leads
  // with '^') instead of trying every byte of the URL.
  const auto body = pat.substr(scan_skip_);
  if (body.empty()) return true;  // all-'*' pattern matches anything
  if (lead_lit_len_ > 0) {
    const auto lead = body.substr(0, lead_lit_len_);
    for (auto pos = url.find(lead); pos != std::string_view::npos;
         pos = url.find(lead, pos + 1)) {
      if (match_program(body, url, pos, end_anchor_)) return true;
    }
    return false;
  }
  // Separator-seeded: classify the URL into a separator bitset with the
  // dispatched SIMD kernel, then only visit set bits — typically ~10% of
  // the bytes — instead of testing every position.
  constexpr std::size_t kSpan = 512;
  std::uint64_t bits[kSpan / 64];
  for (std::size_t base = 0; base < url.size(); base += kSpan) {
    const std::size_t len = std::min(kSpan, url.size() - base);
    util::simd::separator_bits(url.data() + base, len, bits);
    const std::size_t words = (len + 63) / 64;
    for (std::size_t w = 0; w < words; ++w) {
      std::uint64_t word = bits[w];
      while (word != 0) {
        const auto bit = static_cast<std::size_t>(std::countr_zero(word));
        word &= word - 1;
        if (match_program(body, url, base + w * 64 + bit, end_anchor_)) {
          return true;
        }
      }
    }
  }
  // End-of-address start: matches when the whole body can match empty.
  return match_program(body, url, url.size(), end_anchor_);
}

bool Filter::matches_url_oracle(std::string_view url_lower,
                                std::string_view url_original) const {
  if (regex_ != nullptr) {
    const std::string_view subject = match_case_ ? url_original : url_lower;
    return std::regex_search(subject.begin(), subject.end(), *regex_);
  }
  const std::string_view url = match_case_ ? url_original : url_lower;
  const std::string_view pat = match_case_ ? pattern_original_ : pattern_;

  if (domain_anchor_) {
    const auto scheme_end = url.find("://");
    if (scheme_end == std::string_view::npos) return false;
    const auto host_start = scheme_end + 3;
    auto host_end = url.find_first_of("/:?", host_start);
    if (host_end == std::string_view::npos) host_end = url.size();
    std::size_t pos = host_start;
    for (;;) {
      if (match_rec(pat, 0, url, pos, end_anchor_)) return true;
      const auto dot = url.find('.', pos);
      if (dot == std::string_view::npos || dot + 1 >= host_end) return false;
      pos = dot + 1;
    }
  }
  if (start_anchor_) return match_rec(pat, 0, url, 0, end_anchor_);

  // Unanchored: try every start position.
  for (std::size_t pos = 0; pos <= url.size(); ++pos) {
    if (match_rec(pat, 0, url, pos, end_anchor_)) return true;
  }
  return false;
}

std::vector<std::string> Filter::index_keywords() const {
  std::vector<std::string> keywords;
  if (regex_ != nullptr) return keywords;  // regex rules are unindexable
  const std::string_view pat = pattern_;
  std::size_t i = 0;
  while (i < pat.size()) {
    if (!is_keyword_char(pat[i])) {
      ++i;
      continue;
    }
    std::size_t j = i;
    while (j < pat.size() && is_keyword_char(pat[j])) ++j;
    // A run is a reliable keyword only when any matching URL must contain
    // it as a complete token: its neighbours in the pattern have to be
    // literal non-keyword characters (or an anchor at the edge). A '*'
    // neighbour can swallow keyword characters, so it disqualifies.
    const bool left_ok =
        i == 0 ? (start_anchor_ || domain_anchor_) : pat[i - 1] != '*';
    const bool right_ok = j == pat.size() ? end_anchor_ : pat[j] != '*';
    if (j - i >= 3 && left_ok && right_ok) {
      keywords.emplace_back(pat.substr(i, j - i));
    }
    i = j;
  }
  return keywords;
}

}  // namespace adscope::adblock
