#include "adblock/engine.h"

#include <stdexcept>

#include "http/url.h"
#include "util/strings.h"

namespace adscope::adblock {

std::string_view to_string(Decision decision) noexcept {
  switch (decision) {
    case Decision::kNoMatch: return "no-match";
    case Decision::kBlocked: return "blocked";
    case Decision::kWhitelisted: return "whitelisted";
  }
  return "no-match";
}

ListId FilterEngine::add_list(FilterList list) {
  Slot slot;
  slot.list = std::move(list);
  for (const Filter& filter : slot.list.filters()) {
    if (filter.is_exception()) {
      if (filter.whitelists_document()) {
        slot.document_exceptions.push_back(&filter);
      }
      slot.exceptions.add(&filter);
    } else {
      slot.blocking.add(&filter);
    }
  }
  slot.blocking.finalize();
  slot.exceptions.finalize();
  slots_.push_back(std::move(slot));
  ++epoch_;
  return static_cast<ListId>(slots_.size() - 1);
}

void FilterEngine::set_enabled(ListId id, bool enabled) {
  auto& slot = slots_.at(static_cast<std::size_t>(id));
  if (slot.enabled != enabled) ++epoch_;
  slot.enabled = enabled;
}

bool FilterEngine::enabled(ListId id) const {
  return slots_.at(static_cast<std::size_t>(id)).enabled;
}

const FilterList& FilterEngine::list(ListId id) const {
  return slots_.at(static_cast<std::size_t>(id)).list;
}

ListId FilterEngine::find_list(ListKind kind) const noexcept {
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].list.kind() == kind) return static_cast<ListId>(i);
  }
  return kNoList;
}

const Filter* FilterEngine::match_blocking(
    const Slot& slot, std::span<const std::uint64_t> tokens,
    const RequestView& request) const {
  const Filter* hit = nullptr;
  slot.blocking.scan(tokens, request.url_lower, [&](const Filter& filter) {
    if (filter.matches(request)) {
      hit = &filter;
      return true;
    }
    return false;
  });
  return hit;
}

const Filter* FilterEngine::match_exception(
    const Slot& slot, std::span<const std::uint64_t> tokens,
    const RequestView& request) const {
  const Filter* hit = nullptr;
  slot.exceptions.scan(tokens, request.url_lower, [&](const Filter& filter) {
    if (filter.matches(request)) {
      hit = &filter;
      return true;
    }
    return false;
  });
  if (hit != nullptr) return hit;

  // "$document" exceptions whitelist the whole page: test them against
  // the page URL (as a document request). The borrowed view keeps this
  // probe free of string copies.
  if (!request.page_url_lower.empty() && !slot.document_exceptions.empty()) {
    RequestView page_request;
    page_request.url = request.page_url_lower;
    page_request.url_lower = request.page_url_lower;
    page_request.host = request.page_host;
    page_request.page_host = request.page_host;
    page_request.type = http::RequestType::kDocument;
    for (const Filter* filter : slot.document_exceptions) {
      if (filter->matches(page_request)) return filter;
    }
  }
  return nullptr;
}

Classification FilterEngine::classify(const Request& request) const {
  TokenScratch scratch;
  return classify(RequestView(request), scratch.tokenize(request.url_lower));
}

Classification FilterEngine::classify(
    const RequestView& request, std::span<const std::uint64_t> tokens) const {
  Classification result;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (!slots_[i].enabled) continue;
    if (const Filter* hit = match_blocking(slots_[i], tokens, request)) {
      result.blocked_by = hit;
      result.blocked_by_list = static_cast<ListId>(i);
      result.blocked_by_kind = slots_[i].list.kind();
      break;  // lists are priority-ordered; first blocking hit attributes
    }
  }

  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (!slots_[i].enabled) continue;
    if (const Filter* hit = match_exception(slots_[i], tokens, request)) {
      result.decision = Decision::kWhitelisted;
      result.list = static_cast<ListId>(i);
      result.list_kind = slots_[i].list.kind();
      result.filter = hit;
      return result;
    }
  }

  if (result.blocked_by != nullptr) {
    result.decision = Decision::kBlocked;
    result.list = result.blocked_by_list;
    result.list_kind = result.blocked_by_kind;
    result.filter = result.blocked_by;
    // A plain block is not an override; keep blocked_by for symmetry but
    // clear the "saved by whitelist" reading.
  }
  return result;
}

bool FilterEngine::pattern_contains_literal(
    std::string_view literal_lower) const {
  for (const auto& slot : slots_) {
    if (!slot.enabled) continue;
    for (const Filter& filter : slot.list.filters()) {
      if (filter.pattern().find(literal_lower) != std::string::npos) {
        return true;
      }
    }
  }
  return false;
}

std::size_t FilterEngine::active_filter_count() const noexcept {
  std::size_t n = 0;
  for (const auto& slot : slots_) {
    if (slot.enabled) n += slot.list.filters().size();
  }
  return n;
}

Request make_request(std::string_view url, std::string_view page_url,
                     http::RequestType type) {
  Request request;
  make_request_into(url, page_url, type, request);
  return request;
}

void make_request_into(std::string_view url, std::string_view page_url,
                       http::RequestType type, Request& out) {
  out.url.assign(util::trim(url));
  util::to_lower_into(out.url, out.url_lower);
  out.type = type;
  out.host.clear();
  if (const auto parsed = http::Url::parse(out.url)) {
    out.host = parsed->host();
  }
  out.page_url_lower.clear();
  out.page_host.clear();
  if (!page_url.empty()) {
    util::to_lower_into(util::trim(page_url), out.page_url_lower);
    if (const auto parsed = http::Url::parse(page_url)) {
      out.page_host = parsed->host();
    }
  }
}

}  // namespace adscope::adblock
