// Filter-list subscriptions and the update schedule.
//
// Adblock Plus re-downloads each subscribed list when its soft expiry
// lapses ("! Expires: 4 days" for EasyList, 1 day for EasyPrivacy) and
// checks on browser bootstrap — this update traffic is exactly the
// paper's second ad-blocker indicator (§3.2). SubscriptionManager
// reproduces that client-side schedule; the RBN simulator drives it to
// time the HTTPS flows to the update servers.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "adblock/filter_list.h"

namespace adscope::adblock {

struct Subscription {
  std::string name;           // "easylist", "easyprivacy", ...
  ListKind kind = ListKind::kCustom;
  unsigned expires_hours = 120;  // soft expiry from the list header
  /// Instant of the last successful download. May be negative
  /// (before the observation window); defaults to the far past, so a
  /// fresh subscription fetches immediately.
  std::int64_t last_updated_s = kNeverUpdated;
  std::uint64_t download_bytes = 0;  // size of one update download

  static constexpr std::int64_t kNeverUpdated =
      std::numeric_limits<std::int64_t>::min() / 2;

  bool due(std::int64_t now_s) const noexcept {
    return now_s - last_updated_s >=
           static_cast<std::int64_t>(expires_hours) * 3600;
  }
};

/// The client-side update scheduler of one Adblock Plus installation.
class SubscriptionManager {
 public:
  /// Subscribe to a parsed list. `last_updated_s` backdates the last
  /// update; the default (far past) makes a fresh install fetch
  /// immediately.
  void subscribe(const FilterList& list,
                 std::int64_t last_updated_s = Subscription::kNeverUpdated);

  /// Lists whose soft expiry has lapsed at `now_s`. Adblock Plus checks
  /// on browser bootstrap and periodically afterwards; call this at
  /// those instants and then mark_updated() for each returned entry.
  std::vector<const Subscription*> due(std::int64_t now_s) const;

  /// Record a completed update.
  void mark_updated(const std::string& name, std::int64_t now_s);

  const std::vector<Subscription>& subscriptions() const noexcept {
    return subscriptions_;
  }

  /// Earliest instant at which any subscription becomes due again
  /// (INT64_MAX when there are no subscriptions).
  std::int64_t next_due_s() const noexcept;

 private:
  std::vector<Subscription> subscriptions_;
};

}  // namespace adscope::adblock
