// Element-hiding rule index.
//
// "##selector" rules hide DOM elements; they cannot fire on header
// traces (the paper's §2/§10 limitation), but a complete Adblock Plus
// core must answer "which selectors apply on this page?" — the browser
// injects the resulting stylesheet. This index resolves generic and
// domain-scoped rules, honoring "#@#" exceptions, across all lists.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "adblock/filter_list.h"

namespace adscope::adblock {

class ElementHidingIndex {
 public:
  /// Add every element-hiding rule of `list`. The list must outlive the
  /// index.
  void add_list(const FilterList& list);

  /// Selectors to hide on a page hosted at `host` (lower-case):
  /// generic rules plus matching domain-scoped rules, minus rules
  /// disabled by a matching "#@#" exception.
  std::vector<std::string_view> selectors_for(std::string_view host) const;

  std::size_t rule_count() const noexcept {
    return generic_.size() + scoped_.size();
  }
  std::size_t exception_count() const noexcept { return exceptions_.size(); }

 private:
  static bool rule_applies(const ElementHidingRule& rule,
                           std::string_view host);

  std::vector<const ElementHidingRule*> generic_;
  std::vector<const ElementHidingRule*> scoped_;
  std::vector<const ElementHidingRule*> exceptions_;
};

/// Minimal CSS selector test against an element's classes and id —
/// enough for the selector shapes filter lists actually use:
/// ".class", "#id", and "tag[id^=\"prefix\"]" / "tag[class^=\"prefix\"]".
/// Used by payload-mode analysis to spot hidden text ads (§10).
bool selector_matches_block(std::string_view selector,
                            const std::vector<std::string>& classes,
                            std::string_view id);

}  // namespace adscope::adblock
