// Teddy-style multi-literal shotgun prefilter over a filter set's lead
// literals (the Hyperscan "Teddy" technique, scaled to this engine's
// needs: 8 buckets, 2-3 byte literals, nibble pshufb tables).
//
// Every non-regex filter must, to match a URL at all, contain each of
// its literal runs contiguously in the (lowercased) URL. add() extracts
// one such run per filter — the first run of length >= 3, else a run of
// length 2 — hashes it into one of 8 buckets, and packs its bytes into
// per-position nibble lookup tables. scan() then answers for a whole
// URL, in one vectorized pass (util::simd::teddy_scan, dispatched
// scalar/SSE2/AVX2), which buckets have at least one literal occurring
// anywhere in the URL. A candidate filter whose bucket bit is absent
// from the scan mask provably cannot match, so the expensive
// Filter::matches() probe is skipped. Filters without a usable literal
// (regex rules, wildcard-dense patterns) report bucket 0 = "always
// probe"; the prefilter is sound by construction and the randomized
// suite in tests/test_simd.cpp asserts it never rejects a matching
// filter.
#pragma once

#include <cstdint>
#include <string_view>

#include "adblock/filter.h"
#include "util/simd.h"

namespace adscope::adblock {

class TeddyPrefilter {
 public:
  /// Register `filter`. Returns the bucket bit to test against scan()
  /// before probing this filter, or 0 when the filter has no usable
  /// lead literal and must always be probed.
  std::uint8_t add(const Filter& filter);

  /// Buckets with at least one registered literal occurring somewhere in
  /// `url_lower` (superset of the truth: false positives only).
  std::uint8_t scan(std::string_view url_lower) const noexcept {
    return util::simd::teddy_scan(masks_, url_lower.data(),
                                  url_lower.size());
  }

  /// True when no filter contributed a literal (scan() is then useless).
  bool empty() const noexcept {
    return masks_.len2_buckets == 0 && masks_.len3_buckets == 0;
  }

  /// The literal add() would index `filter` under; empty when the filter
  /// is exempt. Exposed for tests and diagnostics.
  static std::string_view lead_literal(const Filter& filter) noexcept;

 private:
  util::simd::TeddyMasks masks_;
};

}  // namespace adscope::adblock
