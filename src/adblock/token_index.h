// Keyword index over filters — the standard AdBlock matching optimization.
//
// Each filter is registered under one of its index keywords (maximal
// [a-z0-9%] runs of length >= 3 that must appear as complete tokens in any
// matching URL). A classification query tokenizes the URL once and only
// evaluates filters whose keyword occurs among the URL's tokens, plus the
// small set of filters that have no usable keyword.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "adblock/filter.h"
#include "util/hash.h"

namespace adscope::adblock {

/// FNV hashes of the maximal keyword runs of a lower-case URL (length >= 3,
/// string edges count as boundaries).
std::vector<std::uint64_t> url_token_hashes(std::string_view url_lower);

class TokenIndex {
 public:
  /// Register a filter. The pointer must stay valid for the index's
  /// lifetime (filters live in their FilterList's vector).
  void add(const Filter* filter);

  /// Invoke `fn(const Filter&)` for every candidate whose keyword appears
  /// in `tokens`, then for every keyword-less filter. `fn` returns true to
  /// stop the scan early; the function returns whether it stopped.
  template <typename Fn>
  bool scan(std::span<const std::uint64_t> tokens, Fn&& fn) const {
    for (const auto token : tokens) {
      const auto it = buckets_.find(token);
      if (it == buckets_.end()) continue;
      for (const Filter* filter : it->second) {
        if (fn(*filter)) return true;
      }
    }
    for (const Filter* filter : unindexed_) {
      if (fn(*filter)) return true;
    }
    return false;
  }

  std::size_t indexed_count() const noexcept { return indexed_; }
  std::size_t unindexed_count() const noexcept { return unindexed_.size(); }
  std::size_t bucket_count() const noexcept { return buckets_.size(); }

 private:
  std::unordered_map<std::uint64_t, std::vector<const Filter*>> buckets_;
  std::vector<const Filter*> unindexed_;
  std::size_t indexed_ = 0;
};

}  // namespace adscope::adblock
