// Keyword index over filters — the standard AdBlock matching optimization.
//
// Each filter is registered under one of its index keywords (maximal
// [a-z0-9%] runs of length >= 3 that must appear as complete tokens in any
// matching URL). A classification query tokenizes the URL once and only
// evaluates filters whose keyword occurs among the URL's tokens, plus the
// small set of filters that have no usable keyword.
//
// Layout: add() accumulates into an ordinary hash map; finalize() (called
// once by FilterEngine::add_list) compacts it into an open-addressing
// probe table over one contiguous `const Filter*` arena, so a token
// lookup costs a single cache line of probing plus a linear run of
// candidate pointers — no per-bucket node chasing on the hot path.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <span>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "adblock/filter.h"
#include "adblock/teddy.h"
#include "util/hash.h"

namespace adscope::adblock {

/// FNV hashes of the maximal keyword runs of a lower-case URL (length >= 3,
/// string edges count as boundaries). Duplicate tokens are removed
/// (first-occurrence order preserved): scanning the same bucket twice can
/// never change a match result, it only re-evaluates the same filters.
/// Run boundaries come from the dispatched SIMD keyword classifier;
/// dedup is the same inline strategy TokenScratch uses (not a per-token
/// std::find over the grown vector).
std::vector<std::uint64_t> url_token_hashes(std::string_view url_lower);

/// Reference tokenizer: the original byte-at-a-time walk with linear
/// dedup. Kept as the differential oracle for the SIMD run scanner
/// (tests/test_simd.cpp fuzzes equality); never on the hot path.
std::vector<std::uint64_t> url_token_hashes_oracle(
    std::string_view url_lower);

/// Reusable tokenization buffer: the fixed array serves every realistic
/// URL without touching the heap; pathological URLs (> kInlineCapacity
/// distinct tokens) spill into an owned vector that is retained across
/// calls, so even that path amortizes to zero allocations.
class TokenScratch {
 public:
  static constexpr std::size_t kInlineCapacity = 96;

  /// Tokenize `url_lower` as url_token_hashes() does (dedup included)
  /// into the internal buffer. The span stays valid until the next call.
  std::span<const std::uint64_t> tokenize(std::string_view url_lower);

 private:
  // Deliberately not value-initialized: only the first `count` entries of
  // a tokenize() result are ever read, and zeroing 96 slots per scratch
  // shows up in the classify profile.
  std::array<std::uint64_t, kInlineCapacity> inline_;
  std::vector<std::uint64_t> overflow_;
};

class TokenIndex {
 public:
  /// Register a filter. The pointer must stay valid for the index's
  /// lifetime (filters live in their FilterList's vector). Only legal
  /// before finalize().
  void add(const Filter* filter);

  /// Build the flat probe table. Idempotent; add() afterwards throws.
  /// scan() works either way (pre-finalize scans the build map) so
  /// incremental uses keep functioning, just without the flat layout.
  /// finalize() also compiles this index's own Teddy prefilter over its
  /// filters' lead literals. Deliberately per-index, not engine-global:
  /// 8 buckets stay selective over one index's literal set (the small
  /// exception indexes especially), where a shared mask set saturates
  /// and admits everything.
  void finalize();

  /// Invoke `fn(const Filter&)` for every candidate whose keyword appears
  /// in `tokens`, then for every keyword-less filter. `fn` returns true to
  /// stop the scan early; the function returns whether it stopped.
  template <typename Fn>
  bool scan(std::span<const std::uint64_t> tokens, Fn&& fn) const {
    return scan_impl(tokens, std::string_view{}, false, std::forward<Fn>(fn));
  }

  /// Prefiltered scan: identical candidate semantics, but `url_lower`
  /// arms the Teddy shotgun prefilter — a candidate whose lead literal
  /// provably does not occur in the URL is skipped without calling `fn`.
  /// The URL scan itself is lazy: it runs at most once per call, and
  /// only when a prefilterable candidate is actually reached.
  template <typename Fn>
  bool scan(std::span<const std::uint64_t> tokens, std::string_view url_lower,
            Fn&& fn) const {
    return scan_impl(tokens, url_lower,
                     finalized_ && prefilter_enabled() && !teddy_.empty(),
                     std::forward<Fn>(fn));
  }

  /// Global prefilter kill switch (initialized from ADSCOPE_TEDDY, "off"
  /// disables); bench ablations toggle it at runtime. Decisions are
  /// unchanged either way — only the probe count moves.
  static void set_prefilter_enabled(bool enabled) noexcept;
  static bool prefilter_enabled() noexcept;

  bool finalized() const noexcept { return finalized_; }
  std::size_t indexed_count() const noexcept { return indexed_; }
  std::size_t unindexed_count() const noexcept { return unindexed_.size(); }
  std::size_t bucket_count() const noexcept {
    return finalized_ ? keys_ : building_.size();
  }
  /// Probe-table slots (0 before finalize) — capacity diagnostics.
  std::size_t table_slots() const noexcept { return table_.size(); }

  /// Bytes held by the finalized flat layout (probe table + candidate
  /// arena + bloom words + teddy bucket bits). The lint bench reports
  /// this for the original vs. pruned engine; 0 before finalize().
  std::size_t approx_memory_bytes() const noexcept {
    return table_.size() * sizeof(Probe) +
           arena_.size() * sizeof(const Filter*) +
           bloom_.size() * sizeof(std::uint64_t) +
           unindexed_.size() * sizeof(const Filter*) +
           arena_bits_.size() + unindexed_bits_.size();
  }

 private:
  struct Probe {
    std::uint64_t key = 0;
    std::uint32_t begin = 0;
    std::uint32_t count = 0;  // 0 = empty slot (real buckets hold >= 1)
  };

  template <typename Fn>
  bool scan_impl(std::span<const std::uint64_t> tokens,
                 std::string_view url_lower, bool use_teddy, Fn&& fn) const {
    // Lazy Teddy mask: computed on the first candidate that carries a
    // bucket bit, then shared by every later admission test this call.
    std::uint8_t seen = 0;
    bool seen_valid = false;
    const auto admitted = [&](std::uint8_t bits) {
      if (!use_teddy || bits == 0) return true;
      if (!seen_valid) {
        seen = teddy_.scan(url_lower);
        seen_valid = true;
      }
      return (bits & seen) != 0;
    };
    if (finalized_) {
      if (!table_.empty()) {
        for (const auto token : tokens) {
          // One-load bloom rejection: most URL tokens hit no bucket in
          // most indexes, and the filter word is hot in cache while the
          // probe table is not.
          if ((bloom_[(token >> 6) & bloom_mask_] &
               (std::uint64_t{1} << (token & 63))) == 0) {
            continue;
          }
          auto slot = token & mask_;
          while (table_[slot].count != 0) {
            if (table_[slot].key == token) {
              const auto begin = table_[slot].begin;
              const auto end = begin + table_[slot].count;
              for (auto i = begin; i < end; ++i) {
                if (admitted(arena_bits_[i]) && fn(*arena_[i])) return true;
              }
              break;
            }
            slot = (slot + 1) & mask_;
          }
        }
      }
      for (std::size_t i = 0; i < unindexed_.size(); ++i) {
        if (admitted(unindexed_bits_[i]) && fn(*unindexed_[i])) return true;
      }
      return false;
    }
    // Pre-finalize path: the build map, no prefilter (teddy bits are
    // compiled by finalize()).
    for (const auto token : tokens) {
      const auto it = building_.find(token);
      if (it == building_.end()) continue;
      for (const Filter* filter : it->second) {
        if (fn(*filter)) return true;
      }
    }
    for (const Filter* filter : unindexed_) {
      if (fn(*filter)) return true;
    }
    return false;
  }

  // Build phase.
  std::unordered_map<std::uint64_t, std::vector<const Filter*>> building_;
  // Finalized phase: open addressing (linear probing, <= 50% load) over
  // one contiguous candidate arena, fronted by a bloom filter sized to
  // ~4 bits per table slot (word index from the hash's upper bits, bit
  // index from its low 6 — independent enough for a rejection test).
  std::vector<Probe> table_;
  std::vector<const Filter*> arena_;
  std::vector<std::uint64_t> bloom_;
  std::uint64_t mask_ = 0;
  std::uint64_t bloom_mask_ = 0;
  std::size_t keys_ = 0;

  std::vector<const Filter*> unindexed_;
  std::size_t indexed_ = 0;
  bool finalized_ = false;

  // Teddy shotgun prefilter, compiled by finalize(): per-candidate
  // bucket bits aligned with arena_ / unindexed_ (0 = always probe).
  TeddyPrefilter teddy_;
  std::vector<std::uint8_t> arena_bits_;
  std::vector<std::uint8_t> unindexed_bits_;

  static std::atomic<bool> prefilter_enabled_;
};

}  // namespace adscope::adblock
