// Multi-series binned time series (Figure 5: 1-hour request/byte bins).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace adscope::stats {

class BinnedTimeSeries {
 public:
  /// `duration_s` split into `bin_s`-second bins; `series` named streams.
  BinnedTimeSeries(std::uint64_t duration_s, std::uint64_t bin_s,
                   std::vector<std::string> series_names);

  void add(std::size_t series, std::uint64_t timestamp_s, double weight = 1.0);

  /// Bin-wise accumulation of a series set with identical shape (same
  /// bin width, bin count and series count). Throws std::invalid_argument
  /// on a shape mismatch.
  void merge(const BinnedTimeSeries& other);

  std::size_t series_count() const noexcept { return names_.size(); }
  std::size_t bin_count() const noexcept { return bins_; }
  std::uint64_t bin_seconds() const noexcept { return bin_s_; }
  const std::string& name(std::size_t series) const { return names_[series]; }
  double value(std::size_t series, std::size_t bin) const {
    return data_[series][bin];
  }
  const std::vector<double>& series(std::size_t s) const { return data_[s]; }

  double series_max(std::size_t series) const;
  double global_max() const;

 private:
  std::uint64_t bin_s_;
  std::size_t bins_;
  std::vector<std::string> names_;
  std::vector<std::vector<double>> data_;
};

}  // namespace adscope::stats
