// 2-D log-log heat map (Figure 3 of the paper: total vs ad requests per
// (IP, User-Agent) pair).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace adscope::stats {

class LogLogHeatmap {
 public:
  LogLogHeatmap(double log10_max_x, double log10_max_y, std::size_t bins_x,
                std::size_t bins_y);

  /// Add a point; zero values land in the first bin (log(0+1)).
  void add(double x, double y);

  std::size_t bins_x() const noexcept { return bins_x_; }
  std::size_t bins_y() const noexcept { return bins_y_; }
  std::uint64_t count(std::size_t bx, std::size_t by) const noexcept {
    return cells_[by * bins_x_ + bx];
  }
  std::uint64_t total() const noexcept { return total_; }
  std::uint64_t max_cell() const noexcept;

  /// Linear-unit lower edge of a column/row.
  double x_edge(std::size_t bx) const noexcept;
  double y_edge(std::size_t by) const noexcept;

 private:
  double log_max_x_;
  double log_max_y_;
  std::size_t bins_x_;
  std::size_t bins_y_;
  std::vector<std::uint64_t> cells_;
  std::uint64_t total_ = 0;
};

}  // namespace adscope::stats
