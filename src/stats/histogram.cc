#include "stats/histogram.h"

#include <cmath>
#include <stdexcept>

namespace adscope::stats {

LinearHistogram::LinearHistogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins == 0 ? 1 : bins, 0.0) {}

void LinearHistogram::add(double value, double weight) {
  const auto bins = static_cast<double>(counts_.size());
  double pos = (value - lo_) / (hi_ - lo_) * bins;
  if (pos < 0) pos = 0;
  auto index = static_cast<std::size_t>(pos);
  if (index >= counts_.size()) index = counts_.size() - 1;
  counts_[index] += weight;
  total_ += weight;
}

void LinearHistogram::merge(const LinearHistogram& other) {
  if (lo_ != other.lo_ || hi_ != other.hi_ ||
      counts_.size() != other.counts_.size()) {
    throw std::invalid_argument("LinearHistogram::merge: bin layout mismatch");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  total_ += other.total_;
}

double LinearHistogram::bin_lo(std::size_t i) const noexcept {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

double LinearHistogram::bin_hi(std::size_t i) const noexcept {
  return bin_lo(i + 1);
}

std::vector<double> LinearHistogram::density() const {
  std::vector<double> out(counts_.size(), 0.0);
  if (total_ <= 0) return out;
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    out[i] = counts_[i] / (total_ * width);
  }
  return out;
}

LogHistogram::LogHistogram(double log10_lo, double log10_hi, std::size_t bins)
    : hist_(log10_lo, log10_hi, bins) {}

void LogHistogram::add(double value, double weight) {
  const double logv = value > 0 ? std::log10(value) : hist_.bin_lo(0);
  hist_.add(logv, weight);
}

double LogHistogram::bin_lo(std::size_t i) const noexcept {
  return std::pow(10.0, hist_.bin_lo(i));
}

double LogHistogram::bin_center(std::size_t i) const noexcept {
  return std::pow(10.0, 0.5 * (hist_.bin_lo(i) + hist_.bin_hi(i)));
}

std::size_t LogHistogram::mode_bin() const noexcept {
  std::size_t best = 0;
  for (std::size_t i = 1; i < hist_.bin_count(); ++i) {
    if (hist_.count(i) > hist_.count(best)) best = i;
  }
  return best;
}

}  // namespace adscope::stats
