#include "stats/summary.h"

#include <algorithm>
#include <cmath>

namespace adscope::stats {

double sorted_quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (q <= 0.0) return sorted.front();
  if (q >= 1.0) return sorted.back();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

double quantile(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  return sorted_quantile(values, q);
}

double mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double total = 0.0;
  for (double v : values) total += v;
  return total / static_cast<double>(values.size());
}

double stddev(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  const double m = mean(values);
  double ss = 0.0;
  for (double v : values) ss += (v - m) * (v - m);
  return std::sqrt(ss / static_cast<double>(values.size() - 1));
}

BoxStats box_stats(std::vector<double> values) {
  BoxStats box;
  if (values.empty()) return box;
  std::sort(values.begin(), values.end());
  box.n = values.size();
  box.min = values.front();
  box.max = values.back();
  box.q1 = sorted_quantile(values, 0.25);
  box.median = sorted_quantile(values, 0.50);
  box.q3 = sorted_quantile(values, 0.75);
  const double iqr = box.q3 - box.q1;
  const double lo_fence = box.q1 - 1.5 * iqr;
  const double hi_fence = box.q3 + 1.5 * iqr;
  box.whisker_low = box.max;
  box.whisker_high = box.min;
  for (double v : values) {
    if (v >= lo_fence) {
      box.whisker_low = v;
      break;
    }
  }
  for (auto it = values.rbegin(); it != values.rend(); ++it) {
    if (*it <= hi_fence) {
      box.whisker_high = *it;
      break;
    }
  }
  return box;
}

}  // namespace adscope::stats
