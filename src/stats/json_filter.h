// Field-selective re-emission of rendered JSON documents.
//
// The snapshot-store query API lets a client ask for a subset of a
// view's top-level fields (?fields=traffic,users). Rather than plumb a
// selector through every renderer — and risk the byte-identity the
// /study-vs-/query tests pin — the engine renders the full document
// once and this filter re-emits only the requested top-level members,
// preserving their original order and raw bytes. A zero-dependency
// structural scan (strings, escapes, nesting) rather than a JSON
// parser: values are copied verbatim, never re-serialized.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace adscope::stats {

/// Rewrites `document` (which must be a JSON object) keeping only the
/// top-level members whose key is in `fields`, in original document
/// order. Requested fields missing from the document are reported in
/// `missing` (the caller turns those into a 400). Returns false when
/// `document` is not a well-formed JSON object.
bool filter_top_level_fields(std::string_view document,
                             const std::vector<std::string>& fields,
                             std::string& out,
                             std::vector<std::string>& missing);

}  // namespace adscope::stats
