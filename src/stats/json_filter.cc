#include "stats/json_filter.h"

#include <algorithm>

namespace adscope::stats {

namespace {

/// Advances past the string starting at `at` (which must point at the
/// opening quote). Returns the index one past the closing quote, or
/// npos on malformed input.
std::size_t skip_string(std::string_view text, std::size_t at) {
  for (std::size_t i = at + 1; i < text.size(); ++i) {
    if (text[i] == '\\') {
      ++i;  // skip the escaped character
    } else if (text[i] == '"') {
      return i + 1;
    }
  }
  return std::string_view::npos;
}

/// Advances past one JSON value starting at `at` (first non-space byte
/// of the value). Returns one past its final byte, or npos.
std::size_t skip_value(std::string_view text, std::size_t at) {
  if (at >= text.size()) return std::string_view::npos;
  const char c = text[at];
  if (c == '"') return skip_string(text, at);
  if (c == '{' || c == '[') {
    const char open = c;
    const char close = open == '{' ? '}' : ']';
    std::size_t depth = 0;
    for (std::size_t i = at; i < text.size(); ++i) {
      const char b = text[i];
      if (b == '"') {
        i = skip_string(text, i);
        if (i == std::string_view::npos) return std::string_view::npos;
        --i;  // loop increment
      } else if (b == open) {
        ++depth;
      } else if (b == close) {
        if (--depth == 0) return i + 1;
      }
    }
    return std::string_view::npos;
  }
  // Scalar: number, true/false/null — runs to the next delimiter.
  std::size_t i = at;
  while (i < text.size() && text[i] != ',' && text[i] != '}' &&
         text[i] != ']') {
    ++i;
  }
  return i > at ? i : std::string_view::npos;
}

std::size_t skip_spaces(std::string_view text, std::size_t at) {
  while (at < text.size() &&
         (text[at] == ' ' || text[at] == '\t' || text[at] == '\n' ||
          text[at] == '\r')) {
    ++at;
  }
  return at;
}

}  // namespace

bool filter_top_level_fields(std::string_view document,
                             const std::vector<std::string>& fields,
                             std::string& out,
                             std::vector<std::string>& missing) {
  out.clear();
  missing.clear();

  std::size_t at = skip_spaces(document, 0);
  if (at >= document.size() || document[at] != '{') return false;
  at = skip_spaces(document, at + 1);

  out.push_back('{');
  bool emitted = false;
  std::vector<std::string_view> found;

  if (at < document.size() && document[at] == '}') {
    // empty object
  } else {
    while (true) {
      if (at >= document.size() || document[at] != '"') return false;
      const auto key_end = skip_string(document, at);
      if (key_end == std::string_view::npos) return false;
      const auto key = document.substr(at + 1, key_end - at - 2);

      std::size_t colon = skip_spaces(document, key_end);
      if (colon >= document.size() || document[colon] != ':') return false;
      const auto value_at = skip_spaces(document, colon + 1);
      const auto value_end = skip_value(document, value_at);
      if (value_end == std::string_view::npos) return false;

      const bool keep =
          std::find(fields.begin(), fields.end(), key) != fields.end();
      if (keep) {
        if (emitted) out.push_back(',');
        out.append(document, at, value_end - at);
        emitted = true;
        found.push_back(key);
      }

      at = skip_spaces(document, value_end);
      if (at >= document.size()) return false;
      if (document[at] == '}') break;
      if (document[at] != ',') return false;
      at = skip_spaces(document, at + 1);
    }
  }
  out.push_back('}');

  for (const auto& field : fields) {
    if (std::find(found.begin(), found.end(), field) == found.end()) {
      missing.push_back(field);
    }
  }
  return true;
}

}  // namespace adscope::stats
