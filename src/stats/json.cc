#include "stats/json.h"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace adscope::stats {

void json_escape(std::string& out, std::string_view value) {
  for (const char c : value) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof(hex), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += hex;
        } else {
          out += c;
        }
    }
  }
}

JsonWriter& JsonWriter::open(char bracket) {
  separate();
  out_ += bracket;
  stack_.push_back(bracket);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::close(char bracket) {
  if (stack_.empty() || key_pending_) {
    throw std::logic_error("JsonWriter: unbalanced close");
  }
  const char want = bracket == '}' ? '{' : '[';
  if (stack_.back() != want) {
    throw std::logic_error("JsonWriter: mismatched close");
  }
  stack_.pop_back();
  has_items_.pop_back();
  out_ += bracket;
  if (!has_items_.empty()) has_items_.back() = true;
  return *this;
}

void JsonWriter::separate() {
  if (key_pending_) {
    key_pending_ = false;
    return;  // the key already wrote "name":
  }
  if (!has_items_.empty()) {
    if (stack_.back() == '{') {
      throw std::logic_error("JsonWriter: value without key inside object");
    }
    if (has_items_.back()) out_ += ',';
  }
}

JsonWriter& JsonWriter::key(std::string_view name) {
  if (stack_.empty() || stack_.back() != '{' || key_pending_) {
    throw std::logic_error("JsonWriter: key outside object");
  }
  if (has_items_.back()) out_ += ',';
  has_items_.back() = true;
  out_ += '"';
  json_escape(out_, name);
  out_ += "\":";
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  separate();
  if (!has_items_.empty()) has_items_.back() = true;
  out_ += '"';
  json_escape(out_, text);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(double number) {
  separate();
  if (!has_items_.empty()) has_items_.back() = true;
  if (!std::isfinite(number)) {
    out_ += "null";  // JSON has no NaN/Inf
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.10g", number);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t number) {
  separate();
  if (!has_items_.empty()) has_items_.back() = true;
  out_ += std::to_string(number);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t number) {
  separate();
  if (!has_items_.empty()) has_items_.back() = true;
  out_ += std::to_string(number);
  return *this;
}

JsonWriter& JsonWriter::value(bool flag) {
  separate();
  if (!has_items_.empty()) has_items_.back() = true;
  out_ += flag ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null() {
  separate();
  if (!has_items_.empty()) has_items_.back() = true;
  out_ += "null";
  return *this;
}

const std::string& JsonWriter::str() const {
  if (!stack_.empty() || key_pending_) {
    throw std::logic_error("JsonWriter: document not closed");
  }
  return out_;
}

}  // namespace adscope::stats
