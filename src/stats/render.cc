#include "stats/render.h"

#include <algorithm>
#include <cmath>

namespace adscope::stats {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) line += "  ";
      line += row[c];
      line.append(widths[c] - row[c].size(), ' ');
    }
    while (!line.empty() && line.back() == ' ') line.pop_back();
    return line + "\n";
  };
  std::string out = render_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c == 0 ? 0 : 2);
  }
  out += std::string(total, '-') + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string bar(double value, double max_value, std::size_t max_width) {
  if (max_value <= 0 || value <= 0) return {};
  auto chars = static_cast<std::size_t>(
      std::round(value / max_value * static_cast<double>(max_width)));
  chars = std::min(chars, max_width);
  return std::string(chars, '#');
}

std::string sparkline(const std::vector<double>& values, double max_value) {
  static const char* kLevels[] = {" ", ".", ":", "-", "=", "+", "*", "#"};
  constexpr int kNumLevels = 8;
  std::string out;
  for (double v : values) {
    int level = 0;
    if (max_value > 0 && v > 0) {
      level = static_cast<int>(v / max_value * (kNumLevels - 1) + 0.999);
      level = std::clamp(level, 1, kNumLevels - 1);
    }
    out += kLevels[level];
  }
  return out;
}

std::string boxplot_line(const BoxStats& box, double lo, double hi,
                         std::size_t width) {
  if (width < 4 || hi <= lo) return {};
  std::string line(width, ' ');
  auto col = [&](double v) {
    double pos = (v - lo) / (hi - lo) * static_cast<double>(width - 1);
    pos = std::clamp(pos, 0.0, static_cast<double>(width - 1));
    return static_cast<std::size_t>(pos);
  };
  const auto wl = col(box.whisker_low);
  const auto q1 = col(box.q1);
  const auto md = col(box.median);
  const auto q3 = col(box.q3);
  const auto wh = col(box.whisker_high);
  for (std::size_t i = wl; i <= wh && i < width; ++i) line[i] = '-';
  for (std::size_t i = q1; i <= q3 && i < width; ++i) line[i] = '=';
  line[wl] = '|';
  line[wh] = '|';
  line[md] = 'M';
  return line;
}

std::string render_heatmap(const LogLogHeatmap& map, std::size_t max_rows) {
  static const char kShades[] = " .:-=+*%@#";
  const std::size_t shade_count = sizeof(kShades) - 2;
  const double max_cell = static_cast<double>(map.max_cell());
  std::string out;
  const std::size_t rows = std::min(map.bins_y(), max_rows);
  // Print top row (largest y) first, like the paper's axes.
  for (std::size_t r = 0; r < rows; ++r) {
    const std::size_t by = map.bins_y() - 1 - r;
    std::string line;
    for (std::size_t bx = 0; bx < map.bins_x(); ++bx) {
      const auto c = static_cast<double>(map.count(bx, by));
      std::size_t shade = 0;
      if (c > 0 && max_cell > 0) {
        // log shading: single pairs must stay visible next to dense cells.
        shade = 1 + static_cast<std::size_t>(
                        std::log1p(c) / std::log1p(max_cell) *
                        static_cast<double>(shade_count - 1));
        shade = std::min(shade, shade_count);
      }
      line += kShades[shade];
    }
    out += line + "\n";
  }
  return out;
}

}  // namespace adscope::stats
