// Empirical cumulative distribution function (Figure 4 of the paper).
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace adscope::stats {

class Ecdf {
 public:
  void add(double value) {
    values_.push_back(value);
    sorted_ = false;
  }

  std::size_t size() const noexcept { return values_.size(); }
  bool empty() const noexcept { return values_.empty(); }

  /// Fraction of samples <= x.
  double fraction_at_or_below(double x) const;

  /// Smallest sample v with fraction_at_or_below(v) >= q.
  double value_at(double q) const;

  /// (x, F(x)) pairs at every distinct sample — plot-ready.
  std::vector<std::pair<double, double>> curve() const;

 private:
  void ensure_sorted() const;

  mutable std::vector<double> values_;
  mutable bool sorted_ = true;
};

}  // namespace adscope::stats
