// CSV export for experiment outputs.
//
// Every bench prints its table/figure as text; setting ADSCOPE_CSV_DIR
// additionally writes machine-readable CSVs so the figures can be
// re-plotted with external tooling.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace adscope::stats {

class CsvWriter {
 public:
  /// Opens `<dir>/<name>.csv`; throws std::runtime_error on failure.
  CsvWriter(const std::string& dir, const std::string& name,
            const std::vector<std::string>& header);

  void add_row(const std::vector<std::string>& cells);

  const std::string& path() const noexcept { return path_; }

 private:
  static std::string escape(const std::string& cell);

  std::string path_;
  std::size_t columns_;
  std::string buffer_;
  bool flushed_ = false;

 public:
  ~CsvWriter();
};

/// Directory from ADSCOPE_CSV_DIR, or nullopt when exporting is off.
std::optional<std::string> csv_export_dir();

}  // namespace adscope::stats
