#include "stats/timeseries.h"

#include <algorithm>
#include <stdexcept>

namespace adscope::stats {

BinnedTimeSeries::BinnedTimeSeries(std::uint64_t duration_s,
                                   std::uint64_t bin_s,
                                   std::vector<std::string> series_names)
    : bin_s_(bin_s == 0 ? 1 : bin_s),
      bins_(static_cast<std::size_t>((duration_s + bin_s_ - 1) / bin_s_)),
      names_(std::move(series_names)) {
  if (bins_ == 0) bins_ = 1;
  data_.assign(names_.size(), std::vector<double>(bins_, 0.0));
}

void BinnedTimeSeries::add(std::size_t series, std::uint64_t timestamp_s,
                           double weight) {
  auto bin = static_cast<std::size_t>(timestamp_s / bin_s_);
  if (bin >= bins_) bin = bins_ - 1;
  data_[series][bin] += weight;
}

void BinnedTimeSeries::merge(const BinnedTimeSeries& other) {
  if (bin_s_ != other.bin_s_ || bins_ != other.bins_ ||
      data_.size() != other.data_.size()) {
    throw std::invalid_argument("BinnedTimeSeries::merge: shape mismatch");
  }
  for (std::size_t s = 0; s < data_.size(); ++s) {
    for (std::size_t b = 0; b < bins_; ++b) {
      data_[s][b] += other.data_[s][b];
    }
  }
}

double BinnedTimeSeries::series_max(std::size_t series) const {
  const auto& row = data_[series];
  return row.empty() ? 0.0 : *std::max_element(row.begin(), row.end());
}

double BinnedTimeSeries::global_max() const {
  double best = 0.0;
  for (std::size_t s = 0; s < data_.size(); ++s) {
    best = std::max(best, series_max(s));
  }
  return best;
}

}  // namespace adscope::stats
