// Histograms and log-scale densities (Figures 6 and 7 of the paper).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace adscope::stats {

/// Fixed-width histogram over [lo, hi); out-of-range samples clamp to the
/// edge bins.
class LinearHistogram {
 public:
  LinearHistogram(double lo, double hi, std::size_t bins);

  void add(double value, double weight = 1.0);

  /// Accumulate another histogram with the same [lo, hi) and bin count
  /// (bin-wise addition). Throws std::invalid_argument on a layout
  /// mismatch — merging differently-binned histograms is meaningless.
  void merge(const LinearHistogram& other);

  std::size_t bin_count() const noexcept { return counts_.size(); }
  double bin_lo(std::size_t i) const noexcept;
  double bin_hi(std::size_t i) const noexcept;
  double count(std::size_t i) const noexcept { return counts_[i]; }
  double total() const noexcept { return total_; }

  /// Probability density per bin (integrates to ~1 over the range).
  std::vector<double> density() const;

 private:
  double lo_;
  double hi_;
  std::vector<double> counts_;
  double total_ = 0.0;
};

/// Histogram over log10(value) — the density-of-the-logarithm view the
/// paper uses for object sizes and handshake deltas. Values <= 0 clamp to
/// the lowest bin.
class LogHistogram {
 public:
  /// Bins spanning [10^log10_lo, 10^log10_hi).
  LogHistogram(double log10_lo, double log10_hi, std::size_t bins);

  void add(double value, double weight = 1.0);

  /// Bin-wise accumulation; layouts must match (see LinearHistogram).
  void merge(const LogHistogram& other) { hist_.merge(other.hist_); }

  std::size_t bin_count() const noexcept { return hist_.bin_count(); }
  /// Geometric bin center in linear units.
  double bin_center(std::size_t i) const noexcept;
  double bin_lo(std::size_t i) const noexcept;
  double count(std::size_t i) const noexcept { return hist_.count(i); }
  double total() const noexcept { return hist_.total(); }

  /// Density of log10(value) — directly comparable across histograms.
  std::vector<double> density() const { return hist_.density(); }

  /// Index of the densest bin ("mode"), useful for locating the paper's
  /// 1 ms / 10 ms / 120 ms RTB modes.
  std::size_t mode_bin() const noexcept;

 private:
  LinearHistogram hist_;
};

}  // namespace adscope::stats
