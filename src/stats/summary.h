// Order statistics and box-plot summaries.
#pragma once

#include <cstddef>
#include <vector>

namespace adscope::stats {

/// Linear-interpolated quantile (R-7, the numpy default). `q` in [0, 1].
/// Sorts a copy; use sorted_quantile for pre-sorted data.
double quantile(std::vector<double> values, double q);

/// Quantile over already-sorted data.
double sorted_quantile(const std::vector<double>& sorted, double q);

double mean(const std::vector<double>& values);
double stddev(const std::vector<double>& values);

/// Tukey box-plot summary: quartiles plus whiskers at the most extreme
/// points within 1.5 * IQR of the box (Figure 2 of the paper).
struct BoxStats {
  double min = 0;
  double whisker_low = 0;
  double q1 = 0;
  double median = 0;
  double q3 = 0;
  double whisker_high = 0;
  double max = 0;
  std::size_t n = 0;
};

BoxStats box_stats(std::vector<double> values);

}  // namespace adscope::stats
