#include "stats/csv.h"

#include <cstdlib>
#include <fstream>
#include <stdexcept>

namespace adscope::stats {

std::optional<std::string> csv_export_dir() {
  const char* dir = std::getenv("ADSCOPE_CSV_DIR");
  if (dir == nullptr || *dir == '\0') return std::nullopt;
  return std::string(dir);
}

CsvWriter::CsvWriter(const std::string& dir, const std::string& name,
                     const std::vector<std::string>& header)
    : path_(dir + "/" + name + ".csv"), columns_(header.size()) {
  add_row(header);
}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += '"';
  return out;
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < columns_; ++i) {
    if (i != 0) buffer_ += ',';
    if (i < cells.size()) buffer_ += escape(cells[i]);
  }
  buffer_ += '\n';
}

CsvWriter::~CsvWriter() {
  if (flushed_) return;
  std::ofstream out(path_, std::ios::trunc);
  if (out) out << buffer_;
  flushed_ = true;
}

}  // namespace adscope::stats
