// Minimal JSON emitter for the serving layer.
//
// The /study/* endpoints and the shutdown snapshot render aggregates as
// JSON; this writer handles escaping, comma placement and number
// formatting in one place so the render code reads as the schema.
// Arrays/objects nest freely; keys are only legal inside objects
// (checked with std::logic_error in debug-style fail-fast fashion).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace adscope::stats {

/// Appends `value` escaped per RFC 8259 (quotes not included).
void json_escape(std::string& out, std::string_view value);

class JsonWriter {
 public:
  JsonWriter() { out_.reserve(256); }

  JsonWriter& begin_object() { return open('{'); }
  JsonWriter& end_object() { return close('}'); }
  JsonWriter& begin_array() { return open('['); }
  JsonWriter& end_array() { return close(']'); }

  /// Key for the next value; must be inside an object.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view text);
  JsonWriter& value(const char* text) { return value(std::string_view(text)); }
  JsonWriter& value(double number);
  JsonWriter& value(std::uint64_t number);
  JsonWriter& value(std::int64_t number);
  JsonWriter& value(bool flag);
  JsonWriter& null();

  /// Shorthand: key + value.
  template <typename T>
  JsonWriter& field(std::string_view name, T&& v) {
    key(name);
    return value(std::forward<T>(v));
  }

  /// The finished document; valid once every container was closed.
  const std::string& str() const;

 private:
  JsonWriter& open(char bracket);
  JsonWriter& close(char bracket);
  void separate();

  std::string out_;
  std::vector<char> stack_;      // '{' or '['
  std::vector<bool> has_items_;  // per level: needs a comma
  bool key_pending_ = false;
};

}  // namespace adscope::stats
