// ASCII rendering of tables and figures for benchmark harness output.
//
// Every experiment binary prints the paper's table/figure as text so that
// paper-vs-measured comparisons live in the terminal (and in
// bench_output.txt) with no plotting dependency.
#pragma once

#include <string>
#include <vector>

#include "stats/heatmap.h"
#include "stats/summary.h"
#include "stats/timeseries.h"

namespace adscope::stats {

/// Column-aligned text table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Render with a header underline; columns padded to the widest cell.
  std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Horizontal bar of width proportional to value/max (max_width chars).
std::string bar(double value, double max_value, std::size_t max_width);

/// Sparkline over a series using 8-level block characters.
std::string sparkline(const std::vector<double>& values, double max_value);

/// One-line ASCII box plot of `box` over the axis [lo, hi].
std::string boxplot_line(const BoxStats& box, double lo, double hi,
                         std::size_t width);

/// Shade a log-log heatmap with density characters.
std::string render_heatmap(const LogLogHeatmap& map, std::size_t max_rows);

}  // namespace adscope::stats
