#include "stats/ecdf.h"

#include <algorithm>

namespace adscope::stats {

void Ecdf::ensure_sorted() const {
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
}

double Ecdf::fraction_at_or_below(double x) const {
  if (values_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::upper_bound(values_.begin(), values_.end(), x);
  return static_cast<double>(it - values_.begin()) /
         static_cast<double>(values_.size());
}

double Ecdf::value_at(double q) const {
  if (values_.empty()) return 0.0;
  ensure_sorted();
  if (q <= 0.0) return values_.front();
  auto index = static_cast<std::size_t>(
      q * static_cast<double>(values_.size()));
  if (index >= values_.size()) index = values_.size() - 1;
  return values_[index];
}

std::vector<std::pair<double, double>> Ecdf::curve() const {
  std::vector<std::pair<double, double>> points;
  if (values_.empty()) return points;
  ensure_sorted();
  const auto n = static_cast<double>(values_.size());
  for (std::size_t i = 0; i < values_.size(); ++i) {
    if (i + 1 < values_.size() && values_[i + 1] == values_[i]) continue;
    points.emplace_back(values_[i], static_cast<double>(i + 1) / n);
  }
  return points;
}

}  // namespace adscope::stats
