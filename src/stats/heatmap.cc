#include "stats/heatmap.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace adscope::stats {

LogLogHeatmap::LogLogHeatmap(double log10_max_x, double log10_max_y,
                             std::size_t bins_x, std::size_t bins_y)
    : log_max_x_(log10_max_x),
      log_max_y_(log10_max_y),
      bins_x_(bins_x == 0 ? 1 : bins_x),
      bins_y_(bins_y == 0 ? 1 : bins_y),
      cells_(bins_x_ * bins_y_, 0) {}

void LogLogHeatmap::add(double x, double y) {
  const double lx = std::log10(x + 1.0);
  const double ly = std::log10(y + 1.0);
  auto bx = static_cast<std::size_t>(lx / log_max_x_ *
                                     static_cast<double>(bins_x_));
  auto by = static_cast<std::size_t>(ly / log_max_y_ *
                                     static_cast<double>(bins_y_));
  bx = std::min(bx, bins_x_ - 1);
  by = std::min(by, bins_y_ - 1);
  ++cells_[by * bins_x_ + bx];
  ++total_;
}

std::uint64_t LogLogHeatmap::max_cell() const noexcept {
  std::uint64_t best = 0;
  for (const auto c : cells_) best = std::max(best, c);
  return best;
}

double LogLogHeatmap::x_edge(std::size_t bx) const noexcept {
  return std::pow(10.0, log_max_x_ * static_cast<double>(bx) /
                            static_cast<double>(bins_x_)) -
         1.0;
}

double LogLogHeatmap::y_edge(std::size_t by) const noexcept {
  return std::pow(10.0, log_max_y_ * static_cast<double>(by) /
                            static_cast<double>(bins_y_)) -
         1.0;
}

}  // namespace adscope::stats
