#include "html/resource_extractor.h"

#include "util/strings.h"

namespace adscope::html {

namespace {

using http::RequestType;

void add_resource(PageStructure& out, const http::Url& base,
                  std::string_view reference, RequestType type) {
  if (util::trim(reference).empty()) return;
  const auto resolved = base.resolve(reference);
  if (resolved.empty()) return;
  out.resources.push_back(EmbeddedResource{resolved.spec(), type});
}

}  // namespace

PageStructure extract_structure(std::string_view payload,
                                const http::Url& base_url) {
  PageStructure out;
  const auto tokens = tokenize(payload);

  // Track the innermost open <div>/<span> so following text attributes
  // to its class list (shallow, but enough to spot text-ad containers).
  std::vector<TextBlock> open_blocks;

  for (const auto& token : tokens) {
    switch (token.kind) {
      case Token::Kind::kStartTag: {
        const auto& tag = token.name;
        if (tag == "img") {
          add_resource(out, base_url, token.attr("src"), RequestType::kImage);
        } else if (tag == "script") {
          const auto src = token.attr("src");
          if (!src.empty()) {
            add_resource(out, base_url, src, RequestType::kScript);
          }
        } else if (tag == "link") {
          const auto rel = util::to_lower(token.attr("rel"));
          if (rel == "stylesheet") {
            add_resource(out, base_url, token.attr("href"),
                         RequestType::kStylesheet);
          }
        } else if (tag == "iframe" || tag == "frame") {
          add_resource(out, base_url, token.attr("src"),
                       RequestType::kSubdocument);
        } else if (tag == "video" || tag == "audio" || tag == "source") {
          add_resource(out, base_url, token.attr("src"), RequestType::kMedia);
        } else if (tag == "object" || tag == "embed") {
          const auto data = token.attr("data");
          add_resource(out, base_url, data.empty() ? token.attr("src") : data,
                       RequestType::kObject);
        } else if (tag == "div" || tag == "span" || tag == "aside" ||
                   tag == "section") {
          TextBlock block;
          for (auto piece :
               util::split_nonempty(token.attr("class"), ' ')) {
            block.classes.emplace_back(util::to_lower(piece));
          }
          block.id = util::to_lower(token.attr("id"));
          if (!token.self_closing) open_blocks.push_back(std::move(block));
        }
        break;
      }
      case Token::Kind::kEndTag:
        if ((token.name == "div" || token.name == "span" ||
             token.name == "aside" || token.name == "section") &&
            !open_blocks.empty()) {
          out.text_blocks.push_back(std::move(open_blocks.back()));
          open_blocks.pop_back();
        }
        break;
      case Token::Kind::kText:
        if (!open_blocks.empty()) {
          open_blocks.back().text_length += token.text.size();
        }
        break;
      case Token::Kind::kComment:
        break;
    }
  }
  // Unclosed blocks still count.
  for (auto& block : open_blocks) out.text_blocks.push_back(std::move(block));
  return out;
}

}  // namespace adscope::html
