#include "html/tokenizer.h"

#include "util/strings.h"

namespace adscope::html {

std::string_view Token::attr(std::string_view name_lower) const noexcept {
  for (const auto& attribute : attributes) {
    if (attribute.name == name_lower) return attribute.value;
  }
  return {};
}

namespace {

class Tokenizer {
 public:
  explicit Tokenizer(std::string_view html) : html_(html) {}

  std::vector<Token> run() {
    while (pos_ < html_.size()) {
      if (html_[pos_] == '<') {
        read_markup();
      } else {
        read_text();
      }
    }
    return std::move(tokens_);
  }

 private:
  void read_text() {
    const auto start = pos_;
    while (pos_ < html_.size() && html_[pos_] != '<') ++pos_;
    emit_text(html_.substr(start, pos_ - start));
  }

  void emit_text(std::string_view text) {
    const auto trimmed = util::trim(text);
    if (trimmed.empty()) return;
    Token token;
    token.kind = Token::Kind::kText;
    token.text = std::string(trimmed);
    tokens_.push_back(std::move(token));
  }

  void read_markup() {
    // pos_ is at '<'.
    if (html_.compare(pos_, 4, "<!--") == 0) {
      read_comment();
      return;
    }
    std::size_t cursor = pos_ + 1;
    bool end_tag = false;
    if (cursor < html_.size() && html_[cursor] == '/') {
      end_tag = true;
      ++cursor;
    }
    if (cursor >= html_.size() || !util::is_ascii_alpha(html_[cursor])) {
      // "<3" or "<!" doctype etc: swallow until '>' as text-ish noise.
      const auto close = html_.find('>', pos_);
      pos_ = close == std::string_view::npos ? html_.size() : close + 1;
      return;
    }
    // Tag name.
    const auto name_start = cursor;
    while (cursor < html_.size() &&
           (util::is_ascii_alnum(html_[cursor]) || html_[cursor] == '-')) {
      ++cursor;
    }
    Token token;
    token.kind = end_tag ? Token::Kind::kEndTag : Token::Kind::kStartTag;
    token.name = util::to_lower(html_.substr(name_start, cursor - name_start));

    // Attributes until '>' (or EOF).
    while (cursor < html_.size() && html_[cursor] != '>') {
      if (html_[cursor] == '/' && cursor + 1 < html_.size() &&
          html_[cursor + 1] == '>') {
        token.self_closing = true;
        ++cursor;
        break;
      }
      if (!util::is_ascii_alpha(html_[cursor])) {
        ++cursor;
        continue;
      }
      Attribute attribute;
      const auto attr_start = cursor;
      while (cursor < html_.size() &&
             (util::is_ascii_alnum(html_[cursor]) || html_[cursor] == '-')) {
        ++cursor;
      }
      attribute.name =
          util::to_lower(html_.substr(attr_start, cursor - attr_start));
      while (cursor < html_.size() &&
             (html_[cursor] == ' ' || html_[cursor] == '\t' ||
              html_[cursor] == '\n')) {
        ++cursor;
      }
      if (cursor < html_.size() && html_[cursor] == '=') {
        ++cursor;
        while (cursor < html_.size() &&
               (html_[cursor] == ' ' || html_[cursor] == '\t')) {
          ++cursor;
        }
        if (cursor < html_.size() &&
            (html_[cursor] == '"' || html_[cursor] == '\'')) {
          const char quote = html_[cursor];
          const auto value_start = ++cursor;
          while (cursor < html_.size() && html_[cursor] != quote) ++cursor;
          attribute.value =
              std::string(html_.substr(value_start, cursor - value_start));
          if (cursor < html_.size()) ++cursor;  // closing quote
        } else {
          const auto value_start = cursor;
          while (cursor < html_.size() && html_[cursor] != ' ' &&
                 html_[cursor] != '>' && html_[cursor] != '\t' &&
                 html_[cursor] != '\n') {
            ++cursor;
          }
          attribute.value =
              std::string(html_.substr(value_start, cursor - value_start));
        }
      }
      token.attributes.push_back(std::move(attribute));
    }
    if (cursor < html_.size()) ++cursor;  // '>'
    pos_ = cursor;

    const bool raw_text = !end_tag && (token.name == "script" ||
                                       token.name == "style");
    const std::string raw_name = token.name;
    tokens_.push_back(std::move(token));
    if (raw_text) read_raw_text(raw_name);
  }

  void read_raw_text(const std::string& element) {
    const std::string closer = "</" + element;
    const auto end = util::ifind(html_.substr(pos_), closer);
    const auto content_end =
        end == std::string_view::npos ? html_.size() : pos_ + end;
    emit_text(html_.substr(pos_, content_end - pos_));
    pos_ = content_end;  // the end tag is tokenized normally next
  }

  void read_comment() {
    const auto end = html_.find("-->", pos_ + 4);
    Token token;
    token.kind = Token::Kind::kComment;
    if (end == std::string_view::npos) {
      token.text = std::string(html_.substr(pos_ + 4));
      pos_ = html_.size();
    } else {
      token.text = std::string(html_.substr(pos_ + 4, end - pos_ - 4));
      pos_ = end + 3;
    }
    tokens_.push_back(std::move(token));
  }

  std::string_view html_;
  std::size_t pos_ = 0;
  std::vector<Token> tokens_;
};

}  // namespace

std::vector<Token> tokenize(std::string_view html) {
  return Tokenizer(html).run();
}

}  // namespace adscope::html
