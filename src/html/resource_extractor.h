// Page-structure extraction from HTML payloads (§10 payload mode).
//
// Walks the token stream and recovers what the header-only pipeline has
// to approximate: which URLs the page embeds and as what element type
// (the DOM knowledge Adblock Plus has), plus the element classes/ids of
// text blocks — which, matched against element-hiding rules, reveal the
// "hidden ads" embedded in the HTML itself whose retrieval cannot be
// blocked (§2, §10).
#pragma once

#include <string>
#include <vector>

#include "html/tokenizer.h"
#include "http/mime.h"
#include "http/url.h"

namespace adscope::html {

struct EmbeddedResource {
  std::string url;  // resolved against the document URL
  http::RequestType type = http::RequestType::kOther;
};

struct TextBlock {
  std::vector<std::string> classes;  // class attribute tokens
  std::string id;
  std::size_t text_length = 0;
};

struct PageStructure {
  std::vector<EmbeddedResource> resources;
  std::vector<TextBlock> text_blocks;
};

/// Parse `payload` as the document at `base_url` and extract structure.
PageStructure extract_structure(std::string_view payload,
                                const http::Url& base_url);

}  // namespace adscope::html
