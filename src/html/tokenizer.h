// Minimal, robust HTML tokenizer.
//
// Supports the payload-mode extension the paper sketches in §10: when
// packet payloads ARE available, the main document's HTML yields the
// page structure that header-only analysis has to approximate. The
// tokenizer handles the subset needed to extract embedded resources and
// element classes: tags with attributes (quoted/unquoted), text runs,
// comments, and raw-text elements (script/style). It never throws on
// malformed input — garbage degrades to text.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace adscope::html {

struct Attribute {
  std::string name;   // lower-cased
  std::string value;  // unquoted; entities NOT decoded (URLs rarely need it)
};

struct Token {
  enum class Kind : std::uint8_t {
    kStartTag,
    kEndTag,
    kText,
    kComment,
  };

  Kind kind = Kind::kText;
  std::string name;  // tag name, lower-cased (empty for text/comment)
  std::vector<Attribute> attributes;
  std::string text;  // text/comment content
  bool self_closing = false;

  /// First value of an attribute, or "" when absent.
  std::string_view attr(std::string_view name_lower) const noexcept;
};

/// Tokenize an HTML fragment. Raw-text element contents (script, style)
/// are emitted as a single text token.
std::vector<Token> tokenize(std::string_view html);

}  // namespace adscope::html
