#include "lint/diagnostics.h"

namespace adscope::lint {

std::string_view to_string(Severity severity) noexcept {
  switch (severity) {
    case Severity::kInfo: return "info";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "warning";
}

std::string_view to_string(Check check) noexcept {
  switch (check) {
    case Check::kParse: return "parse";
    case Check::kDuplicate: return "duplicate";
    case Check::kShadowed: return "shadowed";
    case Check::kDeadException: return "dead-exception";
    case Check::kEmptyMatchSet: return "empty-match-set";
    case Check::kSlowPath: return "slow-path";
    case Check::kRegexRisk: return "regex-risk";
  }
  return "parse";
}

}  // namespace adscope::lint
