#include "lint/subsumption.h"

#include <algorithm>

#include "http/public_suffix.h"
#include "util/strings.h"

namespace adscope::lint {

namespace {

using adblock::Filter;
using adblock::PatternClass;
using adblock::ThirdPartyConstraint;

bool contains(std::string_view haystack, std::string_view needle) {
  return haystack.find(needle) != std::string_view::npos;
}

/// Every page host excluded by `a` is also outside `b`'s match set —
/// i.e. each of a's excludes sits under one of b's excludes.
bool excludes_covered(const Filter& a, const Filter& b) {
  for (const auto& ex_a : a.exclude_domains()) {
    const bool covered = std::any_of(
        b.exclude_domains().begin(), b.exclude_domains().end(),
        [&](const std::string& ex_b) {
          return http::host_matches_domain(ex_a, ex_b);
        });
    if (!covered) return false;
  }
  return true;
}

/// A's option constraints are no stricter than B's: any request passing
/// B's type/party/domain gates also passes A's.
bool options_subsume(const Filter& a, const Filter& b) {
  if ((b.type_mask() & ~a.type_mask()) != 0) return false;
  if (a.third_party() != ThirdPartyConstraint::kAny &&
      a.third_party() != b.third_party()) {
    return false;
  }
  if (!excludes_covered(a, b)) return false;
  if (!a.include_domains().empty()) {
    // A only fires on its include domains; B must be confined to them.
    if (b.include_domains().empty()) return false;
    for (const auto& inc_b : b.include_domains()) {
      const bool covered = std::any_of(
          a.include_domains().begin(), a.include_domains().end(),
          [&](const std::string& inc_a) {
            return http::host_matches_domain(inc_b, inc_a);
          });
      if (!covered) return false;
    }
  }
  return true;
}

/// "||host^" (or "||host^" + end anchor) — matches exactly when `host`
/// is a dot-suffix of the request host. Returns the host part, or empty.
std::string_view host_anchor_shape(const Filter& f) {
  if (!f.domain_anchor() || f.start_anchor() || f.is_regex()) return {};
  std::string_view pat = f.pattern();
  if (pat.size() < 2 || pat.back() != '^') return {};
  pat.remove_suffix(1);
  for (const char c : pat) {
    const bool host_char = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                           c == '.' || c == '-';
    if (!host_char) return {};
  }
  return pat;
}

/// `suffix` equals `host` or ends it at a label boundary.
bool is_dot_suffix(std::string_view host, std::string_view suffix) {
  if (host == suffix) return true;
  if (host.size() <= suffix.size()) return false;
  return util::ends_with(host, suffix) &&
         host[host.size() - suffix.size() - 1] == '.';
}

}  // namespace

std::vector<std::string_view> literal_runs(std::string_view pattern) {
  std::vector<std::string_view> runs;
  std::size_t i = 0;
  while (i < pattern.size()) {
    if (pattern[i] == '*' || pattern[i] == '^') {
      ++i;
      continue;
    }
    std::size_t j = i;
    while (j < pattern.size() && pattern[j] != '*' && pattern[j] != '^') ++j;
    runs.push_back(pattern.substr(i, j - i));
    i = j;
  }
  return runs;
}

std::string semantic_signature(const adblock::Filter& filter) {
  std::string sig;
  sig.reserve(filter.pattern().size() + 48);
  const auto flag = [&](bool b) { sig += b ? '1' : '0'; };
  flag(filter.is_exception());
  flag(filter.domain_anchor());
  flag(filter.start_anchor());
  flag(filter.end_anchor());
  flag(filter.match_case());
  flag(filter.is_regex());
  sig += '\x1f';
  sig += std::to_string(filter.type_mask());
  sig += '\x1f';
  sig += std::to_string(static_cast<int>(filter.third_party()));
  sig += '\x1f';
  // Case matters exactly when the rule is case-sensitive (or a regex,
  // whose source survives verbatim).
  sig += (filter.match_case() || filter.is_regex()) ? filter.pattern_original()
                                                    : filter.pattern();
  auto domains = [&](const std::vector<std::string>& list) {
    auto sorted = list;
    std::sort(sorted.begin(), sorted.end());
    for (const auto& d : sorted) {
      sig += '\x1f';
      sig += d;
    }
  };
  sig += "\x1f|inc";
  domains(filter.include_domains());
  sig += "\x1f|exc";
  domains(filter.exclude_domains());
  return sig;
}

bool subsumes(const adblock::Filter& broad, const adblock::Filter& narrow) {
  const Filter& a = broad;
  const Filter& b = narrow;
  if (a.is_exception() != b.is_exception()) return false;
  if (a.is_regex() || b.is_regex()) return false;
  if (!options_subsume(a, b)) return false;

  // A case-sensitive subsumer only covers a case-sensitive narrow rule,
  // compared in original case; a case-insensitive one compares lowered
  // patterns (B's runs appear in the URL in *some* case, so their
  // lowered forms appear in the lowered URL A scans).
  if (a.match_case() && !b.match_case()) return false;
  const std::string& pat_a =
      a.match_case() ? a.pattern_original() : a.pattern();
  const std::string& pat_b =
      a.match_case() ? b.pattern_original() : b.pattern();

  // Prefix lemma: when B's pattern matches starting at position p, any
  // string prefix of it also matches starting at p — each prefix element
  // just consumes the text it consumed inside B's match ('^' may take a
  // separator or end-of-address in both). So an end-anchor-free A whose
  // pattern is a string prefix of B's subsumes B whenever their anchors
  // pin the same start position. The dual holds for end anchors.
  if (!a.domain_anchor() && !a.start_anchor() && !a.end_anchor()) {
    if (a.pattern_class() == PatternClass::kLiteral) {
      // Unanchored literal: A matches u iff pat_a occurs in u; every
      // literal run of B occurs verbatim in every B-match.
      for (const auto run : literal_runs(pat_b)) {
        if (contains(run, pat_a)) return true;
      }
    }
    // Unanchored A matches wherever B's own match started.
    return util::starts_with(pat_b, pat_a);
  }
  if (a.start_anchor() && !a.end_anchor()) {
    // "|lit...": both matches start at position 0.
    return b.start_anchor() && util::starts_with(pat_b, pat_a);
  }
  if (a.domain_anchor() && !a.end_anchor()) {
    // "||lit...": B matches at an anchor position; so does A there.
    return b.domain_anchor() && util::starts_with(pat_b, pat_a);
  }
  if (a.end_anchor() && !a.start_anchor() && !a.domain_anchor()) {
    // "...lit|": the suffix dual of the prefix lemma.
    return b.end_anchor() && util::ends_with(pat_b, pat_a);
  }
  return false;  // doubly-anchored broad rules: not worth deciding
}

bool provably_disjoint(const adblock::Filter& a, const adblock::Filter& b) {
  // Disjoint request-type sets.
  if ((a.type_mask() & b.type_mask()) == 0) return true;
  // Opposite party constraints.
  if (a.third_party() != ThirdPartyConstraint::kAny &&
      b.third_party() != ThirdPartyConstraint::kAny &&
      a.third_party() != b.third_party()) {
    return true;
  }
  // Disjoint page-domain confinement.
  if (!a.include_domains().empty() && !b.include_domains().empty()) {
    bool overlap = false;
    for (const auto& da : a.include_domains()) {
      for (const auto& db : b.include_domains()) {
        if (http::host_matches_domain(da, db) ||
            http::host_matches_domain(db, da)) {
          overlap = true;
          break;
        }
      }
      if (overlap) break;
    }
    if (!overlap) return true;
  }

  // Pattern-position proofs (lowered patterns: a match in any case
  // implies the lowered pattern relations below, so they stay sound).
  if (a.is_regex() || b.is_regex()) return false;
  const bool literals = a.pattern_class() == PatternClass::kLiteral &&
                        b.pattern_class() == PatternClass::kLiteral;
  if (literals && a.start_anchor() && b.start_anchor()) {
    // Both pin position 0: one pattern must be a prefix of the other.
    if (!util::starts_with(a.pattern(), b.pattern()) &&
        !util::starts_with(b.pattern(), a.pattern())) {
      return true;
    }
  }
  if (literals && a.end_anchor() && b.end_anchor()) {
    if (!util::ends_with(a.pattern(), b.pattern()) &&
        !util::ends_with(b.pattern(), a.pattern())) {
      return true;
    }
  }
  // "||hostA^" vs "||hostB^": each requires its host to be a dot-suffix
  // of the request host ('.' is not a separator, so '^' forces the run
  // to end exactly where the host does). Two dot-suffixes of one host
  // are always nested — unrelated hosts prove disjointness.
  const auto host_a = host_anchor_shape(a);
  const auto host_b = host_anchor_shape(b);
  if (!host_a.empty() && !host_b.empty() && !is_dot_suffix(host_a, host_b) &&
      !is_dot_suffix(host_b, host_a)) {
    return true;
  }
  return false;
}

}  // namespace adscope::lint
