// Backtracking-risk heuristics for "/.../" regex rules (DESIGN.md §8.3).
//
// std::regex is a backtracking ECMAScript engine: a quantified group
// whose body is itself quantified (star height >= 2, "(a+)+") or counted
// repetition with a huge span can take super-linear time on adversarial
// URLs. The engine runs these rules on every classify() slow path, so a
// single risky vendor rule is a denial-of-service budget. This analyzer
// approximates star height with a single scan over the expression —
// sound enough for a lint (it may flag a safe possessive-looking rule,
// never crashes on malformed input; those already failed to parse).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace adscope::lint {

struct RegexRisk {
  enum class Kind : std::uint8_t {
    kNestedQuantifier,  // quantified group containing a quantifier
    kLargeRepetition,   // {n,m} span beyond the budget
  };
  Kind kind = Kind::kNestedQuantifier;
  std::string message;
};

/// Inspect a regex source (the text between the slashes). Returns the
/// most severe finding, or nullopt for an unremarkable expression.
std::optional<RegexRisk> assess_regex(std::string_view expression);

}  // namespace adscope::lint
