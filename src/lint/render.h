// Lint report rendering: human text and machine JSON.
//
// The text form follows the compiler convention ("list:line: severity:
// check: message") so editors and CI log scrapers pick locations up for
// free, closed by a StudyView-style summary block. The JSON form goes
// through stats::JsonWriter — the same emitter the serving layer uses —
// under a versioned schema tag so downstream tooling can pin it.
#pragma once

#include <string>

#include "lint/linter.h"

namespace adscope::lint {

std::string render_text(const LintResult& result);

/// Schema "adscope-lint-1": {schema, stats{...}, diagnostics:[...]}.
std::string render_json(const LintResult& result);

}  // namespace adscope::lint
