#include "lint/render.h"

#include <cstddef>

#include "stats/json.h"

namespace adscope::lint {

std::string render_text(const LintResult& result) {
  std::string out;
  for (const auto& d : result.diagnostics) {
    out += d.list;
    out += ':';
    out += std::to_string(d.line);
    out += ": ";
    out += to_string(d.severity);
    out += ": ";
    out += to_string(d.check);
    out += ": ";
    out += d.message;
    if (d.other_line != 0) {
      out += " [first at ";
      out += d.other_list;
      out += ':';
      out += std::to_string(d.other_line);
      out += "]";
    }
    out += "\n    ";
    out += d.rule;
    out += '\n';
  }
  const auto& s = result.stats;
  out += "\n=== adscope lint: " + std::to_string(s.lists) + " list(s) ===\n";
  out += "rules: " + std::to_string(s.rules) + " (" +
         std::to_string(s.exception_rules) + " exceptions, " +
         std::to_string(s.elemhide_rules) + " element-hiding)\n";
  out += "discarded lines: " + std::to_string(s.discarded_lines) + "\n";
  out += "findings: " + std::to_string(s.errors) + " error(s), " +
         std::to_string(s.warnings) + " warning(s), " +
         std::to_string(s.infos) + " note(s)\n";
  for (std::size_t c = 0; c < kCheckCount; ++c) {
    if (s.by_check[c] == 0) continue;
    out += "  ";
    out += to_string(static_cast<Check>(c));
    out += ": " + std::to_string(s.by_check[c]) + "\n";
  }
  out += "prunable rules: " + std::to_string(s.prunable) + "\n";
  if (s.shadowing_degraded) {
    out +=
        "note: rule count exceeded the shadowing budget; shadowing and "
        "dead-exception analyses were skipped\n";
  }
  return out;
}

std::string render_json(const LintResult& result) {
  stats::JsonWriter json;
  json.begin_object();
  json.field("schema", "adscope-lint-1");

  const auto& s = result.stats;
  json.key("stats").begin_object();
  json.field("lists", static_cast<std::uint64_t>(s.lists));
  json.field("rules", static_cast<std::uint64_t>(s.rules));
  json.field("exception_rules",
             static_cast<std::uint64_t>(s.exception_rules));
  json.field("elemhide_rules", static_cast<std::uint64_t>(s.elemhide_rules));
  json.field("discarded_lines",
             static_cast<std::uint64_t>(s.discarded_lines));
  json.field("errors", static_cast<std::uint64_t>(s.errors));
  json.field("warnings", static_cast<std::uint64_t>(s.warnings));
  json.field("infos", static_cast<std::uint64_t>(s.infos));
  json.field("prunable", static_cast<std::uint64_t>(s.prunable));
  json.field("shadowing_degraded", s.shadowing_degraded);
  json.key("by_check").begin_object();
  for (std::size_t c = 0; c < kCheckCount; ++c) {
    json.field(to_string(static_cast<Check>(c)),
               static_cast<std::uint64_t>(s.by_check[c]));
  }
  json.end_object();
  json.end_object();

  json.key("diagnostics").begin_array();
  for (const auto& d : result.diagnostics) {
    json.begin_object();
    json.field("severity", to_string(d.severity));
    json.field("check", to_string(d.check));
    json.field("list", d.list);
    json.field("line", static_cast<std::uint64_t>(d.line));
    json.field("rule", d.rule);
    json.field("message", d.message);
    if (d.other_line != 0) {
      json.field("other_list", d.other_list);
      json.field("other_line", static_cast<std::uint64_t>(d.other_line));
    }
    json.field("prunable", d.prunable);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return json.str();
}

}  // namespace adscope::lint
