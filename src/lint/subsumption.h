// Decision procedures over filter match sets (DESIGN.md §8.2).
//
// Filter subsumption ("does A match everything B matches?") is
// undecidable only for the regex class; for the literal and wildcard
// classes the engine actually runs, useful fragments are decidable:
//
//   * every maximal '*'/'^'-free literal run of a pattern appears
//     verbatim in any URL the pattern matches, and
//   * an anchored literal pins its position, so prefix/suffix algebra
//     decides containment.
//
// Every predicate here is *sound but incomplete*: `true` is a proof,
// `false` means "could not prove" — the analyses stay conservative, a
// lint must never claim a rule redundant when it is not.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "adblock/filter.h"

namespace adscope::lint {

/// Maximal '*'/'^'-free substrings of `pattern`, in order. Each run is
/// guaranteed to occur verbatim in every URL the pattern matches.
std::vector<std::string_view> literal_runs(std::string_view pattern);

/// Canonical semantic identity: two filters with equal signatures match
/// exactly the same requests with the same effect (duplicate check).
std::string semantic_signature(const adblock::Filter& filter);

/// Proof that `broad`'s match set contains `narrow`'s: every request
/// matched by `narrow` is matched by `broad`. Requires equal polarity
/// (exception flag); `broad` must be a non-regex literal pattern.
bool subsumes(const adblock::Filter& broad, const adblock::Filter& narrow);

/// Proof that the two filters can never match the same request — the
/// dead-exception analysis asks this for (exception, blocking) pairs.
bool provably_disjoint(const adblock::Filter& a, const adblock::Filter& b);

}  // namespace adscope::lint
