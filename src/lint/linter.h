// The `adscope lint` driver (DESIGN.md §8).
//
// run_lint() parses a set of filter-list sources and runs five analyses:
//
//   parse        lines the parser rejected, with reasons (ParseDiagnosis)
//   duplicate    semantically identical to an earlier rule
//   shadowed     subsumed by a broader rule in the same or an earlier
//                list (decided by lint/subsumption.h)
//   dead rules   empty-match-set options; "@@" exceptions provably
//                disjoint from every blocking rule; untokenizable
//                patterns stuck on the slow path
//   regex risk   nested quantifiers / oversized counted repetition
//
// Prune safety: a rule is marked prunable only when removing it provably
// changes no Classification (decision, deciding list, list kind) for any
// request — see prune rules in linter.cc and the argument in DESIGN.md
// §8.4. emit_pruned() applies the marks to the original text, leaving
// every other byte (comments, metadata, element-hiding rules) alone.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "adblock/filter_list.h"
#include "lint/diagnostics.h"

namespace adscope::lint {

struct LintSource {
  std::string name;  // file path or label, used in diagnostics
  std::string text;  // full list text
  adblock::ListKind kind = adblock::ListKind::kCustom;
};

struct LintOptions {
  /// Total-rule budget for the quadratic analyses (shadowing and dead
  /// exceptions). Beyond it they are skipped — duplicates, parse, dead
  /// options and regex risk still run — and stats.shadowing_degraded is
  /// set.
  std::size_t shadow_cap = 20000;
};

struct LintResult {
  std::vector<adblock::FilterList> lists;  // parallel to the sources
  /// Sorted most-severe first, then by (list order, line).
  std::vector<Diagnostic> diagnostics;
  LintStats stats;
  /// Per source: sorted 1-based lines that --prune drops.
  std::vector<std::vector<std::uint32_t>> prunable_lines;

  bool has_errors() const noexcept { return stats.errors > 0; }
};

LintResult run_lint(const std::vector<LintSource>& sources,
                    const LintOptions& options = {});

/// `text` minus the 1-based `pruned_lines` (as produced by run_lint).
std::string emit_pruned(std::string_view text,
                        const std::vector<std::uint32_t>& pruned_lines);

/// Guess the list family from a file name ("easylist.txt", ...).
adblock::ListKind infer_kind(std::string_view filename);

}  // namespace adscope::lint
