// Lint diagnostics — the vocabulary of `adscope lint`.
//
// A Diagnostic pins one finding to a (list, line) with the original rule
// text, a severity and a machine-readable check id; duplicate/shadowing
// findings also carry the location of the rule that makes this one
// redundant. LintStats is the roll-up the text/JSON renderers and the
// bench report.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace adscope::lint {

enum class Severity : std::uint8_t { kInfo, kWarning, kError };

std::string_view to_string(Severity severity) noexcept;

/// The analyses (DESIGN.md §8). Order is the stable JSON/stats order.
enum class Check : std::uint8_t {
  kParse,          // line rejected by the parser (reason from ParseDiagnosis)
  kDuplicate,      // semantically identical to an earlier rule
  kShadowed,       // subsumed by a broader same-or-earlier-list rule
  kDeadException,  // "@@" rule provably disjoint from every blocking rule
  kEmptyMatchSet,  // options make the rule unmatchable (e.g. $script,~script)
  kSlowPath,       // no index keyword: scanned for every request
  kRegexRisk,      // nested quantifiers / backtracking hazards
};

inline constexpr std::size_t kCheckCount = 7;

std::string_view to_string(Check check) noexcept;

struct Diagnostic {
  Severity severity = Severity::kWarning;
  Check check = Check::kParse;
  std::string list;        // list name (file path as given)
  std::uint32_t line = 0;  // 1-based line in the list source; 0 = unknown
  std::string rule;        // original rule text
  std::string message;     // human explanation
  // kDuplicate/kShadowed: the earlier rule this one is redundant against.
  std::string other_list;
  std::uint32_t other_line = 0;
  /// True when `--prune` may drop this rule without changing any
  /// classification (see prune.h for the safety argument).
  bool prunable = false;
};

struct LintStats {
  std::size_t lists = 0;
  std::size_t rules = 0;  // URL filters that parsed
  std::size_t exception_rules = 0;
  std::size_t elemhide_rules = 0;
  std::size_t discarded_lines = 0;
  std::size_t errors = 0;
  std::size_t warnings = 0;
  std::size_t infos = 0;
  std::size_t prunable = 0;
  std::array<std::size_t, kCheckCount> by_check{};
  /// True when the rule count exceeded LintOptions::shadow_cap and the
  /// O(n^2) shadowing/dead-exception analyses were skipped.
  bool shadowing_degraded = false;

  void count(const Diagnostic& diagnostic) noexcept {
    switch (diagnostic.severity) {
      case Severity::kInfo: ++infos; break;
      case Severity::kWarning: ++warnings; break;
      case Severity::kError: ++errors; break;
    }
    by_check[static_cast<std::size_t>(diagnostic.check)]++;
    if (diagnostic.prunable) ++prunable;
  }
};

}  // namespace adscope::lint
