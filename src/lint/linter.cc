#include "lint/linter.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "http/public_suffix.h"
#include "lint/regex_risk.h"
#include "lint/subsumption.h"
#include "util/strings.h"

namespace adscope::lint {

namespace {

using adblock::Filter;
using adblock::FilterList;
using adblock::ParseDiagnosis;

Severity parse_severity(ParseDiagnosis::Reason reason) {
  // A regex rule the author wrote and the engine silently dropped is a
  // real coverage hole; the other rejects are malformed-input warnings.
  return reason == ParseDiagnosis::Reason::kBadRegex ? Severity::kError
                                                     : Severity::kWarning;
}

std::string parse_message(const ParseDiagnosis& why) {
  std::string message = "rule discarded: ";
  message += to_string(why.reason);
  if (!why.detail.empty()) {
    message += " (";
    message += why.detail;
    message += ")";
  }
  return message;
}

/// One URL filter in engine order, with everything the ordered pass needs.
struct RuleRef {
  std::size_t source = 0;       // index into sources/lists
  const Filter* filter = nullptr;
  std::uint32_t line = 0;       // 1-based line in the source
  bool prune_candidate = false;
  std::size_t diagnostic = SIZE_MAX;  // index into diagnostics, if any
};

/// Options that admit no request at all: empty type mask (e.g.
/// "$script,~script", or only unobservable categories like $popup), or a
/// domain constraint where every included domain is also excluded.
const char* empty_match_reason(const Filter& filter) {
  if (filter.type_mask() == 0) {
    return "options leave no matchable request type";
  }
  if (!filter.include_domains().empty()) {
    const bool all_excluded = std::all_of(
        filter.include_domains().begin(), filter.include_domains().end(),
        [&](const std::string& inc) {
          return std::any_of(filter.exclude_domains().begin(),
                             filter.exclude_domains().end(),
                             [&](const std::string& exc) {
                               return http::host_matches_domain(inc, exc);
                             });
        });
    if (all_excluded) {
      return "every include domain is excluded again ($domain=x|~x)";
    }
  }
  return nullptr;
}

}  // namespace

LintResult run_lint(const std::vector<LintSource>& sources,
                    const LintOptions& options) {
  LintResult result;
  result.lists.reserve(sources.size());
  result.prunable_lines.resize(sources.size());

  // -- parse + per-line diagnostics ------------------------------------
  for (const auto& source : sources) {
    auto list = FilterList::parse(source.text, source.kind, source.name);
    result.stats.rules += list.filters().size();
    result.stats.exception_rules += list.exception_count();
    result.stats.elemhide_rules += list.element_hiding_rules().size();
    for (const auto& discarded : list.discarded_lines()) {
      // Element-hiding handoffs are not lint findings; real rejects are.
      if (discarded.diagnosis.reason == ParseDiagnosis::Reason::kNone ||
          discarded.diagnosis.reason ==
              ParseDiagnosis::Reason::kElementHiding) {
        continue;
      }
      ++result.stats.discarded_lines;
      Diagnostic diagnostic;
      diagnostic.severity = parse_severity(discarded.diagnosis.reason);
      diagnostic.check = Check::kParse;
      diagnostic.list = source.name;
      diagnostic.line = discarded.line;
      diagnostic.rule = discarded.text;
      diagnostic.message = parse_message(discarded.diagnosis);
      result.diagnostics.push_back(std::move(diagnostic));
    }
    result.lists.push_back(std::move(list));
  }
  result.stats.lists = sources.size();

  // -- flatten to engine order -----------------------------------------
  std::vector<RuleRef> rules;
  for (std::size_t s = 0; s < result.lists.size(); ++s) {
    const auto& filters = result.lists[s].filters();
    const auto& lines = result.lists[s].filter_lines();
    for (std::size_t i = 0; i < filters.size(); ++i) {
      rules.push_back({s, &filters[i], lines[i], false, SIZE_MAX});
    }
  }
  const bool shadow_enabled = rules.size() <= options.shadow_cap;
  result.stats.shadowing_degraded = !shadow_enabled;

  const auto emit = [&](RuleRef& rule, Severity severity, Check check,
                        std::string message, const RuleRef* other = nullptr,
                        bool prunable = false) {
    Diagnostic diagnostic;
    diagnostic.severity = severity;
    diagnostic.check = check;
    diagnostic.list = sources[rule.source].name;
    diagnostic.line = rule.line;
    diagnostic.rule = rule.filter->text();
    diagnostic.message = std::move(message);
    if (other != nullptr) {
      diagnostic.other_list = sources[other->source].name;
      diagnostic.other_line = other->line;
    }
    diagnostic.prunable = prunable;
    if (prunable) {
      rule.prune_candidate = true;
      rule.diagnostic = result.diagnostics.size();
    }
    result.diagnostics.push_back(std::move(diagnostic));
  };

  // -- per-rule analyses: dead options, slow path, regex risk ----------
  for (auto& rule : rules) {
    const Filter& f = *rule.filter;
    if (const char* reason = empty_match_reason(f)) {
      // A rule that matches nothing influences nothing: prune-safe.
      emit(rule, Severity::kError, Check::kEmptyMatchSet, reason, nullptr,
           /*prunable=*/true);
      continue;
    }
    if (f.is_regex()) {
      if (const auto risk = assess_regex(f.regex_source())) {
        emit(rule, Severity::kWarning, Check::kRegexRisk, risk->message);
      }
    }
    if (f.index_keywords().empty()) {
      emit(rule, Severity::kInfo, Check::kSlowPath,
           "no index keyword: this rule is evaluated for every request");
    }
  }

  // -- ordered pass: duplicates, then shadowing against kept rules -----
  // Scanning in engine order and only accepting kept rules as
  // duplicates-of/subsumers keeps the prune set self-consistent: every
  // pruned rule names a survivor that covers it.
  std::unordered_map<std::string, std::size_t> first_by_signature;
  std::vector<std::size_t> kept;
  for (std::size_t r = 0; r < rules.size(); ++r) {
    RuleRef& rule = rules[r];
    if (rule.prune_candidate) continue;  // empty match set: already gone
    const auto signature = semantic_signature(*rule.filter);
    if (const auto it = first_by_signature.find(signature);
        it != first_by_signature.end()) {
      RuleRef& first = rules[it->second];
      emit(rule, Severity::kWarning, Check::kDuplicate,
           "duplicate of an identical earlier rule", &first,
           /*prunable=*/true);
      continue;
    }
    if (shadow_enabled) {
      const RuleRef* shadower = nullptr;
      for (const auto k : kept) {
        if (subsumes(*rules[k].filter, *rule.filter)) {
          shadower = &rules[k];
          break;
        }
      }
      if (shadower != nullptr) {
        // The subsumer sits in the same or an earlier list, so removing
        // the shadowed rule can change neither decision nor attribution.
        emit(rule, Severity::kWarning, Check::kShadowed,
             "subsumed by the broader rule '" + shadower->filter->text() +
                 "'",
             shadower, /*prunable=*/true);
        continue;
      }
    }
    first_by_signature.emplace(signature, r);
    kept.push_back(r);
  }

  // -- dead exceptions --------------------------------------------------
  // An "@@" rule provably disjoint from every blocking rule never
  // un-blocks anything. It still turns kNoMatch into kWhitelisted for
  // the requests it matches, so it is a finding, NOT a prune candidate.
  if (shadow_enabled) {
    for (auto& rule : rules) {
      if (!rule.filter->is_exception() || rule.prune_candidate) continue;
      // "$document" exceptions whitelist whole pages through a separate
      // engine path; overlapping a blocking rule is not their job.
      if (rule.filter->whitelists_document()) continue;
      const bool dead = std::all_of(
          rules.begin(), rules.end(), [&](const RuleRef& other) {
            return other.filter->is_exception() ||
                   provably_disjoint(*rule.filter, *other.filter);
          });
      if (dead) {
        emit(rule, Severity::kWarning, Check::kDeadException,
             "exception overlaps no blocking rule: it can never un-block "
             "a request");
      }
    }
  }

  // -- prune coupling rescue -------------------------------------------
  // FilterEngine::pattern_contains_literal() feeds the query normalizer
  // from *all* loaded rule bodies ("key=" probes). Pruning may not
  // change its answers, so a candidate whose pattern contains '=' stays
  // unless an identical pattern survives.
  std::unordered_set<std::string_view> kept_patterns;
  for (const auto& rule : rules) {
    if (!rule.prune_candidate) kept_patterns.insert(rule.filter->pattern());
  }
  for (auto& rule : rules) {
    if (!rule.prune_candidate) continue;
    const std::string& pattern = rule.filter->pattern();
    if (pattern.find('=') != std::string::npos &&
        kept_patterns.count(pattern) == 0) {
      rule.prune_candidate = false;
      if (rule.diagnostic != SIZE_MAX) {
        auto& diagnostic = result.diagnostics[rule.diagnostic];
        diagnostic.prunable = false;
        diagnostic.message +=
            "; kept anyway: pattern contains '=' and feeds the query "
            "normalizer";
      }
    }
  }

  for (const auto& rule : rules) {
    if (rule.prune_candidate) {
      result.prunable_lines[rule.source].push_back(rule.line);
    }
  }
  for (auto& lines : result.prunable_lines) {
    std::sort(lines.begin(), lines.end());
  }

  // -- rank + roll up ---------------------------------------------------
  std::unordered_map<std::string_view, std::size_t> rank_by_name;
  for (std::size_t s = 0; s < sources.size(); ++s) {
    rank_by_name.emplace(sources[s].name, s);
  }
  std::stable_sort(result.diagnostics.begin(), result.diagnostics.end(),
                   [&](const Diagnostic& a, const Diagnostic& b) {
                     if (a.severity != b.severity) {
                       return static_cast<int>(a.severity) >
                              static_cast<int>(b.severity);
                     }
                     const auto ra = rank_by_name[a.list];
                     const auto rb = rank_by_name[b.list];
                     if (ra != rb) return ra < rb;
                     return a.line < b.line;
                   });
  for (const auto& diagnostic : result.diagnostics) {
    result.stats.count(diagnostic);
  }
  return result;
}

std::string emit_pruned(std::string_view text,
                        const std::vector<std::uint32_t>& pruned_lines) {
  std::unordered_set<std::uint32_t> drop(pruned_lines.begin(),
                                         pruned_lines.end());
  std::string out;
  out.reserve(text.size());
  std::size_t start = 0;
  std::uint32_t line_no = 0;
  // Mirror FilterList::parse's line walk exactly, so the numbering the
  // diagnostics carry maps back onto the same lines.
  while (start <= text.size()) {
    auto end = text.find('\n', start);
    const bool had_newline = end != std::string_view::npos;
    if (!had_newline) end = text.size();
    ++line_no;
    if (drop.count(line_no) == 0) {
      out.append(text.substr(start, end - start));
      if (had_newline) out.push_back('\n');
    }
    start = end + 1;
  }
  return out;
}

adblock::ListKind infer_kind(std::string_view filename) {
  const auto lowered = util::to_lower(filename);
  if (lowered.find("easyprivacy") != std::string::npos) {
    return adblock::ListKind::kEasyPrivacy;
  }
  if (lowered.find("easylist") != std::string::npos) {
    return adblock::ListKind::kEasyList;
  }
  if (lowered.find("acceptable") != std::string::npos ||
      lowered.find("exceptionrules") != std::string::npos) {
    return adblock::ListKind::kAcceptableAds;
  }
  return adblock::ListKind::kCustom;
}

}  // namespace adscope::lint
