#include "lint/regex_risk.h"

#include <cstdint>
#include <utility>
#include <vector>

namespace adscope::lint {

namespace {

constexpr std::uint64_t kRepetitionBudget = 1000;

bool is_quantifier_start(char c) {
  return c == '*' || c == '+' || c == '?' || c == '{';
}

/// Parse "{n}", "{n,}", "{n,m}" starting at `i` (the '{'). Returns the
/// index one past '}' and the repetition span, or nullopt when the
/// braces do not form a counted repetition (ECMAScript then treats '{'
/// literally).
std::optional<std::pair<std::size_t, std::uint64_t>> parse_repeat(
    std::string_view expr, std::size_t i) {
  std::size_t j = i + 1;
  std::uint64_t low = 0;
  bool digits = false;
  while (j < expr.size() && expr[j] >= '0' && expr[j] <= '9') {
    low = low * 10 + static_cast<std::uint64_t>(expr[j] - '0');
    if (low > 1000000) low = 1000000;
    digits = true;
    ++j;
  }
  if (!digits) return std::nullopt;
  std::uint64_t high = low;
  if (j < expr.size() && expr[j] == ',') {
    ++j;
    if (j < expr.size() && expr[j] == '}') {
      high = UINT64_MAX;  // "{n,}" — unbounded
    } else {
      high = 0;
      while (j < expr.size() && expr[j] >= '0' && expr[j] <= '9') {
        high = high * 10 + static_cast<std::uint64_t>(expr[j] - '0');
        if (high > 1000000) high = 1000000;
        ++j;
      }
    }
  }
  if (j >= expr.size() || expr[j] != '}') return std::nullopt;
  return std::make_pair(j + 1, high);
}

}  // namespace

std::optional<RegexRisk> assess_regex(std::string_view expression) {
  // Per open group: did its body contain a quantifier?
  std::vector<bool> group_has_quantifier;
  bool top_has_quantifier = false;
  // Set when the previous token was a ')' closing a group whose body
  // held a quantifier — a quantifier here is the (a+)+ shape.
  bool closed_quantified_group = false;
  std::optional<RegexRisk> large_repeat;

  const auto note_quantifier = [&]() {
    if (group_has_quantifier.empty()) {
      top_has_quantifier = true;
    } else {
      group_has_quantifier.back() = true;
    }
  };

  for (std::size_t i = 0; i < expression.size();) {
    const char c = expression[i];
    if (c == '\\') {
      i += 2;
      closed_quantified_group = false;
      continue;
    }
    if (c == '[') {  // character class: skip to the closing bracket
      ++i;
      if (i < expression.size() && expression[i] == '^') ++i;
      if (i < expression.size() && expression[i] == ']') ++i;
      while (i < expression.size() && expression[i] != ']') {
        i += expression[i] == '\\' ? std::size_t{2} : std::size_t{1};
      }
      ++i;
      closed_quantified_group = false;
      continue;
    }
    if (c == '(') {
      group_has_quantifier.push_back(false);
      ++i;
      closed_quantified_group = false;
      continue;
    }
    if (c == ')') {
      bool inner = false;
      if (!group_has_quantifier.empty()) {
        inner = group_has_quantifier.back();
        group_has_quantifier.pop_back();
        // A quantified subgroup makes the enclosing body quantified too.
        if (inner) note_quantifier();
      }
      closed_quantified_group = inner;
      ++i;
      continue;
    }
    if (is_quantifier_start(c)) {
      std::uint64_t span = 1;
      std::size_t next = i + 1;
      bool is_quantifier = true;
      if (c == '{') {
        if (const auto repeat = parse_repeat(expression, i)) {
          next = repeat->first;
          span = repeat->second;
        } else {
          is_quantifier = false;  // literal '{'
        }
      } else if (c == '*' || c == '+') {
        span = UINT64_MAX;
      }
      if (is_quantifier) {
        // '?' (and "{0,1}"/"{1}") never repeats the group, so a
        // quantified body under it cannot blow up.
        if (closed_quantified_group && c != '?' && span > 1) {
          return RegexRisk{
              RegexRisk::Kind::kNestedQuantifier,
              "quantified group contains its own quantifier (star height"
              " >= 2): catastrophic backtracking on non-matching URLs"};
        }
        if (span != UINT64_MAX && span > kRepetitionBudget && !large_repeat) {
          large_repeat = RegexRisk{
              RegexRisk::Kind::kLargeRepetition,
              "counted repetition spans " + std::to_string(span) +
                  " iterations (budget " + std::to_string(kRepetitionBudget) +
                  "): slow compile and match"};
        }
        note_quantifier();
        i = next;
        closed_quantified_group = false;
        continue;
      }
    }
    closed_quantified_group = false;
    ++i;
  }
  return large_repeat;
}

}  // namespace adscope::lint
