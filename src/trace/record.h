// Header-level trace records — the paper's measurement surface.
//
// The monitoring infrastructure (§5) captures TCP/HTTP *headers* only:
// no payload is ever available. Two record kinds cover everything the
// methodology consumes:
//  * HttpTransaction — one HTTP request/response pair on port 80 with the
//    fields Bro extracts (Host, URI, Referer, User-Agent, Content-Type,
//    Content-Length, Location, status) plus the TCP- and HTTP-handshake
//    timings used by the RTB analysis (§8.2).
//  * TlsFlow — an opaque port-443 flow (endpoints, byte count). HTTPS
//    payloads and URLs are invisible; only the server IP can be matched
//    against the Adblock Plus update servers (§3.2).
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "netdb/ipv4.h"

namespace adscope::trace {

struct TraceMeta {
  std::string name;              // "RBN-1", "RBN-2", "crawl-vanilla", ...
  std::uint64_t start_unix_s = 0;
  std::uint64_t duration_s = 0;
  std::uint32_t subscribers = 0;  // DSL lines behind the vantage point
  std::uint32_t uplink_gbps = 0;

  /// Advisory record counts (format v3+). FileTraceWriter back-patches
  /// them into the header on close(); 0 means "unknown" (v2 files,
  /// interrupted writers, socket streams that cannot seek). Consumers
  /// use them to reserve() — never as a truth about the stream.
  std::uint64_t http_count_hint = 0;
  std::uint64_t tls_count_hint = 0;
};

struct HttpTransaction {
  std::uint64_t timestamp_ms = 0;  // request time relative to trace start
  netdb::IpV4 client_ip = 0;
  netdb::IpV4 server_ip = 0;
  std::uint16_t server_port = 80;
  std::uint16_t status_code = 200;

  std::string host;          // request Host header
  std::string uri;           // request target (/path?query)
  std::string referer;       // request Referer (empty when absent)
  std::string user_agent;    // request User-Agent
  std::string content_type;  // response Content-Type (empty when absent)
  std::string location;      // response Location (redirects; empty o/w)
  std::uint64_t content_length = 0;

  // Timing observed at the aggregation-network monitor.
  std::uint32_t tcp_handshake_us = 0;   // SYN-ACK minus SYN
  std::uint32_t http_handshake_us = 0;  // first response minus first request

  /// Response body, normally EMPTY: the paper's monitor never captures
  /// payloads (§5 privacy). Populated only by simulators running in the
  /// §10 "payload mode" extension.
  std::string payload;
};

struct TlsFlow {
  std::uint64_t timestamp_ms = 0;
  netdb::IpV4 client_ip = 0;
  netdb::IpV4 server_ip = 0;
  std::uint16_t server_port = 443;
  std::uint64_t bytes = 0;
};

/// Push-style consumer of a trace stream. Records arrive in timestamp
/// order within each kind.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_meta(const TraceMeta& meta) = 0;
  virtual void on_http(const HttpTransaction& txn) = 0;
  virtual void on_tls(const TlsFlow& flow) = 0;
  /// Move-accepting variant; sinks that store records (MemoryTrace)
  /// override it to steal the strings. Defaults to the copying path, so
  /// existing sinks are unaffected. (A distinct name, not an overload:
  /// an overloaded virtual would be hidden in every subclass that
  /// overrides only the const& form.)
  virtual void on_http_owned(HttpTransaction&& txn) { on_http(txn); }
};

/// In-memory trace; both a sink and a replayable source. Useful for tests
/// and for pipelines that skip the file system.
class MemoryTrace final : public TraceSink {
 public:
  void on_meta(const TraceMeta& meta) override {
    meta_ = meta;
    reserve(meta.http_count_hint, meta.tls_count_hint);
  }
  void on_http(const HttpTransaction& txn) override { http_.push_back(txn); }
  void on_http_owned(HttpTransaction&& txn) override {
    http_.push_back(std::move(txn));
  }
  void on_tls(const TlsFlow& flow) override { tls_.push_back(flow); }

  /// Pre-sizes the record vectors (e.g. from the header's count hints).
  /// Hints are advisory, so absurd values are clamped rather than
  /// trusted with gigabytes of reservation.
  void reserve(std::uint64_t http_count, std::uint64_t tls_count) {
    constexpr std::uint64_t kMaxReserve = 1u << 24;
    http_.reserve(static_cast<std::size_t>(std::min(http_count, kMaxReserve)));
    tls_.reserve(static_cast<std::size_t>(std::min(tls_count, kMaxReserve)));
  }

  void replay(TraceSink& sink) const {
    sink.on_meta(meta_);
    for (const auto& txn : http_) sink.on_http(txn);
    for (const auto& flow : tls_) sink.on_tls(flow);
  }

  const TraceMeta& meta() const noexcept { return meta_; }
  const std::vector<HttpTransaction>& http() const noexcept { return http_; }
  const std::vector<TlsFlow>& tls() const noexcept { return tls_; }
  /// In-place access for re-ordering passes (e.g. time-sorted replay).
  std::vector<HttpTransaction>& http_mutable() noexcept { return http_; }
  std::vector<TlsFlow>& tls_mutable() noexcept { return tls_; }
  void clear() {
    http_.clear();
    tls_.clear();
  }

 private:
  TraceMeta meta_;
  std::vector<HttpTransaction> http_;
  std::vector<TlsFlow> tls_;
};

/// Sink that forwards to several downstream sinks (e.g. write a file and
/// feed the analyzer in one pass).
class TeeSink final : public TraceSink {
 public:
  void add(TraceSink& sink) { sinks_.push_back(&sink); }
  void on_meta(const TraceMeta& meta) override {
    for (auto* s : sinks_) s->on_meta(meta);
  }
  void on_http(const HttpTransaction& txn) override {
    for (auto* s : sinks_) s->on_http(txn);
  }
  void on_tls(const TlsFlow& flow) override {
    for (auto* s : sinks_) s->on_tls(flow);
  }

 private:
  std::vector<TraceSink*> sinks_;
};

}  // namespace adscope::trace
