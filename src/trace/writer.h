// Binary trace writer.
//
// Format (".adst" — adscope trace):
//   magic "ADST" + version varint + meta block,
//   then a stream of tagged records. Repetitive strings (hosts, UAs,
//   content types) go through an incremental dictionary: the first
//   occurrence is emitted inline and assigned the next id, later
//   occurrences reference the id — typically a 5-10x size reduction on
//   RBN-scale traces. Per-request strings (URI, Referer, Location) are
//   stored inline.
//
// The same byte stream doubles as the live wire protocol (docs/FORMAT.md):
// TraceEncoder emits it onto any std::ostream — a file, a socket-backed
// buffer, a string — and FileTraceWriter is the file-backed wrapper.
// The incremental counterpart is trace::StreamDecoder (stream.h).
#pragma once

#include <fstream>
#include <ostream>
#include <string>
#include <unordered_map>

#include "trace/record.h"

namespace adscope::trace {

inline constexpr char kTraceMagic[4] = {'A', 'D', 'S', 'T'};
/// v3 appended two fixed-width record-count hints to the meta block
/// (back-patched by FileTraceWriter on close); readers accept v2 too.
inline constexpr std::uint64_t kTraceVersion = 3;
inline constexpr std::uint64_t kTraceVersionNoHints = 2;

enum class RecordTag : std::uint8_t {
  kEnd = 0,
  kHttp = 1,
  kTls = 2,
};

/// Encodes the .adst byte stream onto a caller-supplied std::ostream.
/// The header (magic + version) is written by the constructor, the meta
/// block by on_meta(), the end marker by finish(). The dictionary state
/// lives here, so the target stream may be swapped-out/drained between
/// records (the replay client sends each record's bytes as they close).
class TraceEncoder final : public TraceSink {
 public:
  explicit TraceEncoder(std::ostream& out);

  TraceEncoder(const TraceEncoder&) = delete;
  TraceEncoder& operator=(const TraceEncoder&) = delete;

  void on_meta(const TraceMeta& meta) override;
  void on_http(const HttpTransaction& txn) override;
  void on_tls(const TlsFlow& flow) override;

  /// Writes the end marker. Idempotent.
  void finish();

  std::uint64_t records_written() const noexcept { return records_; }
  std::uint64_t http_written() const noexcept { return http_records_; }
  std::uint64_t tls_written() const noexcept { return tls_records_; }

  /// Stream offset of the header's fixed-width record-count hint slot
  /// (16 bytes: http then tls, both u64 LE), or -1 before on_meta().
  /// Seekable targets (FileTraceWriter) back-patch the real counts
  /// here; socket streams leave the encoded hints as given.
  std::streampos hint_slot() const noexcept { return hint_slot_; }

 private:
  /// Dictionary encode: id 0 = empty string, ids >= 1 from the table.
  void write_dict_string(const std::string& value);

  std::ostream& out_;
  std::unordered_map<std::string, std::uint64_t> dictionary_;
  std::uint64_t next_id_ = 1;
  std::uint64_t records_ = 0;
  std::uint64_t http_records_ = 0;
  std::uint64_t tls_records_ = 0;
  std::streampos hint_slot_ = -1;
  bool meta_written_ = false;
  bool finished_ = false;
};

class FileTraceWriter final : public TraceSink {
 public:
  /// Opens `path` for writing; throws std::runtime_error on failure.
  explicit FileTraceWriter(const std::string& path);
  ~FileTraceWriter() override;

  FileTraceWriter(const FileTraceWriter&) = delete;
  FileTraceWriter& operator=(const FileTraceWriter&) = delete;

  void on_meta(const TraceMeta& meta) override { encoder_.on_meta(meta); }
  void on_http(const HttpTransaction& txn) override { encoder_.on_http(txn); }
  void on_tls(const TlsFlow& flow) override { encoder_.on_tls(flow); }

  /// Writes the end marker and flushes. Called by the destructor too.
  void close();

  std::uint64_t records_written() const noexcept {
    return encoder_.records_written();
  }

 private:
  std::ofstream out_;
  TraceEncoder encoder_;
  bool closed_ = false;
};

}  // namespace adscope::trace
