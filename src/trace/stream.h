// Incremental decoder for the .adst byte stream (the live wire protocol).
//
// FileTraceReader wants a seekable file; the streaming daemon gets the
// same bytes in arbitrary-sized chunks off a socket. StreamDecoder
// buffers the unconsumed tail and delivers every *complete* record to a
// sink as soon as its last byte arrives — a record split across chunks
// is parsed tentatively and rolled back (including any dictionary
// entries it defined) until the rest shows up, so feed() never blocks
// and never re-delivers.
//
// Decode is zero-copy: records are parsed into HttpTransactionView
// structs whose string fields point into the receive buffer, and
// dictionary-encoded fields resolve to interned entries. The only
// copy-out is the dictionary itself — an entry's bytes leave the buffer
// when its defining record commits, because the buffer is compacted
// between feeds while dictionary entries must survive the whole stream.
// Consumers choose the delivery surface:
//   * TraceSink (per record): each view is materialized into a reused
//     scratch record — steady-state, no heap allocation per record.
//   * TraceBatchSink (batched): views are handed out in order-preserving
//     batches, flushed before the buffer is compacted; views are valid
//     only until the callback returns (trace/view.h lifetime contract).
//
// Malformed input (bad magic, unknown tag, over-long string) throws
// TraceFormatError; the connection handler drops the peer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include "trace/io.h"
#include "trace/record.h"
#include "trace/view.h"

namespace adscope::trace {

class StreamDecoder {
 public:
  /// Strings longer than this are treated as stream corruption rather
  /// than buffered forever (no legitimate header field comes close).
  static constexpr std::uint64_t kMaxStringBytes = 1 << 24;
  /// Views buffered before a batch sink gets a callback (also flushed
  /// on kind switches and before the buffer is compacted).
  static constexpr std::size_t kBatchRecords = 256;

  explicit StreamDecoder(TraceSink& sink) : sink_(&sink) {}
  explicit StreamDecoder(TraceBatchSink& sink) : batch_sink_(&sink) {}

  /// Buffers `data` and delivers every record that is now complete.
  /// Returns the number of records delivered (meta counts as one).
  /// Throws TraceFormatError on malformed input; the decoder is then
  /// poisoned and every later feed() rethrows.
  std::size_t feed(std::string_view data);

  /// True once the end marker was decoded; later bytes are an error.
  bool finished() const noexcept { return state_ == State::kDone; }

  /// True until the full header (magic + version + meta) was decoded.
  bool awaiting_header() const noexcept { return state_ != State::kRecords &&
                                                 state_ != State::kDone; }

  std::uint64_t records_decoded() const noexcept { return records_; }
  std::size_t buffered_bytes() const noexcept { return buf_.size() - pos_; }

 private:
  enum class State { kHeader, kRecords, kDone, kPoisoned };

  /// Attempts to decode one item from buf_ at pos_. Returns false when
  /// the buffer holds only a prefix (nothing consumed, dictionary
  /// untouched); true when an item was delivered/batched and consumed.
  bool try_decode_one();
  bool decode_header();
  bool decode_http();
  bool decode_tls();

  void deliver_meta(const TraceMeta& meta);
  void flush_http();
  void flush_tls();

  TraceSink* sink_ = nullptr;
  TraceBatchSink* batch_sink_ = nullptr;
  State state_ = State::kHeader;
  std::string buf_;
  std::size_t pos_ = 0;
  // Interned dictionary; a deque so committed entries keep stable
  // addresses while later definitions append (string_views into them
  // stay valid for the stream's lifetime). id 1 = index 0.
  std::deque<std::string> dictionary_;
  HttpTransaction scratch_;  // reused for per-record materialization
  std::vector<HttpTransactionView> http_batch_;
  std::vector<TlsFlowView> tls_batch_;
  std::uint64_t records_ = 0;
};

}  // namespace adscope::trace
