// Incremental decoder for the .adst byte stream (the live wire protocol).
//
// FileTraceReader wants a seekable file; the streaming daemon gets the
// same bytes in arbitrary-sized chunks off a socket. StreamDecoder
// buffers the unconsumed tail and delivers every *complete* record to a
// TraceSink as soon as its last byte arrives — a record split across
// chunks is parsed tentatively and rolled back (including any dictionary
// entries it defined) until the rest shows up, so feed() never blocks
// and never re-delivers.
//
// Malformed input (bad magic, unknown tag, over-long string) throws
// TraceFormatError; the connection handler drops the peer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "trace/io.h"
#include "trace/record.h"

namespace adscope::trace {

class StreamDecoder {
 public:
  /// Strings longer than this are treated as stream corruption rather
  /// than buffered forever (no legitimate header field comes close).
  static constexpr std::uint64_t kMaxStringBytes = 1 << 24;

  explicit StreamDecoder(TraceSink& sink) : sink_(&sink) {}

  /// Buffers `data` and delivers every record that is now complete.
  /// Returns the number of records delivered (meta counts as one).
  /// Throws TraceFormatError on malformed input; the decoder is then
  /// poisoned and every later feed() rethrows.
  std::size_t feed(std::string_view data);

  /// True once the end marker was decoded; later bytes are an error.
  bool finished() const noexcept { return state_ == State::kDone; }

  /// True until the full header (magic + version + meta) was decoded.
  bool awaiting_header() const noexcept { return state_ != State::kRecords &&
                                                 state_ != State::kDone; }

  std::uint64_t records_decoded() const noexcept { return records_; }
  std::size_t buffered_bytes() const noexcept { return buf_.size() - pos_; }

 private:
  enum class State { kHeader, kRecords, kDone, kPoisoned };

  /// Attempts to decode one item from buf_ at pos_. Returns false when
  /// the buffer holds only a prefix (nothing consumed, dictionary
  /// untouched); true when an item was delivered and consumed.
  bool try_decode_one();
  bool decode_header();
  bool decode_http();
  bool decode_tls();

  TraceSink* sink_;
  State state_ = State::kHeader;
  std::string buf_;
  std::size_t pos_ = 0;
  std::vector<std::string> dictionary_;  // id 1 = index 0
  std::uint64_t records_ = 0;
};

}  // namespace adscope::trace
