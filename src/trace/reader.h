// Binary trace reader — replays a ".adst" file into a TraceSink.
#pragma once

#include <fstream>
#include <string>
#include <vector>

#include "trace/record.h"

namespace adscope::trace {

class FileTraceReader {
 public:
  /// Opens and validates the header; throws TraceFormatError /
  /// std::runtime_error on failure.
  explicit FileTraceReader(const std::string& path);

  const TraceMeta& meta() const noexcept { return meta_; }

  /// Replays every record into `sink` (on_meta first). Returns the number
  /// of records delivered.
  std::uint64_t replay(TraceSink& sink);

 private:
  std::string lookup(std::uint64_t id);

  std::ifstream in_;
  TraceMeta meta_;
  std::vector<std::string> dictionary_;  // id 1 = index 0
};

}  // namespace adscope::trace
