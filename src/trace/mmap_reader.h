// Zero-copy ".adst" reader over a memory-mapped file.
//
// Where FileTraceReader pulls the stream byte-by-byte through an
// std::ifstream and builds ~7 heap strings per HTTP record, this reader
// maps the whole file once and decodes records into
// HttpTransactionView / TlsFlowView structs whose string fields point
// straight into the mapping. Dictionary-encoded fields (host, UA,
// content type) resolve through an interned table of string_views into
// the mapping — a dictionary hit costs an index, never a copy — so the
// warm decode loop performs zero heap allocations per record (asserted
// by the operator-new hook test in tests/test_trace_mmap.cpp).
//
// Offsets are 64-bit throughout: multi-GiB traces map and decode the
// same as small ones (the >2 GiB sparse-trace CI case exercises this).
//
// Lifetime: views are valid only until the sink callback returns (see
// trace/view.h); the mapping itself lives for the reader's lifetime and
// is unmapped by the destructor. Replay methods are restartable — each
// call decodes the record stream from the beginning.
//
// Not every input can be mapped: sockets, pipes and other non-seekable
// streams (the `adscoped` ingest path) must keep using StreamDecoder,
// and callers should consult supported() to fall back to
// FileTraceReader for exotic file systems. Construction throws
// TraceFormatError on malformed headers and std::runtime_error when the
// file cannot be opened or mapped.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "trace/record.h"
#include "trace/view.h"
#include "trace/writer.h"

namespace adscope::trace {

class MmapTraceReader {
 public:
  struct Options {
    /// Records per batch handed to TraceBatchSink (order-preserving:
    /// a batch never spans a kind switch).
    std::size_t batch_records = 512;
    /// madvise(MADV_WILLNEED): start readahead for the whole mapping at
    /// construction instead of on first fault per window.
    bool madv_willneed = true;
    /// madvise(MADV_HUGEPAGE): back the mapping with transparent huge
    /// pages where the kernel can — 512x fewer TLB entries for the
    /// sequential decode walk. Ignored (recorded as off in
    /// advice_stats()) on kernels without THP support.
    bool madv_hugepage = true;
    /// __builtin_prefetch a few cache lines ahead of the decode cursor.
    bool prefetch = true;
  };

  /// Which pieces of mapping advice actually took effect (each ::madvise
  /// return is checked; a false here means the kernel refused or the
  /// option was disabled, never silent failure).
  struct AdviceStats {
    bool sequential = false;
    bool willneed = false;
    bool hugepage = false;
  };

  explicit MmapTraceReader(const std::string& path)
      : MmapTraceReader(path, Options{}) {}
  MmapTraceReader(const std::string& path, Options options);
  ~MmapTraceReader();

  MmapTraceReader(const MmapTraceReader&) = delete;
  MmapTraceReader& operator=(const MmapTraceReader&) = delete;

  /// True when `path` names a mappable input (a regular file). The
  /// streaming readers remain the fallback for everything else.
  static bool supported(const std::string& path) noexcept;

  const TraceMeta& meta() const noexcept { return meta_; }
  std::uint64_t file_size() const noexcept { return size_; }
  const AdviceStats& advice_stats() const noexcept { return advice_; }

  /// Replays every record into a per-record sink via the materializing
  /// adapter. Returns the number of records delivered (meta excluded),
  /// matching FileTraceReader::replay.
  std::uint64_t replay(TraceSink& sink);

  /// Zero-copy batched replay. Returns the number of records delivered
  /// (meta excluded).
  std::uint64_t replay_batches(TraceBatchSink& sink);

  /// One record's raw wire bytes (tag included), plus the fields replay
  /// pacing needs. `bytes` stays valid for the reader's lifetime.
  struct RawRecord {
    RecordTag tag = RecordTag::kEnd;
    std::uint64_t timestamp_ms = 0;
    std::string_view bytes;
  };

  class RawSink {
   public:
    virtual ~RawSink() = default;
    virtual void on_raw(const RawRecord& record) = 0;
  };

  /// Walks the record stream delivering each record's raw byte span
  /// without materializing anything (the dictionary is still tracked,
  /// so spans carry their inline definitions exactly as written —
  /// concatenating header_bytes() and every span reproduces a valid
  /// stream). Feeds `adscope replay`'s re-encode-free pacing path.
  std::uint64_t replay_raw(RawSink& sink);

  /// The encoded header (magic, version, meta block) — what a raw
  /// replay must send before the record spans.
  std::string_view header_bytes() const noexcept {
    return {map_, records_begin_};
  }

 private:
  std::uint64_t run(TraceBatchSink* sink, RawSink* raw);
  void decode_header();

  const char* map_ = nullptr;
  std::size_t size_ = 0;
  std::size_t records_begin_ = 0;
  TraceMeta meta_;
  Options options_;
  AdviceStats advice_;

  // Decode state reused across replays (capacity persists, so a warm
  // replay allocates nothing).
  std::vector<std::string_view> dictionary_;  // id 1 = index 0
  std::vector<HttpTransactionView> http_batch_;
  std::vector<TlsFlowView> tls_batch_;
};

}  // namespace adscope::trace
