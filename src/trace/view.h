// Zero-copy record views and the batch-oriented sink surface.
//
// The mmap'd reader (mmap_reader.h) and the live StreamDecoder decode
// records into *views*: structs whose string fields are
// std::string_view slices of the mapped file / decode buffer and of the
// reader's interned dictionary. No per-record heap traffic happens on
// the decode side; consumers that need ownership materialize() at the
// last possible boundary (e.g. when a record crosses a thread).
//
// Lifetime contract (asserted in tests/test_trace_mmap.cpp): a view is
// valid only until the sink callback it was delivered through returns.
// Readers may remap, compact or unmap the underlying bytes afterwards —
// a sink that stores views instead of materialized records observes
// dangling memory (ASan-visible). Store HttpTransaction copies, never
// HttpTransactionView.
#pragma once

#include <span>
#include <string_view>

#include "trace/record.h"

namespace adscope::trace {

/// HttpTransaction with borrowed string fields. Field order and
/// semantics match trace::HttpTransaction exactly.
struct HttpTransactionView {
  std::uint64_t timestamp_ms = 0;
  netdb::IpV4 client_ip = 0;
  netdb::IpV4 server_ip = 0;
  std::uint16_t server_port = 80;
  std::uint16_t status_code = 200;

  std::string_view host;
  std::string_view uri;
  std::string_view referer;
  std::string_view user_agent;
  std::string_view content_type;
  std::string_view location;
  std::uint64_t content_length = 0;

  std::uint32_t tcp_handshake_us = 0;
  std::uint32_t http_handshake_us = 0;

  std::string_view payload;
};

/// TlsFlow carries no string fields, so the owning record is its own
/// view; the alias keeps batch signatures symmetric.
using TlsFlowView = TlsFlow;

/// Copies a view into an owning record, reusing `out`'s string
/// capacity (assign, not construct) — the warm path does no heap work
/// once the scratch record's capacities have grown to fit.
inline void materialize(const HttpTransactionView& view,
                        HttpTransaction& out) {
  out.timestamp_ms = view.timestamp_ms;
  out.client_ip = view.client_ip;
  out.server_ip = view.server_ip;
  out.server_port = view.server_port;
  out.status_code = view.status_code;
  out.host.assign(view.host);
  out.uri.assign(view.uri);
  out.referer.assign(view.referer);
  out.user_agent.assign(view.user_agent);
  out.content_type.assign(view.content_type);
  out.location.assign(view.location);
  out.content_length = view.content_length;
  out.tcp_handshake_us = view.tcp_handshake_us;
  out.http_handshake_us = view.http_handshake_us;
  out.payload.assign(view.payload);
}

inline HttpTransaction materialize(const HttpTransactionView& view) {
  HttpTransaction txn;
  materialize(view, txn);
  return txn;
}

/// Borrows every string field of an owning record (the record must
/// outlive the view).
inline HttpTransactionView as_view(const HttpTransaction& txn) {
  HttpTransactionView view;
  view.timestamp_ms = txn.timestamp_ms;
  view.client_ip = txn.client_ip;
  view.server_ip = txn.server_ip;
  view.server_port = txn.server_port;
  view.status_code = txn.status_code;
  view.host = txn.host;
  view.uri = txn.uri;
  view.referer = txn.referer;
  view.user_agent = txn.user_agent;
  view.content_type = txn.content_type;
  view.location = txn.location;
  view.content_length = txn.content_length;
  view.tcp_handshake_us = txn.tcp_handshake_us;
  view.http_handshake_us = txn.http_handshake_us;
  view.payload = txn.payload;
  return view;
}

/// Batch-oriented consumer of a decoded trace. Batches preserve global
/// record order: a reader flushes the pending batch of one kind before
/// delivering a record of the other, so concatenating the batches in
/// callback order reproduces the exact file order. Views inside a batch
/// are valid only until the callback returns (see file comment).
class TraceBatchSink {
 public:
  virtual ~TraceBatchSink() = default;
  virtual void on_meta(const TraceMeta& meta) = 0;
  virtual void on_http_batch(std::span<const HttpTransactionView> batch) = 0;
  virtual void on_tls_batch(std::span<const TlsFlowView> batch) = 0;
};

/// Default adapter preserving the per-record TraceSink contract: each
/// view is materialized into a reused scratch record and forwarded.
/// Steady-state cost is a few memcpys per record — the scratch strings'
/// capacities stop growing once they have seen the largest field.
class BatchToRecordAdapter final : public TraceBatchSink {
 public:
  explicit BatchToRecordAdapter(TraceSink& sink) : sink_(&sink) {}

  void on_meta(const TraceMeta& meta) override { sink_->on_meta(meta); }
  void on_http_batch(std::span<const HttpTransactionView> batch) override {
    for (const auto& view : batch) {
      materialize(view, scratch_);
      sink_->on_http(scratch_);
    }
  }
  void on_tls_batch(std::span<const TlsFlowView> batch) override {
    for (const auto& flow : batch) sink_->on_tls(flow);
  }

 private:
  TraceSink* sink_;
  HttpTransaction scratch_;
};

}  // namespace adscope::trace
