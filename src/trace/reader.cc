#include "trace/reader.h"

#include <array>
#include <stdexcept>

#include "trace/io.h"
#include "trace/writer.h"

namespace adscope::trace {

namespace {

/// Mid-record/header varint: clean EOF here is truncation, not a valid
/// stream boundary — surface it as a structured format error instead of
/// silently keeping stale field values.
std::uint64_t require_varint(std::istream& in, const char* what) {
  std::uint64_t value = 0;
  if (!read_varint(in, value)) {
    throw TraceFormatError(std::string("truncated trace: missing ") + what);
  }
  return value;
}

std::uint64_t read_fixed_u64le(std::istream& in, const char* what) {
  std::array<char, 8> bytes{};
  in.read(bytes.data(), bytes.size());
  if (in.gcount() != static_cast<std::streamsize>(bytes.size())) {
    throw TraceFormatError(std::string("truncated trace: missing ") + what);
  }
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(bytes[
                 static_cast<std::size_t>(i)]))
             << (8 * i);
  }
  return value;
}

}  // namespace

FileTraceReader::FileTraceReader(const std::string& path)
    : in_(path, std::ios::binary) {
  if (!in_) throw std::runtime_error("cannot open trace file: " + path);
  std::array<char, 4> magic{};
  in_.read(magic.data(), magic.size());
  if (in_.gcount() != 4 || std::string_view(magic.data(), 4) !=
                               std::string_view(kTraceMagic, 4)) {
    throw TraceFormatError("bad trace magic");
  }
  const auto version = require_varint(in_, "version");
  if (version != kTraceVersion && version != kTraceVersionNoHints) {
    throw TraceFormatError("unsupported trace version");
  }
  meta_.name = read_string(in_);
  meta_.start_unix_s = require_varint(in_, "meta start");
  meta_.duration_s = require_varint(in_, "meta duration");
  meta_.subscribers =
      static_cast<std::uint32_t>(require_varint(in_, "meta subscribers"));
  meta_.uplink_gbps =
      static_cast<std::uint32_t>(require_varint(in_, "meta uplink"));
  if (version >= kTraceVersion) {
    meta_.http_count_hint = read_fixed_u64le(in_, "meta http count hint");
    meta_.tls_count_hint = read_fixed_u64le(in_, "meta tls count hint");
  }
}

std::string FileTraceReader::lookup(std::uint64_t id) {
  if (id == 0) return {};
  if (id == dictionary_.size() + 1) {
    dictionary_.push_back(read_string(in_));
    return dictionary_.back();
  }
  if (id > dictionary_.size()) {
    throw TraceFormatError("dictionary id " + std::to_string(id) +
                           " out of range (" +
                           std::to_string(dictionary_.size()) +
                           " entries defined)");
  }
  return dictionary_[static_cast<std::size_t>(id) - 1];
}

std::uint64_t FileTraceReader::replay(TraceSink& sink) {
  sink.on_meta(meta_);
  std::uint64_t records = 0;
  std::uint64_t tag = 0;
  // The tag read is the one spot where clean EOF is legal (a missing
  // end marker from an interrupted writer is tolerated but reported via
  // the shortfall in the return value); everything inside a record goes
  // through require_varint / read_string, which throw on truncation.
  while (read_varint(in_, tag)) {
    switch (static_cast<RecordTag>(tag)) {
      case RecordTag::kEnd:
        return records;
      case RecordTag::kHttp: {
        HttpTransaction txn;
        txn.timestamp_ms = require_varint(in_, "http timestamp");
        txn.client_ip =
            static_cast<netdb::IpV4>(require_varint(in_, "http client_ip"));
        txn.server_ip =
            static_cast<netdb::IpV4>(require_varint(in_, "http server_ip"));
        txn.server_port =
            static_cast<std::uint16_t>(require_varint(in_, "http port"));
        txn.status_code =
            static_cast<std::uint16_t>(require_varint(in_, "http status"));
        txn.host = lookup(require_varint(in_, "http host id"));
        txn.uri = read_string(in_);
        txn.referer = read_string(in_);
        txn.user_agent = lookup(require_varint(in_, "http user_agent id"));
        txn.content_type =
            lookup(require_varint(in_, "http content_type id"));
        txn.location = read_string(in_);
        txn.content_length = require_varint(in_, "http content_length");
        txn.tcp_handshake_us = static_cast<std::uint32_t>(
            require_varint(in_, "http tcp_handshake"));
        txn.http_handshake_us = static_cast<std::uint32_t>(
            require_varint(in_, "http http_handshake"));
        txn.payload = read_string(in_);
        sink.on_http_owned(std::move(txn));
        ++records;
        break;
      }
      case RecordTag::kTls: {
        TlsFlow flow;
        flow.timestamp_ms = require_varint(in_, "tls timestamp");
        flow.client_ip =
            static_cast<netdb::IpV4>(require_varint(in_, "tls client_ip"));
        flow.server_ip =
            static_cast<netdb::IpV4>(require_varint(in_, "tls server_ip"));
        flow.server_port =
            static_cast<std::uint16_t>(require_varint(in_, "tls port"));
        flow.bytes = require_varint(in_, "tls bytes");
        sink.on_tls(flow);
        ++records;
        break;
      }
      default:
        throw TraceFormatError("unknown record tag " + std::to_string(tag));
    }
  }
  // Missing end marker: tolerate (e.g. interrupted writer) but report.
  return records;
}

}  // namespace adscope::trace
