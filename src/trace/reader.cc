#include "trace/reader.h"

#include <array>
#include <stdexcept>

#include "trace/io.h"
#include "trace/writer.h"

namespace adscope::trace {

FileTraceReader::FileTraceReader(const std::string& path)
    : in_(path, std::ios::binary) {
  if (!in_) throw std::runtime_error("cannot open trace file: " + path);
  std::array<char, 4> magic{};
  in_.read(magic.data(), magic.size());
  if (in_.gcount() != 4 || std::string_view(magic.data(), 4) !=
                               std::string_view(kTraceMagic, 4)) {
    throw TraceFormatError("bad trace magic");
  }
  std::uint64_t version = 0;
  if (!read_varint(in_, version) || version != kTraceVersion) {
    throw TraceFormatError("unsupported trace version");
  }
  meta_.name = read_string(in_);
  std::uint64_t value = 0;
  read_varint(in_, value);
  meta_.start_unix_s = value;
  read_varint(in_, value);
  meta_.duration_s = value;
  read_varint(in_, value);
  meta_.subscribers = static_cast<std::uint32_t>(value);
  read_varint(in_, value);
  meta_.uplink_gbps = static_cast<std::uint32_t>(value);
}

std::string FileTraceReader::lookup(std::uint64_t id) {
  if (id == 0) return {};
  if (id == dictionary_.size() + 1) {
    dictionary_.push_back(read_string(in_));
    return dictionary_.back();
  }
  if (id > dictionary_.size()) throw TraceFormatError("dictionary gap");
  return dictionary_[id - 1];
}

std::uint64_t FileTraceReader::replay(TraceSink& sink) {
  sink.on_meta(meta_);
  std::uint64_t records = 0;
  std::uint64_t tag = 0;
  while (read_varint(in_, tag)) {
    switch (static_cast<RecordTag>(tag)) {
      case RecordTag::kEnd:
        return records;
      case RecordTag::kHttp: {
        HttpTransaction txn;
        std::uint64_t value = 0;
        read_varint(in_, txn.timestamp_ms);
        read_varint(in_, value);
        txn.client_ip = static_cast<netdb::IpV4>(value);
        read_varint(in_, value);
        txn.server_ip = static_cast<netdb::IpV4>(value);
        read_varint(in_, value);
        txn.server_port = static_cast<std::uint16_t>(value);
        read_varint(in_, value);
        txn.status_code = static_cast<std::uint16_t>(value);
        read_varint(in_, value);
        txn.host = lookup(value);
        txn.uri = read_string(in_);
        txn.referer = read_string(in_);
        read_varint(in_, value);
        txn.user_agent = lookup(value);
        read_varint(in_, value);
        txn.content_type = lookup(value);
        txn.location = read_string(in_);
        read_varint(in_, txn.content_length);
        read_varint(in_, value);
        txn.tcp_handshake_us = static_cast<std::uint32_t>(value);
        read_varint(in_, value);
        txn.http_handshake_us = static_cast<std::uint32_t>(value);
        txn.payload = read_string(in_);
        sink.on_http(txn);
        ++records;
        break;
      }
      case RecordTag::kTls: {
        TlsFlow flow;
        std::uint64_t value = 0;
        read_varint(in_, flow.timestamp_ms);
        read_varint(in_, value);
        flow.client_ip = static_cast<netdb::IpV4>(value);
        read_varint(in_, value);
        flow.server_ip = static_cast<netdb::IpV4>(value);
        read_varint(in_, value);
        flow.server_port = static_cast<std::uint16_t>(value);
        read_varint(in_, flow.bytes);
        sink.on_tls(flow);
        ++records;
        break;
      }
      default:
        throw TraceFormatError("unknown record tag");
    }
  }
  // Missing end marker: tolerate (e.g. interrupted writer) but report.
  return records;
}

}  // namespace adscope::trace
