#include "trace/io.h"

namespace adscope::trace {

void write_varint(std::ostream& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.put(static_cast<char>((value & 0x7F) | 0x80));
    value >>= 7;
  }
  out.put(static_cast<char>(value));
}

bool read_varint(std::istream& in, std::uint64_t& value) {
  value = 0;
  int shift = 0;
  for (;;) {
    const int byte = in.get();
    if (byte == std::istream::traits_type::eof()) {
      if (shift == 0) return false;  // clean EOF
      throw TraceFormatError("truncated varint");
    }
    value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return true;
    shift += 7;
    if (shift >= 64) throw TraceFormatError("varint overflow");
  }
}

void write_string(std::ostream& out, std::string_view value) {
  write_varint(out, value.size());
  out.write(value.data(), static_cast<std::streamsize>(value.size()));
}

void write_fixed_u64le(std::ostream& out, std::uint64_t value) {
  char bytes[8];
  for (int i = 0; i < 8; ++i) {
    bytes[i] = static_cast<char>((value >> (8 * i)) & 0xFF);
  }
  out.write(bytes, sizeof(bytes));
}

std::string read_string(std::istream& in) {
  std::uint64_t length = 0;
  if (!read_varint(in, length)) throw TraceFormatError("missing string");
  constexpr std::uint64_t kMaxString = 1 << 20;
  if (length > kMaxString) throw TraceFormatError("oversized string");
  std::string value(length, '\0');
  in.read(value.data(), static_cast<std::streamsize>(length));
  if (static_cast<std::uint64_t>(in.gcount()) != length) {
    throw TraceFormatError("truncated string");
  }
  return value;
}

}  // namespace adscope::trace
