#include "trace/writer.h"

#include <stdexcept>

#include "trace/io.h"

namespace adscope::trace {

TraceEncoder::TraceEncoder(std::ostream& out) : out_(out) {
  out_.write(kTraceMagic, sizeof(kTraceMagic));
  write_varint(out_, kTraceVersion);
}

void TraceEncoder::on_meta(const TraceMeta& meta) {
  if (meta_written_) throw std::logic_error("trace meta written twice");
  write_string(out_, meta.name);
  write_varint(out_, meta.start_unix_s);
  write_varint(out_, meta.duration_s);
  write_varint(out_, meta.subscribers);
  write_varint(out_, meta.uplink_gbps);
  // v3: fixed-width record-count hints. Fixed width so a seekable
  // writer can patch the real counts without shifting the stream.
  hint_slot_ = out_.tellp();
  write_fixed_u64le(out_, meta.http_count_hint);
  write_fixed_u64le(out_, meta.tls_count_hint);
  meta_written_ = true;
}

void TraceEncoder::write_dict_string(const std::string& value) {
  if (value.empty()) {
    write_varint(out_, 0);
    return;
  }
  const auto it = dictionary_.find(value);
  if (it != dictionary_.end()) {
    write_varint(out_, it->second);
    return;
  }
  dictionary_.emplace(value, next_id_);
  write_varint(out_, next_id_);
  write_string(out_, value);  // definition follows first use
  ++next_id_;
}

void TraceEncoder::on_http(const HttpTransaction& txn) {
  if (!meta_written_) throw std::logic_error("trace meta missing");
  write_varint(out_, static_cast<std::uint64_t>(RecordTag::kHttp));
  write_varint(out_, txn.timestamp_ms);
  write_varint(out_, txn.client_ip);
  write_varint(out_, txn.server_ip);
  write_varint(out_, txn.server_port);
  write_varint(out_, txn.status_code);
  write_dict_string(txn.host);
  write_string(out_, txn.uri);
  write_string(out_, txn.referer);
  write_dict_string(txn.user_agent);
  write_dict_string(txn.content_type);
  write_string(out_, txn.location);
  write_varint(out_, txn.content_length);
  write_varint(out_, txn.tcp_handshake_us);
  write_varint(out_, txn.http_handshake_us);
  write_string(out_, txn.payload);
  ++records_;
  ++http_records_;
}

void TraceEncoder::on_tls(const TlsFlow& flow) {
  if (!meta_written_) throw std::logic_error("trace meta missing");
  write_varint(out_, static_cast<std::uint64_t>(RecordTag::kTls));
  write_varint(out_, flow.timestamp_ms);
  write_varint(out_, flow.client_ip);
  write_varint(out_, flow.server_ip);
  write_varint(out_, flow.server_port);
  write_varint(out_, flow.bytes);
  ++records_;
  ++tls_records_;
}

void TraceEncoder::finish() {
  if (finished_) return;
  write_varint(out_, static_cast<std::uint64_t>(RecordTag::kEnd));
  finished_ = true;
}

FileTraceWriter::FileTraceWriter(const std::string& path)
    : out_([&path] {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        if (!out) throw std::runtime_error("cannot open trace file: " + path);
        return out;
      }()),
      encoder_(out_) {}

FileTraceWriter::~FileTraceWriter() { close(); }

void FileTraceWriter::close() {
  if (closed_ || !out_.is_open()) return;
  encoder_.finish();
  // Back-patch the header's record-count hints now that the totals are
  // known. Files are seekable, so this costs two small writes; readers
  // of an interrupted (never-closed) file simply see the 0 = unknown
  // hints the encoder wrote up front.
  if (encoder_.hint_slot() >= 0) {
    const auto end = out_.tellp();
    out_.seekp(encoder_.hint_slot());
    write_fixed_u64le(out_, encoder_.http_written());
    write_fixed_u64le(out_, encoder_.tls_written());
    out_.seekp(end);
  }
  out_.flush();
  out_.close();
  closed_ = true;
}

}  // namespace adscope::trace
