#include "trace/stream.h"

#include <cstring>

#include "trace/io.h"
#include "trace/writer.h"

namespace adscope::trace {

namespace {

/// Rollback-safe reader over the buffered bytes: every get_* consumes
/// from a local offset, so an incomplete record leaves the decoder's
/// real position untouched.
struct Cursor {
  const std::string& buf;
  std::size_t pos;

  bool varint(std::uint64_t& value) {
    value = 0;
    int shift = 0;
    while (pos < buf.size()) {
      const auto byte = static_cast<std::uint8_t>(buf[pos++]);
      if (shift >= 64) throw TraceFormatError("varint overflow");
      value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) return true;
      shift += 7;
    }
    return false;  // incomplete
  }

  /// Borrowing read: the view aliases the decode buffer, which stays
  /// put until the views have been flushed (feed() compacts only after
  /// delivery).
  bool sv(std::string_view& value) {
    const auto saved = pos;
    std::uint64_t length = 0;
    if (!varint(length)) return false;
    if (length > StreamDecoder::kMaxStringBytes) {
      throw TraceFormatError("string length exceeds stream limit");
    }
    if (buf.size() - pos < length) {
      pos = saved;
      return false;  // incomplete
    }
    value = std::string_view(buf).substr(pos, static_cast<std::size_t>(length));
    pos += static_cast<std::size_t>(length);
    return true;
  }

  /// Owning read — only the header's meta name and dictionary
  /// definitions copy out (they must outlive the buffer).
  bool str(std::string& value) {
    std::string_view view;
    if (!sv(view)) return false;
    value.assign(view);
    return true;
  }

  bool fixed_u64le(std::uint64_t& value) {
    if (buf.size() - pos < 8) return false;
    value = 0;
    for (int i = 0; i < 8; ++i) {
      value |= static_cast<std::uint64_t>(
                   static_cast<std::uint8_t>(buf[pos + static_cast<std::size_t>(i)]))
               << (8 * i);
    }
    pos += 8;
    return true;
  }
};

}  // namespace

std::size_t StreamDecoder::feed(std::string_view data) {
  if (state_ == State::kPoisoned) {
    throw TraceFormatError("decoder poisoned by earlier stream error");
  }
  if (!data.empty() && state_ == State::kDone) {
    state_ = State::kPoisoned;
    throw TraceFormatError("bytes after end-of-stream marker");
  }
  buf_.append(data.data(), data.size());
  std::size_t delivered = 0;
  try {
    while (try_decode_one()) ++delivered;
    // Pending view batches alias buf_; they must go out before the
    // consumed prefix can be reclaimed below.
    flush_http();
    flush_tls();
  } catch (...) {
    state_ = State::kPoisoned;
    throw;
  }
  // Reclaim the consumed prefix once it dominates the buffer.
  if (pos_ > 4096 && pos_ >= buf_.size() / 2) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  return delivered;
}

void StreamDecoder::deliver_meta(const TraceMeta& meta) {
  if (batch_sink_ != nullptr) {
    batch_sink_->on_meta(meta);
  } else {
    sink_->on_meta(meta);
  }
}

void StreamDecoder::flush_http() {
  if (batch_sink_ != nullptr && !http_batch_.empty()) {
    batch_sink_->on_http_batch(http_batch_);
    http_batch_.clear();
  }
}

void StreamDecoder::flush_tls() {
  if (batch_sink_ != nullptr && !tls_batch_.empty()) {
    batch_sink_->on_tls_batch(tls_batch_);
    tls_batch_.clear();
  }
}

bool StreamDecoder::decode_header() {
  Cursor cursor{buf_, pos_};
  if (buf_.size() - pos_ < sizeof(kTraceMagic)) return false;
  if (std::memcmp(buf_.data() + pos_, kTraceMagic, sizeof(kTraceMagic)) != 0) {
    throw TraceFormatError("bad trace magic");
  }
  cursor.pos += sizeof(kTraceMagic);
  std::uint64_t version = 0;
  if (!cursor.varint(version)) return false;
  if (version != kTraceVersion && version != kTraceVersionNoHints) {
    throw TraceFormatError("unsupported trace version");
  }
  TraceMeta meta;
  std::uint64_t value = 0;
  if (!cursor.str(meta.name)) return false;
  if (!cursor.varint(meta.start_unix_s)) return false;
  if (!cursor.varint(meta.duration_s)) return false;
  if (!cursor.varint(value)) return false;
  meta.subscribers = static_cast<std::uint32_t>(value);
  if (!cursor.varint(value)) return false;
  meta.uplink_gbps = static_cast<std::uint32_t>(value);
  if (version >= kTraceVersion) {
    if (!cursor.fixed_u64le(meta.http_count_hint)) return false;
    if (!cursor.fixed_u64le(meta.tls_count_hint)) return false;
  }
  pos_ = cursor.pos;
  state_ = State::kRecords;
  deliver_meta(meta);
  ++records_;
  return true;
}

bool StreamDecoder::decode_http() {
  Cursor cursor{buf_, pos_};
  std::uint64_t tag = 0;
  cursor.varint(tag);  // already known complete by caller
  HttpTransactionView view;
  std::uint64_t value = 0;
  // Dictionary definitions commit straight into the deque (stable
  // addresses, so the view can alias the entry); an incomplete record
  // pops them back off, which never moves the surviving entries.
  const std::size_t base = dictionary_.size();
  const auto rollback = [&]() -> bool {
    while (dictionary_.size() > base) dictionary_.pop_back();
    return false;
  };
  const auto dict = [&](std::uint64_t id, std::string_view& out) -> int {
    if (id == 0) {
      out = {};
      return 1;
    }
    const auto next = dictionary_.size() + 1;
    if (id == next) {
      dictionary_.emplace_back();
      if (!cursor.str(dictionary_.back())) {
        dictionary_.pop_back();
        return 0;
      }
      out = dictionary_.back();
      return 1;
    }
    if (id > next) throw TraceFormatError("dictionary gap");
    out = dictionary_[static_cast<std::size_t>(id) - 1];
    return 1;
  };

  if (!cursor.varint(view.timestamp_ms)) return rollback();
  if (!cursor.varint(value)) return rollback();
  view.client_ip = static_cast<netdb::IpV4>(value);
  if (!cursor.varint(value)) return rollback();
  view.server_ip = static_cast<netdb::IpV4>(value);
  if (!cursor.varint(value)) return rollback();
  view.server_port = static_cast<std::uint16_t>(value);
  if (!cursor.varint(value)) return rollback();
  view.status_code = static_cast<std::uint16_t>(value);
  if (!cursor.varint(value)) return rollback();
  if (dict(value, view.host) == 0) return rollback();
  if (!cursor.sv(view.uri)) return rollback();
  if (!cursor.sv(view.referer)) return rollback();
  if (!cursor.varint(value)) return rollback();
  if (dict(value, view.user_agent) == 0) return rollback();
  if (!cursor.varint(value)) return rollback();
  if (dict(value, view.content_type) == 0) return rollback();
  if (!cursor.sv(view.location)) return rollback();
  if (!cursor.varint(view.content_length)) return rollback();
  if (!cursor.varint(value)) return rollback();
  view.tcp_handshake_us = static_cast<std::uint32_t>(value);
  if (!cursor.varint(value)) return rollback();
  view.http_handshake_us = static_cast<std::uint32_t>(value);
  if (!cursor.sv(view.payload)) return rollback();

  pos_ = cursor.pos;
  if (batch_sink_ != nullptr) {
    flush_tls();  // preserve global order across kinds
    http_batch_.push_back(view);
    if (http_batch_.size() >= kBatchRecords) flush_http();
  } else {
    materialize(view, scratch_);
    sink_->on_http(scratch_);
  }
  ++records_;
  return true;
}

bool StreamDecoder::decode_tls() {
  Cursor cursor{buf_, pos_};
  std::uint64_t tag = 0;
  cursor.varint(tag);
  TlsFlow flow;
  std::uint64_t value = 0;
  if (!cursor.varint(flow.timestamp_ms)) return false;
  if (!cursor.varint(value)) return false;
  flow.client_ip = static_cast<netdb::IpV4>(value);
  if (!cursor.varint(value)) return false;
  flow.server_ip = static_cast<netdb::IpV4>(value);
  if (!cursor.varint(value)) return false;
  flow.server_port = static_cast<std::uint16_t>(value);
  if (!cursor.varint(flow.bytes)) return false;
  pos_ = cursor.pos;
  if (batch_sink_ != nullptr) {
    flush_http();  // preserve global order across kinds
    tls_batch_.push_back(flow);
    if (tls_batch_.size() >= kBatchRecords) flush_tls();
  } else {
    sink_->on_tls(flow);
  }
  ++records_;
  return true;
}

bool StreamDecoder::try_decode_one() {
  if (state_ == State::kDone) return false;
  if (state_ == State::kHeader) return decode_header();

  Cursor peek{buf_, pos_};
  std::uint64_t tag = 0;
  if (!peek.varint(tag)) return false;
  switch (static_cast<RecordTag>(tag)) {
    case RecordTag::kEnd:
      pos_ = peek.pos;
      state_ = State::kDone;
      flush_http();
      flush_tls();
      if (buf_.size() > pos_) {
        state_ = State::kPoisoned;
        throw TraceFormatError("bytes after end-of-stream marker");
      }
      return false;
    case RecordTag::kHttp:
      return decode_http();
    case RecordTag::kTls:
      return decode_tls();
    default:
      throw TraceFormatError("unknown record tag");
  }
}

}  // namespace adscope::trace
