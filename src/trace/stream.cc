#include "trace/stream.h"

#include <cstring>

#include "trace/io.h"
#include "trace/writer.h"

namespace adscope::trace {

namespace {

/// Rollback-safe reader over the buffered bytes: every get_* consumes
/// from a local offset, so an incomplete record leaves the decoder's
/// real position untouched.
struct Cursor {
  const std::string& buf;
  std::size_t pos;

  bool varint(std::uint64_t& value) {
    value = 0;
    int shift = 0;
    while (pos < buf.size()) {
      const auto byte = static_cast<std::uint8_t>(buf[pos++]);
      if (shift >= 64) throw TraceFormatError("varint overflow");
      value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) return true;
      shift += 7;
    }
    return false;  // incomplete
  }

  bool str(std::string& value) {
    const auto saved = pos;
    std::uint64_t length = 0;
    if (!varint(length)) return false;
    if (length > StreamDecoder::kMaxStringBytes) {
      throw TraceFormatError("string length exceeds stream limit");
    }
    if (buf.size() - pos < length) {
      pos = saved;
      return false;  // incomplete
    }
    value.assign(buf, pos, static_cast<std::size_t>(length));
    pos += static_cast<std::size_t>(length);
    return true;
  }
};

}  // namespace

std::size_t StreamDecoder::feed(std::string_view data) {
  if (state_ == State::kPoisoned) {
    throw TraceFormatError("decoder poisoned by earlier stream error");
  }
  if (!data.empty() && state_ == State::kDone) {
    state_ = State::kPoisoned;
    throw TraceFormatError("bytes after end-of-stream marker");
  }
  buf_.append(data.data(), data.size());
  std::size_t delivered = 0;
  try {
    while (try_decode_one()) ++delivered;
  } catch (...) {
    state_ = State::kPoisoned;
    throw;
  }
  // Reclaim the consumed prefix once it dominates the buffer.
  if (pos_ > 4096 && pos_ >= buf_.size() / 2) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  return delivered;
}

bool StreamDecoder::decode_header() {
  Cursor cursor{buf_, pos_};
  if (buf_.size() - pos_ < sizeof(kTraceMagic)) return false;
  if (std::memcmp(buf_.data() + pos_, kTraceMagic, sizeof(kTraceMagic)) != 0) {
    throw TraceFormatError("bad trace magic");
  }
  cursor.pos += sizeof(kTraceMagic);
  std::uint64_t version = 0;
  if (!cursor.varint(version)) return false;
  if (version != kTraceVersion) {
    throw TraceFormatError("unsupported trace version");
  }
  TraceMeta meta;
  std::uint64_t value = 0;
  if (!cursor.str(meta.name)) return false;
  if (!cursor.varint(meta.start_unix_s)) return false;
  if (!cursor.varint(meta.duration_s)) return false;
  if (!cursor.varint(value)) return false;
  meta.subscribers = static_cast<std::uint32_t>(value);
  if (!cursor.varint(value)) return false;
  meta.uplink_gbps = static_cast<std::uint32_t>(value);
  pos_ = cursor.pos;
  state_ = State::kRecords;
  sink_->on_meta(meta);
  ++records_;
  return true;
}

bool StreamDecoder::decode_http() {
  Cursor cursor{buf_, pos_};
  std::uint64_t tag = 0;
  cursor.varint(tag);  // already known complete by caller
  HttpTransaction txn;
  std::uint64_t value = 0;
  // Dictionary ids may define new entries mid-record; stage them and
  // commit only when the whole record decoded.
  std::vector<std::string> staged;
  const auto dict = [&](std::uint64_t id, std::string& out) -> int {
    if (id == 0) {
      out.clear();
      return 1;
    }
    const auto next = dictionary_.size() + staged.size() + 1;
    if (id == next) {
      if (!cursor.str(out)) return 0;
      staged.push_back(out);
      return 1;
    }
    if (id > next) throw TraceFormatError("dictionary gap");
    if (id > dictionary_.size()) {
      out = staged[static_cast<std::size_t>(id) - dictionary_.size() - 1];
    } else {
      out = dictionary_[static_cast<std::size_t>(id) - 1];
    }
    return 1;
  };

  if (!cursor.varint(txn.timestamp_ms)) return false;
  if (!cursor.varint(value)) return false;
  txn.client_ip = static_cast<netdb::IpV4>(value);
  if (!cursor.varint(value)) return false;
  txn.server_ip = static_cast<netdb::IpV4>(value);
  if (!cursor.varint(value)) return false;
  txn.server_port = static_cast<std::uint16_t>(value);
  if (!cursor.varint(value)) return false;
  txn.status_code = static_cast<std::uint16_t>(value);
  if (!cursor.varint(value)) return false;
  if (dict(value, txn.host) == 0) return false;
  if (!cursor.str(txn.uri)) return false;
  if (!cursor.str(txn.referer)) return false;
  if (!cursor.varint(value)) return false;
  if (dict(value, txn.user_agent) == 0) return false;
  if (!cursor.varint(value)) return false;
  if (dict(value, txn.content_type) == 0) return false;
  if (!cursor.str(txn.location)) return false;
  if (!cursor.varint(txn.content_length)) return false;
  if (!cursor.varint(value)) return false;
  txn.tcp_handshake_us = static_cast<std::uint32_t>(value);
  if (!cursor.varint(value)) return false;
  txn.http_handshake_us = static_cast<std::uint32_t>(value);
  if (!cursor.str(txn.payload)) return false;

  for (auto& entry : staged) dictionary_.push_back(std::move(entry));
  pos_ = cursor.pos;
  sink_->on_http(txn);
  ++records_;
  return true;
}

bool StreamDecoder::decode_tls() {
  Cursor cursor{buf_, pos_};
  std::uint64_t tag = 0;
  cursor.varint(tag);
  TlsFlow flow;
  std::uint64_t value = 0;
  if (!cursor.varint(flow.timestamp_ms)) return false;
  if (!cursor.varint(value)) return false;
  flow.client_ip = static_cast<netdb::IpV4>(value);
  if (!cursor.varint(value)) return false;
  flow.server_ip = static_cast<netdb::IpV4>(value);
  if (!cursor.varint(value)) return false;
  flow.server_port = static_cast<std::uint16_t>(value);
  if (!cursor.varint(flow.bytes)) return false;
  pos_ = cursor.pos;
  sink_->on_tls(flow);
  ++records_;
  return true;
}

bool StreamDecoder::try_decode_one() {
  if (state_ == State::kDone) return false;
  if (state_ == State::kHeader) return decode_header();

  Cursor peek{buf_, pos_};
  std::uint64_t tag = 0;
  if (!peek.varint(tag)) return false;
  switch (static_cast<RecordTag>(tag)) {
    case RecordTag::kEnd:
      pos_ = peek.pos;
      state_ = State::kDone;
      if (buf_.size() > pos_) {
        state_ = State::kPoisoned;
        throw TraceFormatError("bytes after end-of-stream marker");
      }
      return false;
    case RecordTag::kHttp:
      return decode_http();
    case RecordTag::kTls:
      return decode_tls();
    default:
      throw TraceFormatError("unknown record tag");
  }
}

}  // namespace adscope::trace
