// Varint/string primitives for the binary trace format.
#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>

namespace adscope::trace {

/// Thrown on malformed trace files.
class TraceFormatError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// LEB128-style unsigned varint.
void write_varint(std::ostream& out, std::uint64_t value);

/// Reads a varint; returns false on clean EOF at a value boundary and
/// throws TraceFormatError on truncation mid-value.
bool read_varint(std::istream& in, std::uint64_t& value);

/// Length-prefixed raw string.
void write_string(std::ostream& out, std::string_view value);
std::string read_string(std::istream& in);

}  // namespace adscope::trace
