// Varint/string primitives for the binary trace format.
#pragma once

#include <cstddef>
#include <cstdint>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>
#include <string_view>

namespace adscope::trace {

/// Thrown on malformed trace files.
class TraceFormatError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// LEB128-style unsigned varint.
void write_varint(std::ostream& out, std::uint64_t value);

/// Reads a varint; returns false on clean EOF at a value boundary and
/// throws TraceFormatError on truncation mid-value.
bool read_varint(std::istream& in, std::uint64_t& value);

/// Length-prefixed raw string.
void write_string(std::ostream& out, std::string_view value);
std::string read_string(std::istream& in);

/// Fixed-width little-endian u64 — used for the header's back-patchable
/// record-count hints (format v3), which must not change size when the
/// writer patches the real counts in on close().
void write_fixed_u64le(std::ostream& out, std::uint64_t value);

/// Zero-copy decode cursor over a contiguous byte range. try_* methods
/// return false when the range ends mid-item (nothing is "consumed"
/// conceptually — callers rewind by keeping their own saved cursor) and
/// throw TraceFormatError on structural corruption (varint overflow,
/// oversized string). Both the mmap'd reader and the live StreamDecoder
/// decode through this.
struct ByteCursor {
  const char* p = nullptr;
  const char* end = nullptr;

  std::size_t remaining() const noexcept {
    return static_cast<std::size_t>(end - p);
  }

  bool try_varint(std::uint64_t& value) {
    value = 0;
    int shift = 0;
    const char* q = p;
    while (q < end) {
      const auto byte = static_cast<std::uint8_t>(*q++);
      if (shift >= 64) throw TraceFormatError("varint overflow");
      value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) {
        p = q;
        return true;
      }
      shift += 7;
    }
    return false;  // incomplete
  }

  /// Length-prefixed string as a view into the underlying bytes.
  bool try_string_view(std::string_view& out, std::uint64_t max_bytes) {
    const char* saved = p;
    std::uint64_t length = 0;
    if (!try_varint(length)) return false;
    if (length > max_bytes) {
      throw TraceFormatError("string length exceeds limit");
    }
    if (remaining() < length) {
      p = saved;
      return false;  // incomplete
    }
    out = std::string_view(p, static_cast<std::size_t>(length));
    p += length;
    return true;
  }

  bool try_fixed_u64le(std::uint64_t& value) {
    if (remaining() < 8) return false;
    value = 0;
    for (int i = 0; i < 8; ++i) {
      value |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(p[i]))
               << (8 * i);
    }
    p += 8;
    return true;
  }
};

}  // namespace adscope::trace
