#include "trace/mmap_reader.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>

#include "trace/io.h"

namespace adscope::trace {

namespace {

/// Same per-string cap as the istream reader: anything larger is
/// corruption, not a legitimate header field.
constexpr std::uint64_t kMaxString = 1 << 20;

/// RAII fd so the map/throw paths cannot leak the descriptor.
struct ScopedFd {
  int fd = -1;
  ~ScopedFd() {
    if (fd >= 0) ::close(fd);
  }
};

std::uint64_t require_varint(ByteCursor& cursor, const char* what) {
  std::uint64_t value = 0;
  if (!cursor.try_varint(value)) {
    throw TraceFormatError(std::string("truncated trace: missing ") + what);
  }
  return value;
}

std::string_view require_string(ByteCursor& cursor, const char* what) {
  std::string_view value;
  if (!cursor.try_string_view(value, kMaxString)) {
    throw TraceFormatError(std::string("truncated trace: missing ") + what);
  }
  return value;
}

}  // namespace

bool MmapTraceReader::supported(const std::string& path) noexcept {
  struct stat st {};
  if (::stat(path.c_str(), &st) != 0) return false;
  return S_ISREG(st.st_mode);
}

MmapTraceReader::MmapTraceReader(const std::string& path, Options options)
    : options_(options) {
  if (options_.batch_records == 0) options_.batch_records = 1;
  ScopedFd fd{::open(path.c_str(), O_RDONLY | O_CLOEXEC)};
  if (fd.fd < 0) {
    throw std::runtime_error("cannot open trace file: " + path);
  }
  struct stat st {};
  if (::fstat(fd.fd, &st) != 0 || !S_ISREG(st.st_mode)) {
    throw std::runtime_error("not a mappable trace file: " + path);
  }
  if (st.st_size == 0) throw TraceFormatError("bad trace magic");
  size_ = static_cast<std::size_t>(st.st_size);
  void* map = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd.fd, 0);
  if (map == MAP_FAILED) {
    throw std::runtime_error("cannot mmap trace file: " + path);
  }
  map_ = static_cast<const char*>(map);
  // Decode is a single forward pass; tell the kernel to read ahead and
  // (where supported) to back the mapping with transparent huge pages.
  // Advice is best-effort but never silently ignored: each return is
  // recorded in advice_stats() so callers and benches can see which
  // hints actually took (MADV_HUGEPAGE in particular is EINVAL on
  // kernels built without THP).
  advice_.sequential = ::madvise(map, size_, MADV_SEQUENTIAL) == 0;
  if (options_.madv_willneed) {
    advice_.willneed = ::madvise(map, size_, MADV_WILLNEED) == 0;
  }
#ifdef MADV_HUGEPAGE
  if (options_.madv_hugepage) {
    advice_.hugepage = ::madvise(map, size_, MADV_HUGEPAGE) == 0;
  }
#endif
  try {
    decode_header();
  } catch (...) {
    ::munmap(map, size_);
    map_ = nullptr;
    throw;
  }
  http_batch_.reserve(options_.batch_records);
  tls_batch_.reserve(options_.batch_records);
}

MmapTraceReader::~MmapTraceReader() {
  if (map_ != nullptr) {
    ::munmap(const_cast<char*>(map_), size_);
  }
}

void MmapTraceReader::decode_header() {
  ByteCursor cursor{map_, map_ + size_};
  if (cursor.remaining() < sizeof(kTraceMagic) ||
      std::memcmp(cursor.p, kTraceMagic, sizeof(kTraceMagic)) != 0) {
    throw TraceFormatError("bad trace magic");
  }
  cursor.p += sizeof(kTraceMagic);
  const auto version = require_varint(cursor, "version");
  if (version != kTraceVersion && version != kTraceVersionNoHints) {
    throw TraceFormatError("unsupported trace version");
  }
  meta_.name = require_string(cursor, "meta name");
  meta_.start_unix_s = require_varint(cursor, "meta start");
  meta_.duration_s = require_varint(cursor, "meta duration");
  meta_.subscribers =
      static_cast<std::uint32_t>(require_varint(cursor, "meta subscribers"));
  meta_.uplink_gbps =
      static_cast<std::uint32_t>(require_varint(cursor, "meta uplink"));
  if (version >= kTraceVersion) {
    if (!cursor.try_fixed_u64le(meta_.http_count_hint) ||
        !cursor.try_fixed_u64le(meta_.tls_count_hint)) {
      throw TraceFormatError("truncated trace: missing record count hints");
    }
  }
  records_begin_ = static_cast<std::size_t>(cursor.p - map_);
}

std::uint64_t MmapTraceReader::replay(TraceSink& sink) {
  BatchToRecordAdapter adapter(sink);
  return replay_batches(adapter);
}

std::uint64_t MmapTraceReader::replay_batches(TraceBatchSink& sink) {
  return run(&sink, nullptr);
}

std::uint64_t MmapTraceReader::replay_raw(RawSink& sink) {
  return run(nullptr, &sink);
}

std::uint64_t MmapTraceReader::run(TraceBatchSink* sink, RawSink* raw) {
  dictionary_.clear();
  http_batch_.clear();
  tls_batch_.clear();
  if (sink != nullptr) sink->on_meta(meta_);

  const auto flush_http = [&] {
    if (!http_batch_.empty()) {
      if (sink != nullptr) sink->on_http_batch(http_batch_);
      http_batch_.clear();
    }
  };
  const auto flush_tls = [&] {
    if (!tls_batch_.empty()) {
      if (sink != nullptr) sink->on_tls_batch(tls_batch_);
      tls_batch_.clear();
    }
  };

  // Dictionary field: id 0 = empty, next-id = inline definition (slice
  // of the mapping, interned for the rest of the pass), known id =
  // table hit. Out-of-range ids are corruption.
  const auto dict_field = [&](ByteCursor& cursor,
                              const char* what) -> std::string_view {
    const auto id = require_varint(cursor, what);
    if (id == 0) return {};
    if (id == dictionary_.size() + 1) {
      const auto value = require_string(cursor, what);
      dictionary_.push_back(value);
      return value;
    }
    if (id > dictionary_.size()) {
      throw TraceFormatError("dictionary id " + std::to_string(id) +
                             " out of range (" +
                             std::to_string(dictionary_.size()) +
                             " entries defined)");
    }
    return dictionary_[static_cast<std::size_t>(id) - 1];
  };

  ByteCursor cursor{map_ + records_begin_, map_ + size_};
  std::uint64_t records = 0;
  std::uint64_t tag = 0;
  const bool prefetch = options_.prefetch;
  const char* const map_end = map_ + size_;
  for (;;) {
    const char* record_start = cursor.p;
    if (prefetch && record_start + 512 < map_end) {
      // Records average well under 256 bytes, so ~2 records ahead: far
      // enough to cover the decode latency of the current one, close
      // enough that the lines are still resident when reached.
      __builtin_prefetch(record_start + 256);
      __builtin_prefetch(record_start + 512);
    }
    if (!cursor.try_varint(tag)) {
      // try_varint leaves the cursor untouched on failure, so bytes
      // remaining here mean a tag truncated mid-varint.
      if (record_start != cursor.end) {
        throw TraceFormatError("truncated trace: partial record tag");
      }
      break;  // clean EOF without end marker: tolerated, like the
              // istream reader (interrupted writer).
    }
    switch (static_cast<RecordTag>(tag)) {
      case RecordTag::kEnd:
        flush_http();
        flush_tls();
        return records;
      case RecordTag::kHttp: {
        HttpTransactionView view;
        view.timestamp_ms = require_varint(cursor, "http timestamp");
        view.client_ip = static_cast<netdb::IpV4>(
            require_varint(cursor, "http client_ip"));
        view.server_ip = static_cast<netdb::IpV4>(
            require_varint(cursor, "http server_ip"));
        view.server_port =
            static_cast<std::uint16_t>(require_varint(cursor, "http port"));
        view.status_code =
            static_cast<std::uint16_t>(require_varint(cursor, "http status"));
        view.host = dict_field(cursor, "http host");
        view.uri = require_string(cursor, "http uri");
        view.referer = require_string(cursor, "http referer");
        view.user_agent = dict_field(cursor, "http user_agent");
        view.content_type = dict_field(cursor, "http content_type");
        view.location = require_string(cursor, "http location");
        view.content_length = require_varint(cursor, "http content_length");
        view.tcp_handshake_us = static_cast<std::uint32_t>(
            require_varint(cursor, "http tcp_handshake"));
        view.http_handshake_us = static_cast<std::uint32_t>(
            require_varint(cursor, "http http_handshake"));
        view.payload = require_string(cursor, "http payload");
        flush_tls();  // preserve global order across kinds
        if (raw != nullptr) {
          raw->on_raw({RecordTag::kHttp, view.timestamp_ms,
                       {record_start,
                        static_cast<std::size_t>(cursor.p - record_start)}});
        } else {
          http_batch_.push_back(view);
          if (http_batch_.size() >= options_.batch_records) flush_http();
        }
        ++records;
        break;
      }
      case RecordTag::kTls: {
        TlsFlowView flow;
        flow.timestamp_ms = require_varint(cursor, "tls timestamp");
        flow.client_ip =
            static_cast<netdb::IpV4>(require_varint(cursor, "tls client_ip"));
        flow.server_ip =
            static_cast<netdb::IpV4>(require_varint(cursor, "tls server_ip"));
        flow.server_port =
            static_cast<std::uint16_t>(require_varint(cursor, "tls port"));
        flow.bytes = require_varint(cursor, "tls bytes");
        flush_http();  // preserve global order across kinds
        if (raw != nullptr) {
          raw->on_raw({RecordTag::kTls, flow.timestamp_ms,
                       {record_start,
                        static_cast<std::size_t>(cursor.p - record_start)}});
        } else {
          tls_batch_.push_back(flow);
          if (tls_batch_.size() >= options_.batch_records) flush_tls();
        }
        ++records;
        break;
      }
      default:
        throw TraceFormatError("unknown record tag " + std::to_string(tag));
    }
  }
  flush_http();
  flush_tls();
  return records;
}

}  // namespace adscope::trace
