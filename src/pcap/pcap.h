// pcap interoperability.
//
// The paper's vantage points capture with DAG cards / tcpdump; this
// module lets adscope speak that world's format:
//   * PcapWriter renders a header-level trace as a classic little-endian
//     pcap file (Ethernet/IPv4/TCP). Each HTTP transaction becomes four
//     frames — SYN, SYN-ACK, request, response — with timestamps laid
//     out so the TCP- and HTTP-hand-shake timings (§8.2) survive the
//     round trip and are visible to Wireshark/Bro alike. Responses carry
//     headers only (snaplen-style capture), unless a §10 payload is
//     attached.
//   * PcapHttpReader ingests such a file (or any single-packet-per-
//     direction HTTP/1.x capture) back into TraceSink records, restoring
//     the hand-shake timings from the SYN exchange.
//
// IPv4 and TCP checksums are computed properly so external tools do not
// flag the frames.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <unordered_map>

#include "trace/record.h"

namespace adscope::pcap {

/// Thrown on malformed pcap input.
class PcapFormatError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class PcapWriter final : public trace::TraceSink {
 public:
  /// Opens `path`; throws std::runtime_error on failure.
  explicit PcapWriter(const std::string& path);
  ~PcapWriter() override;

  PcapWriter(const PcapWriter&) = delete;
  PcapWriter& operator=(const PcapWriter&) = delete;

  void on_meta(const trace::TraceMeta& meta) override;
  void on_http(const trace::HttpTransaction& txn) override;
  /// TLS flows render as a bare SYN/SYN-ACK pair on port 443 (the
  /// payload is opaque anyway).
  void on_tls(const trace::TlsFlow& flow) override;

  std::uint64_t packets_written() const noexcept { return packets_; }

 private:
  void write_packet(std::uint64_t ts_us, netdb::IpV4 src, netdb::IpV4 dst,
                    std::uint16_t sport, std::uint16_t dport,
                    std::uint32_t seq, std::uint32_t ack, std::uint8_t flags,
                    std::string_view payload);

  std::ofstream out_;
  std::uint64_t base_unix_us_ = 0;
  std::uint64_t packets_ = 0;
};

/// Streaming pcap -> HttpTransaction/TlsFlow converter.
class PcapHttpReader {
 public:
  /// Opens and validates the global header; throws PcapFormatError on a
  /// foreign magic and std::runtime_error when the file cannot be read.
  explicit PcapHttpReader(const std::string& path);

  /// Parse the whole file into `sink` (a synthetic meta block first).
  /// Returns the number of HTTP transactions emitted.
  std::uint64_t replay(trace::TraceSink& sink);

  std::uint64_t packets_parsed() const noexcept { return packets_; }
  std::uint64_t packets_skipped() const noexcept { return skipped_; }

 private:
  struct Flow {
    std::uint64_t syn_us = 0;
    std::uint64_t synack_us = 0;
    std::uint64_t request_us = 0;
    netdb::IpV4 client_ip = 0;  // learned from the SYN / request sender
    netdb::IpV4 server_ip = 0;
    std::uint16_t client_port = 0;
    std::uint16_t server_port = 0;
    bool tls_reported = false;
    trace::HttpTransaction txn;
    bool have_request = false;
  };

  std::ifstream in_;
  std::uint64_t base_us_ = 0;
  bool base_set_ = false;
  std::uint64_t packets_ = 0;
  std::uint64_t skipped_ = 0;
  std::unordered_map<std::uint64_t, Flow> flows_;
};

}  // namespace adscope::pcap
